// Report differ behind tools/armbar-perf: compares the host_prof sections
// (and the sim_perf self-relative throughput metric) of two
// armbar.bench.report documents and renders per-phase regression verdicts.
//
// The *gate* is machine-independent by construction: it compares
// `ips_vs_null` — simulated-instructions/sec divided by a null-interpreter
// loop's ops/sec, both measured in the same process — between baseline and
// current. Host CPU speed cancels out of that ratio, so a committed
// baseline from one machine meaningfully gates a CI run on another.
// Per-phase time *shares* (self_ns / total self) are likewise
// machine-relative; drifts beyond a threshold are reported, advisory by
// default.
#pragma once

#include <string>
#include <vector>

#include "trace/json.hpp"

namespace armbar::prof {

struct PerfDiffOptions {
  /// Gate: current ips_vs_null must be >= this fraction of the baseline's.
  /// 0.5 tolerates host noise and moderate churn while still catching a
  /// 2x interpreter regression.
  double min_rel_ratio = 0.5;
  /// A phase whose share of total self time grew by more than this many
  /// percentage points gets a "regressed" verdict (advisory unless
  /// gate_phases).
  double phase_drift_pp = 15.0;
  /// Floor below which a phase's drift never "regresses": when the hot
  /// path shrinks dramatically (ISSUE 7), previously-negligible phases can
  /// multiply their *share* while their absolute cost is still noise. A
  /// phase whose current share is under this many percent of total self
  /// time stays "ok" regardless of drift.
  double min_phase_share_pct = 2.0;
  bool gate_phases = false;
  /// When > 0, every per-preset "<preset>_{mp,deep}_ips" metric present in
  /// the baseline is normalized by its report's null-loop throughput and
  /// the current/baseline ratio must reach this value (machine-independent,
  /// like ips_vs_null but per preset). 0 disables.
  double min_preset_ratio = 0.0;
};

struct PhaseVerdict {
  std::string phase;
  double base_share_pct = 0.0;
  double cur_share_pct = 0.0;
  double drift_pp = 0.0;        ///< cur - base, percentage points
  std::string verdict;          ///< "ok" | "regressed" | "new" | "gone"
};

/// One preset's normalized (null-relative) throughput comparison.
struct PresetRatio {
  std::string metric;           ///< e.g. "kunpeng916_deep_ips"
  double base_rel = 0.0;        ///< baseline ips / baseline null ops-per-sec
  double cur_rel = 0.0;
  double ratio = 0.0;           ///< cur_rel / base_rel
  bool ok = true;
};

struct PerfDiff {
  bool comparable = false;  ///< both reports carried the needed fields
  std::string error;        ///< why not, when !comparable
  double base_ips = 0.0;    ///< host_prof sim_instructions_per_sec
  double cur_ips = 0.0;
  double base_rel = 0.0;    ///< ips_vs_null metric (machine-independent)
  double cur_rel = 0.0;
  double rel_ratio = 0.0;   ///< cur_rel / base_rel
  std::vector<PhaseVerdict> phases;
  /// Filled when min_preset_ratio > 0: one entry per baseline *_ips metric.
  std::vector<PresetRatio> presets;
  bool ok = false;          ///< gate verdict
};

/// Diff two parsed report documents (baseline, current).
PerfDiff diff_reports(const trace::Json& base, const trace::Json& cur,
                      const PerfDiffOptions& opts = {});

/// Human-readable rendering (the armbar-perf stdout).
std::string render(const PerfDiff& d, const PerfDiffOptions& opts);

}  // namespace armbar::prof
