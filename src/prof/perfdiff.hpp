// Report differ behind tools/armbar-perf: compares the host_prof sections
// (and the sim_perf self-relative throughput metric) of two
// armbar.bench.report documents and renders per-phase regression verdicts.
//
// The *gate* is machine-independent by construction: it compares
// `ips_vs_null` — simulated-instructions/sec divided by a null-interpreter
// loop's ops/sec, both measured in the same process — between baseline and
// current. Host CPU speed cancels out of that ratio, so a committed
// baseline from one machine meaningfully gates a CI run on another.
// Per-phase time *shares* (self_ns / total self) are likewise
// machine-relative; drifts beyond a threshold are reported, advisory by
// default.
#pragma once

#include <string>
#include <vector>

#include "trace/json.hpp"

namespace armbar::prof {

struct PerfDiffOptions {
  /// Gate: current ips_vs_null must be >= this fraction of the baseline's.
  /// 0.5 tolerates host noise and moderate churn while still catching a
  /// 2x interpreter regression.
  double min_rel_ratio = 0.5;
  /// A phase whose share of total self time grew by more than this many
  /// percentage points gets a "regressed" verdict (advisory unless
  /// gate_phases).
  double phase_drift_pp = 15.0;
  bool gate_phases = false;
};

struct PhaseVerdict {
  std::string phase;
  double base_share_pct = 0.0;
  double cur_share_pct = 0.0;
  double drift_pp = 0.0;        ///< cur - base, percentage points
  std::string verdict;          ///< "ok" | "regressed" | "new" | "gone"
};

struct PerfDiff {
  bool comparable = false;  ///< both reports carried the needed fields
  std::string error;        ///< why not, when !comparable
  double base_ips = 0.0;    ///< host_prof sim_instructions_per_sec
  double cur_ips = 0.0;
  double base_rel = 0.0;    ///< ips_vs_null metric (machine-independent)
  double cur_rel = 0.0;
  double rel_ratio = 0.0;   ///< cur_rel / base_rel
  std::vector<PhaseVerdict> phases;
  bool ok = false;          ///< gate verdict
};

/// Diff two parsed report documents (baseline, current).
PerfDiff diff_reports(const trace::Json& base, const trace::Json& cur,
                      const PerfDiffOptions& opts = {});

/// Human-readable rendering (the armbar-perf stdout).
std::string render(const PerfDiff& d, const PerfDiffOptions& opts);

}  // namespace armbar::prof
