#include "prof/perfdiff.hpp"

#include <cmath>
#include <cstdio>
#include <map>

namespace armbar::prof {
namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// `ips_vs_null` from the metrics object: unprefixed in a single-experiment
/// report, "<experiment>/ips_vs_null" in a consolidated one.
double find_rel(const trace::Json& doc) {
  const trace::Json* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) return 0.0;
  for (const auto& [name, v] : metrics->members())
    if ((name == "ips_vs_null" || ends_with(name, "/ips_vs_null")) &&
        v.is_number())
      return v.number();
  return 0.0;
}

/// A named metric from the metrics object, tolerating the consolidated
/// "<experiment>/<name>" prefix the runner adds. 0.0 when absent.
double find_metric_suffix(const trace::Json& doc, const std::string& want) {
  const trace::Json* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) return 0.0;
  for (const auto& [name, v] : metrics->members())
    if ((name == want || ends_with(name, "/" + want)) && v.is_number())
      return v.number();
  return 0.0;
}

/// All per-preset throughput metric names ("..._mp_ips" / "..._deep_ips"),
/// stripped of any consolidated-report experiment prefix, sorted by the
/// metrics object's iteration order.
std::vector<std::string> ips_metric_names(const trace::Json& doc) {
  std::vector<std::string> out;
  const trace::Json* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) return out;
  for (const auto& [name, v] : metrics->members()) {
    if (!v.is_number()) continue;
    if (!ends_with(name, "_mp_ips") && !ends_with(name, "_deep_ips")) continue;
    const auto slash = name.rfind('/');
    out.push_back(slash == std::string::npos ? name : name.substr(slash + 1));
  }
  return out;
}

double find_ips(const trace::Json& doc) {
  const trace::Json* hp = doc.find("host_prof");
  if (hp == nullptr) return 0.0;
  const trace::Json* ips = hp->find("sim_instructions_per_sec");
  return ips != nullptr && ips->is_number() ? ips->number() : 0.0;
}

/// phase name -> share of total self time, in percent.
std::map<std::string, double> phase_shares(const trace::Json& doc) {
  std::map<std::string, double> out;
  const trace::Json* hp = doc.find("host_prof");
  if (hp == nullptr) return out;
  const trace::Json* phases = hp->find("phases");
  if (phases == nullptr || !phases->is_object()) return out;
  double total = 0.0;
  for (const auto& [name, p] : phases->members()) {
    const trace::Json* self = p.find("self_ns");
    if (self != nullptr && self->is_number()) {
      out[name] = self->number();
      total += self->number();
    }
  }
  if (total > 0.0)
    for (auto& [name, v] : out) v = v * 100.0 / total;
  return out;
}

}  // namespace

PerfDiff diff_reports(const trace::Json& base, const trace::Json& cur,
                      const PerfDiffOptions& opts) {
  PerfDiff d;
  d.base_ips = find_ips(base);
  d.cur_ips = find_ips(cur);
  d.base_rel = find_rel(base);
  d.cur_rel = find_rel(cur);

  if (base.find("host_prof") == nullptr || cur.find("host_prof") == nullptr) {
    d.error = "a report is missing its host_prof section";
    return d;
  }
  if (d.base_rel <= 0.0 || d.cur_rel <= 0.0) {
    d.error = "a report is missing the ips_vs_null metric "
              "(run the sim_perf experiment with --json)";
    return d;
  }
  d.comparable = true;
  d.rel_ratio = d.cur_rel / d.base_rel;

  const std::map<std::string, double> bs = phase_shares(base);
  const std::map<std::string, double> cs = phase_shares(cur);
  bool phase_regressed = false;
  for (const auto& [name, share] : bs) {
    PhaseVerdict v;
    v.phase = name;
    v.base_share_pct = share;
    if (auto it = cs.find(name); it != cs.end()) {
      v.cur_share_pct = it->second;
      v.drift_pp = v.cur_share_pct - v.base_share_pct;
      // Shares are relative: when the dominant phases get faster, every
      // other phase's share inflates without its absolute cost moving. A
      // phase still below the floor is noise, not a regression.
      v.verdict = v.drift_pp > opts.phase_drift_pp &&
                          v.cur_share_pct >= opts.min_phase_share_pct
                      ? "regressed"
                      : "ok";
    } else {
      v.verdict = "gone";
    }
    phase_regressed = phase_regressed || v.verdict == "regressed";
    d.phases.push_back(std::move(v));
  }
  for (const auto& [name, share] : cs) {
    if (bs.count(name) != 0) continue;
    PhaseVerdict v;
    v.phase = name;
    v.cur_share_pct = share;
    v.drift_pp = share;
    v.verdict = "new";
    d.phases.push_back(std::move(v));
  }

  // Per-preset normalized throughput: each "<preset>_{mp,deep}_ips" metric
  // divided by its own report's null-loop ops/s, so the cross-report ratio
  // is machine-independent like ips_vs_null but resolved per platform
  // preset and per workload (a regression confined to the 64-core preset
  // cannot hide inside the blended aggregate).
  bool presets_ok = true;
  if (opts.min_preset_ratio > 0.0) {
    const double base_null = find_metric_suffix(base, "null_loop_mops");
    const double cur_null = find_metric_suffix(cur, "null_loop_mops");
    if (base_null <= 0.0 || cur_null <= 0.0) {
      d.comparable = false;
      d.error = "a report is missing the null_loop_mops metric needed for "
                "per-preset gating";
      return d;
    }
    for (const std::string& name : ips_metric_names(base)) {
      PresetRatio pr;
      pr.metric = name;
      pr.base_rel = find_metric_suffix(base, name) / (base_null * 1e6);
      pr.cur_rel = find_metric_suffix(cur, name) / (cur_null * 1e6);
      if (pr.base_rel <= 0.0 || pr.cur_rel <= 0.0) {
        pr.ratio = 0.0;
        pr.ok = false;
      } else {
        pr.ratio = pr.cur_rel / pr.base_rel;
        pr.ok = pr.ratio >= opts.min_preset_ratio;
      }
      presets_ok = presets_ok && pr.ok;
      d.presets.push_back(std::move(pr));
    }
    if (d.presets.empty()) {
      d.comparable = false;
      d.error = "baseline carries no per-preset *_ips metrics to gate";
      return d;
    }
  }

  d.ok = d.rel_ratio >= opts.min_rel_ratio && presets_ok &&
         (!opts.gate_phases || !phase_regressed);
  return d;
}

std::string render(const PerfDiff& d, const PerfDiffOptions& opts) {
  char buf[256];
  std::string out;
  if (!d.comparable) {
    out = "armbar-perf: reports not comparable: " + d.error + "\n";
    return out;
  }
  std::snprintf(buf, sizeof(buf),
                "sim ips          baseline %12.0f   current %12.0f  "
                "(host-dependent, informational)\n",
                d.base_ips, d.cur_ips);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "ips_vs_null      baseline %12.6f   current %12.6f   "
                "ratio %.2fx  [gate >= %.2fx]\n",
                d.base_rel, d.cur_rel, d.rel_ratio, opts.min_rel_ratio);
  out += buf;
  out += "\nphase            base%   cur%   drift   verdict\n";
  for (const PhaseVerdict& v : d.phases) {
    std::snprintf(buf, sizeof(buf), "%-16s %5.1f  %5.1f  %+6.1f   %s\n",
                  v.phase.c_str(), v.base_share_pct, v.cur_share_pct,
                  v.drift_pp, v.verdict.c_str());
    out += buf;
  }
  if (!d.presets.empty()) {
    out += "\npreset metric            base rel      cur rel    ratio  verdict\n";
    for (const PresetRatio& p : d.presets) {
      std::snprintf(buf, sizeof(buf), "%-22s %10.6f  %10.6f  %6.2fx  %s\n",
                    p.metric.c_str(), p.base_rel, p.cur_rel, p.ratio,
                    p.ok ? "ok" : "REGRESSED");
      out += buf;
    }
    std::snprintf(buf, sizeof(buf), "[preset gate >= %.2fx]\n",
                  opts.min_preset_ratio);
    out += buf;
  }
  out += d.ok ? "\nperf gate OK\n" : "\nperf gate FAILED\n";
  return out;
}

}  // namespace armbar::prof
