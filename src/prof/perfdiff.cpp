#include "prof/perfdiff.hpp"

#include <cmath>
#include <cstdio>
#include <map>

namespace armbar::prof {
namespace {

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// `ips_vs_null` from the metrics object: unprefixed in a single-experiment
/// report, "<experiment>/ips_vs_null" in a consolidated one.
double find_rel(const trace::Json& doc) {
  const trace::Json* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object()) return 0.0;
  for (const auto& [name, v] : metrics->members())
    if ((name == "ips_vs_null" || ends_with(name, "/ips_vs_null")) &&
        v.is_number())
      return v.number();
  return 0.0;
}

double find_ips(const trace::Json& doc) {
  const trace::Json* hp = doc.find("host_prof");
  if (hp == nullptr) return 0.0;
  const trace::Json* ips = hp->find("sim_instructions_per_sec");
  return ips != nullptr && ips->is_number() ? ips->number() : 0.0;
}

/// phase name -> share of total self time, in percent.
std::map<std::string, double> phase_shares(const trace::Json& doc) {
  std::map<std::string, double> out;
  const trace::Json* hp = doc.find("host_prof");
  if (hp == nullptr) return out;
  const trace::Json* phases = hp->find("phases");
  if (phases == nullptr || !phases->is_object()) return out;
  double total = 0.0;
  for (const auto& [name, p] : phases->members()) {
    const trace::Json* self = p.find("self_ns");
    if (self != nullptr && self->is_number()) {
      out[name] = self->number();
      total += self->number();
    }
  }
  if (total > 0.0)
    for (auto& [name, v] : out) v = v * 100.0 / total;
  return out;
}

}  // namespace

PerfDiff diff_reports(const trace::Json& base, const trace::Json& cur,
                      const PerfDiffOptions& opts) {
  PerfDiff d;
  d.base_ips = find_ips(base);
  d.cur_ips = find_ips(cur);
  d.base_rel = find_rel(base);
  d.cur_rel = find_rel(cur);

  if (base.find("host_prof") == nullptr || cur.find("host_prof") == nullptr) {
    d.error = "a report is missing its host_prof section";
    return d;
  }
  if (d.base_rel <= 0.0 || d.cur_rel <= 0.0) {
    d.error = "a report is missing the ips_vs_null metric "
              "(run the sim_perf experiment with --json)";
    return d;
  }
  d.comparable = true;
  d.rel_ratio = d.cur_rel / d.base_rel;

  const std::map<std::string, double> bs = phase_shares(base);
  const std::map<std::string, double> cs = phase_shares(cur);
  bool phase_regressed = false;
  for (const auto& [name, share] : bs) {
    PhaseVerdict v;
    v.phase = name;
    v.base_share_pct = share;
    if (auto it = cs.find(name); it != cs.end()) {
      v.cur_share_pct = it->second;
      v.drift_pp = v.cur_share_pct - v.base_share_pct;
      v.verdict = v.drift_pp > opts.phase_drift_pp ? "regressed" : "ok";
    } else {
      v.verdict = "gone";
    }
    phase_regressed = phase_regressed || v.verdict == "regressed";
    d.phases.push_back(std::move(v));
  }
  for (const auto& [name, share] : cs) {
    if (bs.count(name) != 0) continue;
    PhaseVerdict v;
    v.phase = name;
    v.cur_share_pct = share;
    v.drift_pp = share;
    v.verdict = "new";
    d.phases.push_back(std::move(v));
  }

  d.ok = d.rel_ratio >= opts.min_rel_ratio &&
         (!opts.gate_phases || !phase_regressed);
  return d;
}

std::string render(const PerfDiff& d, const PerfDiffOptions& opts) {
  char buf[256];
  std::string out;
  if (!d.comparable) {
    out = "armbar-perf: reports not comparable: " + d.error + "\n";
    return out;
  }
  std::snprintf(buf, sizeof(buf),
                "sim ips          baseline %12.0f   current %12.0f  "
                "(host-dependent, informational)\n",
                d.base_ips, d.cur_ips);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "ips_vs_null      baseline %12.6f   current %12.6f   "
                "ratio %.2fx  [gate >= %.2fx]\n",
                d.base_rel, d.cur_rel, d.rel_ratio, opts.min_rel_ratio);
  out += buf;
  out += "\nphase            base%   cur%   drift   verdict\n";
  for (const PhaseVerdict& v : d.phases) {
    std::snprintf(buf, sizeof(buf), "%-16s %5.1f  %5.1f  %+6.1f   %s\n",
                  v.phase.c_str(), v.base_share_pct, v.cur_share_pct,
                  v.drift_pp, v.verdict.c_str());
    out += buf;
  }
  out += d.ok ? "\nperf gate OK\n" : "\nperf gate FAILED\n";
  return out;
}

}  // namespace armbar::prof
