// Host-side self-profiler (ISSUE 6): RAII scoped timers + counters with
// per-thread accumulation, observing the *host* cost of the simulator the
// way src/trace/ observes the *guest* (simulated barriers).
//
// Design constraints, in order:
//   1. Negligible overhead when off. Every hook first reads one relaxed
//      atomic; a disabled ScopedTimer is a branch and two dead stores.
//      Under ARMBAR_PROF_DISABLED the hooks compile out entirely
//      (mirroring ARMBAR_TRACE_DISABLED / ARMBAR_FAULT_DISABLED), with the
//      arguments still type-checked so the no-prof build cannot rot.
//   2. No synchronization on the hot path. Each thread accumulates into a
//      thread-local calltree (intrusive first-child/next-sibling nodes
//      keyed by a fixed Phase enum); the only locks are at thread
//      registration, thread exit and snapshot().
//   3. Cheap timestamps. Scopes record raw ticks (CNTVCT_EL0 on AArch64,
//      TSC on x86-64, steady_clock elsewhere); conversion to ns happens
//      once, lazily, at snapshot time.
//
// Sessions: set_enabled(true) starts recording into the current epoch;
// reset() bumps the epoch, which each thread observes lazily and clears
// its own tree (no cross-thread mutation, so no data race with a thread
// mid-scope). snapshot() merges every registered thread's tree — call it
// at quiescence (no worker actively simulating), which is where the engine
// calls it: after all pool work for the run has completed.
//
// Phase totals in a Snapshot are flattened two ways:
//   * total_ns counts a phase's *topmost* occurrences only, so a phase
//     that re-enters itself (recursive enumeration) is not double-counted;
//   * self_ns is total minus time attributed to child phases — the number
//     a flamegraph's leaf width shows, and the one the report validator
//     requires to be monotone-summable (sum of self <= wall * threads).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

namespace armbar::prof {

/// Fixed attribution scopes. A closed enum instead of strings: hook sites
/// pay an integer compare, not a hash, and exports stay deterministic.
enum class Phase : std::uint8_t {
  kSimRun,         ///< Machine::run, whole interpreter loop
  kSimSchedule,    ///< event-queue scan: next attention over live cores
  kSimIssue,       ///< Core::step decode/issue (incl. branch resolve)
  kSimSbDrain,     ///< store-buffer pump/drain
  kSimCoherence,   ///< MemorySystem load/store/exchange
  kSimVerify,      ///< MachineVerifier cadence sweeps
  kTraceEmit,      ///< tracer ring writes (the observer's own cost)
  kModelEnumerate, ///< axiomatic model enumerate_outcomes
  kFuzzGenerate,   ///< fuzz seed -> program generation
  kFuzzDiff,       ///< differential run (model + platform sweep)
  kBenchNullLoop,  ///< sim_perf's null-interpreter calibration loop
};
inline constexpr std::size_t kNumPhases = 11;
const char* phase_name(Phase p);

/// Process-wide monotonic counters (merged across threads at snapshot).
enum class Counter : std::uint8_t {
  kSimInstructions,  ///< guest instructions retired across all runs
  kSimRuns,          ///< Machine::run completions
  kSimCycles,        ///< simulated cycles across all runs
  kModelExecutions,  ///< model-checker candidates examined
  kCacheHits,
  kCacheMisses,
  kCacheStores,
  kCacheEvictions,   ///< corrupt/stale entries dropped at lookup
};
inline constexpr std::size_t kNumCounters = 8;
const char* counter_name(Counter c);

struct PhaseStats {
  std::uint64_t count = 0;     ///< scope entries
  std::uint64_t total_ns = 0;  ///< topmost occurrences only (no re-entrant
                               ///< double counting)
  std::uint64_t self_ns = 0;   ///< total minus child-phase time
};

/// One merged calltree node (preorder; parent < index; -1 = a root).
struct SnapshotNode {
  Phase phase{};
  std::int32_t parent = -1;
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t self_ns = 0;
};

/// Point-in-time merge of every thread's accumulation since the last
/// reset(). Pure read: taking a snapshot twice yields identical trees.
struct Snapshot {
  std::uint64_t wall_ns = 0;  ///< since reset() (or process start)
  std::uint32_t threads = 0;  ///< threads that contributed samples
  std::array<PhaseStats, kNumPhases> phases{};
  std::array<std::uint64_t, kNumCounters> counters{};
  std::vector<SnapshotNode> nodes;  ///< merged tree, deterministic order

  std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  const PhaseStats& phase(Phase p) const {
    return phases[static_cast<std::size_t>(p)];
  }
  bool has_data() const;
};

#if defined(ARMBAR_PROF_DISABLED)

inline constexpr bool kCompiledIn = false;
inline bool compiled_in() { return false; }
inline bool enabled() { return false; }
inline void set_enabled(bool) {}
inline void reset() {}
inline void count(Counter, std::uint64_t = 1) {}
inline Snapshot snapshot() { return {}; }

class ScopedTimer {
 public:
  explicit constexpr ScopedTimer(Phase) noexcept {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

class Session {
 public:
  Session() = default;
  bool owned() const { return false; }
};

#else  // !ARMBAR_PROF_DISABLED

inline constexpr bool kCompiledIn = true;
inline bool compiled_in() { return true; }

namespace detail {
extern std::atomic<bool> g_enabled;
/// Push a Phase node on this thread's tree; returns the node index and
/// writes the start tick. Out of line: the common case is enabled()==false
/// and the call never happens.
std::int32_t enter(Phase p, std::uint64_t* start_ticks);
/// Pop: accumulate ticks since `start_ticks` into node `idx`. Tolerates a
/// reset() that happened mid-scope (the sample is dropped).
void leave(std::int32_t idx, std::uint64_t start_ticks);
void count_slow(Counter c, std::uint64_t delta);
}  // namespace detail

inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

/// Start a fresh profiling epoch: every thread's accumulation (and the
/// retired-thread pool) is discarded; the snapshot wall clock restarts.
/// Threads observe the epoch bump lazily at their next hook, so reset()
/// never touches another thread's tree.
void reset();

inline void count(Counter c, std::uint64_t delta = 1) {
  if (enabled()) detail::count_slow(c, delta);
}

Snapshot snapshot();

/// RAII scope: attributes the enclosing block to `p` on this thread.
class ScopedTimer {
 public:
  explicit ScopedTimer(Phase p) {
    if (enabled()) idx_ = detail::enter(p, &start_);
  }
  ~ScopedTimer() {
    if (idx_ >= 0) detail::leave(idx_, start_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  std::uint64_t start_ = 0;
  std::int32_t idx_ = -1;
};

/// Scoped profiling session: enables (and resets) the profiler unless an
/// outer session — e.g. the engine's --profile whole-run session — already
/// owns it, in which case this is a no-op and the outer session's
/// accumulation continues uninterrupted.
class Session {
 public:
  Session() {
    if (!enabled()) {
      reset();
      set_enabled(true);
      owned_ = true;
    }
  }
  ~Session() {
    if (owned_) set_enabled(false);
  }
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;
  bool owned() const { return owned_; }

 private:
  bool owned_ = false;
};

#endif  // ARMBAR_PROF_DISABLED

}  // namespace armbar::prof

// Hot-path hook macros. Both compile their arguments in every build; under
// ARMBAR_PROF_DISABLED the ScopedTimer is an empty constexpr object and
// count() an empty inline, so the optimizer strips the sites entirely.
#define ARMBAR_PROF_CONCAT_IMPL(a, b) a##b
#define ARMBAR_PROF_CONCAT(a, b) ARMBAR_PROF_CONCAT_IMPL(a, b)
#define ARMBAR_PROF_SCOPE(phase)                               \
  ::armbar::prof::ScopedTimer ARMBAR_PROF_CONCAT(              \
      armbar_prof_scope_, __LINE__)(::armbar::prof::Phase::phase)
#define ARMBAR_PROF_COUNT(counter, delta) \
  ::armbar::prof::count(::armbar::prof::Counter::counter, (delta))
