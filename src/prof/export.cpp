#include "prof/export.hpp"

#include <cstdio>
#include <string>
#include <vector>

namespace armbar::prof {

trace::Json host_prof_json(const Snapshot& s) {
  trace::Json hp = trace::Json::object();
  hp.set("schema", kHostProfSchema);
  hp.set("excluded_from_digests", true);
  hp.set("wall_ns", s.wall_ns);
  hp.set("threads", static_cast<std::uint64_t>(s.threads));

  trace::Json phases = trace::Json::object();
  for (std::size_t i = 0; i < kNumPhases; ++i) {
    const PhaseStats& p = s.phases[i];
    if (p.count == 0) continue;
    trace::Json e = trace::Json::object();
    e.set("count", p.count);
    e.set("total_ns", p.total_ns);
    e.set("self_ns", p.self_ns);
    phases.set(phase_name(static_cast<Phase>(i)), std::move(e));
  }
  hp.set("phases", std::move(phases));

  trace::Json counters = trace::Json::object();
  for (std::size_t i = 0; i < kNumCounters; ++i)
    if (s.counters[i] != 0)
      counters.set(counter_name(static_cast<Counter>(i)), s.counters[i]);
  hp.set("counters", std::move(counters));

  // Derived interpreter speed: guest instructions per host second spent
  // inside Machine::run. Falls back to the wall clock when no sim.run
  // scope fired (e.g. counters recorded from an uninstrumented build).
  const std::uint64_t instrs = s.counter(Counter::kSimInstructions);
  std::uint64_t sim_ns = s.phase(Phase::kSimRun).total_ns;
  if (sim_ns == 0) sim_ns = s.wall_ns;
  if (instrs > 0 && sim_ns > 0) {
    hp.set("sim_instructions", instrs);
    hp.set("sim_instructions_per_sec",
           static_cast<double>(instrs) / (static_cast<double>(sim_ns) * 1e-9));
  }
  return hp;
}

std::string collapsed_stacks(const Snapshot& s) {
  std::vector<std::string> paths(s.nodes.size());
  std::string out;
  for (std::size_t i = 0; i < s.nodes.size(); ++i) {
    const SnapshotNode& n = s.nodes[i];
    paths[i] = n.parent < 0
                   ? std::string(phase_name(n.phase))
                   : paths[static_cast<std::size_t>(n.parent)] + ";" +
                         phase_name(n.phase);
    if (n.self_ns == 0) continue;
    out += paths[i];
    out += ' ';
    out += std::to_string(n.self_ns);
    out += '\n';
  }
  return out;
}

std::string chrome_trace_json(const Snapshot& s) {
  // Pack children sequentially inside their parent's span. nodes is in
  // preorder with parent < index, so begin[] resolves in one pass.
  std::vector<std::uint64_t> begin(s.nodes.size(), 0);
  std::vector<std::uint64_t> cursor(s.nodes.size() + 1, 0);  // +1: root slot
  trace::Json events = trace::Json::array();
  for (std::size_t i = 0; i < s.nodes.size(); ++i) {
    const SnapshotNode& n = s.nodes[i];
    const std::size_t parent_slot =
        n.parent < 0 ? s.nodes.size() : static_cast<std::size_t>(n.parent);
    const std::uint64_t parent_begin =
        n.parent < 0 ? 0 : begin[static_cast<std::size_t>(n.parent)];
    begin[i] = parent_begin + cursor[parent_slot];
    cursor[parent_slot] += n.total_ns;

    trace::Json e = trace::Json::object();
    e.set("name", phase_name(n.phase));
    e.set("ph", "X");
    e.set("ts", static_cast<double>(begin[i]) / 1000.0);   // us
    e.set("dur", static_cast<double>(n.total_ns) / 1000.0);
    e.set("pid", 1);
    e.set("tid", 1);
    trace::Json args = trace::Json::object();
    args.set("count", n.count);
    args.set("self_ns", n.self_ns);
    e.set("args", std::move(args));
    events.push(std::move(e));
  }
  trace::Json meta = trace::Json::object();
  meta.set("name", "process_name");
  meta.set("ph", "M");
  meta.set("pid", 1);
  trace::Json margs = trace::Json::object();
  margs.set("name", "armbar host profile (aggregate)");
  meta.set("args", std::move(margs));
  events.push(std::move(meta));

  trace::Json doc = trace::Json::object();
  doc.set("traceEvents", std::move(events));
  doc.set("displayTimeUnit", "ms");
  return doc.dump(1);
}

namespace {

bool write_text(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

bool write_collapsed(const std::string& path, const Snapshot& s) {
  return write_text(path, collapsed_stacks(s));
}

bool write_chrome(const std::string& path, const Snapshot& s) {
  return write_text(path, chrome_trace_json(s) + "\n");
}

}  // namespace armbar::prof
