// Snapshot exporters: the `host_prof` report section, collapsed-stack
// output for flamegraph tooling, and an aggregate Chrome trace.
//
// Kept out of armbar_prof (the core registry) because they depend on
// trace::Json while armbar_trace itself links armbar_prof for the
// kTraceEmit hook — this split is what keeps the layering acyclic.
#pragma once

#include <string>

#include "prof/prof.hpp"
#include "trace/json.hpp"

namespace armbar::prof {

inline constexpr const char* kHostProfSchema = "armbar.host_prof/v1";

/// The `host_prof` section of an armbar.bench.report/v2 document:
///   { "schema": "armbar.host_prof/v1",
///     "excluded_from_digests": true,       // host time never enters a
///                                          //   cached value or digest
///     "wall_ns": W, "threads": T,
///     "phases":   {"sim.issue": {"count":N,"total_ns":T,"self_ns":S}, ...},
///     "counters": {"sim.instructions": N, ...},
///     "sim_instructions": N,               // present when any sim ran
///     "sim_instructions_per_sec": ips }    //   ips = instrs / sim.run ns
trace::Json host_prof_json(const Snapshot& s);

/// Collapsed-stack text (one "phase;phase;phase <self_ns>" line per tree
/// node with nonzero self time), consumable by standard flamegraph tools.
std::string collapsed_stacks(const Snapshot& s);
bool write_collapsed(const std::string& path, const Snapshot& s);

/// Aggregate Chrome trace_event JSON: the merged calltree laid out as one
/// synthetic timeline (children packed left-to-right inside their parent),
/// viewable at https://ui.perfetto.dev. Durations are real; start offsets
/// are synthetic (this is an aggregate profile, not an event log).
std::string chrome_trace_json(const Snapshot& s);
bool write_chrome(const std::string& path, const Snapshot& s);

}  // namespace armbar::prof
