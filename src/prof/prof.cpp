#include "prof/prof.hpp"

#include <chrono>
#include <map>
#include <mutex>

namespace armbar::prof {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kSimRun: return "sim.run";
    case Phase::kSimSchedule: return "sim.schedule";
    case Phase::kSimIssue: return "sim.issue";
    case Phase::kSimSbDrain: return "sim.sb_drain";
    case Phase::kSimCoherence: return "sim.coherence";
    case Phase::kSimVerify: return "sim.verify";
    case Phase::kTraceEmit: return "trace.emit";
    case Phase::kModelEnumerate: return "model.enumerate";
    case Phase::kFuzzGenerate: return "fuzz.generate";
    case Phase::kFuzzDiff: return "fuzz.diff";
    case Phase::kBenchNullLoop: return "bench.null_loop";
  }
  return "?";
}

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::kSimInstructions: return "sim.instructions";
    case Counter::kSimRuns: return "sim.runs";
    case Counter::kSimCycles: return "sim.cycles";
    case Counter::kModelExecutions: return "model.executions";
    case Counter::kCacheHits: return "cache.hits";
    case Counter::kCacheMisses: return "cache.misses";
    case Counter::kCacheStores: return "cache.stores";
    case Counter::kCacheEvictions: return "cache.evictions";
  }
  return "?";
}

bool Snapshot::has_data() const {
  for (const PhaseStats& p : phases)
    if (p.count != 0) return true;
  for (std::uint64_t c : counters)
    if (c != 0) return true;
  return false;
}

#if !defined(ARMBAR_PROF_DISABLED)

namespace detail {
std::atomic<bool> g_enabled{false};
}

namespace {

using Clock = std::chrono::steady_clock;

/// One calltree node. First-child/next-sibling links instead of per-node
/// maps: a node is 32 bytes and a child lookup is a short pointer chase
/// over siblings (trees here have < a dozen distinct children per node).
struct Node {
  Phase phase{};
  std::int32_t parent = -1;
  std::int32_t child = -1;
  std::int32_t sibling = -1;
  std::uint64_t ticks = 0;
  std::uint64_t count = 0;
};

/// Per-thread accumulation. Index 0 is the virtual root (phase unused).
struct ThreadState {
  std::vector<Node> nodes;
  std::array<std::uint64_t, kNumCounters> counters{};
  std::int32_t cur = 0;
  std::uint64_t epoch = 0;

  void start_epoch(std::uint64_t e) {
    epoch = e;
    nodes.clear();
    nodes.push_back(Node{});
    counters.fill(0);
    cur = 0;
  }
};

/// Snapshot-relevant copy of a thread's state, parked when the thread
/// exits so its samples survive it (pool workers may die before the
/// engine snapshots).
struct RetiredState {
  std::vector<Node> nodes;
  std::array<std::uint64_t, kNumCounters> counters{};
  std::uint64_t epoch = 0;
};

struct Global {
  std::mutex mu;
  std::vector<ThreadState*> threads;
  std::vector<RetiredState> retired;
  std::atomic<std::uint64_t> epoch{1};
  Clock::time_point session_start = Clock::now();
};

Global& g() {
  static Global* instance = new Global();  // leaked: outlives thread dtors
  return *instance;
}

/// Registers on first touch, parks its samples on thread exit.
struct ThreadStateHolder {
  ThreadState state;
  ThreadStateHolder() {
    Global& G = g();
    std::lock_guard<std::mutex> lock(G.mu);
    state.start_epoch(G.epoch.load(std::memory_order_relaxed));
    G.threads.push_back(&state);
  }
  ~ThreadStateHolder() {
    Global& G = g();
    std::lock_guard<std::mutex> lock(G.mu);
    for (auto it = G.threads.begin(); it != G.threads.end(); ++it) {
      if (*it == &state) {
        G.threads.erase(it);
        break;
      }
    }
    if (state.nodes.size() > 1 ||
        state.counters != std::array<std::uint64_t, kNumCounters>{}) {
      RetiredState r;
      r.nodes = std::move(state.nodes);
      r.counters = state.counters;
      r.epoch = state.epoch;
      G.retired.push_back(std::move(r));
    }
  }
};

ThreadState& tls() {
  thread_local ThreadStateHolder holder;
  return holder.state;
}

void sync_epoch(ThreadState& t) {
  const std::uint64_t e = g().epoch.load(std::memory_order_acquire);
  if (t.epoch != e) t.start_epoch(e);
}

std::uint64_t now_ticks() {
#if defined(__aarch64__)
  std::uint64_t v;
  asm volatile("mrs %0, cntvct_el0" : "=r"(v));
  return v;
#elif defined(__x86_64__)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count());
#endif
}

/// ns per raw tick, computed once, off the hot path (snapshot only).
double ns_per_tick() {
  static const double v = [] {
#if defined(__aarch64__)
    std::uint64_t f;
    asm volatile("mrs %0, cntfrq_el0" : "=r"(f));
    if (f != 0) return 1e9 / static_cast<double>(f);
#endif
    // Calibrate against steady_clock over a ~2ms busy window. Good to a
    // few percent, which is plenty for attribution shares.
    const auto c0 = Clock::now();
    const std::uint64_t t0 = now_ticks();
    while (Clock::now() - c0 < std::chrono::milliseconds(2)) {
    }
    const auto c1 = Clock::now();
    const std::uint64_t t1 = now_ticks();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(c1 - c0).count());
    return t1 > t0 ? ns / static_cast<double>(t1 - t0) : 1.0;
  }();
  return v;
}

/// Merge tree: map-keyed children for deterministic (phase-ordered)
/// flattening regardless of which thread created a node first.
struct MergeNode {
  std::map<Phase, std::size_t> kids;
  std::uint64_t ticks = 0;
  std::uint64_t count = 0;
};

void merge_tree(const std::vector<Node>& src, std::int32_t src_idx,
                std::vector<MergeNode>& dst, std::size_t dst_idx) {
  for (std::int32_t c = src[src_idx].child; c >= 0; c = src[c].sibling) {
    auto [it, inserted] =
        dst[dst_idx].kids.try_emplace(src[c].phase, dst.size());
    if (inserted) dst.push_back(MergeNode{});
    const std::size_t d = it->second;
    dst[d].ticks += src[c].ticks;
    dst[d].count += src[c].count;
    merge_tree(src, c, dst, d);
  }
}

/// Preorder flatten; fills total/count, self computed by the caller.
void flatten(const std::vector<MergeNode>& m, std::size_t m_idx,
             std::int32_t parent, double npt, Snapshot& s) {
  for (const auto& [phase, kid] : m[m_idx].kids) {
    SnapshotNode n;
    n.phase = phase;
    n.parent = parent;
    n.count = m[kid].count;
    n.total_ns =
        static_cast<std::uint64_t>(static_cast<double>(m[kid].ticks) * npt);
    const std::int32_t idx = static_cast<std::int32_t>(s.nodes.size());
    s.nodes.push_back(n);
    flatten(m, kid, idx, npt, s);
  }
}

}  // namespace

namespace detail {

std::int32_t enter(Phase p, std::uint64_t* start_ticks) {
  ThreadState& t = tls();
  sync_epoch(t);
  std::int32_t c = t.nodes[t.cur].child;
  while (c >= 0 && t.nodes[c].phase != p) c = t.nodes[c].sibling;
  if (c < 0) {
    c = static_cast<std::int32_t>(t.nodes.size());
    t.nodes.push_back(
        Node{p, t.cur, -1, t.nodes[t.cur].child, 0, 0});
    t.nodes[t.cur].child = c;
  }
  t.cur = c;
  *start_ticks = now_ticks();
  return c;
}

void leave(std::int32_t idx, std::uint64_t start_ticks) {
  ThreadState& t = tls();
  // A reset() between enter and leave cleared the tree; `cur` then no
  // longer points at our node. Drop the sample — the new epoch must not
  // inherit a half-open scope.
  if (idx < 0 || static_cast<std::size_t>(idx) >= t.nodes.size() ||
      t.cur != idx)
    return;
  Node& n = t.nodes[idx];
  n.ticks += now_ticks() - start_ticks;
  ++n.count;
  t.cur = n.parent;
}

void count_slow(Counter c, std::uint64_t delta) {
  ThreadState& t = tls();
  sync_epoch(t);
  t.counters[static_cast<std::size_t>(c)] += delta;
}

}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

void reset() {
  Global& G = g();
  std::lock_guard<std::mutex> lock(G.mu);
  G.epoch.fetch_add(1, std::memory_order_release);
  G.retired.clear();
  G.session_start = Clock::now();
}

Snapshot snapshot() {
  Global& G = g();
  std::lock_guard<std::mutex> lock(G.mu);
  const std::uint64_t e = G.epoch.load(std::memory_order_acquire);

  Snapshot s;
  s.wall_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           G.session_start)
          .count());

  std::vector<MergeNode> merged;
  merged.push_back(MergeNode{});  // root
  const auto contribute = [&](const std::vector<Node>& nodes,
                              const std::array<std::uint64_t, kNumCounters>&
                                  counters) {
    bool any = nodes.size() > 1;
    if (!nodes.empty()) merge_tree(nodes, 0, merged, 0);
    for (std::size_t i = 0; i < kNumCounters; ++i) {
      s.counters[i] += counters[i];
      any = any || counters[i] != 0;
    }
    if (any) ++s.threads;
  };
  for (const ThreadState* t : G.threads)
    if (t->epoch == e) contribute(t->nodes, t->counters);
  for (const RetiredState& r : G.retired)
    if (r.epoch == e) contribute(r.nodes, r.counters);

  const double npt = ns_per_tick();
  flatten(merged, 0, -1, npt, s);

  // self = total minus child totals (clamped: timer jitter can make the
  // children sum a hair past the parent).
  std::vector<std::uint64_t> child_ns(s.nodes.size(), 0);
  for (std::size_t i = 0; i < s.nodes.size(); ++i)
    if (s.nodes[i].parent >= 0)
      child_ns[static_cast<std::size_t>(s.nodes[i].parent)] +=
          s.nodes[i].total_ns;
  for (std::size_t i = 0; i < s.nodes.size(); ++i) {
    SnapshotNode& n = s.nodes[i];
    n.self_ns = n.total_ns > child_ns[i] ? n.total_ns - child_ns[i] : 0;
    PhaseStats& p = s.phases[static_cast<std::size_t>(n.phase)];
    p.count += n.count;
    p.self_ns += n.self_ns;
    // total counts topmost occurrences only: skip when an ancestor already
    // carries this phase (re-entrant recursion would double-bill).
    bool nested = false;
    for (std::int32_t a = n.parent; a >= 0;
         a = s.nodes[static_cast<std::size_t>(a)].parent)
      if (s.nodes[static_cast<std::size_t>(a)].phase == n.phase) {
        nested = true;
        break;
      }
    if (!nested) p.total_ns += n.total_ns;
  }
  return s;
}

#endif  // !ARMBAR_PROF_DISABLED

}  // namespace armbar::prof
