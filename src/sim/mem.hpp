// Simulated memory system: word storage, per-line MESI-style coherence,
// NUMA home placement, and the latency model for coherence requests.
//
// Design notes
// ------------
// * Caches are infinite (no evictions): line presence is tracked purely by
//   the coherence state, which is all the paper's workloads exercise. The
//   interesting events are ownership transfers (RMRs), not capacity misses.
// * Requests are granted synchronously: each line carries `busy_until`,
//   serializing transfers on the same line. This keeps the simulator
//   single-pass and deterministic while modelling transfer serialization
//   (e.g. the thundering herd after a lock release).
// * Store VISIBILITY is deferred to drain completion through a per-line
//   pending-write slot: until the completion cycle, cores still holding a
//   stale S copy keep reading the old value, while any core that must
//   transfer the line serializes after completion and sees the new value.
//   This is what lets weakly-ordered reorderings (paper Table 1) actually
//   manifest: two drains issued together but completing at different times
//   become visible out of program order.
// * Values live at 8-byte-word granularity, which gives the simulator the
//   64-bit single-copy atomicity that Pilot (paper §4.3) relies on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.hpp"
#include "sim/platform.hpp"
#include "trace/trace.hpp"

namespace armbar::sim {

namespace fault {
class FaultEngine;
}  // namespace fault

inline constexpr std::uint32_t kMaxCores = 64;
inline constexpr std::int16_t kNoOwner = -1;

/// Coherence metadata for one cache line.
struct LineState {
  std::int16_t owner = kNoOwner;  ///< core holding the line in M/E, or kNoOwner
  std::uint64_t sharers = 0;      ///< bitmask of cores holding the line in S
  Cycle busy_until = 0;           ///< transfers on this line serialize after this

  // In-flight store: becomes architecturally visible at `pending_at`.
  bool pending = false;
  Addr pending_word = 0;
  std::uint64_t pending_value = 0;
  Cycle pending_at = 0;
  std::int16_t pending_owner = kNoOwner;   ///< owner once applied
  std::uint64_t pending_keep_sharers = 0;  ///< sharers surviving the apply
};

/// Aggregate coherence traffic counters.
struct MemStats {
  std::uint64_t gets_local = 0;    ///< read transfers within one node
  std::uint64_t gets_remote = 0;   ///< read transfers across nodes
  std::uint64_t getm_local = 0;    ///< ownership transfers within one node
  std::uint64_t getm_remote = 0;   ///< ownership transfers across nodes
  std::uint64_t mem_fills = 0;     ///< fills straight from memory
  std::uint64_t upgrades = 0;      ///< S->M upgrades
  std::uint64_t hits = 0;          ///< requests satisfied without a transfer
};

/// The shared memory + coherence fabric of one simulated machine.
class MemorySystem {
 public:
  /// Invalidation/downgrade notification: (victim core, line, effective cycle).
  /// Used by the machine to clear exclusive monitors and wake WFE'd cores.
  using InvalidateHook = std::function<void(CoreId, Addr, Cycle)>;

  MemorySystem(const PlatformSpec& spec, std::size_t mem_bytes);

  void set_invalidate_hook(InvalidateHook hook) { inv_hook_ = std::move(hook); }

  /// Assign a home NUMA node to [base, base+bytes). Defaults to node 0.
  void set_home(Addr base, std::size_t bytes, NodeId node);
  NodeId home_of(Addr a) const;

  std::size_t size_bytes() const { return words_.size() * kWordBytes; }

  // ---- functional access (setup/teardown, no timing) ----
  /// End-of-time view: includes any pending (in-flight) store's value.
  std::uint64_t peek(Addr a) const;
  void poke(Addr a, std::uint64_t v);

  // ---- timed coherence operations ----

  /// True if a load by `core` to `a` hits (core is owner or sharer).
  bool load_hits(CoreId core, Addr a) const;

  /// True if `core` may write `a` without a transfer (owner in M/E).
  bool owns(CoreId core, Addr a) const;

  /// Read access. Returns the completion cycle and delivers the value.
  /// Issues a GetS transfer if the line is not present. `exclusive` loads
  /// (LDXR) never take stale hits: they serialize after any in-flight
  /// store on the line, otherwise a stale read could slip past the
  /// exclusive monitor and break read-modify-write atomicity.
  Cycle load(CoreId core, Addr a, Cycle now, std::uint64_t& value_out,
             bool exclusive = false);

  /// Atomic exchange (SWP): writes `v`, delivers the pre-store value, and
  /// returns the completion cycle. Serialized like a store; never reads
  /// stale data.
  Cycle exchange(CoreId core, Addr a, std::uint64_t v, Cycle now,
                 std::uint64_t& old_out, bool& remote_snoop_out);

  /// Write access (a store-buffer drain). Returns the completion cycle.
  /// Issues a GetM/upgrade if the core does not own the line; invalidates
  /// sharers through the hook. `remote_snoop_out` reports whether the
  /// transfer had to cross a node boundary (used for ACE barrier-transaction
  /// latency selection).
  Cycle store(CoreId core, Addr a, std::uint64_t v, Cycle now, bool& remote_snoop_out);

  /// True if any core other than `core` currently holds the line.
  bool any_remote_holder(CoreId core, Addr a) const;

  const MemStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MemStats{}; }

  const LineState& line_state(Addr a) const { return lines_[line_index(a)]; }

  /// Test seam for the invariant checker: overwrite a line's coherence
  /// metadata wholesale. Exists so tests can construct states the simulator
  /// itself can never reach (e.g. an owner plus a foreign sharer) and prove
  /// the MachineVerifier catches them. Never called by the simulator.
  void debug_set_line_state(Addr a, const LineState& ls) {
    lines_[line_index(a)] = ls;
  }

 private:
  // Tracer attachment goes through Machine::set_tracer() (single attach
  // point); see the note on Core::set_tracer. Fault engines follow the
  // same pattern, and MachineVerifier scans the line table.
  friend class Machine;
  friend class MachineVerifier;
  void set_tracer(trace::Tracer* t) { tracer_ = t; }
  void set_fault_engine(fault::FaultEngine* f) { fault_ = f; }

  std::size_t word_index(Addr a) const;
  std::size_t line_index(Addr a) const;
  LineState& line_mut(Addr a) { return lines_[line_index(a)]; }
  void apply_pending(LineState& ls);
  void notify_holders(const LineState& ls, Addr line, CoreId except, Cycle at);

  const PlatformSpec spec_;
  std::vector<std::uint64_t> words_;
  std::vector<LineState> lines_;
  std::vector<NodeId> home_;  ///< per home-granule node id
  InvalidateHook inv_hook_;
  trace::Tracer* tracer_ = nullptr;
  fault::FaultEngine* fault_ = nullptr;
  MemStats stats_;

  static constexpr std::size_t kHomeGranule = 4096;  ///< home map granularity
};

}  // namespace armbar::sim
