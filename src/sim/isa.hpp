// Micro-ISA of the ARMv8-lite simulator.
//
// The instruction set is the minimal ARMv8 subset the paper's workloads need:
// loads/stores (plain, acquire/release, exclusive), ALU ops, compare and
// branch, NOP, and the full barrier family (DMB/DSB with full/st/ld options,
// ISB). Semantics follow the ARM ARM as summarized in the paper's §2.2.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace armbar::sim {

/// Register names. 31 general-purpose registers plus XZR (reads as zero,
/// writes discarded), matching AArch64 conventions.
enum Reg : std::uint8_t {
  X0 = 0, X1, X2, X3, X4, X5, X6, X7, X8, X9, X10, X11, X12, X13, X14, X15,
  X16, X17, X18, X19, X20, X21, X22, X23, X24, X25, X26, X27, X28, X29, X30,
  XZR = 31,
};
inline constexpr std::uint32_t kNumRegs = 32;

enum class Op : std::uint8_t {
  kNop,
  kHalt,      // core stops; machine finishes when all cores halt
  kWfe,       // wait-for-event: park until a watched line changes (see core.cpp)

  // ALU — rd <- rn OP (rm | imm)
  kMovImm,    // rd <- imm
  kMov,       // rd <- rn
  kAdd, kAddImm,
  kSub, kSubImm,
  kAnd, kAndImm,
  kOrr, kOrrImm,
  kEor, kEorImm,
  kLsl, kLslImm,
  kLsr, kLsrImm,
  kMul,

  // Memory — address = rn + imm (kLdr/kStr) or rn + rm (kLdrIdx/kStrIdx).
  // All accesses are 8-byte, naturally aligned (single-copy atomic).
  kLdr, kLdrIdx,
  kStr, kStrIdx,
  kLdar,      // load-acquire (RCsc)
  kLdapr,     // load-acquire RCpc (ARMv8.3): weaker pipe impact, see core.cpp
  kStlr,      // store-release
  kLdxr,      // load-exclusive (sets local monitor)
  kStxr,      // store-exclusive; rd <- 0 on success, 1 on failure
  kSwp,       // atomic exchange (ARMv8.1 LSE): rd <- [rn], [rn] <- rm

  // Compare & branch. kCmp sets the (signed) condition value rn - rm.
  kCmp, kCmpImm,
  kB,         // unconditional
  kBeq, kBne, kBlt, kBle, kBgt, kBge,
  kCbz, kCbnz,  // compare rn against zero and branch

  // Barriers (inner-shareable domain; the paper only studies `ish`).
  kDmbFull, kDmbSt, kDmbLd,
  kDsbFull, kDsbSt, kDsbLd,
  kIsb,
};

/// True when `op` is any barrier instruction.
constexpr bool is_barrier(Op op) {
  switch (op) {
    case Op::kDmbFull: case Op::kDmbSt: case Op::kDmbLd:
    case Op::kDsbFull: case Op::kDsbSt: case Op::kDsbLd:
    case Op::kIsb:
      return true;
    default:
      return false;
  }
}

constexpr bool is_load(Op op) {
  return op == Op::kLdr || op == Op::kLdrIdx || op == Op::kLdar ||
         op == Op::kLdapr || op == Op::kLdxr;
}

constexpr bool is_store(Op op) {
  return op == Op::kStr || op == Op::kStrIdx || op == Op::kStlr ||
         op == Op::kStxr || op == Op::kSwp;
}

constexpr bool is_branch(Op op) {
  switch (op) {
    case Op::kB: case Op::kBeq: case Op::kBne: case Op::kBlt:
    case Op::kBle: case Op::kBgt: case Op::kBge: case Op::kCbz: case Op::kCbnz:
      return true;
    default:
      return false;
  }
}

constexpr bool is_conditional_branch(Op op) {
  return is_branch(op) && op != Op::kB;
}

/// Number of opcodes (dense: Op values are 0..kNumOps-1). Lets the
/// predecoder and its coverage test iterate the whole ISA.
inline constexpr std::uint32_t kNumOps = static_cast<std::uint32_t>(Op::kIsb) + 1;

/// Dispatch class of an opcode. The predecoder tags every instruction with
/// one of these so Core::issue switches once on a dense ~dozen-way class
/// instead of re-switching on the ~45-way Op at several sites per
/// instruction. Flavour differences within a class (which ALU operation,
/// which acquire semantics, which blocking-barrier transaction) ride along
/// as the original Op plus predecoded flag bits.
enum class OpClass : std::uint8_t {
  kNop,
  kHalt,
  kWfe,
  kAlu,              ///< MOV/MOVI, arithmetic/logic/shift, CMP/CMPI
  kJump,             ///< unconditional B
  kCondBranch,       ///< Beq..Bge, Cbz/Cbnz
  kLoad,             ///< LDR/LDR-idx/LDAR/LDAPR/LDXR
  kStore,            ///< STR/STR-idx/STLR (store-buffer entry)
  kSwp,
  kStxr,
  kIsb,
  kDmbLd,            ///< blocks until prior loads complete, no bus txn
  kBlockingBarrier,  ///< DMB full + DSB family: watch prior stores, pay txn
  kDmbSt,            ///< arms the store gate, pipe keeps flowing
};

/// Total Op -> OpClass map. No default case: adding an Op without
/// classifying it is a compile error under -Werror=switch.
constexpr OpClass op_class(Op op) {
  switch (op) {
    case Op::kNop: return OpClass::kNop;
    case Op::kHalt: return OpClass::kHalt;
    case Op::kWfe: return OpClass::kWfe;
    case Op::kMovImm: case Op::kMov:
    case Op::kAdd: case Op::kAddImm: case Op::kSub: case Op::kSubImm:
    case Op::kAnd: case Op::kAndImm: case Op::kOrr: case Op::kOrrImm:
    case Op::kEor: case Op::kEorImm: case Op::kLsl: case Op::kLslImm:
    case Op::kLsr: case Op::kLsrImm: case Op::kMul:
    case Op::kCmp: case Op::kCmpImm:
      return OpClass::kAlu;
    case Op::kB: return OpClass::kJump;
    case Op::kBeq: case Op::kBne: case Op::kBlt: case Op::kBle:
    case Op::kBgt: case Op::kBge: case Op::kCbz: case Op::kCbnz:
      return OpClass::kCondBranch;
    case Op::kLdr: case Op::kLdrIdx: case Op::kLdar: case Op::kLdapr:
    case Op::kLdxr:
      return OpClass::kLoad;
    case Op::kStr: case Op::kStrIdx: case Op::kStlr:
      return OpClass::kStore;
    case Op::kSwp: return OpClass::kSwp;
    case Op::kStxr: return OpClass::kStxr;
    case Op::kIsb: return OpClass::kIsb;
    case Op::kDmbLd: return OpClass::kDmbLd;
    case Op::kDmbFull: case Op::kDsbFull: case Op::kDsbSt: case Op::kDsbLd:
      return OpClass::kBlockingBarrier;
    case Op::kDmbSt: return OpClass::kDmbSt;
  }
  return OpClass::kNop;  // unreachable: the switch is total
}

/// One decoded instruction. `target` holds the resolved instruction index
/// for branches (filled in by the assembler when labels resolve).
struct Instr {
  Op op = Op::kNop;
  Reg rd = XZR;
  Reg rn = XZR;
  Reg rm = XZR;
  std::int64_t imm = 0;
  std::uint32_t target = 0;
};

/// Human-readable mnemonic (diagnostics, traces, test failure messages).
std::string to_string(Op op);
std::string to_string(const Instr& ins);

/// Stable single-token opcode name for text serialization (no spaces or
/// parentheses, unlike the display mnemonics: "dmb.ish", "ldr.idx", ...).
/// These names are part of the armbar.repro/v1 bundle format — do not
/// rename existing tokens.
const char* op_token(Op op);

/// Inverse of op_token(); returns false on an unknown token.
bool op_from_token(const std::string& token, Op* out);

}  // namespace armbar::sim
