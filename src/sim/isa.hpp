// Micro-ISA of the ARMv8-lite simulator.
//
// The instruction set is the minimal ARMv8 subset the paper's workloads need:
// loads/stores (plain, acquire/release, exclusive), ALU ops, compare and
// branch, NOP, and the full barrier family (DMB/DSB with full/st/ld options,
// ISB). Semantics follow the ARM ARM as summarized in the paper's §2.2.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace armbar::sim {

/// Register names. 31 general-purpose registers plus XZR (reads as zero,
/// writes discarded), matching AArch64 conventions.
enum Reg : std::uint8_t {
  X0 = 0, X1, X2, X3, X4, X5, X6, X7, X8, X9, X10, X11, X12, X13, X14, X15,
  X16, X17, X18, X19, X20, X21, X22, X23, X24, X25, X26, X27, X28, X29, X30,
  XZR = 31,
};
inline constexpr std::uint32_t kNumRegs = 32;

enum class Op : std::uint8_t {
  kNop,
  kHalt,      // core stops; machine finishes when all cores halt
  kWfe,       // wait-for-event: park until a watched line changes (see core.cpp)

  // ALU — rd <- rn OP (rm | imm)
  kMovImm,    // rd <- imm
  kMov,       // rd <- rn
  kAdd, kAddImm,
  kSub, kSubImm,
  kAnd, kAndImm,
  kOrr, kOrrImm,
  kEor, kEorImm,
  kLsl, kLslImm,
  kLsr, kLsrImm,
  kMul,

  // Memory — address = rn + imm (kLdr/kStr) or rn + rm (kLdrIdx/kStrIdx).
  // All accesses are 8-byte, naturally aligned (single-copy atomic).
  kLdr, kLdrIdx,
  kStr, kStrIdx,
  kLdar,      // load-acquire (RCsc)
  kLdapr,     // load-acquire RCpc (ARMv8.3): weaker pipe impact, see core.cpp
  kStlr,      // store-release
  kLdxr,      // load-exclusive (sets local monitor)
  kStxr,      // store-exclusive; rd <- 0 on success, 1 on failure
  kSwp,       // atomic exchange (ARMv8.1 LSE): rd <- [rn], [rn] <- rm

  // Compare & branch. kCmp sets the (signed) condition value rn - rm.
  kCmp, kCmpImm,
  kB,         // unconditional
  kBeq, kBne, kBlt, kBle, kBgt, kBge,
  kCbz, kCbnz,  // compare rn against zero and branch

  // Barriers (inner-shareable domain; the paper only studies `ish`).
  kDmbFull, kDmbSt, kDmbLd,
  kDsbFull, kDsbSt, kDsbLd,
  kIsb,
};

/// True when `op` is any barrier instruction.
constexpr bool is_barrier(Op op) {
  switch (op) {
    case Op::kDmbFull: case Op::kDmbSt: case Op::kDmbLd:
    case Op::kDsbFull: case Op::kDsbSt: case Op::kDsbLd:
    case Op::kIsb:
      return true;
    default:
      return false;
  }
}

constexpr bool is_load(Op op) {
  return op == Op::kLdr || op == Op::kLdrIdx || op == Op::kLdar ||
         op == Op::kLdapr || op == Op::kLdxr;
}

constexpr bool is_store(Op op) {
  return op == Op::kStr || op == Op::kStrIdx || op == Op::kStlr ||
         op == Op::kStxr || op == Op::kSwp;
}

constexpr bool is_branch(Op op) {
  switch (op) {
    case Op::kB: case Op::kBeq: case Op::kBne: case Op::kBlt:
    case Op::kBle: case Op::kBgt: case Op::kBge: case Op::kCbz: case Op::kCbnz:
      return true;
    default:
      return false;
  }
}

constexpr bool is_conditional_branch(Op op) {
  return is_branch(op) && op != Op::kB;
}

/// One decoded instruction. `target` holds the resolved instruction index
/// for branches (filled in by the assembler when labels resolve).
struct Instr {
  Op op = Op::kNop;
  Reg rd = XZR;
  Reg rn = XZR;
  Reg rm = XZR;
  std::int64_t imm = 0;
  std::uint32_t target = 0;
};

/// Human-readable mnemonic (diagnostics, traces, test failure messages).
std::string to_string(Op op);
std::string to_string(const Instr& ins);

/// Stable single-token opcode name for text serialization (no spaces or
/// parentheses, unlike the display mnemonics: "dmb.ish", "ldr.idx", ...).
/// These names are part of the armbar.repro/v1 bundle format — do not
/// rename existing tokens.
const char* op_token(Op op);

/// Inverse of op_token(); returns false on an unknown token.
bool op_from_token(const std::string& token, Op* out);

}  // namespace armbar::sim
