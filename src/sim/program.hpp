// Program container + fluent assembler for the micro-ISA.
//
// All experiment workloads (src/simprog) are built through `Asm`, a tiny
// label-resolving assembler:
//
//   Asm a;
//   a.movi(X2, 0);
//   a.label("loop");
//   a.ldr(X3, X0, 0);
//   a.dmb_full();
//   a.addi(X2, X2, 1);
//   a.cmpi(X2, n);
//   a.ble("loop");
//   a.halt();
//   Program p = a.take("my-kernel");
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "sim/isa.hpp"

namespace armbar::sim {

/// An assembled program: straight-line instruction vector; branches hold
/// resolved instruction indices.
struct Program {
  std::string name;
  std::vector<Instr> code;

  std::uint32_t size() const { return static_cast<std::uint32_t>(code.size()); }
  const Instr& at(std::uint32_t pc) const { return code[pc]; }
  std::string disassemble() const;

  /// Round-trippable text form (armbar.simprog/v1): a `.name` line followed
  /// by one `<op-token> <rd> <rn> <rm> <imm> <target>` line per instruction.
  /// This — not disassemble(), whose mnemonics contain spaces/brackets — is
  /// the format embedded in repro bundles.
  std::string serialize() const;
};

/// Parse Program::serialize() output. Returns false (and sets *err) on any
/// malformed line; on success *out holds the program.
bool parse_program(const std::string& text, Program* out, std::string* err);

// ---- predecoded micro-op stream (ISSUE 7 fast path) ----------------------
//
// Everything Core::issue needs per instruction, resolved once at load time
// into one cache-friendly array: the dispatch class, the registers whose
// readiness gates issue, and the flavour bits the grouped load/store/barrier
// cases test (instead of re-comparing Op at several sites per instruction).

/// MicroOp::flags bits.
inline constexpr std::uint8_t kUopNonspec = 1u << 0;  ///< never issues speculatively
inline constexpr std::uint8_t kUopIndexed = 1u << 1;  ///< address = rn + rm (else rn + imm)
inline constexpr std::uint8_t kUopRelease = 1u << 2;  ///< STLR store-release
inline constexpr std::uint8_t kUopAcqSc = 1u << 3;    ///< LDAR acquire (RCsc)
inline constexpr std::uint8_t kUopAcqPc = 1u << 4;    ///< LDAPR acquire (RCpc)
inline constexpr std::uint8_t kUopExcl = 1u << 5;     ///< LDXR sets the monitor

struct MicroOp {
  Op op = Op::kNop;            ///< original opcode (traces, barrier kind, ALU)
  OpClass cls = OpClass::kNop;
  Reg rd = XZR;
  Reg rn = XZR;
  Reg rm = XZR;
  std::uint8_t src1 = XZR;     ///< issue gates: registers whose ready-cycle
  std::uint8_t src2 = XZR;     ///<   must have passed (XZR = no constraint)
  std::uint8_t flags = 0;
  std::int64_t imm = 0;
  std::uint32_t target = 0;
};

/// Predecode one instruction at `pc`. Exposed for the coverage unit test;
/// callers normally go through decode_program().
MicroOp decode_instr(const Instr& ins);

/// An immutable predecoded program: owns the source Program (no pointer
/// lifetime to manage) plus the micro-op array the core executes from.
class DecodedProgram {
 public:
  explicit DecodedProgram(Program src);

  const Program& source() const { return src_; }
  const std::string& name() const { return src_.name; }
  std::uint32_t size() const { return static_cast<std::uint32_t>(uops_.size()); }
  const MicroOp* uops() const { return uops_.data(); }

 private:
  Program src_;
  std::vector<MicroOp> uops_;
};

/// The unit of program binding: Assembler::take() -> Program ->
/// decode_program() -> handle -> Machine::load_program. Shared so one
/// predecode serves any number of cores (and outlives the Machine if the
/// caller keeps it).
using ProgramHandle = std::shared_ptr<const DecodedProgram>;

ProgramHandle decode_program(Program src);

/// Fluent assembler with forward-reference label resolution.
class Asm {
 public:
  Asm& label(const std::string& name) {
    ARMBAR_CHECK_MSG(!labels_.contains(name), "duplicate label");
    labels_[name] = static_cast<std::uint32_t>(code_.size());
    return *this;
  }

  // --- misc ---
  Asm& nop() { return emit({Op::kNop}); }
  Asm& nops(std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) nop();
    return *this;
  }
  Asm& halt() { return emit({Op::kHalt}); }
  Asm& wfe() { return emit({Op::kWfe}); }

  // --- ALU ---
  Asm& movi(Reg rd, std::int64_t imm) { return emit({Op::kMovImm, rd, XZR, XZR, imm}); }
  Asm& mov(Reg rd, Reg rn) { return emit({Op::kMov, rd, rn}); }
  Asm& add(Reg rd, Reg rn, Reg rm) { return emit({Op::kAdd, rd, rn, rm}); }
  Asm& addi(Reg rd, Reg rn, std::int64_t imm) { return emit({Op::kAddImm, rd, rn, XZR, imm}); }
  Asm& sub(Reg rd, Reg rn, Reg rm) { return emit({Op::kSub, rd, rn, rm}); }
  Asm& subi(Reg rd, Reg rn, std::int64_t imm) { return emit({Op::kSubImm, rd, rn, XZR, imm}); }
  Asm& and_(Reg rd, Reg rn, Reg rm) { return emit({Op::kAnd, rd, rn, rm}); }
  Asm& andi(Reg rd, Reg rn, std::int64_t imm) { return emit({Op::kAndImm, rd, rn, XZR, imm}); }
  Asm& orr(Reg rd, Reg rn, Reg rm) { return emit({Op::kOrr, rd, rn, rm}); }
  Asm& orri(Reg rd, Reg rn, std::int64_t imm) { return emit({Op::kOrrImm, rd, rn, XZR, imm}); }
  Asm& eor(Reg rd, Reg rn, Reg rm) { return emit({Op::kEor, rd, rn, rm}); }
  Asm& eori(Reg rd, Reg rn, std::int64_t imm) { return emit({Op::kEorImm, rd, rn, XZR, imm}); }
  Asm& lsl(Reg rd, Reg rn, Reg rm) { return emit({Op::kLsl, rd, rn, rm}); }
  Asm& lsli(Reg rd, Reg rn, std::int64_t imm) { return emit({Op::kLslImm, rd, rn, XZR, imm}); }
  Asm& lsr(Reg rd, Reg rn, Reg rm) { return emit({Op::kLsr, rd, rn, rm}); }
  Asm& lsri(Reg rd, Reg rn, std::int64_t imm) { return emit({Op::kLsrImm, rd, rn, XZR, imm}); }
  Asm& mul(Reg rd, Reg rn, Reg rm) { return emit({Op::kMul, rd, rn, rm}); }

  // --- memory ---
  Asm& ldr(Reg rd, Reg rn, std::int64_t off = 0) { return emit({Op::kLdr, rd, rn, XZR, off}); }
  Asm& ldr_idx(Reg rd, Reg rn, Reg rm) { return emit({Op::kLdrIdx, rd, rn, rm}); }
  Asm& str(Reg rs, Reg rn, std::int64_t off = 0) { return emit({Op::kStr, rs, rn, XZR, off}); }
  Asm& str_idx(Reg rs, Reg rn, Reg rm) { return emit({Op::kStrIdx, rs, rn, rm}); }
  Asm& ldar(Reg rd, Reg rn, std::int64_t off = 0) { return emit({Op::kLdar, rd, rn, XZR, off}); }
  Asm& ldapr(Reg rd, Reg rn, std::int64_t off = 0) { return emit({Op::kLdapr, rd, rn, XZR, off}); }
  Asm& stlr(Reg rs, Reg rn, std::int64_t off = 0) { return emit({Op::kStlr, rs, rn, XZR, off}); }
  Asm& ldxr(Reg rd, Reg rn) { return emit({Op::kLdxr, rd, rn}); }
  /// stxr rd, rs, [rn] — rd gets 0 on success, 1 on failure.
  Asm& stxr(Reg rd, Reg rs, Reg rn) { return emit({Op::kStxr, rd, rn, rs}); }
  /// swp rd, rs, [rn] — atomic exchange: rd <- old value, [rn] <- rs.
  Asm& swp(Reg rd, Reg rs, Reg rn) { return emit({Op::kSwp, rd, rn, rs}); }

  // --- compare & branch ---
  Asm& cmp(Reg rn, Reg rm) { return emit({Op::kCmp, XZR, rn, rm}); }
  Asm& cmpi(Reg rn, std::int64_t imm) { return emit({Op::kCmpImm, XZR, rn, XZR, imm}); }
  Asm& b(const std::string& l) { return branch(Op::kB, XZR, l); }
  Asm& beq(const std::string& l) { return branch(Op::kBeq, XZR, l); }
  Asm& bne(const std::string& l) { return branch(Op::kBne, XZR, l); }
  Asm& blt(const std::string& l) { return branch(Op::kBlt, XZR, l); }
  Asm& ble(const std::string& l) { return branch(Op::kBle, XZR, l); }
  Asm& bgt(const std::string& l) { return branch(Op::kBgt, XZR, l); }
  Asm& bge(const std::string& l) { return branch(Op::kBge, XZR, l); }
  Asm& cbz(Reg rn, const std::string& l) { return branch(Op::kCbz, rn, l); }
  Asm& cbnz(Reg rn, const std::string& l) { return branch(Op::kCbnz, rn, l); }

  // --- barriers ---
  Asm& dmb_full() { return emit({Op::kDmbFull}); }
  Asm& dmb_st() { return emit({Op::kDmbSt}); }
  Asm& dmb_ld() { return emit({Op::kDmbLd}); }
  Asm& dsb_full() { return emit({Op::kDsbFull}); }
  Asm& dsb_st() { return emit({Op::kDsbSt}); }
  Asm& dsb_ld() { return emit({Op::kDsbLd}); }
  Asm& isb() { return emit({Op::kIsb}); }

  /// Append a raw instruction (used by generator code that picks ops
  /// dynamically, e.g. "insert barrier kind K here").
  Asm& emit(Instr ins) {
    code_.push_back(ins);
    return *this;
  }

  /// Finalize: resolve all label references; returns the program.
  Program take(std::string name);

  std::uint32_t here() const { return static_cast<std::uint32_t>(code_.size()); }

 private:
  Asm& branch(Op op, Reg rn, const std::string& l) {
    fixups_.emplace_back(static_cast<std::uint32_t>(code_.size()), l);
    return emit({op, XZR, rn, XZR, 0, 0});
  }

  std::vector<Instr> code_;
  std::unordered_map<std::string, std::uint32_t> labels_;
  std::vector<std::pair<std::uint32_t, std::string>> fixups_;
};

}  // namespace armbar::sim
