#include "sim/fault/fault.hpp"

#include <sstream>

#include "common/check.hpp"

namespace armbar::sim::fault {

FaultPlan FaultPlan::chaos(std::uint64_t seed) {
  // Intensities chosen so every fault class fires often enough to reshuffle
  // schedules (a few percent of eligible events) while forward progress is
  // never starved: the longest single perturbation (a spiked sync-barrier
  // txn) stays well under the default 1M-cycle watchdog window.
  FaultPlan p;
  p.seed = seed;
  p.barrier_spike_pm = 60;
  p.barrier_spike_cycles = 400;
  p.coh_delay_pm = 50;
  p.coh_delay_cycles = 200;
  p.coh_duplicate_pm = 40;
  p.evict_pm = 30;
  p.sb_stall_pm = 40;
  p.sb_stall_cycles = 64;
  return p;
}

std::string FaultPlan::describe() const {
  if (!enabled()) return "no faults";
  std::ostringstream os;
  os << "seed=" << seed;
  if (barrier_spike_pm != 0)
    os << " barrier_spike=" << barrier_spike_pm << "‰/+"
       << barrier_spike_cycles << "c";
  if (coh_delay_pm != 0)
    os << " coh_delay=" << coh_delay_pm << "‰/+" << coh_delay_cycles << "c";
  if (coh_duplicate_pm != 0) os << " coh_duplicate=" << coh_duplicate_pm << "‰";
  if (evict_pm != 0) os << " evict=" << evict_pm << "‰";
  if (sb_stall_pm != 0)
    os << " sb_stall=" << sb_stall_pm << "‰/+" << sb_stall_cycles << "c";
  return os.str();
}

FaultEngine::FaultEngine(const FaultPlan& plan, std::uint32_t cores)
    : plan_(plan) {
  ARMBAR_CHECK_MSG(plan.barrier_spike_pm <= 1000 && plan.coh_delay_pm <= 1000 &&
                       plan.coh_duplicate_pm <= 1000 && plan.evict_pm <= 1000 &&
                       plan.sb_stall_pm <= 1000,
                   "fault probabilities are per-mille (0..1000)");
  rngs_.reserve(cores);
  for (std::uint32_t c = 0; c < cores; ++c) {
    // Decorrelate the per-core streams from one seed via splitmix.
    std::uint64_t s = plan.seed ^ (0x9e3779b97f4a7c15ULL * (c + 1));
    rngs_.emplace_back(splitmix64(s));
  }
}

bool FaultEngine::roll(CoreId core, std::uint32_t pm) {
  if (pm == 0) return false;
  const bool hit = rngs_[core].chance(pm, 1000);
  if (hit) ++injected_;
  return hit;
}

Cycle FaultEngine::barrier_spike(CoreId core) {
  return roll(core, plan_.barrier_spike_pm) ? plan_.barrier_spike_cycles : 0;
}

Cycle FaultEngine::coh_delay(CoreId core) {
  return roll(core, plan_.coh_delay_pm) ? plan_.coh_delay_cycles : 0;
}

Cycle FaultEngine::sb_stall(CoreId core) {
  return roll(core, plan_.sb_stall_pm) ? plan_.sb_stall_cycles : 0;
}

bool FaultEngine::evict(CoreId core) { return roll(core, plan_.evict_pm); }

bool FaultEngine::duplicate_invalidate(CoreId core) {
  return roll(core, plan_.coh_duplicate_pm);
}

namespace {
FaultPlan g_global_plan;
bool g_global_plan_set = false;
}  // namespace

void set_global_fault_plan(const FaultPlan& plan) {
  g_global_plan = plan;
  g_global_plan_set = true;
}

void clear_global_fault_plan() { g_global_plan_set = false; }

const FaultPlan* global_fault_plan() {
  return g_global_plan_set ? &g_global_plan : nullptr;
}

}  // namespace armbar::sim::fault
