// Deterministic, seeded fault injection for the simulator (ISSUE 3).
//
// A FaultPlan perturbs *timing within the architectural envelope* — it
// never forges values, drops writes, or breaks coherence; it only makes the
// legal weak behaviours of the machine wider and the schedules stranger:
//   * latency spikes on ACE barrier transactions (a congested interconnect
//     answering DMB/DSB round trips late),
//   * delayed coherence responses (GetS/GetM transfers taking longer),
//   * duplicated-but-idempotent invalidation delivery (a snoop echoed
//     twice, which real fabrics may do; victims must tolerate it),
//   * forced clean cache-line evictions (a shared copy silently dropped,
//     turning a hit into a refetch),
//   * store-buffer drain stalls (a drain request postponed at the moment
//     it would have started).
//
// Because every perturbation stays inside what the ARM memory model already
// allows, any litmus outcome or qualitative paper claim (allowed-outcome
// sets, barrier-cost orderings) must be invariant under an arbitrary plan —
// which is exactly what tests/litmus/litmus_fault_test.cpp asserts. The
// engine doubles as a chaos harness for the runner (--fault-seed).
//
// Determinism: the simulator is single-threaded and event-ordered, and the
// engine holds one xoshiro stream per core, so a (plan, program, platform)
// triple always produces the same perturbed execution — fault runs are as
// reproducible (and as cacheable) as clean ones.
//
// Hook shape mirrors the PR-1 trace hooks: call sites are wrapped in
// ARMBAR_FAULT_CYCLES / ARMBAR_FAULT_HIT macros that compile to constant
// zero/false under ARMBAR_FAULT_DISABLED and to a null-checked call
// otherwise, so a fault-free build is bit-identical to the pre-fault tree.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace armbar::sim::fault {

#if defined(ARMBAR_FAULT_DISABLED)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// Declarative fault-injection parameters. Probabilities are per-mille
/// (0..1000) so plans digest into cache keys as plain integers with no
/// floating-point portability hazards. A default-constructed plan injects
/// nothing; enabled() is the single gate every consumer tests.
struct FaultPlan {
  std::uint64_t seed = 0;

  std::uint32_t barrier_spike_pm = 0;      ///< P(barrier txn spiked) ‰
  std::uint32_t barrier_spike_cycles = 0;  ///< added round-trip cycles

  std::uint32_t coh_delay_pm = 0;      ///< P(coherence transfer delayed) ‰
  std::uint32_t coh_delay_cycles = 0;  ///< added transfer cycles

  std::uint32_t coh_duplicate_pm = 0;  ///< P(invalidation delivered twice) ‰

  std::uint32_t evict_pm = 0;  ///< P(clean shared copy evicted on access) ‰

  std::uint32_t sb_stall_pm = 0;      ///< P(drain start postponed) ‰
  std::uint32_t sb_stall_cycles = 0;  ///< postponement length

  bool enabled() const {
    return barrier_spike_pm != 0 || coh_delay_pm != 0 || coh_duplicate_pm != 0 ||
           evict_pm != 0 || sb_stall_pm != 0;
  }

  /// Moderate all-faults preset used by `--fault-seed N`: every fault class
  /// active at rates that perturb schedules heavily without livelocking
  /// forward progress.
  static FaultPlan chaos(std::uint64_t seed);

  /// One-line human rendering for banners and diagnostics.
  std::string describe() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Per-run fault state: one deterministic RNG stream per core, advanced
/// only when its core consults a hook, so adding cores or reordering
/// unrelated work does not reshuffle another core's fault schedule.
class FaultEngine {
 public:
  FaultEngine(const FaultPlan& plan, std::uint32_t cores);

  const FaultPlan& plan() const { return plan_; }

  // ---- hooks (called from Core / MemorySystem) ----

  /// Extra cycles on one ACE barrier transaction (0 = not spiked).
  Cycle barrier_spike(CoreId core);
  /// Extra cycles on one coherence transfer (0 = not delayed).
  Cycle coh_delay(CoreId core);
  /// Cycles to postpone a drain that was about to start (0 = start now).
  Cycle sb_stall(CoreId core);
  /// True: force-evict this core's clean shared copy (hit becomes miss).
  bool evict(CoreId core);
  /// True: deliver this store's invalidations a second time.
  bool duplicate_invalidate(CoreId core);

  /// Total faults injected so far (all classes; for tests/diagnostics).
  std::uint64_t injected() const { return injected_; }

 private:
  bool roll(CoreId core, std::uint32_t pm);

  const FaultPlan plan_;
  std::vector<Rng> rngs_;
  std::uint64_t injected_ = 0;
};

// ---- process-global plan (the runner's chaos mode) ----
//
// The 18 registered experiments build their Machines deep inside simprog
// helpers; threading a plan through every signature would touch dozens of
// call sites for no modelling gain. Instead Machine::run() falls back to
// the global plan when RunConfig.fault is null, and the engine installs /
// clears it around a sweep. Set-before / clear-after only — never written
// while simulations run — so worker threads may read it freely.

/// Install `plan` as the process-global fallback (copied).
void set_global_fault_plan(const FaultPlan& plan);
/// Remove the global fallback.
void clear_global_fault_plan();
/// The installed plan, or nullptr.
const FaultPlan* global_fault_plan();

/// Hook-site macros, mirroring ARMBAR_TRACE: `engine` is a FaultEngine*
/// that is null when no faults are active. Under ARMBAR_FAULT_DISABLED the
/// call is dead-stripped but stays type-checked.
#if defined(ARMBAR_FAULT_DISABLED)
#define ARMBAR_FAULT_CYCLES(engine, call) \
  ((engine) != nullptr && false ? (engine)->call : ::armbar::Cycle{0})
#define ARMBAR_FAULT_HIT(engine, call) ((engine) != nullptr && false && (engine)->call)
#else
#define ARMBAR_FAULT_CYCLES(engine, call) \
  ((engine) != nullptr ? (engine)->call : ::armbar::Cycle{0})
#define ARMBAR_FAULT_HIT(engine, call) ((engine) != nullptr && (engine)->call)
#endif

}  // namespace armbar::sim::fault
