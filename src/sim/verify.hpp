// Machine-wide invariant checking, structured failure diagnostics, and the
// forward-progress watchdog (ISSUE 3 layer 2).
//
// The simulator is deterministic, so when its state goes wrong (a simulator
// bug, or a memory stomp from harness code) the corruption silently skews
// every number downstream. Machine::run() can therefore periodically sweep
// the whole machine through a MachineVerifier — every coherence line, every
// store buffer, every speculation queue — and convert the first violated
// invariant into a typed exception carrying a SimDiagnostic bundle: the
// violated invariant, one-line dumps of every core, and the tail of the
// attached trace ring. The runner renders the bundle into the JSON report
// instead of the process dying on a bare abort.
//
// Invariants checked (all are properties the simulator maintains by
// construction; none can fail on a healthy build):
//   1. MESI single-writer: an owned line has no foreign sharers; sharer
//      masks and owner ids name real cores; a pending store names a real
//      writer, lands within the line's busy window, and keeps only sharers
//      that still exist.
//   2. Store-buffer order: per-core seq strictly increases in buffer order,
//      and no drain is in flight while an older same-word entry sits in the
//      buffer (per-address program order of drains).
//   3. Speculation order: pending-branch ids strictly increase and are all
//      younger than the committed-branch watermark.
//   4. Barrier accounting: every active store-buffer watch expects exactly
//      the drains that are still buffered below its epoch.
//
// The watchdog is separate from the verifier: it converts "no core retired
// an instruction, drained a store or squashed for N cycles" into a typed
// SimHang instead of letting the run burn silently to max_cycles.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "trace/json.hpp"

namespace armbar::sim {

class Core;
class Machine;

/// Structured failure bundle: what went wrong, when, and enough machine
/// state to debug it from a CI log or a JSON report.
struct SimDiagnostic {
  std::string kind;     ///< "invariant_violation" | "hang"
  std::string summary;  ///< first violated invariant / stuck-state sentence
  Cycle cycle = 0;      ///< simulation cycle at detection
  std::vector<std::string> cores;          ///< one line per live core
  std::vector<std::string> recent_events;  ///< trace ring tail, oldest first

  /// Multi-line human rendering (what the runner prints).
  std::string str() const;
  /// JSON rendering (what lands in the bench report's quarantine entry).
  trace::Json to_json() const;
  /// Inverse of to_json() — used when replaying repro bundles. Returns false
  /// when `j` is not an object of the shape to_json() emits.
  static bool from_json(const trace::Json& j, SimDiagnostic* out);
};

/// Base of all typed simulator failures; what() is "<kind>: <summary>".
class SimError : public std::runtime_error {
 public:
  explicit SimError(SimDiagnostic d);
  const SimDiagnostic& diagnostic() const { return diag_; }

 private:
  SimDiagnostic diag_;
};

/// A machine invariant stopped holding mid-run.
class InvariantViolation : public SimError {
 public:
  using SimError::SimError;
};

/// The forward-progress watchdog fired: the machine is live (cores still
/// schedulable — not the deadlock ARMBAR_CHECK) but nothing retires.
class SimHang : public SimError {
 public:
  using SimError::SimError;
};

/// Read-only sweep over one Machine's internal state. Constructed on the
/// stack by Machine::run() at the configured cadence; also usable directly
/// from tests against a stopped machine.
class MachineVerifier {
 public:
  explicit MachineVerifier(const Machine& m) : m_(m) {}

  /// Check every invariant; returns "" when all hold, otherwise a one-line
  /// description of the first violation found.
  std::string check() const;

  /// Assemble a diagnostic bundle from the machine's current state.
  SimDiagnostic diagnose(std::string kind, std::string summary, Cycle now) const;

 private:
  std::string check_lines() const;
  std::string check_core(const Core& core) const;

  const Machine& m_;
};

// Process-global verify cadence fallback, mirroring the global fault plan:
// Machine::run() uses it when RunConfig.verify_every is 0. Set-before /
// clear-after a sweep only; 0 disables.
void set_global_verify_every(Cycle every);
Cycle global_verify_every();

}  // namespace armbar::sim
