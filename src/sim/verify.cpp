#include "sim/verify.hpp"

#include <sstream>

#include "sim/machine.hpp"

namespace armbar::sim {

namespace {
Cycle g_verify_every = 0;

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}
}  // namespace

void set_global_verify_every(Cycle every) { g_verify_every = every; }
Cycle global_verify_every() { return g_verify_every; }

SimError::SimError(SimDiagnostic d)
    : std::runtime_error(d.kind + ": " + d.summary), diag_(std::move(d)) {}

std::string SimDiagnostic::str() const {
  std::ostringstream os;
  os << kind << " at cycle " << cycle << ": " << summary << "\n";
  for (const auto& c : cores) os << "  " << c << "\n";
  if (!recent_events.empty()) {
    os << "  recent events (oldest first):\n";
    for (const auto& e : recent_events) os << "    " << e << "\n";
  }
  return os.str();
}

trace::Json SimDiagnostic::to_json() const {
  auto j = trace::Json::object();
  j.set("kind", kind);
  j.set("summary", summary);
  j.set("cycle", static_cast<std::uint64_t>(cycle));
  auto cs = trace::Json::array();
  for (const auto& c : cores) cs.push(c);
  j.set("cores", std::move(cs));
  auto ev = trace::Json::array();
  for (const auto& e : recent_events) ev.push(e);
  j.set("recent_events", std::move(ev));
  return j;
}

bool SimDiagnostic::from_json(const trace::Json& j, SimDiagnostic* out) {
  if (!j.is_object()) return false;
  const trace::Json* kind = j.find("kind");
  const trace::Json* summary = j.find("summary");
  const trace::Json* cycle = j.find("cycle");
  const trace::Json* cores = j.find("cores");
  const trace::Json* events = j.find("recent_events");
  if (!kind || !kind->is_string() || !summary || !summary->is_string() ||
      !cycle || !cycle->is_number() || !cores || !cores->is_array() ||
      !events || !events->is_array())
    return false;
  SimDiagnostic d;
  d.kind = kind->str();
  d.summary = summary->str();
  d.cycle = static_cast<Cycle>(cycle->number());
  for (const trace::Json& c : cores->items()) {
    if (!c.is_string()) return false;
    d.cores.push_back(c.str());
  }
  for (const trace::Json& e : events->items()) {
    if (!e.is_string()) return false;
    d.recent_events.push_back(e.str());
  }
  *out = std::move(d);
  return true;
}

std::string MachineVerifier::check_lines() const {
  const MemorySystem& mem = *m_.mem_;
  const std::uint32_t total = m_.spec_.total_cores();
  const std::uint64_t core_mask =
      total >= 64 ? ~0ULL : ((1ULL << total) - 1);
  for (std::size_t i = 0; i < mem.lines_.size(); ++i) {
    const LineState& ls = mem.lines_[i];
    // The overwhelming majority of lines are untouched; skip them fast.
    if (ls.owner == kNoOwner && ls.sharers == 0 && !ls.pending) continue;
    const std::string where = "line " + hex(i * kCacheLineBytes) + ": ";
    if ((ls.sharers & ~core_mask) != 0)
      return where + "sharer mask " + hex(ls.sharers) + " names cores >= " +
             std::to_string(total);
    if (ls.owner != kNoOwner) {
      if (ls.owner < 0 || static_cast<std::uint32_t>(ls.owner) >= total)
        return where + "owner " + std::to_string(ls.owner) + " out of range";
      // Single-writer: an owned (M/E) line may not coexist with foreign
      // shared copies (the owner's own bit is tolerated).
      if ((ls.sharers & ~(1ULL << ls.owner)) != 0)
        return where + "owner " + std::to_string(ls.owner) +
               " coexists with foreign sharers (mask " + hex(ls.sharers) + ")";
    }
    if (ls.pending) {
      if (ls.pending_owner < 0 ||
          static_cast<std::uint32_t>(ls.pending_owner) >= total)
        return where + "pending store with invalid writer " +
               std::to_string(ls.pending_owner);
      if (ls.busy_until < ls.pending_at)
        return where + "pending store lands at " +
               std::to_string(ls.pending_at) + " after busy_until " +
               std::to_string(ls.busy_until);
      if ((ls.pending_keep_sharers & ~ls.sharers) != 0)
        return where + "pending keep-sharers " + hex(ls.pending_keep_sharers) +
               " not a subset of sharers " + hex(ls.sharers);
    }
  }
  return {};
}

std::string MachineVerifier::check_core(const Core& core) const {
  const std::string where = "core " + std::to_string(core.id_) + ": ";

  // Store-buffer order: seqs strictly increase in buffer order, and a drain
  // never overtakes an older same-word entry (per-address program order).
  std::uint64_t prev_seq = 0;
  for (const auto& e : core.sb_) {
    if (e.seq <= prev_seq && prev_seq != 0)
      return where + "store buffer seq out of order (" + std::to_string(e.seq) +
             " after " + std::to_string(prev_seq) + ")";
    prev_seq = e.seq;
    if (!e.draining) continue;
    for (const auto& o : core.sb_) {
      if (o.seq >= e.seq) break;
      if (!o.draining && word_of(o.addr) == word_of(e.addr))
        return where + "entry seq " + std::to_string(e.seq) +
               " draining past older same-word entry seq " +
               std::to_string(o.seq) + " (addr " + hex(e.addr) + ")";
    }
  }

  // Speculation order: branch ids strictly increase and every pending
  // branch is younger than the committed watermark.
  std::uint64_t prev_idx = 0;
  for (const auto& br : core.branches_) {
    if (br.idx <= prev_idx && prev_idx != 0)
      return where + "branch ids out of order (" + std::to_string(br.idx) +
             " after " + std::to_string(prev_idx) + ")";
    prev_idx = br.idx;
    if (br.idx <= core.committed_branch_)
      return where + "pending branch " + std::to_string(br.idx) +
             " not younger than committed watermark " +
             std::to_string(core.committed_branch_);
  }

  // Barrier-response accounting: an active watch expects exactly the drains
  // still buffered below its epoch.
  for (const auto& w : core.watches_) {
    if (!w.active) continue;
    std::uint32_t below = 0;
    for (const auto& e : core.sb_)
      if (e.seq < w.epoch) ++below;
    if (below != w.pending)
      return where + "barrier watch (epoch " + std::to_string(w.epoch) +
             ") expects " + std::to_string(w.pending) +
             " pending drains, buffer holds " + std::to_string(below);
  }
  return {};
}

std::string MachineVerifier::check() const {
  if (std::string v = check_lines(); !v.empty()) return v;
  for (const auto& core : m_.cores_)
    if (std::string v = check_core(*core); !v.empty()) return v;
  return {};
}

SimDiagnostic MachineVerifier::diagnose(std::string kind, std::string summary,
                                        Cycle now) const {
  SimDiagnostic d;
  d.kind = std::move(kind);
  d.summary = std::move(summary);
  d.cycle = now;
  for (CoreId c = 0; c < m_.num_cores(); ++c) {
    if (!m_.active_[c]) continue;
    const Core& core = *m_.cores_[c];
    std::size_t draining = 0;
    for (const auto& e : core.sb_)
      if (e.draining) ++draining;
    std::ostringstream os;
    os << "core " << c << ": pc=" << core.pc_
       << (core.halted_ ? " halted" : "") << (core.parked_ ? " parked" : "")
       << " sb=" << core.sb_.size() << "(draining " << draining << ")"
       << " branches=" << core.branches_.size()
       << " stall=" << to_string(core.stall_cause_)
       << " until=" << core.stall_until_
       << (core.barrier_ ? " barrier_pending" : "")
       << " instrs=" << core.stats_.instructions
       << " sb_retired=" << core.stats_.sb_retired
       << " next_attention=" << core.next_attention_;
    d.cores.push_back(os.str());
  }
  if (m_.tracer_ != nullptr) {
    constexpr std::size_t kTail = 32;
    const auto events = m_.tracer_->snapshot();
    const std::size_t first = events.size() > kTail ? events.size() - kTail : 0;
    for (std::size_t i = first; i < events.size(); ++i) {
      const trace::Event& e = events[i];
      std::ostringstream os;
      os << "[" << e.begin << "," << e.end << ") core " << e.core << " "
         << trace::to_string(e.kind) << " pc=" << e.pc << " a=" << hex(e.a)
         << " b=" << hex(e.b) << " detail=" << static_cast<int>(e.detail);
      d.recent_events.push_back(os.str());
    }
  }
  return d;
}

}  // namespace armbar::sim
