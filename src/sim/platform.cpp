#include "sim/platform.hpp"

#include "common/check.hpp"

namespace armbar::sim {

PlatformSpec kunpeng916() {
  PlatformSpec p;
  p.name = "kunpeng916";
  p.arch = "Cortex-A72 (server)";
  p.nodes = 2;
  p.cores_per_node = 32;
  p.freq_ghz = 2.4;
  p.interconnect = "Hydra Interface (modelled: 2-level, deep)";
  // Server uncore: expensive coherence, very expensive synchronization
  // barrier transactions. inv_local/inv_remote are calibrated to the
  // paper's tipping points (~150 nops same-node, ~700 nops cross-node).
  p.lat.mem_local = 110;
  p.lat.mem_remote = 230;
  p.lat.c2c_local = 100;
  p.lat.c2c_remote = 330;
  p.lat.inv_local = 150;
  p.lat.inv_remote = 700;
  p.lat.bus_mem_local = 18;
  p.lat.bus_mem_cross = 70;
  p.lat.bus_sync = 550;
  // The store-release visibility acknowledgement is expensive on the deep
  // server uncore — this is what makes STLR land between DSB and DMB st
  // and *not* beat DMB full (Observation 3).
  p.lat.stlr_extra = 340;
  return p;
}

PlatformSpec kirin960() {
  PlatformSpec p;
  p.name = "kirin960";
  p.arch = "Cortex-A73 + Cortex-A53";
  p.nodes = 1;
  p.cores_per_node = 8;  // 4 big + 4 LITTLE; benches bind to the big cluster
  p.freq_ghz = 2.1;
  p.interconnect = "ARM CCI-550";
  // Mobile: simple single-level bus. Both coherence and barrier
  // transactions are an order of magnitude cheaper than the server
  // (Observation 4).
  p.lat.mem_local = 70;
  p.lat.mem_remote = 70;  // single node: never used, kept equal
  p.lat.c2c_local = 22;
  p.lat.c2c_remote = 22;
  p.lat.inv_local = 30;
  p.lat.inv_remote = 30;
  p.lat.bus_mem_local = 8;
  p.lat.bus_mem_cross = 8;
  p.lat.bus_sync = 46;
  p.lat.stlr_extra = 26;
  return p;
}

PlatformSpec kirin970() {
  PlatformSpec p = kirin960();
  p.name = "kirin970";
  p.freq_ghz = 2.36;
  // Same CCI-550 generation with a slightly faster uncore.
  p.lat.c2c_local = 20;
  p.lat.c2c_remote = 20;
  p.lat.inv_local = 28;
  p.lat.inv_remote = 28;
  p.lat.bus_sync = 42;
  p.lat.stlr_extra = 24;
  return p;
}

PlatformSpec rpi4() {
  PlatformSpec p;
  p.name = "rpi4";
  p.arch = "Cortex-A72";
  p.nodes = 1;
  p.cores_per_node = 4;
  p.freq_ghz = 1.5;
  p.interconnect = "unknown (modelled: simple single-level bus)";
  p.lat.mem_local = 90;
  p.lat.mem_remote = 90;
  p.lat.c2c_local = 26;
  p.lat.c2c_remote = 26;
  p.lat.inv_local = 38;
  p.lat.inv_remote = 38;
  p.lat.bus_mem_local = 10;
  p.lat.bus_mem_cross = 10;
  p.lat.bus_sync = 60;
  p.lat.stlr_extra = 34;
  return p;
}

std::vector<PlatformSpec> all_platforms() {
  return {kunpeng916(), kirin960(), kirin970(), rpi4()};
}

PlatformSpec platform_by_name(const std::string& name) {
  for (auto& p : all_platforms())
    if (p.name == name) return p;
  ARMBAR_CHECK_MSG(false, "unknown platform name");
}

}  // namespace armbar::sim
