// The simulated machine: cores + memory system + clock.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/core.hpp"
#include "sim/fault/fault.hpp"
#include "sim/mem.hpp"
#include "sim/platform.hpp"
#include "sim/program.hpp"
#include "sim/sched.hpp"

namespace armbar::sim {

/// Outcome of a Machine::run().
struct RunResult {
  bool completed = false;   ///< all cores halted before the cycle limit
  Cycle cycles = 0;         ///< cycle at which the last core halted
  MemStats mem;
  std::vector<CoreStats> cores;

  /// Convert a per-core event count into the paper's throughput unit
  /// (events per second at the platform frequency), given the events and
  /// the cycles they took. Scales the count by the clock before dividing:
  /// events/cycles first would round a sub-ulp quotient and lose the low
  /// digits once multiplied back up by ~1e9.
  static double throughput_per_sec(std::uint64_t events, Cycle cycles_taken,
                                   double freq_ghz) {
    if (cycles_taken == 0) return 0.0;
    return static_cast<double>(events) * (freq_ghz * 1e9) /
           static_cast<double>(cycles_taken);
  }
};

/// Declarative run parameters for Machine::run(const RunConfig&); replaces
/// the grow-a-positional-argument pattern (max_cycles was already one).
struct RunConfig {
  Cycle max_cycles = 500'000'000;
  /// When non-null, attached via Machine::set_tracer() — the single attach
  /// point — before the run starts. Recording only; timing is unaffected.
  trace::Tracer* tracer = nullptr;
  enum class Stats : std::uint8_t {
    kKeep,            ///< counters keep accumulating (default)
    kResetBeforeRun,  ///< reset_stats() first: measure a clean window
  };
  Stats stats = Stats::kKeep;

  /// Fault-injection plan for this run. When null, Machine::run() falls
  /// back to the process-global plan (fault::set_global_fault_plan) — the
  /// runner's chaos mode. A null/disabled plan costs one pointer check per
  /// hook site; under ARMBAR_FAULT_DISABLED the hooks compile out entirely.
  const fault::FaultPlan* fault = nullptr;

  /// Invariant-check cadence in cycles: every `verify_every` cycles a
  /// MachineVerifier sweeps the whole machine and a violation throws
  /// InvariantViolation (with a SimDiagnostic). 0 falls back to the global
  /// cadence (set_global_verify_every), which defaults to off.
  Cycle verify_every = 0;

  /// Forward-progress watchdog: if no core retires an instruction, drains
  /// a store or squashes for this many cycles while the machine is still
  /// schedulable, the run throws SimHang instead of burning silently to
  /// max_cycles. 0 disables.
  Cycle watchdog_cycles = 1'000'000;
};

/// A whole simulated machine. Construct, load programs onto cores, poke
/// initial memory, run. Deterministic: same inputs -> same cycle counts.
class Machine {
 public:
  explicit Machine(PlatformSpec spec, std::size_t mem_bytes = 16u << 20);

  const PlatformSpec& spec() const { return spec_; }
  MemorySystem& mem() { return *mem_; }
  const MemorySystem& mem() const { return *mem_; }

  std::uint32_t num_cores() const { return static_cast<std::uint32_t>(cores_.size()); }
  Core& core(CoreId c) { return *cores_[c]; }
  const Core& core(CoreId c) const { return *cores_[c]; }

  /// Bind `prog` to core `c` (cores without a program never run).
  /// Predecodes into an immutable DecodedProgram the machine co-owns and
  /// returns the handle, so callers can rebind the same predecoded form
  /// elsewhere (or drop it — the core keeps its own reference).
  ProgramHandle load_program(CoreId c, Program prog);

  /// Bind an already-predecoded program. One decode can serve any number of
  /// cores and machines; the handle is immutable and lifetime-safe.
  void load_program(CoreId c, ProgramHandle prog);

  /// Transitional shim for the pre-ISSUE-7 pointer spelling: copies the
  /// pointee (the old API required the caller to keep `*prog` alive for the
  /// machine's lifetime — the footgun the handle API removes). One release
  /// only.
  [[deprecated("pass Program by value or a ProgramHandle")]]
  void load_program(CoreId c, const Program* prog) {
    load_program(c, Program(*prog));
  }

  /// Switch the whole machine to TSO (total-store-order) memory ordering.
  /// Used by the litmus harness to contrast WMM and TSO (paper Table 1).
  void set_tso(bool tso);

  /// THE tracer attach point: fans one tracer out to every core and the
  /// memory system (their setters are private — this is the only way in).
  /// Also installs the stall-cause display names so metric keys and exports
  /// read "stall_cycles.barrier" instead of a code. Detach with nullptr.
  void set_tracer(trace::Tracer* t);

  /// Zero every per-core counter and the coherence-traffic counters.
  /// Architectural and timing state is untouched, so a bench can warm up,
  /// reset, and measure a clean window.
  void reset_stats();

  /// Run until every program-bearing core halts or cfg.max_cycles elapses.
  /// A machine runs once; construct a fresh one per experiment point.
  RunResult run(const RunConfig& cfg);

  /// Final-state extraction (differential fuzzing, ISSUE 4): read the listed
  /// (core, register) slots followed by the 8-byte words at the listed
  /// addresses, in order, after a run. Memory words go through peek(), so
  /// they reflect the coherent architectural value, not a stale copy.
  std::vector<std::uint64_t> extract_state(
      const std::vector<std::pair<CoreId, Reg>>& regs,
      const std::vector<Addr>& addrs) const;

 private:
  friend class MachineVerifier;

  PlatformSpec spec_;
  std::unique_ptr<MemorySystem> mem_;
  std::vector<std::unique_ptr<Core>> cores_;
  std::vector<bool> active_;
  AttentionQueue sched_;  ///< per-core next-attention slots + lazy min-heap
  std::unique_ptr<fault::FaultEngine> fault_engine_;
  trace::Tracer* tracer_ = nullptr;  ///< last attached (diagnostic ring tail)
  bool ran_ = false;
};

}  // namespace armbar::sim
