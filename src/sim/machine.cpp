#include "sim/machine.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "prof/prof.hpp"
#include "sim/verify.hpp"

namespace armbar::sim {

Machine::Machine(PlatformSpec spec, std::size_t mem_bytes)
    : spec_(std::move(spec)),
      mem_(std::make_unique<MemorySystem>(spec_, mem_bytes)),
      active_(spec_.total_cores(), false),
      sched_(spec_.total_cores()) {
  cores_.reserve(spec_.total_cores());
  for (CoreId c = 0; c < spec_.total_cores(); ++c)
    cores_.push_back(std::make_unique<Core>(c, spec_, *mem_));
  mem_->set_invalidate_hook([this](CoreId victim, Addr line, Cycle at) {
    Core& core = *cores_[victim];
    core.on_invalidate(line, at);
    // An invalidation can pull a parked core's wake earlier; mirror the new
    // attention into the scheduler so the run loop's min() sees it.
    // on_invalidate only ever *lowers* next_attention (and only for parked
    // cores), so when it did not move the slot is still exact and the
    // scheduler write — a heap push per delivered invalidation on a 64-way
    // contended line — can be skipped entirely.
    const Cycle na = core.next_attention();
    if (na < sched_.at(victim) && active_[victim]) sched_.set(victim, na);
  });
}

ProgramHandle Machine::load_program(CoreId c, Program prog) {
  ProgramHandle h = decode_program(std::move(prog));
  load_program(c, h);
  return h;
}

void Machine::load_program(CoreId c, ProgramHandle prog) {
  ARMBAR_CHECK(c < num_cores());
  ARMBAR_CHECK_MSG(prog != nullptr, "load_program: null program handle");
  cores_[c]->load_program(std::move(prog));
  active_[c] = true;
  sched_.set(c, cores_[c]->next_attention());
}

void Machine::set_tso(bool tso) {
  for (auto& c : cores_) c->set_tso(tso);
}

void Machine::set_tracer(trace::Tracer* t) {
  if (t != nullptr) t->set_stall_cause_names(stall_cause_names());
  for (auto& c : cores_) c->set_tracer(t);
  mem_->set_tracer(t);
  tracer_ = t;
}

void Machine::reset_stats() {
  for (auto& c : cores_) c->reset_stats();
  mem_->reset_stats();
}

std::vector<std::uint64_t> Machine::extract_state(
    const std::vector<std::pair<CoreId, Reg>>& regs,
    const std::vector<Addr>& addrs) const {
  std::vector<std::uint64_t> out;
  out.reserve(regs.size() + addrs.size());
  for (const auto& [c, r] : regs) {
    ARMBAR_CHECK_MSG(c < cores_.size(), "extract_state: core out of range");
    out.push_back(core(c).reg(r));
  }
  for (Addr a : addrs) out.push_back(mem_->peek(a));
  return out;
}

RunResult Machine::run(const RunConfig& cfg) {
  ARMBAR_PROF_SCOPE(kSimRun);
  ARMBAR_CHECK_MSG(!ran_, "Machine::run() may only be called once");
  ran_ = true;

  const Cycle max_cycles = cfg.max_cycles;
  const bool attach = cfg.tracer != nullptr;
  if (attach) set_tracer(cfg.tracer);
  if (cfg.stats == RunConfig::Stats::kResetBeforeRun) reset_stats();

#if !defined(ARMBAR_FAULT_DISABLED)
  // Fault injection: an explicit plan wins; otherwise fall back to the
  // process-global plan the runner installs for chaos sweeps. The engine is
  // fanned out the same way a tracer is — private setters, one attach point.
  const fault::FaultPlan* plan =
      cfg.fault != nullptr ? cfg.fault : fault::global_fault_plan();
  if (plan != nullptr && plan->enabled()) {
    fault_engine_ = std::make_unique<fault::FaultEngine>(*plan, num_cores());
    for (auto& c : cores_) c->set_fault_engine(fault_engine_.get());
    mem_->set_fault_engine(fault_engine_.get());
  }
#endif

  RunResult res;
  std::vector<Core*> live;
  std::vector<std::uint32_t> live_ids;
  live.reserve(num_cores());
  live_ids.reserve(num_cores());
  for (CoreId c = 0; c < num_cores(); ++c)
    if (active_[c]) {
      live.push_back(cores_[c].get());
      live_ids.push_back(c);
    }

  const Cycle verify_every =
      cfg.verify_every != 0 ? cfg.verify_every : global_verify_every();
  const MachineVerifier verifier(*this);
  Cycle next_verify = verify_every != 0 ? verify_every : kNeverCycle;

  // Watchdog: progress = anything retiring anywhere. Instructions alone
  // would flag a legitimate polling loop's *partner* core... except the
  // poller itself retires instructions, so the sum only freezes when every
  // live core is truly stuck (e.g. a barrier waiting on a drain that never
  // starts). Sampled once per window, not per event.
  const auto progress_signature = [&live] {
    std::uint64_t sig = 0;
    for (const Core* core : live) {
      const CoreStats& s = core->stats();
      sig += s.instructions + s.sb_retired + s.squashes;
    }
    return sig;
  };
  const Cycle watchdog = cfg.watchdog_cycles;
  std::uint64_t progress_sig = progress_signature();
  Cycle progress_cycle = 0;

  Cycle now = 0;
  {
    // One kSimSchedule scope for the whole loop (the PR-6 build re-entered
    // it every iteration — ~25% of sim wall time was the scope's own clock
    // reads). Step-internal phases (kSimSbDrain/kSimIssue/kSimCoherence/
    // kSimVerify) nest inside it and subtract out as children.
    ARMBAR_PROF_SCOPE(kSimSchedule);
    while (true) {
      // Lazy-heap min over the per-core attention slots: O(log n) amortized
      // instead of a full scan per iteration.
      const Cycle next = sched_.min();
      if (next == kNeverCycle) {
        // idle() <=> next_attention()==kNeverCycle after a step, so an empty
        // queue means completion — but keep the deadlock diagnostic exact.
        for (Core* core : live)
          ARMBAR_CHECK_MSG(core->idle(),
                           "simulation deadlock: no core schedulable");
        res.completed = true;
        break;
      }
      now = std::max(now, next);
      if (now > max_cycles) {
        res.completed = false;
        break;
      }
      // Step pass: id-order forward sweep re-reading the live slots — NOT
      // heap pop order. A step can lower a *later* core's attention to <= now
      // (coherence invalidation waking a WFE parker) and that core must still
      // be stepped this cycle; and MemorySystem mutation order (hence
      // simulated timing) must stay exactly the id-order of the PR-6 loop.
      // The sweep reads the scheduler's dense slot array, not the cores:
      // slot == next_attention() by construction (kNeverCycle when idle),
      // so the common not-due case costs one L1 load per live core instead
      // of chasing each Core pointer for idle()/next_attention() — on the
      // 64-core preset that chase dominated short contended runs.
      const std::vector<Cycle>& due = sched_.slots();
      for (std::size_t i = 0; i < live.size(); ++i) {
        const std::uint32_t c = live_ids[i];
        if (due[c] <= now) {
          Core* core = live[i];
          core->step(now);
          sched_.set(c, core->next_attention());
        }
      }
      if (now >= next_verify) {
        ARMBAR_PROF_SCOPE(kSimVerify);
        if (std::string v = verifier.check(); !v.empty())
          throw InvariantViolation(
              verifier.diagnose("invariant_violation", v, now));
        next_verify = now + verify_every;
      }
      if (watchdog != 0 && now - progress_cycle >= watchdog) {
        const std::uint64_t sig = progress_signature();
        if (sig == progress_sig)
          throw SimHang(verifier.diagnose(
              "hang", "no instruction retired, store drained or branch "
                      "squashed in " +
                          std::to_string(now - progress_cycle) + " cycles",
              now));
        progress_sig = sig;
        progress_cycle = now;
      }
    }
  }

  // One closing sweep so a corruption introduced after the last cadence
  // tick (or a run shorter than the cadence) is still caught.
  if (verify_every != 0) {
    ARMBAR_PROF_SCOPE(kSimVerify);
    if (std::string v = verifier.check(); !v.empty())
      throw InvariantViolation(verifier.diagnose("invariant_violation", v, now));
  }

  Cycle end = 0;
  res.cores.reserve(live.size());
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (!active_[c]) continue;
    res.cores.push_back(cores_[c]->stats());
    end = std::max(end, cores_[c]->stats().halted_at);
  }
  res.cycles = res.completed ? end : max_cycles;
  res.mem = mem_->stats();
  if (prof::enabled()) {
    std::uint64_t instrs = 0;
    for (const CoreStats& s : res.cores) instrs += s.instructions;
    ARMBAR_PROF_COUNT(kSimInstructions, instrs);
    ARMBAR_PROF_COUNT(kSimCycles, res.cycles);
    ARMBAR_PROF_COUNT(kSimRuns, 1);
  }
  return res;
}

}  // namespace armbar::sim
