#include "sim/machine.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace armbar::sim {

Machine::Machine(PlatformSpec spec, std::size_t mem_bytes)
    : spec_(std::move(spec)),
      mem_(std::make_unique<MemorySystem>(spec_, mem_bytes)),
      active_(spec_.total_cores(), false) {
  cores_.reserve(spec_.total_cores());
  for (CoreId c = 0; c < spec_.total_cores(); ++c)
    cores_.push_back(std::make_unique<Core>(c, spec_, *mem_));
  mem_->set_invalidate_hook([this](CoreId victim, Addr line, Cycle at) {
    cores_[victim]->on_invalidate(line, at);
  });
}

void Machine::load_program(CoreId c, const Program* prog) {
  ARMBAR_CHECK(c < num_cores());
  cores_[c]->load_program(prog);
  active_[c] = true;
}

void Machine::set_tso(bool tso) {
  for (auto& c : cores_) c->set_tso(tso);
}

void Machine::set_tracer(trace::Tracer* t) {
  if (t != nullptr) t->set_stall_cause_names(stall_cause_names());
  for (auto& c : cores_) c->set_tracer(t);
  mem_->set_tracer(t);
}

void Machine::reset_stats() {
  for (auto& c : cores_) c->reset_stats();
  mem_->reset_stats();
}

RunResult Machine::run(const RunConfig& cfg) {
  ARMBAR_CHECK_MSG(!ran_, "Machine::run() may only be called once");
  ran_ = true;

  const Cycle max_cycles = cfg.max_cycles;
  const bool attach = cfg.tracer != nullptr;
  if (attach) set_tracer(cfg.tracer);
  if (cfg.stats == RunConfig::Stats::kResetBeforeRun) reset_stats();

  RunResult res;
  std::vector<Core*> live;
  for (CoreId c = 0; c < num_cores(); ++c)
    if (active_[c]) live.push_back(cores_[c].get());

  Cycle now = 0;
  while (true) {
    Cycle next = kNeverCycle;
    bool all_idle = true;
    for (Core* core : live) {
      if (core->idle()) continue;
      all_idle = false;
      next = std::min(next, core->next_attention());
    }
    if (all_idle) {
      res.completed = true;
      break;
    }
    ARMBAR_CHECK_MSG(next != kNeverCycle, "simulation deadlock: no core schedulable");
    now = std::max(now, next);
    if (now > max_cycles) {
      res.completed = false;
      break;
    }
    for (Core* core : live) {
      if (!core->idle() && core->next_attention() <= now) core->step(now);
    }
  }

  Cycle end = 0;
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (!active_[c]) continue;
    res.cores.push_back(cores_[c]->stats());
    end = std::max(end, cores_[c]->stats().halted_at);
  }
  res.cycles = res.completed ? end : max_cycles;
  res.mem = mem_->stats();
  return res;
}

}  // namespace armbar::sim
