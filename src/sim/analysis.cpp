#include "sim/analysis.hpp"

#include <sstream>

namespace armbar::sim {

BarrierClass barrier_class(Op op) {
  switch (op) {
    case Op::kDmbFull:
    case Op::kDsbFull:
      return {true, true, true, true};
    case Op::kDmbSt:
    case Op::kDsbSt:
      return {false, true, false, true};   // store -> store
    case Op::kDmbLd:
    case Op::kDsbLd:
      return {true, false, true, true};    // load -> load/store
    default:
      return {};
  }
}

namespace {

/// Conservative per-instruction summary used by the forward scan.
struct Effect {
  bool load = false;
  bool store = false;
  bool join = false;  // branch target or branch: kills all knowledge
};

Effect effect_of(const Instr& ins) {
  Effect e;
  e.load = is_load(ins.op);
  e.store = is_store(ins.op);
  e.join = is_branch(ins.op);
  return e;
}

bool subsumes(const BarrierClass& strong, const BarrierClass& weak) {
  return (!weak.before_loads || strong.before_loads) &&
         (!weak.before_stores || strong.before_stores) &&
         (!weak.after_loads || strong.after_loads) &&
         (!weak.after_stores || strong.after_stores);
}

}  // namespace

FenceAnalysis analyze_fences(const Program& p) {
  FenceAnalysis out;

  // Mark instructions that are branch targets: knowledge is killed there
  // (another path may carry pending accesses).
  std::vector<bool> is_target(p.size(), false);
  for (std::uint32_t i = 0; i < p.size(); ++i)
    if (is_branch(p.at(i).op)) is_target[p.at(i).target] = true;

  // Forward scan tracking, since the last "knowledge kill" (program start,
  // join, or barrier), whether a load/store of each class occurred.
  bool pending_load = false;
  bool pending_store = false;
  bool clean_path = true;  // no join since the last subsuming barrier
  // The strongest barrier seen on the current clean straight-line segment.
  BarrierClass last_barrier{};
  bool have_last_barrier = false;

  for (std::uint32_t i = 0; i < p.size(); ++i) {
    const Instr& ins = p.at(i);
    if (is_target[i]) {
      // A join: assume the worst from the other path.
      pending_load = pending_store = true;
      clean_path = false;
      have_last_barrier = false;
    }

    if (is_barrier(ins.op) && ins.op != Op::kIsb) {
      ++out.total_barriers;
      const BarrierClass cls = barrier_class(ins.op);
      const bool nothing_before =
          (!cls.before_loads || !pending_load) &&
          (!cls.before_stores || !pending_store);
      if (nothing_before && clean_path) {
        out.redundant.push_back(
            {i, ins.op,
             "no preceding access of the ordered class since program start "
             "or the previous subsuming barrier"});
      } else if (have_last_barrier && subsumes(last_barrier, cls) &&
                 !pending_load && !pending_store) {
        out.redundant.push_back(
            {i, ins.op,
             "subsumed by an earlier equal-or-stronger barrier with no "
             "memory access in between"});
      }
      // The barrier discharges the accesses it orders.
      if (cls.before_loads) pending_load = false;
      if (cls.before_stores) pending_store = false;
      last_barrier = cls;
      have_last_barrier = true;
      clean_path = true;
      continue;
    }

    const Effect e = effect_of(ins);
    if (e.load) pending_load = true;
    if (e.store) pending_store = true;
    if (e.join) {
      // Fallthrough past a branch: the next instruction may also be
      // reached from elsewhere; handled by is_target above. The branch
      // itself doesn't kill straight-line knowledge for the fallthrough.
    }
  }
  return out;
}

std::string FenceAnalysis::str() const {
  std::ostringstream os;
  os << total_barriers << " barriers, " << redundant.size() << " provably redundant\n";
  for (const auto& r : redundant)
    os << "  @" << r.pc << " " << to_string(r.op) << ": " << r.reason << "\n";
  return os.str();
}

}  // namespace armbar::sim
