// Platform presets (paper Table 2) and the timing parameters of the model.
//
// The instruction set only defines *behaviour*; performance characteristics
// belong to an implementation (paper §3.1). Each preset below is one
// "implementation": a topology plus a latency table calibrated so that the
// paper's qualitative results reproduce (tipping points, orderings,
// server-vs-mobile contrast). Absolute values are simulated cycles, not a
// cycle-accurate model of the silicon.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace armbar::sim {

/// Timing parameters. All values in core cycles.
struct Latencies {
  // --- core ---
  std::uint32_t alu = 1;             ///< ALU result-ready delay
  std::uint32_t cache_hit = 2;       ///< load hit in the private cache
  std::uint32_t sb_hit = 1;          ///< store-buffer forward to own load
  std::uint32_t sb_insert = 1;       ///< store retire into the store buffer
  /// Cycles a store sits in the buffer before its drain may request
  /// ownership. This window is what lets program-order-later loads overtake
  /// stores (the SB litmus shape / TSO's one relaxation).
  std::uint32_t sb_drain_delay = 8;
  std::uint32_t owned_drain = 2;     ///< drain when the line is already owned (M/E)
  std::uint32_t pipeline_flush = 12; ///< ISB / branch-squash refill penalty
  std::uint32_t barrier_base = 1;    ///< barrier completing with nothing pending

  // --- memory hierarchy (per request; see MemorySystem) ---
  std::uint32_t mem_local = 110;     ///< fill from home-node memory
  std::uint32_t mem_remote = 220;    ///< fill from remote-node memory
  std::uint32_t c2c_local = 90;      ///< cache-to-cache transfer within a node
  std::uint32_t c2c_remote = 320;    ///< cache-to-cache transfer across nodes
  std::uint32_t inv_local = 150;     ///< ownership acquisition, sharers within node
  std::uint32_t inv_remote = 700;    ///< ownership acquisition, remote sharers
  /// Read-share transfers pipeline: a GetS occupies the line's service
  /// port for this long, while the requester still waits the full
  /// latency. Ownership transfers (GetM) serialize fully. This keeps a
  /// post-release thundering herd from swamping every other effect.
  std::uint32_t read_occupancy = 12;

  // --- ACE barrier transactions (paper §2.3) ---
  /// Memory-barrier transaction reaching the inner bi-section boundary
  /// (all snooped cores on the issuing node).
  std::uint32_t bus_mem_local = 18;
  /// Memory-barrier transaction that must reach the inner domain boundary
  /// because cross-node snooping was involved.
  std::uint32_t bus_mem_cross = 70;
  /// Synchronization-barrier transaction. Always travels to the inner
  /// domain boundary regardless of locality (Observation 5).
  std::uint32_t bus_sync = 550;
  /// Extra global-visibility acknowledgement a store-release drain waits
  /// for before it can retire from the store buffer (Observation 3).
  std::uint32_t stlr_extra = 140;

  // --- structure sizes ---
  std::uint32_t sb_entries = 24;     ///< store buffer capacity
  std::uint32_t sb_mshrs = 8;        ///< concurrent outstanding drains
  std::uint32_t lq_entries = 16;     ///< outstanding loads
  std::uint32_t max_spec_branches = 4;
  std::uint32_t wfe_timeout = 512;   ///< WFE wakes spuriously after this many cycles
};

/// A simulated machine description.
struct PlatformSpec {
  std::string name;
  std::string arch;                  ///< marketing core name, for Table 2
  std::uint32_t nodes = 1;           ///< NUMA nodes
  std::uint32_t cores_per_node = 4;
  double freq_ghz = 2.0;             ///< used only to convert cycles -> loops/s
  std::string interconnect;
  Latencies lat;
  /// Multi-copy-atomic mode (ARMv8.4 / Pulte et al.): DMB transactions
  /// terminate internally — bus_mem_* collapse to barrier_base. Extension
  /// knob for the ablation bench; all paper platforms are modelled non-MCA.
  bool mca = false;

  std::uint32_t total_cores() const { return nodes * cores_per_node; }
  NodeId node_of(CoreId c) const { return c / cores_per_node; }
};

/// Kunpeng 916: the ARM server (2 sockets x 32 cores, deep interconnect).
PlatformSpec kunpeng916();
/// Kirin 960: mobile big.LITTLE (modelled as the 4-core big cluster + 4 LITTLE).
PlatformSpec kirin960();
/// Kirin 970: same layout, higher clock, slightly faster uncore.
PlatformSpec kirin970();
/// Raspberry Pi 4: 4x Cortex-A72, simple bus.
PlatformSpec rpi4();

/// All four presets, in the paper's Table 2 order.
std::vector<PlatformSpec> all_platforms();

/// Look up a preset by name; aborts on unknown name.
PlatformSpec platform_by_name(const std::string& name);

}  // namespace armbar::sim
