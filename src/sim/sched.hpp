// Attention scheduler for the machine run loop (ISSUE 7 fast path).
//
// The run loop needs two things per iteration: the earliest cycle any live
// core wants attention (to jump simulated time forward), and the set of
// cores due at that cycle (stepped in core-id order — see machine.cpp for
// why that order is load-bearing). The PR-6 loop recomputed the minimum
// with a full scan over all cores every iteration; with mostly-idle or
// far-future cores that scan dominated kSimSchedule.
//
// AttentionQueue keeps a dense per-core cycle array (the authoritative
// slots — one cache line for typical core counts) plus a lazy min-heap of
// (cycle, core) pairs. set() pushes unconditionally; min() pops stale
// entries whose cycle no longer matches the slot. Each slot write pushes at
// most one heap entry, so the heap holds at most one stale entry per set()
// and is compacted when it grows past 4x the core count.
//
// The queue is deliberately NOT an event-dispatch mechanism: it only
// answers "what is the earliest attention cycle". Stepping still walks
// core ids in order and re-reads the live slots, because a step can change
// other cores' attention (coherence invalidations waking WFE parkers) in
// the same cycle, and the heap's pop order must not leak into simulated
// timing.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace armbar::sim {

class AttentionQueue {
 public:
  explicit AttentionQueue(std::uint32_t num_cores)
      : slots_(num_cores, kNeverCycle) {
    heap_.reserve(num_cores * 2);
  }

  /// Authoritative next-attention cycle for `core` (kNeverCycle = idle).
  void set(std::uint32_t core, Cycle at) {
    slots_[core] = at;
    if (at != kNeverCycle) {
      heap_.push_back(Entry{at, core});
      std::push_heap(heap_.begin(), heap_.end(), Later{});
      if (heap_.size() > 4 * slots_.size() && heap_.size() > 16) compact();
    }
  }

  Cycle at(std::uint32_t core) const { return slots_[core]; }

  /// The dense slot array itself, for the run loop's step sweep: one
  /// contiguous read per core instead of chasing each Core pointer for
  /// idle()/next_attention(). Entries mutate under the caller's feet as
  /// steps reschedule cores — that is the point (the sweep must observe
  /// same-cycle wakes written by earlier cores' steps).
  const std::vector<Cycle>& slots() const { return slots_; }

  /// Earliest attention cycle over all cores (kNeverCycle when none pending).
  /// Amortized O(log n): pops entries invalidated by later set() calls.
  Cycle min() {
    while (!heap_.empty()) {
      const Entry& top = heap_.front();
      if (slots_[top.core] == top.at) return top.at;
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      heap_.pop_back();
    }
    return kNeverCycle;
  }

 private:
  struct Entry {
    Cycle at;
    std::uint32_t core;
  };
  // std::push_heap builds a max-heap; "later is less" turns it into min.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const { return a.at > b.at; }
  };

  void compact() {
    heap_.clear();
    for (std::uint32_t c = 0; c < slots_.size(); ++c)
      if (slots_[c] != kNeverCycle) heap_.push_back(Entry{slots_[c], c});
    std::make_heap(heap_.begin(), heap_.end(), Later{});
  }

  std::vector<Cycle> slots_;
  std::vector<Entry> heap_;
};

}  // namespace armbar::sim
