#include "sim/isa.hpp"

#include <sstream>

namespace armbar::sim {

std::string to_string(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kHalt: return "halt";
    case Op::kWfe: return "wfe";
    case Op::kMovImm: return "movi";
    case Op::kMov: return "mov";
    case Op::kAdd: return "add";
    case Op::kAddImm: return "addi";
    case Op::kSub: return "sub";
    case Op::kSubImm: return "subi";
    case Op::kAnd: return "and";
    case Op::kAndImm: return "andi";
    case Op::kOrr: return "orr";
    case Op::kOrrImm: return "orri";
    case Op::kEor: return "eor";
    case Op::kEorImm: return "eori";
    case Op::kLsl: return "lsl";
    case Op::kLslImm: return "lsli";
    case Op::kLsr: return "lsr";
    case Op::kLsrImm: return "lsri";
    case Op::kMul: return "mul";
    case Op::kLdr: return "ldr";
    case Op::kLdrIdx: return "ldr(idx)";
    case Op::kStr: return "str";
    case Op::kStrIdx: return "str(idx)";
    case Op::kLdar: return "ldar";
    case Op::kLdapr: return "ldapr";
    case Op::kStlr: return "stlr";
    case Op::kLdxr: return "ldxr";
    case Op::kStxr: return "stxr";
    case Op::kSwp: return "swp";
    case Op::kCmp: return "cmp";
    case Op::kCmpImm: return "cmpi";
    case Op::kB: return "b";
    case Op::kBeq: return "b.eq";
    case Op::kBne: return "b.ne";
    case Op::kBlt: return "b.lt";
    case Op::kBle: return "b.le";
    case Op::kBgt: return "b.gt";
    case Op::kBge: return "b.ge";
    case Op::kCbz: return "cbz";
    case Op::kCbnz: return "cbnz";
    case Op::kDmbFull: return "dmb ish";
    case Op::kDmbSt: return "dmb ishst";
    case Op::kDmbLd: return "dmb ishld";
    case Op::kDsbFull: return "dsb ish";
    case Op::kDsbSt: return "dsb ishst";
    case Op::kDsbLd: return "dsb ishld";
    case Op::kIsb: return "isb";
  }
  return "?";
}

const char* op_token(Op op) {
  switch (op) {
    case Op::kNop: return "nop";
    case Op::kHalt: return "halt";
    case Op::kWfe: return "wfe";
    case Op::kMovImm: return "movi";
    case Op::kMov: return "mov";
    case Op::kAdd: return "add";
    case Op::kAddImm: return "addi";
    case Op::kSub: return "sub";
    case Op::kSubImm: return "subi";
    case Op::kAnd: return "and";
    case Op::kAndImm: return "andi";
    case Op::kOrr: return "orr";
    case Op::kOrrImm: return "orri";
    case Op::kEor: return "eor";
    case Op::kEorImm: return "eori";
    case Op::kLsl: return "lsl";
    case Op::kLslImm: return "lsli";
    case Op::kLsr: return "lsr";
    case Op::kLsrImm: return "lsri";
    case Op::kMul: return "mul";
    case Op::kLdr: return "ldr";
    case Op::kLdrIdx: return "ldr.idx";
    case Op::kStr: return "str";
    case Op::kStrIdx: return "str.idx";
    case Op::kLdar: return "ldar";
    case Op::kLdapr: return "ldapr";
    case Op::kStlr: return "stlr";
    case Op::kLdxr: return "ldxr";
    case Op::kStxr: return "stxr";
    case Op::kSwp: return "swp";
    case Op::kCmp: return "cmp";
    case Op::kCmpImm: return "cmpi";
    case Op::kB: return "b";
    case Op::kBeq: return "b.eq";
    case Op::kBne: return "b.ne";
    case Op::kBlt: return "b.lt";
    case Op::kBle: return "b.le";
    case Op::kBgt: return "b.gt";
    case Op::kBge: return "b.ge";
    case Op::kCbz: return "cbz";
    case Op::kCbnz: return "cbnz";
    case Op::kDmbFull: return "dmb.ish";
    case Op::kDmbSt: return "dmb.ishst";
    case Op::kDmbLd: return "dmb.ishld";
    case Op::kDsbFull: return "dsb.ish";
    case Op::kDsbSt: return "dsb.ishst";
    case Op::kDsbLd: return "dsb.ishld";
    case Op::kIsb: return "isb";
  }
  return "?";
}

bool op_from_token(const std::string& token, Op* out) {
  // The op space is tiny and this only runs when parsing repro bundles, so a
  // linear scan over the enum keeps the table single-sourced in op_token().
  for (int i = 0; i <= static_cast<int>(Op::kIsb); ++i) {
    const Op op = static_cast<Op>(i);
    if (token == op_token(op)) {
      *out = op;
      return true;
    }
  }
  return false;
}

std::string to_string(const Instr& ins) {
  std::ostringstream os;
  os << to_string(ins.op);
  auto reg = [](Reg r) {
    return r == XZR ? std::string("xzr") : "x" + std::to_string(static_cast<int>(r));
  };
  switch (ins.op) {
    case Op::kNop: case Op::kHalt: case Op::kWfe:
    case Op::kDmbFull: case Op::kDmbSt: case Op::kDmbLd:
    case Op::kDsbFull: case Op::kDsbSt: case Op::kDsbLd:
    case Op::kIsb:
      break;
    case Op::kMovImm:
      os << " " << reg(ins.rd) << ", #" << ins.imm;
      break;
    case Op::kMov:
      os << " " << reg(ins.rd) << ", " << reg(ins.rn);
      break;
    case Op::kAdd: case Op::kSub: case Op::kAnd: case Op::kOrr:
    case Op::kEor: case Op::kLsl: case Op::kLsr: case Op::kMul:
      os << " " << reg(ins.rd) << ", " << reg(ins.rn) << ", " << reg(ins.rm);
      break;
    case Op::kAddImm: case Op::kSubImm: case Op::kAndImm: case Op::kOrrImm:
    case Op::kEorImm: case Op::kLslImm: case Op::kLsrImm:
      os << " " << reg(ins.rd) << ", " << reg(ins.rn) << ", #" << ins.imm;
      break;
    case Op::kLdr: case Op::kLdar: case Op::kLdapr: case Op::kLdxr:
      os << " " << reg(ins.rd) << ", [" << reg(ins.rn) << ", #" << ins.imm << "]";
      break;
    case Op::kLdrIdx:
      os << " " << reg(ins.rd) << ", [" << reg(ins.rn) << ", " << reg(ins.rm) << "]";
      break;
    case Op::kStr: case Op::kStlr:
      os << " " << reg(ins.rd) << ", [" << reg(ins.rn) << ", #" << ins.imm << "]";
      break;
    case Op::kStrIdx:
      os << " " << reg(ins.rd) << ", [" << reg(ins.rn) << ", " << reg(ins.rm) << "]";
      break;
    case Op::kStxr:
    case Op::kSwp:
      os << " " << reg(ins.rd) << ", " << reg(ins.rm) << ", [" << reg(ins.rn) << "]";
      break;
    case Op::kCmp:
      os << " " << reg(ins.rn) << ", " << reg(ins.rm);
      break;
    case Op::kCmpImm:
      os << " " << reg(ins.rn) << ", #" << ins.imm;
      break;
    case Op::kB: case Op::kBeq: case Op::kBne: case Op::kBlt:
    case Op::kBle: case Op::kBgt: case Op::kBge:
      os << " @" << ins.target;
      break;
    case Op::kCbz: case Op::kCbnz:
      os << " " << reg(ins.rn) << ", @" << ins.target;
      break;
  }
  return os.str();
}

}  // namespace armbar::sim
