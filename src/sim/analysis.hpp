// Static barrier-redundancy analysis over micro-ISA programs.
//
// A lightweight, conservative take on partially-redundant fence
// elimination (the compile-time direction the paper contrasts itself with
// in §6): it flags barriers that cannot order anything because no memory
// access of the class they protect can reach them since the previous
// equally-strong barrier. Only *provably* redundant barriers are reported:
//
//   * a barrier with no preceding memory access anywhere in the program
//     prefix/loop body that could pair with a following one;
//   * a barrier dominated by an equal-or-stronger barrier with no memory
//     access of the protected "before" class in between;
//   * consecutive barriers where the earlier one is subsumed by the later,
//     stronger one with no intervening memory access.
//
// The analysis is path-insensitive and treats any branch target as a join
// (conservative: barriers reachable from unanalyzed paths are kept).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/program.hpp"

namespace armbar::sim {

/// What a barrier orders on each side.
struct BarrierClass {
  bool before_loads = false;
  bool before_stores = false;
  bool after_loads = false;
  bool after_stores = false;
};

/// Ordering classes of the barrier instructions (inner-shareable).
BarrierClass barrier_class(Op op);

struct RedundantBarrier {
  std::uint32_t pc = 0;
  Op op = Op::kNop;
  std::string reason;
};

struct FenceAnalysis {
  std::uint32_t total_barriers = 0;
  std::vector<RedundantBarrier> redundant;
  std::string str() const;
};

/// Analyze `p` and report provably redundant barriers.
FenceAnalysis analyze_fences(const Program& p);

}  // namespace armbar::sim
