#include "sim/core.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "prof/prof.hpp"
#include "sim/fault/fault.hpp"

namespace armbar::sim {

namespace {
constexpr Cycle cyc_min(Cycle a, Cycle b) { return a < b ? a : b; }
constexpr Cycle cyc_max(Cycle a, Cycle b) { return a > b ? a : b; }

constexpr std::uint8_t code(StallCause c) { return static_cast<std::uint8_t>(c); }
constexpr std::uint8_t code(Op op) { return static_cast<std::uint8_t>(op); }
}  // namespace

const char* to_string(StallCause c) {
  switch (c) {
    case StallCause::kNone: return "none";
    case StallCause::kOperand: return "operand";
    case StallCause::kBarrier: return "barrier";
    case StallCause::kStoreGate: return "store_gate";
    case StallCause::kMemGate: return "mem_gate";
    case StallCause::kSbFull: return "sb_full";
    case StallCause::kLqFull: return "lq_full";
    case StallCause::kSpec: return "spec";
    case StallCause::kSquash: return "squash";
    case StallCause::kParked: return "parked";
    case StallCause::kCount: break;
  }
  return "?";
}

std::vector<std::string> stall_cause_names() {
  std::vector<std::string> names;
  for (int c = 0; c < static_cast<int>(StallCause::kCount); ++c)
    names.emplace_back(to_string(static_cast<StallCause>(c)));
  return names;
}

Core::Core(CoreId id, const PlatformSpec& spec, MemorySystem& mem)
    : id_(id), spec_(spec), lat_(spec.lat), mem_(mem) {}

void Core::load_program(ProgramHandle prog) {
  ARMBAR_CHECK(prog != nullptr && prog->size() > 0);
  prog_ = std::move(prog);
  uops_ = prog_->uops();
  prog_size_ = prog_->size();
  pc_ = 0;
  halted_ = false;
  next_attention_ = 0;
}

void Core::set_reg(Reg r, std::uint64_t v) {
  if (r == XZR) return;
  regs_[r] = v;
  ready_[r] = 0;
}

void Core::write(Reg r, std::uint64_t v, Cycle ready_at) {
  if (r == XZR) return;
  regs_[r] = v;
  ready_[r] = ready_at;
}

void Core::stall(Cycle now, Cycle until, StallCause cause) {
  if (until > now) {
    stats_.stall_cycles[static_cast<int>(cause)] += until - now;
    // The trace mirrors the accounting exactly: summing a core's kBarrier
    // stall spans reproduces stats().stall_cycles[kBarrier] (the
    // trace_explorer acceptance check relies on this).
    ARMBAR_TRACE(tracer_, stall(id_, pc_, code(cause), now, until));
  }
  stall_until_ = cyc_max(stall_until_, until);
  stall_cause_ = cause;
}

bool Core::sb_has_older_same_word(std::uint64_t seq, Addr word) const {
  for (const auto& e : sb_) {
    if (e.seq >= seq) break;
    if (word_of(e.addr) == word) return true;
  }
  return false;
}

void Core::retire_drain(const SbEntry& e) {
  for (auto& w : watches_) {
    if (!w.active || e.seq >= w.epoch) continue;
    ARMBAR_CHECK(w.pending > 0);
    --w.pending;
    w.max_done = cyc_max(w.max_done, e.drain_done);
    w.remote = w.remote || e.remote_snoop;
  }
}

int Core::alloc_watch(Cycle now) {
  int idx = -1;
  for (std::size_t i = 0; i < watches_.size(); ++i) {
    if (!watches_[i].active) {
      idx = static_cast<int>(i);
      break;
    }
  }
  if (idx < 0) {
    watches_.emplace_back();
    idx = static_cast<int>(watches_.size() - 1);
  }
  SbWatch& w = watches_[idx];
  w.active = true;
  w.epoch = sb_next_seq_;
  w.pending = static_cast<std::uint32_t>(sb_.size());
  w.max_done = now;
  w.remote = false;
  return idx;
}

void Core::pump_store_buffer(Cycle now) {
  // Retire finished drains (completion order, not program order: the
  // buffer is non-FIFO). Single compaction pass, preserving buffer order.
  std::size_t kept = 0;
  for (std::size_t i = 0; i < sb_.size(); ++i) {
    SbEntry& e = sb_[i];
    if (e.draining && e.drain_done <= now) {
      retire_drain(e);
      ARMBAR_TRACE(tracer_,
                   sb_drain_retire(id_, e.seq, e.enqueued_at, e.drain_done));
      ++stats_.sb_retired;
    } else {
      if (kept != i) sb_[kept] = e;
      ++kept;
    }
  }
  sb_.resize(kept);

  std::uint32_t inflight = 0;
  for (const auto& e : sb_)
    if (e.draining) ++inflight;

  const std::uint32_t mshrs = tso_ ? 1 : lat_.sb_mshrs;
  for (auto& e : sb_) {
    if (inflight >= mshrs) break;
    if (e.draining) continue;
    if (tso_ && &e != &sb_.front()) break;  // TSO: strict FIFO drain
    if (e.value_ready > now) continue;      // data dependency
    if (e.drain_at > now) continue;         // still sitting in the buffer
    if (e.gate_branch > committed_branch_) continue;  // control dependency
    if (sb_has_older_same_word(e.seq, word_of(e.addr))) continue;
    if (e.release) {
      // STLR drains only once every older store has drained and every
      // prior load has completed; then it pays the global-visibility ack.
      if (&e != &sb_.front()) continue;
      if (e.release_loads > now) continue;
    }
    // Fault hook: a drain that was about to start may be postponed (the
    // entry sits in the buffer longer — always architecturally legal).
    if (const Cycle stall_f = ARMBAR_FAULT_CYCLES(fault_, sb_stall(id_));
        stall_f != 0) {
      e.drain_at = now + stall_f;
      continue;
    }
    bool remote = false;
    Cycle done = mem_.store(id_, e.addr, e.value, now, remote);
    if (e.release) done += lat_.stlr_extra;
    e.draining = true;
    e.drain_done = done;
    e.remote_snoop = remote;
    ARMBAR_TRACE(tracer_, sb_drain_start(id_, e.seq, e.addr, now, done));
    ++inflight;
  }

  // Resolve a pending DMB st gate once its watched stores have drained.
  if (store_gate_armed_ && store_gate_watch_ >= 0) {
    SbWatch& w = watches_[store_gate_watch_];
    if (w.pending == 0) {
      const std::uint32_t txn =
          spec_.mca ? lat_.barrier_base
                    : (w.remote ? lat_.bus_mem_cross : lat_.bus_mem_local);
      store_gate_ready_ =
          w.max_done + txn + ARMBAR_FAULT_CYCLES(fault_, barrier_spike(id_));
      ARMBAR_TRACE(tracer_,
                   barrier_txn(id_, code(Op::kDmbSt), w.max_done, store_gate_ready_));
      ARMBAR_TRACE(tracer_, store_gate_open(id_, store_gate_ready_));
      w.active = false;
      store_gate_watch_ = -1;
    }
  }
}

Cycle Core::earliest_sb_event(Cycle now) const {
  Cycle t = kNeverCycle;
  for (const auto& e : sb_) {
    if (e.draining) {
      t = cyc_min(t, e.drain_done);
    } else {
      if (e.value_ready > now) t = cyc_min(t, e.value_ready);
      if (e.drain_at > now) t = cyc_min(t, e.drain_at);
      if (e.release && e.release_loads > now) t = cyc_min(t, e.release_loads);
    }
  }
  return t;
}

void Core::squash(const PendingBranch& br, Cycle now) {
  std::copy(std::begin(br.regs), std::end(br.regs), std::begin(regs_));
  std::copy(std::begin(br.ready), std::end(br.ready), std::begin(ready_));
  flags_ = br.flags;
  flags_ready_ = br.flags_ready;
  loads_done_at_ = br.loads_done;
  while (!sb_.empty() && sb_.back().seq >= br.sb_seq) {
    ARMBAR_CHECK_MSG(!sb_.back().draining, "speculative store drained");
    sb_.pop_back();
  }
  branches_.clear();
  committed_branch_ = br.idx;
  pc_ = br.actual_pc;
  ++stats_.squashes;
  ARMBAR_TRACE(tracer_, squash(id_, pc_, now));
  stall(now, now + lat_.pipeline_flush, StallCause::kSquash);
}

void Core::resolve_branches(Cycle now) {
  while (!branches_.empty() && branches_.front().resolve_at <= now) {
    PendingBranch br = branches_.front();
    if (br.actual_pc == br.predicted_pc) {
      branches_.erase(branches_.begin());
      committed_branch_ = br.idx;
    } else {
      squash(br, now);
      return;
    }
  }
}

bool Core::check_blocking_barrier(Cycle now) {
  BlockingBarrier& b = *barrier_;
  Cycle done_at = cyc_max(b.issue, b.loads_done);
  bool remote = false;
  if (b.watch >= 0) {
    SbWatch& w = watches_[b.watch];
    if (w.pending > 0) return false;
    done_at = cyc_max(done_at, w.max_done);
    remote = w.remote;
    w.active = false;
  }

  std::uint32_t extra = lat_.barrier_base;
  switch (b.kind) {
    case Op::kDmbLd:
      extra = lat_.barrier_base;
      break;
    case Op::kDmbFull:
      extra = (!b.had_stores || spec_.mca)
                  ? lat_.barrier_base
                  : (remote ? lat_.bus_mem_cross : lat_.bus_mem_local);
      break;
    case Op::kDsbFull:
    case Op::kDsbSt:
    case Op::kDsbLd:
      // Synchronization barrier transactions always travel to the inner
      // domain boundary — no locality benefit (Observation 5).
      extra = lat_.bus_sync;
      break;
    default:
      ARMBAR_CHECK(false);
  }
  // Fault hook: the ACE barrier transaction's round trip may be spiked.
  const Cycle complete =
      done_at + extra + ARMBAR_FAULT_CYCLES(fault_, barrier_spike(id_));
  // The cycles spent waiting for the watched drains ([block_from, now))
  // were not chargeable anywhere while the watch was pending; attribute
  // them to the barrier now. stall() below covers [now, complete).
  if (now > b.block_from) {
    stats_.stall_cycles[static_cast<int>(StallCause::kBarrier)] += now - b.block_from;
    ARMBAR_TRACE(tracer_,
                 stall(id_, b.pc, code(StallCause::kBarrier), b.block_from, now));
  }
  ARMBAR_TRACE(tracer_, barrier_txn(id_, code(b.kind), done_at, complete));
  ARMBAR_TRACE(tracer_, barrier_complete(id_, b.pc, code(b.kind),
                                         cyc_min(b.block_from, now), complete));
  barrier_.reset();
  stall(now, complete, StallCause::kBarrier);
  return true;
}

Cycle Core::do_load(const MicroOp& u, Cycle now, Addr addr) {
  // Store-buffer forwarding: youngest same-word entry wins.
  for (auto it = sb_.rbegin(); it != sb_.rend(); ++it) {
    if (word_of(it->addr) == word_of(addr)) {
      const Cycle done = cyc_max(now + lat_.sb_hit, it->value_ready);
      write(u.rd, it->value, done);
      return done;
    }
  }
  std::uint64_t value = 0;
  Cycle done = mem_.load(id_, addr, now, value,
                         /*exclusive=*/(u.flags & kUopExcl) != 0);
  if (done - now > lat_.cache_hit) ++stats_.load_misses;
  if (tso_) {
    // TSO: loads become visible in program order.
    done = cyc_max(done, tso_last_load_done_);
    tso_last_load_done_ = done;
  }
  write(u.rd, value, done);
  return done;
}

void Core::issue(Cycle now) {
  ARMBAR_CHECK(uops_ != nullptr && pc_ < prog_size_);
  const std::uint32_t ins_pc = pc_;
  const MicroOp& u = uops_[pc_];

  // Barriers, exclusives, WFE and HALT never execute speculatively
  // (predecoded into kUopNonspec).
  if ((u.flags & kUopNonspec) != 0 && !branches_.empty()) {
    stall(now, branches_.front().resolve_at, StallCause::kSpec);
    return;
  }
  // Operand readiness: the gating registers were resolved at decode time,
  // so one max over two ready-cycles replaces the per-op switch.
  if (const Cycle need = cyc_max(reg_ready(static_cast<Reg>(u.src1)),
                                 reg_ready(static_cast<Reg>(u.src2)));
      need > now) {
    stall(now, need, StallCause::kOperand);
    return;
  }

  switch (u.cls) {
    case OpClass::kNop:
      ++pc_;
      break;

    case OpClass::kHalt:
      halted_ = true;
      stats_.halted_at = now;
      break;

    case OpClass::kWfe:
      if (event_pending_) {
        event_pending_ = false;
      } else {
        parked_ = true;
        park_wake_ = now + lat_.wfe_timeout;
        ++stats_.wfe_parks;
      }
      ++pc_;
      break;

    case OpClass::kAlu:
      switch (u.op) {
        case Op::kMovImm: write(u.rd, static_cast<std::uint64_t>(u.imm), now + lat_.alu); break;
        case Op::kMov: write(u.rd, read(u.rn), now + lat_.alu); break;
        case Op::kAdd: write(u.rd, read(u.rn) + read(u.rm), now + lat_.alu); break;
        case Op::kAddImm: write(u.rd, read(u.rn) + static_cast<std::uint64_t>(u.imm), now + lat_.alu); break;
        case Op::kSub: write(u.rd, read(u.rn) - read(u.rm), now + lat_.alu); break;
        case Op::kSubImm: write(u.rd, read(u.rn) - static_cast<std::uint64_t>(u.imm), now + lat_.alu); break;
        case Op::kAnd: write(u.rd, read(u.rn) & read(u.rm), now + lat_.alu); break;
        case Op::kAndImm: write(u.rd, read(u.rn) & static_cast<std::uint64_t>(u.imm), now + lat_.alu); break;
        case Op::kOrr: write(u.rd, read(u.rn) | read(u.rm), now + lat_.alu); break;
        case Op::kOrrImm: write(u.rd, read(u.rn) | static_cast<std::uint64_t>(u.imm), now + lat_.alu); break;
        case Op::kEor: write(u.rd, read(u.rn) ^ read(u.rm), now + lat_.alu); break;
        case Op::kEorImm: write(u.rd, read(u.rn) ^ static_cast<std::uint64_t>(u.imm), now + lat_.alu); break;
        case Op::kLsl: write(u.rd, read(u.rn) << (read(u.rm) & 63), now + lat_.alu); break;
        case Op::kLslImm: write(u.rd, read(u.rn) << (u.imm & 63), now + lat_.alu); break;
        case Op::kLsr: write(u.rd, read(u.rn) >> (read(u.rm) & 63), now + lat_.alu); break;
        case Op::kLsrImm: write(u.rd, read(u.rn) >> (u.imm & 63), now + lat_.alu); break;
        case Op::kMul: write(u.rd, read(u.rn) * read(u.rm), now + lat_.alu); break;
        case Op::kCmp:
          flags_ = (read(u.rn) < read(u.rm)) ? -1 : (read(u.rn) == read(u.rm) ? 0 : 1);
          flags_ready_ = now + lat_.alu;
          break;
        case Op::kCmpImm: {
          const auto rhs = static_cast<std::uint64_t>(u.imm);
          flags_ = (read(u.rn) < rhs) ? -1 : (read(u.rn) == rhs ? 0 : 1);
          flags_ready_ = now + lat_.alu;
          break;
        }
        default:
          ARMBAR_CHECK(false);  // not an ALU op
      }
      ++pc_;
      break;

    case OpClass::kJump:
      pc_ = u.target;
      break;

    case OpClass::kCondBranch: {
      const bool is_cb = u.op == Op::kCbz || u.op == Op::kCbnz;
      const Cycle resolve_at = is_cb ? reg_ready(u.rn) : flags_ready_;
      bool taken = false;
      switch (u.op) {
        case Op::kBeq: taken = flags_ == 0; break;
        case Op::kBne: taken = flags_ != 0; break;
        case Op::kBlt: taken = flags_ < 0; break;
        case Op::kBle: taken = flags_ <= 0; break;
        case Op::kBgt: taken = flags_ > 0; break;
        case Op::kBge: taken = flags_ >= 0; break;
        case Op::kCbz: taken = read(u.rn) == 0; break;
        case Op::kCbnz: taken = read(u.rn) != 0; break;
        default: break;
      }
      const std::uint32_t actual = taken ? u.target : pc_ + 1;
      if (resolve_at <= now) {
        pc_ = actual;
        break;
      }
      if (branches_.size() >= lat_.max_spec_branches) {
        stall(now, branches_.front().resolve_at, StallCause::kSpec);
        return;
      }
      // Static prediction: backward taken, forward not-taken.
      const std::uint32_t predicted = u.target <= pc_ ? u.target : pc_ + 1;
      PendingBranch br;
      br.idx = next_branch_id_++;
      br.resolve_at = resolve_at;
      br.actual_pc = actual;
      br.predicted_pc = predicted;
      std::copy(std::begin(regs_), std::end(regs_), std::begin(br.regs));
      std::copy(std::begin(ready_), std::end(ready_), std::begin(br.ready));
      br.flags = flags_;
      br.flags_ready = flags_ready_;
      br.loads_done = loads_done_at_;
      br.sb_seq = sb_next_seq_;
      branches_.push_back(br);
      pc_ = predicted;
      break;
    }

    case OpClass::kLoad: {
      if (mem_gate_ > now) {
        stall(now, mem_gate_, StallCause::kMemGate);
        return;
      }
      if (load_gate_ > now) {
        stall(now, load_gate_, StallCause::kMemGate);
        return;
      }
      if ((u.flags & kUopAcqSc) != 0) {
        // RCsc: [L]; po; [A] is barrier-ordered — an LDAR must not be
        // satisfied while an earlier STLR is still awaiting global
        // visibility (found by the differential fuzzer: unfenced SB with
        // STLR/LDAR must not show the (0,0) outcome). Plain STRs are
        // deliberately not waited on ([W]; po; [A] is unordered).
        bool release_pending = false;
        for (const auto& e : sb_)
          if (e.release) { release_pending = true; break; }
        if (release_pending) {
          const Cycle ev = earliest_sb_event(now);
          stall(now, ev > now && ev != kNeverCycle ? ev : now + 1,
                StallCause::kMemGate);
          return;
        }
      }
      std::erase_if(load_queue_, [now](Cycle c) { return c <= now; });
      if (load_queue_.size() >= lat_.lq_entries) {
        stall(now, *std::min_element(load_queue_.begin(), load_queue_.end()),
              StallCause::kLqFull);
        return;
      }
      const Addr addr = (u.flags & kUopIndexed) != 0
                            ? read(u.rn) + read(u.rm)
                            : read(u.rn) + static_cast<std::uint64_t>(u.imm);
      const Cycle done = do_load(u, now, addr);
      load_queue_.push_back(done);
      loads_done_at_ = cyc_max(loads_done_at_, done);
      if ((u.flags & kUopAcqSc) != 0) mem_gate_ = cyc_max(mem_gate_, done);
      if ((u.flags & kUopAcqPc) != 0) {
        // RCpc acquire: later loads wait; later stores only have their
        // visibility (drain) floored — the pipe keeps flowing.
        load_gate_ = cyc_max(load_gate_, done);
        drain_floor_ = cyc_max(drain_floor_, done);
      }
      if ((u.flags & kUopExcl) != 0) {
        monitor_valid_ = true;
        monitor_line_ = line_of(addr);
      }
      ++stats_.loads;
      ++pc_;
      break;
    }

    case OpClass::kStore: {
      if (mem_gate_ > now) {
        stall(now, mem_gate_, StallCause::kMemGate);
        return;
      }
      if (store_gate_armed_ && store_gate_watch_ < 0 && store_gate_ready_ <= now)
        store_gate_armed_ = false;  // gate already resolved and elapsed
      if (store_gate_armed_) {
        if (store_gate_watch_ >= 0) {
          // Gate resolution time still unknown: drains outstanding.
          stall(now, now + 1, StallCause::kStoreGate);
          return;
        }
        if (store_gate_ready_ > now) {
          stall(now, store_gate_ready_, StallCause::kStoreGate);
          return;
        }
        store_gate_armed_ = false;
      }
      if (sb_.size() >= lat_.sb_entries) {
        stall(now, earliest_sb_event(now), StallCause::kSbFull);
        return;
      }
      SbEntry e;
      e.seq = sb_next_seq_++;
      e.addr = (u.flags & kUopIndexed) != 0
                   ? read(u.rn) + read(u.rm)
                   : read(u.rn) + static_cast<std::uint64_t>(u.imm);
      e.value = read(u.rd);
      e.value_ready = cyc_max(now + lat_.sb_insert, reg_ready(u.rd));
      e.drain_at = cyc_max(now + lat_.sb_drain_delay, drain_floor_);
      e.enqueued_at = now;
      e.gate_branch = youngest_branch_id();
      e.release = (u.flags & kUopRelease) != 0;
      e.release_loads = loads_done_at_;
      ARMBAR_TRACE(tracer_, sb_enqueue(id_, e.seq, e.addr, now));
      sb_.push_back(e);
      ++stats_.stores;
      ++pc_;
      break;
    }

    case OpClass::kSwp: {
      if (mem_gate_ > now) {
        stall(now, mem_gate_, StallCause::kMemGate);
        return;
      }
      const Addr addr = read(u.rn);
      std::uint64_t old = 0;
      bool remote = false;
      const Cycle done = mem_.exchange(id_, addr, read(u.rm), now, old, remote);
      write(u.rd, old, done);
      monitor_valid_ = false;
      ++stats_.loads;
      ++stats_.stores;
      ++pc_;
      break;
    }

    case OpClass::kStxr: {
      if (mem_gate_ > now) {
        stall(now, mem_gate_, StallCause::kMemGate);
        return;
      }
      const Addr addr = read(u.rn);
      if (!monitor_valid_ || monitor_line_ != line_of(addr)) {
        write(u.rd, 1, now + lat_.alu);  // fail fast
        monitor_valid_ = false;
        ++stats_.stxr_failures;
      } else {
        bool remote = false;
        const Cycle done = mem_.store(id_, addr, read(u.rm), now, remote);
        write(u.rd, 0, done);
        monitor_valid_ = false;
        ++stats_.stores;
      }
      ++pc_;
      break;
    }

    case OpClass::kIsb:
      // Context synchronization: prior branches already resolved
      // (non-speculative issue); pay the pipeline refill.
      ARMBAR_TRACE(tracer_, barrier_issue(id_, ins_pc, code(u.op), now));
      stall(now, now + lat_.pipeline_flush, StallCause::kBarrier);
      ARMBAR_TRACE(tracer_, barrier_complete(id_, ins_pc, code(u.op), now,
                                             now + lat_.pipeline_flush));
      ++stats_.barriers;
      ++pc_;
      break;

    case OpClass::kDmbLd: {
      BlockingBarrier b;
      b.kind = u.op;
      b.watch = -1;
      b.loads_done = loads_done_at_;
      b.issue = now + lat_.barrier_base;
      b.had_stores = false;
      b.block_from = now + 1;
      b.pc = ins_pc;
      barrier_ = b;
      ARMBAR_TRACE(tracer_, barrier_issue(id_, ins_pc, code(u.op), now));
      ++stats_.barriers;
      ++pc_;
      break;
    }

    case OpClass::kBlockingBarrier: {
      BlockingBarrier b;
      b.kind = u.op;
      b.had_stores = !sb_.empty();
      b.watch = sb_.empty() ? -1 : alloc_watch(now);
      b.loads_done = loads_done_at_;
      b.issue = now + 1;
      b.block_from = now + 1;
      b.pc = ins_pc;
      barrier_ = b;
      ARMBAR_TRACE(tracer_, barrier_issue(id_, ins_pc, code(u.op), now));
      ++stats_.barriers;
      ++pc_;
      break;
    }

    case OpClass::kDmbSt: {
      if (store_gate_armed_ && store_gate_watch_ < 0 && store_gate_ready_ <= now)
        store_gate_armed_ = false;  // gate already resolved and elapsed
      if (store_gate_armed_) {
        // A previous DMB st gate is still pending; serialize on it.
        stall(now, store_gate_watch_ >= 0 ? now + 1 : store_gate_ready_,
              StallCause::kStoreGate);
        return;
      }
      store_gate_armed_ = true;
      ARMBAR_TRACE(tracer_, barrier_issue(id_, ins_pc, code(u.op), now));
      ARMBAR_TRACE(tracer_, store_gate_arm(id_, ins_pc, now));
      if (sb_.empty()) {
        store_gate_watch_ = -1;
        store_gate_ready_ = now + lat_.barrier_base;
        ARMBAR_TRACE(tracer_, store_gate_open(id_, store_gate_ready_));
      } else {
        store_gate_watch_ = alloc_watch(now);
        store_gate_ready_ = 0;
      }
      ++stats_.barriers;
      ++pc_;
      break;
    }
  }

  ARMBAR_TRACE(tracer_, instr_issue(id_, ins_pc, code(u.op), now));
  ++stats_.instructions;
}

void Core::step(Cycle now) {
  last_step_ = now;
  // Fast-path guard (ISSUE 7): pumping is a no-op unless drains or a DMB st
  // gate are outstanding. `store_gate_watch_ >= 0` implies the buffer held
  // watched (pre-barrier, non-speculative) entries; once the last of them
  // retires the same pump resolves the gate, so an empty buffer with no
  // watch means there is nothing to do — the guard is exact, and skips the
  // call entirely for the millions of steps with an empty buffer.
  if (!sb_.empty() || store_gate_watch_ >= 0) pump_store_buffer(now);
  if (!branches_.empty()) resolve_branches(now);

  auto finish = [&](Cycle candidate) {
    Cycle na = candidate;
    na = cyc_min(na, earliest_sb_event(now));
    if (!branches_.empty()) na = cyc_min(na, branches_.front().resolve_at);
    // Progress guarantee: never schedule in the past/present.
    next_attention_ = cyc_max(na, now + 1);
  };

  // A halted core only drains: every transition its buffer can make —
  // a drain completing, a delayed drain becoming startable, an MSHR
  // freeing (itself a drain completion) — happens at a cycle that
  // earliest_sb_event already reports, and the pump above starts anything
  // startable *now*. So the wake comes purely from the SB event horizon
  // instead of a step per cycle; once the buffer empties it is kNeverCycle,
  // which is exactly the idle() <=> never-scheduled invariant.
  if (halted_) {
    finish(kNeverCycle);
    return;
  }

  if (parked_) {
    if (now >= park_wake_) {
      parked_ = false;
    } else {
      stats_.stall_cycles[static_cast<int>(StallCause::kParked)] +=
          park_wake_ - now;
      ARMBAR_TRACE(tracer_,
                   stall(id_, pc_, code(StallCause::kParked), now, park_wake_));
      finish(park_wake_);
      return;
    }
  }

  if (stall_until_ > now) {
    finish(stall_until_);
    return;
  }

  if (barrier_) {
    if (!check_blocking_barrier(now)) {
      // Still waiting on watched store drains. Every milestone of that wait
      // is an SB event (drain_done / value_ready / drain_at) or a branch
      // resolve, both of which finish() folds in — and the steps this
      // skips were exact no-ops (the pump touches memory only when a drain
      // starts, which can only happen at one of those cycles). On the
      // server preset a DMB full behind a contended SWP used to burn a
      // step per cycle for the full c2c round trip.
      finish(kNeverCycle);
      return;
    }
    if (stall_until_ > now) {
      finish(stall_until_);
      return;
    }
  }

  // Issue and store-buffer pumping are deliberately NOT wrapped in their
  // own profiler scopes: at one instruction per call, two clock reads cost
  // more than the interpreter work they would measure (the ISSUE 6 budget
  // experiment showed the pair of per-call timers alone eating ~half the
  // hot path). Their time reports under sim.schedule; only coarse-grained
  // phases (run, schedule, verify) and the genuinely slow coherence miss
  // path keep dedicated scopes.
  issue(now);

  if (halted_) {
    finish(kNeverCycle);
  } else if (parked_) {
    finish(park_wake_);
  } else if (stall_until_ > now) {
    finish(stall_until_);
  } else {
    finish(now + 1);
  }
}

void Core::on_invalidate(Addr line, Cycle at) {
  event_pending_ = true;
  if (monitor_valid_ && monitor_line_ == line) monitor_valid_ = false;
  if (parked_) {
    const Cycle wake = cyc_max(at, last_step_ + 1);
    if (wake < park_wake_) {
      park_wake_ = wake;
      next_attention_ = cyc_min(next_attention_, wake);
    }
  }
}

}  // namespace armbar::sim
