#include "sim/program.hpp"

#include <sstream>

namespace armbar::sim {

std::string Program::disassemble() const {
  std::ostringstream os;
  os << "; program: " << name << "\n";
  for (std::uint32_t i = 0; i < code.size(); ++i)
    os << i << ":\t" << to_string(code[i]) << "\n";
  return os.str();
}

std::string Program::serialize() const {
  std::ostringstream os;
  os << ".name " << name << "\n";
  for (const Instr& ins : code) {
    os << op_token(ins.op) << " " << static_cast<int>(ins.rd) << " "
       << static_cast<int>(ins.rn) << " " << static_cast<int>(ins.rm) << " "
       << ins.imm << " " << ins.target << "\n";
  }
  return os.str();
}

bool parse_program(const std::string& text, Program* out, std::string* err) {
  auto fail = [&](const std::string& why, const std::string& line) {
    if (err) *err = why + ": '" + line + "'";
    return false;
  };
  Program p;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line.rfind(".name ", 0) == 0) {
      p.name = line.substr(6);
      continue;
    }
    std::istringstream ls(line);
    std::string tok;
    Instr ins;
    long long rd = 0, rn = 0, rm = 0;
    if (!(ls >> tok >> rd >> rn >> rm >> ins.imm >> ins.target))
      return fail("malformed instruction line", line);
    if (!op_from_token(tok, &ins.op)) return fail("unknown opcode", line);
    if (rd < 0 || rd >= kNumRegs || rn < 0 || rn >= kNumRegs || rm < 0 ||
        rm >= kNumRegs)
      return fail("register out of range", line);
    ins.rd = static_cast<Reg>(rd);
    ins.rn = static_cast<Reg>(rn);
    ins.rm = static_cast<Reg>(rm);
    std::string rest;
    if (ls >> rest) return fail("trailing tokens", line);
    p.code.push_back(ins);
  }
  for (std::uint32_t i = 0; i < p.code.size(); ++i)
    if (is_branch(p.code[i].op) && p.code[i].target > p.code.size())
      return fail("branch target out of range", std::to_string(i));
  *out = std::move(p);
  return true;
}

Program Asm::take(std::string name) {
  for (const auto& [idx, label] : fixups_) {
    auto it = labels_.find(label);
    ARMBAR_CHECK_MSG(it != labels_.end(), "unresolved label");
    code_[idx].target = it->second;
  }
  Program p;
  p.name = std::move(name);
  p.code = std::move(code_);
  code_.clear();
  labels_.clear();
  fixups_.clear();
  return p;
}

}  // namespace armbar::sim
