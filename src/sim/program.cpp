#include "sim/program.hpp"

#include <sstream>

namespace armbar::sim {

std::string Program::disassemble() const {
  std::ostringstream os;
  os << "; program: " << name << "\n";
  for (std::uint32_t i = 0; i < code.size(); ++i)
    os << i << ":\t" << to_string(code[i]) << "\n";
  return os.str();
}

Program Asm::take(std::string name) {
  for (const auto& [idx, label] : fixups_) {
    auto it = labels_.find(label);
    ARMBAR_CHECK_MSG(it != labels_.end(), "unresolved label");
    code_[idx].target = it->second;
  }
  Program p;
  p.name = std::move(name);
  p.code = std::move(code_);
  code_.clear();
  labels_.clear();
  fixups_.clear();
  return p;
}

}  // namespace armbar::sim
