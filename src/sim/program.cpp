#include "sim/program.hpp"

#include <sstream>

namespace armbar::sim {

std::string Program::disassemble() const {
  std::ostringstream os;
  os << "; program: " << name << "\n";
  for (std::uint32_t i = 0; i < code.size(); ++i)
    os << i << ":\t" << to_string(code[i]) << "\n";
  return os.str();
}

std::string Program::serialize() const {
  std::ostringstream os;
  os << ".name " << name << "\n";
  for (const Instr& ins : code) {
    os << op_token(ins.op) << " " << static_cast<int>(ins.rd) << " "
       << static_cast<int>(ins.rn) << " " << static_cast<int>(ins.rm) << " "
       << ins.imm << " " << ins.target << "\n";
  }
  return os.str();
}

bool parse_program(const std::string& text, Program* out, std::string* err) {
  auto fail = [&](const std::string& why, const std::string& line) {
    if (err) *err = why + ": '" + line + "'";
    return false;
  };
  Program p;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line.rfind(".name ", 0) == 0) {
      p.name = line.substr(6);
      continue;
    }
    std::istringstream ls(line);
    std::string tok;
    Instr ins;
    long long rd = 0, rn = 0, rm = 0;
    if (!(ls >> tok >> rd >> rn >> rm >> ins.imm >> ins.target))
      return fail("malformed instruction line", line);
    if (!op_from_token(tok, &ins.op)) return fail("unknown opcode", line);
    if (rd < 0 || rd >= kNumRegs || rn < 0 || rn >= kNumRegs || rm < 0 ||
        rm >= kNumRegs)
      return fail("register out of range", line);
    ins.rd = static_cast<Reg>(rd);
    ins.rn = static_cast<Reg>(rn);
    ins.rm = static_cast<Reg>(rm);
    std::string rest;
    if (ls >> rest) return fail("trailing tokens", line);
    p.code.push_back(ins);
  }
  for (std::uint32_t i = 0; i < p.code.size(); ++i)
    if (is_branch(p.code[i].op) && p.code[i].target > p.code.size())
      return fail("branch target out of range", std::to_string(i));
  *out = std::move(p);
  return true;
}

MicroOp decode_instr(const Instr& ins) {
  MicroOp u;
  u.op = ins.op;
  u.cls = op_class(ins.op);
  u.rd = ins.rd;
  u.rn = ins.rn;
  u.rm = ins.rm;
  u.imm = ins.imm;
  u.target = ins.target;

  // Issue-gating source registers, mirroring the per-op operand needs the
  // interpreter used to re-derive every cycle. Stores deliberately gate only
  // on the address register: the value may still be pending (the store
  // buffer tracks its value_ready).
  switch (ins.op) {
    case Op::kMov:
    case Op::kAddImm: case Op::kSubImm: case Op::kAndImm: case Op::kOrrImm:
    case Op::kEorImm: case Op::kLslImm: case Op::kLsrImm: case Op::kCmpImm:
    case Op::kLdr: case Op::kLdar: case Op::kLdapr: case Op::kLdxr:
    case Op::kStr: case Op::kStlr:
      u.src1 = ins.rn;
      break;
    case Op::kAdd: case Op::kSub: case Op::kAnd: case Op::kOrr:
    case Op::kEor: case Op::kLsl: case Op::kLsr: case Op::kMul:
    case Op::kCmp:
    case Op::kLdrIdx: case Op::kStrIdx:
    case Op::kStxr: case Op::kSwp:
      u.src1 = ins.rn;
      u.src2 = ins.rm;
      break;
    default:
      break;  // no operand gates issue (XZR is always ready)
  }

  if (is_barrier(ins.op) || ins.op == Op::kStxr || ins.op == Op::kLdar ||
      ins.op == Op::kLdapr || ins.op == Op::kLdxr || ins.op == Op::kStlr ||
      ins.op == Op::kWfe || ins.op == Op::kSwp || ins.op == Op::kHalt)
    u.flags |= kUopNonspec;
  if (ins.op == Op::kLdrIdx || ins.op == Op::kStrIdx) u.flags |= kUopIndexed;
  if (ins.op == Op::kStlr) u.flags |= kUopRelease;
  if (ins.op == Op::kLdar) u.flags |= kUopAcqSc;
  if (ins.op == Op::kLdapr) u.flags |= kUopAcqPc;
  if (ins.op == Op::kLdxr) u.flags |= kUopExcl;
  return u;
}

DecodedProgram::DecodedProgram(Program src) : src_(std::move(src)) {
  ARMBAR_CHECK_MSG(!src_.code.empty(), "cannot decode an empty program");
  uops_.reserve(src_.code.size());
  for (const Instr& ins : src_.code) uops_.push_back(decode_instr(ins));
}

ProgramHandle decode_program(Program src) {
  return std::make_shared<const DecodedProgram>(std::move(src));
}

Program Asm::take(std::string name) {
  for (const auto& [idx, label] : fixups_) {
    auto it = labels_.find(label);
    ARMBAR_CHECK_MSG(it != labels_.end(), "unresolved label");
    code_[idx].target = it->second;
  }
  Program p;
  p.name = std::move(name);
  p.code = std::move(code_);
  code_.clear();
  labels_.clear();
  fixups_.clear();
  return p;
}

}  // namespace armbar::sim
