#include "sim/mem.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "prof/prof.hpp"
#include "sim/fault/fault.hpp"

namespace armbar::sim {

MemorySystem::MemorySystem(const PlatformSpec& spec, std::size_t mem_bytes)
    : spec_(spec),
      words_(mem_bytes / kWordBytes, 0),
      lines_(mem_bytes / kCacheLineBytes),
      home_((mem_bytes + kHomeGranule - 1) / kHomeGranule, 0) {
  ARMBAR_CHECK(spec.total_cores() <= kMaxCores);
  ARMBAR_CHECK(mem_bytes % kCacheLineBytes == 0);
}

void MemorySystem::set_home(Addr base, std::size_t bytes, NodeId node) {
  ARMBAR_CHECK(node < spec_.nodes);
  const std::size_t first = base / kHomeGranule;
  const std::size_t last = (base + bytes + kHomeGranule - 1) / kHomeGranule;
  for (std::size_t g = first; g < last && g < home_.size(); ++g) home_[g] = node;
}

NodeId MemorySystem::home_of(Addr a) const {
  const std::size_t g = a / kHomeGranule;
  return g < home_.size() ? home_[g] : 0;
}

std::size_t MemorySystem::word_index(Addr a) const {
  ARMBAR_CHECK_MSG(a % kWordBytes == 0, "unaligned 8-byte access");
  const std::size_t idx = a / kWordBytes;
  ARMBAR_CHECK_MSG(idx < words_.size(), "address out of simulated memory");
  return idx;
}

std::size_t MemorySystem::line_index(Addr a) const {
  const std::size_t idx = a / kCacheLineBytes;
  ARMBAR_CHECK_MSG(idx < lines_.size(), "address out of simulated memory");
  return idx;
}

void MemorySystem::apply_pending(LineState& ls) {
  if (!ls.pending) return;
  words_[word_index(ls.pending_word)] = ls.pending_value;
  ls.owner = ls.pending_owner;
  ls.sharers = ls.pending_keep_sharers;
  ls.pending = false;
}

std::uint64_t MemorySystem::peek(Addr a) const {
  const LineState& ls = lines_[line_index(a)];
  if (ls.pending && word_of(ls.pending_word) == word_of(a)) return ls.pending_value;
  return words_[word_index(a)];
}

void MemorySystem::poke(Addr a, std::uint64_t v) {
  LineState& ls = line_mut(a);
  if (ls.pending && word_of(ls.pending_word) == word_of(a)) ls.pending = false;
  words_[word_index(a)] = v;
}

bool MemorySystem::load_hits(CoreId core, Addr a) const {
  const LineState& ls = lines_[line_index(a)];
  return ls.owner == static_cast<std::int16_t>(core) || (ls.sharers >> core) & 1;
}

bool MemorySystem::owns(CoreId core, Addr a) const {
  return lines_[line_index(a)].owner == static_cast<std::int16_t>(core);
}

bool MemorySystem::any_remote_holder(CoreId core, Addr a) const {
  const LineState& ls = lines_[line_index(a)];
  if (ls.owner != kNoOwner && ls.owner != static_cast<std::int16_t>(core)) return true;
  return (ls.sharers & ~(1ULL << core)) != 0;
}

void MemorySystem::notify_holders(const LineState& ls, Addr line, CoreId except,
                                  Cycle at) {
  if (!inv_hook_) return;
  const auto deliver = [&] {
    std::uint64_t mask = ls.sharers & ~(1ULL << except);
    while (mask) {
      const auto victim = static_cast<CoreId>(__builtin_ctzll(mask));
      mask &= mask - 1;
      inv_hook_(victim, line, at);
    }
    if (ls.owner != kNoOwner && ls.owner != static_cast<std::int16_t>(except))
      inv_hook_(static_cast<CoreId>(ls.owner), line, at);
  };
  deliver();
  // Fault hook: real fabrics may echo a snoop; receivers must treat
  // invalidation delivery as idempotent (Core::on_invalidate is).
  if (ARMBAR_FAULT_HIT(fault_, duplicate_invalidate(except))) deliver();
}

Cycle MemorySystem::load(CoreId core, Addr a, Cycle now, std::uint64_t& value_out,
                         bool exclusive) {
  const Addr line = line_of(a);
  LineState& ls = line_mut(line);

  if (ls.pending && ls.pending_at <= now) apply_pending(ls);

  // Clean-hit fast path (ISSUE 7): nothing in flight on the line and we hold
  // a valid copy. Owner hits never consult the fault engine (evictions only
  // target clean shared copies); a sharer hit would draw the evict RNG, so it
  // only takes this path when no engine is installed — fault runs keep the
  // exact draw sequence of the full path below. Bypasses the kSimCoherence
  // scope: a hit's work is two loads and an add, smaller than the clock read.
  if (!ls.pending) {
    const bool fast_owner = ls.owner == static_cast<std::int16_t>(core);
    if (fast_owner ||
        (fault_ == nullptr && ((ls.sharers >> core) & 1) != 0)) {
      ++stats_.hits;
      value_out = words_[word_index(a)];
      return now + spec_.lat.cache_hit;
    }
  }

  ARMBAR_PROF_SCOPE(kSimCoherence);

  // Hit — possibly a *stale* hit while another core's store is still in
  // flight (the weakly-ordered window; invalidation lands at pending_at).
  // Exclusive loads may not use the stale window.
  const bool may_hit = !(exclusive && ls.pending);
  const bool owner_hit = ls.owner == static_cast<std::int16_t>(core);
  bool sharer_hit = (ls.sharers >> core) & 1;
  // Fault hook: force-evict a clean shared copy (a capacity eviction the
  // infinite-cache model otherwise never has); the access refetches below.
  // Owned (M/E) lines are never evicted — that would lose dirty data.
  if (may_hit && sharer_hit && !owner_hit &&
      ARMBAR_FAULT_HIT(fault_, evict(core))) {
    ls.sharers &= ~(1ULL << core);
    // An in-flight store must not resurrect the evicted copy when it lands.
    ls.pending_keep_sharers &= ~(1ULL << core);
    sharer_hit = false;
  }
  if (may_hit && (owner_hit || sharer_hit)) {
    ++stats_.hits;
    value_out = words_[word_index(a)];
    return now + spec_.lat.cache_hit;
  }

  // Miss: a GetS transfer, serialized after any in-flight work on the line.
  const Cycle start = std::max(now, ls.busy_until);
  if (ls.pending) {
    ARMBAR_CHECK(ls.pending_at <= start);
    apply_pending(ls);
  }

  const NodeId me = spec_.node_of(core);
  std::uint32_t latency;
  trace::CohKind coh_kind;
  trace::LineCode from_code;
  if (ls.owner != kNoOwner) {
    const NodeId on = spec_.node_of(static_cast<CoreId>(ls.owner));
    const bool cross = on != me;
    latency = cross ? spec_.lat.c2c_remote : spec_.lat.c2c_local;
    cross ? ++stats_.gets_remote : ++stats_.gets_local;
    coh_kind = cross ? trace::CohKind::kGetSRemote : trace::CohKind::kGetSLocal;
    from_code = trace::LineCode::kOwned;
    // Owner downgrades M/E -> S; both now share.
    ls.sharers |= (1ULL << static_cast<CoreId>(ls.owner));
    ls.owner = kNoOwner;
  } else if (ls.sharers != 0) {
    // Clean copies exist: transfer from the nearest sharer
    // (approximated: local if any sharer is on our node).
    const bool local_sharer = [&] {
      std::uint64_t m = ls.sharers;
      while (m) {
        const auto c = static_cast<CoreId>(__builtin_ctzll(m));
        m &= m - 1;
        if (spec_.node_of(c) == me) return true;
      }
      return false;
    }();
    latency = local_sharer ? spec_.lat.c2c_local : spec_.lat.c2c_remote;
    local_sharer ? ++stats_.gets_local : ++stats_.gets_remote;
    coh_kind =
        local_sharer ? trace::CohKind::kGetSLocal : trace::CohKind::kGetSRemote;
    from_code = trace::LineCode::kShared;
  } else {
    const bool local_home = home_of(a) == me;
    latency = local_home ? spec_.lat.mem_local : spec_.lat.mem_remote;
    ++stats_.mem_fills;
    coh_kind = trace::CohKind::kMemFill;
    from_code = trace::LineCode::kInvalid;
  }
  ls.sharers |= (1ULL << core);
  // Fault hook: the transfer's response may arrive late. The occupancy
  // window below stays latency-based — the port frees on schedule, only
  // this requester waits longer.
  const Cycle done = start + latency + ARMBAR_FAULT_CYCLES(fault_, coh_delay(core));
  ARMBAR_TRACE(tracer_, coh_transfer(core, line, coh_kind, start, done));
  ARMBAR_TRACE(tracer_, line_transition(core, line, from_code,
                                        trace::LineCode::kShared, done));
  // Read transfers pipeline: the line's service port frees after the
  // occupancy window even though this requester waits the full latency.
  ls.busy_until = start + std::min<Cycle>(latency, spec_.lat.read_occupancy);
  value_out = words_[word_index(a)];
  return done;
}

Cycle MemorySystem::exchange(CoreId core, Addr a, std::uint64_t v, Cycle now,
                             std::uint64_t& old_out, bool& remote_snoop_out) {
  // The pre-store value as of this access's serialization point: any
  // pending store on the line is ordered before us, so its value is what
  // we exchange against.
  old_out = peek(a);
  return store(core, a, v, now, remote_snoop_out);
}

Cycle MemorySystem::store(CoreId core, Addr a, std::uint64_t v, Cycle now,
                          bool& remote_snoop_out) {
  const Addr line = line_of(a);
  LineState& ls = line_mut(line);
  const auto self = static_cast<std::int16_t>(core);
  remote_snoop_out = false;

  if (ls.pending && ls.pending_at <= now) apply_pending(ls);

  // Owned-drain fast path (ISSUE 7), hoisted above the kSimCoherence scope:
  // already own the line in M/E and nothing in flight — cheap drain, visible
  // after owned_drain. No fault or trace hooks fire on this branch, so
  // skipping the scope changes only host profiling, never simulated state.
  if (ls.owner == self && !ls.pending) {
    ++stats_.hits;
    const Cycle done = now + spec_.lat.owned_drain;
    ls.pending = true;
    ls.pending_word = word_of(a);
    ls.pending_value = v;
    ls.pending_at = done;
    ls.pending_owner = self;
    ls.pending_keep_sharers = ls.sharers;
    ls.busy_until = std::max(ls.busy_until, done);
    return done;
  }

  ARMBAR_PROF_SCOPE(kSimCoherence);
  const Cycle start = std::max(now, ls.busy_until);
  if (ls.pending) {
    ARMBAR_CHECK(ls.pending_at <= start);
    apply_pending(ls);
  }

  const NodeId me = spec_.node_of(core);
  std::uint32_t latency;
  bool cross = false;
  bool transfer = false;
  trace::CohKind coh_kind = trace::CohKind::kMemFill;
  trace::LineCode from_code = trace::LineCode::kInvalid;
  if (ls.owner == self) {
    // Chained drain behind our own in-flight store on the same line.
    latency = spec_.lat.owned_drain;
    ++stats_.hits;
  } else {
    // Does the transfer involve any holder outside our node?
    {
      std::uint64_t m = ls.sharers & ~(1ULL << core);
      while (m) {
        const auto c = static_cast<CoreId>(__builtin_ctzll(m));
        m &= m - 1;
        if (spec_.node_of(c) != me) cross = true;
      }
      if (ls.owner != kNoOwner && spec_.node_of(static_cast<CoreId>(ls.owner)) != me)
        cross = true;
    }
    const bool other_holder =
        ls.owner != kNoOwner || (ls.sharers & ~(1ULL << core)) != 0;
    if (other_holder) {
      latency = cross ? spec_.lat.inv_remote : spec_.lat.inv_local;
      cross ? ++stats_.getm_remote : ++stats_.getm_local;
      if ((ls.sharers >> core) & 1) ++stats_.upgrades;
      coh_kind =
          cross ? trace::CohKind::kGetMRemote : trace::CohKind::kGetMLocal;
      from_code = ls.owner != kNoOwner ? trace::LineCode::kOwned
                                       : trace::LineCode::kShared;
      transfer = true;
    } else if ((ls.sharers >> core) & 1) {
      // Sole sharer upgrading S -> M.
      latency = spec_.lat.owned_drain;
      ++stats_.upgrades;
      coh_kind = trace::CohKind::kUpgrade;
      from_code = trace::LineCode::kShared;
      transfer = true;
    } else {
      const bool local_home = home_of(a) == me;
      latency = local_home ? spec_.lat.mem_local : spec_.lat.mem_remote;
      ++stats_.mem_fills;
      coh_kind = trace::CohKind::kMemFill;
      from_code = trace::LineCode::kInvalid;
      transfer = true;
    }
  }

  Cycle done = start + latency;
  // Fault hook: only real transfers can be delayed; chained owned drains
  // never leave the core's cache.
  if (transfer) done += ARMBAR_FAULT_CYCLES(fault_, coh_delay(core));
  if (transfer) {
    ARMBAR_TRACE(tracer_, coh_transfer(core, line, coh_kind, start, done));
    ARMBAR_TRACE(tracer_, line_transition(core, line, from_code,
                                          trace::LineCode::kOwned, done));
  }
  // Victims learn about the invalidation now but it lands at `done`;
  // until then their stale S copies keep satisfying loads.
  notify_holders(ls, line, core, done);
  ls.pending = true;
  ls.pending_word = word_of(a);
  ls.pending_value = v;
  ls.pending_at = done;
  ls.pending_owner = self;
  ls.pending_keep_sharers = 0;
  ls.busy_until = done;
  remote_snoop_out = cross;
  return done;
}

}  // namespace armbar::sim
