// One simulated ARMv8-lite core.
//
// Pipeline model (paper §2.3 "one typical implementation"):
//  * in-order issue, one instruction per cycle, ALU latency 1;
//  * loads are non-blocking: they enter a load queue and deliver into their
//    destination register at a future completion cycle; consumers stall,
//    independent instructions flow past (this is what makes bogus
//    data/address dependencies nearly free — Observation 6);
//  * stores retire into a bounded, NON-FIFO store buffer and drain in the
//    background through the coherence fabric (up to `sb_mshrs` concurrent
//    drains). A store's drain cannot start before its value's producer has
//    finished (data dependency) or before the branches it speculated past
//    have resolved (control dependency);
//  * conditional branches with unresolved conditions are predicted
//    (backward taken / forward not-taken); wrong-path work is squashed with
//    a register-file snapshot and a flush penalty;
//  * barriers follow the ACE model: when a barrier reaches issue it blocks
//    the instruction classes its type demands, and — if it needs the bus —
//    cannot complete before prior snoop activity finished plus a barrier-
//    transaction round trip (memory barrier txn to the bi-section boundary,
//    escalated to the domain boundary when cross-node snooping was involved;
//    synchronization barrier txn always to the domain boundary).
//
// Barrier semantics implemented (calibrated to the paper's observations):
//   DMB full : blocks all issue until prior loads complete and prior stores
//              drain; pays a memory-barrier txn only if stores were pending
//              (empty-queue barriers terminate internally — Fig 2).
//              Blocking *all* issue models the issue-queue/ROB saturation
//              the paper infers in Observation 2 / Fig 4.
//   DMB st   : does not block the pipe; arms a "store gate" — later stores
//              cannot issue until prior stores drained + memory txn.
//   DMB ld   : blocks all issue until prior loads complete; no bus txn.
//   DSB *    : blocks all issue until loads+stores done, then always pays a
//              synchronization-barrier txn to the domain boundary (Obs 5).
//   ISB      : waits for pending branches to resolve, then flushes the pipe.
//   LDAR     : a load that also gates later *memory* ops until it completes.
//   STLR     : a store whose drain waits for all older stores to drain and
//              all prior loads to complete, then pays an extra global-
//              visibility acknowledgement (stlr_extra). Later stores may
//              still drain around it (one-way barrier), but successive
//              STLRs chain, which is what makes its cost high and
//              occupancy-dependent (Observation 3).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "sim/isa.hpp"
#include "sim/mem.hpp"
#include "sim/program.hpp"
#include "trace/trace.hpp"

namespace armbar::sim {

namespace fault {
class FaultEngine;
}  // namespace fault

/// Why a core did not issue this cycle (for the stall breakdown).
enum class StallCause : std::uint8_t {
  kNone = 0,
  kOperand,      ///< waiting for a source register
  kBarrier,      ///< blocking barrier in progress
  kStoreGate,    ///< DMB st gate blocks a store
  kMemGate,      ///< LDAR gate blocks a memory op
  kSbFull,       ///< store buffer full
  kLqFull,       ///< load queue full
  kSpec,         ///< speculation depth exhausted / must be non-speculative
  kSquash,       ///< refilling after a branch mispredict
  kParked,       ///< in WFE
  kCount,
};

const char* to_string(StallCause c);
/// All cause names in code order — installed on tracers so metric keys and
/// Chrome-trace lanes carry names instead of codes.
std::vector<std::string> stall_cause_names();

struct CoreStats {
  std::uint64_t instructions = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t load_misses = 0;
  std::uint64_t barriers = 0;
  std::uint64_t squashes = 0;
  std::uint64_t wfe_parks = 0;
  std::uint64_t stxr_failures = 0;
  std::uint64_t sb_retired = 0;  ///< store-buffer drains retired (watchdog)
  std::uint64_t stall_cycles[static_cast<int>(StallCause::kCount)] = {};
  Cycle halted_at = 0;

  std::uint64_t total_stalls() const {
    std::uint64_t s = 0;
    for (auto v : stall_cycles) s += v;
    return s;
  }

  /// Zero every counter (parity with MemStats::reset_stats) so benches can
  /// warm up, reset, then measure a clean window.
  void reset() { *this = CoreStats{}; }
};

class Core {
 public:
  Core(CoreId id, const PlatformSpec& spec, MemorySystem& mem);

  /// Bind a predecoded program. The core shares ownership, so the handle
  /// may be dropped (or reused on other cores) immediately.
  void load_program(ProgramHandle prog);

  void set_reg(Reg r, std::uint64_t v);
  std::uint64_t reg(Reg r) const { return r == XZR ? 0 : regs_[r]; }

  void set_tso(bool tso) { tso_ = tso; }

  /// Zero the per-core counters without touching architectural state.
  void reset_stats() { stats_.reset(); }

  CoreId id() const { return id_; }
  bool halted() const { return halted_; }

  const CoreStats& stats() const { return stats_; }
  std::uint32_t pc() const { return pc_; }

 private:
  // Tracer attachment goes through Machine::set_tracer() — the single
  // attach point — so a core can never trace with stale stall-cause names
  // or diverge from the rest of the machine. Fault engines follow the same
  // pattern (Machine::run is the only installer), and MachineVerifier reads
  // the private order state to check invariants.
  friend class Machine;
  friend class MachineVerifier;
  void set_tracer(trace::Tracer* t) { tracer_ = t; }
  void set_fault_engine(fault::FaultEngine* f) { fault_ = f; }

  // ---- the stepping interface (ISSUE 7) ----
  // Machine's scheduler is the only driver of simulated time. Everything it
  // calls per cycle lives here, and nothing else about a core's execution
  // is reachable from outside: the contract is exactly step / attention /
  // idle / invalidate.
  /// Advance the core at cycle `now`. Issues at most one instruction and
  /// pumps the store buffer. Updates next_attention().
  void step(Cycle now);
  /// Earliest cycle at which this core needs to be stepped again
  /// (kNeverCycle exactly when idle()).
  Cycle next_attention() const { return next_attention_; }
  /// Halted with a drained store buffer: will never need attention again.
  bool idle() const { return halted_ && sb_.empty(); }
  /// Coherence callback: this core's copy of `line` was invalidated,
  /// effective at cycle `at`. May pull next_attention() earlier (WFE wake).
  void on_invalidate(Addr line, Cycle at);

  // ---- store buffer ----
  struct SbEntry {
    std::uint64_t seq = 0;
    Addr addr = 0;
    std::uint64_t value = 0;
    Cycle enqueued_at = 0;     ///< issue cycle (trace: buffer residency)
    Cycle value_ready = 0;     ///< data-dependency: value usable from here
    Cycle drain_at = 0;        ///< earliest drain request (sb_drain_delay)
    std::uint64_t gate_branch = 0;  ///< control-dependency: youngest branch id
    bool release = false;      ///< STLR
    Cycle release_loads = 0;   ///< STLR: prior loads must be done by drain
    bool draining = false;
    Cycle drain_done = 0;
    bool remote_snoop = false;
  };

  // A barrier's view of the store buffer: "all entries with seq < epoch
  // must drain"; tracks the last completion among them and whether any
  // snoop crossed a node boundary.
  struct SbWatch {
    std::uint64_t epoch = 0;
    std::uint32_t pending = 0;
    Cycle max_done = 0;
    bool remote = false;
    bool active = false;
  };

  struct PendingBranch {
    std::uint64_t idx;          ///< monotonically increasing branch id
    Cycle resolve_at;
    std::uint32_t actual_pc;    ///< correct next pc (evaluated at issue)
    std::uint32_t predicted_pc;
    // register-file snapshot for squash
    std::uint64_t regs[kNumRegs];
    Cycle ready[kNumRegs];
    std::int64_t flags;
    Cycle flags_ready;
    Cycle loads_done;
    std::uint64_t sb_seq;       ///< entries with seq >= this are speculative
  };

  struct BlockingBarrier {
    Op kind;
    int watch = -1;             ///< index into watches_, or -1
    Cycle loads_done = 0;       ///< prior-load completion snapshot
    Cycle issue = 0;
    bool had_stores = false;
    Cycle block_from = 0;       ///< first cycle the pipe is blocked
    std::uint32_t pc = 0;       ///< barrier's own pc (trace span anchor)
  };

  // ---- helpers ----
  void pump_store_buffer(Cycle now);
  void resolve_branches(Cycle now);
  bool check_blocking_barrier(Cycle now);
  void issue(Cycle now);
  void stall(Cycle now, Cycle until, StallCause cause);
  std::uint64_t read(Reg r) const { return r == XZR ? 0 : regs_[r]; }
  void write(Reg r, std::uint64_t v, Cycle ready_at);
  Cycle reg_ready(Reg r) const { return r == XZR ? 0 : ready_[r]; }
  int alloc_watch(Cycle now);
  void retire_drain(const SbEntry& e);
  Cycle do_load(const MicroOp& u, Cycle now, Addr addr);
  bool sb_has_older_same_word(std::uint64_t seq, Addr word) const;
  Cycle earliest_sb_event(Cycle now) const;
  void squash(const PendingBranch& br, Cycle now);
  std::uint64_t youngest_branch_id() const {
    return branches_.empty() ? 0 : branches_.back().idx;
  }

  // Members are grouped hot-first: the scalars below `pc_` are the state
  // every step/issue touches, packed together so one or two cache lines
  // cover a stepping core's working set (the SoA half of the ISSUE 7 fast
  // path; the machine-level half is AttentionQueue's dense cycle array).

  // ---- identity / wiring ----
  const CoreId id_;
  const PlatformSpec& spec_;
  const Latencies& lat_;
  MemorySystem& mem_;
  ProgramHandle prog_;                  ///< shared ownership of the program
  const MicroOp* uops_ = nullptr;       ///< = prog_->uops(), hot-path cache
  std::uint32_t prog_size_ = 0;

  // ---- per-cycle hot scalars ----
  std::uint32_t pc_ = 0;
  bool halted_ = false;
  bool parked_ = false;
  bool store_gate_armed_ = false;
  bool tso_ = false;
  StallCause stall_cause_ = StallCause::kNone;
  Cycle next_attention_ = 0;
  Cycle stall_until_ = 0;
  Cycle last_step_ = 0;
  std::int64_t flags_ = 0;      ///< last CMP result (signed rn - rm)
  Cycle flags_ready_ = 0;
  Cycle loads_done_at_ = 0;     ///< max completion over all issued loads
  Cycle mem_gate_ = 0;          ///< LDAR: memory ops blocked before this
  /// LDAPR (RCpc acquire): subsequent LOADS blocked before this; stores may
  /// enter the buffer but their drain is floored at the acquire completion.
  Cycle load_gate_ = 0;
  Cycle drain_floor_ = 0;

  // ---- architectural registers ----
  std::uint64_t regs_[kNumRegs] = {};
  Cycle ready_[kNumRegs] = {};

  // ---- memory-order state ----
  std::vector<SbEntry> sb_;
  std::uint64_t sb_next_seq_ = 1;
  std::uint64_t sb_resolved_branch_ = ~0ULL;  ///< see resolve_branches()
  std::vector<SbWatch> watches_;
  std::vector<Cycle> load_queue_;   ///< completion cycles of in-flight loads
  std::optional<BlockingBarrier> barrier_;
  int store_gate_watch_ = -1;       ///< DMB st gate (index into watches_)
  Cycle store_gate_ready_ = 0;      ///< resolved gate cycle (0 = none/done)

  // ---- speculation ----
  std::vector<PendingBranch> branches_;
  std::uint64_t next_branch_id_ = 1;
  std::uint64_t committed_branch_ = 0;  ///< all ids <= this are resolved-correct

  // ---- exclusives / events ----
  Addr monitor_line_ = 0;
  bool monitor_valid_ = false;
  bool event_pending_ = false;
  Cycle park_wake_ = 0;

  Cycle tso_last_load_done_ = 0;

  trace::Tracer* tracer_ = nullptr;
  fault::FaultEngine* fault_ = nullptr;
  CoreStats stats_;
};

}  // namespace armbar::sim
