#include "trace/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace armbar::trace {

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_)
    if (k == key) return &v;
  return nullptr;
}

Json& Json::push(Json v) {
  items_.push_back(std::move(v));
  return *this;
}

Json& Json::set(std::string key, Json v) {
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
  return *this;
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  // Integral values print without a fraction so cycle counts and counters
  // survive a dump/parse round trip textually.
  if (std::floor(v) == v && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    out += buf;
  }
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string err;

  bool fail(const std::string& what) {
    if (err.empty())
      err = what + " at offset " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) == lit) {
      pos += lit.size();
      return true;
    }
    return false;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) break;
        char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // BMP-only UTF-8 encode; enough for our ASCII-dominated docs.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            return fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(Json& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    char c = text[pos];
    if (c == 'n') {
      if (!literal("null")) return fail("bad literal");
      out = Json();
      return true;
    }
    if (c == 't') {
      if (!literal("true")) return fail("bad literal");
      out = Json(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return fail("bad literal");
      out = Json(false);
      return true;
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Json(std::move(s));
      return true;
    }
    if (c == '[') {
      ++pos;
      out = Json::array();
      skip_ws();
      if (consume(']')) return true;
      while (true) {
        Json item;
        if (!parse_value(item)) return false;
        out.push(std::move(item));
        if (consume(',')) continue;
        if (consume(']')) return true;
        return fail("expected ',' or ']'");
      }
    }
    if (c == '{') {
      ++pos;
      out = Json::object();
      skip_ws();
      if (consume('}')) return true;
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        if (!consume(':')) return fail("expected ':'");
        Json val;
        if (!parse_value(val)) return false;
        out.set(std::move(key), std::move(val));
        if (consume(',')) continue;
        if (consume('}')) return true;
        return fail("expected ',' or '}'");
      }
    }
    // number
    {
      const char* begin = text.data() + pos;
      char* end = nullptr;
      double v = std::strtod(begin, &end);
      if (end == begin) return fail("expected value");
      pos += static_cast<std::size_t>(end - begin);
      out = Json(v);
      return true;
    }
  }
};

}  // namespace

Json Json::parse(std::string_view text, std::string* err) {
  Parser p{text, 0, {}};
  Json out;
  if (!p.parse_value(out)) {
    if (err) *err = p.err;
    return Json();
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (err) *err = "trailing garbage at offset " + std::to_string(p.pos);
    return Json();
  }
  if (err) err->clear();
  return out;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const std::string pad = pretty ? std::string(static_cast<std::size_t>(indent) * (depth + 1), ' ') : "";
  const std::string closing_pad = pretty ? std::string(static_cast<std::size_t>(indent) * depth, ' ') : "";
  const char* nl = pretty ? "\n" : "";
  const char* colon = pretty ? ": " : ":";
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, num_); break;
    case Type::kString: append_escaped(out, str_); break;
    case Type::kArray: {
      if (items_.empty()) { out += "[]"; break; }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += pad;
        items_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += nl;
      }
      out += closing_pad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (members_.empty()) { out += "{}"; break; }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        append_escaped(out, members_[i].first);
        out += colon;
        members_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += nl;
      }
      out += closing_pad;
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace armbar::trace
