// Minimal JSON document model: parse, build, dump.
//
// Exists so the trace exporters, the bench --json reports, the golden-file
// tests and the schema checker all share one implementation with zero
// external dependencies. Deliberately small: UTF-8 pass-through, numbers as
// double, objects keep key order of insertion (deterministic dumps — the
// golden tests diff exporter output byte-for-byte).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace armbar::trace {

class Json {
 public:
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  Json(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Json(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Json(double n) : type_(Type::kNumber), num_(n) {}  // NOLINT
  Json(int n) : Json(static_cast<double>(n)) {}  // NOLINT
  Json(std::uint64_t n) : Json(static_cast<double>(n)) {}  // NOLINT
  Json(std::int64_t n) : Json(static_cast<double>(n)) {}  // NOLINT
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Json(const char* s) : Json(std::string(s)) {}  // NOLINT

  static Json array() { Json j; j.type_ = Type::kArray; return j; }
  static Json object() { Json j; j.type_ = Type::kObject; return j; }

  /// Parse a complete JSON document. Returns a kNull value and sets *err on
  /// malformed input (a parsed `null` leaves *err empty).
  static Json parse(std::string_view text, std::string* err = nullptr);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool boolean() const { return bool_; }
  double number() const { return num_; }
  const std::string& str() const { return str_; }
  const std::vector<Json>& items() const { return items_; }
  const std::vector<std::pair<std::string, Json>>& members() const { return members_; }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;
  Json* find_mut(std::string_view key) {
    return const_cast<Json*>(std::as_const(*this).find(key));
  }

  /// Array append (value must be kArray).
  Json& push(Json v);
  /// Object insert/overwrite (value must be kObject). Keeps insertion order.
  Json& set(std::string key, Json v);

  std::size_t size() const {
    return type_ == Type::kArray ? items_.size()
         : type_ == Type::kObject ? members_.size() : 0;
  }

  /// Serialize. indent < 0 → compact one-line; otherwise pretty-print with
  /// `indent` spaces per level. Deterministic for a given document.
  std::string dump(int indent = -1) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace armbar::trace
