// Machine-readable bench reports: the compact JSON document every fig*/
// table* bench emits under --json, suitable for trajectory tracking
// (BENCH_*.json) and CI schema checks.
//
// Schema (armbar.bench.report/v2; v1 documents still validate — v2 only
// adds the optional "host_prof" section):
//   {
//     "schema":  "armbar.bench.report/v2",
//     "bench":   "<binary id, e.g. fig3_store_store>",
//     "title":   "<human banner>",
//     "ok":      true,                       // all qualitative checks passed
//     "checks":  [{"claim": "...", "pass": true}, ...],
//     "params":  {"name": "value", ...},     // optional run parameters
//     "metrics": {"name": <number>, ...},    // scalar results (throughputs…)
//     "histograms": {                        // latency distributions
//       "<name>": {"count":N,"sum":S,"min":m,"max":M,
//                   "mean":x,"p50":x,"p95":x,"p99":x}, ...
//     },
//     "quarantine": [                        // abnormally-terminated runs
//       {"name": "<experiment>", "status": "failed",
//        "kind": "timeout|hang|invariant_violation|check_failed|error|...",
//        "reason": "...", "diagnostic": {...},    // diagnostic optional
//        "repro_bundle": "path/to/x.repro.json"}, // optional: replay with
//       ...                                       //   tools/armbar-repro
//     ],
//     "host_prof": { ... },                  // optional (v2): host-side
//                                            //   profile, armbar.host_prof/v1
//                                            //   (see src/prof/export.hpp);
//                                            //   excluded from all digests
//     "opt_report": { ... }                  // optional (v2): barrier-
//   }                                        //   optimization decisions,
//                                            //   armbar.opt.report/v1
//                                            //   (see src/opt/driver.hpp)
#pragma once

#include <string>

#include "trace/json.hpp"
#include "trace/metrics.hpp"

namespace armbar::trace {

inline constexpr const char* kReportSchema = "armbar.bench.report/v2";
/// Prior schema revision; validate_bench_report accepts both (v2 is a
/// strict superset: it only adds the optional "host_prof" section).
inline constexpr const char* kReportSchemaV1 = "armbar.bench.report/v1";

class ReportBuilder {
 public:
  ReportBuilder(std::string bench_id, std::string title);

  void set_ok(bool ok) { ok_ = ok; }
  void add_check(const std::string& claim, bool pass);
  void add_param(const std::string& name, const std::string& value);
  void add_metric(const std::string& name, double value);
  void add_histogram(const std::string& name, const HistogramSummary& s);
  /// Record an abnormally-terminated experiment (timeout, hang, invariant
  /// violation, tripped ARMBAR_CHECK, interrupt, lock-invariant violation).
  /// `diagnostic` may be a null Json when no structured bundle exists;
  /// `repro_bundle` is the path of a self-contained armbar.repro/v1 bundle
  /// replayable with tools/armbar-repro (empty = none). `extra` is an
  /// optional object of additional string parameters merged into the entry
  /// verbatim (reserved keys are skipped) — kind "lock_invariant" entries
  /// must carry "invariant" and "witness" this way (validated). Forces ok
  /// to false.
  void add_quarantine(const std::string& name, const std::string& status,
                      const std::string& kind, const std::string& reason,
                      const Json& diagnostic = Json(),
                      const std::string& repro_bundle = "",
                      const Json& extra = Json());
  /// Pull every histogram (machine-wide merge) and counter out of a
  /// registry. Counters land in metrics as "<name>".
  void add_registry(const MetricsRegistry& reg);
  /// Attach an armbar.host_prof/v1 section (prof::host_prof_json). Host
  /// timing is report-only: it never participates in points digests or
  /// cache keys. A null value removes the section.
  void set_host_prof(Json hp) { host_prof_ = std::move(hp); }
  /// Attach an armbar.opt.report/v1 section (opt::opt_report_json): the
  /// per-program rewrite decisions of the barrier-optimization driver.
  /// Validated for arithmetic consistency (attempted >= accepted +
  /// restored) by validate_bench_report. A null value removes the section.
  void set_opt_report(Json rep) { opt_report_ = std::move(rep); }

  Json build() const;
  std::string str(int indent = 1) const { return build().dump(indent); }
  bool write(const std::string& path) const;

 private:
  std::string bench_id_;
  std::string title_;
  bool ok_ = true;
  Json checks_ = Json::array();
  Json params_ = Json::object();
  Json metrics_ = Json::object();
  Json histograms_ = Json::object();
  Json quarantine_ = Json::array();
  Json host_prof_;
  Json opt_report_;
};

inline constexpr const char* kOptReportSchema = "armbar.opt.report/v1";

/// Validate a parsed document against armbar.bench.report/v2 (or v1). On
/// failure returns false and describes the first violation in *err.
/// Beyond the structural checks, rejects reports where host profiling
/// contaminated digest material: a "prof_digest_leak" param set to "true"
/// (the engine emits it when a cached point value carried profiling
/// fields) fails validation outright.
bool validate_bench_report(const Json& doc, std::string* err = nullptr);

}  // namespace armbar::trace
