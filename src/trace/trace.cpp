#include "trace/trace.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "prof/prof.hpp"

namespace armbar::trace {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kInstrIssue: return "instr.issue";
    case EventKind::kStall: return "stall";
    case EventKind::kSquash: return "squash";
    case EventKind::kSbEnqueue: return "sb.enqueue";
    case EventKind::kSbDrainStart: return "sb.drain";
    case EventKind::kSbDrainRetire: return "sb.retire";
    case EventKind::kCohTransfer: return "coh.transfer";
    case EventKind::kLineTransition: return "coh.line";
    case EventKind::kBarrierIssue: return "barrier.issue";
    case EventKind::kBarrierTxn: return "barrier.txn";
    case EventKind::kBarrierComplete: return "barrier.block";
    case EventKind::kStoreGateArm: return "store_gate.arm";
    case EventKind::kStoreGateOpen: return "store_gate.open";
    case EventKind::kCount: break;
  }
  return "?";
}

const char* to_string(CohKind k) {
  switch (k) {
    case CohKind::kGetSLocal: return "GetS(local)";
    case CohKind::kGetSRemote: return "GetS(remote)";
    case CohKind::kGetMLocal: return "GetM(local)";
    case CohKind::kGetMRemote: return "GetM(remote)";
    case CohKind::kUpgrade: return "Upgrade";
    case CohKind::kMemFill: return "MemFill";
    case CohKind::kCount: break;
  }
  return "?";
}

const char* to_string(LineCode c) {
  switch (c) {
    case LineCode::kInvalid: return "I";
    case LineCode::kShared: return "S";
    case LineCode::kOwned: return "M";
  }
  return "?";
}

Tracer::Tracer(std::size_t capacity) : ring_(std::max<std::size_t>(capacity, 1)) {}

std::size_t Tracer::size() const {
  return emitted_ < ring_.size() ? static_cast<std::size_t>(emitted_) : ring_.size();
}

std::uint64_t Tracer::dropped() const {
  return emitted_ < ring_.size() ? 0 : emitted_ - ring_.size();
}

std::vector<Event> Tracer::snapshot() const {
  std::vector<Event> out;
  const std::size_t n = size();
  out.reserve(n);
  // head_ is the next write slot; the oldest surviving event sits at head_
  // once the ring has wrapped, else at 0.
  const std::size_t start = emitted_ < ring_.size() ? 0 : head_;
  for (std::size_t i = 0; i < n; ++i) out.push_back(ring_[(start + i) % ring_.size()]);
  return out;
}

void Tracer::clear() {
  head_ = 0;
  emitted_ = 0;
}

void Tracer::emit(const Event& e) {
  if (!enabled_) return;
  // The observer observing itself: how much host time the guest-side
  // tracer costs. After the enabled_ check so untraced runs pay nothing.
  ARMBAR_PROF_SCOPE(kTraceEmit);
  ring_[head_] = e;
  head_ = (head_ + 1) % ring_.size();
  ++emitted_;
}

void Tracer::instr_issue(CoreId c, std::uint32_t pc, std::uint8_t op, Cycle at) {
  if (!enabled_) return;
  emit({at, at, 0, 0, pc, c, EventKind::kInstrIssue, op});
  if (metrics_) metrics_->inc(metric::kInstrs, c);
}

void Tracer::set_stall_cause_names(std::vector<std::string> names) {
  stall_cause_names_ = std::move(names);
}

std::string Tracer::stall_cause_name(std::uint8_t cause) const {
  if (cause < stall_cause_names_.size()) return stall_cause_names_[cause];
  return std::to_string(cause);
}

void Tracer::stall(CoreId c, std::uint32_t pc, std::uint8_t cause, Cycle from,
                   Cycle to) {
  if (!enabled_ || to <= from) return;
  emit({from, to, 0, 0, pc, c, EventKind::kStall, cause});
  if (metrics_)
    metrics_->inc(metric::kStallPrefix + stall_cause_name(cause), c, to - from);
}

void Tracer::squash(CoreId c, std::uint32_t pc, Cycle at) {
  if (!enabled_) return;
  emit({at, at, 0, 0, pc, c, EventKind::kSquash, 0});
  if (metrics_) metrics_->inc(metric::kSquashes, c);
}

void Tracer::sb_enqueue(CoreId c, std::uint64_t seq, Addr addr, Cycle at) {
  if (!enabled_) return;
  emit({at, at, seq, addr, 0, c, EventKind::kSbEnqueue, 0});
}

void Tracer::sb_drain_start(CoreId c, std::uint64_t seq, Addr addr, Cycle from,
                            Cycle to) {
  if (!enabled_) return;
  emit({from, to, seq, addr, 0, c, EventKind::kSbDrainStart, 0});
}

void Tracer::sb_drain_retire(CoreId c, std::uint64_t seq, Cycle enqueued,
                             Cycle done) {
  if (!enabled_) return;
  const Cycle residency = done >= enqueued ? done - enqueued : 0;
  emit({done, done, seq, residency, 0, c, EventKind::kSbDrainRetire, 0});
  if (metrics_) metrics_->observe(metric::kSbResidency, c, residency);
}

void Tracer::coh_transfer(CoreId c, Addr line, CohKind kind, Cycle from, Cycle to) {
  if (!enabled_) return;
  emit({from, to, line, to - from, 0, c, EventKind::kCohTransfer,
        static_cast<std::uint8_t>(kind)});
  if (metrics_) {
    metrics_->observe(metric::kCohTransfer, c, to - from);
    if (kind == CohKind::kGetMRemote)
      metrics_->observe(metric::kRemoteInv, c, to - from);
  }
}

void Tracer::line_transition(CoreId c, Addr line, LineCode from, LineCode to,
                             Cycle at) {
  if (!enabled_) return;
  const auto packed = static_cast<std::uint8_t>(
      (static_cast<std::uint8_t>(from) << 4) | static_cast<std::uint8_t>(to));
  emit({at, at, line, 0, 0, c, EventKind::kLineTransition, packed});
}

void Tracer::barrier_issue(CoreId c, std::uint32_t pc, std::uint8_t op, Cycle at) {
  if (!enabled_) return;
  emit({at, at, 0, 0, pc, c, EventKind::kBarrierIssue, op});
  if (metrics_) metrics_->inc(metric::kBarriers, c);
}

void Tracer::barrier_txn(CoreId c, std::uint8_t op, Cycle from, Cycle to) {
  if (!enabled_) return;
  emit({from, to, 0, to - from, 0, c, EventKind::kBarrierTxn, op});
  if (metrics_) metrics_->observe(metric::kBarrierTxn, c, to - from);
}

void Tracer::barrier_complete(CoreId c, std::uint32_t pc, std::uint8_t op,
                              Cycle issue, Cycle done) {
  if (!enabled_) return;
  emit({issue, done, 0, done - issue, pc, c, EventKind::kBarrierComplete, op});
  if (metrics_) metrics_->observe(metric::kBarrierComplete, c, done - issue);
}

void Tracer::store_gate_arm(CoreId c, std::uint32_t pc, Cycle at) {
  if (!enabled_) return;
  emit({at, at, 0, 0, pc, c, EventKind::kStoreGateArm, 0});
}

void Tracer::store_gate_open(CoreId c, Cycle at) {
  if (!enabled_) return;
  emit({at, at, 0, 0, 0, c, EventKind::kStoreGateOpen, 0});
}

}  // namespace armbar::trace
