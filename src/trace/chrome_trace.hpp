// Chrome trace_event exporter: turns a Tracer snapshot into the JSON
// object format that chrome://tracing and Perfetto load directly.
//
// Mapping: one simulated cycle = one microsecond of trace time (the `ts`
// unit of the format), pid 0 = the simulated machine, tid = core id. Span
// events (stalls, drains, barrier blocks, transactions) become "X"
// complete events with a duration; instant events become "i".
#pragma once

#include <string>
#include <vector>

#include "trace/json.hpp"
#include "trace/trace.hpp"

namespace armbar::trace {

struct ChromeTraceOptions {
  /// Trace-time microseconds per simulated cycle.
  double us_per_cycle = 1.0;
  std::string process_name = "armbar-sim";
  /// Emitted as the op-name resolver for instruction/barrier events; when
  /// empty, the numeric op code is used. The simulator passes sim::to_string.
  std::string (*op_name)(std::uint8_t) = nullptr;
  /// Stall-cause names; taken from the tracer when exporting via a Tracer.
  std::vector<std::string> stall_cause_names;
};

/// Build the trace document ({"traceEvents": [...], ...}).
Json to_chrome_trace(const std::vector<Event>& events,
                     const ChromeTraceOptions& opts = {});

/// Convenience: snapshot + stall-cause names straight from a tracer.
Json to_chrome_trace(const Tracer& tracer, ChromeTraceOptions opts = {});

/// Serialize and write to `path`; returns false on I/O failure.
bool write_chrome_trace(const std::string& path, const Tracer& tracer,
                        ChromeTraceOptions opts = {});

}  // namespace armbar::trace
