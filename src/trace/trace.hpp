// Barrier-lifecycle event tracer: a fixed-capacity ring buffer the
// simulator emits into at each pipeline stage.
//
// Design constraints (ISSUE 1 / paper §2.3):
//  * Zero cost when absent: the simulator holds a `Tracer*` that is null by
//    default, and every hook site is wrapped in ARMBAR_TRACE(...) which
//    compiles to nothing when ARMBAR_TRACE_DISABLED is defined. With the
//    pointer null the per-event cost is one predictable branch.
//  * Zero timing impact when present: the tracer only records; it never
//    feeds back into the simulation, so cycle counts are bit-identical with
//    tracing on or off.
//  * Bounded memory: events land in a ring of fixed capacity; wraparound
//    overwrites the oldest events and counts them in dropped(). Metrics
//    (histograms/counters) are fed on every event regardless of wraparound,
//    so the quantitative view never loses samples.
//
// The event vocabulary covers the barrier lifetime the paper dissects:
// issue-queue blocking (kStall with a StallCause code), store-buffer
// enqueue/drain, the ACE barrier transaction round trip (kBarrierTxn), and
// cache-line ownership traffic (kCohTransfer / kLineTransition).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "trace/metrics.hpp"

namespace armbar::trace {

#if defined(ARMBAR_TRACE_DISABLED)
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// Wrap every instrumentation site in the simulator:
///   ARMBAR_TRACE(tracer_, instr_issue(id_, pc_, op));
/// Compiles to nothing when tracing is compiled out; otherwise a null check.
#if defined(ARMBAR_TRACE_DISABLED)
// Arguments stay type-checked (so instrumented code can't rot) but the
// branch is constant-false and the whole call is dead-stripped.
#define ARMBAR_TRACE(tracer, call)                 \
  do {                                             \
    if (false && (tracer) != nullptr) (tracer)->call; \
  } while (false)
#else
#define ARMBAR_TRACE(tracer, call)     \
  do {                                 \
    if ((tracer) != nullptr) (tracer)->call; \
  } while (false)
#endif

enum class EventKind : std::uint8_t {
  kInstrIssue,       ///< one instruction left the issue stage (pc, op in detail)
  kStall,            ///< issue blocked [begin,end); detail = StallCause code
  kSquash,           ///< branch mispredict flush at `begin`
  kSbEnqueue,        ///< store entered the store buffer (a = seq, b = addr)
  kSbDrainStart,     ///< drain requested ownership [begin,end); a = seq, b = addr
  kSbDrainRetire,    ///< entry left the buffer; a = seq, b = residency cycles
  kCohTransfer,      ///< coherence transfer [begin,end); detail = CohKind, b = line
  kLineTransition,   ///< line state change; detail packs from/to, a = line
  kBarrierIssue,     ///< barrier reached issue; detail = Op code
  kBarrierTxn,       ///< ACE barrier transaction round trip [begin,end)
  kBarrierComplete,  ///< full barrier block span [begin,end); detail = Op code
  kStoreGateArm,     ///< DMB st armed its store gate
  kStoreGateOpen,    ///< DMB st gate resolved; stores may issue from `begin`
  kCount,
};

const char* to_string(EventKind k);

/// Coherence transfer classification for kCohTransfer events.
enum class CohKind : std::uint8_t {
  kGetSLocal, kGetSRemote,  ///< read transfer, within / across nodes
  kGetMLocal, kGetMRemote,  ///< ownership transfer, within / across nodes
  kUpgrade,                 ///< sole-sharer S->M upgrade
  kMemFill,                 ///< fill straight from memory
  kCount,
};

const char* to_string(CohKind k);

/// Simplified cache-line states for kLineTransition (detail = from<<4 | to).
enum class LineCode : std::uint8_t { kInvalid = 0, kShared = 1, kOwned = 2 };

const char* to_string(LineCode c);

/// One trace record. 48 bytes; `begin == end` marks an instant event.
struct Event {
  Cycle begin = 0;
  Cycle end = 0;
  std::uint64_t a = 0;  ///< kind-specific (seq / line address / span id)
  std::uint64_t b = 0;  ///< kind-specific (addr / latency / residency)
  std::uint32_t pc = 0;
  CoreId core = 0;
  EventKind kind = EventKind::kInstrIssue;
  std::uint8_t detail = 0;  ///< StallCause / Op / CohKind / packed LineCodes
};

/// Standard metric names the tracer feeds (all cycle-valued histograms
/// unless noted). Exposed so benches, tests and exporters agree on spelling.
namespace metric {
inline constexpr const char* kBarrierComplete = "barrier.complete_cycles";
inline constexpr const char* kBarrierTxn = "barrier.txn_cycles";
inline constexpr const char* kStallBarrier = "stall.barrier_cycles";
inline constexpr const char* kSbResidency = "sb.residency_cycles";
inline constexpr const char* kCohTransfer = "coh.transfer_cycles";
inline constexpr const char* kRemoteInv = "coh.remote_inv_cycles";
inline constexpr const char* kInstrs = "count.instructions";    ///< counter
inline constexpr const char* kBarriers = "count.barriers";      ///< counter
inline constexpr const char* kSquashes = "count.squashes";      ///< counter
inline constexpr const char* kStallPrefix = "stall_cycles.";    ///< counter family
}  // namespace metric

class Tracer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit Tracer(std::size_t capacity = kDefaultCapacity);

  /// Attach a registry; the tracer feeds it on every event. May be null.
  void set_metrics(MetricsRegistry* m) { metrics_ = m; }
  MetricsRegistry* metrics() const { return metrics_; }

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Install human-readable names for the stall-cause codes the simulator
  /// passes to stall(). Keeps trace/ independent of sim/ while letting
  /// metric keys and exports spell "kBarrier" instead of "3".
  void set_stall_cause_names(std::vector<std::string> names);
  /// Name for a cause code; falls back to the decimal code.
  std::string stall_cause_name(std::uint8_t cause) const;

  std::size_t capacity() const { return ring_.size(); }
  /// Events currently held (<= capacity()).
  std::size_t size() const;
  /// Total events accepted while enabled (including since-overwritten ones).
  std::uint64_t emitted() const { return emitted_; }
  /// Events lost to ring wraparound.
  std::uint64_t dropped() const;

  /// Oldest-to-newest copy of the ring contents.
  std::vector<Event> snapshot() const;

  void clear();

  // ---- raw emission ----
  void emit(const Event& e);

  // ---- typed hooks (what the simulator calls) ----
  void instr_issue(CoreId c, std::uint32_t pc, std::uint8_t op, Cycle at);
  void stall(CoreId c, std::uint32_t pc, std::uint8_t cause, Cycle from, Cycle to);
  void squash(CoreId c, std::uint32_t pc, Cycle at);
  void sb_enqueue(CoreId c, std::uint64_t seq, Addr addr, Cycle at);
  void sb_drain_start(CoreId c, std::uint64_t seq, Addr addr, Cycle from, Cycle to);
  void sb_drain_retire(CoreId c, std::uint64_t seq, Cycle enqueued, Cycle done);
  void coh_transfer(CoreId c, Addr line, CohKind kind, Cycle from, Cycle to);
  void line_transition(CoreId c, Addr line, LineCode from, LineCode to, Cycle at);
  void barrier_issue(CoreId c, std::uint32_t pc, std::uint8_t op, Cycle at);
  void barrier_txn(CoreId c, std::uint8_t op, Cycle from, Cycle to);
  void barrier_complete(CoreId c, std::uint32_t pc, std::uint8_t op, Cycle issue,
                        Cycle done);
  void store_gate_arm(CoreId c, std::uint32_t pc, Cycle at);
  void store_gate_open(CoreId c, Cycle at);

 private:
  bool enabled_ = true;
  std::vector<Event> ring_;
  std::size_t head_ = 0;      ///< next write slot
  std::uint64_t emitted_ = 0;
  MetricsRegistry* metrics_ = nullptr;
  std::vector<std::string> stall_cause_names_;
};

}  // namespace armbar::trace
