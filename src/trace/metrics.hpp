// Metrics registry: named counters and log-scale latency histograms,
// kept per core and aggregated machine-wide.
//
// The registry is the quantitative side of the tracing subsystem: where the
// ring-buffer tracer answers "what happened around cycle X", the registry
// answers "what is the p99 barrier completion latency over the whole run".
// Histograms are log2-bucketed (64 buckets cover the full Cycle range) so a
// histogram is a fixed 600-byte object no matter how many samples land in
// it — cheap enough to keep one per (metric, core).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace armbar::trace {

/// Log2-bucketed histogram of non-negative integer samples (cycle counts).
/// Bucket 0 holds the value 0; bucket i (i >= 1) holds [2^(i-1), 2^i).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void add(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  void merge(const Histogram& o) {
    if (o.count_ == 0) return;
    for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
    if (count_ == 0 || o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
    count_ += o.count_;
    sum_ += o.sum_;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const { return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0; }

  /// Approximate percentile (p in [0,100]): finds the bucket holding the
  /// rank and interpolates linearly inside it. Exact for single-valued
  /// buckets (0 and 1), within 2x for the rest — the right trade for a
  /// fixed-size accumulator on a simulator hot path.
  double percentile(double p) const;

  const std::array<std::uint64_t, kBuckets>& buckets() const { return buckets_; }

  static std::size_t bucket_of(std::uint64_t v) {
    return v == 0 ? 0 : static_cast<std::size_t>(64 - __builtin_clzll(v));
  }
  /// Inclusive lower bound of bucket i.
  static std::uint64_t bucket_lo(std::size_t i) {
    return i == 0 ? 0 : (1ULL << (i - 1));
  }

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Flat summary of a histogram, the shape exported into JSON reports.
struct HistogramSummary {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

HistogramSummary summarize(const Histogram& h);

/// Named counters + histograms, each kept per core with a machine-wide
/// aggregate view. Core ids are dense and small (<= kMaxCores), so per-core
/// storage is a vector indexed by core, grown on first touch.
class MetricsRegistry {
 public:
  void inc(std::string_view name, CoreId core, std::uint64_t delta = 1);
  void observe(std::string_view name, CoreId core, std::uint64_t value);

  /// Machine-wide counter total (0 when the name was never incremented).
  std::uint64_t counter(std::string_view name) const;
  std::uint64_t counter(std::string_view name, CoreId core) const;

  /// Machine-wide histogram (all cores merged); empty when never observed.
  Histogram histogram(std::string_view name) const;
  /// Per-core histogram; nullptr when the (name, core) pair has no samples.
  const Histogram* histogram(std::string_view name, CoreId core) const;

  std::vector<std::string> counter_names() const;
  std::vector<std::string> histogram_names() const;

  bool empty() const { return counters_.empty() && histograms_.empty(); }
  void clear();

  /// Fold another registry into this one: counters add and histograms merge,
  /// core by core. Lets parallel sweeps record into per-worker registries and
  /// combine them afterwards without sharing mutable state during the run.
  void merge(const MetricsRegistry& other);

 private:
  // std::map: stable iteration order (deterministic exports), heterogeneous
  // string_view lookup via std::less<>.
  std::map<std::string, std::vector<std::uint64_t>, std::less<>> counters_;
  std::map<std::string, std::vector<Histogram>, std::less<>> histograms_;
};

}  // namespace armbar::trace
