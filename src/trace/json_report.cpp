#include "trace/json_report.hpp"

#include <cstdio>

namespace armbar::trace {

ReportBuilder::ReportBuilder(std::string bench_id, std::string title)
    : bench_id_(std::move(bench_id)), title_(std::move(title)) {}

void ReportBuilder::add_check(const std::string& claim, bool pass) {
  Json c = Json::object();
  c.set("claim", claim);
  c.set("pass", pass);
  checks_.push(std::move(c));
  ok_ = ok_ && pass;
}

void ReportBuilder::add_param(const std::string& name, const std::string& value) {
  params_.set(name, value);
}

void ReportBuilder::add_metric(const std::string& name, double value) {
  metrics_.set(name, value);
}

void ReportBuilder::add_histogram(const std::string& name,
                                  const HistogramSummary& s) {
  Json h = Json::object();
  h.set("count", s.count);
  h.set("sum", s.sum);
  h.set("min", s.min);
  h.set("max", s.max);
  h.set("mean", s.mean);
  h.set("p50", s.p50);
  h.set("p95", s.p95);
  h.set("p99", s.p99);
  histograms_.set(name, std::move(h));
}

void ReportBuilder::add_quarantine(const std::string& name,
                                   const std::string& status,
                                   const std::string& kind,
                                   const std::string& reason,
                                   const Json& diagnostic,
                                   const std::string& repro_bundle,
                                   const Json& extra) {
  Json q = Json::object();
  q.set("name", name);
  q.set("status", status);
  q.set("kind", kind);
  q.set("reason", reason);
  if (!diagnostic.is_null()) q.set("diagnostic", diagnostic);
  if (!repro_bundle.empty()) q.set("repro_bundle", repro_bundle);
  if (extra.is_object()) {
    for (const auto& [key, value] : extra.members()) {
      if (key == "name" || key == "status" || key == "kind" ||
          key == "reason" || key == "diagnostic" || key == "repro_bundle")
        continue;  // reserved
      if (value.is_string()) q.set(key, value.str());
    }
  }
  quarantine_.push(std::move(q));
  ok_ = false;
}

void ReportBuilder::add_registry(const MetricsRegistry& reg) {
  for (const auto& name : reg.counter_names())
    add_metric(name, static_cast<double>(reg.counter(name)));
  for (const auto& name : reg.histogram_names())
    add_histogram(name, summarize(reg.histogram(name)));
}

Json ReportBuilder::build() const {
  Json doc = Json::object();
  doc.set("schema", kReportSchema);
  doc.set("bench", bench_id_);
  doc.set("title", title_);
  doc.set("ok", ok_);
  doc.set("checks", checks_);
  doc.set("params", params_);
  doc.set("metrics", metrics_);
  doc.set("histograms", histograms_);
  doc.set("quarantine", quarantine_);
  if (!host_prof_.is_null()) doc.set("host_prof", host_prof_);
  if (!opt_report_.is_null()) doc.set("opt_report", opt_report_);
  return doc;
}

bool ReportBuilder::write(const std::string& path) const {
  const std::string text = str();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = n == text.size() && std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

namespace {

bool violation(std::string* err, const std::string& what) {
  if (err) *err = what;
  return false;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// armbar.host_prof/v1 section gate: phase names non-empty, per-phase ns
/// monotone-summable (self <= total per phase; summed self bounded by
/// wall * threads, with slack for timer calibration error), throughput
/// positive when present, and the section explicitly marked as excluded
/// from digest material.
bool validate_host_prof(const Json& hp, std::string* err) {
  if (!hp.is_object())
    return violation(err, "host_prof is not a JSON object");

  const Json* excluded = hp.find("excluded_from_digests");
  if (excluded == nullptr || !excluded->is_bool() || !excluded->boolean())
    return violation(err,
                     "host_prof must set excluded_from_digests=true (host "
                     "timing is report-only, never digest material)");

  const Json* wall = hp.find("wall_ns");
  if (wall == nullptr || !wall->is_number() || wall->number() < 0)
    return violation(err, "host_prof missing non-negative number 'wall_ns'");
  const Json* threads = hp.find("threads");
  if (threads == nullptr || !threads->is_number() || threads->number() < 1)
    return violation(err, "host_prof missing number 'threads' >= 1");

  const Json* phases = hp.find("phases");
  if (phases == nullptr || !phases->is_object() || phases->size() == 0)
    return violation(err, "host_prof missing non-empty object 'phases'");
  double self_sum = 0.0;
  for (const auto& [name, p] : phases->members()) {
    if (name.empty())
      return violation(err, "host_prof phase with an empty name");
    if (!p.is_object())
      return violation(err, "host_prof phase '" + name + "' is not an object");
    for (const char* field : {"count", "total_ns", "self_ns"}) {
      const Json* v = p.find(field);
      if (v == nullptr || !v->is_number() || v->number() < 0)
        return violation(err, "host_prof phase '" + name +
                                  "' missing non-negative number '" + field +
                                  "'");
    }
    const double total = p.find("total_ns")->number();
    const double self = p.find("self_ns")->number();
    if (self > total * 1.000001)
      return violation(err,
                       "host_prof phase '" + name + "': self_ns > total_ns");
    self_sum += self;
  }
  // Monotone-summable: phase self times partition measured time, so their
  // sum cannot exceed the available cpu-time envelope. 10% slack covers
  // tick-to-ns calibration error.
  if (self_sum > wall->number() * threads->number() * 1.1)
    return violation(err,
                     "host_prof phase self_ns sum exceeds wall_ns * threads");

  if (const Json* counters = hp.find("counters")) {
    if (!counters->is_object())
      return violation(err, "host_prof 'counters' is not an object");
    for (const auto& [name, v] : counters->members())
      if (name.empty() || !v.is_number() || v.number() < 0)
        return violation(err, "host_prof counter '" + name +
                                  "' is not a non-negative number");
  }
  if (const Json* ips = hp.find("sim_instructions_per_sec"))
    if (!ips->is_number() || ips->number() <= 0)
      return violation(err,
                       "host_prof sim_instructions_per_sec must be > 0 "
                       "when present");
  if (err) err->clear();
  return true;
}

/// Counter triple every armbar.opt.report/v1 program entry (and the totals
/// object) must carry, with the arithmetic-consistency rule (ISSUE 10
/// satellite): a rewrite is either accepted or restored, never both and
/// never invented, so attempted >= accepted + restored always holds (">"
/// only when a stale candidate failed to re-apply — counted attempted but
/// never decided).
struct OptCounters {
  double attempted = 0, accepted = 0, restored = 0;
};

bool read_opt_counters(const Json& entry, const std::string& who,
                       OptCounters* out, std::string* err) {
  for (const char* field : {"rewrites_attempted", "rewrites_accepted",
                            "rewrites_restored"}) {
    const Json* v = entry.find(field);
    if (!v || !v->is_number() || v->number() < 0)
      return violation(err, "opt_report " + who +
                                ": missing non-negative number '" + field +
                                "'");
  }
  out->attempted = entry.find("rewrites_attempted")->number();
  out->accepted = entry.find("rewrites_accepted")->number();
  out->restored = entry.find("rewrites_restored")->number();
  if (out->attempted < out->accepted + out->restored)
    return violation(err, "opt_report " + who +
                              ": rewrites_attempted < rewrites_accepted + "
                              "rewrites_restored");
  return true;
}

/// armbar.opt.report/v1 section gate: schema pinned, per-program and total
/// counters arithmetically consistent, totals equal to the per-program
/// sums, and every recorded rewrite carrying a recognizable verdict.
bool validate_opt_report(const Json& rep, std::string* err) {
  if (!rep.is_object())
    return violation(err, "opt_report is not a JSON object");
  const Json* schema = rep.find("schema");
  if (!schema || !schema->is_string() || schema->str() != kOptReportSchema)
    return violation(err, std::string("opt_report schema must be '") +
                              kOptReportSchema + "'");

  const Json* programs = rep.find("programs");
  if (!programs || !programs->is_array())
    return violation(err, "opt_report missing array field 'programs'");
  OptCounters sum;
  for (const Json& p : programs->items()) {
    const Json* name = p.find("name");
    if (!p.is_object() || !name || !name->is_string() || name->str().empty())
      return violation(err,
                       "opt_report program entries need a non-empty string "
                       "'name'");
    OptCounters c;
    if (!read_opt_counters(p, "program '" + name->str() + "'", &c, err))
      return false;
    sum.attempted += c.attempted;
    sum.accepted += c.accepted;
    sum.restored += c.restored;
    for (const char* field : {"barriers_before", "barriers_after"}) {
      const Json* v = p.find(field);
      if (!v || !v->is_number() || v->number() < 0)
        return violation(err, "opt_report program '" + name->str() +
                                  "': missing non-negative number '" + field +
                                  "'");
    }
    const Json* rewrites = p.find("rewrites");
    if (rewrites == nullptr) continue;
    if (!rewrites->is_array())
      return violation(err, "opt_report program '" + name->str() +
                                "': 'rewrites' is not an array");
    for (const Json& rw : rewrites->items()) {
      const Json* verdict = rw.find("verdict");
      if (!rw.is_object() || !verdict || !verdict->is_string() ||
          (verdict->str() != "accepted" && verdict->str() != "restored"))
        return violation(err, "opt_report program '" + name->str() +
                                  "': rewrite entries need verdict "
                                  "'accepted' or 'restored'");
    }
  }

  const Json* totals = rep.find("totals");
  if (!totals || !totals->is_object())
    return violation(err, "opt_report missing object field 'totals'");
  OptCounters t;
  if (!read_opt_counters(*totals, "totals", &t, err)) return false;
  if (t.attempted != sum.attempted || t.accepted != sum.accepted ||
      t.restored != sum.restored)
    return violation(err,
                     "opt_report totals do not equal the per-program sums");
  if (err) err->clear();
  return true;
}

}  // namespace

bool validate_bench_report(const Json& doc, std::string* err) {
  if (!doc.is_object()) return violation(err, "report is not a JSON object");

  const Json* schema = doc.find("schema");
  if (!schema || !schema->is_string())
    return violation(err, "missing string field 'schema'");
  if (schema->str() != kReportSchema && schema->str() != kReportSchemaV1)
    return violation(err, "unknown schema '" + schema->str() + "'");

  for (const char* field : {"bench", "title"}) {
    const Json* v = doc.find(field);
    if (!v || !v->is_string() || v->str().empty())
      return violation(err, std::string("missing non-empty string field '") + field + "'");
  }

  const Json* ok = doc.find("ok");
  if (!ok || !ok->is_bool()) return violation(err, "missing bool field 'ok'");

  const Json* checks = doc.find("checks");
  if (!checks || !checks->is_array())
    return violation(err, "missing array field 'checks'");
  bool all_pass = true;
  for (const Json& c : checks->items()) {
    const Json* claim = c.find("claim");
    const Json* pass = c.find("pass");
    if (!c.is_object() || !claim || !claim->is_string() || !pass || !pass->is_bool())
      return violation(err, "check entries need string 'claim' and bool 'pass'");
    all_pass = all_pass && pass->boolean();
  }
  if (ok->boolean() && !all_pass)
    return violation(err, "'ok' is true but a check failed");

  const Json* metrics = doc.find("metrics");
  if (!metrics || !metrics->is_object())
    return violation(err, "missing object field 'metrics'");
  for (const auto& [name, v] : metrics->members())
    if (!v.is_number())
      return violation(err, "metric '" + name + "' is not a number");

  const Json* hists = doc.find("histograms");
  if (!hists || !hists->is_object())
    return violation(err, "missing object field 'histograms'");
  for (const auto& [name, h] : hists->members()) {
    if (!h.is_object())
      return violation(err, "histogram '" + name + "' is not an object");
    for (const char* field : {"count", "sum", "min", "max", "mean", "p50", "p95", "p99"}) {
      const Json* v = h.find(field);
      if (!v || !v->is_number())
        return violation(err, "histogram '" + name + "' missing number '" + field + "'");
    }
    const Json* count = h.find("count");
    const Json* mn = h.find("min");
    const Json* mx = h.find("max");
    const Json* p50 = h.find("p50");
    const Json* p99 = h.find("p99");
    if (count->number() > 0) {
      if (mn->number() > mx->number())
        return violation(err, "histogram '" + name + "': min > max");
      if (p50->number() > p99->number())
        return violation(err, "histogram '" + name + "': p50 > p99");
    }
  }

  const Json* quarantine = doc.find("quarantine");
  if (!quarantine || !quarantine->is_array())
    return violation(err, "missing array field 'quarantine'");
  for (const Json& q : quarantine->items()) {
    const Json* name = q.find("name");
    const Json* status = q.find("status");
    if (!q.is_object() || !name || !name->is_string() || name->str().empty() ||
        !status || !status->is_string() || status->str().empty())
      return violation(
          err, "quarantine entries need non-empty string 'name' and 'status'");
    if (const Json* bundle = q.find("repro_bundle");
        bundle && (!bundle->is_string() || bundle->str().empty()))
      return violation(err, "quarantine entry '" + name->str() +
                                "': 'repro_bundle' must be a non-empty string");
    // Lock-verification entries (ISSUE 9) must name the violated invariant
    // and carry its minimized witness outcome — that pair is what makes
    // the entry independently replayable and auditable.
    if (const Json* kind = q.find("kind");
        kind && kind->is_string() && kind->str() == "lock_invariant") {
      const Json* inv = q.find("invariant");
      const Json* wit = q.find("witness");
      if (!inv || !inv->is_string() || inv->str().empty() || !wit ||
          !wit->is_string() || wit->str().empty())
        return violation(err,
                         "quarantine entry '" + name->str() +
                             "': kind 'lock_invariant' needs non-empty "
                             "string 'invariant' and 'witness'");
    }
  }
  if (ok->boolean() && quarantine->size() > 0)
    return violation(err, "'ok' is true but experiments are quarantined");

  // Digest-hygiene gate: the engine stamps prof_digest_leak=true (per
  // experiment in consolidated reports) when a cached point value carried
  // host-profiling fields. Such a report is rejected outright — its points
  // digests are wall-clock-contaminated and worthless for comparison.
  if (const Json* params = doc.find("params"); params && params->is_object())
    for (const auto& [name, v] : params->members())
      if ((name == "prof_digest_leak" ||
           ends_with(name, "/prof_digest_leak")) &&
          v.is_string() && v.str() == "true")
        return violation(err,
                         "profiling fields leaked into point digests ('" +
                             name + "' is true)");

  if (const Json* hp = doc.find("host_prof"))
    if (!validate_host_prof(*hp, err)) return false;

  if (const Json* rep = doc.find("opt_report"))
    if (!validate_opt_report(*rep, err)) return false;

  if (err) err->clear();
  return true;
}

}  // namespace armbar::trace
