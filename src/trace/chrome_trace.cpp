#include "trace/chrome_trace.hpp"

#include <cstdio>
#include <set>

namespace armbar::trace {

namespace {

std::string op_label(const ChromeTraceOptions& opts, std::uint8_t op) {
  if (opts.op_name) return opts.op_name(op);
  return "op" + std::to_string(op);
}

std::string cause_label(const ChromeTraceOptions& opts, std::uint8_t cause) {
  if (cause < opts.stall_cause_names.size()) return opts.stall_cause_names[cause];
  return "cause" + std::to_string(cause);
}

std::string hex(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

/// One trace_event record; `dur < 0` means an instant event.
Json record(const std::string& name, const std::string& cat, CoreId core,
            double ts, double dur) {
  Json e = Json::object();
  e.set("name", name);
  e.set("cat", cat);
  e.set("ph", dur >= 0 ? "X" : "i");
  e.set("ts", ts);
  if (dur >= 0) e.set("dur", dur);
  e.set("pid", 0);
  e.set("tid", static_cast<std::uint64_t>(core));
  if (dur < 0) e.set("s", "t");  // instant scope: thread
  return e;
}

}  // namespace

Json to_chrome_trace(const std::vector<Event>& events, const ChromeTraceOptions& opts) {
  Json out = Json::object();
  Json list = Json::array();

  // Process/thread metadata so Perfetto shows "core N" lanes.
  {
    Json meta = Json::object();
    meta.set("name", "process_name");
    meta.set("ph", "M");
    meta.set("pid", 0);
    Json args = Json::object();
    args.set("name", opts.process_name);
    meta.set("args", std::move(args));
    list.push(std::move(meta));
  }
  std::set<CoreId> cores;
  for (const auto& e : events) cores.insert(e.core);
  for (CoreId c : cores) {
    Json meta = Json::object();
    meta.set("name", "thread_name");
    meta.set("ph", "M");
    meta.set("pid", 0);
    meta.set("tid", static_cast<std::uint64_t>(c));
    Json args = Json::object();
    args.set("name", "core " + std::to_string(c));
    meta.set("args", std::move(args));
    list.push(std::move(meta));
  }

  for (const auto& e : events) {
    const double ts = static_cast<double>(e.begin) * opts.us_per_cycle;
    const double dur = e.end > e.begin
                           ? static_cast<double>(e.end - e.begin) * opts.us_per_cycle
                           : -1.0;
    Json args = Json::object();
    args.set("cycle", e.begin);
    if (e.end > e.begin) args.set("cycles", e.end - e.begin);
    std::string name;
    std::string cat;
    switch (e.kind) {
      case EventKind::kInstrIssue:
        name = op_label(opts, e.detail);
        cat = "instr";
        args.set("pc", static_cast<std::uint64_t>(e.pc));
        break;
      case EventKind::kStall:
        name = "stall:" + cause_label(opts, e.detail);
        cat = "stall";
        args.set("pc", static_cast<std::uint64_t>(e.pc));
        break;
      case EventKind::kSquash:
        name = "squash";
        cat = "spec";
        args.set("pc", static_cast<std::uint64_t>(e.pc));
        break;
      case EventKind::kSbEnqueue:
        name = "sb.enqueue";
        cat = "sb";
        args.set("seq", e.a);
        args.set("addr", hex(e.b));
        break;
      case EventKind::kSbDrainStart:
        name = "sb.drain";
        cat = "sb";
        args.set("seq", e.a);
        args.set("addr", hex(e.b));
        break;
      case EventKind::kSbDrainRetire:
        name = "sb.retire";
        cat = "sb";
        args.set("seq", e.a);
        args.set("residency", e.b);
        break;
      case EventKind::kCohTransfer:
        name = std::string("coh:") + to_string(static_cast<CohKind>(e.detail));
        cat = "coh";
        args.set("line", hex(e.a));
        break;
      case EventKind::kLineTransition: {
        const auto from = static_cast<LineCode>(e.detail >> 4);
        const auto to = static_cast<LineCode>(e.detail & 0xF);
        name = std::string("line:") + to_string(from) + "->" + to_string(to);
        cat = "coh";
        args.set("line", hex(e.a));
        break;
      }
      case EventKind::kBarrierIssue:
        name = "barrier.issue:" + op_label(opts, e.detail);
        cat = "barrier";
        args.set("pc", static_cast<std::uint64_t>(e.pc));
        break;
      case EventKind::kBarrierTxn:
        name = "barrier.txn:" + op_label(opts, e.detail);
        cat = "barrier";
        break;
      case EventKind::kBarrierComplete:
        name = "barrier.block:" + op_label(opts, e.detail);
        cat = "barrier";
        args.set("pc", static_cast<std::uint64_t>(e.pc));
        break;
      case EventKind::kStoreGateArm:
        name = "store_gate.arm";
        cat = "barrier";
        args.set("pc", static_cast<std::uint64_t>(e.pc));
        break;
      case EventKind::kStoreGateOpen:
        name = "store_gate.open";
        cat = "barrier";
        break;
      case EventKind::kCount:
        continue;
    }
    Json rec = record(name, cat, e.core, ts, dur);
    rec.set("args", std::move(args));
    list.push(std::move(rec));
  }

  out.set("traceEvents", std::move(list));
  out.set("displayTimeUnit", "ms");
  out.set("otherData", [&] {
    Json d = Json::object();
    d.set("generator", "armbar::trace");
    d.set("cycle_unit_us", opts.us_per_cycle);
    return d;
  }());
  return out;
}

Json to_chrome_trace(const Tracer& tracer, ChromeTraceOptions opts) {
  if (opts.stall_cause_names.empty()) {
    for (std::uint8_t c = 0; c < 32; ++c) {
      const std::string n = tracer.stall_cause_name(c);
      if (n == std::to_string(c)) break;  // past the installed name table
      opts.stall_cause_names.push_back(n);
    }
  }
  return to_chrome_trace(tracer.snapshot(), opts);
}

bool write_chrome_trace(const std::string& path, const Tracer& tracer,
                        ChromeTraceOptions opts) {
  const std::string text = to_chrome_trace(tracer, std::move(opts)).dump(1);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::size_t n = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = n == text.size() && std::fputc('\n', f) != EOF;
  return std::fclose(f) == 0 && ok;
}

}  // namespace armbar::trace
