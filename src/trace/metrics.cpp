#include "trace/metrics.hpp"

#include <algorithm>

namespace armbar::trace {

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double rank = p / 100.0 * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    const std::uint64_t next = seen + buckets_[i];
    if (static_cast<double>(next) >= rank) {
      const double lo = static_cast<double>(std::max(bucket_lo(i), min_));
      const std::uint64_t hi_bound = i >= 64 ? max_ : (bucket_lo(i + 1) - 1);
      const double hi = static_cast<double>(std::min(hi_bound, max_));
      if (buckets_[i] == 1 || hi <= lo) return std::max(lo, hi);
      const double frac =
          (rank - static_cast<double>(seen)) / static_cast<double>(buckets_[i]);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen = next;
  }
  return static_cast<double>(max_);
}

HistogramSummary summarize(const Histogram& h) {
  HistogramSummary s;
  s.count = h.count();
  s.sum = h.sum();
  s.min = h.min();
  s.max = h.max();
  s.mean = h.mean();
  s.p50 = h.percentile(50.0);
  s.p95 = h.percentile(95.0);
  s.p99 = h.percentile(99.0);
  return s;
}

namespace {

template <typename Map, typename Value>
Value& slot(Map& m, std::string_view name, CoreId core) {
  auto it = m.find(name);
  if (it == m.end()) it = m.emplace(std::string(name), typename Map::mapped_type{}).first;
  auto& per_core = it->second;
  if (per_core.size() <= core) per_core.resize(core + 1);
  return per_core[core];
}

}  // namespace

void MetricsRegistry::inc(std::string_view name, CoreId core, std::uint64_t delta) {
  slot<decltype(counters_), std::uint64_t>(counters_, name, core) += delta;
}

void MetricsRegistry::observe(std::string_view name, CoreId core, std::uint64_t value) {
  slot<decltype(histograms_), Histogram>(histograms_, name, core).add(value);
}

std::uint64_t MetricsRegistry::counter(std::string_view name) const {
  auto it = counters_.find(name);
  if (it == counters_.end()) return 0;
  std::uint64_t total = 0;
  for (auto v : it->second) total += v;
  return total;
}

std::uint64_t MetricsRegistry::counter(std::string_view name, CoreId core) const {
  auto it = counters_.find(name);
  if (it == counters_.end() || it->second.size() <= core) return 0;
  return it->second[core];
}

Histogram MetricsRegistry::histogram(std::string_view name) const {
  Histogram total;
  auto it = histograms_.find(name);
  if (it == histograms_.end()) return total;
  for (const auto& h : it->second) total.merge(h);
  return total;
}

const Histogram* MetricsRegistry::histogram(std::string_view name, CoreId core) const {
  auto it = histograms_.find(name);
  if (it == histograms_.end() || it->second.size() <= core) return nullptr;
  return it->second[core].count() ? &it->second[core] : nullptr;
}

std::vector<std::string> MetricsRegistry::counter_names() const {
  std::vector<std::string> out;
  out.reserve(counters_.size());
  for (const auto& [k, v] : counters_) out.push_back(k);
  return out;
}

std::vector<std::string> MetricsRegistry::histogram_names() const {
  std::vector<std::string> out;
  out.reserve(histograms_.size());
  for (const auto& [k, v] : histograms_) out.push_back(k);
  return out;
}

void MetricsRegistry::clear() {
  counters_.clear();
  histograms_.clear();
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, per_core] : other.counters_) {
    auto& dst = counters_[name];
    if (dst.size() < per_core.size()) dst.resize(per_core.size(), 0);
    for (std::size_t i = 0; i < per_core.size(); ++i) dst[i] += per_core[i];
  }
  for (const auto& [name, per_core] : other.histograms_) {
    auto& dst = histograms_[name];
    if (dst.size() < per_core.size()) dst.resize(per_core.size());
    for (std::size_t i = 0; i < per_core.size(); ++i) dst[i].merge(per_core[i]);
  }
}

}  // namespace armbar::trace
