// Generators for the paper's abstracted models (Algorithm 1) and runners
// that reproduce Figures 2, 3 and 5.
//
// Each model is a loop over fresh cache lines with zero, one or two memory
// operations and a configurable barrier at one of two locations:
//   location 1 — strictly after the first memory reference (the RMR);
//   location 2 — after the nop block, just before the second reference.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/machine.hpp"

namespace armbar::simprog {

using sim::Op;
using sim::PlatformSpec;
using sim::Program;

/// Every order-preserving option Figures 2/3/5 sweep.
enum class OrderChoice : std::uint8_t {
  kNone,
  kDmbFull, kDmbSt, kDmbLd,
  kDsbFull, kDsbSt, kDsbLd,
  kIsb,
  kLdar,      ///< first op becomes a load-acquire (Fig 5)
  kLdapr,     ///< ARMv8.3 RCpc load-acquire (Table 3 footnote extension)
  kStlr,      ///< second store becomes a store-release (Figs 3/5)
  kCtrlIsb,   ///< bogus control dependency + ISB
  kCtrl,      ///< bogus control dependency alone
  kDataDep,   ///< bogus data dependency into the second op's value
  kAddrDep,   ///< bogus address dependency into the second op's address
};

std::string to_string(OrderChoice c);

/// Barrier placement relative to the nop block.
enum class BarrierLoc : std::uint8_t { kNone, kLoc1, kLoc2 };

/// Fig 2 model: no memory operations; a bare barrier on the critical path.
Program make_intrinsic_model(OrderChoice barrier, std::uint32_t nops,
                             std::uint32_t iters);

/// Fig 3 model: two stores to fresh cache lines each iteration; the two
/// buffers are shared by both threads so the stores are RMRs.
Program make_store_store_model(OrderChoice choice, BarrierLoc loc,
                               std::uint32_t nops, std::uint32_t iters,
                               Addr buf_a, Addr buf_b);

/// Fig 5 model: a load then a store to different cache lines.
Program make_load_store_model(OrderChoice choice, BarrierLoc loc,
                              std::uint32_t nops, std::uint32_t iters,
                              Addr buf_a, Addr buf_b);

/// Throughput of a single-core run, in loops per second at the platform
/// frequency. A non-null `tracer` is attached to the machine for the run
/// (recording only; throughput is bit-identical either way).
double run_single(const PlatformSpec& spec, const Program& prog,
                  std::uint32_t iters, trace::Tracer* tracer = nullptr);

/// Throughput with two cores executing `prog` over the same buffers, in
/// loops per second per core.
double run_pair(const PlatformSpec& spec, const Program& prog,
                std::uint32_t iters, CoreId c0, CoreId c1,
                trace::Tracer* tracer = nullptr);

/// Buffer placement used by the models (shared; both threads walk it).
inline constexpr Addr kBufA = 0x100000;
inline constexpr Addr kBufB = 0x600000;

}  // namespace armbar::simprog
