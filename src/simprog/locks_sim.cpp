#include "simprog/locks_sim.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"

namespace armbar::simprog {

using namespace sim;

namespace {

// Shared memory layout.
constexpr Addr kNext = 0x1000;       // ticket dispenser
constexpr Addr kServing = 0x2000;    // now-serving
constexpr Addr kCounter = 0x3000;    // global CS counter (correctness check)
constexpr Addr kCsLines = 0x3040;    // RMW lines follow the counter
constexpr Addr kRoLines = 0x5000;    // read-only traversal lines
constexpr Addr kReqBase = 0x20000;   // FFWD request slots, 128B apart
constexpr Addr kRespBase = 0x30000;  // FFWD response slots, 128B apart
constexpr Addr kServed = 0x40000;    // server-private served[] (8B each)
constexpr Addr kTxState = 0x41000;   // server-private pilot tx state (32B)
constexpr Addr kRxState = 0x50000;   // client-private pilot rx state (32B)
constexpr Addr kHashPool = 0x60000;  // 64 shared read-only seeds
constexpr Addr kTail = 0x70000;      // CC-Synch tail pointer
constexpr Addr kNodes = 0x80000;     // CC-Synch nodes, 192B apart
constexpr Addr kCnaTail = 0x74000;   // CNA tail pointer
constexpr Addr kCnaNodes = 0x90000;  // CNA nodes, 128B apart
constexpr Addr kPrivBase = 0x100000; // per-core private counters
constexpr std::uint32_t kPoolSize = 64;

void emit_choice(Asm& a, OrderChoice c) {
  switch (c) {
    case OrderChoice::kDmbFull: a.dmb_full(); break;
    case OrderChoice::kDmbSt: a.dmb_st(); break;
    case OrderChoice::kDmbLd: a.dmb_ld(); break;
    case OrderChoice::kDsbFull: a.dsb_full(); break;
    case OrderChoice::kDsbSt: a.dsb_st(); break;
    case OrderChoice::kDsbLd: a.dsb_ld(); break;
    case OrderChoice::kIsb: a.isb(); break;
    case OrderChoice::kCtrlIsb: a.isb(); break;  // after the bogus branch
    default: break;
  }
}

// Critical-section body: RMW `cs_lines` shared lines starting at kCsLines,
// walk `ro` read-only lines, then counter++ (result in `ret_reg`). Scratch
// registers: X29/X30 ONLY — callers keep live state in X10-X28.
void emit_cs(Asm& a, std::uint32_t cs_lines, std::uint32_t ro, Reg ret_reg) {
  a.movi(X29, kCounter);
  for (std::uint32_t j = 0; j < cs_lines; ++j) {
    a.ldr(X30, X29, static_cast<std::int64_t>(kCsLines - kCounter + j * 64));
    a.addi(X30, X30, 1);
    a.str(X30, X29, static_cast<std::int64_t>(kCsLines - kCounter + j * 64));
  }
  if (ro > 0) {
    // Read-only walk (models list traversal); nothing is optimized away in
    // the simulator, so plain loads suffice.
    a.movi(X29, kRoLines);
    for (std::uint32_t j = 0; j < ro; ++j)
      a.ldr(X30, X29, static_cast<std::int64_t>(j * 64));
    a.movi(X29, kCounter);
  }
  a.ldr(ret_reg, X29, 0);
  a.addi(ret_reg, ret_reg, 1);
  a.str(ret_reg, X29, 0);
}

// ---------------- ticket lock ----------------

Program make_ticket_program(const LockWorkload& w, OrderChoice release) {
  Asm a;
  // X0=next, X1=serving, X3=private counter addr (set per core), X21=iters.
  a.movi(X0, kNext).movi(X1, kServing);
  a.movi(X20, 0);
  a.label("loop");
  a.label("retry");
  a.ldxr(X5, X0);
  a.addi(X6, X5, 1);
  a.stxr(X7, X6, X0);
  a.cbnz(X7, "retry");
  a.label("spin");
  a.ldr(X8, X1, 0);
  a.cmp(X8, X5);
  a.beq("got");
  a.wfe();
  a.b("spin");
  a.label("got");
  a.dmb_ld();                         // acquire (Table 3: load -> any)
  emit_cs(a, w.cs_lines, w.cs_ro_lines, X9);
  // Private (local) per-thread counter, as in the paper's ticket bench.
  a.ldr(X10, X3, 0);
  a.addi(X10, X10, 1);
  a.str(X10, X3, 0);
  emit_choice(a, release);            // unlock barrier under test
  a.addi(X8, X5, 1);
  a.str(X8, X1, 0);                   // now-serving++
  a.nops(w.interval_nops);
  a.addi(X20, X20, 1);
  a.cmpi(X20, w.iters);
  a.blt("loop");
  a.halt();
  return a.take("ticket/" + to_string(release));
}

// ---------------- FFWD (Algorithm 5 / 6) ----------------

Program make_ffwd_server(const LockWorkload& w, const FfwdChoice& c) {
  const std::uint64_t target =
      static_cast<std::uint64_t>(w.threads) * w.iters;
  Asm a;
  a.movi(X0, kReqBase).movi(X1, kRespBase).movi(X2, kServed);
  a.movi(X4, kHashPool).movi(X5, kTxState);
  a.movi(X19, w.threads);
  a.movi(X27, 0);                     // total served
  a.label("outer");
  a.movi(X10, 0);                     // client index
  a.label("client");
  a.lsli(X12, X10, 7);
  a.add(X11, X0, X12);                // req slot
  if (c.request_barrier == OrderChoice::kLdar) {
    a.ldar(X13, X11, 0);              // line 1 read with acquire
  } else {
    a.ldr(X13, X11, 0);
  }
  a.lsli(X15, X10, 3);
  a.add(X14, X2, X15);
  a.ldr(X16, X14, 0);                 // served[i]
  a.cmp(X13, X16);
  a.beq("next");
  a.str(X13, X14, 0);                 // served[i] = seq (line 3)
  switch (c.request_barrier) {        // line 4
    case OrderChoice::kLdar:
    case OrderChoice::kNone:
      break;
    case OrderChoice::kAddrDep: {
      // Bogus address dependency folded into the arg load below.
      a.eor(X17, X13, X13);
      a.add(X11, X11, X17);
      break;
    }
    case OrderChoice::kCtrlIsb:
      a.eor(X17, X13, X13);
      a.cbnz(X17, "dep_tgt");
      a.label("dep_tgt");
      a.isb();
      break;
    default:
      emit_choice(a, c.request_barrier);
      break;
  }
  a.ldr(X17, X11, 8);                 // arg (line 5/6 input)
  emit_cs(a, w.cs_lines, w.cs_ro_lines, X18);  // criticalSection -> X18
  a.add(X21, X1, X12);                // resp slot
  if (!c.pilot) {
    a.str(X18, X21, 8);               // resp->ret (line 6)
    emit_choice(a, c.response_barrier);  // line 7
    a.str(X13, X21, 0);               // resp flag = seq (line 8)
  } else {
    // Algorithm 6: shuffle the return value and piggyback it.
    a.lsli(X22, X10, 5);
    a.add(X22, X5, X22);              // tx state: [0] old, [8] flag, [16] cnt
    a.ldr(X23, X22, 16);              // cnt
    a.andi(X24, X23, kPoolSize - 1);
    a.lsli(X24, X24, 3);
    a.ldr_idx(X25, X4, X24);          // seed
    a.addi(X23, X23, 1);
    a.str(X23, X22, 16);
    a.eor(X26, X18, X25);             // shuffled ret
    a.ldr(X24, X22, 0);               // old_data
    a.cmp(X26, X24);
    a.beq("collide");
    a.str(X26, X21, 0);               // data word (one atomic store)
    a.str(X26, X22, 0);
    a.b("responded");
    a.label("collide");
    a.ldr(X24, X22, 8);
    a.eori(X24, X24, 1);
    a.str(X24, X22, 8);
    a.str(X24, X21, 8);               // flag word fallback
    a.label("responded");
  }
  a.addi(X27, X27, 1);
  a.label("next");
  a.addi(X10, X10, 1);
  a.cmp(X10, X19);
  a.blt("client");
  a.movi(X28, static_cast<std::int64_t>(target));
  a.cmp(X27, X28);
  a.blt("outer");
  a.halt();
  return a.take("ffwd-server");
}

Program make_ffwd_client(const LockWorkload& w, const FfwdChoice& c) {
  // Per-core registers set by the harness:
  //   X0 = my req slot, X1 = my resp slot, X5 = my rx state (pilot).
  Asm a;
  a.movi(X4, kHashPool);
  a.movi(X7, 0);                      // request sequence
  a.movi(X20, 0);
  a.label("loop");
  a.str(X20, X0, 8);                  // arg
  a.dmb_st();                         // arg before seq (client side, fixed)
  a.addi(X7, X7, 1);
  a.str(X7, X0, 0);                   // req_seq
  if (!c.pilot) {
    a.label("spin");
    a.ldr(X8, X1, 0);
    a.cmp(X8, X7);
    a.beq("got");
    a.wfe();
    a.b("spin");
    a.label("got");
    a.dmb_ld();
    a.ldr(X9, X1, 8);                 // ret
  } else {
    a.label("poll");
    a.ldr(X8, X1, 0);                 // data word
    a.ldr(X9, X5, 0);                 // rx old_data
    a.cmp(X8, X9);
    a.bne("gotd");
    a.ldr(X10, X1, 8);                // flag word
    a.ldr(X11, X5, 8);                // rx old_flag
    a.cmp(X10, X11);
    a.bne("gotf");
    a.b("poll");
    a.label("gotf");
    a.str(X10, X5, 8);
    a.mov(X8, X9);
    a.b("val");
    a.label("gotd");
    a.str(X8, X5, 0);
    a.label("val");
    a.ldr(X12, X5, 16);               // rx cnt
    a.andi(X13, X12, kPoolSize - 1);
    a.lsli(X13, X13, 3);
    a.ldr_idx(X14, X4, X13);
    a.addi(X12, X12, 1);
    a.str(X12, X5, 16);
    a.eor(X9, X8, X14);               // ret
  }
  a.nops(w.interval_nops);
  a.addi(X20, X20, 1);
  a.cmpi(X20, w.iters);
  a.blt("loop");
  a.halt();
  return a.take("ffwd-client");
}

// ---------------- CNA (compact NUMA-aware MCS) ----------------
//
// Node layout (128B, 2 lines):
//   [0]  next        [8]  socket
//   [64] grant       [72] sec_head   [80] sec_tail   [88] streak
//
// The lock holder's node carries the secondary-queue state; on handoff the
// unlocker writes the successor's [72..88] before granting [64], so the
// release edge under test orders the whole queue-state transfer. Remote
// waiters detached onto the secondary queue keep spinning on their own
// grant word and are spliced back in front of the main queue when the
// local-handoff streak reaches the cap (or no local waiter remains).
Program make_cna_program(const LockWorkload& w, const CnaChoice& c) {
  // Per-core registers set by the harness:
  //   X1 = my node address, X2 = my socket id.
  Asm a;
  a.movi(X0, kCnaTail);
  a.movi(X22, c.local_handoff_cap);
  a.movi(X20, 0);
  a.label("loop");
  // Re-initialize my node; it is unreferenced between iterations (the
  // previous unlock either swung the tail off it or handed it to a linked
  // successor, so enqueuers never touch it again).
  a.str(XZR, X1, 0);                  // next = 0
  a.str(X2, X1, 8);                   // socket
  a.str(XZR, X1, 64);                 // grant = 0
  a.str(XZR, X1, 72);                 // sec_head (holder state if fast path)
  a.str(XZR, X1, 80);                 // sec_tail
  a.str(XZR, X1, 88);                 // streak
  a.dmb_st();                         // node init before it enters the queue
  a.swp(X6, X1, X0);                  // X6 = predecessor (0: uncontended)
  a.cbz(X6, "locked");
  a.str(X1, X6, 0);                   // pred->next = me
  a.label("spin");
  if (c.acquire_barrier == OrderChoice::kLdar) {
    a.ldar(X7, X1, 64);
  } else {
    a.ldr(X7, X1, 64);
  }
  a.cbnz(X7, "got");
  a.wfe();
  a.b("spin");
  a.label("got");
  if (c.acquire_barrier != OrderChoice::kLdar)
    emit_choice(a, c.acquire_barrier);  // acquire edge under test
  a.label("locked");
  emit_cs(a, w.cs_lines, w.cs_ro_lines, X9);
  // ---- unlock ----
  a.ldr(X13, X1, 0);                  // succ
  a.ldr(X10, X1, 72);                 // sec_head
  a.ldr(X11, X1, 80);                 // sec_tail
  a.ldr(X12, X1, 88);                 // streak
  a.cbnz(X13, "have_succ");
  a.cbnz(X10, "tail_sec");            // no succ but parked remote waiters
  a.label("cas0");                    // try tail: me -> 0
  a.ldxr(X14, X0);
  a.cmp(X14, X1);
  a.bne("wait_link");                 // an enqueuer swapped past me
  a.stxr(X15, XZR, X0);
  a.cbnz(X15, "cas0");
  a.b("after");
  a.label("tail_sec");                // try tail: me -> sec_tail
  a.ldxr(X14, X0);
  a.cmp(X14, X1);
  a.bne("wait_link");
  a.stxr(X15, X11, X0);
  a.cbnz(X15, "tail_sec");
  a.mov(X16, X10);                    // secondary becomes the main queue
  a.movi(X10, 0);
  a.movi(X11, 0);
  a.movi(X12, 0);
  a.b("grant");
  a.label("wait_link");
  a.ldr(X13, X1, 0);
  a.cbz(X13, "wait_link");
  a.label("have_succ");
  a.dmb_ld();                         // succ's fields after its link store
  if (!c.numa_aware) {
    // Plain MCS baseline: strict FIFO handoff, no secondary queue.
    a.mov(X16, X13);
    a.movi(X10, 0);
    a.movi(X11, 0);
    a.movi(X12, 0);
    a.b("grant");
  } else {
    a.cmp(X12, X22);
    a.blt("scan");
    a.cbz(X10, "scan");               // streak capped but nothing parked
    a.str(X13, X11, 0);               // splice: sec_tail->next = succ
    a.mov(X16, X10);                  // fairness handoff to sec_head
    a.movi(X10, 0);
    a.movi(X11, 0);
    a.movi(X12, 0);
    a.b("grant");
    a.label("scan");                  // first same-socket main-queue waiter
    a.mov(X17, X13);                  // cur = succ
    a.movi(X18, 0);                   // prev = 0
    a.label("scanloop");
    a.ldr(X19, X17, 8);               // cur->socket
    a.cmp(X19, X2);
    a.beq("found");
    a.ldr(X25, X17, 0);               // cur->next (0: end, or mid-link)
    a.cbz(X25, "nolocal");
    a.mov(X18, X17);
    a.mov(X17, X25);
    a.b("scanloop");
    a.label("found");
    a.cmp(X17, X13);
    a.bne("detach");
    a.addi(X12, X12, 1);              // succ is local: plain handoff
    a.mov(X16, X13);
    a.b("grant");
    a.label("detach");                // park [succ .. prev] on the secondary
    a.str(XZR, X18, 0);               // prev->next = 0 (cut from main)
    a.cbz(X10, "fresh_sec");
    a.str(X13, X11, 0);               // append: sec_tail->next = succ
    a.b("setsec");
    a.label("fresh_sec");
    a.mov(X10, X13);                  // sec_head = succ
    a.label("setsec");
    a.mov(X11, X18);                  // sec_tail = prev
    a.addi(X12, X12, 1);
    a.mov(X16, X17);                  // handoff to the local waiter
    a.b("grant");
    a.label("nolocal");
    a.cbz(X10, "pass_succ");
    a.str(X13, X11, 0);               // splice secondary in front of succ
    a.mov(X16, X10);
    a.movi(X10, 0);
    a.movi(X11, 0);
    a.movi(X12, 0);
    a.b("grant");
    a.label("pass_succ");
    a.mov(X16, X13);                  // no locals, nothing parked
    a.movi(X12, 0);
  }
  a.label("grant");                   // X16 = next holder; X10/X11/X12 state
  a.str(X10, X16, 72);                // transfer the secondary queue
  a.str(X11, X16, 80);
  a.str(X12, X16, 88);
  if (c.release_barrier == OrderChoice::kStlr) {
    a.movi(X29, 1);
    a.stlr(X29, X16, 64);
  } else {
    emit_choice(a, c.release_barrier);  // release edge under test
    a.movi(X29, 1);
    a.str(X29, X16, 64);
  }
  a.label("after");
  a.nops(w.interval_nops);
  a.addi(X20, X20, 1);
  a.cmpi(X20, w.iters);
  a.blt("loop");
  a.halt();
  return a.take(std::string("cna/") +
                (c.numa_aware ? "numa" : "mcs") + "/" +
                to_string(c.release_barrier));
}

// ---------------- CC-Synch ("DSynch") ----------------
//
// Node layout (192B, 3 lines):
//   [0]  next        [8]  arg
//   [64] wait|pdata  [72] completed|pflag  [80] ret|token
//   [96] tx_old      [104] tx_flag         [112] tx_cnt
//   [128] rx_old     [136] rx_flag         [144] token_seen  [152] rx_cnt
Program make_ccsynch_program(const LockWorkload& w, const CcSynchChoice& c) {
  // Per-core register: X1 = my initial node address. X0 = tail addr.
  Asm a;
  a.movi(X0, kTail).movi(X4, kHashPool);
  a.movi(X22, c.combine_budget);
  a.movi(X20, 0);
  a.label("loop");
  // Prepare the fresh node (X1).
  a.str(XZR, X1, 0);                  // next = 0
  if (!c.pilot) {
    a.movi(X5, 1);
    a.str(X5, X1, 64);                // wait = 1
    a.str(XZR, X1, 72);               // completed = 0
  }
  a.dmb_st();                         // node init before it enters the queue
  a.swp(X6, X1, X0);                  // X6 = previous tail (my announce node)
  a.str(X20, X6, 8);                  // arg
  a.dmb_st();                         // announce before linking
  a.str(X1, X6, 0);                   // next = fresh
  a.mov(X1, X6);                      // recycle: the received node is mine now

  if (!c.pilot) {
    a.label("spin");
    a.ldr(X7, X6, 64);
    a.cbz(X7, "awake");
    a.wfe();
    a.b("spin");
    a.label("awake");
    a.dmb_ld();
    a.ldr(X8, X6, 72);                // completed?
    a.cbz(X8, "combine");
    a.ldr(X24, X6, 80);               // ret
    a.b("after");
  } else {
    a.label("poll");
    a.ldr(X7, X6, 64);                // pilot data
    a.ldr(X8, X6, 128);               // rx_old
    a.cmp(X7, X8);
    a.bne("pgd");
    a.ldr(X9, X6, 72);                // pilot flag
    a.ldr(X10, X6, 136);              // rx_flag
    a.cmp(X9, X10);
    a.bne("pgf");
    a.ldr(X11, X6, 80);               // combiner token
    a.ldr(X12, X6, 144);              // token_seen
    a.cmp(X11, X12);
    a.bne("pcomb");
    a.b("poll");
    a.label("pgf");
    a.str(X9, X6, 136);
    a.mov(X7, X8);
    a.b("pval");
    a.label("pgd");
    a.str(X7, X6, 128);
    a.label("pval");
    a.ldr(X13, X6, 152);              // rx_cnt
    a.andi(X14, X13, kPoolSize - 1);
    a.lsli(X14, X14, 3);
    a.ldr_idx(X15, X4, X14);
    a.addi(X13, X13, 1);
    a.str(X13, X6, 152);
    a.eor(X24, X7, X15);              // ret
    a.b("after");
    a.label("pcomb");
    a.str(X11, X6, 144);              // consume the token
    a.dmb_ld();
  }

  // ---- combiner ----
  a.label("combine");
  a.mov(X15, X6);                     // my announced node (served first)
  a.movi(X11, 0);                     // served count
  a.label("comb");
  a.ldr(X12, X6, 0);                  // next
  a.cbz(X12, "handoff");
  a.cmp(X11, X22);
  a.bge("handoff");
  a.dmb_ld();                         // announce fields after next != 0
  a.ldr(X17, X6, 8);                  // arg (kept live via the sum below)
  emit_cs(a, w.cs_lines, w.cs_ro_lines, X18);
  a.addi(X11, X11, 1);
  a.cmp(X6, X15);
  a.bne("respond");
  a.mov(X24, X18);                    // my own request: result stays local
  a.b("advance");
  a.label("respond");
  if (!c.pilot) {
    a.str(X18, X6, 80);               // ret
    a.movi(X16, 1);
    a.str(X16, X6, 72);               // completed = 1
    emit_choice(a, c.response_barrier);  // the Fig 7 hotspot barrier
    a.str(XZR, X6, 64);               // wait = 0
  } else {
    a.ldr(X16, X6, 112);              // tx_cnt
    a.andi(X19, X16, kPoolSize - 1);
    a.lsli(X19, X19, 3);
    a.ldr_idx(X21, X4, X19);          // seed
    a.addi(X16, X16, 1);
    a.str(X16, X6, 112);
    a.eor(X23, X18, X21);             // shuffled
    a.ldr(X19, X6, 96);               // tx_old
    a.cmp(X23, X19);
    a.beq("ccollide");
    a.str(X23, X6, 64);               // data word: served + value in one store
    a.str(X23, X6, 96);
    a.b("advance");
    a.label("ccollide");
    a.ldr(X19, X6, 104);
    a.eori(X19, X19, 1);
    a.str(X19, X6, 104);
    a.str(X19, X6, 72);               // flag word fallback
  }
  a.label("advance");
  a.mov(X6, X12);
  a.b("comb");
  a.label("handoff");
  if (!c.pilot) {
    a.dmb_st();
    a.str(XZR, X6, 64);               // wake the owner as the next combiner
  } else {
    a.ldr(X16, X6, 80);
    a.addi(X16, X16, 1);
    a.dmb_st();
    a.str(X16, X6, 80);               // bump the combiner token
  }

  a.label("after");
  a.nops(w.interval_nops);
  a.addi(X20, X20, 1);
  a.cmpi(X20, w.iters);
  a.blt("loop");
  a.halt();
  return a.take("ccsynch");
}

// ---------------- runners ----------------

void fill_pool(Machine& m) {
  Rng rng(0x9e3779b9);
  for (std::uint32_t i = 0; i < kPoolSize; ++i) {
    std::uint64_t s;
    do {
      s = rng.next();
    } while (s == 0);
    m.mem().poke(kHashPool + i * 8, s);
  }
}

LockResult finish(const sim::PlatformSpec& spec, Machine& m, RunResult& r,
                  const LockWorkload& w) {
  LockResult res;
  res.cycles = r.cycles;
  for (const auto& cs : r.cores) res.barriers += cs.barriers;
  if (!r.completed) return res;  // correct=false flags the timeout
  const std::uint64_t total = static_cast<std::uint64_t>(w.threads) * w.iters;
  res.acq_per_sec = RunResult::throughput_per_sec(total, r.cycles, spec.freq_ghz);
  res.correct = m.mem().peek(kCounter) == total;
  return res;
}

}  // namespace

LockResult run_ticket(const sim::PlatformSpec& spec, const LockWorkload& w,
                      OrderChoice release_barrier) {
  ARMBAR_CHECK(w.threads >= 1 && w.threads <= spec.total_cores());
  Machine m(spec, 8u << 20);
  Program p = make_ticket_program(w, release_barrier);
  for (CoreId c = 0; c < w.threads; ++c) {
    m.load_program(c, p);
    m.core(c).set_reg(X3, kPrivBase + c * 64);
  }
  auto r = m.run(sim::RunConfig{.max_cycles = 4'000'000'000ULL});
  return finish(spec, m, r, w);
}

LockResult run_ffwd(const sim::PlatformSpec& spec, const LockWorkload& w,
                    const FfwdChoice& choice) {
  ARMBAR_CHECK(w.threads + 1 <= spec.total_cores());
  Machine m(spec, 8u << 20);
  fill_pool(m);
  Program server = make_ffwd_server(w, choice);
  Program client = make_ffwd_client(w, choice);
  m.load_program(0, server);  // core 0 is the dedicated server
  for (CoreId i = 0; i < w.threads; ++i) {
    const CoreId c = i + 1;
    m.load_program(c, client);
    m.core(c).set_reg(X0, kReqBase + i * 128);
    m.core(c).set_reg(X1, kRespBase + i * 128);
    m.core(c).set_reg(X5, kRxState + i * 32);
  }
  auto r = m.run(sim::RunConfig{.max_cycles = 4'000'000'000ULL});
  return finish(spec, m, r, w);
}

LockResult run_cna(const sim::PlatformSpec& spec, const LockWorkload& w,
                   const CnaChoice& choice) {
  ARMBAR_CHECK(w.threads >= 1 && w.threads <= spec.total_cores());
  Machine m(spec, 8u << 20);
  Program p = make_cna_program(w, choice);
  for (CoreId c = 0; c < w.threads; ++c) {
    m.load_program(c, p);
    m.core(c).set_reg(X1, kCnaNodes + c * 128);
    m.core(c).set_reg(X2, spec.node_of(c));
  }
  auto r = m.run(sim::RunConfig{.max_cycles = 4'000'000'000ULL});
  return finish(spec, m, r, w);
}

LockResult run_ccsynch(const sim::PlatformSpec& spec, const LockWorkload& w,
                       const CcSynchChoice& choice) {
  ARMBAR_CHECK(w.threads <= spec.total_cores());
  Machine m(spec, 8u << 20);
  fill_pool(m);
  // Dummy node: owner-less; its first owner combines immediately.
  const Addr dummy = kNodes;
  m.mem().poke(kTail, dummy);
  if (choice.pilot) {
    m.mem().poke(dummy + 80, 1);  // token armed
  }                                // plain: wait word already 0
  Program p = make_ccsynch_program(w, choice);
  for (CoreId c = 0; c < w.threads; ++c) {
    m.load_program(c, p);
    m.core(c).set_reg(X1, kNodes + (c + 1) * 192);  // node 0 is the dummy
  }
  auto r = m.run(sim::RunConfig{.max_cycles = 4'000'000'000ULL});
  return finish(spec, m, r, w);
}

}  // namespace armbar::simprog
