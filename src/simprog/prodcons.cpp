#include "simprog/prodcons.hpp"

#include "common/check.hpp"
#include "common/rng.hpp"

namespace armbar::simprog {

using namespace sim;

namespace {

// Shared memory layout.
constexpr Addr kProdCnt = 0x1000;
constexpr Addr kConsCnt = 0x2000;
constexpr Addr kBuffer = 0x10000;     // slots of 64B (or batch stride)
constexpr Addr kHashPool = 0x60000;   // 64 read-only seeds
constexpr Addr kProdState = 0x70000;  // producer-private pilot state
constexpr Addr kConsState = 0x80000;  // consumer-private pilot state
constexpr std::uint32_t kSlots = 8;   // ring capacity (power of two)
constexpr std::uint32_t kPoolSize = 64;

void emit_choice(Asm& a, OrderChoice c) {
  switch (c) {
    case OrderChoice::kDmbFull: a.dmb_full(); break;
    case OrderChoice::kDmbSt: a.dmb_st(); break;
    case OrderChoice::kDmbLd: a.dmb_ld(); break;
    case OrderChoice::kDsbFull: a.dsb_full(); break;
    case OrderChoice::kDsbSt: a.dsb_st(); break;
    case OrderChoice::kDsbLd: a.dsb_ld(); break;
    case OrderChoice::kIsb: a.isb(); break;
    default: break;
  }
}

// Register plan shared by the generators:
//  X0 prodCnt addr   X1 consCnt addr   X2 buffer base  X3 hash pool base
//  X10/X11 private state bases         X19 ring capacity
//  X20 local counter X21 message target X25 checksum accumulator

void emit_slot_addr(Asm& a, Reg idx_src, Reg out, std::uint32_t stride) {
  // out = buffer + (idx & (kSlots-1)) * stride
  a.andi(X7, idx_src, kSlots - 1);
  a.movi(X8, stride);
  a.mul(X7, X7, X8);
  a.add(out, X2, X7);
}

Program make_producer(const ProdConsCombo& combo, std::uint32_t msgs,
                      std::uint32_t work) {
  Asm a;
  a.movi(X0, kProdCnt).movi(X1, kConsCnt).movi(X2, kBuffer);
  a.movi(X19, kSlots).movi(X20, 0);
  a.movi(X5, 0);                             // cached consCnt snapshot
  a.label("loop");
  // Wait for a free slot (Algorithm 2 l.1-2). The consumer counter is
  // cached and only reloaded when the ring looks full — the standard ring
  // optimization, which also keeps the line-3 barrier off the miss path.
  a.sub(X6, X20, X5);
  a.cmp(X6, X19);
  a.blt("have");
  a.label("wait");
  a.ldr(X5, X1, 0);
  a.sub(X6, X20, X5);
  a.cmp(X6, X19);
  a.blt("have");
  a.b("wait");
  a.label("have");
  emit_choice(a, combo.avail);               // line 3
  emit_slot_addr(a, X20, X9, 64);
  a.nops(work);                              // produceMsg()
  a.str(X20, X9, 0);                         // line 4: fill the slot (RMR)
  if (combo.publish != OrderChoice::kStlr && combo.publish != OrderChoice::kNone)
    emit_choice(a, combo.publish);           // line 5
  a.addi(X20, X20, 1);
  if (combo.publish == OrderChoice::kStlr) {
    a.stlr(X20, X0, 0);                      // line 6 as a store-release
  } else {
    a.str(X20, X0, 0);                       // line 6
  }
  a.cmpi(X20, msgs);
  a.blt("loop");
  a.halt();
  return a.take("prodcons-producer/" + combo.name());
}

Program make_consumer(bool barriers, std::uint32_t msgs) {
  Asm a;
  a.movi(X0, kProdCnt).movi(X1, kConsCnt).movi(X2, kBuffer);
  a.movi(X20, 0).movi(X25, 0);
  a.movi(X5, 0);                             // cached prodCnt snapshot
  a.label("loop");
  a.cmp(X5, X20);
  a.bgt("have");
  a.label("wait");
  a.ldr(X5, X0, 0);
  a.cmp(X5, X20);
  a.bgt("have");
  a.b("wait");
  a.label("have");
  if (barriers) a.dmb_ld();                  // counter read before data read
  emit_slot_addr(a, X20, X9, 64);
  a.ldr(X6, X9, 0);                          // read the message
  a.add(X25, X25, X6);                       // checksum
  a.addi(X20, X20, 1);
  if (barriers) {
    // Data read before the slot release: a (free) bogus data dependency —
    // the paper's consumer uses "light-weighted load barriers or
    // dependencies" for exactly this edge.
    a.eor(X7, X6, X6);
    a.add(X7, X20, X7);
    a.str(X7, X1, 0);                        // consCnt++ (dependency-carrying)
  } else {
    a.str(X20, X1, 0);                       // consCnt++
  }
  a.cmpi(X20, msgs);
  a.blt("loop");
  a.halt();
  return a.take("prodcons-consumer");
}

// ---- Pilot variants (Algorithms 3 & 4 in micro-ISA) ----

// Producer: flow control stays (counter + line-3 barrier); the slot write
// becomes a pilot send; prodCnt++ keeps the ring bounded but carries no
// ordering duty.
Program make_pilot_producer(std::uint32_t msgs, std::uint32_t work) {
  Asm a;
  a.movi(X0, kProdCnt).movi(X1, kConsCnt).movi(X2, kBuffer);
  a.movi(X3, kHashPool).movi(X10, kProdState).movi(X19, kSlots);
  a.movi(X20, 0);
  a.movi(X5, 0);                             // cached consCnt snapshot
  a.label("loop");
  a.sub(X6, X20, X5);
  a.cmp(X6, X19);
  a.blt("have");
  a.label("wait");
  a.ldr(X5, X1, 0);
  a.sub(X6, X20, X5);
  a.cmp(X6, X19);
  a.blt("have");
  a.b("wait");
  a.label("have");
  a.dmb_ld();                                // the flow-control barrier stays
  emit_slot_addr(a, X20, X9, 64);
  a.nops(work);                              // produceMsg()
  // seed = pool[cnt % kPoolSize]
  a.andi(X12, X20, kPoolSize - 1);
  a.lsli(X12, X12, 3);
  a.ldr_idx(X13, X3, X12);
  a.eor(X16, X20, X13);                      // shuffled = msg ^ seed (l.1)
  // per-slot sender state: old_data at X10+slot*16, flag at +8
  a.andi(X7, X20, kSlots - 1);
  a.lsli(X7, X7, 4);
  a.add(X14, X10, X7);
  a.ldr(X6, X14, 0);                         // old_data
  a.cmp(X16, X6);
  a.beq("collide");
  a.str(X16, X9, 0);                         // data <- shuffled (l.5)
  a.str(X16, X14, 0);                        // old_data <- shuffled (l.6)
  a.b("sent");
  a.label("collide");                        // l.2-3: toggle the flag word
  a.ldr(X8, X14, 8);
  a.eori(X8, X8, 1);
  a.str(X8, X14, 8);
  a.str(X8, X9, 8);
  a.label("sent");
  a.addi(X20, X20, 1);
  a.str(X20, X0, 0);                         // prodCnt++ (flow control only)
  a.cmpi(X20, msgs);
  a.blt("loop");
  a.halt();
  return a.take("prodcons-pilot-producer");
}

// Consumer: detects arrival from the slot itself (Algorithm 4); no load
// barrier needed. consCnt++ keeps flow control.
Program make_pilot_consumer(std::uint32_t msgs) {
  Asm a;
  a.movi(X0, kProdCnt).movi(X1, kConsCnt).movi(X2, kBuffer);
  a.movi(X3, kHashPool).movi(X11, kConsState);
  a.movi(X20, 0).movi(X25, 0);
  a.label("loop");
  emit_slot_addr(a, X20, X9, 64);
  a.andi(X7, X20, kSlots - 1);
  a.lsli(X7, X7, 4);
  a.add(X14, X11, X7);                       // per-slot receiver state
  a.label("poll");
  a.ldr(X5, X9, 0);                          // slot data word
  a.ldr(X6, X14, 0);                         // old_data (private)
  a.cmp(X5, X6);
  a.bne("got_data");
  a.ldr(X8, X9, 8);                          // slot flag word
  a.ldr(X12, X14, 8);                        // old_flag
  a.cmp(X8, X12);
  a.bne("got_flag");
  a.b("poll");
  a.label("got_flag");                       // l.2-4: same word again
  a.str(X8, X14, 8);
  a.mov(X5, X6);
  a.b("fin");
  a.label("got_data");                       // l.1: new data word
  a.str(X5, X14, 0);
  a.label("fin");
  // value = data ^ pool[cnt % kPoolSize] (l.6)
  a.andi(X12, X20, kPoolSize - 1);
  a.lsli(X12, X12, 3);
  a.ldr_idx(X13, X3, X12);
  a.eor(X15, X5, X13);
  a.add(X25, X25, X15);                      // checksum
  a.addi(X20, X20, 1);
  a.str(X20, X1, 0);                         // consCnt++
  a.cmpi(X20, msgs);
  a.blt("loop");
  a.halt();
  return a.take("prodcons-pilot-consumer");
}

// ---- batched messages (Fig 6c) ----

Program make_batch_producer(bool pilot, std::uint32_t words, std::uint32_t msgs,
                            std::uint32_t stride) {
  Asm a;
  a.movi(X0, kProdCnt).movi(X1, kConsCnt).movi(X2, kBuffer);
  a.movi(X3, kHashPool).movi(X10, kProdState).movi(X19, kSlots);
  a.movi(X20, 0);
  a.movi(X5, 0);                             // cached consCnt snapshot
  a.label("loop");
  a.sub(X6, X20, X5);
  a.cmp(X6, X19);
  a.blt("have");
  a.label("wait");
  a.ldr(X5, X1, 0);
  a.sub(X6, X20, X5);
  a.cmp(X6, X19);
  a.blt("have");
  a.b("wait");
  a.label("have");
  a.dmb_ld();
  emit_slot_addr(a, X20, X9, stride);
  if (!pilot) {
    // Baseline DMB ld - DMB st: write all slices, one barrier, publish.
    for (std::uint32_t w = 0; w < words; ++w) {
      a.eori(X6, X20, w);                   // slice value = msg ^ w
      a.str(X6, X9, w * 8);
    }
    a.dmb_st();
    a.addi(X20, X20, 1);
    a.str(X20, X0, 0);
  } else {
    // Pilot per slice: data words [0, 8w), flag words [8*words, 16*words).
    // Sender state per (slot, slice): old at X10 + (slot*words + w)*16.
    // Loop invariants (seed, state base) hoisted out of the slice loop.
    a.andi(X12, X20, kPoolSize - 1);
    a.lsli(X12, X12, 3);
    a.ldr_idx(X13, X3, X12);                // seed for this message
    a.andi(X7, X20, kSlots - 1);
    a.movi(X8, words * 16);
    a.mul(X7, X7, X8);
    a.add(X14, X10, X7);                    // per-slot state base
    for (std::uint32_t w = 0; w < words; ++w) {
      a.eori(X17, X20, w);                  // slice value
      a.eor(X16, X17, X13);                 // shuffled
      a.ldr(X6, X14, w * 16);               // old_data for this slice
      a.cmp(X16, X6);
      a.beq("collide" + std::to_string(w));
      a.str(X16, X9, w * 8);
      a.str(X16, X14, w * 16);
      a.b("sent" + std::to_string(w));
      a.label("collide" + std::to_string(w));
      a.ldr(X8, X14, w * 16 + 8);
      a.eori(X8, X8, 1);
      a.str(X8, X14, w * 16 + 8);
      a.str(X8, X9, 8 * words + w * 8);
      a.label("sent" + std::to_string(w));
    }
    a.addi(X20, X20, 1);
    a.str(X20, X0, 0);
  }
  a.cmpi(X20, msgs);
  a.blt("loop");
  a.halt();
  return a.take(pilot ? "batch-pilot-producer" : "batch-producer");
}

Program make_batch_consumer(bool pilot, std::uint32_t words, std::uint32_t msgs,
                            std::uint32_t stride) {
  Asm a;
  a.movi(X0, kProdCnt).movi(X1, kConsCnt).movi(X2, kBuffer);
  a.movi(X3, kHashPool).movi(X11, kConsState);
  a.movi(X20, 0).movi(X25, 0);
  a.label("loop");
  if (!pilot) {
    a.label("wait");
    a.ldr(X5, X0, 0);
    a.cmp(X5, X20);
    a.bgt("have");
    a.b("wait");
    a.label("have");
    a.dmb_ld();
    emit_slot_addr(a, X20, X9, stride);
    for (std::uint32_t w = 0; w < words; ++w) {
      a.ldr(X6, X9, w * 8);
      a.add(X25, X25, X6);
    }
    a.dmb_ld();
  } else {
    emit_slot_addr(a, X20, X9, stride);
    a.andi(X7, X20, kSlots - 1);
    a.movi(X8, words * 16);
    a.mul(X7, X7, X8);
    a.add(X14, X11, X7);
    // Hoisted: the seed is per-message, shared by every slice.
    a.andi(X12, X20, kPoolSize - 1);
    a.lsli(X12, X12, 3);
    a.ldr_idx(X13, X3, X12);
    for (std::uint32_t w = 0; w < words; ++w) {
      const std::string poll = "poll" + std::to_string(w);
      const std::string gd = "gd" + std::to_string(w);
      const std::string gf = "gf" + std::to_string(w);
      const std::string fin = "fin" + std::to_string(w);
      a.label(poll);
      a.ldr(X5, X9, w * 8);
      a.ldr(X6, X14, w * 16);
      a.cmp(X5, X6);
      a.bne(gd);
      a.ldr(X8, X14, w * 16 + 8);
      a.ldr(X12, X9, 8 * words + w * 8);
      a.cmp(X12, X8);
      a.bne(gf);
      a.b(poll);
      a.label(gf);
      a.str(X12, X14, w * 16 + 8);
      a.mov(X5, X6);
      a.b(fin);
      a.label(gd);
      a.str(X5, X14, w * 16);
      a.label(fin);
      a.eor(X15, X5, X13);
      a.add(X25, X25, X15);
    }
  }
  a.addi(X20, X20, 1);
  a.str(X20, X1, 0);
  a.cmpi(X20, msgs);
  a.blt("loop");
  a.halt();
  return a.take(pilot ? "batch-pilot-consumer" : "batch-consumer");
}

void setup_memory(sim::Machine& m, const sim::PlatformSpec& spec,
                  CoreId prod, CoreId cons) {
  // Hash pool: identical deterministic seeds for both sides.
  Rng rng(0x9e3779b9);
  for (std::uint32_t i = 0; i < kPoolSize; ++i) {
    std::uint64_t s;
    do {
      s = rng.next();
    } while (s == 0);
    m.mem().poke(kHashPool + i * 8, s);
  }
  // NUMA placement: shared state lives on the producer's node.
  m.mem().set_home(0, 1u << 20, spec.node_of(prod));
  (void)cons;
}

ProdConsResult finish(const sim::PlatformSpec& spec, sim::Machine& m,
                      sim::RunResult& r, std::uint32_t msgs, CoreId cons,
                      std::uint64_t expected_checksum) {
  ProdConsResult res;
  ARMBAR_CHECK_MSG(r.completed, "producer-consumer run timed out");
  res.msgs_per_sec =
      sim::RunResult::throughput_per_sec(msgs, r.cycles, spec.freq_ghz);
  res.checksum = m.core(cons).reg(X25);
  res.checksum_ok = res.checksum == expected_checksum;
  return res;
}

}  // namespace

std::string ProdConsCombo::name() const {
  return to_string(avail) + " - " + to_string(publish);
}

ProdConsResult run_prodcons(const sim::PlatformSpec& spec, ProdConsCombo combo,
                            std::uint32_t msgs, std::uint32_t produce_work,
                            CoreId prod, CoreId cons) {
  sim::Machine m(spec, 4u << 20);
  setup_memory(m, spec, prod, cons);
  Program pp = make_producer(combo, msgs, produce_work);
  Program pc = make_consumer(combo.consumer_barriers, msgs);
  m.load_program(prod, pp);
  m.load_program(cons, pc);
  auto r = m.run(sim::RunConfig{.max_cycles = 2'000'000'000ULL});
  const std::uint64_t expect =
      static_cast<std::uint64_t>(msgs) * (msgs - 1) / 2;
  return finish(spec, m, r, msgs, cons, expect);
}

ProdConsResult run_prodcons_pilot(const sim::PlatformSpec& spec,
                                  std::uint32_t msgs, std::uint32_t produce_work,
                                  CoreId prod, CoreId cons) {
  sim::Machine m(spec, 4u << 20);
  setup_memory(m, spec, prod, cons);
  Program pp = make_pilot_producer(msgs, produce_work);
  Program pc = make_pilot_consumer(msgs);
  m.load_program(prod, pp);
  m.load_program(cons, pc);
  auto r = m.run(sim::RunConfig{.max_cycles = 2'000'000'000ULL});
  const std::uint64_t expect =
      static_cast<std::uint64_t>(msgs) * (msgs - 1) / 2;
  return finish(spec, m, r, msgs, cons, expect);
}

BatchResult run_batch(const sim::PlatformSpec& spec, std::uint32_t batch_words,
                      std::uint32_t msgs, CoreId prod, CoreId cons) {
  ARMBAR_CHECK(batch_words >= 1 && batch_words <= 32);
  // Slot stride: data (+flags for pilot), rounded up to a line multiple.
  const std::uint32_t stride =
      ((batch_words * 16 + kCacheLineBytes - 1) / kCacheLineBytes) *
      kCacheLineBytes;

  std::uint64_t expect = 0;
  for (std::uint64_t i = 0; i < msgs; ++i)
    for (std::uint32_t w = 0; w < batch_words; ++w) expect += i ^ w;

  BatchResult out;
  {
    sim::Machine m(spec, 4u << 20);
    setup_memory(m, spec, prod, cons);
    Program pp = make_batch_producer(false, batch_words, msgs, stride);
    Program pc = make_batch_consumer(false, batch_words, msgs, stride);
    m.load_program(prod, pp);
    m.load_program(cons, pc);
    auto r = m.run(sim::RunConfig{.max_cycles = 2'000'000'000ULL});
    auto res = finish(spec, m, r, msgs, cons, expect);
    ARMBAR_CHECK_MSG(res.checksum_ok, "batch baseline checksum mismatch");
    out.baseline = res.msgs_per_sec;
  }
  {
    sim::Machine m(spec, 4u << 20);
    setup_memory(m, spec, prod, cons);
    Program pp = make_batch_producer(true, batch_words, msgs, stride);
    Program pc = make_batch_consumer(true, batch_words, msgs, stride);
    m.load_program(prod, pp);
    m.load_program(cons, pc);
    auto r = m.run(sim::RunConfig{.max_cycles = 2'000'000'000ULL});
    auto res = finish(spec, m, r, msgs, cons, expect);
    ARMBAR_CHECK_MSG(res.checksum_ok, "batch pilot checksum mismatch");
    out.pilot = res.msgs_per_sec;
  }
  return out;
}

}  // namespace armbar::simprog
