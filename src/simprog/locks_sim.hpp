// Lock experiments on the simulator (paper §5, Figs 7-8).
//
// Three lock families, all expressed in micro-ISA:
//  * ticket lock — LDXR/STXR fetch-add + WFE spin on now-serving, with the
//    unlock barrier configurable (Fig 7a);
//  * FFWD-style dedicated server (Algorithm 5) with the line-4 and line-7
//    barriers configurable and a Pilot response mode (Algorithm 6);
//  * CC-Synch migratory combiner (the paper's "DSynch" family), with the
//    response barrier configurable and a Pilot response mode.
//
// Critical sections read-modify-write `cs_lines` shared cache lines and
// walk `cs_ro_lines` read-only lines (models list traversal), then update
// a counter; runs are validated by checking the final counter value.
#pragma once

#include <cstdint>

#include "sim/machine.hpp"
#include "simprog/abstract_model.hpp"

namespace armbar::simprog {

struct LockWorkload {
  std::uint32_t threads = 8;       ///< client/competitor cores
  std::uint32_t iters = 200;       ///< acquisitions per thread
  std::uint32_t cs_lines = 1;      ///< shared lines RMW'd in the CS
  std::uint32_t cs_ro_lines = 0;   ///< shared lines only read in the CS
  std::uint32_t interval_nops = 0; ///< nops between two acquisitions
};

struct LockResult {
  double acq_per_sec = 0;   ///< critical sections per second (whole machine)
  bool correct = false;     ///< counter == threads * iters
  Cycle cycles = 0;
  /// Exact machine-wide barrier-instruction count (dmb/dsb/isb retired
  /// across all cores) — barriers/acquisition is the paper's per-variant
  /// cost axis (ISSUE 9 cna_scaling).
  std::uint64_t barriers = 0;
};

/// Ticket lock (Fig 7a). `release_barrier` guards the now-serving store;
/// kNone removes it ("Remove barrier after RMR").
LockResult run_ticket(const sim::PlatformSpec& spec, const LockWorkload& w,
                      OrderChoice release_barrier);

/// FFWD delegation lock (Fig 7b/7c). `request_barrier` = Algorithm 5 line
/// 4, `response_barrier` = line 7 (ignored with pilot). One server core +
/// w.threads client cores.
struct FfwdChoice {
  OrderChoice request_barrier = OrderChoice::kLdar;  // kLdar: seq load is LDAR
  OrderChoice response_barrier = OrderChoice::kDmbSt;
  bool pilot = false;
};
LockResult run_ffwd(const sim::PlatformSpec& spec, const LockWorkload& w,
                    const FfwdChoice& choice);

/// CNA (compact NUMA-aware) queue lock (ISSUE 9): MCS-style queue where
/// the unlocker prefers a same-socket successor, parking remote waiters on
/// a secondary queue carried in the holder's node and splicing them back
/// after `local_handoff_cap` consecutive local handoffs (deterministic
/// long-term fairness). The acquire/release edges on the grant word are
/// configurable so the paper's Table 3 weakenings are measurable:
/// strong = plain spin + dmb ld / dmb ish + plain grant store;
/// weakened = LDAR spin / STLR grant (no standalone dmb on the handoff).
struct CnaChoice {
  OrderChoice acquire_barrier = OrderChoice::kDmbLd;   ///< kLdar: LDAR spin
  OrderChoice release_barrier = OrderChoice::kDmbFull; ///< kStlr: STLR grant
  std::uint32_t local_handoff_cap = 64;
  bool numa_aware = true;  ///< false: plain MCS handoff (scaling baseline)
  static CnaChoice strong() { return {}; }
  static CnaChoice weakened() {
    return {OrderChoice::kLdar, OrderChoice::kStlr, 64, true};
  }
  static CnaChoice mcs() {
    return {OrderChoice::kDmbLd, OrderChoice::kDmbFull, 64, false};
  }
};
LockResult run_cna(const sim::PlatformSpec& spec, const LockWorkload& w,
                   const CnaChoice& choice);

/// CC-Synch combining lock ("DSynch"). `pilot` piggybacks the response.
struct CcSynchChoice {
  OrderChoice response_barrier = OrderChoice::kDmbSt;
  bool pilot = false;
  std::uint32_t combine_budget = 64;
};
LockResult run_ccsynch(const sim::PlatformSpec& spec, const LockWorkload& w,
                       const CcSynchChoice& choice);

}  // namespace armbar::simprog
