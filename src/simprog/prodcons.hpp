// Producer-consumer model on the simulator (paper §4, Fig 6a-c).
//
// The producer is Algorithm 2 with both barrier sites configurable; the
// consumer uses light load barriers throughout (the paper fixes the
// consumer and varies the producer). Pilot variants implement Algorithms
// 3 & 4 in micro-ISA: each ring slot is a {data word, flag word} pilot
// channel, per-slot channel state lives in core-private memory, and the
// shared hash pool is read-only.
//
// Messages are the producer's iteration index; the consumer accumulates
// received values so runs are checkable (sum must equal n(n-1)/2).
#pragma once

#include <cstdint>
#include <string>

#include "sim/machine.hpp"
#include "simprog/abstract_model.hpp"

namespace armbar::simprog {

/// Producer barrier sites (Algorithm 2 lines 3 and 5).
struct ProdConsCombo {
  OrderChoice avail = OrderChoice::kDmbLd;     ///< line 3
  OrderChoice publish = OrderChoice::kDmbSt;   ///< line 5; kStlr makes the
                                               ///< counter store an STLR
  bool consumer_barriers = true;               ///< consumer's load barriers
  std::string name() const;
};

struct ProdConsResult {
  double msgs_per_sec = 0;   ///< messages through the channel per second
  std::uint64_t checksum = 0;
  bool checksum_ok = false;
};

/// Run the barrier-based producer-consumer for `msgs` messages between
/// cores `prod` and `cons`. `produce_work` = nops inside produceMsg().
ProdConsResult run_prodcons(const sim::PlatformSpec& spec, ProdConsCombo combo,
                            std::uint32_t msgs, std::uint32_t produce_work,
                            CoreId prod, CoreId cons);

/// Run the Pilot producer-consumer (§4.4): the publish barrier and the
/// consumer's matching load barrier are gone; flow-control counter + its
/// barrier remain.
ProdConsResult run_prodcons_pilot(const sim::PlatformSpec& spec,
                                  std::uint32_t msgs, std::uint32_t produce_work,
                                  CoreId prod, CoreId cons);

/// Fig 6c: batched messages of `batch_words` 64-bit slices. Returns
/// messages/sec for the best-barrier baseline (DMB ld - DMB st) and for
/// Pilot applied per slice.
struct BatchResult {
  double baseline = 0;
  double pilot = 0;
};
BatchResult run_batch(const sim::PlatformSpec& spec, std::uint32_t batch_words,
                      std::uint32_t msgs, CoreId prod, CoreId cons);

}  // namespace armbar::simprog
