#include "simprog/abstract_model.hpp"

#include "common/check.hpp"

namespace armbar::simprog {

using namespace sim;  // registers

std::string to_string(OrderChoice c) {
  switch (c) {
    case OrderChoice::kNone: return "No Barrier";
    case OrderChoice::kDmbFull: return "DMB full";
    case OrderChoice::kDmbSt: return "DMB st";
    case OrderChoice::kDmbLd: return "DMB ld";
    case OrderChoice::kDsbFull: return "DSB full";
    case OrderChoice::kDsbSt: return "DSB st";
    case OrderChoice::kDsbLd: return "DSB ld";
    case OrderChoice::kIsb: return "ISB";
    case OrderChoice::kLdar: return "LDAR";
    case OrderChoice::kLdapr: return "LDAPR";
    case OrderChoice::kStlr: return "STLR";
    case OrderChoice::kCtrlIsb: return "CTRL+ISB";
    case OrderChoice::kCtrl: return "CTRL";
    case OrderChoice::kDataDep: return "DATA DEP";
    case OrderChoice::kAddrDep: return "ADDR DEP";
  }
  return "?";
}

namespace {

/// Emit a plain barrier instruction for the choices that are barriers.
void emit_barrier(Asm& a, OrderChoice c) {
  switch (c) {
    case OrderChoice::kDmbFull: a.dmb_full(); break;
    case OrderChoice::kDmbSt: a.dmb_st(); break;
    case OrderChoice::kDmbLd: a.dmb_ld(); break;
    case OrderChoice::kDsbFull: a.dsb_full(); break;
    case OrderChoice::kDsbSt: a.dsb_st(); break;
    case OrderChoice::kDsbLd: a.dsb_ld(); break;
    case OrderChoice::kIsb: a.isb(); break;
    default: break;  // dependencies/acquire-release are not standalone
  }
}

constexpr bool is_plain_barrier(OrderChoice c) {
  switch (c) {
    case OrderChoice::kDmbFull: case OrderChoice::kDmbSt:
    case OrderChoice::kDmbLd: case OrderChoice::kDsbFull:
    case OrderChoice::kDsbSt: case OrderChoice::kDsbLd:
    case OrderChoice::kIsb:
      return true;
    default:
      return false;
  }
}

}  // namespace

Program make_intrinsic_model(OrderChoice barrier, std::uint32_t nops,
                             std::uint32_t iters) {
  ARMBAR_CHECK(barrier == OrderChoice::kNone || is_plain_barrier(barrier));
  Asm a;
  a.movi(X20, 0);
  a.label("loop");
  emit_barrier(a, barrier);
  a.nops(nops);
  a.addi(X20, X20, 1);
  a.cmpi(X20, iters);
  a.blt("loop");
  a.halt();
  return a.take("intrinsic/" + to_string(barrier));
}

Program make_store_store_model(OrderChoice choice, BarrierLoc loc,
                               std::uint32_t nops, std::uint32_t iters,
                               Addr buf_a, Addr buf_b) {
  // Algorithm 1 with str/str. STLR replaces the second store (no location);
  // everything else is a barrier at loc 1 or loc 2.
  Asm a;
  a.movi(X0, static_cast<std::int64_t>(buf_a));
  a.movi(X1, static_cast<std::int64_t>(buf_b));
  a.movi(X20, 0);
  a.movi(X3, 0x1111);
  a.movi(X4, 0x2222);
  a.label("loop");
  a.addi(X0, X0, 64);
  a.addi(X1, X1, 64);
  a.str(X3, X0, 0);                                   // first store (RMR)
  if (loc == BarrierLoc::kLoc1) emit_barrier(a, choice);
  a.nops(nops);
  if (loc == BarrierLoc::kLoc2) emit_barrier(a, choice);
  if (choice == OrderChoice::kStlr) {
    a.stlr(X4, X1, 0);                                // store-release flavour
  } else {
    a.str(X4, X1, 0);
  }
  a.addi(X20, X20, 1);
  a.cmpi(X20, iters);
  a.blt("loop");
  a.halt();
  return a.take("store-store/" + to_string(choice));
}

Program make_load_store_model(OrderChoice choice, BarrierLoc loc,
                              std::uint32_t nops, std::uint32_t iters,
                              Addr buf_a, Addr buf_b) {
  Asm a;
  a.movi(X0, static_cast<std::int64_t>(buf_a));
  a.movi(X1, static_cast<std::int64_t>(buf_b));
  a.movi(X20, 0);
  a.movi(X4, 0x2222);
  a.label("loop");
  a.addi(X0, X0, 64);
  a.addi(X1, X1, 64);
  if (choice == OrderChoice::kLdar) {
    a.ldar(X3, X0, 0);                                // acquiring load (RMR)
  } else if (choice == OrderChoice::kLdapr) {
    a.ldapr(X3, X0, 0);                               // RCpc acquire (RMR)
  } else {
    a.ldr(X3, X0, 0);                                 // plain load (RMR)
  }
  if (loc == BarrierLoc::kLoc1) emit_barrier(a, choice);
  a.nops(nops);
  if (loc == BarrierLoc::kLoc2) emit_barrier(a, choice);

  switch (choice) {
    case OrderChoice::kDataDep:
      // Bogus data dependency: value to store depends on the loaded value.
      a.eor(X5, X3, X3);
      a.add(X6, X4, X5);
      a.str(X6, X1, 0);
      break;
    case OrderChoice::kAddrDep:
      // Bogus address dependency: target address depends on the load.
      a.eor(X5, X3, X3);
      a.add(X6, X1, X5);
      a.str(X4, X6, 0);
      break;
    case OrderChoice::kCtrl:
    case OrderChoice::kCtrlIsb:
      // Bogus control dependency: a branch whose condition uses the loaded
      // value; always falls through.
      a.eor(X5, X3, X3);
      a.cbnz(X5, "taken");
      a.label("taken");
      if (choice == OrderChoice::kCtrlIsb) a.isb();
      a.str(X4, X1, 0);
      break;
    case OrderChoice::kStlr:
      a.stlr(X4, X1, 0);
      break;
    default:
      a.str(X4, X1, 0);
      break;
  }
  a.addi(X20, X20, 1);
  a.cmpi(X20, iters);
  a.blt("loop");
  a.halt();
  return a.take("load-store/" + to_string(choice));
}

double run_single(const PlatformSpec& spec, const Program& prog,
                  std::uint32_t iters, trace::Tracer* tracer) {
  sim::Machine m(spec, 64u << 20);
  m.load_program(0, prog);
  sim::RunConfig cfg;
  cfg.max_cycles = 2'000'000'000ULL;
  cfg.tracer = tracer;
  auto r = m.run(cfg);
  ARMBAR_CHECK_MSG(r.completed, "abstract model run timed out");
  return sim::RunResult::throughput_per_sec(iters, r.cycles, spec.freq_ghz);
}

double run_pair(const PlatformSpec& spec, const Program& prog,
                std::uint32_t iters, CoreId c0, CoreId c1,
                trace::Tracer* tracer) {
  sim::Machine m(spec, 64u << 20);
  m.load_program(c0, prog);
  m.load_program(c1, prog);
  sim::RunConfig cfg;
  cfg.max_cycles = 2'000'000'000ULL;
  cfg.tracer = tracer;
  auto r = m.run(cfg);
  ARMBAR_CHECK_MSG(r.completed, "abstract model run timed out");
  return sim::RunResult::throughput_per_sec(iters, r.cycles, spec.freq_ghz);
}

}  // namespace armbar::simprog
