// The optimization pass registry (ISSUE 10 tentpole).
//
// A Pass is a pure candidate *collector*: it scans a model program and
// proposes RewriteCandidates in a deterministic order, claiming nothing
// about soundness — every proposal is decided by the driver's axiomatic
// oracle (driver.hpp). This mirrors the openvino barrier scheduler split
// (SNIPPETS.md snippet 3): the scheduler proposes aggressively, the
// checker disposes, and rejected proposals are restored.
//
// Built-in passes, in registry (= application) order:
//   redundancy  delete a barrier adjacent to an equal-or-stronger one —
//               every path through the pair is still ordered by the
//               survivor, so the weaker barrier is dominated.
//   downgrade   per barrier site, propose strength reductions from most
//               to least aggressive: fold into the adjacent access as an
//               LDAR/STLR half-barrier (eliminating the instruction),
//               demote DSB to DMB (paper suggestion 1), then one-way
//               dmb.st / dmb.ld downgrades (paper suggestion 2).
#pragma once

#include <string>
#include <vector>

#include "opt/rewrite.hpp"

namespace armbar::opt {

struct Pass {
  std::string name;
  std::string description;
  std::vector<RewriteCandidate> (*collect)(const model::ConcurrentProgram&);
};

/// The built-in passes, in application order. Drivers select by name from
/// here; an empty selection means "all, in registry order".
class PassRegistry {
 public:
  static const PassRegistry& global();

  const std::vector<Pass>& passes() const { return passes_; }
  const Pass* find(const std::string& name) const;

 private:
  PassRegistry();
  std::vector<Pass> passes_;
};

}  // namespace armbar::opt
