// Barrier rewrite candidates (ISSUE 10 tentpole).
//
// A RewriteCandidate is one *proposed* strength reduction on one barrier
// site of a model::ConcurrentProgram: delete it, downgrade it to a one-way
// DMB, demote a DSB to the matching DMB, or fold it into the adjacent
// memory access as an LDAR/STLR half-barrier. Candidates are purely
// syntactic proposals — the passes (passes.hpp) collect them
// conservatively, and the bound-search driver (driver.hpp) decides each
// one by re-running the axiomatic checker as the equivalence oracle.
// Nothing in this file claims a candidate is sound.
//
// apply_rewrite() produces the rewritten program on a *copy*; deletions
// re-resolve every forward-branch target across the removed slot, so the
// rewritten threads stay valid micro-ISA programs for both the model and
// the timing simulator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/model.hpp"
#include "sim/program.hpp"

namespace armbar::opt {

/// The rewrite vocabulary, ordered by preference: eliminating a standalone
/// barrier instruction outright (delete / LDAR / STLR conversion) beats
/// keeping a weaker one (paper §6, Table 3 — the published weakenings
/// favour half-barrier accesses over one-way DMBs on lock handoffs).
enum class RewriteKind : std::uint8_t {
  kDeleteRedundant,  ///< barrier dominated by an equal-or-stronger one
  kAcquireConvert,   ///< ldr ; dmb {ish,ishld}  ->  ldar            (−1 instr)
  kReleaseConvert,   ///< dmb ish ; str          ->  stlr            (−1 instr)
  kDsbToDmb,         ///< dsb.X -> dmb.X   (paper suggestion 1: DSB abuse)
  kDowngradeToSt,    ///< dmb/dsb ish -> dmb ishst (store->store only)
  kDowngradeToLd,    ///< dmb/dsb ish -> dmb ishld (load->load/store only)
};

const char* to_string(RewriteKind k);

/// One proposed rewrite, addressed by (thread, pc) in the layout of the
/// program it was collected from. `mem_pc` is the paired plain load/store
/// for the LDAR/STLR conversions (unused otherwise).
struct RewriteCandidate {
  std::uint32_t thread = 0;
  std::uint32_t pc = 0;
  RewriteKind kind = RewriteKind::kDeleteRedundant;
  std::uint32_t mem_pc = 0;

  /// Stable per-layout signature ("t1:pc3 acquire-convert mem=2") used by
  /// the driver to avoid re-trying a rewrite the oracle already rejected.
  std::string signature() const;
};

/// Apply `c` to a copy of `prog`. Returns false (and leaves *out*
/// untouched) when the candidate no longer matches the program — e.g. the
/// layout shifted under it after an earlier accepted rewrite. Deletions
/// shift every branch target past the removed index down by one.
bool apply_rewrite(const model::ConcurrentProgram& prog,
                   const RewriteCandidate& c, model::ConcurrentProgram* out);

/// Does barrier `a` order at least everything barrier `b` orders? Partial
/// order used by the redundancy pass: dsb.ish dominates everything,
/// dmb.ish dominates the one-way DMBs, each op dominates itself, and ISB
/// only dominates ISB (it orders the instruction stream, not memory).
bool barrier_at_least(sim::Op a, sim::Op b);

/// Standalone barrier instructions (dmb/dsb/isb) in the program/thread —
/// the quantity the optimization exists to reduce. LDAR/STLR half-barriers
/// intentionally do not count: they ride on accesses the program already
/// performs.
std::uint32_t count_standalone_barriers(const sim::Program& prog);
std::uint32_t count_standalone_barriers(const model::ConcurrentProgram& prog);

}  // namespace armbar::opt
