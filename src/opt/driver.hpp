// Bound-search barrier-optimization driver (ISSUE 10 tentpole).
//
// The driver takes the candidates the passes propose (passes.hpp) and
// decides them one at a time against the axiomatic checker:
//
//   1. Enumerate the original program's allowed-outcome set (the
//      *baseline*). If the enumeration errors or hits a budget cap the
//      program is not optimizable — no rewrite is ever applied without a
//      complete baseline to compare against.
//   2. Repeatedly pick the first not-yet-rejected candidate (registry
//      order, then collector order), apply it to a scratch copy, and
//      re-enumerate. The rewrite is admissible iff the allowed-outcome
//      set is *identical* to the baseline (model::compare_outcome_sets);
//      otherwise the original instruction is restored and the candidate
//      is remembered as rejected for the current layout.
//   3. After the search converges, re-enumerate the final program once
//      more and demand baseline equality (defense in depth — and the trap
//      that catches the test-only planted illegal rewrite, which is
//      injected *bypassing* step 2's oracle).
//
// Every accepted rewrite therefore carries an individual whole-program
// equivalence proof, and the final program carries one more. Termination:
// each iteration either accepts (strictly reducing the program's barrier
// weight) or adds a rejection for the current layout (finite candidate
// list); max_oracle_calls bounds the search regardless.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/model.hpp"
#include "opt/passes.hpp"
#include "opt/rewrite.hpp"
#include "trace/json.hpp"

namespace armbar::opt {

struct OptOptions {
  /// Oracle configuration. `model.naive = true` swaps in the exhaustive
  /// enumerator — the soundness property test cross-checks with it.
  model::ModelOptions model;
  /// Pass names to run, in this order; empty = every registered pass in
  /// registry order. Unknown names fail the whole optimization.
  std::vector<std::string> passes;
  /// Upper bound on oracle enumerations (baseline + per-candidate + final).
  std::uint32_t max_oracle_calls = 256;
  /// Re-enumerate the final program against the baseline (step 3). Only
  /// tests turn this off.
  bool final_verify = true;

  /// Test-only hook (planted-unsoundness self-test): after the search
  /// converges, delete the first surviving standalone barrier *without*
  /// consulting the oracle. The final verification must catch and restore
  /// it — proving the oracle is load-bearing, not decorative.
  enum class Plant : std::uint8_t { kNone, kDeleteBypassingOracle };
  Plant plant = Plant::kNone;
};

/// One decided rewrite, in decision order.
struct RewriteRecord {
  RewriteCandidate cand;
  std::string pass;            ///< collecting pass name ("planted" if forced)
  std::string before, after;   ///< op tokens; after == "-" for a deletion,
                               ///< "ldar"/"stlr" for a conversion
  enum class Verdict : std::uint8_t { kAccepted, kRestored };
  Verdict verdict = Verdict::kAccepted;
  bool planted = false;
  std::string detail;          ///< oracle mismatch witness on restore
};

struct OptResult {
  model::ConcurrentProgram original;
  model::ConcurrentProgram optimized;  ///< == original when nothing accepted

  /// Baseline enumerated ok and complete. False means nothing was (or
  /// could have been) rewritten; `model_error` says why.
  bool model_valid = false;
  std::string model_error;

  std::vector<RewriteRecord> rewrites;
  std::uint32_t attempted = 0;   ///< == accepted + restored (validated)
  std::uint32_t accepted = 0;
  std::uint32_t restored = 0;
  std::uint32_t barriers_before = 0;
  std::uint32_t barriers_after = 0;

  std::uint64_t oracle_calls = 0;
  std::uint64_t oracle_ns = 0;   ///< summed Phase-C time across oracle calls

  bool planted_injected = false;
  bool planted_caught = false;
  /// Final re-enumeration matched the baseline (always expected clean;
  /// also true after a caught plant is restored).
  bool verified_equal = false;
};

OptResult optimize(const model::ConcurrentProgram& prog,
                   const OptOptions& opts = {});

/// Canonical one-decision-per-line rendering, pinned by the golden test
/// (tests/opt/golden/*.golden) and printed by armbar-opt.
std::string describe_decisions(const OptResult& r);

/// The `armbar.opt.report/v1` report section for a batch of results
/// (embedded in an armbar.bench.report/v2 document by armbar-opt and the
/// barrier_opt experiment; validated by validate_bench_report).
trace::Json opt_report_json(const std::vector<OptResult>& results);

}  // namespace armbar::opt
