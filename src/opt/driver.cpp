#include "opt/driver.hpp"

#include <set>
#include <sstream>
#include <utility>

#include "sim/isa.hpp"

namespace armbar::opt {

namespace {

using sim::Op;

std::string after_token(const model::ConcurrentProgram& prog,
                        const RewriteCandidate& c) {
  switch (c.kind) {
    case RewriteKind::kDeleteRedundant:
      return "-";
    case RewriteKind::kAcquireConvert:
      return sim::op_token(Op::kLdar);
    case RewriteKind::kReleaseConvert:
      return sim::op_token(Op::kStlr);
    case RewriteKind::kDsbToDmb: {
      const Op op = prog.threads[c.thread].code[c.pc].op;
      return sim::op_token(op == Op::kDsbFull  ? Op::kDmbFull
                           : op == Op::kDsbSt ? Op::kDmbSt
                                              : Op::kDmbLd);
    }
    case RewriteKind::kDowngradeToSt:
      return sim::op_token(Op::kDmbSt);
    case RewriteKind::kDowngradeToLd:
      return sim::op_token(Op::kDmbLd);
  }
  return "?";
}

}  // namespace

OptResult optimize(const model::ConcurrentProgram& prog,
                   const OptOptions& opts) {
  OptResult r;
  r.original = prog;
  r.optimized = prog;
  r.barriers_before = count_standalone_barriers(prog);
  r.barriers_after = r.barriers_before;

  // Resolve the pass selection up front: an unknown name is a caller bug
  // and must not silently optimize with fewer passes than requested.
  std::vector<const Pass*> passes;
  if (opts.passes.empty()) {
    for (const Pass& p : PassRegistry::global().passes()) passes.push_back(&p);
  } else {
    for (const std::string& name : opts.passes) {
      const Pass* p = PassRegistry::global().find(name);
      if (p == nullptr) {
        r.model_error = "unknown pass '" + name + "'";
        return r;
      }
      passes.push_back(p);
    }
  }

  const model::OutcomeSet baseline = model::enumerate_outcomes(prog, opts.model);
  ++r.oracle_calls;
  r.oracle_ns += baseline.enum_ns;
  if (!baseline.ok() || !baseline.complete) {
    r.model_error = !baseline.ok()
                        ? baseline.error
                        : "baseline enumeration incomplete (budget cap hit)";
    return r;
  }
  r.model_valid = true;

  model::ConcurrentProgram cur = prog;
  std::set<std::string> rejected;  // per-layout signatures the oracle refused
  while (r.oracle_calls < opts.max_oracle_calls) {
    const RewriteCandidate* picked = nullptr;
    std::vector<RewriteCandidate> cands;
    std::string picked_pass;
    for (const Pass* p : passes) {
      cands = p->collect(cur);
      for (const RewriteCandidate& c : cands)
        if (rejected.count(p->name + "/" + c.signature()) == 0) {
          picked = &c;
          picked_pass = p->name;
          break;
        }
      if (picked != nullptr) break;
    }
    if (picked == nullptr) break;  // converged: every candidate decided

    RewriteRecord rec;
    rec.cand = *picked;
    rec.pass = picked_pass;
    rec.before =
        sim::op_token(cur.threads[picked->thread].code[picked->pc].op);
    rec.after = after_token(cur, *picked);

    model::ConcurrentProgram trial;
    if (!apply_rewrite(cur, *picked, &trial)) {
      // Collector/matcher disagreement — never expected; reject the
      // signature so the search cannot spin on it.
      rejected.insert(picked_pass + "/" + picked->signature());
      continue;
    }
    ++r.attempted;
    const model::OutcomeSet got = model::enumerate_outcomes(trial, opts.model);
    ++r.oracle_calls;
    r.oracle_ns += got.enum_ns;
    const model::EquivalenceVerdict v = model::compare_outcome_sets(baseline, got);
    if (v.equal) {
      rec.verdict = RewriteRecord::Verdict::kAccepted;
      cur = std::move(trial);
      ++r.accepted;
    } else {
      rec.verdict = RewriteRecord::Verdict::kRestored;
      rec.detail = v.detail;
      rejected.insert(picked_pass + "/" + picked->signature());
      ++r.restored;
    }
    r.rewrites.push_back(std::move(rec));
  }

  // Every rewrite applied so far carries its own equivalence proof, so
  // `cur` is the last known-verified program — the snapshot the final
  // verification restores to if the planted rewrite below corrupts it.
  const model::ConcurrentProgram verified_snapshot = cur;

  if (opts.plant == OptOptions::Plant::kDeleteBypassingOracle) {
    for (std::uint32_t ti = 0; ti < cur.threads.size() && !r.planted_injected;
         ++ti)
      for (std::uint32_t pc = 0; pc < cur.threads[ti].code.size(); ++pc)
        if (sim::is_barrier(cur.threads[ti].code[pc].op)) {
          RewriteCandidate c;
          c.thread = ti;
          c.pc = pc;
          c.kind = RewriteKind::kDeleteRedundant;
          RewriteRecord rec;
          rec.cand = c;
          rec.pass = "planted";
          rec.planted = true;
          rec.before = sim::op_token(cur.threads[ti].code[pc].op);
          rec.after = "-";
          model::ConcurrentProgram trial;
          if (!apply_rewrite(cur, c, &trial)) break;
          cur = std::move(trial);
          ++r.attempted;
          ++r.accepted;  // accepted *without* an oracle check — the bug
          r.planted_injected = true;
          r.rewrites.push_back(std::move(rec));
          break;
        }
  }

  if (opts.final_verify) {
    const model::OutcomeSet fin = model::enumerate_outcomes(cur, opts.model);
    ++r.oracle_calls;
    r.oracle_ns += fin.enum_ns;
    const model::EquivalenceVerdict v = model::compare_outcome_sets(baseline, fin);
    if (v.equal) {
      r.verified_equal = true;
    } else {
      // The per-candidate proofs cover everything up to the snapshot, so a
      // mismatch here can only come from a rewrite that skipped the oracle.
      cur = verified_snapshot;
      bool restored_any = false;
      for (RewriteRecord& rec : r.rewrites)
        if (rec.planted && rec.verdict == RewriteRecord::Verdict::kAccepted) {
          rec.verdict = RewriteRecord::Verdict::kRestored;
          rec.detail = "caught by final verification: " + v.detail;
          --r.accepted;
          ++r.restored;
          restored_any = true;
          r.planted_caught = true;
        }
      if (restored_any) {
        r.verified_equal = true;  // back on the per-candidate-proven program
      } else {
        // No planted rewrite to blame: internal error. Drop every rewrite.
        cur = prog;
        for (RewriteRecord& rec : r.rewrites)
          if (rec.verdict == RewriteRecord::Verdict::kAccepted) {
            rec.verdict = RewriteRecord::Verdict::kRestored;
            rec.detail = "final verification failed: " + v.detail;
            --r.accepted;
            ++r.restored;
          }
        r.model_error = "final verification failed: " + v.detail;
      }
    }
  }

  r.optimized = std::move(cur);
  r.barriers_after = count_standalone_barriers(r.optimized);
  return r;
}

std::string describe_decisions(const OptResult& r) {
  std::ostringstream os;
  os << "program " << r.original.name << "\n";
  if (!r.model_valid) {
    os << "model-invalid: " << r.model_error << "\n";
    return os.str();
  }
  os << "barriers " << r.barriers_before << " -> " << r.barriers_after << "\n";
  for (const RewriteRecord& rec : r.rewrites) {
    os << (rec.verdict == RewriteRecord::Verdict::kAccepted ? "accepted"
                                                            : "restored")
       << " " << rec.cand.signature() << " " << rec.before << " -> "
       << rec.after;
    if (rec.planted) os << " [planted]";
    if (!rec.detail.empty()) os << " : " << rec.detail;
    os << "\n";
  }
  os << (r.verified_equal ? "verified-equal" : "unverified") << "\n";
  return os.str();
}

trace::Json opt_report_json(const std::vector<OptResult>& results) {
  trace::Json programs = trace::Json::array();
  std::uint64_t attempted = 0, accepted = 0, restored = 0, eliminated = 0;
  for (const OptResult& r : results) {
    trace::Json p = trace::Json::object();
    p.set("name", r.original.name);
    p.set("model_valid", r.model_valid);
    if (!r.model_valid) p.set("model_error", r.model_error);
    p.set("rewrites_attempted", static_cast<std::uint64_t>(r.attempted));
    p.set("rewrites_accepted", static_cast<std::uint64_t>(r.accepted));
    p.set("rewrites_restored", static_cast<std::uint64_t>(r.restored));
    p.set("barriers_before", static_cast<std::uint64_t>(r.barriers_before));
    p.set("barriers_after", static_cast<std::uint64_t>(r.barriers_after));
    p.set("verified_equal", r.verified_equal);
    if (r.planted_injected) {
      p.set("planted", true);
      p.set("planted_caught", r.planted_caught);
    }
    trace::Json rws = trace::Json::array();
    for (const RewriteRecord& rec : r.rewrites) {
      trace::Json j = trace::Json::object();
      j.set("pass", rec.pass);
      j.set("thread", static_cast<std::uint64_t>(rec.cand.thread));
      j.set("pc", static_cast<std::uint64_t>(rec.cand.pc));
      j.set("kind", to_string(rec.cand.kind));
      j.set("before", rec.before);
      j.set("after", rec.after);
      j.set("verdict", rec.verdict == RewriteRecord::Verdict::kAccepted
                           ? "accepted"
                           : "restored");
      if (rec.planted) j.set("planted", true);
      if (!rec.detail.empty()) j.set("detail", rec.detail);
      rws.push(std::move(j));
    }
    p.set("rewrites", std::move(rws));
    programs.push(std::move(p));
    attempted += r.attempted;
    accepted += r.accepted;
    restored += r.restored;
    if (r.barriers_after < r.barriers_before)
      eliminated += r.barriers_before - r.barriers_after;
  }
  trace::Json totals = trace::Json::object();
  totals.set("programs", static_cast<std::uint64_t>(results.size()));
  totals.set("rewrites_attempted", attempted);
  totals.set("rewrites_accepted", accepted);
  totals.set("rewrites_restored", restored);
  totals.set("barriers_eliminated", eliminated);

  trace::Json out = trace::Json::object();
  out.set("schema", "armbar.opt.report/v1");
  out.set("programs", std::move(programs));
  out.set("totals", std::move(totals));
  return out;
}

}  // namespace armbar::opt
