#include "opt/passes.hpp"

#include "sim/isa.hpp"

namespace armbar::opt {

namespace {

using sim::Instr;
using sim::Op;

bool branch_target_in(const sim::Program& prog, std::uint32_t lo,
                      std::uint32_t hi) {
  for (const Instr& ins : prog.code)
    if (sim::is_branch(ins.op) && ins.target > lo && ins.target <= hi)
      return true;
  return false;
}

bool is_pair_breaker(Op op) {
  return sim::is_load(op) || sim::is_store(op) || sim::is_barrier(op) ||
         sim::is_branch(op);
}

/// Nearest instruction before `pc` that is not pipeline-neutral, or -1.
int scan_back(const sim::Program& t, std::uint32_t pc) {
  for (int i = static_cast<int>(pc) - 1; i >= 0; --i)
    if (is_pair_breaker(t.code[i].op)) return i;
  return -1;
}

/// Nearest instruction after `pc` that is not pipeline-neutral, or -1.
int scan_fwd(const sim::Program& t, std::uint32_t pc) {
  for (std::uint32_t i = pc + 1; i < t.code.size(); ++i)
    if (is_pair_breaker(t.code[i].op)) return static_cast<int>(i);
  return -1;
}

/// Redundancy: for each adjacent barrier pair (nothing but neutral
/// instructions between, no branch entering between them), delete the
/// dominated one. Prefer deleting the *later* barrier when both dominate
/// (equal ops): a branch targeting the first barrier still executes the
/// survivor.
std::vector<RewriteCandidate> collect_redundancy(
    const model::ConcurrentProgram& prog) {
  std::vector<RewriteCandidate> out;
  for (std::uint32_t ti = 0; ti < prog.threads.size(); ++ti) {
    const sim::Program& t = prog.threads[ti];
    for (std::uint32_t pc = 0; pc < t.code.size(); ++pc) {
      if (!sim::is_barrier(t.code[pc].op)) continue;
      const int nxt = scan_fwd(t, pc);
      if (nxt < 0 || !sim::is_barrier(t.code[nxt].op)) continue;
      const std::uint32_t b = static_cast<std::uint32_t>(nxt);
      if (branch_target_in(t, pc, b)) continue;
      RewriteCandidate c;
      c.thread = ti;
      c.kind = RewriteKind::kDeleteRedundant;
      if (barrier_at_least(t.code[pc].op, t.code[b].op)) {
        c.pc = b;
        out.push_back(c);
      } else if (barrier_at_least(t.code[b].op, t.code[pc].op)) {
        c.pc = pc;
        out.push_back(c);
      }
    }
  }
  return out;
}

/// Downgrade: per barrier site (thread-major, pc-major), propose strength
/// reductions most-aggressive first. The driver accepts the first proposal
/// the oracle admits, so this order *is* the descent strategy: eliminate
/// the instruction if at all possible, weaken it otherwise.
std::vector<RewriteCandidate> collect_downgrade(
    const model::ConcurrentProgram& prog) {
  std::vector<RewriteCandidate> out;
  for (std::uint32_t ti = 0; ti < prog.threads.size(); ++ti) {
    const sim::Program& t = prog.threads[ti];
    for (std::uint32_t pc = 0; pc < t.code.size(); ++pc) {
      const Op op = t.code[pc].op;
      if (!sim::is_barrier(op) || op == Op::kIsb) continue;
      RewriteCandidate c;
      c.thread = ti;
      c.pc = pc;
      // ldr ; <barrier with a load-ordering half> -> ldar
      if (op == Op::kDmbFull || op == Op::kDmbLd || op == Op::kDsbFull ||
          op == Op::kDsbLd) {
        const int m = scan_back(t, pc);
        if (m >= 0 && t.code[m].op == Op::kLdr &&
            !branch_target_in(t, static_cast<std::uint32_t>(m), pc)) {
          c.kind = RewriteKind::kAcquireConvert;
          c.mem_pc = static_cast<std::uint32_t>(m);
          out.push_back(c);
        }
      }
      // <full barrier> ; str -> stlr
      if (op == Op::kDmbFull || op == Op::kDsbFull) {
        const int m = scan_fwd(t, pc);
        if (m >= 0 && t.code[m].op == Op::kStr &&
            !branch_target_in(t, pc, static_cast<std::uint32_t>(m))) {
          c.kind = RewriteKind::kReleaseConvert;
          c.mem_pc = static_cast<std::uint32_t>(m);
          out.push_back(c);
        }
      }
      c.mem_pc = 0;
      if (op == Op::kDsbFull || op == Op::kDsbSt || op == Op::kDsbLd) {
        c.kind = RewriteKind::kDsbToDmb;
        out.push_back(c);
      }
      if (op == Op::kDmbFull) {
        c.kind = RewriteKind::kDowngradeToSt;
        out.push_back(c);
        c.kind = RewriteKind::kDowngradeToLd;
        out.push_back(c);
      }
    }
  }
  return out;
}

}  // namespace

PassRegistry::PassRegistry() {
  passes_.push_back(
      {"redundancy", "delete barriers dominated by an adjacent equal-or-"
                     "stronger barrier",
       &collect_redundancy});
  passes_.push_back(
      {"downgrade", "LDAR/STLR conversion, DSB demotion and one-way DMB "
                    "downgrades, most-aggressive first",
       &collect_downgrade});
}

const PassRegistry& PassRegistry::global() {
  static const PassRegistry r;
  return r;
}

const Pass* PassRegistry::find(const std::string& name) const {
  for (const Pass& p : passes_)
    if (p.name == name) return &p;
  return nullptr;
}

}  // namespace armbar::opt
