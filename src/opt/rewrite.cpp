#include "opt/rewrite.hpp"

#include "sim/isa.hpp"

namespace armbar::opt {

namespace {

using sim::Instr;
using sim::Op;

bool is_full_barrier(Op op) { return op == Op::kDmbFull || op == Op::kDsbFull; }
bool is_acquire_side_barrier(Op op) {
  return op == Op::kDmbFull || op == Op::kDmbLd || op == Op::kDsbFull ||
         op == Op::kDsbLd;
}

/// Any branch in `prog` whose target lands in (lo, hi]? Such a target
/// would let a path reach one end of a rewrite pair without the other.
bool branch_target_in(const sim::Program& prog, std::uint32_t lo,
                      std::uint32_t hi) {
  for (const Instr& ins : prog.code)
    if (sim::is_branch(ins.op) && ins.target > lo && ins.target <= hi)
      return true;
  return false;
}

/// All instructions strictly between lo and hi are pipeline-neutral for a
/// conversion pair: no memory access, no barrier, no branch.
bool gap_is_neutral(const sim::Program& prog, std::uint32_t lo,
                    std::uint32_t hi) {
  for (std::uint32_t i = lo + 1; i < hi; ++i) {
    const Op op = prog.code[i].op;
    if (sim::is_load(op) || sim::is_store(op) || sim::is_barrier(op) ||
        sim::is_branch(op))
      return false;
  }
  return true;
}

/// Do the static side conditions of `c` hold against the current layout of
/// `prog`? The driver re-applies candidates collected on an older layout;
/// a stale candidate must fail here rather than rewrite the wrong site.
bool candidate_matches(const model::ConcurrentProgram& prog,
                       const RewriteCandidate& c) {
  if (c.thread >= prog.threads.size()) return false;
  const sim::Program& t = prog.threads[c.thread];
  if (c.pc >= t.code.size()) return false;
  const Op op = t.code[c.pc].op;
  switch (c.kind) {
    case RewriteKind::kDeleteRedundant:
      return sim::is_barrier(op);
    case RewriteKind::kAcquireConvert:
      return is_acquire_side_barrier(op) && c.mem_pc < c.pc &&
             t.code[c.mem_pc].op == Op::kLdr &&
             gap_is_neutral(t, c.mem_pc, c.pc) &&
             !branch_target_in(t, c.mem_pc, c.pc);
    case RewriteKind::kReleaseConvert:
      return is_full_barrier(op) && c.mem_pc > c.pc &&
             c.mem_pc < t.code.size() && t.code[c.mem_pc].op == Op::kStr &&
             gap_is_neutral(t, c.pc, c.mem_pc) &&
             !branch_target_in(t, c.pc, c.mem_pc);
    case RewriteKind::kDsbToDmb:
      return op == Op::kDsbFull || op == Op::kDsbSt || op == Op::kDsbLd;
    case RewriteKind::kDowngradeToSt:
    case RewriteKind::kDowngradeToLd:
      return op == Op::kDmbFull;
  }
  return false;
}

/// Remove code[idx], shifting every branch target past it down by one. A
/// branch that targeted idx itself now lands on the instruction that
/// followed the barrier — exactly where execution would have gone next.
void delete_at(sim::Program* prog, std::uint32_t idx) {
  prog->code.erase(prog->code.begin() + idx);
  for (Instr& ins : prog->code)
    if (sim::is_branch(ins.op) && ins.target > idx) --ins.target;
}

}  // namespace

const char* to_string(RewriteKind k) {
  switch (k) {
    case RewriteKind::kDeleteRedundant: return "delete-redundant";
    case RewriteKind::kAcquireConvert: return "acquire-convert";
    case RewriteKind::kReleaseConvert: return "release-convert";
    case RewriteKind::kDsbToDmb: return "dsb-to-dmb";
    case RewriteKind::kDowngradeToSt: return "downgrade-st";
    case RewriteKind::kDowngradeToLd: return "downgrade-ld";
  }
  return "?";
}

std::string RewriteCandidate::signature() const {
  std::string s = "t" + std::to_string(thread) + ":pc" + std::to_string(pc) +
                  " " + to_string(kind);
  if (kind == RewriteKind::kAcquireConvert ||
      kind == RewriteKind::kReleaseConvert)
    s += " mem=" + std::to_string(mem_pc);
  return s;
}

bool apply_rewrite(const model::ConcurrentProgram& prog,
                   const RewriteCandidate& c, model::ConcurrentProgram* out) {
  if (!candidate_matches(prog, c)) return false;
  model::ConcurrentProgram next = prog;
  sim::Program& t = next.threads[c.thread];
  switch (c.kind) {
    case RewriteKind::kDeleteRedundant:
      delete_at(&t, c.pc);
      break;
    case RewriteKind::kAcquireConvert:
      t.code[c.mem_pc].op = Op::kLdar;
      delete_at(&t, c.pc);
      break;
    case RewriteKind::kReleaseConvert:
      t.code[c.mem_pc].op = Op::kStlr;
      delete_at(&t, c.pc);
      break;
    case RewriteKind::kDsbToDmb: {
      const Op op = t.code[c.pc].op;
      t.code[c.pc].op = op == Op::kDsbFull  ? Op::kDmbFull
                        : op == Op::kDsbSt ? Op::kDmbSt
                                           : Op::kDmbLd;
      break;
    }
    case RewriteKind::kDowngradeToSt:
      t.code[c.pc].op = Op::kDmbSt;
      break;
    case RewriteKind::kDowngradeToLd:
      t.code[c.pc].op = Op::kDmbLd;
      break;
  }
  *out = std::move(next);
  return true;
}

bool barrier_at_least(sim::Op a, sim::Op b) {
  if (!sim::is_barrier(a) || !sim::is_barrier(b)) return false;
  if (a == b) return true;
  switch (a) {
    case Op::kDsbFull:
      return b != Op::kIsb;  // dominates every memory barrier
    case Op::kDmbFull:
      return b == Op::kDmbSt || b == Op::kDmbLd;
    case Op::kDsbSt:
      return b == Op::kDmbSt;
    case Op::kDsbLd:
      return b == Op::kDmbLd;
    default:
      return false;  // one-way DMBs and ISB dominate only themselves
  }
}

std::uint32_t count_standalone_barriers(const sim::Program& prog) {
  std::uint32_t n = 0;
  for (const sim::Instr& ins : prog.code)
    if (sim::is_barrier(ins.op)) ++n;
  return n;
}

std::uint32_t count_standalone_barriers(const model::ConcurrentProgram& prog) {
  std::uint32_t n = 0;
  for (const sim::Program& t : prog.threads) n += count_standalone_barriers(t);
  return n;
}

}  // namespace armbar::opt
