// Table 1 shape registry: every litmus shape the paper's Table 1 (and the
// supporting §2 evidence) relies on, in *both* of the repo's forms at once —
// the timing-simulator Litmus and the canonical model::ConcurrentProgram the
// axiomatic reference checker enumerates (ISSUE 4 litmus hygiene).
//
// Before ISSUE 4 the allowed-outcome tables were hand-maintained booleans
// scattered across bench/table1_litmus.cpp and the litmus tests. They are
// now *derived*: derive_allowed() asks the reference model for the exact
// allowed set, and model_allows_weak() replaces the hand-coded
// "OBSERVED (allowed)" / "never (forbidden)" expectations. The legacy
// booleans survive on each row only so the cross-check test
// (tests/litmus/model_crosscheck_test.cpp) can prove the old tables and the
// model agree on every shape.
//
// Two deliberate asymmetries, both documented per-row:
//   * weak_allowed vs sim_shows_weak — the simulator is *stronger* than the
//     architecture on load-side reorderings (LB, S, 2+2W), so a shape can be
//     architecturally weak yet never weak in the simulator.
//   * The MP consumer: the simulator polls (a backward branch the model does
//     not enumerate) and samples load values at issue, which orders its
//     reads. The canonical model consumer is the straight-line
//     `ldr flag; dmb.ld; ldr data` — at least as strong as the poll — and
//     the sim outcome {data} projects to the model outcome (1, data).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "litmus/litmus.hpp"
#include "model/model.hpp"

namespace armbar::litmus {

/// One Table 1 row: a named shape with its model form, its weak outcome,
/// and (for cross-checking only) the legacy hand-maintained expectations.
struct Table1Shape {
  std::string name;                   ///< e.g. "MP+dmb.st"
  model::ConcurrentProgram model_prog;
  model::Outcome weak;                ///< the relaxed outcome, model form

  // Legacy hand-maintained expectations, kept for the cross-check test.
  bool weak_allowed = false;          ///< architecture allows `weak`
  bool sim_shows_weak = false;        ///< the timing simulator exhibits it

  /// Simulator-side litmus; null for model-only shapes (CoRR's sim probe is
  /// a 100-iteration loop whose outcome shape does not project).
  std::function<Litmus()> sim_make;
  /// Projects a simulator outcome into model-outcome space (identity when
  /// the observation lists already line up).
  std::function<model::Outcome(const Outcome&)> project;
  /// The weak outcome in simulator observation form.
  Outcome sim_weak;
};

/// All registered shapes, in Table 1 order (MP rows first).
const std::vector<Table1Shape>& table1_shapes();

/// Lookup by name; aborts on an unknown shape.
const Table1Shape& table1_shape(const std::string& name);

/// The model-derived allowed set for a shape (the generated replacement for
/// the hand tables). Aborts if the model errors or hits a budget cap —
/// every registered shape must enumerate exactly.
model::OutcomeSet derive_allowed(const Table1Shape& s);

/// Whether the reference model allows the shape's weak outcome. This — not
/// a hand-coded boolean — is what bench/table1_litmus.cpp now prints and
/// checks against.
bool model_allows_weak(const Table1Shape& s);

}  // namespace armbar::litmus
