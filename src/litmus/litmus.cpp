#include "litmus/litmus.hpp"

#include <sstream>

#include "common/check.hpp"

namespace armbar::litmus {

using sim::Asm;
using sim::Machine;
using sim::Op;
using namespace sim;  // registers X0..X30

std::string LitmusReport::str() const {
  std::ostringstream os;
  os << runs << " runs, " << histogram.size() << " distinct outcomes\n";
  for (const auto& [o, n] : histogram) {
    os << "  {";
    for (std::size_t i = 0; i < o.size(); ++i) os << (i ? "," : "") << o[i];
    os << "} x" << n << "\n";
  }
  return os.str();
}

LitmusReport run_litmus(const Litmus& test, const LitmusConfig& cfg) {
  ARMBAR_CHECK(test.threads.size() == cfg.binding.size());
  const std::size_t nthreads = test.threads.size();

  std::vector<std::uint32_t> skews(nthreads, 0);
  LitmusReport report;

  // Enumerate the cartesian product of per-thread skews.
  while (true) {
    Machine m(cfg.platform, 1u << 20);
    m.set_tso(cfg.tso);
    for (const auto& [addr, bytes, node] : test.homes)
      m.mem().set_home(addr, bytes, node);
    for (const auto& [addr, v] : test.init) m.mem().poke(addr, v);

    std::vector<Program> progs;
    progs.reserve(nthreads);
    for (std::size_t t = 0; t < nthreads; ++t)
      progs.push_back(test.threads[t].make(skews[t]));
    for (std::size_t t = 0; t < nthreads; ++t)
      m.load_program(cfg.binding[t], progs[t]);

    RunConfig rc;
    rc.max_cycles = cfg.max_cycles;
    if (cfg.fault.enabled()) rc.fault = &cfg.fault;
    rc.verify_every = cfg.verify_every;
    auto r = m.run(rc);
    ARMBAR_CHECK_MSG(r.completed, "litmus run timed out");

    Outcome o;
    for (std::size_t t = 0; t < nthreads; ++t)
      for (auto reg : test.threads[t].observe)
        o.push_back(m.core(cfg.binding[t]).reg(reg));
    for (auto addr : test.observe_mem) o.push_back(m.mem().peek(addr));
    ++report.histogram[o];
    ++report.runs;

    // Advance the skew odometer.
    std::size_t i = 0;
    for (; i < nthreads; ++i) {
      skews[i] += cfg.skew_step;
      if (skews[i] <= cfg.max_skew) break;
      skews[i] = 0;
    }
    if (i == nthreads) break;
  }
  return report;
}

namespace {
constexpr Addr kData = 0x1000;   // line A
constexpr Addr kFlag = 0x2000;   // line B
constexpr Addr kX = 0x3000;
constexpr Addr kY = 0x4000;
}  // namespace

Litmus make_mp(Op producer_barrier) {
  Litmus t;
  t.name = "MP";
  t.init = {{kData, 0}, {kFlag, 0}};

  // The realistic weak scenario: the producer has the flag line in M
  // (it wrote flag = BUSY earlier), while the consumer holds a clean copy
  // of the data line. The flag store then drains in a couple of cycles but
  // the data store needs a full invalidation round — without a barrier the
  // flag can become visible long before the data.
  LitmusThread producer;
  producer.make = [producer_barrier](std::uint32_t skew) {
    Asm a;
    a.movi(X0, kData).movi(X2, kFlag).movi(X3, 23).movi(X4, 1);
    a.str(XZR, X2, 0);                      // flag = BUSY: take M ownership
    a.nops(60);                             // let the drain complete
    a.nops(skew);
    a.str(X3, X0, 0);                       // data = 23
    if (producer_barrier != Op::kNop) a.emit({producer_barrier});
    a.str(X4, X2, 0);                       // flag = DONE
    a.halt();
    return a.take("mp-producer");
  };

  // Poll-style consumer: samples flag and data every iteration so the pair
  // is captured within a couple of cycles of each other (the standard MP
  // poll shape; it avoids measuring through the loop-exit mispredict).
  LitmusThread consumer;
  consumer.make = [](std::uint32_t skew) {
    Asm a;
    a.movi(X0, kData).movi(X2, kFlag);
    a.ldr(X9, X0, 0);                       // warm a (soon stale) copy of data
    a.nops(skew);
    a.label("poll");
    a.ldr(X3, X2, 0);                       // flag
    a.ldr(X10, X0, 0);                      // data, sampled 1 cycle later
    a.cbz(X3, "poll");
    a.halt();
    return a.take("mp-consumer");
  };
  consumer.observe = {X10};

  t.threads = {producer, consumer};
  return t;
}

Litmus make_sb(Op barrier) {
  Litmus t;
  t.name = "SB";
  t.init = {{kX, 0}, {kY, 0}};

  auto thread = [barrier](Addr mine, Addr other) {
    LitmusThread th;
    th.make = [barrier, mine, other](std::uint32_t skew) {
      Asm a;
      a.movi(X0, mine).movi(X1, other).movi(X2, 1);
      a.nops(skew);
      a.str(X2, X0, 0);
      if (barrier != Op::kNop) a.emit({barrier});
      a.ldr(X3, X1, 0);
      a.halt();
      return a.take("sb-thread");
    };
    th.observe = {X3};
    return th;
  };

  t.threads = {thread(kX, kY), thread(kY, kX)};
  return t;
}

Litmus make_coherence() {
  Litmus t;
  t.name = "CoRR";
  t.init = {{kX, 0}};
  constexpr int kIters = 100;

  LitmusThread writer;
  writer.make = [](std::uint32_t skew) {
    Asm a;
    a.movi(X0, kX).movi(X6, kIters).movi(X1, 0);
    a.nops(skew);
    a.label("loop");
    a.addi(X1, X1, 1);
    a.str(X1, X0, 0);  // monotonically increasing values
    a.nops(3);
    a.subi(X6, X6, 1);
    a.cbnz(X6, "loop");
    a.halt();
    return a.take("co-writer");
  };

  LitmusThread reader;
  reader.make = [](std::uint32_t skew) {
    Asm a;
    a.movi(X0, kX).movi(X6, kIters).movi(X7, 0);
    a.nops(skew);
    a.label("loop");
    a.ldr(X1, X0, 0);
    a.ldr(X2, X0, 0);
    a.cmp(X2, X1);
    a.bge("ok");       // same-location reads must not regress
    a.movi(X7, 1);
    a.label("ok");
    a.subi(X6, X6, 1);
    a.cbnz(X6, "loop");
    a.halt();
    return a.take("co-reader");
  };
  reader.observe = {X7};

  t.threads = {writer, reader};
  return t;
}

Litmus make_atomicity() {
  Litmus t;
  t.name = "single-copy-atomicity";
  t.init = {{kX, 0}};
  constexpr int kIters = 100;
  constexpr std::int64_t kA = 0x00000000FFFFFFFFll;
  constexpr std::int64_t kB = static_cast<std::int64_t>(0xFFFFFFFF00000000ull);

  LitmusThread writer;
  writer.make = [](std::uint32_t skew) {
    Asm a;
    a.movi(X0, kX).movi(X4, kA).movi(X5, kB).movi(X6, kIters);
    a.nops(skew);
    a.label("loop");
    a.str(X4, X0, 0);
    a.nops(5);
    a.str(X5, X0, 0);
    a.nops(5);
    a.subi(X6, X6, 1);
    a.cbnz(X6, "loop");
    a.halt();
    return a.take("atomicity-writer");
  };

  LitmusThread reader;
  reader.make = [](std::uint32_t skew) {
    Asm a;
    a.movi(X0, kX).movi(X4, kA).movi(X5, kB).movi(X7, 0).movi(X6, kIters);
    a.nops(skew);
    a.label("loop");
    a.ldr(X1, X0, 0);
    a.cbz(X1, "ok");        // initial value
    a.cmp(X1, X4);
    a.beq("ok");
    a.cmp(X1, X5);
    a.beq("ok");
    a.movi(X7, 1);          // torn 64-bit value observed
    a.label("ok");
    a.subi(X6, X6, 1);
    a.cbnz(X6, "loop");
    a.halt();
    return a.take("atomicity-reader");
  };
  reader.observe = {X7};

  t.threads = {writer, reader};
  return t;
}

namespace {

void emit_barrier_op(Asm& a, Op b) {
  if (b != Op::kNop) a.emit({b});
}

}  // namespace

Litmus make_lb(Op barrier) {
  Litmus t;
  t.name = "LB";
  t.init = {{kX, 0}, {kY, 0}};
  auto thread = [barrier](Addr read_from, Addr write_to) {
    LitmusThread th;
    th.make = [barrier, read_from, write_to](std::uint32_t skew) {
      Asm a;
      a.movi(X0, read_from).movi(X1, write_to).movi(X2, 1);
      a.nops(skew);
      a.ldr(X3, X0, 0);
      emit_barrier_op(a, barrier);
      a.str(X2, X1, 0);
      a.halt();
      return a.take("lb-thread");
    };
    th.observe = {X3};
    return th;
  };
  t.threads = {thread(kX, kY), thread(kY, kX)};
  return t;
}

Litmus make_s(Op barrier) {
  Litmus t;
  t.name = "S";
  t.init = {{kX, 0}, {kY, 0}};

  LitmusThread t0;
  t0.make = [barrier](std::uint32_t skew) {
    Asm a;
    a.movi(X0, kX).movi(X1, kY).movi(X2, 2).movi(X3, 1);
    a.nops(skew);
    a.str(X2, X0, 0);                  // X = 2
    emit_barrier_op(a, barrier);
    a.str(X3, X1, 0);                  // Y = 1
    a.halt();
    return a.take("s-t0");
  };

  LitmusThread t1;
  t1.make = [](std::uint32_t skew) {
    Asm a;
    a.movi(X0, kX).movi(X1, kY).movi(X3, 1);
    a.nops(skew);
    a.ldr(X4, X1, 0);                  // ry
    // Data dependency: the stored value depends on the load, so the store
    // cannot drain before the read — the classic S-shape consumer edge.
    a.eor(X5, X4, X4);
    a.add(X5, X3, X5);
    a.str(X5, X0, 0);                  // X = 1 (dependent)
    a.halt();
    return a.take("s-t1");
  };
  t1.observe = {X4};

  t.threads = {t0, t1};
  t.observe_mem = {kX};
  return t;
}

Litmus make_2p2w(Op barrier) {
  Litmus t;
  t.name = "2+2W";
  t.init = {{kX, 0}, {kY, 0}};
  auto thread = [barrier](Addr first, Addr second, std::uint64_t v) {
    LitmusThread th;
    th.make = [barrier, first, second, v](std::uint32_t skew) {
      Asm a;
      a.movi(X0, first).movi(X1, second);
      a.movi(X2, static_cast<std::int64_t>(v));
      a.movi(X3, static_cast<std::int64_t>(v + 1));
      a.nops(skew);
      a.str(X2, X0, 0);
      emit_barrier_op(a, barrier);
      a.str(X3, X1, 0);
      a.halt();
      return a.take("2p2w-thread");
    };
    return th;
  };
  t.threads = {thread(kX, kY, 1), thread(kY, kX, 3)};
  t.observe_mem = {kX, kY};
  return t;
}

Litmus make_wrc(Op t1_barrier, Op t2_barrier) {
  Litmus t;
  t.name = "WRC";
  t.init = {{kX, 0}, {kY, 0}};

  LitmusThread t0;
  t0.make = [](std::uint32_t skew) {
    Asm a;
    a.movi(X0, kX).movi(X2, 1);
    a.nops(skew);
    a.str(X2, X0, 0);  // X = 1
    a.halt();
    return a.take("wrc-t0");
  };

  LitmusThread t1;
  t1.make = [t1_barrier](std::uint32_t skew) {
    Asm a;
    a.movi(X0, kX).movi(X1, kY).movi(X2, 1);
    a.nops(skew);
    a.label("spin");
    a.ldr(X3, X0, 0);  // rx: wait until T0's write is visible here
    a.cbz(X3, "spin");
    emit_barrier_op(a, t1_barrier);
    a.str(X2, X1, 0);  // Y = 1
    a.halt();
    return a.take("wrc-t1");
  };
  t1.observe = {X3};

  LitmusThread t2;
  t2.make = [t2_barrier](std::uint32_t skew) {
    Asm a;
    a.movi(X0, kX).movi(X1, kY);
    a.ldr(X9, X0, 0);  // warm a copy of X (the potential stale window)
    a.nops(skew);
    a.label("poll");
    a.ldr(X4, X1, 0);  // ry
    emit_barrier_op(a, t2_barrier);
    a.ldr(X5, X0, 0);  // rx
    a.cbz(X4, "poll");
    a.halt();
    return a.take("wrc-t2");
  };
  t2.observe = {X4, X5};

  t.threads = {t0, t1, t2};
  return t;
}

}  // namespace armbar::litmus
