// Golden litmus-outcome corpus (ISSUE 5 satellite).
//
// Every Table 1 shape's allowed-outcome set — and the outcome set the
// timing simulator actually exhibits on each of the four platform presets —
// is pinned as a checked-in text file under tests/litmus/golden/. The
// corpus triangulates three independent sources of truth:
//
//   model (POR engine)  ==  golden file  ==  model (naive oracle)
//   sim observed per platform  ==  golden file, and ⊆ the model set
//
// so a regression in any one of the POR engine, the naive enumerator, the
// shape registry or the simulator shows up as a diff against a reviewed
// artifact instead of a silent drift. Files regenerate via
// `ARMBAR_REGEN_GOLDEN=1 ./test_litmus_golden` (same idiom as the Chrome
// trace golden).
//
// Format (armbar.golden.litmus/v1, line-oriented, '#' comments):
//
//   shape MP+dmb.st
//   weak (1,0)
//   weak-allowed 0
//   model (0,0) (0,23) (1,23)
//   sim kunpeng916 (0,0) (0,23) (1,23)
//   ... one `sim` line per platform preset with enough cores; model-only
//       shapes (CoRR) have none.
#pragma once

#include <map>
#include <set>
#include <string>

#include "litmus/shapes.hpp"
#include "model/model.hpp"

namespace armbar::litmus {

inline constexpr const char* kGoldenSchema = "armbar.golden.litmus/v1";

/// One shape's pinned corpus entry.
struct GoldenEntry {
  std::string shape;
  model::Outcome weak;
  bool weak_allowed = false;  ///< model-derived, not the legacy boolean
  std::set<model::Outcome> model_allowed;
  /// Platform preset name -> simulator-observed outcomes, projected into
  /// model-outcome space. Only presets with >= nthreads cores appear.
  std::map<std::string, std::set<model::Outcome>> sim_observed;
};

/// Enumerate the shape's model set with `mopts` and run its simulator
/// litmus across every platform preset (full skew sweep, no faults).
/// Aborts if the model errors or hits a budget cap — registered shapes
/// must enumerate exactly.
GoldenEntry collect_golden(const Table1Shape& s,
                           const model::ModelOptions& mopts = {});

/// Render an entry in armbar.golden.litmus/v1 form (ends with '\n').
std::string render_golden(const GoldenEntry& e);

/// Parse a v1 file. Returns false (with *err set) on malformed input.
bool parse_golden(const std::string& text, GoldenEntry* out,
                  std::string* err);

/// "MP+dmb.st" -> "MP_dmb_st.golden" (filesystem-safe, collision-free for
/// the registered shape names).
std::string golden_filename(const std::string& shape_name);

}  // namespace armbar::litmus
