#include "litmus/shapes.hpp"

#include "common/check.hpp"

namespace armbar::litmus {

using sim::Asm;
using sim::Op;
using namespace sim;  // registers X0..X30

namespace {

// Same locations the sim-side shapes use (litmus.cpp).
constexpr Addr kData = 0x1000;
constexpr Addr kFlag = 0x2000;
constexpr Addr kX = 0x3000;
constexpr Addr kY = 0x4000;

void barrier(Asm& a, Op b) {
  if (b != Op::kNop) a.emit({b});
}

// MP, model form. The producer mirrors the sim shape minus its
// line-ownership warmup (pure timing, invisible to the model); the consumer
// is the canonical straight-line projection of the sim's poll (see the
// header comment). Outcome = (flag, data); weak = (1, 0).
model::ConcurrentProgram mp_model(Op producer_barrier) {
  model::ConcurrentProgram p;
  p.name = "MP";
  {
    Asm a;
    a.movi(X0, kData).movi(X2, kFlag).movi(X3, 23).movi(X4, 1);
    a.str(X3, X0, 0);
    barrier(a, producer_barrier);
    a.str(X4, X2, 0);
    a.halt();
    p.threads.push_back(a.take("mp-producer"));
  }
  {
    Asm a;
    a.movi(X0, kData).movi(X2, kFlag);
    a.ldr(X3, X2, 0);   // flag
    a.dmb_ld();         // the poll consumer is at least this strong
    a.ldr(X10, X0, 0);  // data
    a.halt();
    p.threads.push_back(a.take("mp-consumer"));
  }
  p.observe_regs = {{1, X3}, {1, X10}};
  p.init = {{kData, 0}, {kFlag, 0}};
  return p;
}

// SB, model form — identical to the sim shape. Outcome = (t0.ry, t1.rx);
// weak = (0, 0).
model::ConcurrentProgram sb_model(Op b) {
  model::ConcurrentProgram p;
  p.name = "SB";
  auto side = [&](Addr mine, Addr other) {
    Asm a;
    a.movi(X0, mine).movi(X1, other).movi(X2, 1);
    a.str(X2, X0, 0);
    barrier(a, b);
    a.ldr(X3, X1, 0);
    a.halt();
    return a.take("sb-thread");
  };
  p.threads = {side(kX, kY), side(kY, kX)};
  p.observe_regs = {{0, X3}, {1, X3}};
  p.init = {{kX, 0}, {kY, 0}};
  return p;
}

// SB with release stores and acquire loads: no fence, but [L]; po; [A] is
// barrier-ordered (RCsc LDAR/STLR), so the weak (0,0) outcome is forbidden
// anyway. This row pins the simulator gap the differential fuzzer found
// (seed 807): LDAR must not be satisfied while an earlier STLR is still
// awaiting global visibility.
model::ConcurrentProgram sb_rel_acq_model() {
  model::ConcurrentProgram p;
  p.name = "SB+rel-acq";
  auto side = [&](Addr mine, Addr other) {
    Asm a;
    a.movi(X0, mine).movi(X1, other).movi(X2, 1);
    a.stlr(X2, X0, 0);
    a.ldar(X3, X1, 0);
    a.halt();
    return a.take("sb-rel-acq-thread");
  };
  p.threads = {side(kX, kY), side(kY, kX)};
  p.observe_regs = {{0, X3}, {1, X3}};
  p.init = {{kX, 0}, {kY, 0}};
  return p;
}

// CoRR, model form: two same-location reads must not see the writer's
// values regress. Outcome = (r1, r2); weak = (2, 1). The sim probe is a
// 100-iteration loop whose outcome does not project, so this row is
// model-only.
model::ConcurrentProgram corr_model() {
  model::ConcurrentProgram p;
  p.name = "CoRR";
  {
    Asm a;
    a.movi(X0, kX).movi(X1, 1).movi(X2, 2);
    a.str(X1, X0, 0);
    a.str(X2, X0, 0);
    a.halt();
    p.threads.push_back(a.take("co-writer"));
  }
  {
    Asm a;
    a.movi(X0, kX);
    a.ldr(X3, X0, 0);
    a.ldr(X4, X0, 0);
    a.halt();
    p.threads.push_back(a.take("co-reader"));
  }
  p.observe_regs = {{1, X3}, {1, X4}};
  p.init = {{kX, 0}};
  return p;
}

// LB, model form — identical to the sim shape. Outcome = (t0.rx, t1.ry);
// weak = (1, 1).
model::ConcurrentProgram lb_model(Op b) {
  model::ConcurrentProgram p;
  p.name = "LB";
  auto side = [&](Addr read_from, Addr write_to) {
    Asm a;
    a.movi(X0, read_from).movi(X1, write_to).movi(X2, 1);
    a.ldr(X3, X0, 0);
    barrier(a, b);
    a.str(X2, X1, 0);
    a.halt();
    return a.take("lb-thread");
  };
  p.threads = {side(kX, kY), side(kY, kX)};
  p.observe_regs = {{0, X3}, {1, X3}};
  p.init = {{kX, 0}, {kY, 0}};
  return p;
}

// S, model form — identical to the sim shape, including T1's data
// dependency. Outcome = (t1.ry, final X); weak = (1, 2).
model::ConcurrentProgram s_model(Op b) {
  model::ConcurrentProgram p;
  p.name = "S";
  {
    Asm a;
    a.movi(X0, kX).movi(X1, kY).movi(X2, 2).movi(X3, 1);
    a.str(X2, X0, 0);
    barrier(a, b);
    a.str(X3, X1, 0);
    a.halt();
    p.threads.push_back(a.take("s-t0"));
  }
  {
    Asm a;
    a.movi(X0, kX).movi(X1, kY).movi(X3, 1);
    a.ldr(X4, X1, 0);
    a.eor(X5, X4, X4);
    a.add(X5, X3, X5);
    a.str(X5, X0, 0);
    a.halt();
    p.threads.push_back(a.take("s-t1"));
  }
  p.observe_regs = {{1, X4}};
  p.init = {{kX, 0}, {kY, 0}};
  p.observe_mem = {kX};
  return p;
}

// 2+2W, model form — identical to the sim shape. Outcome =
// (final X, final Y); weak = (1, 3).
model::ConcurrentProgram p2w2_model(Op b) {
  model::ConcurrentProgram p;
  p.name = "2+2W";
  auto side = [&](Addr first, Addr second, std::int64_t v) {
    Asm a;
    a.movi(X0, first).movi(X1, second).movi(X2, v).movi(X3, v + 1);
    a.str(X2, X0, 0);
    barrier(a, b);
    a.str(X3, X1, 0);
    a.halt();
    return a.take("2p2w-thread");
  };
  p.threads = {side(kX, kY, 1), side(kY, kX, 3)};
  p.init = {{kX, 0}, {kY, 0}};
  p.observe_mem = {kX, kY};
  return p;
}

model::Outcome identity(const Outcome& o) { return o; }

std::vector<Table1Shape> build_shapes() {
  std::vector<Table1Shape> rows;
  auto add = [&](Table1Shape s) { rows.push_back(std::move(s)); };

  // MP sim outcome is {data} (the poll implies flag == 1 at exit);
  // project to the model's (flag, data).
  const auto mp_project = [](const Outcome& o) {
    return model::Outcome{1, o.at(0)};
  };
  auto mp = [&](std::string name, Op b, bool weak_allowed,
                bool sim_shows_weak) {
    Table1Shape s;
    s.name = std::move(name);
    s.model_prog = mp_model(b);
    s.weak = {1, 0};
    s.weak_allowed = weak_allowed;
    s.sim_shows_weak = sim_shows_weak;
    s.sim_make = [b] { return make_mp(b); };
    s.project = mp_project;
    s.sim_weak = {0};
    add(std::move(s));
  };
  // Table 1 proper: store->store order needs dmb.st / dmb.full / dsb;
  // dmb.ld between the stores orders nothing the shape needs.
  mp("MP", Op::kNop, /*weak_allowed=*/true, /*sim_shows_weak=*/true);
  mp("MP+dmb.st", Op::kDmbSt, false, false);
  mp("MP+dmb.full", Op::kDmbFull, false, false);
  mp("MP+dmb.ld", Op::kDmbLd, true, true);
  mp("MP+dsb.full", Op::kDsbFull, false, false);

  auto sb = [&](std::string name, Op b, bool weak_allowed,
                bool sim_shows_weak) {
    Table1Shape s;
    s.name = std::move(name);
    s.model_prog = sb_model(b);
    s.weak = {0, 0};
    s.weak_allowed = weak_allowed;
    s.sim_shows_weak = sim_shows_weak;
    s.sim_make = [b] { return make_sb(b); };
    s.project = identity;
    s.sim_weak = {0, 0};
    add(std::move(s));
  };
  // dmb.st orders store->store only; SB needs the full barrier.
  sb("SB", Op::kNop, true, true);
  sb("SB+dmb.st", Op::kDmbSt, true, true);
  sb("SB+dmb.full", Op::kDmbFull, false, false);

  {
    Table1Shape s;
    s.name = "SB+rel-acq";
    s.model_prog = sb_rel_acq_model();
    s.weak = {0, 0};
    s.weak_allowed = false;  // [L]; po; [A] in bob: RCsc forbids it
    s.sim_shows_weak = false;
    s.sim_make = [] {
      Litmus t;
      t.name = "SB+rel-acq";
      t.init = {{kX, 0}, {kY, 0}};
      auto thread = [](Addr mine, Addr other) {
        LitmusThread th;
        th.make = [mine, other](std::uint32_t skew) {
          Asm a;
          a.movi(X0, mine).movi(X1, other).movi(X2, 1);
          a.nops(skew);
          a.stlr(X2, X0, 0);
          a.ldar(X3, X1, 0);
          a.halt();
          return a.take("sb-rel-acq-thread");
        };
        th.observe = {X3};
        return th;
      };
      t.threads = {thread(kX, kY), thread(kY, kX)};
      return t;
    };
    s.project = identity;
    s.sim_weak = {0, 0};
    add(std::move(s));
  }

  {
    Table1Shape s;
    s.name = "CoRR";
    s.model_prog = corr_model();
    s.weak = {2, 1};  // second same-location read regresses
    s.weak_allowed = false;
    s.sim_shows_weak = false;
    add(std::move(s));  // model-only (see corr_model comment)
  }

  // The documented simulator strengthenings: architecturally weak shapes
  // (the model must allow them) the timing simulator can never exhibit
  // because load values are sampled at issue / same-line writes serialize
  // in request order (litmus.hpp "model fidelity").
  auto lb = [&](std::string name, Op b, bool weak_allowed) {
    Table1Shape s;
    s.name = std::move(name);
    s.model_prog = lb_model(b);
    s.weak = {1, 1};
    s.weak_allowed = weak_allowed;
    s.sim_shows_weak = false;
    s.sim_make = [b] { return make_lb(b); };
    s.project = identity;
    s.sim_weak = {1, 1};
    add(std::move(s));
  };
  lb("LB", Op::kNop, true);
  lb("LB+dmb.full", Op::kDmbFull, false);

  {
    Table1Shape s;
    s.name = "S";
    s.model_prog = s_model(Op::kNop);
    s.weak = {1, 2};
    s.weak_allowed = true;
    s.sim_shows_weak = false;
    s.sim_make = [] { return make_s(Op::kNop); };
    s.project = identity;
    s.sim_weak = {1, 2};
    add(std::move(s));
  }
  {
    Table1Shape s;
    s.name = "S+dmb.st";
    s.model_prog = s_model(Op::kDmbSt);
    s.weak = {1, 2};
    s.weak_allowed = false;
    s.sim_shows_weak = false;
    s.sim_make = [] { return make_s(Op::kDmbSt); };
    s.project = identity;
    s.sim_weak = {1, 2};
    add(std::move(s));
  }
  {
    Table1Shape s;
    s.name = "2+2W";
    s.model_prog = p2w2_model(Op::kNop);
    s.weak = {1, 3};
    s.weak_allowed = true;
    s.sim_shows_weak = false;
    s.sim_make = [] { return make_2p2w(Op::kNop); };
    s.project = identity;
    s.sim_weak = {1, 3};
    add(std::move(s));
  }
  {
    Table1Shape s;
    s.name = "2+2W+dmb.st";
    s.model_prog = p2w2_model(Op::kDmbSt);
    s.weak = {1, 3};
    s.weak_allowed = false;
    s.sim_shows_weak = false;
    s.sim_make = [] { return make_2p2w(Op::kDmbSt); };
    s.project = identity;
    s.sim_weak = {1, 3};
    add(std::move(s));
  }
  return rows;
}

}  // namespace

const std::vector<Table1Shape>& table1_shapes() {
  static const std::vector<Table1Shape> shapes = build_shapes();
  return shapes;
}

const Table1Shape& table1_shape(const std::string& name) {
  for (const Table1Shape& s : table1_shapes())
    if (s.name == name) return s;
  ARMBAR_CHECK_MSG(false, "unknown Table 1 shape");
  __builtin_unreachable();
}

model::OutcomeSet derive_allowed(const Table1Shape& s) {
  model::OutcomeSet set = model::enumerate_outcomes(s.model_prog);
  ARMBAR_CHECK_MSG(set.ok(), "Table 1 shape failed to enumerate");
  ARMBAR_CHECK_MSG(set.complete, "Table 1 shape hit a model budget cap");
  return set;
}

bool model_allows_weak(const Table1Shape& s) {
  return derive_allowed(s).allows(s.weak);
}

}  // namespace armbar::litmus
