#include "litmus/golden.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "sim/platform.hpp"

namespace armbar::litmus {
namespace {

/// "(0,23)" -> {0, 23}. Returns false on malformed input.
bool parse_outcome(const std::string& tok, model::Outcome* out) {
  if (tok.size() < 2 || tok.front() != '(' || tok.back() != ')')
    return false;
  out->clear();
  if (tok == "()") return true;  // zero-arity outcome
  std::stringstream body(tok.substr(1, tok.size() - 2));
  std::string field;
  while (std::getline(body, field, ',')) {
    if (field.empty()) return false;
    char* end = nullptr;
    const std::uint64_t v = std::strtoull(field.c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return false;
    out->push_back(v);
  }
  return !out->empty();
}

bool parse_outcome_set(std::istringstream& rest,
                       std::set<model::Outcome>* out) {
  out->clear();
  std::string tok;
  while (rest >> tok) {
    model::Outcome o;
    if (!parse_outcome(tok, &o)) return false;
    out->insert(std::move(o));
  }
  return true;
}

void render_outcome_set(std::ostringstream& os,
                        const std::set<model::Outcome>& set) {
  for (const model::Outcome& o : set) os << ' ' << model::to_string(o);
}

}  // namespace

GoldenEntry collect_golden(const Table1Shape& s,
                           const model::ModelOptions& mopts) {
  GoldenEntry e;
  e.shape = s.name;
  e.weak = s.weak;

  const model::OutcomeSet set = model::enumerate_outcomes(s.model_prog, mopts);
  if (!set.ok() || !set.complete) {
    std::fprintf(stderr,
                 "collect_golden(%s): model must enumerate exactly (%s)\n",
                 s.name.c_str(),
                 set.ok() ? "budget exhausted" : set.error.c_str());
    std::abort();
  }
  e.model_allowed = set.allowed;
  e.weak_allowed = set.allows(s.weak);

  if (!s.sim_make) return e;  // model-only shape (CoRR)
  const Litmus lit = s.sim_make();
  for (const sim::PlatformSpec& spec : sim::all_platforms()) {
    if (spec.total_cores() < lit.threads.size()) continue;
    LitmusConfig cfg;
    cfg.platform = spec;
    for (std::size_t t = 0; t < lit.threads.size(); ++t)
      cfg.binding.push_back(static_cast<CoreId>(t));
    const LitmusReport rep = run_litmus(lit, cfg);
    std::set<model::Outcome>& observed = e.sim_observed[spec.name];
    for (const auto& [o, n] : rep.histogram) {
      (void)n;
      observed.insert(s.project(o));
    }
  }
  return e;
}

std::string render_golden(const GoldenEntry& e) {
  std::ostringstream os;
  os << "# " << kGoldenSchema << " — pinned outcome sets for " << e.shape
     << "\n";
  os << "# Regenerate: ARMBAR_REGEN_GOLDEN=1 ./test_litmus_golden\n";
  os << "shape " << e.shape << "\n";
  os << "weak " << model::to_string(e.weak) << "\n";
  os << "weak-allowed " << (e.weak_allowed ? 1 : 0) << "\n";
  os << "model";
  render_outcome_set(os, e.model_allowed);
  os << "\n";
  for (const auto& [platform, observed] : e.sim_observed) {
    os << "sim " << platform;
    render_outcome_set(os, observed);
    os << "\n";
  }
  return os.str();
}

bool parse_golden(const std::string& text, GoldenEntry* out,
                  std::string* err) {
  *out = GoldenEntry{};
  bool saw_shape = false, saw_weak = false, saw_allowed = false,
       saw_model = false;
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& why) {
    if (err) *err = "line " + std::to_string(lineno) + ": " + why;
    return false;
  };
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream rest(line);
    std::string key;
    rest >> key;
    if (key == "shape") {
      if (!(rest >> out->shape)) return fail("missing shape name");
      saw_shape = true;
    } else if (key == "weak") {
      std::string tok;
      if (!(rest >> tok) || !parse_outcome(tok, &out->weak))
        return fail("bad weak outcome");
      saw_weak = true;
    } else if (key == "weak-allowed") {
      int v = -1;
      if (!(rest >> v) || (v != 0 && v != 1))
        return fail("weak-allowed must be 0 or 1");
      out->weak_allowed = v == 1;
      saw_allowed = true;
    } else if (key == "model") {
      if (!parse_outcome_set(rest, &out->model_allowed))
        return fail("bad model outcome set");
      saw_model = true;
    } else if (key == "sim") {
      std::string platform;
      if (!(rest >> platform)) return fail("sim line missing platform");
      if (!parse_outcome_set(rest, &out->sim_observed[platform]))
        return fail("bad sim outcome set");
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  if (!saw_shape || !saw_weak || !saw_allowed || !saw_model)
    return fail("incomplete entry (need shape/weak/weak-allowed/model)");
  return true;
}

std::string golden_filename(const std::string& shape_name) {
  std::string id = shape_name;
  for (char& c : id)
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  return id + ".golden";
}

}  // namespace armbar::litmus
