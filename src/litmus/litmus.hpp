// Litmus-test harness for the simulator.
//
// A litmus test is a small multi-threaded program with an initial memory
// state and a set of observed registers. The harness runs the test across a
// sweep of timing perturbations (per-thread start skews and core bindings)
// and collects the histogram of observed outcomes. Tests then assert which
// outcomes are reachable under WMM and which are forbidden under TSO or
// with barriers inserted (paper Table 1 and §2).
//
// Model fidelity notes
// --------------------
// * Store-side reordering (non-FIFO store buffer, deferred visibility) is
//   fully modelled: MP and SB behave as on real ARM hardware.
// * Load values are sampled when the load is issued, so pure load-side
//   reorderings that require out-of-order load *satisfaction* (e.g. the LB
//   shape) are not observable: the model is slightly stronger than the
//   architecture on that axis. This does not affect the paper's
//   experiments, which all concern barriers ordering stores after RMRs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "sim/machine.hpp"

namespace armbar::litmus {

using sim::Program;  // Addr/CoreId/NodeId/Cycle come from the armbar namespace

/// One thread of a litmus test. `make(skew)` must emit a program whose
/// first `skew` instructions are nops (the harness sweeps skews to explore
/// interleavings). `observe` lists registers whose final values form the
/// outcome tuple.
struct LitmusThread {
  std::function<Program(std::uint32_t skew)> make;
  std::vector<sim::Reg> observe;
};

/// A complete litmus test.
struct Litmus {
  std::string name;
  std::vector<std::pair<Addr, std::uint64_t>> init;
  /// Optional NUMA placement: (addr, bytes, node).
  std::vector<std::tuple<Addr, std::size_t, NodeId>> homes;
  std::vector<LitmusThread> threads;
  /// Final memory words appended to each outcome after the register values
  /// (for shapes like 2+2W whose condition is over coherence order).
  std::vector<Addr> observe_mem;
};

/// An observed outcome: the concatenated observed register values,
/// thread-major in declaration order.
using Outcome = std::vector<std::uint64_t>;

struct LitmusReport {
  std::map<Outcome, std::uint64_t> histogram;
  std::uint64_t runs = 0;

  bool saw(const Outcome& o) const { return histogram.contains(o); }
  std::uint64_t count(const Outcome& o) const {
    auto it = histogram.find(o);
    return it == histogram.end() ? 0 : it->second;
  }
  std::string str() const;
};

struct LitmusConfig {
  sim::PlatformSpec platform;
  std::vector<CoreId> binding;    ///< core for each thread
  std::uint32_t max_skew = 256;   ///< skews swept per thread: 0..max step `skew_step`
  std::uint32_t skew_step = 16;
  bool tso = false;
  Cycle max_cycles = 10'000'000;
  /// Fault-injection plan applied to every run of the sweep (disabled by
  /// default). Faults perturb timing only, so the set of *allowed* outcomes
  /// is unchanged — the fault suite asserts exactly that.
  sim::fault::FaultPlan fault{};
  /// Run the MachineVerifier every N cycles of every run (0 = off).
  Cycle verify_every = 0;
};

/// Run the litmus test over the full skew sweep; aborts on timeout.
LitmusReport run_litmus(const Litmus& test, const LitmusConfig& cfg);

// ---- the standard shapes used by the paper and the test suite ----

/// Message passing (paper Table 1): T0 stores data then flag; T1 spins on
/// flag then reads data. Outcome = {T1.data}. `barrier` is inserted between
/// the two stores (kNop means none); `data` observed != 23 is the weak
/// outcome.
Litmus make_mp(sim::Op producer_barrier);

/// Store buffering: T0 stores X, reads Y; T1 stores Y, reads X.
/// Outcome = {T0.ry, T1.rx}; (0,0) is the relaxed outcome. `barrier` is
/// inserted between each thread's store and load.
Litmus make_sb(sim::Op barrier);

/// Coherence: two stores by the same thread to one location must be seen
/// in order by a spinning observer. Outcome = {observer saw regression}.
Litmus make_coherence();

/// Single-copy atomicity: a 64-bit store is never observed torn. The
/// producer alternates between two bit patterns; the observer records
/// whether it ever saw a mix. Outcome = {saw_torn}.
Litmus make_atomicity();

/// Load buffering: T0 reads X then stores Y; T1 reads Y then stores X.
/// Outcome = {T0.rx, T1.ry}; (1,1) is the relaxed outcome. NOT observable
/// in this model (load values are sampled at issue — see the fidelity note
/// above), matching most real implementations even though the architecture
/// allows it.
Litmus make_lb(sim::Op barrier);

/// S shape: T0 stores X=2 then (barrier) stores Y=1; T1 reads Y then
/// stores X=1. Outcome = {T1.ry, final X}. The relaxed outcome is
/// ry==1 && X==2 (T1's store to X lost "before" T0's earlier store).
Litmus make_s(sim::Op barrier);

/// 2+2W: both threads store to both locations in opposite orders.
/// Outcome = {final X, final Y}; (1,1) — each location keeping the
/// *first* store in the respective program order — is the relaxed shape.
Litmus make_2p2w(sim::Op barrier);

/// WRC (write-to-read causality): T0 stores X; T1 reads X then stores Y;
/// T2 reads Y then reads X. Outcome = {T1.rx, T2.ry, T2.rx}. The
/// non-causal outcome is (1,1,0). Our machine's stale-share window is the
/// only non-MCA behaviour; the harness reports whether it manifests.
Litmus make_wrc(sim::Op t1_barrier, sim::Op t2_barrier);

}  // namespace armbar::litmus
