#include "fuzz/diff.hpp"

#include <chrono>
#include <sstream>

#include "prof/prof.hpp"
#include "sim/machine.hpp"
#include "sim/platform.hpp"

namespace armbar::fuzz {
namespace {

constexpr std::size_t kMaxFailures = 16;

// FNV-1a 64 over a canonical string rendering — local so the fuzz layer
// stays independent of the runner's Fingerprint.
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Prepend `n` nops (shifting branch targets) — staggers thread start the
/// same way the litmus harness's skew sweep does.
sim::Program skewed(const sim::Program& p, std::uint32_t n) {
  if (n == 0) return p;
  sim::Program out;
  out.name = p.name;
  out.code.reserve(p.code.size() + n);
  for (std::uint32_t i = 0; i < n; ++i) out.code.push_back({sim::Op::kNop});
  for (sim::Instr ins : p.code) {
    if (sim::is_branch(ins.op)) ins.target += n;
    out.code.push_back(ins);
  }
  return out;
}

}  // namespace

const char* to_string(SimMutation m) {
  switch (m) {
    case SimMutation::kNone: return "none";
    case SimMutation::kDropDmbSt: return "drop-dmb-st";
    case SimMutation::kDropDmbLd: return "drop-dmb-ld";
    case SimMutation::kDropDmbFull: return "drop-dmb-full";
    case SimMutation::kDropRelAcq: return "drop-rel-acq";
  }
  return "?";
}

bool mutation_from_string(const std::string& s, SimMutation* out) {
  for (auto m : {SimMutation::kNone, SimMutation::kDropDmbSt,
                 SimMutation::kDropDmbLd, SimMutation::kDropDmbFull,
                 SimMutation::kDropRelAcq}) {
    if (s == to_string(m)) {
      *out = m;
      return true;
    }
  }
  return false;
}

sim::Program apply_mutation(const sim::Program& p, SimMutation m) {
  if (m == SimMutation::kNone) return p;
  sim::Program out = p;
  for (sim::Instr& ins : out.code) {
    if (m == SimMutation::kDropRelAcq) {
      if (ins.op == sim::Op::kStlr) ins.op = sim::Op::kStr;
      if (ins.op == sim::Op::kLdar || ins.op == sim::Op::kLdapr)
        ins.op = sim::Op::kLdr;
      continue;
    }
    const bool drop =
        (m == SimMutation::kDropDmbSt &&
         (ins.op == sim::Op::kDmbSt || ins.op == sim::Op::kDsbSt)) ||
        (m == SimMutation::kDropDmbLd &&
         (ins.op == sim::Op::kDmbLd || ins.op == sim::Op::kDsbLd)) ||
        (m == SimMutation::kDropDmbFull &&
         (ins.op == sim::Op::kDmbFull || ins.op == sim::Op::kDsbFull));
    if (drop) ins = {sim::Op::kNop};
  }
  return out;
}

DiffOptions DiffOptions::defaults(std::uint32_t chaos_seeds) {
  DiffOptions o;
  for (const auto& spec : sim::all_platforms()) o.platforms.push_back(spec.name);
  o.plans.push_back({});  // clean run first
  for (std::uint32_t s = 1; s <= chaos_seeds; ++s)
    o.plans.push_back(sim::fault::FaultPlan::chaos(s));
  o.skews = {0, 11};
  return o;
}

std::uint64_t DiffResult::digest() const {
  std::ostringstream os;
  os << "v1|" << model_valid << '|' << model_error << '|' << runs << "|A";
  for (const auto& o : allowed) os << model::to_string(o);
  os << "|O";
  for (const auto& o : observed) os << model::to_string(o);
  os << "|F";
  for (const auto& f : failures) {
    os << f.kind << '@' << f.at.platform << '/' << f.at.plan_index << '/'
       << f.at.skew << ':' << model::to_string(f.observed) << ':'
       << (f.has_diagnostic ? f.diagnostic.kind + ";" + f.diagnostic.summary
                            : std::string());
  }
  return fnv1a(os.str());
}

std::string DiffResult::summary() const {
  std::ostringstream os;
  os << runs << " runs, " << observed.size() << "/" << allowed.size()
     << " outcomes observed/allowed";
  if (!model_valid) os << ", model invalid (" << model_error << ")";
  if (!failures.empty()) {
    os << ", " << failures.size() << " failure(s):";
    for (const auto& f : failures)
      os << " [" << f.kind << " on " << f.at.platform << " plan#"
         << f.at.plan_index << " skew " << f.at.skew << ": " << f.detail
         << "]";
  }
  return os.str();
}

DiffResult run_diff(const model::ConcurrentProgram& prog,
                    const DiffOptions& opts) {
  ARMBAR_PROF_SCOPE(kFuzzDiff);
  DiffResult res;

  const auto model_start = std::chrono::steady_clock::now();
  const model::OutcomeSet set = model::enumerate_outcomes(prog, opts.model);
  res.model_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - model_start)
          .count());
  res.model_candidates = set.candidates;
  if (!set.ok() || !set.complete) {
    res.model_valid = false;
    res.model_error = set.ok() ? "enumeration budget exhausted" : set.error;
  }
  res.allowed = set.allowed;
  const auto sim_start = std::chrono::steady_clock::now();

  // Deduplicate failures on (kind, platform, observed) so one systematic
  // divergence doesn't flood the record across plans and skews.
  std::set<std::string> seen;
  auto add_failure = [&](DiffFailure f) {
    std::ostringstream key;
    key << f.kind << '|' << f.at.platform << '|'
        << model::to_string(f.observed);
    if (!seen.insert(key.str()).second) return;
    if (res.failures.size() < kMaxFailures) res.failures.push_back(std::move(f));
  };

  for (const std::string& pname : opts.platforms) {
    const sim::PlatformSpec spec = sim::platform_by_name(pname);
    if (spec.total_cores() < prog.threads.size()) continue;
    for (std::size_t pi = 0; pi < opts.plans.size(); ++pi) {
      const sim::fault::FaultPlan& plan = opts.plans[pi];
      for (std::uint32_t skew : opts.skews) {
        // Per-thread stagger grows with the thread index so threads don't
        // just shift together.
        std::vector<sim::Program> progs;
        progs.reserve(prog.threads.size());
        for (std::size_t t = 0; t < prog.threads.size(); ++t)
          progs.push_back(
              skewed(apply_mutation(prog.threads[t], opts.mutation),
                     skew * static_cast<std::uint32_t>(t + 1) % 32));

        sim::Machine m(spec, 1u << 20);
        for (const auto& [addr, v] : prog.init) m.mem().poke(addr, v);
        for (std::size_t t = 0; t < progs.size(); ++t)
          m.load_program(static_cast<CoreId>(t), progs[t]);

        sim::RunConfig rc;
        rc.max_cycles = opts.max_cycles;
        rc.verify_every = opts.verify_every;
        if (plan.enabled()) rc.fault = &plan;

        DiffRunRef at{pname, pi, skew};
        ++res.runs;
        try {
          const sim::RunResult rr = m.run(rc);
          if (!rr.completed) {
            DiffFailure f;
            f.kind = "timeout";
            f.at = at;
            f.detail = "no completion within " +
                       std::to_string(opts.max_cycles) + " cycles";
            add_failure(std::move(f));
            continue;
          }
          const model::Outcome outcome =
              m.extract_state(prog.observe_regs, prog.observe_mem);
          res.observed.insert(outcome);
          if (res.model_valid && set.allowed.count(outcome) == 0) {
            DiffFailure f;
            f.kind = "mismatch";
            f.at = at;
            f.observed = outcome;
            f.detail = "outcome " + model::to_string(outcome) +
                       " outside model set " + model::to_string(set);
            add_failure(std::move(f));
          }
        } catch (const sim::SimError& e) {
          DiffFailure f;
          f.kind = e.diagnostic().kind;  // invariant_violation | hang
          f.at = at;
          f.diagnostic = e.diagnostic();
          f.has_diagnostic = true;
          f.detail = e.diagnostic().summary;
          add_failure(std::move(f));
        }
      }
    }
  }
  res.sim_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - sim_start)
          .count());
  return res;
}

}  // namespace armbar::fuzz
