#include "fuzz/gen.hpp"

#include <algorithm>
#include <iterator>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "prof/prof.hpp"
#include "sim/program.hpp"

namespace armbar::fuzz {
namespace {

using sim::Asm;
using sim::Op;
using sim::Reg;

constexpr Addr kAddrStride = 0x1000;  // one cache line + padding per address
Addr addr_of(std::uint32_t idx) { return kAddrStride * (idx + 1); }

/// Abstract op, mutated freely before rendering to real instructions.
struct AOp {
  enum Kind : std::uint8_t {
    kStore,         ///< str  #fresh -> [addr]
    kRelStore,      ///< stlr #fresh -> [addr]
    kLoad,          ///< ldr  fresh-reg <- [addr]
    kAcqLoad,       ///< ldar/ldapr fresh-reg <- [addr]
    kAddrDepLoad,   ///< eor-self address dependency on the latest load
    kDataDepStore,  ///< stored value data-depends on the latest load
    kCtrlDep,       ///< forward cbnz on the latest load (ctrl dep barrier)
    kBarrier,
  };
  Kind kind = kStore;
  std::uint32_t addr = 0;       ///< address index
  Op barrier = Op::kDmbFull;    ///< kBarrier only
  bool rcpc = false;            ///< kAcqLoad: LDAPR instead of LDAR
};

const Op kBarrierMenu[] = {
    // dmb-weighted: the paper's focus, and where placement bugs live.
    Op::kDmbFull, Op::kDmbSt, Op::kDmbLd, Op::kDmbFull, Op::kDmbSt,
    Op::kDmbLd,   Op::kDsbFull, Op::kDsbSt, Op::kDsbLd, Op::kIsb,
};

class CaseBuilder {
 public:
  CaseBuilder(std::uint64_t seed, const GenOptions& opts)
      : seed_(seed), rng_(seed ^ 0xa5a5f00dcafe1234ULL), opts_(opts) {
    naddrs_ = std::max<std::uint32_t>(1, std::min<std::uint32_t>(opts.num_addrs, 4));
  }

  model::ConcurrentProgram build() {
    // Lock shapes are opt-in and pre-rolled: with the knob at 0 no random
    // draw happens here, so default-option seeds stay bit-identical.
    if (opts_.lock_shape_pct > 0 &&
        rng_.below(100) < opts_.lock_shape_pct && naddrs_ >= 2) {
      lock_skeleton();
      mutate();
      return render();
    }
    // Shape bias: MP 35%, SB 20%, IRIW 15% (when 4 threads fit), the rest
    // fully random.
    const std::uint64_t roll = rng_.below(100);
    if (roll < 35 && naddrs_ >= 2) {
      mp_skeleton();
    } else if (roll < 55 && naddrs_ >= 2) {
      sb_skeleton();
    } else if (roll < 70 && naddrs_ >= 2 && opts_.max_threads >= 4) {
      iriw_skeleton();
    } else {
      random_skeleton();
    }
    mutate();
    return render();
  }

 private:
  std::uint32_t rand_addr() {
    return static_cast<std::uint32_t>(rng_.below(naddrs_));
  }

  AOp rand_barrier() {
    AOp op;
    op.kind = AOp::kBarrier;
    op.barrier = kBarrierMenu[rng_.below(std::size(kBarrierMenu))];
    return op;
  }

  AOp rand_op() {
    AOp op;
    op.addr = rand_addr();
    switch (rng_.below(10)) {
      case 0: case 1: op.kind = AOp::kStore; break;
      case 2: case 3: op.kind = AOp::kLoad; break;
      case 4: op.kind = AOp::kRelStore; break;
      case 5: op.kind = AOp::kAcqLoad; op.rcpc = rng_.chance(1, 3); break;
      case 6: op.kind = AOp::kAddrDepLoad; break;
      case 7: op.kind = AOp::kDataDepStore; break;
      case 8: op.kind = AOp::kCtrlDep; break;
      default: return rand_barrier();
    }
    return op;
  }

  // Two distinct address indices for the two-location skeletons.
  std::pair<std::uint32_t, std::uint32_t> two_addrs() {
    const std::uint32_t a = rand_addr();
    std::uint32_t b = rand_addr();
    if (b == a) b = (a + 1) % naddrs_;
    return {a, b};
  }

  void mp_skeleton() {
    const auto [data, flag] = two_addrs();
    std::vector<AOp> producer;
    producer.push_back({AOp::kStore, data});
    if (rng_.chance(3, 4)) producer.push_back(rand_barrier());
    producer.push_back(
        {rng_.chance(1, 4) ? AOp::kRelStore : AOp::kStore, flag});
    std::vector<AOp> consumer;
    consumer.push_back(
        {rng_.chance(1, 4) ? AOp::kAcqLoad : AOp::kLoad, flag});
    switch (rng_.below(4)) {
      case 0: consumer.push_back(rand_barrier()); break;
      case 1: consumer.push_back({AOp::kCtrlDep, 0}); break;
      default: break;  // bare or dependency-carried second load below
    }
    consumer.push_back(
        {rng_.chance(1, 3) ? AOp::kAddrDepLoad : AOp::kLoad, data});
    threads_ = {std::move(producer), std::move(consumer)};
  }

  void sb_skeleton() {
    const auto [x, y] = two_addrs();
    auto side = [&](std::uint32_t mine, std::uint32_t other) {
      std::vector<AOp> t;
      t.push_back({AOp::kStore, mine});
      if (rng_.chance(1, 2)) t.push_back(rand_barrier());
      t.push_back({AOp::kLoad, other});
      return t;
    };
    threads_ = {side(x, y), side(y, x)};
  }

  void iriw_skeleton() {
    const auto [x, y] = two_addrs();
    auto reader = [&](std::uint32_t first, std::uint32_t second) {
      std::vector<AOp> t;
      t.push_back({AOp::kLoad, first});
      if (rng_.chance(2, 3)) t.push_back(rand_barrier());
      t.push_back({AOp::kLoad, second});
      return t;
    };
    threads_ = {{{AOp::kStore, x}}, {{AOp::kStore, y}},
                reader(x, y), reader(y, x)};
  }

  // Lock-handoff skeleton (ISSUE 9): the generic shape the lockver
  // templates encode deliberately. The edge menus span correct (dmb ish,
  // STLR/LDAR) and insufficient (dmb st, nothing) choices — the harness
  // earns its keep on the boundary between them.
  void lock_skeleton() {
    const auto [grant, data] = two_addrs();
    std::uint32_t probe = data;
    for (std::uint32_t i = 0; i < naddrs_; ++i)
      if (i != grant && i != data) {
        probe = i;
        break;
      }
    std::vector<AOp> holder;
    holder.push_back({AOp::kStore, data});     // CS write
    holder.push_back({AOp::kLoad, probe});     // CS read (overlap witness)
    switch (rng_.below(4)) {                   // release edge menu
      case 0:
        holder.push_back({AOp::kBarrier, 0, Op::kDmbFull});
        holder.push_back({AOp::kStore, grant});
        break;
      case 1:
        holder.push_back({AOp::kRelStore, grant});
        break;
      case 2:  // store-only barrier: insufficient for the CS load above
        holder.push_back({AOp::kBarrier, 0, Op::kDmbSt});
        holder.push_back({AOp::kStore, grant});
        break;
      default:  // no edge at all
        holder.push_back({AOp::kStore, grant});
        break;
    }
    std::vector<AOp> waiter;
    waiter.push_back(
        {rng_.chance(1, 2) ? AOp::kAcqLoad : AOp::kLoad, grant});  // acquire
    if (rng_.chance(1, 2)) waiter.push_back({AOp::kCtrlDep, 0});
    waiter.push_back({AOp::kStore, probe});  // waiter's CS write
    waiter.push_back(
        {rng_.chance(1, 3) ? AOp::kAddrDepLoad : AOp::kLoad, data});
    threads_ = {std::move(holder), std::move(waiter)};
  }

  void random_skeleton() {
    const auto nthreads = static_cast<std::uint32_t>(
        2 + rng_.below(std::max<std::uint32_t>(opts_.max_threads, 2) - 1));
    threads_.resize(nthreads);
    for (auto& t : threads_) {
      const auto nops = static_cast<std::uint32_t>(
          2 + rng_.below(std::max<std::uint32_t>(opts_.max_ops_per_thread, 3) - 1));
      for (std::uint32_t i = 0; i < nops; ++i) t.push_back(rand_op());
    }
  }

  void mutate() {
    // Barrier churn: the differential harness earns its keep on programs
    // whose barrier placement is *almost* right.
    if (rng_.chance(1, 2)) {
      auto& t = threads_[rng_.below(threads_.size())];
      t.insert(t.begin() + static_cast<std::ptrdiff_t>(rng_.below(t.size() + 1)),
               rand_barrier());
    }
    if (rng_.chance(1, 3)) {
      auto& t = threads_[rng_.below(threads_.size())];
      for (auto it = t.begin(); it != t.end(); ++it)
        if (it->kind == AOp::kBarrier) {
          t.erase(it);
          break;
        }
    }
    if (rng_.chance(1, 2))
      threads_[rng_.below(threads_.size())].push_back(rand_op());
  }

  model::ConcurrentProgram render() {
    model::ConcurrentProgram p;
    p.name = "fuzz-" + std::to_string(seed_);
    std::uint64_t next_value = 1;  // distinct store values, case-wide
    std::set<std::uint32_t> used_addrs;
    for (std::uint32_t t = 0; t < threads_.size(); ++t) {
      Asm a;
      for (std::uint32_t i = 0; i < naddrs_; ++i)
        a.movi(static_cast<Reg>(i), static_cast<std::int64_t>(addr_of(i)));
      std::uint32_t next_reg = 8;
      int label_n = 0;
      Reg last_load = sim::XZR;
      auto alloc = [&] {
        return static_cast<Reg>(std::min<std::uint32_t>(next_reg++, 28));
      };
      for (const AOp& op : threads_[t]) {
        if (op.kind != AOp::kBarrier && op.kind != AOp::kCtrlDep)
          used_addrs.insert(op.addr);
        const Reg base = static_cast<Reg>(op.addr);
        switch (op.kind) {
          case AOp::kStore:
          case AOp::kRelStore: {
            const Reg v = alloc();
            a.movi(v, static_cast<std::int64_t>(next_value++));
            if (op.kind == AOp::kRelStore) a.stlr(v, base);
            else a.str(v, base);
            break;
          }
          case AOp::kDataDepStore: {
            if (last_load == sim::XZR) {
              const Reg v = alloc();
              a.movi(v, static_cast<std::int64_t>(next_value++));
              a.str(v, base);
              break;
            }
            const Reg z = alloc();
            a.eor(z, last_load, last_load);
            const Reg v = alloc();
            a.addi(v, z, static_cast<std::int64_t>(next_value++));
            a.str(v, base);
            break;
          }
          case AOp::kLoad:
          case AOp::kAcqLoad: {
            const Reg d = alloc();
            if (op.kind == AOp::kAcqLoad && !op.rcpc) a.ldar(d, base);
            else if (op.kind == AOp::kAcqLoad) a.ldapr(d, base);
            else a.ldr(d, base);
            last_load = d;
            p.observe_regs.emplace_back(t, d);
            break;
          }
          case AOp::kAddrDepLoad: {
            const Reg d = alloc();
            if (last_load == sim::XZR) {
              a.ldr(d, base);
            } else {
              const Reg z = alloc();
              a.eor(z, last_load, last_load);
              a.ldr_idx(d, base, z);
            }
            last_load = d;
            p.observe_regs.emplace_back(t, d);
            break;
          }
          case AOp::kCtrlDep: {
            if (last_load == sim::XZR) break;
            const std::string l = "j" + std::to_string(label_n++);
            a.cbnz(last_load, l);
            a.label(l);
            break;
          }
          case AOp::kBarrier:
            a.emit({op.barrier});
            break;
        }
      }
      a.halt();
      p.threads.push_back(a.take(p.name + "-t" + std::to_string(t)));
    }
    for (std::uint32_t idx : used_addrs) {
      p.init.emplace_back(addr_of(idx), 0);
      p.observe_mem.push_back(addr_of(idx));
    }
    return p;
  }

  const std::uint64_t seed_;
  Rng rng_;
  const GenOptions& opts_;
  std::uint32_t naddrs_;
  std::vector<std::vector<AOp>> threads_;
};

}  // namespace

model::ConcurrentProgram generate(std::uint64_t seed, const GenOptions& opts) {
  ARMBAR_PROF_SCOPE(kFuzzGenerate);
  return CaseBuilder(seed, opts).build();
}

}  // namespace armbar::fuzz
