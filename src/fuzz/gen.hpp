// Seeded random litmus-program generator (ISSUE 4).
//
// Draws small multi-threaded micro-ISA programs from a deterministic
// xoshiro stream, biased toward the shapes where ARM ordering bugs hide:
// message-passing (write/write vs read/read), store-buffering (write/read
// vs write/read) and IRIW (independent writers, disagreeing readers)
// skeletons, each perturbed with random barrier placement/removal, extra
// accesses, and the three dependency idioms (eor-self address dependency,
// data dependency through the stored value, forward-branch control
// dependency).
//
// Invariants the rest of the pipeline relies on:
//   * same seed (and options) -> byte-identical program;
//   * straight-line control flow: only forward branches, every thread ends
//     in halt, so both the reference model's path enumeration and the
//     simulator terminate;
//   * only model-supported ops (no WFE/LDXR/STXR/SWP);
//   * every store carries a distinct value, so reads-from is unambiguous
//     when debugging a mismatch;
//   * every loaded register is observed, and every touched address is in
//     observe_mem — maximum discrimination between executions.
#pragma once

#include <cstdint>

#include "model/model.hpp"

namespace armbar::fuzz {

struct GenOptions {
  // Defaults raised in ISSUE 5: the POR engine makes deeper/wider programs
  // affordable, so campaigns now default to the generator's full range.
  // Raising them changes the program every seed maps to — re-pin any seed
  // ci.sh or a repro bundle depends on when touching these.
  std::uint32_t max_threads = 5;         ///< >= 2; 4+ enables IRIW shapes
  std::uint32_t max_ops_per_thread = 8;  ///< memory/barrier ops in the body
  std::uint32_t num_addrs = 4;           ///< 1..4 shared locations
  /// Percent of cases drawn as lock-handoff skeletons (ISSUE 9): a holder
  /// whose critical section stores data and loads a probe word, a release
  /// edge drawn from the strong/weakened/insufficient menu (dmb ish, STLR,
  /// dmb st, nothing), a grant store, and a waiter with a randomized
  /// acquire edge and a ctrl-dep-guarded critical section — the exact
  /// shape family the lockver harness verifies deliberately. MUST stay 0
  /// by default: the roll is only drawn when the knob is on, so every
  /// pinned seed (ci.sh bit-identity gate, golden corpus) is unaffected.
  std::uint32_t lock_shape_pct = 0;
};

/// Generate the program for `seed`. Deterministic; the returned program's
/// name embeds the seed ("fuzz-<seed>").
model::ConcurrentProgram generate(std::uint64_t seed,
                                  const GenOptions& opts = {});

}  // namespace armbar::fuzz
