#include "fuzz/bundle.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "sim/program.hpp"

namespace armbar::fuzz {
namespace {

using trace::Json;

std::string u64s(std::uint64_t v) { return std::to_string(v); }

// The Json number constructors are ambiguous for uint32_t; go via double.
Json num(std::uint32_t v) { return Json(static_cast<double>(v)); }

bool parse_u64(const Json* j, std::uint64_t* out) {
  if (j == nullptr || !j->is_string() || j->str().empty()) return false;
  const std::string& s = j->str();
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_u32(const Json* j, std::uint32_t* out) {
  if (j == nullptr || !j->is_number() || j->number() < 0) return false;
  *out = static_cast<std::uint32_t>(j->number());
  return true;
}

Json outcomes_to_json(const std::set<model::Outcome>& set) {
  Json arr = Json::array();
  for (const model::Outcome& o : set) {
    Json row = Json::array();
    for (std::uint64_t v : o) row.push(u64s(v));
    arr.push(std::move(row));
  }
  return arr;
}

bool outcomes_from_json(const Json* j, std::set<model::Outcome>* out) {
  if (j == nullptr || !j->is_array()) return false;
  for (const Json& row : j->items()) {
    if (!row.is_array()) return false;
    model::Outcome o;
    for (const Json& v : row.items()) {
      std::uint64_t x = 0;
      if (!parse_u64(&v, &x)) return false;
      o.push_back(x);
    }
    out->insert(std::move(o));
  }
  return true;
}

Json plan_to_json(const sim::fault::FaultPlan& p) {
  Json j = Json::object();
  j.set("seed", u64s(p.seed));
  j.set("barrier_spike_pm", num(p.barrier_spike_pm));
  j.set("barrier_spike_cycles", num(p.barrier_spike_cycles));
  j.set("coh_delay_pm", num(p.coh_delay_pm));
  j.set("coh_delay_cycles", num(p.coh_delay_cycles));
  j.set("coh_duplicate_pm", num(p.coh_duplicate_pm));
  j.set("evict_pm", num(p.evict_pm));
  j.set("sb_stall_pm", num(p.sb_stall_pm));
  j.set("sb_stall_cycles", num(p.sb_stall_cycles));
  return j;
}

bool plan_from_json(const Json& j, sim::fault::FaultPlan* p) {
  if (!j.is_object()) return false;
  return parse_u64(j.find("seed"), &p->seed) &&
         parse_u32(j.find("barrier_spike_pm"), &p->barrier_spike_pm) &&
         parse_u32(j.find("barrier_spike_cycles"), &p->barrier_spike_cycles) &&
         parse_u32(j.find("coh_delay_pm"), &p->coh_delay_pm) &&
         parse_u32(j.find("coh_delay_cycles"), &p->coh_delay_cycles) &&
         parse_u32(j.find("coh_duplicate_pm"), &p->coh_duplicate_pm) &&
         parse_u32(j.find("evict_pm"), &p->evict_pm) &&
         parse_u32(j.find("sb_stall_pm"), &p->sb_stall_pm) &&
         parse_u32(j.find("sb_stall_cycles"), &p->sb_stall_cycles);
}

Json prog_to_json(const model::ConcurrentProgram& p) {
  Json j = Json::object();
  j.set("name", p.name);
  Json threads = Json::array();
  for (const sim::Program& t : p.threads) threads.push(t.serialize());
  j.set("threads", std::move(threads));
  Json init = Json::array();
  for (const auto& [addr, v] : p.init) {
    Json e = Json::object();
    e.set("addr", u64s(addr));
    e.set("value", u64s(v));
    init.push(std::move(e));
  }
  j.set("init", std::move(init));
  Json regs = Json::array();
  for (const auto& [t, r] : p.observe_regs) {
    Json e = Json::array();
    e.push(num(t));
    e.push(num(static_cast<std::uint32_t>(r)));
    regs.push(std::move(e));
  }
  j.set("observe_regs", std::move(regs));
  Json mem = Json::array();
  for (Addr a : p.observe_mem) mem.push(u64s(a));
  j.set("observe_mem", std::move(mem));
  return j;
}

bool prog_from_json(const Json* j, model::ConcurrentProgram* p,
                    std::string* err) {
  if (j == nullptr || !j->is_object()) {
    *err = "program: missing or not an object";
    return false;
  }
  const Json* name = j->find("name");
  if (name == nullptr || !name->is_string()) {
    *err = "program.name: missing";
    return false;
  }
  p->name = name->str();
  const Json* threads = j->find("threads");
  if (threads == nullptr || !threads->is_array() || threads->size() == 0) {
    *err = "program.threads: missing or empty";
    return false;
  }
  for (const Json& t : threads->items()) {
    if (!t.is_string()) {
      *err = "program.threads: entry not a string";
      return false;
    }
    sim::Program tp;
    std::string perr;
    if (!sim::parse_program(t.str(), &tp, &perr)) {
      *err = "program.threads: " + perr;
      return false;
    }
    p->threads.push_back(std::move(tp));
  }
  const Json* init = j->find("init");
  if (init == nullptr || !init->is_array()) {
    *err = "program.init: missing";
    return false;
  }
  for (const Json& e : init->items()) {
    Addr addr = 0;
    std::uint64_t v = 0;
    if (!e.is_object() || !parse_u64(e.find("addr"), &addr) ||
        !parse_u64(e.find("value"), &v)) {
      *err = "program.init: malformed entry";
      return false;
    }
    p->init.emplace_back(addr, v);
  }
  const Json* regs = j->find("observe_regs");
  if (regs == nullptr || !regs->is_array()) {
    *err = "program.observe_regs: missing";
    return false;
  }
  for (const Json& e : regs->items()) {
    if (!e.is_array() || e.size() != 2 || !e.items()[0].is_number() ||
        !e.items()[1].is_number()) {
      *err = "program.observe_regs: malformed entry";
      return false;
    }
    p->observe_regs.emplace_back(
        static_cast<std::uint32_t>(e.items()[0].number()),
        static_cast<sim::Reg>(e.items()[1].number()));
  }
  const Json* mem = j->find("observe_mem");
  if (mem == nullptr || !mem->is_array()) {
    *err = "program.observe_mem: missing";
    return false;
  }
  for (const Json& e : mem->items()) {
    Addr a = 0;
    if (!parse_u64(&e, &a)) {
      *err = "program.observe_mem: malformed entry";
      return false;
    }
    p->observe_mem.push_back(a);
  }
  return true;
}

Json opts_to_json(const DiffOptions& o) {
  Json j = Json::object();
  Json plats = Json::array();
  for (const std::string& p : o.platforms) plats.push(p);
  j.set("platforms", std::move(plats));
  Json plans = Json::array();
  for (const auto& p : o.plans) plans.push(plan_to_json(p));
  j.set("plans", std::move(plans));
  Json skews = Json::array();
  for (std::uint32_t s : o.skews) skews.push(num(s));
  j.set("skews", std::move(skews));
  j.set("max_cycles", u64s(o.max_cycles));
  j.set("verify_every", u64s(o.verify_every));
  j.set("mutation", to_string(o.mutation));
  Json m = Json::object();
  m.set("max_path_instructions", num(o.model.max_path_instructions));
  m.set("max_execs_per_thread", num(o.model.max_execs_per_thread));
  m.set("max_reads_per_thread", num(o.model.max_reads_per_thread));
  m.set("max_value_domain", num(o.model.max_value_domain));
  m.set("max_candidates", u64s(o.model.max_candidates));
  m.set("naive", o.model.naive);
  j.set("model", std::move(m));
  return j;
}

bool opts_from_json(const Json* j, DiffOptions* o, std::string* err) {
  if (j == nullptr || !j->is_object()) {
    *err = "options: missing or not an object";
    return false;
  }
  const Json* plats = j->find("platforms");
  if (plats == nullptr || !plats->is_array() || plats->size() == 0) {
    *err = "options.platforms: missing or empty";
    return false;
  }
  for (const Json& p : plats->items()) {
    if (!p.is_string()) {
      *err = "options.platforms: entry not a string";
      return false;
    }
    o->platforms.push_back(p.str());
  }
  const Json* plans = j->find("plans");
  if (plans == nullptr || !plans->is_array() || plans->size() == 0) {
    *err = "options.plans: missing or empty";
    return false;
  }
  for (const Json& p : plans->items()) {
    sim::fault::FaultPlan plan;
    if (!plan_from_json(p, &plan)) {
      *err = "options.plans: malformed entry";
      return false;
    }
    o->plans.push_back(plan);
  }
  const Json* skews = j->find("skews");
  if (skews == nullptr || !skews->is_array() || skews->size() == 0) {
    *err = "options.skews: missing or empty";
    return false;
  }
  for (const Json& s : skews->items()) {
    std::uint32_t v = 0;
    if (!parse_u32(&s, &v)) {
      *err = "options.skews: malformed entry";
      return false;
    }
    o->skews.push_back(v);
  }
  if (!parse_u64(j->find("max_cycles"), &o->max_cycles) ||
      !parse_u64(j->find("verify_every"), &o->verify_every)) {
    *err = "options.max_cycles/verify_every: malformed";
    return false;
  }
  const Json* mut = j->find("mutation");
  if (mut == nullptr || !mut->is_string() ||
      !mutation_from_string(mut->str(), &o->mutation)) {
    *err = "options.mutation: malformed";
    return false;
  }
  const Json* m = j->find("model");
  if (m == nullptr || !m->is_object() ||
      !parse_u32(m->find("max_path_instructions"),
                 &o->model.max_path_instructions) ||
      !parse_u32(m->find("max_execs_per_thread"),
                 &o->model.max_execs_per_thread) ||
      !parse_u32(m->find("max_reads_per_thread"),
                 &o->model.max_reads_per_thread) ||
      !parse_u32(m->find("max_value_domain"), &o->model.max_value_domain) ||
      !parse_u64(m->find("max_candidates"), &o->model.max_candidates)) {
    *err = "options.model: malformed";
    return false;
  }
  // Optional (absent in pre-ISSUE-5 bundles, which all used the then-only
  // naive engine semantics — outcome sets are engine-independent, so
  // replaying them on the POR default is still bit-exact).
  if (const Json* naive = m->find("naive"); naive != nullptr) {
    if (!naive->is_bool()) {
      *err = "options.model.naive: not a bool";
      return false;
    }
    o->model.naive = naive->boolean();
  }
  return true;
}

}  // namespace

ReproBundle make_bundle(const model::ConcurrentProgram& prog,
                        const DiffOptions& opts, std::uint64_t gen_seed,
                        const DiffResult& result) {
  ReproBundle b;
  b.prog = prog;
  b.opts = opts;
  b.gen_seed = gen_seed;
  b.expect_digest = result.digest();
  b.expected_allowed = result.allowed;
  b.observed = result.observed;
  if (!result.failures.empty()) {
    const DiffFailure& f = result.failures.front();
    b.failure_kind = f.kind;
    b.detail = f.detail;
    b.diagnostic = f.diagnostic;
    b.has_diagnostic = f.has_diagnostic;
  }
  return b;
}

trace::Json bundle_to_json(const ReproBundle& b) {
  Json j = Json::object();
  j.set("schema", kBundleSchema);
  j.set("gen_seed", u64s(b.gen_seed));
  j.set("failure_kind", b.failure_kind);
  j.set("detail", b.detail);
  j.set("expect_digest", u64s(b.expect_digest));
  j.set("program", prog_to_json(b.prog));
  j.set("options", opts_to_json(b.opts));
  j.set("expected_allowed", outcomes_to_json(b.expected_allowed));
  j.set("observed", outcomes_to_json(b.observed));
  if (b.has_diagnostic) j.set("diagnostic", b.diagnostic.to_json());
  if (!b.scenario.empty()) {
    Json lv = Json::object();
    lv.set("scenario", b.scenario);
    lv.set("invariant", b.invariant);
    Json w = Json::array();
    for (std::uint64_t v : b.witness) w.push(u64s(v));
    lv.set("witness", std::move(w));
    lv.set("crosschecked", b.lock_crosschecked);
    j.set("lockver", std::move(lv));
  }
  return j;
}

bool bundle_from_json(const trace::Json& j, ReproBundle* out,
                      std::string* err) {
  *out = ReproBundle{};
  if (!j.is_object()) {
    *err = "bundle: not a JSON object";
    return false;
  }
  const Json* schema = j.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->str() != kBundleSchema) {
    *err = std::string("bundle.schema: expected \"") + kBundleSchema + '"';
    return false;
  }
  if (!parse_u64(j.find("gen_seed"), &out->gen_seed) ||
      !parse_u64(j.find("expect_digest"), &out->expect_digest)) {
    *err = "bundle.gen_seed/expect_digest: malformed";
    return false;
  }
  const Json* kind = j.find("failure_kind");
  const Json* detail = j.find("detail");
  if (kind == nullptr || !kind->is_string() || detail == nullptr ||
      !detail->is_string()) {
    *err = "bundle.failure_kind/detail: malformed";
    return false;
  }
  out->failure_kind = kind->str();
  out->detail = detail->str();
  if (!prog_from_json(j.find("program"), &out->prog, err)) return false;
  if (!opts_from_json(j.find("options"), &out->opts, err)) return false;
  if (!outcomes_from_json(j.find("expected_allowed"),
                          &out->expected_allowed) ||
      !outcomes_from_json(j.find("observed"), &out->observed)) {
    *err = "bundle.expected_allowed/observed: malformed";
    return false;
  }
  if (const Json* d = j.find("diagnostic"); d != nullptr) {
    if (!sim::SimDiagnostic::from_json(*d, &out->diagnostic)) {
      *err = "bundle.diagnostic: malformed";
      return false;
    }
    out->has_diagnostic = true;
  }
  // Optional (absent in bundles captured by the differential fuzzer; only
  // lock-verification bundles carry it). Strict when present.
  if (const Json* lv = j.find("lockver"); lv != nullptr) {
    if (!lv->is_object()) {
      *err = "bundle.lockver: not an object";
      return false;
    }
    const Json* sc = lv->find("scenario");
    const Json* inv = lv->find("invariant");
    if (sc == nullptr || !sc->is_string() || sc->str().empty() ||
        inv == nullptr || !inv->is_string()) {
      *err = "bundle.lockver.scenario/invariant: malformed";
      return false;
    }
    out->scenario = sc->str();
    out->invariant = inv->str();
    const Json* w = lv->find("witness");
    if (w == nullptr || !w->is_array()) {
      *err = "bundle.lockver.witness: malformed";
      return false;
    }
    for (const Json& v : w->items()) {
      std::uint64_t x = 0;
      if (!parse_u64(&v, &x)) {
        *err = "bundle.lockver.witness: malformed entry";
        return false;
      }
      out->witness.push_back(x);
    }
    const Json* cc = lv->find("crosschecked");
    if (cc == nullptr || !cc->is_bool()) {
      *err = "bundle.lockver.crosschecked: malformed";
      return false;
    }
    out->lock_crosschecked = cc->boolean();
  }
  return true;
}

bool write_bundle(const std::string& path, const ReproBundle& b,
                  std::string* err) {
  std::ofstream f(path);
  if (!f) {
    *err = "cannot open " + path + " for writing";
    return false;
  }
  f << bundle_to_json(b).dump(2) << '\n';
  f.close();
  if (!f) {
    *err = "write to " + path + " failed";
    return false;
  }
  return true;
}

bool load_bundle(const std::string& path, ReproBundle* out, std::string* err) {
  std::ifstream f(path);
  if (!f) {
    *err = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  std::string jerr;
  const Json j = Json::parse(buf.str(), &jerr);
  if (!jerr.empty()) {
    *err = path + ": " + jerr;
    return false;
  }
  return bundle_from_json(j, out, err);
}

}  // namespace armbar::fuzz
