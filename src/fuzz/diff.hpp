// Differential harness: simulator vs. axiomatic reference model (ISSUE 4).
//
// For one concurrent program, enumerate the model's allowed final-state set
// once, then run the *same* sim::Program objects on the timing simulator
// across a grid of platform presets × fault plans (chaos seeds) × start
// skews, extracting the final state of every run and flagging:
//   * "mismatch"            — an outcome outside the model's allowed set
//                             (only when the model enumeration is complete);
//   * "invariant_violation" — the machine verifier fired mid-run;
//   * "hang"                — the forward-progress watchdog fired;
//   * "timeout"             — max_cycles elapsed without completion.
//
// The check direction is sim ⊆ model: the simulator is documented to be
// strictly stronger than the architecture on some shapes, so the model set
// not being fully covered is expected; an outcome outside it never is.
//
// A DiffOptions carries only serializable data (platform *names*, explicit
// fault plans) so a failing configuration round-trips through a repro
// bundle and replays bit-exactly — DiffResult::digest() is the identity
// the replay is checked against.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "model/model.hpp"
#include "sim/fault/fault.hpp"
#include "sim/verify.hpp"

namespace armbar::fuzz {

/// Test-only simulator-side program mutation: the simulator runs the
/// mutated program while the model judges the original. Used to plant a
/// known ordering bug and prove the pipeline catches, minimizes and
/// replays it (ISSUE 4 acceptance); kNone in all production fuzzing.
enum class SimMutation : std::uint8_t {
  kNone,
  kDropDmbSt,    ///< every dmb/dsb ishst becomes a nop
  kDropDmbLd,    ///< every dmb/dsb ishld becomes a nop
  kDropDmbFull,  ///< every dmb/dsb ish becomes a nop
  kDropRelAcq,   ///< stlr -> str, ldar/ldapr -> ldr (release/acquire lost)
};
const char* to_string(SimMutation m);
bool mutation_from_string(const std::string& s, SimMutation* out);
/// Apply the mutation (barrier -> nop, preserving indices/targets).
sim::Program apply_mutation(const sim::Program& p, SimMutation m);

struct DiffOptions {
  std::vector<std::string> platforms;          ///< preset names
  std::vector<sim::fault::FaultPlan> plans;    ///< one entry per run layer;
                                               ///< a disabled plan = clean
  std::vector<std::uint32_t> skews;            ///< per-run start stagger
  Cycle max_cycles = 2'000'000;
  Cycle verify_every = 4096;                   ///< 0 = no invariant sweeps
  SimMutation mutation = SimMutation::kNone;
  model::ModelOptions model;

  /// The acceptance-grade grid: every platform preset, one clean plan plus
  /// `chaos_seeds` chaos plans, two start skews.
  static DiffOptions defaults(std::uint32_t chaos_seeds = 8);
};

/// Where in the run grid a failure occurred.
struct DiffRunRef {
  std::string platform;
  std::size_t plan_index = 0;
  std::uint32_t skew = 0;
};

struct DiffFailure {
  std::string kind;  ///< "mismatch"|"invariant_violation"|"hang"|"timeout"
  DiffRunRef at;
  model::Outcome observed;  ///< mismatch only
  sim::SimDiagnostic diagnostic;
  bool has_diagnostic = false;
  std::string detail;  ///< one-line human summary
};

struct DiffResult {
  bool model_valid = true;  ///< model enumerated without error and complete
  std::string model_error;
  std::uint64_t runs = 0;
  std::set<model::Outcome> allowed;   ///< the model's set
  std::set<model::Outcome> observed;  ///< every outcome the simulator hit
  std::vector<DiffFailure> failures;  ///< deduplicated, bounded

  // Throughput accounting (ISSUE 5). Wall-clock, hence EXCLUDED from
  // digest(): a repro replay matches on behaviour, never on timing.
  std::uint64_t model_ns = 0;          ///< enumerate_outcomes wall time
  std::uint64_t sim_ns = 0;            ///< simulator grid wall time
  std::uint64_t model_candidates = 0;  ///< executions the checker examined

  bool ok() const { return failures.empty(); }
  /// Order-independent identity of the differential behaviour: covers the
  /// allowed set, the observed set and every failure record. A repro bundle
  /// replays bit-exactly iff digests match.
  std::uint64_t digest() const;
  std::string summary() const;
};

DiffResult run_diff(const model::ConcurrentProgram& prog,
                    const DiffOptions& opts);

}  // namespace armbar::fuzz
