// Self-contained repro bundles (ISSUE 4): everything needed to replay a
// differential failure bit-exactly, in one JSON document.
//
// Schema "armbar.repro/v1". A bundle carries the program text for every
// thread (sim::Program::serialize round-trip), the init/observe lists, the
// full DiffOptions grid (platform names, explicit fault plans, skews,
// mutation, model budgets) and the expected behaviour: failure kind,
// allowed/observed outcome sets and the DiffResult digest. Replay
// (tools/armbar-repro) re-runs run_diff() on the parsed bundle and checks
// the fresh digest against `expect_digest` — equality means the failure
// reproduced bit-exactly.
//
// 64-bit integers (seeds, addresses, values, digests) are serialized as
// decimal strings: the JSON layer stores numbers as double and would
// silently round above 2^53.
#pragma once

#include <string>

#include "fuzz/diff.hpp"
#include "trace/json.hpp"

namespace armbar::fuzz {

inline constexpr const char* kBundleSchema = "armbar.repro/v1";

struct ReproBundle {
  model::ConcurrentProgram prog;
  DiffOptions opts;
  std::uint64_t gen_seed = 0;     ///< generator seed; 0 = hand-written case
  std::string failure_kind;       ///< kind of the first recorded failure
  std::string detail;             ///< one-line human summary
  std::uint64_t expect_digest = 0;  ///< DiffResult::digest() at capture time
  std::set<model::Outcome> expected_allowed;
  std::set<model::Outcome> observed;
  sim::SimDiagnostic diagnostic;  ///< when the failure carried one
  bool has_diagnostic = false;

  // Lock-verification extension (ISSUE 9): present iff `scenario` is
  // non-empty. Names the lockver scenario the program came from, the
  // violated invariant and its minimized witness outcome, so armbar-repro
  // can replay the whole invariant verdict — not just the diff — from the
  // bundle alone.
  std::string scenario;            ///< lockver scenario name, "" = none
  std::string invariant;           ///< violated invariant name
  model::Outcome witness;          ///< minimized violating outcome
  bool lock_crosschecked = false;  ///< verdict included the sim cross-check
};

/// Capture a bundle from a completed (failing) diff run. Takes the first
/// failure's kind/diagnostic as the bundle identity.
ReproBundle make_bundle(const model::ConcurrentProgram& prog,
                        const DiffOptions& opts, std::uint64_t gen_seed,
                        const DiffResult& result);

trace::Json bundle_to_json(const ReproBundle& b);
/// Strict parse: schema tag, program text, options and outcome sets must
/// all round-trip. Returns false and sets *err on any malformed field.
bool bundle_from_json(const trace::Json& j, ReproBundle* out,
                      std::string* err);

/// File convenience wrappers (pretty-printed JSON on disk).
bool write_bundle(const std::string& path, const ReproBundle& b,
                  std::string* err);
bool load_bundle(const std::string& path, ReproBundle* out, std::string* err);

}  // namespace armbar::fuzz
