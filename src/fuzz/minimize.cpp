#include "fuzz/minimize.hpp"

#include <algorithm>

namespace armbar::fuzz {
namespace {

/// Rebuild a program without the masked instructions: branch targets are
/// remapped past the removed range and a trailing halt is guaranteed (the
/// simulator checks pc < size, so a program may never fall off the end).
sim::Program drop_instrs(const sim::Program& p, const std::vector<bool>& drop) {
  sim::Program out;
  out.name = p.name;
  std::vector<std::uint32_t> removed_before(p.code.size() + 1, 0);
  for (std::size_t i = 0; i < p.code.size(); ++i)
    removed_before[i + 1] =
        removed_before[i] + (drop[i] ? 1u : 0u);
  for (std::size_t i = 0; i < p.code.size(); ++i) {
    if (drop[i]) continue;
    sim::Instr ins = p.code[i];
    if (sim::is_branch(ins.op)) {
      const std::uint32_t t =
          std::min<std::uint32_t>(ins.target,
                                  static_cast<std::uint32_t>(p.code.size()));
      ins.target = t - removed_before[t];
    }
    out.code.push_back(ins);
  }
  if (out.code.empty() || out.code.back().op != sim::Op::kHalt)
    out.code.push_back({sim::Op::kHalt});
  for (sim::Instr& ins : out.code)
    if (sim::is_branch(ins.op))
      ins.target = std::min<std::uint32_t>(
          ins.target, static_cast<std::uint32_t>(out.code.size()) - 1);
  return out;
}

struct Minimizer {
  model::ConcurrentProgram* prog;
  DiffOptions* opts;
  const FailurePredicate& pred;
  MinimizeStats stats;

  bool probe(const model::ConcurrentProgram& p, const DiffOptions& o) {
    ++stats.probes;
    return pred(p, o);
  }

  bool try_drop_thread(std::uint32_t t) {
    if (prog->threads.size() <= 1) return false;
    model::ConcurrentProgram cand = *prog;
    cand.threads.erase(cand.threads.begin() + t);
    std::vector<std::pair<std::uint32_t, sim::Reg>> obs;
    for (auto [ot, reg] : cand.observe_regs) {
      if (ot == t) continue;
      obs.emplace_back(ot > t ? ot - 1 : ot, reg);
    }
    cand.observe_regs = std::move(obs);
    if (!probe(cand, *opts)) return false;
    *prog = std::move(cand);
    return true;
  }

  void drop_threads() {
    for (std::uint32_t t = 0; t < prog->threads.size();)
      if (!try_drop_thread(t)) ++t;
  }

  bool try_drop_mask(std::uint32_t t, const std::vector<bool>& mask) {
    model::ConcurrentProgram cand = *prog;
    cand.threads[t] = drop_instrs(cand.threads[t], mask);
    if (cand.threads[t].code.size() >= prog->threads[t].code.size())
      return false;  // nothing actually removed (halt re-appended)
    if (!probe(cand, *opts)) return false;
    *prog = std::move(cand);
    return true;
  }

  /// Classic ddmin over one thread's instruction list: try removing chunks
  /// at increasing granularity; on success restart coarse.
  void ddmin_thread(std::uint32_t t) {
    std::size_t k = 2;
    while (true) {
      const std::size_t n = prog->threads[t].code.size();
      if (n < 2) return;
      if (k > n) k = n;
      const std::size_t chunk = (n + k - 1) / k;
      bool reduced = false;
      for (std::size_t c = 0; c * chunk < n; ++c) {
        std::vector<bool> mask(n, false);
        for (std::size_t i = c * chunk; i < std::min(n, (c + 1) * chunk); ++i)
          mask[i] = true;
        if (try_drop_mask(t, mask)) {
          reduced = true;
          k = std::max<std::size_t>(k - 1, 2);
          break;
        }
      }
      if (!reduced) {
        if (k >= n) return;
        k = std::min(n, k * 2);
      }
    }
  }

  /// Fold away movi instructions by rerouting their consumers to another
  /// live register (often an address register already holding a non-zero
  /// value): rewrite every later *source* use of the movi's target, delete
  /// the movi, and keep the candidate only if the failure survives. The
  /// predicate is the sole semantic authority, so an unsound rewrite simply
  /// fails re-validation and is discarded.
  void fold_movis(std::uint32_t t) {
    bool progress = true;
    while (progress) {
      progress = false;
      const sim::Program& cur = prog->threads[t];
      for (std::size_t i = 0; i < cur.code.size(); ++i) {
        if (cur.code[i].op != sim::Op::kMovImm) continue;
        const sim::Reg r = cur.code[i].rd;
        if (r == sim::XZR) continue;
        // Candidate replacements: registers defined by earlier movis,
        // nearest first — the most recent definition is typically the
        // address register that must survive anyway, which keeps the
        // earlier (often address-zero-foldable) movis free to die in
        // drop_movi_groups().
        std::vector<sim::Reg> cands;
        for (std::size_t j = i; j-- > 0;)
          if (cur.code[j].op == sim::Op::kMovImm &&
              cur.code[j].rd != r)
            cands.push_back(cur.code[j].rd);
        for (sim::Reg s : cands) {
          model::ConcurrentProgram cand = *prog;
          sim::Program& tp = cand.threads[t];
          for (std::size_t j = i + 1; j < tp.code.size(); ++j)
            subst_sources(&tp.code[j], r, s);
          std::vector<bool> mask(tp.code.size(), false);
          mask[i] = true;
          tp = drop_instrs(tp, mask);
          if (tp.code.size() >= cur.code.size()) continue;
          if (!probe(cand, *opts)) continue;
          *prog = std::move(cand);
          progress = true;
          break;
        }
        if (progress) break;
      }
    }
  }

  /// Drop every movi with the same (rd, imm) across *all* threads in one
  /// candidate. Shared-address setup comes in matched per-thread pairs
  /// (each thread materializes location X into the same register); deleting
  /// one side alone breaks the address agreement and always fails the
  /// predicate, so the single-thread passes can never remove them.
  /// Afterwards the register reads as zero, i.e. the location collapses to
  /// address 0 — the predicate decides whether the shape survives that.
  void drop_movi_groups() {
    bool progress = true;
    while (progress) {
      progress = false;
      std::set<std::pair<int, std::int64_t>> keys;
      for (const auto& t : prog->threads)
        for (const sim::Instr& ins : t.code)
          if (ins.op == sim::Op::kMovImm && ins.rd != sim::XZR)
            keys.insert({ins.rd, ins.imm});
      for (const auto& [rd, imm] : keys) {
        model::ConcurrentProgram cand = *prog;
        bool any = false;
        for (auto& t : cand.threads) {
          std::vector<bool> mask(t.code.size(), false);
          bool hit = false;
          for (std::size_t i = 0; i < t.code.size(); ++i)
            if (t.code[i].op == sim::Op::kMovImm && t.code[i].rd == rd &&
                t.code[i].imm == imm)
              mask[i] = hit = true;
          if (!hit) continue;
          t = drop_instrs(t, mask);
          any = true;
        }
        if (!any || total_instructions(cand) >= total_instructions(*prog))
          continue;
        if (!probe(cand, *opts)) continue;
        *prog = std::move(cand);
        progress = true;
        break;
      }
    }
  }

  /// Rewrite register *sources* of `ins` from `from` to `to`. rd is a
  /// source only for stores; everywhere else it is a destination.
  static void subst_sources(sim::Instr* ins, sim::Reg from, sim::Reg to) {
    if (ins->rn == from) ins->rn = to;
    if (ins->rm == from) ins->rm = to;
    if (ins->rd == from && sim::is_store(ins->op)) ins->rd = to;
  }

  /// Greedy one-at-a-time list shrink for the configuration vectors.
  template <typename T, typename Apply>
  void shrink_list(std::vector<T>* list, Apply&& apply) {
    bool progress = true;
    while (progress && list->size() > 1) {
      progress = false;
      for (std::size_t i = 0; i < list->size(); ++i) {
        std::vector<T> cand = *list;
        cand.erase(cand.begin() + i);
        DiffOptions copts = *opts;
        apply(&copts, cand);
        if (probe(*prog, copts)) {
          *opts = std::move(copts);
          progress = true;
          break;
        }
      }
    }
  }

  /// Zero each fault class of each surviving plan independently (the
  /// "fault-plan entries" ddmin axis).
  void shrink_fault_plans() {
    // Index-based: try_zero reassigns *opts, so references into
    // opts->plans must not be held across probes.
    for (std::size_t i = 0; i < opts->plans.size(); ++i) {
      if (!opts->plans[i].enabled()) continue;
      auto try_zero = [&](auto zero) {
        DiffOptions copts = *opts;
        zero(&copts.plans[i]);
        if (copts.plans[i] == opts->plans[i]) return;  // already zero
        if (probe(*prog, copts)) *opts = std::move(copts);
      };
      using FP = sim::fault::FaultPlan;
      try_zero([](FP* p) { p->barrier_spike_pm = 0; p->barrier_spike_cycles = 0; });
      try_zero([](FP* p) { p->coh_delay_pm = 0; p->coh_delay_cycles = 0; });
      try_zero([](FP* p) { p->coh_duplicate_pm = 0; });
      try_zero([](FP* p) { p->evict_pm = 0; });
      try_zero([](FP* p) { p->sb_stall_pm = 0; p->sb_stall_cycles = 0; });
    }
  }

  std::string signature() const {
    std::string s;
    for (const auto& t : prog->threads) s += t.serialize();
    s += '|' + std::to_string(opts->platforms.size()) + ',' +
         std::to_string(opts->plans.size()) + ',' +
         std::to_string(opts->skews.size());
    for (const auto& p : opts->plans) s += p.describe();
    return s;
  }

  void run() {
    stats.instructions_before = total_instructions(*prog);
    std::string before = signature();
    for (stats.rounds = 1; stats.rounds <= 8; ++stats.rounds) {
      drop_threads();
      for (std::uint32_t t = 0; t < prog->threads.size(); ++t) {
        ddmin_thread(t);
        fold_movis(t);
      }
      drop_movi_groups();
      shrink_list(&opts->platforms, [](DiffOptions* o, auto v) {
        o->platforms = std::move(v);
      });
      shrink_list(&opts->plans, [](DiffOptions* o, auto v) {
        o->plans = std::move(v);
      });
      shrink_list(&opts->skews, [](DiffOptions* o, auto v) {
        o->skews = std::move(v);
      });
      shrink_fault_plans();
      std::string after = signature();
      if (after == before) break;
      before = std::move(after);
    }
    stats.instructions_after = total_instructions(*prog);
  }
};

}  // namespace

std::uint32_t total_instructions(const model::ConcurrentProgram& p) {
  std::uint32_t n = 0;
  for (const auto& t : p.threads) n += t.size();
  return n;
}

FailurePredicate same_kind_predicate(std::string kind) {
  return [kind = std::move(kind)](const model::ConcurrentProgram& p,
                                  const DiffOptions& o) {
    const DiffResult r = run_diff(p, o);
    for (const DiffFailure& f : r.failures)
      if (f.kind == kind) return true;
    return false;
  };
}

MinimizeStats minimize(model::ConcurrentProgram* prog, DiffOptions* opts,
                       const FailurePredicate& pred) {
  Minimizer m{prog, opts, pred, {}};
  m.run();
  return m.stats;
}

}  // namespace armbar::fuzz
