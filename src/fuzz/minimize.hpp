// Delta-debugging minimizer (ISSUE 4): shrink a failing differential case
// while re-validating the failure predicate at every step.
//
// Reduction passes, iterated to a fixpoint:
//   1. whole threads (observe lists re-indexed),
//   2. instructions per thread — classic ddmin chunk removal with branch
//      targets remapped and the trailing halt preserved,
//   3. configuration: platform list, fault-plan list, skew list, then
//      individual fault classes inside each surviving plan zeroed.
//
// The predicate is arbitrary ("this diff still fails the same way" in the
// pipeline; anything in tests), so the minimizer never needs to understand
// why a candidate fails — only that it still does.
#pragma once

#include <cstdint>
#include <functional>

#include "fuzz/diff.hpp"
#include "model/model.hpp"

namespace armbar::fuzz {

/// Returns true when the candidate (program, options) still fails the way
/// the original did.
using FailurePredicate =
    std::function<bool(const model::ConcurrentProgram&, const DiffOptions&)>;

struct MinimizeStats {
  std::uint32_t rounds = 0;   ///< fixpoint iterations
  std::uint64_t probes = 0;   ///< predicate evaluations
  std::uint32_t instructions_before = 0;
  std::uint32_t instructions_after = 0;
};

/// Standard predicate: run_diff() reports at least one failure of `kind`.
FailurePredicate same_kind_predicate(std::string kind);

/// Shrink (*prog, *opts) in place; both always satisfy `pred` on return.
/// The caller must ensure pred(*prog, *opts) holds on entry.
MinimizeStats minimize(model::ConcurrentProgram* prog, DiffOptions* opts,
                       const FailurePredicate& pred);

/// Instruction count across all threads (minimization metric).
std::uint32_t total_instructions(const model::ConcurrentProgram& p);

}  // namespace armbar::fuzz
