// A from-scratch dedup compression pipeline in the shape of PARSEC dedup
// (paper §4.5, Fig 6d): chunk -> fingerprint/dedup -> compress -> gather,
// with pipeline stages connected by swappable channels:
//
//   Q    - lock-protected queue (the original PARSEC communication buffer)
//   RB   - lock-free SPSC ring buffer (the paper's replacement)
//   RB-P - ring buffer with Pilot applied (the paper's optimized variant)
//
// File I/O is removed and output gathered in memory, as the paper does, so
// the stage communication cost is what the benchmark exposes.
//
// WMM note: messages are chunk indices (by value); chunk payloads are
// written by stage 1 and only *read* downstream, and each stage's own
// fields are written long before the index is forwarded again, so the
// by-reference window the paper warns about for site-1 barriers does not
// arise in this pipeline shape.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.hpp"
#include "locks/ticket_lock.hpp"
#include "spsc/ring.hpp"

namespace armbar::dedup {

/// Which channel implementation connects the pipeline stages.
enum class ChannelKind : std::uint8_t {
  kLockQueue,   ///< Q: lock-based queue
  kRing,        ///< RB: lock-free ring buffer
  kPilotRing,   ///< RB-P: ring buffer with Pilot applied
};

std::string to_string(ChannelKind k);

/// SPSC channel of 64-bit tokens. kEof terminates the stream.
class Channel {
 public:
  static constexpr std::uint64_t kEof = ~0ULL;
  virtual ~Channel() = default;
  virtual void send(std::uint64_t v) = 0;
  virtual std::uint64_t recv() = 0;
};

std::unique_ptr<Channel> make_channel(ChannelKind kind, std::size_t capacity);

/// One content-defined chunk moving through the pipeline.
struct Chunk {
  std::size_t offset = 0;       ///< into the input buffer
  std::size_t length = 0;
  std::uint64_t fingerprint = 0;  ///< stage 2
  bool duplicate = false;         ///< stage 2
  std::vector<std::uint8_t> compressed;  ///< stage 3 (unique chunks only)
};

/// Deterministic synthetic input with tunable redundancy: a stream built
/// from a pool of segments, some repeated (dedup-friendly), some fresh.
std::vector<std::uint8_t> make_input(std::size_t bytes, double duplicate_fraction,
                                     std::uint64_t seed);

/// Content-defined chunking via a rolling hash; min/avg/max bounds.
std::vector<Chunk> chunk_input(const std::vector<std::uint8_t>& data,
                               std::size_t min_chunk, std::size_t avg_chunk,
                               std::size_t max_chunk);

/// FNV-1a fingerprint of a byte range.
std::uint64_t fingerprint(const std::uint8_t* p, std::size_t n);

/// Byte-oriented LZ-style compressor (greedy match against a 4KB window)
/// and its inverse; self-contained, deterministic.
std::vector<std::uint8_t> compress(const std::uint8_t* p, std::size_t n);
std::vector<std::uint8_t> decompress(const std::vector<std::uint8_t>& in);

/// End-to-end pipeline result.
struct PipelineResult {
  std::size_t input_bytes = 0;
  std::size_t unique_chunks = 0;
  std::size_t duplicate_chunks = 0;
  std::size_t compressed_bytes = 0;
  double seconds = 0;            ///< wall time of the parallel section
  std::uint64_t checksum = 0;    ///< over the reconstructed stream
};

/// Run the 4-stage pipeline (3 worker threads + the caller as stage 4)
/// over `data` with the chosen channel kind. Verifies round-trip
/// integrity (decompress + checksum) when `verify` is set.
PipelineResult run_pipeline(const std::vector<std::uint8_t>& data,
                            ChannelKind kind, bool verify = true);

}  // namespace armbar::dedup
