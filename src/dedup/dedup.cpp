#include "dedup/dedup.hpp"

#include <chrono>
#include <thread>
#include <unordered_map>

#include "common/check.hpp"

namespace armbar::dedup {

std::string to_string(ChannelKind k) {
  switch (k) {
    case ChannelKind::kLockQueue: return "Q";
    case ChannelKind::kRing: return "RB";
    case ChannelKind::kPilotRing: return "RB-P";
  }
  return "?";
}

namespace {

/// Q: a bounded queue protected by a ticket lock — stands in for the
/// original PARSEC lock-based communication buffer.
class LockQueueChannel final : public Channel {
 public:
  explicit LockQueueChannel(std::size_t capacity) : capacity_(capacity) {}

  void send(std::uint64_t v) override {
    for (;;) {
      lock_.lock();
      if (items_.size() < capacity_) {
        items_.push_back(v);
        lock_.unlock();
        return;
      }
      lock_.unlock();
      std::this_thread::yield();
    }
  }

  std::uint64_t recv() override {
    for (;;) {
      lock_.lock();
      if (!items_.empty()) {
        const std::uint64_t v = items_.front();
        items_.erase(items_.begin());
        lock_.unlock();
        return v;
      }
      lock_.unlock();
      std::this_thread::yield();
    }
  }

 private:
  locks::TicketLock lock_;
  std::vector<std::uint64_t> items_;
  const std::size_t capacity_;
};

class RingChannel final : public Channel {
 public:
  explicit RingChannel(std::size_t capacity) : ring_(capacity) {}
  void send(std::uint64_t v) override { ring_.push(v); }
  std::uint64_t recv() override { return ring_.pop(); }

 private:
  spsc::BarrierRing ring_;
};

class PilotRingChannel final : public Channel {
 public:
  explicit PilotRingChannel(std::size_t capacity) : ring_(capacity) {}
  void send(std::uint64_t v) override { ring_.push(v); }
  std::uint64_t recv() override { return ring_.pop(); }

 private:
  spsc::PilotRing ring_;
};

}  // namespace

std::unique_ptr<Channel> make_channel(ChannelKind kind, std::size_t capacity) {
  switch (kind) {
    case ChannelKind::kLockQueue:
      return std::make_unique<LockQueueChannel>(capacity);
    case ChannelKind::kRing:
      return std::make_unique<RingChannel>(capacity);
    case ChannelKind::kPilotRing:
      return std::make_unique<PilotRingChannel>(capacity);
  }
  ARMBAR_CHECK(false);
}

std::vector<std::uint8_t> make_input(std::size_t bytes, double duplicate_fraction,
                                     std::uint64_t seed) {
  Rng rng(seed);
  // A pool of reusable segments; duplicate_fraction of the stream is drawn
  // from the pool, the rest is fresh pseudo-random data with some byte-level
  // structure so the compressor has something to find. Segments are several
  // chunk lengths long so content-defined chunking can resynchronize inside
  // them and produce dedupable interior chunks.
  constexpr std::size_t kSegment = 8192;
  std::vector<std::vector<std::uint8_t>> pool;
  for (int i = 0; i < 32; ++i) {
    std::vector<std::uint8_t> seg(kSegment);
    std::uint8_t run = static_cast<std::uint8_t>(rng.next());
    for (auto& b : seg) {
      if (rng.chance(1, 8)) run = static_cast<std::uint8_t>(rng.next());
      b = run;
    }
    pool.push_back(std::move(seg));
  }

  std::vector<std::uint8_t> out;
  out.reserve(bytes);
  while (out.size() < bytes) {
    if (rng.unit() < duplicate_fraction) {
      const auto& seg = pool[rng.below(pool.size())];
      out.insert(out.end(), seg.begin(), seg.end());
    } else {
      std::uint8_t run = static_cast<std::uint8_t>(rng.next());
      for (std::size_t i = 0; i < kSegment && out.size() < bytes; ++i) {
        if (rng.chance(1, 6)) run = static_cast<std::uint8_t>(rng.next());
        out.push_back(run);
      }
    }
  }
  out.resize(bytes);
  return out;
}

std::vector<Chunk> chunk_input(const std::vector<std::uint8_t>& data,
                               std::size_t min_chunk, std::size_t avg_chunk,
                               std::size_t max_chunk) {
  ARMBAR_CHECK(min_chunk >= 64 && min_chunk <= avg_chunk && avg_chunk <= max_chunk);
  // True sliding-window polynomial hash over the last kWindow bytes: the
  // hash depends only on window content, so boundaries resynchronize inside
  // repeated content regardless of alignment — the property dedup needs.
  const std::uint64_t mask = avg_chunk - 1;  // avg must be a power of two
  ARMBAR_CHECK((avg_chunk & (avg_chunk - 1)) == 0);
  constexpr std::size_t kWindow = 48;
  constexpr std::uint64_t kMul = 0x100000001b3ULL;
  std::uint64_t mul_pow = 1;  // kMul^kWindow, to subtract the outgoing byte
  for (std::size_t i = 0; i < kWindow; ++i) mul_pow *= kMul;

  std::vector<Chunk> chunks;
  std::size_t start = 0;
  std::uint64_t h = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    h = h * kMul + data[i];
    if (i >= kWindow) h -= mul_pow * data[i - kWindow];
    const std::size_t len = i + 1 - start;
    if (len < min_chunk) continue;
    if ((h & mask) == (mask & 0x1d3) || len >= max_chunk) {
      chunks.push_back({start, len, 0, false, {}});
      start = i + 1;
      // Note: the window itself is NOT reset — it slides across chunk
      // boundaries, which is what keeps boundaries content-defined.
    }
  }
  if (start < data.size()) chunks.push_back({start, data.size() - start, 0, false, {}});
  return chunks;
}

std::uint64_t fingerprint(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {
// Compressed format: a sequence of ops.
//   0x00 len(2B) ...bytes          literal run
//   0x01 dist(2B) len(2B)          window match
constexpr std::size_t kWindowSize = 4096;
constexpr std::size_t kMinMatch = 6;
}  // namespace

std::vector<std::uint8_t> compress(const std::uint8_t* p, std::size_t n) {
  std::vector<std::uint8_t> out;
  out.reserve(n / 2 + 16);
  std::size_t i = 0;
  std::size_t lit_start = 0;

  auto flush_literals = [&](std::size_t end) {
    std::size_t s = lit_start;
    while (s < end) {
      const std::size_t len = std::min<std::size_t>(end - s, 0xffff);
      out.push_back(0x00);
      out.push_back(static_cast<std::uint8_t>(len & 0xff));
      out.push_back(static_cast<std::uint8_t>(len >> 8));
      out.insert(out.end(), p + s, p + s + len);
      s += len;
    }
  };

  while (i < n) {
    // Greedy back-search in the window for the longest match.
    std::size_t best_len = 0, best_dist = 0;
    const std::size_t w0 = i > kWindowSize ? i - kWindowSize : 0;
    if (n - i >= kMinMatch) {
      for (std::size_t cand = w0; cand < i; ++cand) {
        std::size_t len = 0;
        const std::size_t max_len = std::min<std::size_t>(n - i, 0xffff);
        while (len < max_len && p[cand + len] == p[i + len] && cand + len < i + len)
          ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = i - cand;
        }
        if (best_len >= 64) break;  // good enough; keep it cheap
      }
    }
    if (best_len >= kMinMatch) {
      flush_literals(i);
      out.push_back(0x01);
      out.push_back(static_cast<std::uint8_t>(best_dist & 0xff));
      out.push_back(static_cast<std::uint8_t>(best_dist >> 8));
      out.push_back(static_cast<std::uint8_t>(best_len & 0xff));
      out.push_back(static_cast<std::uint8_t>(best_len >> 8));
      i += best_len;
      lit_start = i;
    } else {
      ++i;
    }
  }
  flush_literals(n);
  return out;
}

std::vector<std::uint8_t> decompress(const std::vector<std::uint8_t>& in) {
  std::vector<std::uint8_t> out;
  std::size_t i = 0;
  while (i < in.size()) {
    const std::uint8_t op = in[i++];
    if (op == 0x00) {
      ARMBAR_CHECK(i + 2 <= in.size());
      const std::size_t len = in[i] | (in[i + 1] << 8);
      i += 2;
      ARMBAR_CHECK(i + len <= in.size());
      out.insert(out.end(), in.begin() + static_cast<std::ptrdiff_t>(i),
                 in.begin() + static_cast<std::ptrdiff_t>(i + len));
      i += len;
    } else {
      ARMBAR_CHECK(op == 0x01 && i + 4 <= in.size());
      const std::size_t dist = in[i] | (in[i + 1] << 8);
      const std::size_t len = in[i + 2] | (in[i + 3] << 8);
      i += 4;
      ARMBAR_CHECK(dist > 0 && dist <= out.size());
      for (std::size_t k = 0; k < len; ++k)
        out.push_back(out[out.size() - dist]);
    }
  }
  return out;
}

PipelineResult run_pipeline(const std::vector<std::uint8_t>& data,
                            ChannelKind kind, bool verify) {
  PipelineResult res;
  res.input_bytes = data.size();

  // Stage 1 (caller thread region below): chunking happens up front; the
  // parallel section then streams chunk indices through the pipeline, which
  // is the part Fig 6(d) measures.
  std::vector<Chunk> chunks = chunk_input(data, 256, 1024, 8192);

  auto c12 = make_channel(kind, 64);
  auto c23 = make_channel(kind, 64);
  auto c34 = make_channel(kind, 64);

  const auto t0 = std::chrono::steady_clock::now();

  // Stage 2: fingerprint + duplicate detection.
  std::thread s2([&] {
    std::unordered_set<std::uint64_t> seen;
    for (;;) {
      const std::uint64_t idx = c12->recv();
      if (idx == Channel::kEof) break;
      Chunk& c = chunks[idx];
      c.fingerprint = fingerprint(data.data() + c.offset, c.length);
      c.duplicate = !seen.insert(c.fingerprint).second;
      c23->send(idx);
    }
    c23->send(Channel::kEof);
  });

  // Stage 3: compress unique chunks.
  std::thread s3([&] {
    for (;;) {
      const std::uint64_t idx = c23->recv();
      if (idx == Channel::kEof) break;
      Chunk& c = chunks[idx];
      if (!c.duplicate) c.compressed = compress(data.data() + c.offset, c.length);
      c34->send(idx);
    }
    c34->send(Channel::kEof);
  });

  // Stage 4 runs in a thread too so the caller can feed stage 1.
  std::size_t unique = 0, dup = 0, bytes = 0;
  std::thread s4([&] {
    for (;;) {
      const std::uint64_t idx = c34->recv();
      if (idx == Channel::kEof) break;
      const Chunk& c = chunks[idx];
      if (c.duplicate) {
        ++dup;
        bytes += 10;  // a fingerprint reference record
      } else {
        ++unique;
        bytes += c.compressed.size();
      }
    }
  });

  // Stage 1: feed chunk indices in order.
  for (std::uint64_t i = 0; i < chunks.size(); ++i) c12->send(i);
  c12->send(Channel::kEof);

  s2.join();
  s3.join();
  s4.join();
  const auto t1 = std::chrono::steady_clock::now();

  res.unique_chunks = unique;
  res.duplicate_chunks = dup;
  res.compressed_bytes = bytes;
  res.seconds = std::chrono::duration<double>(t1 - t0).count();

  if (verify) {
    // Reconstruct the stream from unique chunks (duplicates refer to the
    // first occurrence by fingerprint) and checksum it against the input.
    std::unordered_map<std::uint64_t, const Chunk*> first;
    std::vector<std::uint8_t> rebuilt;
    rebuilt.reserve(data.size());
    for (const Chunk& c : chunks) {
      if (!c.duplicate) {
        first.emplace(c.fingerprint, &c);
        const auto plain = decompress(c.compressed);
        ARMBAR_CHECK_MSG(plain.size() == c.length, "decompress length mismatch");
        rebuilt.insert(rebuilt.end(), plain.begin(), plain.end());
      } else {
        auto it = first.find(c.fingerprint);
        ARMBAR_CHECK_MSG(it != first.end(), "duplicate before first occurrence");
        const Chunk& o = *it->second;
        rebuilt.insert(rebuilt.end(), data.begin() + static_cast<std::ptrdiff_t>(o.offset),
                       data.begin() + static_cast<std::ptrdiff_t>(o.offset + o.length));
      }
    }
    ARMBAR_CHECK_MSG(rebuilt.size() == data.size(), "rebuilt size mismatch");
    ARMBAR_CHECK_MSG(rebuilt == data, "dedup round-trip mismatch");
    res.checksum = fingerprint(rebuilt.data(), rebuilt.size());
  }
  return res;
}

}  // namespace armbar::dedup
