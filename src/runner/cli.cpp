#include "runner/cli.hpp"

#include <cstdio>
#include <limits>
#include <string>

#include "runner/arg_parser.hpp"
#include "runner/engine.hpp"
#include "runner/experiment.hpp"
#include "sim/fault/fault.hpp"

namespace armbar::runner {
namespace {

bool write_text(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

int cli_main(int argc, char** argv, const char* forced_experiment) {
  const bool forced = forced_experiment != nullptr;
  const std::string prog =
      forced ? std::string(forced_experiment) : std::string("armbar-bench");
  ArgParser args(prog,
                 forced
                     ? "Legacy wrapper for the '" + prog +
                           "' experiment (same engine as armbar-bench)."
                     : "Unified runner for every registered fig*/table* "
                       "experiment of the ARM-barrier study.");
  if (!forced) {
    args.add_flag("list", "list registered experiments and exit");
    args.add_value("filter", "GLOB",
                   "comma-separated glob list over experiment names", "*");
  }
  args.add_int("jobs", "N", "max parallel sweep points (0 = hardware threads)",
               0, 0, 4096);
  args.add_int("repeat", "N",
               "run each experiment N times and check determinism", 1, 1,
               1000000);
  args.add_int("timeout-ms", "MS",
               "per-experiment wall-clock budget; a run past it is recorded "
               "as failed/timeout (0 = unlimited)",
               0, 0, std::numeric_limits<std::int64_t>::max() / 2);
  args.add_int("retries", "N",
               "re-run a timed-out or errored experiment up to N times with "
               "exponential backoff",
               0, 0, 16);
  args.add_int("fault-seed", "SEED",
               "inject seeded timing faults (chaos plan) into every "
               "simulation; 0 = off",
               0, 0, std::numeric_limits<std::int64_t>::max());
  args.add_int("verify-every", "CYCLES",
               "run the machine invariant verifier every N simulated cycles "
               "(0 = off)",
               0, 0, std::numeric_limits<std::int64_t>::max());
  args.add_optional_value("json", "PATH",
                          "write an armbar.bench.report/v2 document "
                          "(default path: <bench>.report.json)");
  args.add_optional_value("trace", "PATH",
                          "write a Chrome trace_event JSON; forces --jobs 1 "
                          "(default path: <experiment>.trace.json)");
  args.add_flag("no-cache", "disable the content-addressed result cache");
  args.add_value("cache-dir", "DIR", "result cache location", ".armbar-cache");
  args.add_flag("profile",
                "enable the host-side self-profiler; adds a host_prof "
                "section to --json reports (report-only: simulated results "
                "and digests are unchanged)");
  args.add_flag("no-profile",
                "force host profiling off (default; rejects --profile)");
  args.add_optional_value("profile-folded", "PATH",
                          "with --profile: write collapsed stacks for "
                          "flamegraph.pl (default path: <bench>.prof.folded)");
  args.add_optional_value("profile-chrome", "PATH",
                          "with --profile: write a Chrome trace_event JSON "
                          "of the merged profile (default path: "
                          "<bench>.prof.trace.json)");

  std::string err;
  if (!args.parse(argc, argv, &err)) {
    std::fprintf(stderr, "%s: %s\n", prog.c_str(), err.c_str());
    return 2;
  }
  if (args.help_requested()) {
    std::fputs(args.help().c_str(), stdout);
    return 0;
  }
  if (!args.positionals().empty()) {
    std::fprintf(stderr, "%s: unexpected argument '%s' (see --help)\n",
                 prog.c_str(), args.positionals().front().c_str());
    return 2;
  }
  // Parse-time profile validation: the pair is mutually exclusive, and the
  // export paths make no sense without the profiler on.
  if (args.given("profile") && args.given("no-profile")) {
    std::fprintf(stderr,
                 "%s: --profile and --no-profile are mutually exclusive\n",
                 prog.c_str());
    return 2;
  }
  if (!args.given("profile") &&
      (args.given("profile-folded") || args.given("profile-chrome"))) {
    std::fprintf(stderr,
                 "%s: --profile-folded/--profile-chrome require --profile\n",
                 prog.c_str());
    return 2;
  }

  const Registry& registry = Registry::global();
  if (!forced && args.given("list")) {
    for (const ExperimentSpec* s : registry.sorted())
      std::printf("%-26s %-10s %s\n", s->name.c_str(), s->figure.c_str(),
                  s->title.c_str());
    return 0;
  }

  EngineOptions opts;
  opts.filter = forced ? std::string(forced_experiment) : args.str("filter");
  opts.jobs = static_cast<std::size_t>(args.integer("jobs", 0));
  opts.repeat = static_cast<std::uint32_t>(args.integer("repeat", 1));
  opts.timeout_ms = args.integer("timeout-ms");
  opts.retries = static_cast<std::uint32_t>(args.integer("retries"));
  if (const std::int64_t seed = args.integer("fault-seed"); seed != 0)
    opts.fault = sim::fault::FaultPlan::chaos(static_cast<std::uint64_t>(seed));
  opts.verify_every =
      static_cast<std::uint64_t>(args.integer("verify-every"));
  opts.cache_enabled = !args.given("no-cache");
  opts.cache_dir = args.str("cache-dir");
  opts.collect_metrics = args.given("json") || args.given("trace");
  opts.trace = args.given("trace");
  opts.trace_path = args.str("trace");
  opts.profile = args.given("profile");
  if (args.given("profile-folded")) {
    opts.profile_folded = args.str("profile-folded");
    if (opts.profile_folded.empty()) opts.profile_folded = prog + ".prof.folded";
  }
  if (args.given("profile-chrome")) {
    opts.profile_chrome = args.str("profile-chrome");
    if (opts.profile_chrome.empty())
      opts.profile_chrome = prog + ".prof.trace.json";
  }

  Engine engine(registry, opts);
  EngineResult result = engine.run();

  bool io_ok = true;
  if (args.given("json") && !result.report.is_null()) {
    std::string path = args.str("json");
    if (path.empty()) {
      const trace::Json* bench = result.report.find("bench");
      path = (bench != nullptr && bench->is_string() ? bench->str() : prog) +
             ".report.json";
    }
    io_ok = write_text(path, result.report.dump(1) + "\n");
    if (io_ok)
      std::printf("\nreport: %s\n", path.c_str());
    else
      std::fprintf(stderr, "%s: failed to write report '%s'\n", prog.c_str(),
                   path.c_str());
  }
  // Conventional 128+signal exit status: 130 for SIGINT, 143 for SIGTERM.
  if (result.interrupted) return 128 + (result.signal != 0 ? result.signal : 2);
  return result.ok && io_ok ? 0 : 1;
}

}  // namespace armbar::runner
