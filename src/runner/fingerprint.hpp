// Content fingerprints for the result cache (ISSUE 2).
//
// A cache key must change whenever anything that can change a simulated
// result changes: the platform (topology + every latency-table field), the
// program (every instruction field), and the run configuration (iterations,
// core binding, workload knobs). Fingerprint is a 128-bit FNV-1a digest —
// two independent 64-bit lanes — mixed field by field, never by memcpy, so
// struct padding can't leak garbage into keys.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "sim/fault/fault.hpp"
#include "sim/platform.hpp"
#include "sim/program.hpp"

namespace armbar::runner {

class Fingerprint {
 public:
  Fingerprint& mix(std::uint64_t v);
  Fingerprint& mix(std::int64_t v) { return mix(static_cast<std::uint64_t>(v)); }
  Fingerprint& mix(std::uint32_t v) { return mix(static_cast<std::uint64_t>(v)); }
  Fingerprint& mix(std::int32_t v) { return mix(static_cast<std::int64_t>(v)); }
  Fingerprint& mix(bool v) { return mix(static_cast<std::uint64_t>(v)); }
  Fingerprint& mix(double v);
  Fingerprint& mix(std::string_view s);
  Fingerprint& mix(const char* s) { return mix(std::string_view(s)); }

  /// Everything about a platform that can change simulated timing:
  /// topology, frequency, the whole latency table, and the MCA mode.
  Fingerprint& mix(const sim::PlatformSpec& spec);
  /// Every field of every instruction (the name is cosmetic and skipped).
  Fingerprint& mix(const sim::Program& prog);
  /// Every fault-plan field, seed included — a warm cache must never hand
  /// back fault-free results for a faulted run (ISSUE 4 audit).
  Fingerprint& mix(const sim::fault::FaultPlan& plan);

  std::uint64_t lo() const { return lo_; }
  std::uint64_t hi() const { return hi_; }
  /// 32 lowercase hex chars; used as the cache file name.
  std::string hex() const;

 private:
  // FNV-1a offset bases: the standard one and a second lane decorrelated by
  // a fixed tweak so the two 64-bit digests fail independently.
  std::uint64_t lo_ = 0xcbf29ce484222325ULL;
  std::uint64_t hi_ = 0xcbf29ce484222325ULL ^ 0x9e3779b97f4a7c15ULL;
};

}  // namespace armbar::runner
