#include "runner/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <stdexcept>

namespace armbar::runner {

struct ThreadPool::Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> done{0};
  std::size_t total = 0;
  std::mutex err_mu;
  std::exception_ptr err;     // first *task* exception (guarded by err_mu)
  bool cancelled = false;     // some tasks never ran (guarded by err_mu)
  std::condition_variable done_cv;
  std::mutex done_mu;
};

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_)
    if (w.joinable()) w.join();
  // With every worker gone, anything still queued will never run. A waiter
  // blocked in parallel_for counts completions — cancel the orphans so it
  // wakes (with an error) instead of hanging forever. Queue locks make the
  // handoff race-free: each task is either run by a thread that popped it
  // or cancelled here, never both.
  for (auto& qp : queues_) {
    std::deque<Task> orphans;
    {
      std::lock_guard<std::mutex> lock(qp->mu);
      orphans.swap(qp->tasks);
    }
    for (const Task& t : orphans) cancel_task(t);
  }
}

bool ThreadPool::is_shutdown() {
  std::lock_guard<std::mutex> lock(wake_mu_);
  return shutdown_;
}

std::size_t ThreadPool::hardware_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

bool ThreadPool::pop_local(std::size_t worker, Task* out) {
  WorkerQueue& q = *queues_[worker];
  std::lock_guard<std::mutex> lock(q.mu);
  if (q.tasks.empty()) return false;
  *out = q.tasks.back();  // LIFO on the owner's side
  q.tasks.pop_back();
  return true;
}

bool ThreadPool::steal(std::size_t thief, Task* out) {
  const std::size_t n = queues_.size();
  for (std::size_t d = 1; d <= n; ++d) {
    WorkerQueue& q = *queues_[(thief + d) % n];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.tasks.empty()) {
      *out = q.tasks.front();  // FIFO from the victim's cold end
      q.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::run_task(const Task& t) {
  Job& job = *t.job;
  try {
    (*job.fn)(t.index);
  } catch (...) {
    std::lock_guard<std::mutex> lock(job.err_mu);
    if (!job.err) job.err = std::current_exception();
  }
  if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.total) {
    std::lock_guard<std::mutex> lock(job.done_mu);
    job.done_cv.notify_all();
  }
}

void ThreadPool::cancel_task(const Task& t) {
  Job& job = *t.job;
  {
    std::lock_guard<std::mutex> lock(job.err_mu);
    job.cancelled = true;
  }
  if (job.done.fetch_add(1, std::memory_order_acq_rel) + 1 == job.total) {
    std::lock_guard<std::mutex> lock(job.done_mu);
    job.done_cv.notify_all();
  }
}

void ThreadPool::worker_loop(std::size_t id) {
  for (;;) {
    // Once shutdown begins nobody takes new tasks; leftovers are cancelled
    // by shutdown() after the join.
    if (is_shutdown()) return;
    Task t{};
    if (pop_local(id, &t) || steal(id, &t)) {
      {
        std::lock_guard<std::mutex> lock(wake_mu_);
        if (pending_ > 0) --pending_;
      }
      run_task(t);
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mu_);
    wake_cv_.wait(lock, [this] { return shutdown_ || pending_ > 0; });
    if (shutdown_) return;
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (is_shutdown())
    throw std::runtime_error("parallel_for on a shut-down ThreadPool");
  Job job;
  job.fn = &fn;
  job.total = n;

  // Round-robin the tasks across worker deques so stealing starts from an
  // already-balanced distribution.
  for (std::size_t i = 0; i < n; ++i) {
    WorkerQueue& q = *queues_[i % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mu);
    q.tasks.push_back({&job, i});
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    pending_ += n;
  }
  wake_cv_.notify_all();

  // The caller works too: steal from any queue until nothing is left, then
  // wait for in-flight tasks to drain. Deliberately NOT gated on shutdown:
  // the caller draining its own job is what guarantees the wait terminates
  // even when shutdown raced with the pushes above and the cancel sweep ran
  // before they landed.
  Task t{};
  while (steal(0, &t)) {
    {
      std::lock_guard<std::mutex> lock(wake_mu_);
      if (pending_ > 0) --pending_;
    }
    run_task(t);
  }
  {
    std::unique_lock<std::mutex> lock(job.done_mu);
    job.done_cv.wait(lock, [&] {
      return job.done.load(std::memory_order_acquire) == job.total;
    });
  }
  // A real task exception outranks the cancellation error: if a task threw
  // while the pool was shutting down, that failure must reach the waiter.
  std::exception_ptr err;
  bool cancelled = false;
  {
    std::lock_guard<std::mutex> lock(job.err_mu);
    err = job.err;
    cancelled = job.cancelled;
  }
  if (err) std::rethrow_exception(err);
  if (cancelled)
    throw std::runtime_error("ThreadPool shut down with queued tasks");
}

}  // namespace armbar::runner
