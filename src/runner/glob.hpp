// Shell-style glob matching for experiment filters (`--filter 'fig3*'`).
// Supports `*` (any run, including empty) and `?` (any single character);
// a pattern list separated by commas matches when any element matches.
#pragma once

#include <string_view>

namespace armbar::runner {

/// True when `name` matches the single glob `pattern`.
bool glob_match(std::string_view pattern, std::string_view name);

/// True when `name` matches any comma-separated element of `patterns`
/// (e.g. "fig3*,fig5*,table?_*"). An empty list matches nothing.
bool glob_match_any(std::string_view patterns, std::string_view name);

}  // namespace armbar::runner
