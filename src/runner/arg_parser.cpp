#include "runner/arg_parser.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "common/check.hpp"

namespace armbar::runner {

ArgParser::ArgParser(std::string prog, std::string description)
    : prog_(std::move(prog)), description_(std::move(description)) {}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  ARMBAR_CHECK_MSG(find(name) == nullptr, "duplicate option");
  opts_.push_back({name, "", help, "", Kind::kFlag, false, ""});
}

void ArgParser::add_value(const std::string& name, const std::string& value_name,
                          const std::string& help, const std::string& def) {
  ARMBAR_CHECK_MSG(find(name) == nullptr, "duplicate option");
  opts_.push_back({name, value_name, help, def, Kind::kValue, false, def});
}

void ArgParser::add_optional_value(const std::string& name,
                                   const std::string& value_name,
                                   const std::string& help,
                                   const std::string& def) {
  ARMBAR_CHECK_MSG(find(name) == nullptr, "duplicate option");
  opts_.push_back({name, value_name, help, def, Kind::kOptionalValue, false, def});
}

void ArgParser::add_int(const std::string& name, const std::string& value_name,
                        const std::string& help, std::int64_t def,
                        std::int64_t min, std::int64_t max) {
  ARMBAR_CHECK_MSG(find(name) == nullptr, "duplicate option");
  ARMBAR_CHECK_MSG(min <= def && def <= max, "default outside [min, max]");
  Opt o{name, value_name, help, std::to_string(def), Kind::kInt, false, "",
        def, min, max};
  opts_.push_back(std::move(o));
}

ArgParser::Opt* ArgParser::find(const std::string& name) {
  for (auto& o : opts_)
    if (o.name == name) return &o;
  return nullptr;
}

const ArgParser::Opt* ArgParser::find(const std::string& name) const {
  for (const auto& o : opts_)
    if (o.name == name) return &o;
  return nullptr;
}

bool ArgParser::parse(int argc, char** argv, std::string* err) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return true;
    }
    if (arg.rfind("--", 0) != 0) {
      positionals_.push_back(arg);
      continue;
    }
    const std::size_t eq = arg.find('=');
    const std::string name = arg.substr(2, eq == std::string::npos
                                               ? std::string::npos
                                               : eq - 2);
    Opt* o = find(name);
    if (o == nullptr) {
      if (err) *err = "unknown option '--" + name + "' (see --help)";
      return false;
    }
    o->given = true;
    if (eq != std::string::npos) {
      if (o->kind == Kind::kFlag) {
        if (err) *err = "option '--" + name + "' does not take a value";
        return false;
      }
      o->value = arg.substr(eq + 1);
      continue;
    }
    switch (o->kind) {
      case Kind::kFlag:
        break;
      case Kind::kOptionalValue:
        o->value = "";  // present without a value
        break;
      case Kind::kValue:
      case Kind::kInt:
        if (i + 1 >= argc) {
          if (err) *err = "option '--" + name + "' requires a value";
          return false;
        }
        o->value = argv[++i];
        break;
    }
  }
  // Validate every integer option up front so `--jobs=abc` or an overflow
  // is a clean parse error, not an abort (or garbage) at first access.
  for (Opt& o : opts_) {
    if (o.kind != Kind::kInt || !o.given) continue;
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(o.value.c_str(), &end, 10);
    if (o.value.empty() || end == o.value.c_str() || *end != '\0') {
      if (err)
        *err = "option '--" + o.name + "' expects an integer, got '" +
               o.value + "'";
      return false;
    }
    if (errno == ERANGE || v < o.imin || v > o.imax) {
      if (err)
        *err = "option '--" + o.name + "' value " + o.value +
               " out of range [" + std::to_string(o.imin) + ", " +
               std::to_string(o.imax) + "]";
      return false;
    }
    o.ival = v;
  }
  return true;
}

bool ArgParser::given(const std::string& name) const {
  const Opt* o = find(name);
  ARMBAR_CHECK_MSG(o != nullptr, "querying unregistered option");
  return o->given;
}

const std::string& ArgParser::str(const std::string& name) const {
  const Opt* o = find(name);
  ARMBAR_CHECK_MSG(o != nullptr, "querying unregistered option");
  return o->value;
}

std::int64_t ArgParser::integer(const std::string& name, std::int64_t def) const {
  const Opt* o = find(name);
  ARMBAR_CHECK_MSG(o != nullptr, "querying unregistered option");
  if (o->kind == Kind::kInt) return o->ival;  // validated by parse()
  if (!o->given || o->value.empty()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(o->value.c_str(), &end, 10);
  ARMBAR_CHECK_MSG(end != nullptr && *end == '\0',
                   "malformed integer option value");
  return static_cast<std::int64_t>(v);
}

std::string ArgParser::help() const {
  std::ostringstream os;
  os << "usage: " << prog_ << " [options]\n";
  if (!description_.empty()) os << "\n" << description_ << "\n";
  os << "\noptions:\n";
  std::size_t width = 0;
  auto lhs = [](const Opt& o) {
    switch (o.kind) {
      case Kind::kFlag: return "--" + o.name;
      case Kind::kValue:
      case Kind::kInt: return "--" + o.name + " <" + o.value_name + ">";
      case Kind::kOptionalValue: return "--" + o.name + "[=" + o.value_name + "]";
    }
    return std::string{};
  };
  for (const auto& o : opts_) width = std::max(width, lhs(o).size());
  for (const auto& o : opts_) {
    const std::string l = lhs(o);
    os << "  " << l << std::string(width - l.size() + 2, ' ') << o.help;
    if (!o.def.empty()) os << " (default: " << o.def << ")";
    os << "\n";
  }
  os << "  --help" << std::string(width > 4 ? width - 4 : 2, ' ')
     << "show this message\n";
  return os.str();
}

}  // namespace armbar::runner
