// Shared entry point for armbar-bench and the legacy per-figure wrappers.
//
//   armbar-bench --list
//   armbar-bench --filter 'fig3*' --jobs 8 --json
//   fig3_store_store --json=out.json --trace        (forced_experiment set)
//
// A legacy wrapper is the same engine pinned to one experiment: the old
// --json[=path] / --trace[=path] flags keep working, plus the new common
// flags (--jobs, --repeat, --no-cache, --cache-dir).
#pragma once

namespace armbar::runner {

/// Parse flags, run the engine, write the report. Returns the process exit
/// code (0 iff every matched experiment passed and all I/O succeeded).
/// `forced_experiment` non-null pins the run to that one experiment and
/// hides --list/--filter (legacy wrapper mode).
int cli_main(int argc, char** argv, const char* forced_experiment = nullptr);

}  // namespace armbar::runner
