#include "runner/experiment.hpp"

#include <algorithm>
#include <cstdio>

#include <chrono>

#include "common/check.hpp"
#include "runner/glob.hpp"
#include "sim/fault/fault.hpp"
#include "sim/verify.hpp"

namespace armbar::runner {

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

bool Registry::add(ExperimentSpec spec) {
  ARMBAR_CHECK_MSG(spec.body != nullptr, "experiment without a body");
  for (const auto& s : specs_)
    ARMBAR_CHECK_MSG(s.name != spec.name, "duplicate experiment name");
  specs_.push_back(std::move(spec));
  return true;
}

std::vector<const ExperimentSpec*> Registry::sorted() const {
  std::vector<const ExperimentSpec*> out;
  out.reserve(specs_.size());
  for (const auto& s : specs_) out.push_back(&s);
  std::sort(out.begin(), out.end(),
            [](const ExperimentSpec* a, const ExperimentSpec* b) {
              return a->name < b->name;
            });
  return out;
}

std::vector<const ExperimentSpec*> Registry::match(
    const std::string& filter) const {
  std::vector<const ExperimentSpec*> out;
  for (const ExperimentSpec* s : sorted())
    if (glob_match_any(filter, s->name)) out.push_back(s);
  return out;
}

const ExperimentSpec* Registry::find(const std::string& name) const {
  for (const auto& s : specs_)
    if (s.name == name) return &s;
  return nullptr;
}

bool ExperimentContext::check(bool ok, const std::string& claim) {
  std::printf("  [%s] %s\n", ok ? "PASS" : "FAIL", claim.c_str());
  checks_.push_back({claim, ok});
  if (!ok) ++failed_checks_;
  return ok;
}

void ExperimentContext::param(const std::string& name,
                              const std::string& value) {
  params_.emplace_back(name, value);
}

void ExperimentContext::metric(const std::string& name, double value) {
  metrics_recorded_.emplace_back(name, value);
}

void ExperimentContext::fatal(const std::string& reason) {
  check(false, reason);
  throw ExperimentAbort{reason};
}

void ExperimentContext::note_repro_bundle(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  repro_bundle_ = path;
}

std::string ExperimentContext::repro_bundle() const {
  std::lock_guard<std::mutex> lock(mu_);
  return repro_bundle_;
}

void ExperimentContext::note_failure_kind(const std::string& kind) {
  std::lock_guard<std::mutex> lock(mu_);
  failure_kind_ = kind;
}

std::string ExperimentContext::failure_kind() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failure_kind_;
}

void ExperimentContext::note_opt_report(trace::Json rep) {
  std::lock_guard<std::mutex> lock(mu_);
  opt_report_ = std::move(rep);
}

trace::Json ExperimentContext::opt_report() const {
  std::lock_guard<std::mutex> lock(mu_);
  return opt_report_;
}

void ExperimentContext::note_quarantine_param(const std::string& key,
                                              const std::string& value) {
  std::lock_guard<std::mutex> lock(mu_);
  quarantine_params_.emplace_back(key, value);
}

std::vector<std::pair<std::string, std::string>>
ExperimentContext::quarantine_params() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantine_params_;
}

Fingerprint ExperimentContext::key() {
  Fingerprint fp;
  fp.mix(kCacheEpoch);
  // Every process-global knob that can change a simulated result must land
  // in the base key (ISSUE 4 audit): the chaos fault plan (seed and all
  // rates) and the invariant-check cadence — a verify-enabled run can
  // throw (and quarantine) where an unverified one completes.
  if (const sim::fault::FaultPlan* plan = sim::fault::global_fault_plan();
      plan != nullptr && plan->enabled()) {
    fp.mix(*plan);
  }
  if (const Cycle every = sim::global_verify_every(); every != 0)
    fp.mix("verify-every").mix(static_cast<std::uint64_t>(every));
  return fp;
}

trace::Json ExperimentContext::cached(
    const Fingerprint& key, const std::string& desc,
    const std::function<trace::Json()>& compute) {
  return cached_impl(key, desc, /*instrumentable=*/false,
                     [&](trace::Tracer*) { return compute(); });
}

trace::Json ExperimentContext::cached_instrumented(
    const Fingerprint& key, const std::string& desc,
    const std::function<trace::Json(trace::Tracer*)>& compute) {
  return cached_impl(key, desc, /*instrumentable=*/true, compute);
}

namespace {

/// Reserved host-profiling field names: any of these inside a cached point
/// value means wall-clock leaked into digest material.
bool has_prof_field(const trace::Json& v) {
  if (v.is_object()) {
    for (const auto& [name, member] : v.members()) {
      for (const char* reserved :
           {"host_prof", "host_ns", "prof_ns", "wall_ns", "self_ns",
            "sim_instructions_per_sec"})
        if (name == reserved) return true;
      if (has_prof_field(member)) return true;
    }
  } else if (v.is_array()) {
    for (const trace::Json& item : v.items())
      if (has_prof_field(item)) return true;
  }
  return false;
}

}  // namespace

trace::Json ExperimentContext::cached_impl(
    const Fingerprint& key, const std::string& desc, bool instrumentable,
    const std::function<trace::Json(trace::Tracer*)>& fn) {
  // Graceful degradation gates, checked before any simulation is built.
  // Both throws travel through the pool back to the experiment's caller.
  if (hooks_.interrupted != nullptr && *hooks_.interrupted != 0)
    throw ExperimentInterrupted{};
  if (hooks_.has_deadline && std::chrono::steady_clock::now() > hooks_.deadline)
    throw ExperimentTimeout{"experiment exceeded its wall-clock budget"};
  // Instrumented points skip cache lookups: the point must actually run for
  // its events/histograms to exist. Timing is tracer-independent, so the
  // value (and the digest) is the same either way, and the fresh result is
  // still stored for future uninstrumented runs.
  const bool instrumented =
      instrumentable && (hooks_.tracer != nullptr || hooks_.collect_metrics);
  const std::string hex = key.hex();
  bool hit = false;
  trace::Json value;
  if (hooks_.cache != nullptr && !instrumented) {
    if (auto v = hooks_.cache->lookup(hex)) {
      hit = true;
      value = std::move(*v);
    }
  }
  if (!hit) {
    if (hooks_.tracer != nullptr && instrumentable) {
      // --trace: the engine forced jobs=1, so the shared ring is safe.
      value = fn(hooks_.tracer);
    } else if (instrumented) {
      // --json at any job count: per-point tracer feeding a local registry,
      // merged under the lock below. The ring contents are discarded — only
      // the metrics matter here.
      trace::MetricsRegistry local;
      trace::Tracer t(/*capacity=*/1024);
      t.set_metrics(&local);
      value = fn(&t);
      std::lock_guard<std::mutex> lock(mu_);
      if (hooks_.metrics != nullptr) hooks_.metrics->merge(local);
    } else {
      value = fn(nullptr);
    }
    if (hooks_.cache != nullptr) hooks_.cache->store(hex, desc, value);
  }
  Fingerprint pd = key;
  pd.mix(value.dump());
  const bool leaked = has_prof_field(value);
  {
    std::lock_guard<std::mutex> lock(mu_);
    points_digest_ ^= pd.lo();
    ++points_;
    if (hit) ++point_hits_;
    if (leaked) prof_digest_leak_ = true;
  }
  return value;
}

}  // namespace armbar::runner
