// Content-addressed result cache for simulator runs (ISSUE 2).
//
// Each independent sweep point is deterministic: (platform fingerprint,
// program hash, run config) fully determines the result. The cache maps
// that 128-bit key to the result's JSON value, one file per entry under
// `.armbar-cache/` (schema armbar.cache.entry/v1):
//
//   { "schema": "armbar.cache.entry/v1",
//     "epoch":  "<kCacheEpoch>",
//     "key":    "<32 hex chars>",
//     "desc":   "pair platform=kunpeng916 prog=store-store/DMB full ...",
//     "value":  <arbitrary JSON> }
//
// Keys content-address the *inputs*, not the simulator build, so
// kCacheEpoch is mixed into every key and must be bumped whenever the
// timing model itself changes behaviour (the Latencies static_assert in
// fingerprint.cpp points here when the latency table grows).
//
// Thread-safe: workers of the experiment pool hit it concurrently. An
// in-memory map fronts the directory, and writes go through a temp file +
// rename so a crashed run never leaves a torn entry behind.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "trace/json.hpp"

namespace armbar::runner {

inline constexpr const char* kCacheEntrySchema = "armbar.cache.entry/v1";

/// Bump when the behaviour baked into cached values changes — the
/// simulator's timing model (new latency fields, scheduler fixes, ...),
/// the reference model's enumeration semantics, or the fuzz generator's
/// seed->program mapping. armbar-sim/5: ISSUE 5 POR checker + raised
/// generator defaults. armbar-sim/6: ISSUE 6 host-profiling release —
/// simulated values are unchanged, but the epoch bump retires any entry a
/// pre-audit build could have written with host-time contamination.
/// armbar-sim/7: ISSUE 7 fast-path interpreter (predecoded micro-ops,
/// scheduler/coherence fast paths) — timing is verified bit-identical, but
/// the rewrite is broad enough that stale-looking entries from a mid-PR
/// build are worth retiring.
/// armbar-sim/8: ISSUE 10 barrier-optimization pipeline — barrier_opt
/// cache keys now mix the full opt pass configuration (pass list, oracle
/// options, search bounds); the bump retires any entry written before
/// that config was part of the key, so cached optimization points can't
/// go stale when the pass pipeline evolves. Simulated timing unchanged
/// (epoch-neutralized digest check repeated, see POINTS_DIGESTS.json).
inline constexpr const char* kCacheEpoch = "armbar-sim/8";

class ResultCache {
 public:
  /// `dir` empty => caching disabled (lookup always misses, store drops).
  explicit ResultCache(std::string dir);

  bool enabled() const { return !dir_.empty(); }
  const std::string& dir() const { return dir_; }

  /// Hit: the cached value. Miss (or disabled/corrupt entry): nullopt.
  std::optional<trace::Json> lookup(const std::string& key_hex);

  /// Persist `value` under `key_hex`. `desc` is a human-readable rendering
  /// of the key's inputs, stored for cache debugging only.
  void store(const std::string& key_hex, const std::string& desc,
             const trace::Json& value);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    /// Corrupt or stale-epoch entries dropped at lookup (each also counts
    /// as a miss; the fresh result overwrites the entry).
    std::uint64_t evictions = 0;
  };
  Stats stats() const;

 private:
  std::string path_of(const std::string& key_hex) const;

  std::string dir_;
  mutable std::mutex mu_;
  std::map<std::string, trace::Json> mem_;
  Stats stats_;
};

}  // namespace armbar::runner
