// Experiment engine: resolves a filter against the registry, runs each
// matched experiment with shared infrastructure (work-stealing pool,
// content-addressed result cache, optional tracer), and assembles one
// consolidated armbar.bench.report/v1 document.
//
// Experiments execute serially in name order — parallelism lives *inside*
// an experiment (ctx.map over sweep points) so stdout stays readable and
// the report order is deterministic. A single-match run reports under the
// experiment's own name with unprefixed check/metric keys, byte-compatible
// with the old one-binary-per-figure reports; a multi-match run reports as
// "armbar-bench" with "<experiment>: " / "<experiment>/" prefixes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runner/cache.hpp"
#include "runner/experiment.hpp"
#include "trace/json.hpp"

namespace armbar::runner {

struct EngineOptions {
  std::string filter = "*";  ///< comma-separated glob list over names
  std::size_t jobs = 0;      ///< 0 => hardware_jobs(); tracing forces 1
  std::uint32_t repeat = 1;  ///< run each experiment N times (determinism)
  bool cache_enabled = true;
  std::string cache_dir = ".armbar-cache";
  bool collect_metrics = false;  ///< --json: instrument runs for histograms
  bool trace = false;            ///< --trace: shared tracer, serial
  std::string trace_path;        ///< empty => "<name>.trace.json" per match
};

/// Per-experiment outcome, in run (= name) order.
struct ExperimentOutcome {
  std::string name;
  bool ok = false;            ///< all checks passed, no abort
  bool aborted = false;       ///< body called ctx.fatal()
  std::uint64_t points = 0;   ///< cached() sweep points executed or hit
  std::uint64_t cache_hits = 0;
  std::uint64_t points_digest = 0;  ///< order-independent sweep fingerprint
  double wall_ms = 0.0;       ///< across all repetitions
};

struct EngineResult {
  bool ok = false;                ///< every experiment ok (and >=1 matched)
  std::vector<ExperimentOutcome> outcomes;
  trace::Json report;             ///< consolidated armbar.bench.report/v1
  ResultCache::Stats cache_stats;
  std::size_t jobs = 1;           ///< effective job count used
};

class Engine {
 public:
  Engine(const Registry& registry, EngineOptions opts);

  /// Run everything the filter matches. Prints the familiar banners and
  /// tables to stdout; returns the consolidated report for the caller to
  /// write. An empty match is a failure (a typoed --filter must not pass).
  EngineResult run();

 private:
  const Registry& registry_;
  EngineOptions opts_;
};

}  // namespace armbar::runner
