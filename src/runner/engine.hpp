// Experiment engine: resolves a filter against the registry, runs each
// matched experiment with shared infrastructure (work-stealing pool,
// content-addressed result cache, optional tracer), and assembles one
// consolidated armbar.bench.report/v2 document.
//
// Experiments execute serially in name order — parallelism lives *inside*
// an experiment (ctx.map over sweep points) so stdout stays readable and
// the report order is deterministic. A single-match run reports under the
// experiment's own name with unprefixed check/metric keys, byte-compatible
// with the old one-binary-per-figure reports; a multi-match run reports as
// "armbar-bench" with "<experiment>: " / "<experiment>/" prefixes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runner/cache.hpp"
#include "runner/experiment.hpp"
#include "sim/fault/fault.hpp"
#include "trace/json.hpp"

namespace armbar::runner {

struct EngineOptions {
  std::string filter = "*";  ///< comma-separated glob list over names
  std::size_t jobs = 0;      ///< 0 => hardware_jobs(); tracing forces 1
  std::uint32_t repeat = 1;  ///< run each experiment N times (determinism)
  bool cache_enabled = true;
  std::string cache_dir = ".armbar-cache";
  bool collect_metrics = false;  ///< --json: instrument runs for histograms
  bool trace = false;            ///< --trace: shared tracer, serial
  std::string trace_path;        ///< empty => "<name>.trace.json" per match

  // ---- graceful degradation (ISSUE 3) ----
  /// Per-experiment wall-clock budget in ms; 0 = unlimited. Enforced at
  /// sweep-point granularity (a point mid-simulation finishes; the watchdog
  /// bounds that).
  std::int64_t timeout_ms = 0;
  /// Re-run an experiment that timed out or threw up to N extra times with
  /// exponential backoff before quarantining it.
  std::uint32_t retries = 0;
  /// Fault-injection plan applied to every Machine::run in the process
  /// (--fault-seed installs FaultPlan::chaos). Disabled plan => clean run.
  sim::fault::FaultPlan fault{};
  /// Run the MachineVerifier every N simulated cycles (0 = off).
  std::uint64_t verify_every = 0;
  /// Install SIGINT *and* SIGTERM handlers for the duration of run() so an
  /// interactive ^C and a CI timeout's kill both flush a partial report
  /// (with quarantine entries) instead of dying silently. Tests that
  /// raise() set this too.
  bool handle_sigint = true;

  // ---- host-side profiling (ISSUE 6) ----
  /// --profile: enable the prof:: scoped timers for the whole run and
  /// attach an armbar.host_prof/v1 section to the report. Host timing never
  /// reaches cache keys or points digests — simulated results are
  /// bit-identical with profiling on or off.
  bool profile = false;
  std::string profile_folded;  ///< collapsed-stack (flamegraph) output path
  std::string profile_chrome;  ///< chrome-trace output path (empty = none)
};

/// Per-experiment outcome, in run (= name) order.
struct ExperimentOutcome {
  std::string name;
  bool ok = false;            ///< all checks passed, no abnormal termination
  bool aborted = false;       ///< body called ctx.fatal()
  std::uint64_t points = 0;   ///< cached() sweep points executed or hit
  std::uint64_t cache_hits = 0;
  std::uint64_t points_digest = 0;  ///< order-independent sweep fingerprint
  double wall_ms = 0.0;       ///< across all repetitions and attempts
  /// "ok", "failed", or "skipped" (never started: SIGINT arrived first).
  std::string status = "ok";
  /// Abnormal-termination class when status != "ok": "timeout", "hang",
  /// "invariant_violation", "check_failed", "interrupted", "error",
  /// "skipped"; empty for a clean run that merely failed its checks.
  std::string kind;
  std::string reason;         ///< human-readable failure description
  trace::Json diagnostic;     ///< SimDiagnostic bundle (null if none)
  std::string repro_bundle;   ///< armbar.repro/v1 path (empty if none)
  std::uint32_t attempts = 1; ///< executions including retries
};

struct EngineResult {
  bool ok = false;                ///< every experiment ok (and >=1 matched)
  bool interrupted = false;       ///< SIGINT/SIGTERM observed; partial report
  int signal = 0;                 ///< the interrupting signal number (0 = none)
  std::vector<ExperimentOutcome> outcomes;
  trace::Json report;             ///< consolidated armbar.bench.report/v1
  ResultCache::Stats cache_stats;
  std::size_t jobs = 1;           ///< effective job count used
};

/// Process-global cleanup hooks run when an engine run is interrupted
/// (SIGINT/SIGTERM), *before* the partial report is assembled. Experiments
/// that fork helper processes or own kernel-persistent resources (the shm
/// service fleets) register a killer/reaper here so a ^C mid-bench never
/// leaks children or /dev/shm segments. Registration is idempotent per
/// function pointer; hooks must themselves be idempotent.
void register_interrupt_cleanup(void (*fn)());
void run_interrupt_cleanups();

class Engine {
 public:
  Engine(const Registry& registry, EngineOptions opts);

  /// Run everything the filter matches. Prints the familiar banners and
  /// tables to stdout; returns the consolidated report for the caller to
  /// write. An empty match is a failure (a typoed --filter must not pass).
  EngineResult run();

 private:
  const Registry& registry_;
  EngineOptions opts_;
};

}  // namespace armbar::runner
