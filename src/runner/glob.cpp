#include "runner/glob.hpp"

namespace armbar::runner {

bool glob_match(std::string_view pattern, std::string_view name) {
  // Iterative matcher with single-star backtracking: on mismatch past a
  // '*', rewind to the star and let it swallow one more character.
  std::size_t p = 0, n = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (n < name.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == name[n])) {
      ++p;
      ++n;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = n;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      n = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool glob_match_any(std::string_view patterns, std::string_view name) {
  while (!patterns.empty()) {
    const std::size_t comma = patterns.find(',');
    const std::string_view head = patterns.substr(0, comma);
    if (!head.empty() && glob_match(head, name)) return true;
    if (comma == std::string_view::npos) break;
    patterns.remove_prefix(comma + 1);
  }
  return false;
}

}  // namespace armbar::runner
