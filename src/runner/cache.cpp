#include "runner/cache.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "prof/prof.hpp"

namespace armbar::runner {

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  if (!dir_.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(dir_, ec);
    // An unwritable directory degrades to a miss-only cache; store() will
    // simply fail to persist and the run still completes.
  }
}

std::string ResultCache::path_of(const std::string& key_hex) const {
  return dir_ + "/" + key_hex + ".json";
}

std::optional<trace::Json> ResultCache::lookup(const std::string& key_hex) {
  if (!enabled()) return std::nullopt;
  std::lock_guard<std::mutex> lock(mu_);
  if (auto it = mem_.find(key_hex); it != mem_.end()) {
    ++stats_.hits;
    ARMBAR_PROF_COUNT(kCacheHits, 1);
    return it->second;
  }
  std::ifstream in(path_of(key_hex), std::ios::binary);
  if (!in.good()) {
    ++stats_.misses;
    ARMBAR_PROF_COUNT(kCacheMisses, 1);
    return std::nullopt;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::string err;
  const trace::Json doc = trace::Json::parse(buf.str(), &err);
  const trace::Json* schema = doc.find("schema");
  const trace::Json* epoch = doc.find("epoch");
  const trace::Json* value = doc.find("value");
  if (!err.empty() || schema == nullptr || !schema->is_string() ||
      schema->str() != kCacheEntrySchema || epoch == nullptr ||
      !epoch->is_string() || epoch->str() != kCacheEpoch || value == nullptr) {
    // Corrupt or stale-schema entry: treat as a miss (and count the
    // eviction); the fresh result will overwrite it.
    ++stats_.misses;
    ++stats_.evictions;
    ARMBAR_PROF_COUNT(kCacheMisses, 1);
    ARMBAR_PROF_COUNT(kCacheEvictions, 1);
    return std::nullopt;
  }
  mem_[key_hex] = *value;
  ++stats_.hits;
  ARMBAR_PROF_COUNT(kCacheHits, 1);
  return *value;
}

void ResultCache::store(const std::string& key_hex, const std::string& desc,
                        const trace::Json& value) {
  if (!enabled()) return;
  trace::Json doc = trace::Json::object();
  doc.set("schema", kCacheEntrySchema);
  doc.set("epoch", kCacheEpoch);
  doc.set("key", key_hex);
  doc.set("desc", desc);
  doc.set("value", value);
  const std::string text = doc.dump(1) + "\n";

  std::lock_guard<std::mutex> lock(mu_);
  mem_[key_hex] = value;
  ++stats_.stores;
  ARMBAR_PROF_COUNT(kCacheStores, 1);
  const std::string path = path_of(key_hex);
  const std::string tmp = path + ".tmp";
  if (std::FILE* f = std::fopen(tmp.c_str(), "wb")) {
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    if (ok) {
      std::error_code ec;
      std::filesystem::rename(tmp, path, ec);
      if (!ec) return;
    }
    std::remove(tmp.c_str());
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace armbar::runner
