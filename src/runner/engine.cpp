#include "runner/engine.hpp"

#include <chrono>
#include <cstdio>
#include <memory>

#include "sim/isa.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/json_report.hpp"
#include "trace/trace.hpp"

namespace armbar::runner {
namespace {

// Same banner the standalone benches printed, so migrated experiments keep
// their stdout shape.
void banner(const std::string& display, const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", display.c_str(), title.c_str());
  std::printf("metric: simulated cycles at the platform clock; shapes (who\n");
  std::printf("wins, crossovers) are the reproduction target, not absolutes.\n");
  std::printf("==============================================================\n\n");
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

Engine::Engine(const Registry& registry, EngineOptions opts)
    : registry_(registry), opts_(std::move(opts)) {}

EngineResult Engine::run() {
  EngineResult result;
  const std::vector<const ExperimentSpec*> matched =
      registry_.match(opts_.filter);
  if (matched.empty()) {
    std::fprintf(stderr,
                 "armbar-bench: no experiment matches filter '%s' "
                 "(see --list)\n",
                 opts_.filter.c_str());
    return result;  // ok == false: a typoed filter must not pass CI
  }

  std::size_t jobs = opts_.jobs != 0 ? opts_.jobs : ThreadPool::hardware_jobs();
  if (opts_.trace && jobs != 1) {
    // The tracer ring is single-writer; traced runs are serial by contract.
    std::printf("(--trace forces --jobs 1; tracing needs a serial schedule)\n");
    jobs = 1;
  }
  result.jobs = jobs;
  std::unique_ptr<ThreadPool> pool;
  if (jobs > 1) pool = std::make_unique<ThreadPool>(jobs - 1);  // caller works

  ResultCache cache(opts_.cache_enabled ? opts_.cache_dir : "");

  const bool single = matched.size() == 1;
  trace::ReportBuilder report(
      single ? matched[0]->name : "armbar-bench",
      single ? matched[0]->title
             : "consolidated experiment report (filter '" + opts_.filter + "')");
  if (!single) {
    report.add_param("filter", opts_.filter);
    report.add_param("jobs", std::to_string(jobs));
    report.add_param("repeat", std::to_string(opts_.repeat));
    report.add_param("cache", cache.enabled() ? opts_.cache_dir : "off");
  }

  bool all_ok = true;
  bool io_ok = true;
  for (const ExperimentSpec* spec : matched) {
    banner(spec->figure, spec->title);

    std::unique_ptr<trace::MetricsRegistry> metrics;
    std::unique_ptr<trace::Tracer> tracer;
    std::unique_ptr<ExperimentContext> ctx;
    std::uint64_t first_digest = 0;
    bool deterministic = true;
    bool aborted = false;

    const auto t0 = std::chrono::steady_clock::now();
    const std::uint32_t reps = opts_.repeat == 0 ? 1 : opts_.repeat;
    for (std::uint32_t rep = 0; rep < reps; ++rep) {
      metrics = std::make_unique<trace::MetricsRegistry>();
      if (opts_.trace) {
        tracer = std::make_unique<trace::Tracer>();
        tracer->set_metrics(metrics.get());
      }
      ExperimentContext::Hooks hooks;
      hooks.pool = pool.get();
      hooks.cache = &cache;
      hooks.tracer = tracer.get();
      hooks.metrics = metrics.get();
      hooks.jobs = jobs;
      hooks.collect_metrics = opts_.collect_metrics;
      ctx = std::make_unique<ExperimentContext>(*spec, hooks);

      if (rep > 0)
        std::printf("\n-- repetition %u/%u: %s --\n", rep + 1, reps,
                    spec->name.c_str());
      try {
        spec->body(*ctx);
      } catch (const ExperimentAbort&) {
        aborted = true;  // ctx.fatal() already recorded the failed check
      }
      if (rep == 0)
        first_digest = ctx->points_digest();
      else if (ctx->points_digest() != first_digest)
        deterministic = false;
      if (aborted) break;
    }
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    if (reps > 1 && !aborted)
      ctx->check(deterministic,
                 "repetitions deterministic (points digest stable across " +
                     std::to_string(reps) + " runs)");

    ExperimentOutcome out;
    out.name = spec->name;
    out.aborted = aborted;
    out.ok = !aborted && ctx->all_checks_passed();
    out.points = ctx->points();
    out.cache_hits = ctx->point_hits();
    out.points_digest = ctx->points_digest();
    out.wall_ms = wall_ms;
    all_ok = all_ok && out.ok;

    // Fold this experiment into the consolidated report. Single-match runs
    // keep the old unprefixed keys for byte-compatibility with the legacy
    // per-figure reports.
    const std::string cp = single ? "" : spec->name + ": ";
    const std::string kp = single ? "" : spec->name + "/";
    for (const auto& c : ctx->checks()) report.add_check(cp + c.claim, c.pass);
    for (const auto& [name, value] : ctx->params())
      report.add_param(kp + name, value);
    for (const auto& [name, value] : ctx->metrics_recorded())
      report.add_metric(kp + name, value);
    report.add_param(kp + "points_digest", hex16(ctx->points_digest()));
    report.add_metric(kp + "wall_ms", wall_ms);
    report.add_metric(kp + "sim_points", static_cast<double>(out.points));
    report.add_metric(kp + "cache_point_hits",
                      static_cast<double>(out.cache_hits));
    if (tracer != nullptr || opts_.collect_metrics) {
      if (single) {
        report.add_registry(*metrics);
      } else {
        for (const auto& name : metrics->histogram_names())
          report.add_histogram(kp + name,
                               trace::summarize(metrics->histogram(name)));
        for (const auto& name : metrics->counter_names())
          report.add_metric(kp + name,
                            static_cast<double>(metrics->counter(name)));
      }
    }

    if (opts_.trace && tracer != nullptr) {
      std::string path;
      if (opts_.trace_path.empty())
        path = spec->name + ".trace.json";
      else
        path = single ? opts_.trace_path : spec->name + "." + opts_.trace_path;
      trace::ChromeTraceOptions copts;
      copts.process_name = "armbar-" + spec->name;
      copts.op_name = +[](std::uint8_t op) {
        return sim::to_string(static_cast<sim::Op>(op));
      };
      io_ok = trace::write_chrome_trace(path, *tracer, copts) && io_ok;
      std::printf("trace:  %s (open in https://ui.perfetto.dev)\n",
                  path.c_str());
    }

    result.outcomes.push_back(out);
  }

  if (!single) {
    std::printf("\n===================== armbar-bench summary ====================\n");
    for (const auto& out : result.outcomes)
      std::printf("  %-26s %-4s  points %5llu (hits %5llu)  %8.1f ms\n",
                  out.name.c_str(), out.ok ? "ok" : "FAIL",
                  static_cast<unsigned long long>(out.points),
                  static_cast<unsigned long long>(out.cache_hits),
                  out.wall_ms);
  }
  result.cache_stats = cache.stats();
  if (cache.enabled())
    std::printf("\ncache: %llu hits / %llu misses / %llu stores (%s)\n",
                static_cast<unsigned long long>(result.cache_stats.hits),
                static_cast<unsigned long long>(result.cache_stats.misses),
                static_cast<unsigned long long>(result.cache_stats.stores),
                opts_.cache_dir.c_str());

  report.set_ok(all_ok);
  result.report = report.build();
  result.ok = all_ok && io_ok;
  return result;
}

}  // namespace armbar::runner
