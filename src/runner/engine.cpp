#include "runner/engine.hpp"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "prof/export.hpp"
#include "prof/prof.hpp"
#include "sim/isa.hpp"
#include "sim/verify.hpp"
#include "trace/chrome_trace.hpp"
#include "trace/json_report.hpp"
#include "trace/trace.hpp"

namespace armbar::runner {
namespace {

// Interrupt latch: the handler may only touch a sig_atomic_t. It stores the
// signal number (SIGINT from ^C, SIGTERM from a CI timeout / kill) so the
// CLI can exit with the conventional 128+signal status. Experiments poll it
// at every cached() point, so either signal stops new work quickly while
// the engine still assembles and flushes a partial report.
volatile std::sig_atomic_t g_interrupted = 0;

void engine_signal_handler(int sig) { g_interrupted = sig; }

const char* interrupt_name(int sig) {
  return sig == SIGTERM ? "SIGTERM" : "SIGINT";
}

// Interrupt-cleanup registry (engine.hpp). A plain array: hooks are
// registered from experiment bodies (main thread, before any fork) and run
// after the latch is observed, outside the signal handler, so ordinary
// synchronization is fine.
std::mutex g_cleanup_mu;
std::vector<void (*)()> g_cleanup_hooks;

/// Scoped installation of the engine's process-global degradation hooks:
/// ARMBAR_CHECK failures throw (instead of aborting the whole sweep), the
/// fault plan and verifier cadence reach every Machine::run, and SIGINT is
/// latched. Everything is restored on scope exit so tests can nest runs.
class DegradationScope {
 public:
  DegradationScope(const EngineOptions& opts)
      : prev_handler_(set_check_fail_handler(&throw_check_failure)),
        prev_verify_(sim::global_verify_every()),
        fault_installed_(opts.fault.enabled()),
        sigint_installed_(opts.handle_sigint) {
    sim::set_global_verify_every(opts.verify_every);
    if (fault_installed_) sim::fault::set_global_fault_plan(opts.fault);
    if (sigint_installed_) {
      g_interrupted = 0;
      prev_sigint_ = std::signal(SIGINT, &engine_signal_handler);
      prev_sigterm_ = std::signal(SIGTERM, &engine_signal_handler);
    }
  }
  ~DegradationScope() {
    if (sigint_installed_ && prev_sigterm_ != SIG_ERR)
      std::signal(SIGTERM, prev_sigterm_);
    if (sigint_installed_ && prev_sigint_ != SIG_ERR)
      std::signal(SIGINT, prev_sigint_);
    if (fault_installed_) sim::fault::clear_global_fault_plan();
    sim::set_global_verify_every(prev_verify_);
    set_check_fail_handler(prev_handler_);
  }

 private:
  CheckFailHandler prev_handler_;
  std::uint64_t prev_verify_;
  bool fault_installed_;
  bool sigint_installed_;
  void (*prev_sigint_)(int) = SIG_ERR;
  void (*prev_sigterm_)(int) = SIG_ERR;
};

/// One attempt's abnormal-termination record (empty kind = clean).
struct Failure {
  std::string kind;
  std::string reason;
  trace::Json diagnostic;
};

// Same banner the standalone benches printed, so migrated experiments keep
// their stdout shape.
void banner(const std::string& display, const std::string& title) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", display.c_str(), title.c_str());
  std::printf("metric: simulated cycles at the platform clock; shapes (who\n");
  std::printf("wins, crossovers) are the reproduction target, not absolutes.\n");
  std::printf("==============================================================\n\n");
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// Human summary of the host profile: per-phase flat totals sorted by self
/// time, then the derived simulator throughput. Mirrors the host_prof
/// report section so a terminal run surfaces the same numbers.
void print_host_profile(const prof::Snapshot& snap) {
  std::printf("\n------------------ host profile (report-only) -----------------\n");
  std::printf("wall %.1f ms, %u thread%s\n",
              static_cast<double>(snap.wall_ns) / 1e6, snap.threads,
              snap.threads == 1 ? "" : "s");
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < prof::kNumPhases; ++i)
    if (snap.phases[i].count > 0) order.push_back(i);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return snap.phases[a].self_ns > snap.phases[b].self_ns;
  });
  std::printf("  %-16s %12s %12s %12s\n", "phase", "count", "total ms",
              "self ms");
  for (std::size_t i : order)
    std::printf("  %-16s %12llu %12.3f %12.3f\n",
                prof::phase_name(static_cast<prof::Phase>(i)),
                static_cast<unsigned long long>(snap.phases[i].count),
                static_cast<double>(snap.phases[i].total_ns) / 1e6,
                static_cast<double>(snap.phases[i].self_ns) / 1e6);
  for (std::size_t i = 0; i < prof::kNumCounters; ++i)
    if (snap.counters[i] != 0)
      std::printf("  %-16s %12llu\n",
                  prof::counter_name(static_cast<prof::Counter>(i)),
                  static_cast<unsigned long long>(snap.counters[i]));
  const std::uint64_t instrs = snap.counter(prof::Counter::kSimInstructions);
  std::uint64_t sim_ns = snap.phase(prof::Phase::kSimRun).total_ns;
  if (sim_ns == 0) sim_ns = snap.wall_ns;
  if (instrs > 0 && sim_ns > 0)
    std::printf("  sim throughput   %.2f M instr/s (host-side)\n",
                static_cast<double>(instrs) * 1e3 /
                    static_cast<double>(sim_ns));
}

}  // namespace

void register_interrupt_cleanup(void (*fn)()) {
  if (fn == nullptr) return;
  std::lock_guard<std::mutex> lock(g_cleanup_mu);
  for (auto* existing : g_cleanup_hooks)
    if (existing == fn) return;
  g_cleanup_hooks.push_back(fn);
}

void run_interrupt_cleanups() {
  std::vector<void (*)()> hooks;
  {
    std::lock_guard<std::mutex> lock(g_cleanup_mu);
    hooks = g_cleanup_hooks;
  }
  for (auto* fn : hooks) fn();
}

Engine::Engine(const Registry& registry, EngineOptions opts)
    : registry_(registry), opts_(std::move(opts)) {}

EngineResult Engine::run() {
  EngineResult result;
  const std::vector<const ExperimentSpec*> matched =
      registry_.match(opts_.filter);
  if (matched.empty()) {
    std::fprintf(stderr,
                 "armbar-bench: no experiment matches filter '%s' "
                 "(see --list)\n",
                 opts_.filter.c_str());
    return result;  // ok == false: a typoed filter must not pass CI
  }

  std::size_t jobs = opts_.jobs != 0 ? opts_.jobs : ThreadPool::hardware_jobs();
  if (opts_.trace && jobs != 1) {
    // The tracer ring is single-writer; traced runs are serial by contract.
    std::printf("(--trace forces --jobs 1; tracing needs a serial schedule)\n");
    jobs = 1;
  }
  result.jobs = jobs;
  std::unique_ptr<ThreadPool> pool;
  if (jobs > 1) pool = std::make_unique<ThreadPool>(jobs - 1);  // caller works

  ResultCache cache(opts_.cache_enabled ? opts_.cache_dir : "");

  const bool single = matched.size() == 1;
  trace::ReportBuilder report(
      single ? matched[0]->name : "armbar-bench",
      single ? matched[0]->title
             : "consolidated experiment report (filter '" + opts_.filter + "')");
  if (!single) {
    report.add_param("filter", opts_.filter);
    report.add_param("jobs", std::to_string(jobs));
    report.add_param("repeat", std::to_string(opts_.repeat));
    report.add_param("cache", cache.enabled() ? opts_.cache_dir : "off");
  }

  DegradationScope degradation(opts_);
  if (opts_.fault.enabled())
    std::printf("fault injection: %s\n\n", opts_.fault.describe().c_str());

  // Host profiling: always reset at run start so a previous in-process run
  // (tests nest engine runs) can't bleed stale samples into this report's
  // host_prof section. The engine only *disables* what it enabled — an
  // experiment's own prof::Session (sim_perf) or an outer caller wins.
  if (prof::compiled_in()) prof::reset();
  if (opts_.profile && !prof::compiled_in())
    std::printf("(--profile requested but profiling is compiled out via "
                "ARMBAR_PROF_DISABLED; host_prof will be absent)\n");
  const bool prof_owned = opts_.profile && !prof::enabled();
  if (prof_owned) prof::set_enabled(true);

  bool all_ok = true;
  bool io_ok = true;
  for (const ExperimentSpec* spec : matched) {
    if (g_interrupted != 0) {
      // SIGINT already observed: don't start more work, but keep the
      // experiment visible in the report as explicitly skipped.
      ExperimentOutcome out;
      out.name = spec->name;
      out.ok = false;
      out.status = "skipped";
      out.kind = "skipped";
      out.reason = "not started: run interrupted";
      out.attempts = 0;
      all_ok = false;
      const std::string kp = single ? "" : spec->name + "/";
      report.add_param(kp + "status", out.status);
      report.add_quarantine(out.name, out.status, out.kind, out.reason);
      result.outcomes.push_back(std::move(out));
      continue;
    }
    banner(spec->figure, spec->title);

    std::unique_ptr<trace::MetricsRegistry> metrics;
    std::unique_ptr<trace::Tracer> tracer;
    std::unique_ptr<ExperimentContext> ctx;
    bool deterministic = true;
    bool aborted = false;
    Failure failure;
    std::uint32_t attempts = 0;

    const auto t0 = std::chrono::steady_clock::now();
    const std::uint32_t reps = opts_.repeat == 0 ? 1 : opts_.repeat;
    for (std::uint32_t attempt = 0; attempt <= opts_.retries; ++attempt) {
      if (attempt > 0) {
        // Exponential backoff: 50ms, 100ms, 200ms, ... Lets transient host
        // pressure (the usual cause of a timeout) clear before retrying.
        std::this_thread::sleep_for(std::chrono::milliseconds(50)
                                    * (1u << (attempt - 1)));
        std::printf("\n-- retry %u/%u: %s (%s) --\n", attempt, opts_.retries,
                    spec->name.c_str(), failure.kind.c_str());
      }
      ++attempts;
      failure = Failure{};
      aborted = false;
      deterministic = true;
      std::uint64_t first_digest = 0;

      for (std::uint32_t rep = 0; rep < reps; ++rep) {
        metrics = std::make_unique<trace::MetricsRegistry>();
        if (opts_.trace) {
          tracer = std::make_unique<trace::Tracer>();
          tracer->set_metrics(metrics.get());
        }
        ExperimentContext::Hooks hooks;
        hooks.pool = pool.get();
        hooks.cache = &cache;
        hooks.tracer = tracer.get();
        hooks.metrics = metrics.get();
        hooks.jobs = jobs;
        hooks.collect_metrics = opts_.collect_metrics;
        if (opts_.timeout_ms > 0) {
          hooks.has_deadline = true;
          hooks.deadline = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(opts_.timeout_ms);
        }
        hooks.interrupted = &g_interrupted;
        ctx = std::make_unique<ExperimentContext>(*spec, hooks);

        if (rep > 0)
          std::printf("\n-- repetition %u/%u: %s --\n", rep + 1, reps,
                      spec->name.c_str());
        try {
          spec->body(*ctx);
        } catch (const ExperimentAbort& e) {
          aborted = true;  // ctx.fatal() already recorded the failed check
          // An abort classified via note_failure_kind() (e.g. the lock
          // verifier's "lock_invariant") also gets a quarantine entry, so
          // the report carries its repro bundle and quarantine params.
          if (const std::string kind = ctx->failure_kind(); !kind.empty())
            failure = {kind, e.reason, trace::Json()};
        } catch (const ExperimentTimeout& e) {
          failure = {"timeout", e.reason, trace::Json()};
        } catch (const ExperimentInterrupted&) {
          failure = {"interrupted",
                     std::string("run interrupted (") +
                         interrupt_name(g_interrupted) + ")",
                     trace::Json()};
        } catch (const sim::SimError& e) {
          // SimHang / InvariantViolation: kind travels in the diagnostic.
          failure = {e.diagnostic().kind, e.diagnostic().summary,
                     e.diagnostic().to_json()};
          std::printf("%s\n", e.diagnostic().str().c_str());
        } catch (const CheckFailure& e) {
          failure = {"check_failed", e.what(), trace::Json()};
        } catch (const std::exception& e) {
          failure = {"error", e.what(), trace::Json()};
        } catch (...) {
          failure = {"error", "unknown exception", trace::Json()};
        }
        if (aborted || !failure.kind.empty()) break;
        if (rep == 0)
          first_digest = ctx->points_digest();
        else if (ctx->points_digest() != first_digest)
          deterministic = false;
      }

      // Only a timeout or a generic error is plausibly transient. A hang,
      // an invariant violation, a tripped check or an interrupt is
      // deterministic (or deliberate) — retrying would just repeat it.
      const bool retryable =
          failure.kind == "timeout" || failure.kind == "error";
      if (failure.kind.empty() || !retryable) break;
      if (failure.kind != "interrupted")
        std::printf("  experiment %s: %s (%s)\n", spec->name.c_str(),
                    failure.kind.c_str(), failure.reason.c_str());
    }
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    if (reps > 1 && !aborted && failure.kind.empty())
      ctx->check(deterministic,
                 "repetitions deterministic (points digest stable across " +
                     std::to_string(reps) + " runs)");
    if (ctx->prof_digest_leak())
      ctx->check(false,
                 "cached point values free of host-profiling fields "
                 "(digest hygiene)");

    ExperimentOutcome out;
    out.name = spec->name;
    out.aborted = aborted;
    out.ok = !aborted && failure.kind.empty() && ctx->all_checks_passed();
    out.points = ctx->points();
    out.cache_hits = ctx->point_hits();
    out.points_digest = ctx->points_digest();
    out.wall_ms = wall_ms;
    out.status = out.ok ? "ok" : "failed";
    out.kind = failure.kind;
    out.reason = failure.reason;
    out.diagnostic = failure.diagnostic;
    out.repro_bundle = ctx->repro_bundle();
    out.attempts = attempts;
    all_ok = all_ok && out.ok;
    if (!failure.kind.empty())
      std::printf("\n  experiment %s FAILED: %s (%s, %u attempt%s)\n",
                  spec->name.c_str(), failure.kind.c_str(),
                  failure.reason.c_str(), attempts, attempts == 1 ? "" : "s");

    // Fold this experiment into the consolidated report. Single-match runs
    // keep the old unprefixed keys for byte-compatibility with the legacy
    // per-figure reports.
    const std::string cp = single ? "" : spec->name + ": ";
    const std::string kp = single ? "" : spec->name + "/";
    for (const auto& c : ctx->checks()) report.add_check(cp + c.claim, c.pass);
    for (const auto& [name, value] : ctx->params())
      report.add_param(kp + name, value);
    for (const auto& [name, value] : ctx->metrics_recorded())
      report.add_metric(kp + name, value);
    report.add_param(kp + "points_digest", hex16(ctx->points_digest()));
    report.add_param(kp + "status", out.status);
    // Barrier-optimization decisions (ISSUE 10): report-level section,
    // validated by report_check. Last experiment to note one wins (only
    // barrier_opt emits it today).
    if (const trace::Json rep = ctx->opt_report(); !rep.is_null())
      report.set_opt_report(rep);
    // Emitted only on contamination so clean reports stay byte-identical
    // to pre-profiling ones; report_check rejects any report carrying it.
    if (ctx->prof_digest_leak())
      report.add_param(kp + "prof_digest_leak", "true");
    if (!out.kind.empty()) {
      trace::Json extra;
      if (const auto qp = ctx->quarantine_params(); !qp.empty()) {
        extra = trace::Json::object();
        for (const auto& [k, v] : qp) extra.set(k, v);
      }
      report.add_quarantine(out.name, out.status, out.kind, out.reason,
                            out.diagnostic, out.repro_bundle, extra);
    }
    report.add_metric(kp + "wall_ms", wall_ms);
    report.add_metric(kp + "sim_points", static_cast<double>(out.points));
    report.add_metric(kp + "cache_point_hits",
                      static_cast<double>(out.cache_hits));
    if (tracer != nullptr || opts_.collect_metrics) {
      if (single) {
        report.add_registry(*metrics);
      } else {
        for (const auto& name : metrics->histogram_names())
          report.add_histogram(kp + name,
                               trace::summarize(metrics->histogram(name)));
        for (const auto& name : metrics->counter_names())
          report.add_metric(kp + name,
                            static_cast<double>(metrics->counter(name)));
      }
    }

    if (opts_.trace && tracer != nullptr) {
      std::string path;
      if (opts_.trace_path.empty())
        path = spec->name + ".trace.json";
      else
        path = single ? opts_.trace_path : spec->name + "." + opts_.trace_path;
      trace::ChromeTraceOptions copts;
      copts.process_name = "armbar-" + spec->name;
      copts.op_name = +[](std::uint8_t op) {
        return sim::to_string(static_cast<sim::Op>(op));
      };
      io_ok = trace::write_chrome_trace(path, *tracer, copts) && io_ok;
      std::printf("trace:  %s (open in https://ui.perfetto.dev)\n",
                  path.c_str());
    }

    result.outcomes.push_back(out);
  }

  if (!single) {
    std::printf("\n===================== armbar-bench summary ====================\n");
    for (const auto& out : result.outcomes)
      std::printf("  %-26s %-8s  points %5llu (hits %5llu)  %8.1f ms%s%s\n",
                  out.name.c_str(),
                  out.ok ? "ok" : out.status == "skipped" ? "SKIPPED" : "FAIL",
                  static_cast<unsigned long long>(out.points),
                  static_cast<unsigned long long>(out.cache_hits),
                  out.wall_ms, out.kind.empty() ? "" : "  ",
                  out.kind.c_str());
  }
  result.cache_stats = cache.stats();
  if (cache.enabled())
    std::printf("\ncache: %llu hits / %llu misses / %llu stores / "
                "%llu evictions (%s)\n",
                static_cast<unsigned long long>(result.cache_stats.hits),
                static_cast<unsigned long long>(result.cache_stats.misses),
                static_cast<unsigned long long>(result.cache_stats.stores),
                static_cast<unsigned long long>(result.cache_stats.evictions),
                opts_.cache_dir.c_str());

  // Host-profile export: the engine disables only what it enabled, then
  // snapshots whatever recorded — an experiment-owned prof::Session
  // (sim_perf) produces a host_prof section even without --profile.
  if (prof_owned) prof::set_enabled(false);
  if (prof::compiled_in()) {
    const prof::Snapshot snap = prof::snapshot();
    if (snap.has_data()) {
      report.set_host_prof(prof::host_prof_json(snap));
      print_host_profile(snap);
      if (!opts_.profile_folded.empty()) {
        io_ok = prof::write_collapsed(opts_.profile_folded, snap) && io_ok;
        std::printf("profile: %s (flamegraph.pl-compatible collapsed "
                    "stacks)\n",
                    opts_.profile_folded.c_str());
      }
      if (!opts_.profile_chrome.empty()) {
        io_ok = prof::write_chrome(opts_.profile_chrome, snap) && io_ok;
        std::printf("profile: %s (open in https://ui.perfetto.dev)\n",
                    opts_.profile_chrome.c_str());
      }
    }
  }

  result.interrupted = g_interrupted != 0;
  if (result.interrupted) {
    result.signal = static_cast<int>(g_interrupted);
    // Reap forked helpers / unlink shm segments before the partial report
    // is flushed, so an interrupted run leaves nothing behind.
    run_interrupt_cleanups();
    std::printf("\ninterrupted by %s: partial report (remaining experiments "
                "skipped)\n",
                interrupt_name(result.signal));
  }
  report.set_ok(all_ok);
  result.report = report.build();
  result.ok = all_ok && io_ok;
  return result;
}

}  // namespace armbar::runner
