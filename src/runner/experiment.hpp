// Declarative experiment API (ISSUE 2): every fig*/table* artifact is a
// registered experiment instead of a main()-driven loop.
//
//   ARMBAR_EXPERIMENT(fig3_store_store, "Figure 3",
//                     "store-store model under different configurations") {
//     auto thr = ctx.map(points.size(), [&](std::size_t i) {
//       return cached_run_pair(ctx, spec, progs[i], iters, c0, c1);
//     });
//     ... print tables, ctx.check(...) the paper's claims ...
//   }
//
// The body receives an ExperimentContext wired to the engine's shared
// work-stealing pool and result cache:
//   * ctx.map(n, fn)  — run fn(0..n-1) host-parallel, results returned in
//     index order regardless of scheduling (deterministic sweep order);
//   * ctx.cached(...) — content-addressed memoization of one sweep point;
//   * ctx.check/param/metric — the report surface the old BenchRun had.
//
// Registration is static-init into Registry::global(); the experiment
// translation units are linked as an OBJECT library so no registrar is
// dropped by static-library pruning.
#pragma once

#include <chrono>
#include <csignal>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "runner/cache.hpp"
#include "runner/fingerprint.hpp"
#include "runner/thread_pool.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"

namespace armbar::runner {

class ExperimentContext;

/// One registered experiment: identity + body.
struct ExperimentSpec {
  std::string name;    ///< registry key, e.g. "fig3_store_store"
  std::string figure;  ///< paper artifact, e.g. "Figure 3" (banner display)
  std::string title;   ///< one-line description
  void (*body)(ExperimentContext&) = nullptr;
};

/// Thrown by ExperimentContext::fatal(); the engine records the experiment
/// as failed and moves on to the next one.
struct ExperimentAbort {
  std::string reason;
};

/// Thrown from cached() when the experiment ran past its wall-clock budget
/// (--timeout-ms). The engine records status "failed" / kind "timeout" and
/// may retry.
struct ExperimentTimeout {
  std::string reason;
};

/// Thrown from cached() when the run was interrupted (SIGINT). The engine
/// stops starting new work and still flushes a partial report.
struct ExperimentInterrupted {};

class Registry {
 public:
  /// The process-wide registry the ARMBAR_EXPERIMENT macro adds to.
  static Registry& global();

  /// Static-init registrar; aborts on duplicate names. Returns true so it
  /// can initialize a bool.
  bool add(ExperimentSpec spec);

  /// All experiments, sorted by name (deterministic run & report order).
  std::vector<const ExperimentSpec*> sorted() const;

  /// Experiments whose name matches the comma-separated glob list, sorted
  /// by name.
  std::vector<const ExperimentSpec*> match(const std::string& filter) const;

  const ExperimentSpec* find(const std::string& name) const;
  std::size_t size() const { return specs_.size(); }

 private:
  std::vector<ExperimentSpec> specs_;
};

/// Everything an experiment body may touch. Owned by the engine; one fresh
/// instance per experiment execution.
class ExperimentContext {
 public:
  struct Hooks {
    ThreadPool* pool = nullptr;            // null => serial
    ResultCache* cache = nullptr;          // null => uncached
    trace::Tracer* tracer = nullptr;       // non-null only under --trace
    trace::MetricsRegistry* metrics = nullptr;
    std::size_t jobs = 1;
    /// --json: instrumentable points run with a per-point tracer feeding a
    /// local registry that is merged into `metrics` (parallel-safe), and
    /// skip cache lookups so the histograms always reflect a real run.
    bool collect_metrics = false;
    /// --timeout-ms: sweep points starting after this instant throw
    /// ExperimentTimeout. Checked at point granularity — a point already
    /// simulating is never torn down mid-machine (the watchdog bounds its
    /// runtime instead), so the sweep degrades at a clean boundary.
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    /// SIGINT flag owned by the engine: when it goes nonzero, points throw
    /// ExperimentInterrupted instead of starting more simulations.
    const volatile std::sig_atomic_t* interrupted = nullptr;
  };

  ExperimentContext(const ExperimentSpec& spec, Hooks hooks)
      : spec_(spec), hooks_(hooks) {}

  const ExperimentSpec& spec() const { return spec_; }
  std::size_t jobs() const { return hooks_.jobs; }

  /// Non-null only when the engine traces (which forces serial execution —
  /// the tracer's ring is single-writer). Pass to Machine runs.
  trace::Tracer* tracer() { return hooks_.tracer; }
  trace::MetricsRegistry& metrics() { return *hooks_.metrics; }

  /// True once the engine latched SIGINT/SIGTERM. Long-running bodies that
  /// wait outside cached() — the shm service fleets supervise real child
  /// processes for seconds — poll this and bail (throw
  /// ExperimentInterrupted) so ^C stays responsive.
  bool interrupted() const {
    return hooks_.interrupted != nullptr && *hooks_.interrupted != 0;
  }

  // ---- report surface (the old BenchRun API) ----

  /// PASS/FAIL line, printed and recorded into the consolidated report.
  bool check(bool ok, const std::string& claim);
  void param(const std::string& name, const std::string& value);
  void metric(const std::string& name, double value);

  /// Unrecoverable inconsistency (e.g. a checksum failure): records a
  /// failed check and aborts this experiment only.
  [[noreturn]] void fatal(const std::string& reason);

  /// Attach the path of an armbar.repro/v1 bundle (written by the fuzz
  /// harness) to this run. If the experiment is later quarantined the path
  /// lands on its quarantine entry as "repro_bundle", giving the report a
  /// one-command replay handle (tools/armbar-repro). Last writer wins;
  /// thread-safe (sweep workers may call it).
  void note_repro_bundle(const std::string& path);
  std::string repro_bundle() const;

  /// Classify a subsequent fatal() abort. `kind` becomes the quarantine
  /// entry's failure class (e.g. "lock_invariant" from the lock-verification
  /// harness) instead of the default unclassified abort, and each
  /// note_quarantine_param() pair lands on the entry verbatim — e.g. the
  /// violated invariant's name and its minimized witness outcome, which
  /// report_check requires for "lock_invariant" entries. Thread-safe; the
  /// kind is last-writer-wins, params accumulate.
  void note_failure_kind(const std::string& kind);
  std::string failure_kind() const;
  void note_quarantine_param(const std::string& key, const std::string& value);
  std::vector<std::pair<std::string, std::string>> quarantine_params() const;

  /// Attach an armbar.opt.report/v1 section (opt::opt_report_json) to the
  /// enclosing bench report (ISSUE 10). The engine forwards it to
  /// ReportBuilder::set_opt_report, where validate_bench_report enforces
  /// its arithmetic consistency. Last writer wins across a consolidated
  /// run; thread-safe.
  void note_opt_report(trace::Json rep);
  trace::Json opt_report() const;

  // ---- parallel sweep ----

  /// Run fn(0..n-1) on the engine pool and return the results in index
  /// order. fn must be thread-safe at --jobs > 1: compute only, no
  /// printing; each call builds its own Machine. With jobs == 1 (or no
  /// pool) the calls happen inline, in order, on this thread.
  template <typename Fn>
  auto map(std::size_t n, Fn&& fn) -> std::vector<decltype(fn(std::size_t{}))> {
    using R = decltype(fn(std::size_t{}));
    std::vector<R> out(n);
    if (hooks_.pool == nullptr || hooks_.jobs <= 1) {
      for (std::size_t i = 0; i < n; ++i) out[i] = fn(i);
    } else {
      hooks_.pool->parallel_for(
          n, [&](std::size_t i) { out[i] = fn(i); });
    }
    return out;
  }

  // ---- content-addressed memoization ----

  /// Memoize one sweep point. `key` must digest every input that can
  /// change the value (key() seeds it with kCacheEpoch); `desc` is a
  /// human-readable rendering stored with the entry. On a hit, compute is
  /// skipped entirely. Thread-safe. Every call (hit or miss) folds
  /// (key, value) into this experiment's order-independent points digest,
  /// so reports expose a single fingerprint of the whole sweep.
  trace::Json cached(const Fingerprint& key, const std::string& desc,
                     const std::function<trace::Json()>& compute);

  /// Variant for points whose simulation accepts a tracer (run_single /
  /// run_pair). Under --trace the shared serial tracer is passed; under
  /// --json a fresh per-point tracer records into a local registry merged
  /// into the experiment's (so latency histograms survive --jobs > 1);
  /// otherwise compute(nullptr). Instrumented points skip cache lookups.
  trace::Json cached_instrumented(
      const Fingerprint& key, const std::string& desc,
      const std::function<trace::Json(trace::Tracer*)>& compute);

  /// Seed a fingerprint with the cache epoch (every key must start here).
  /// A process-global fault plan (runner chaos mode) is mixed in too, so
  /// fault-perturbed results live in their own cache namespace and can
  /// never contaminate clean baselines.
  static Fingerprint key();

  // ---- engine-side accessors ----

  struct CheckLine {
    std::string claim;
    bool pass;
  };
  const std::vector<CheckLine>& checks() const { return checks_; }
  const std::vector<std::pair<std::string, std::string>>& params() const {
    return params_;
  }
  const std::vector<std::pair<std::string, double>>& metrics_recorded() const {
    return metrics_recorded_;
  }
  /// XOR-fold over all cached() points of fnv(key || value). Commutative,
  /// so identical across schedules; changes if any point's value changes.
  std::uint64_t points_digest() const { return points_digest_; }
  std::uint64_t points() const { return points_; }
  std::uint64_t point_hits() const { return point_hits_; }
  bool all_checks_passed() const { return failed_checks_ == 0; }
  /// True when any cached() point value carried a reserved host-profiling
  /// key ("host_prof", "self_ns", "sim_instructions_per_sec", ...). Host
  /// time in a cached value poisons the points digest — it changes on
  /// every run — so the engine fails the experiment and flags the report
  /// (report_check rejects it). Mirrors the enum_ns rule: host timing is
  /// report-only, never digest material.
  bool prof_digest_leak() const { return prof_digest_leak_; }

 private:
  trace::Json cached_impl(const Fingerprint& key, const std::string& desc,
                          bool instrumentable,
                          const std::function<trace::Json(trace::Tracer*)>& fn);

  const ExperimentSpec& spec_;
  Hooks hooks_;
  std::vector<CheckLine> checks_;
  std::vector<std::pair<std::string, std::string>> params_;
  std::vector<std::pair<std::string, double>> metrics_recorded_;
  std::size_t failed_checks_ = 0;
  std::string repro_bundle_;
  std::string failure_kind_;
  std::vector<std::pair<std::string, std::string>> quarantine_params_;
  trace::Json opt_report_;
  mutable std::mutex mu_;  // guards digest fields, repro_bundle_ and the
                           // failure kind/params (workers may call the
                           // note_* methods)
  std::uint64_t points_digest_ = 0;
  std::uint64_t points_ = 0;
  std::uint64_t point_hits_ = 0;
  bool prof_digest_leak_ = false;
};

}  // namespace armbar::runner

/// Define and register an experiment. Usage:
///   ARMBAR_EXPERIMENT(fig2_intrinsic, "Figure 2", "intrinsic overhead...") {
///     ... body using `ctx` ...
///   }
#define ARMBAR_EXPERIMENT(ident, figure, title)                               \
  static void armbar_experiment_body_##ident(                                 \
      ::armbar::runner::ExperimentContext& ctx);                              \
  [[maybe_unused]] static const bool armbar_experiment_reg_##ident =          \
      ::armbar::runner::Registry::global().add(                               \
          {#ident, figure, title, &armbar_experiment_body_##ident});          \
  static void armbar_experiment_body_##ident(                                 \
      ::armbar::runner::ExperimentContext& ctx)
