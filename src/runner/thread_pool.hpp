// Bounded work-stealing thread pool for host-parallel experiment sweeps.
//
// Each worker owns a deque: it pushes/pops its own work LIFO (cache-warm)
// and steals FIFO from a victim when empty, so one long sweep point left on
// a queue migrates to an idle worker instead of serializing the tail.
// Simulator runs are coarse (milliseconds to seconds each), so deques are
// mutex-guarded — contention is negligible at this granularity and the
// code stays obviously correct.
//
// Determinism contract: the pool schedules, it never reorders results —
// parallel_for(n, fn) indexes every call, and callers write results into
// slot i, so the output order is the input order no matter which worker
// ran what when. Each fn(i) constructs its own Machine; nothing simulated
// is shared across workers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace armbar::runner {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Run fn(0..n-1), blocking until all calls finished. The calling thread
  /// participates (steals work) instead of idling, so a pool of size J uses
  /// J+1 threads of compute but never oversubscribes a J-sized --jobs
  /// budget by more than the caller itself. Exceptions from fn propagate
  /// (the first one thrown; remaining tasks still complete). If the pool is
  /// shut down mid-call, queued-but-unstarted tasks are cancelled and the
  /// call throws — a task exception always wins over the cancellation
  /// error, and the waiter can never hang on never-to-run tasks.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Stop taking new tasks, join every worker, then cancel any tasks still
  /// queued (waking their parallel_for waiters with an error instead of
  /// leaving them blocked forever). Idempotent; the destructor calls it.
  void shutdown();

  /// Default worker count: every hardware thread.
  static std::size_t hardware_jobs();

 private:
  struct Job;

  struct Task {
    Job* job;
    std::size_t index;
  };

  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  bool pop_local(std::size_t worker, Task* out);
  bool steal(std::size_t thief, Task* out);
  bool is_shutdown();
  static void run_task(const Task& t);
  static void cancel_task(const Task& t);
  void worker_loop(std::size_t id);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool shutdown_ = false;
  std::size_t pending_ = 0;  // tasks queued but not yet taken (wake hint)
};

}  // namespace armbar::runner
