#include "runner/fingerprint.hpp"

#include <bit>
#include <cstdio>

namespace armbar::runner {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

inline std::uint64_t fnv_byte(std::uint64_t h, std::uint8_t b) {
  return (h ^ b) * kFnvPrime;
}

inline std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) h = fnv_byte(h, static_cast<std::uint8_t>(v >> (8 * i)));
  return h;
}

}  // namespace

Fingerprint& Fingerprint::mix(std::uint64_t v) {
  lo_ = fnv_u64(lo_, v);
  hi_ = fnv_u64(hi_, ~v);
  return *this;
}

Fingerprint& Fingerprint::mix(double v) {
  return mix(std::bit_cast<std::uint64_t>(v));
}

Fingerprint& Fingerprint::mix(std::string_view s) {
  // Length first so {"ab","c"} and {"a","bc"} digest differently.
  mix(static_cast<std::uint64_t>(s.size()));
  for (const char c : s) {
    lo_ = fnv_byte(lo_, static_cast<std::uint8_t>(c));
    hi_ = fnv_byte(hi_, static_cast<std::uint8_t>(c) ^ 0xa5);
  }
  return *this;
}

Fingerprint& Fingerprint::mix(const sim::PlatformSpec& spec) {
  // Field-by-field, so a new latency knob shows up here (and in the
  // static_assert below) the day it is added.
  const sim::Latencies& l = spec.lat;
  static_assert(sizeof(sim::Latencies) == 24 * sizeof(std::uint32_t),
                "Latencies gained/lost a field: update Fingerprint::mix and "
                "bump kCacheEpoch in runner/cache.hpp");
  mix(spec.name).mix(spec.arch).mix(spec.nodes).mix(spec.cores_per_node);
  mix(spec.freq_ghz).mix(spec.interconnect).mix(spec.mca);
  mix(l.alu).mix(l.cache_hit).mix(l.sb_hit).mix(l.sb_insert);
  mix(l.sb_drain_delay).mix(l.owned_drain).mix(l.pipeline_flush).mix(l.barrier_base);
  mix(l.mem_local).mix(l.mem_remote).mix(l.c2c_local).mix(l.c2c_remote);
  mix(l.inv_local).mix(l.inv_remote).mix(l.read_occupancy);
  mix(l.bus_mem_local).mix(l.bus_mem_cross).mix(l.bus_sync).mix(l.stlr_extra);
  mix(l.sb_entries).mix(l.sb_mshrs).mix(l.lq_entries).mix(l.max_spec_branches);
  mix(l.wfe_timeout);
  return *this;
}

Fingerprint& Fingerprint::mix(const sim::Program& prog) {
  mix(static_cast<std::uint64_t>(prog.code.size()));
  for (const sim::Instr& ins : prog.code) {
    mix(static_cast<std::uint64_t>(ins.op));
    mix(static_cast<std::uint64_t>(ins.rd));
    mix(static_cast<std::uint64_t>(ins.rn));
    mix(static_cast<std::uint64_t>(ins.rm));
    mix(ins.imm);
    mix(ins.target);
  }
  return *this;
}

Fingerprint& Fingerprint::mix(const sim::fault::FaultPlan& plan) {
  // Field-by-field, like PlatformSpec: a new fault class must show up here
  // (and trip the static_assert) the day it is added.
  static_assert(sizeof(sim::fault::FaultPlan) ==
                    sizeof(std::uint64_t) + 8 * sizeof(std::uint32_t),
                "FaultPlan gained/lost a field: update Fingerprint::mix and "
                "bump kCacheEpoch in runner/cache.hpp");
  mix("fault-plan");
  mix(plan.seed);
  mix(plan.barrier_spike_pm).mix(plan.barrier_spike_cycles);
  mix(plan.coh_delay_pm).mix(plan.coh_delay_cycles);
  mix(plan.coh_duplicate_pm);
  mix(plan.evict_pm);
  mix(plan.sb_stall_pm).mix(plan.sb_stall_cycles);
  return *this;
}

std::string Fingerprint::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(hi_),
                static_cast<unsigned long long>(lo_));
  return std::string(buf, 32);
}

}  // namespace armbar::runner
