// Lock-protected data structures used by the paper's Fig 8 benchmarks:
// queue, stack (global lock), sorted linked list (Synchrobench-style [16]),
// and a hash table of per-bucket locked lists.
//
// Every operation is expressed as a CriticalFn so the same structure runs
// under an in-place lock (ticket/MCS) or a delegation lock (FFWD/CC-Synch)
// — that is exactly the comparison the paper draws.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.hpp"
#include "locks/delegation.hpp"

namespace armbar::ds {

using locks::CriticalFn;
using locks::Executor;

/// FIFO queue of 64-bit values under a global Executor.
class ConcurrentQueue {
 public:
  explicit ConcurrentQueue(Executor& ex) : ex_(ex) {}
  ~ConcurrentQueue() {
    std::uint64_t v;
    while (dequeue(v)) {}
  }
  ConcurrentQueue(const ConcurrentQueue&) = delete;
  ConcurrentQueue& operator=(const ConcurrentQueue&) = delete;

  void enqueue(std::uint64_t v) {
    auto* n = new Node{v, nullptr};
    ex_.execute(&enqueue_cs, this, reinterpret_cast<std::uint64_t>(n));
  }

  /// Returns false when empty.
  bool dequeue(std::uint64_t& out) {
    const std::uint64_t r = ex_.execute(&dequeue_cs, this, 0);
    if (r == kEmpty) return false;
    auto* n = reinterpret_cast<Node*>(r);
    out = n->value;
    delete n;
    return true;
  }

  std::size_t size_unlocked() const { return size_; }

 private:
  struct Node {
    std::uint64_t value;
    Node* next;
  };
  static constexpr std::uint64_t kEmpty = ~0ULL;

  static std::uint64_t enqueue_cs(void* ctx, std::uint64_t arg) {
    auto* q = static_cast<ConcurrentQueue*>(ctx);
    auto* n = reinterpret_cast<Node*>(arg);
    if (q->tail_ == nullptr) {
      q->head_ = q->tail_ = n;
    } else {
      q->tail_->next = n;
      q->tail_ = n;
    }
    ++q->size_;
    return 0;
  }

  static std::uint64_t dequeue_cs(void* ctx, std::uint64_t) {
    auto* q = static_cast<ConcurrentQueue*>(ctx);
    if (q->head_ == nullptr) return kEmpty;
    Node* n = q->head_;
    q->head_ = n->next;
    if (q->head_ == nullptr) q->tail_ = nullptr;
    --q->size_;
    return reinterpret_cast<std::uint64_t>(n);
  }

  Executor& ex_;
  Node* head_ = nullptr;
  Node* tail_ = nullptr;
  std::size_t size_ = 0;
};

/// LIFO stack of 64-bit values under a global Executor.
class ConcurrentStack {
 public:
  explicit ConcurrentStack(Executor& ex) : ex_(ex) {}
  ~ConcurrentStack() {
    std::uint64_t v;
    while (pop(v)) {}
  }
  ConcurrentStack(const ConcurrentStack&) = delete;
  ConcurrentStack& operator=(const ConcurrentStack&) = delete;

  void push(std::uint64_t v) {
    auto* n = new Node{v, nullptr};
    ex_.execute(&push_cs, this, reinterpret_cast<std::uint64_t>(n));
  }

  bool pop(std::uint64_t& out) {
    const std::uint64_t r = ex_.execute(&pop_cs, this, 0);
    if (r == kEmpty) return false;
    auto* n = reinterpret_cast<Node*>(r);
    out = n->value;
    delete n;
    return true;
  }

  std::size_t size_unlocked() const { return size_; }

 private:
  struct Node {
    std::uint64_t value;
    Node* next;
  };
  static constexpr std::uint64_t kEmpty = ~0ULL;

  static std::uint64_t push_cs(void* ctx, std::uint64_t arg) {
    auto* s = static_cast<ConcurrentStack*>(ctx);
    auto* n = reinterpret_cast<Node*>(arg);
    n->next = s->top_;
    s->top_ = n;
    ++s->size_;
    return 0;
  }

  static std::uint64_t pop_cs(void* ctx, std::uint64_t) {
    auto* s = static_cast<ConcurrentStack*>(ctx);
    if (s->top_ == nullptr) return kEmpty;
    Node* n = s->top_;
    s->top_ = n->next;
    --s->size_;
    return reinterpret_cast<std::uint64_t>(n);
  }

  Executor& ex_;
  Node* top_ = nullptr;
  std::size_t size_ = 0;
};

/// Sorted singly-linked list implementing a set of 64-bit keys, protected
/// by a global Executor; critical-section length grows with the list.
class SortedList {
 public:
  explicit SortedList(Executor& ex) : ex_(ex) {}
  ~SortedList() {
    Node* n = head_;
    while (n != nullptr) {
      Node* next = n->next;
      delete n;
      n = next;
    }
  }
  SortedList(const SortedList&) = delete;
  SortedList& operator=(const SortedList&) = delete;

  /// Returns true if inserted (false: already present).
  bool insert(std::uint64_t key) { return ex_.execute(&insert_cs, this, key) != 0; }
  /// Returns true if removed (false: not found).
  bool remove(std::uint64_t key) { return ex_.execute(&remove_cs, this, key) != 0; }
  /// Membership query.
  bool contains(std::uint64_t key) { return ex_.execute(&contains_cs, this, key) != 0; }

  std::size_t size_unlocked() const { return size_; }

 private:
  struct Node {
    std::uint64_t key;
    Node* next;
  };

  static std::uint64_t insert_cs(void* ctx, std::uint64_t key) {
    auto* l = static_cast<SortedList*>(ctx);
    Node** link = &l->head_;
    while (*link != nullptr && (*link)->key < key) link = &(*link)->next;
    if (*link != nullptr && (*link)->key == key) return 0;
    *link = new Node{key, *link};
    ++l->size_;
    return 1;
  }

  static std::uint64_t remove_cs(void* ctx, std::uint64_t key) {
    auto* l = static_cast<SortedList*>(ctx);
    Node** link = &l->head_;
    while (*link != nullptr && (*link)->key < key) link = &(*link)->next;
    if (*link == nullptr || (*link)->key != key) return 0;
    Node* victim = *link;
    *link = victim->next;
    delete victim;
    --l->size_;
    return 1;
  }

  static std::uint64_t contains_cs(void* ctx, std::uint64_t key) {
    auto* l = static_cast<SortedList*>(ctx);
    Node* n = l->head_;
    while (n != nullptr && n->key < key) n = n->next;
    return n != nullptr && n->key == key;
  }

  Executor& ex_;
  Node* head_ = nullptr;
  std::size_t size_ = 0;
};

/// Hash table: each bucket is a SortedList behind its own Executor
/// (the paper attaches a list and a lock to every bucket).
class HashTable {
 public:
  /// `make_lock` supplies one Executor per bucket; buckets must be a
  /// power of two.
  template <typename MakeLock>
  HashTable(std::size_t buckets, MakeLock&& make_lock) : mask_(buckets - 1) {
    ARMBAR_CHECK(buckets >= 1 && (buckets & (buckets - 1)) == 0);
    locks_.reserve(buckets);
    lists_.reserve(buckets);
    for (std::size_t b = 0; b < buckets; ++b) {
      locks_.push_back(make_lock(b));
      lists_.push_back(std::make_unique<SortedList>(*locks_.back()));
    }
  }

  bool insert(std::uint64_t key) { return list_of(key).insert(key); }
  bool remove(std::uint64_t key) { return list_of(key).remove(key); }
  bool contains(std::uint64_t key) { return list_of(key).contains(key); }

  std::size_t buckets() const { return mask_ + 1; }
  std::size_t size_unlocked() const {
    std::size_t total = 0;
    for (const auto& l : lists_) total += l->size_unlocked();
    return total;
  }

 private:
  SortedList& list_of(std::uint64_t key) {
    // Fibonacci hash spreads sequential keys across buckets.
    const std::uint64_t h = key * 0x9e3779b97f4a7c15ULL;
    return *lists_[(h >> 32) & mask_];
  }

  std::size_t mask_;
  std::vector<std::unique_ptr<Executor>> locks_;
  std::vector<std::unique_ptr<SortedList>> lists_;
};

}  // namespace armbar::ds
