#include "model/model.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <map>
#include <sstream>

#include "prof/prof.hpp"
#include "sim/isa.hpp"

namespace armbar::model {
namespace {

using sim::Instr;
using sim::Op;
using sim::Reg;

// ---------------------------------------------------------------------------
// Events and candidate thread executions
// ---------------------------------------------------------------------------

struct Event {
  enum Kind : std::uint8_t { kRead, kWrite, kFence };
  Kind kind = kRead;
  int thread = -1;       ///< -1 = initial-state write (external to all)
  std::uint32_t po = 0;  ///< index within the owning thread's event list
  Op op = Op::kNop;
  Addr addr = 0;
  std::uint64_t value = 0;
  bool acq = false;     ///< LDAR  (RCsc acquire, A)
  bool acq_pc = false;  ///< LDAPR (RCpc acquire, Q)
  bool rel = false;     ///< STLR  (release, L)
  // Dependency sources, as bitmasks over the owning thread's read ordinals.
  std::uint64_t addr_dep = 0;
  std::uint64_t data_dep = 0;
  std::uint64_t ctrl_dep = 0;
  int read_ord = -1;  ///< reads: ordinal among this thread's reads
};

constexpr bool is_full_fence(Op op) {
  return op == Op::kDmbFull || op == Op::kDsbFull;
}
constexpr bool is_st_fence(Op op) {
  return op == Op::kDmbSt || op == Op::kDsbSt;
}
constexpr bool is_ld_fence(Op op) {
  return op == Op::kDmbLd || op == Op::kDsbLd;
}

struct ThreadExec {
  std::vector<Event> events;
  std::array<std::uint64_t, sim::kNumRegs> regs{};
};

// ---------------------------------------------------------------------------
// Phase B: per-thread symbolic execution with a load-value oracle
// ---------------------------------------------------------------------------

/// A register value plus the set of thread-local reads it (syntactically)
/// depends on — the taint that becomes addr/data/ctrl dependencies.
struct RV {
  std::uint64_t v = 0;
  std::uint64_t dep = 0;
};

std::uint64_t alu(Op op, std::uint64_t a, std::uint64_t b) {
  switch (op) {
    case Op::kAdd: case Op::kAddImm: return a + b;
    case Op::kSub: case Op::kSubImm: return a - b;
    case Op::kAnd: case Op::kAndImm: return a & b;
    case Op::kOrr: case Op::kOrrImm: return a | b;
    case Op::kEor: case Op::kEorImm: return a ^ b;
    case Op::kLsl: case Op::kLslImm: return a << (b & 63);
    case Op::kLsr: case Op::kLsrImm: return a >> (b & 63);
    case Op::kMul: return a * b;
    default: return 0;
  }
}

struct PathState {
  std::uint32_t pc = 0;
  std::array<RV, sim::kNumRegs> regs{};
  int flags = 0;  ///< unsigned three-way compare, matching the simulator
  std::uint64_t flags_dep = 0;
  std::uint64_t ctrl = 0;  ///< reads any executed conditional branch saw
  std::vector<Event> events;
  std::uint32_t executed = 0;
  int nreads = 0;
};

class ThreadInterp {
 public:
  ThreadInterp(const sim::Program& prog,
               const std::map<Addr, std::set<std::uint64_t>>& dom,
               const std::map<Addr, std::uint64_t>& init,
               const ModelOptions& opts, OutcomeSet* status)
      : prog_(prog), dom_(dom), init_(init), opts_(opts), status_(status) {}

  std::vector<ThreadExec> run() {
    step(PathState{});
    return std::move(execs_);
  }

 private:
  std::uint64_t init_of(Addr a) const {
    auto it = init_.find(a);
    return it == init_.end() ? 0 : it->second;
  }

  /// Values a load of `a` may observe: the initial value plus everything any
  /// thread path can store there (Phase A fixpoint).
  std::vector<std::uint64_t> load_candidates(Addr a) const {
    std::vector<std::uint64_t> vals{init_of(a)};
    if (auto it = dom_.find(a); it != dom_.end())
      for (std::uint64_t v : it->second)
        if (v != vals.front()) vals.push_back(v);
    return vals;
  }

  RV rv(const PathState& st, Reg r) const {
    return r == sim::XZR ? RV{} : st.regs[r];
  }
  static void setreg(PathState& st, Reg r, RV v) {
    if (r != sim::XZR) st.regs[r] = v;
  }

  void finish(PathState&& st) {
    ThreadExec e;
    e.events = std::move(st.events);
    for (std::size_t i = 0; i < sim::kNumRegs; ++i) e.regs[i] = st.regs[i].v;
    // Distinct load-value choices can converge on identical behaviour
    // (e.g. both branch arms rejoining); dedupe to shrink the Phase C
    // product. The key is a byte-exact fixed-width field dump — every
    // event block has the same width and the register block has a fixed
    // size, so equal keys imply equal executions.
    std::string key;
    key.reserve(e.events.size() * 48 + sizeof(e.regs));
    for (const Event& ev : e.events) {
      const std::uint64_t fields[6] = {
          static_cast<std::uint64_t>(ev.kind) |
              (static_cast<std::uint64_t>(ev.op) << 8) |
              (static_cast<std::uint64_t>(
                   static_cast<std::uint32_t>(ev.read_ord))
               << 16),
          ev.addr, ev.value, ev.addr_dep, ev.data_dep, ev.ctrl_dep};
      key.append(reinterpret_cast<const char*>(fields), sizeof(fields));
    }
    key.append(reinterpret_cast<const char*>(e.regs.data()), sizeof(e.regs));
    if (seen_.insert(std::move(key)).second) execs_.push_back(std::move(e));
  }

  void step(PathState st) {
    while (true) {
      if (!status_->ok()) return;
      if (execs_.size() >= opts_.max_execs_per_thread) {
        status_->complete = false;
        return;
      }
      if (++st.executed > opts_.max_path_instructions) {
        status_->complete = false;  // unbounded loop under this load valuation
        return;
      }
      if (st.pc >= prog_.size()) {  // fell off the end: implicit halt
        finish(std::move(st));
        return;
      }
      const Instr& ins = prog_.at(st.pc);
      switch (ins.op) {
        case Op::kHalt:
          finish(std::move(st));
          return;
        case Op::kNop:
          ++st.pc;
          break;

        case Op::kMovImm:
          setreg(st, ins.rd, {static_cast<std::uint64_t>(ins.imm), 0});
          ++st.pc;
          break;
        case Op::kMov:
          setreg(st, ins.rd, rv(st, ins.rn));
          ++st.pc;
          break;
        case Op::kAdd: case Op::kSub: case Op::kAnd: case Op::kOrr:
        case Op::kEor: case Op::kLsl: case Op::kLsr: case Op::kMul: {
          const RV a = rv(st, ins.rn), b = rv(st, ins.rm);
          setreg(st, ins.rd, {alu(ins.op, a.v, b.v), a.dep | b.dep});
          ++st.pc;
          break;
        }
        case Op::kAddImm: case Op::kSubImm: case Op::kAndImm:
        case Op::kOrrImm: case Op::kEorImm: case Op::kLslImm:
        case Op::kLsrImm: {
          const RV a = rv(st, ins.rn);
          setreg(st, ins.rd,
                 {alu(ins.op, a.v, static_cast<std::uint64_t>(ins.imm)),
                  a.dep});
          ++st.pc;
          break;
        }

        case Op::kCmp: {
          const RV a = rv(st, ins.rn), b = rv(st, ins.rm);
          st.flags = a.v < b.v ? -1 : (a.v == b.v ? 0 : 1);
          st.flags_dep = a.dep | b.dep;
          ++st.pc;
          break;
        }
        case Op::kCmpImm: {
          const RV a = rv(st, ins.rn);
          const auto rhs = static_cast<std::uint64_t>(ins.imm);
          st.flags = a.v < rhs ? -1 : (a.v == rhs ? 0 : 1);
          st.flags_dep = a.dep;
          ++st.pc;
          break;
        }

        case Op::kB:
          st.pc = ins.target;
          break;
        case Op::kBeq: case Op::kBne: case Op::kBlt:
        case Op::kBle: case Op::kBgt: case Op::kBge: {
          bool taken = false;
          switch (ins.op) {
            case Op::kBeq: taken = st.flags == 0; break;
            case Op::kBne: taken = st.flags != 0; break;
            case Op::kBlt: taken = st.flags < 0; break;
            case Op::kBle: taken = st.flags <= 0; break;
            case Op::kBgt: taken = st.flags > 0; break;
            default: taken = st.flags >= 0; break;  // kBge
          }
          // A ctrl dependency exists from every read feeding the condition
          // to every po-later access, on both arms of the branch.
          st.ctrl |= st.flags_dep;
          st.pc = taken ? ins.target : st.pc + 1;
          break;
        }
        case Op::kCbz: case Op::kCbnz: {
          const RV a = rv(st, ins.rn);
          const bool taken = (ins.op == Op::kCbz) == (a.v == 0);
          st.ctrl |= a.dep;
          st.pc = taken ? ins.target : st.pc + 1;
          break;
        }

        case Op::kLdr: case Op::kLdrIdx: case Op::kLdar: case Op::kLdapr: {
          const RV base = rv(st, ins.rn);
          const RV off = ins.op == Op::kLdrIdx
                             ? rv(st, ins.rm)
                             : RV{static_cast<std::uint64_t>(ins.imm), 0};
          if (st.nreads >=
              static_cast<int>(std::min<std::uint32_t>(
                  opts_.max_reads_per_thread, 64))) {
            status_->complete = false;
            return;
          }
          Event e;
          e.kind = Event::kRead;
          e.op = ins.op;
          e.addr = base.v + off.v;
          e.acq = ins.op == Op::kLdar;
          e.acq_pc = ins.op == Op::kLdapr;
          e.addr_dep = base.dep | off.dep;
          e.ctrl_dep = st.ctrl;
          e.read_ord = st.nreads;
          ++st.pc;
          ++st.nreads;
          const auto vals = load_candidates(e.addr);
          for (std::size_t i = 0; i < vals.size(); ++i) {
            PathState next = (i + 1 == vals.size()) ? std::move(st) : st;
            Event ev = e;
            ev.value = vals[i];
            ev.po = static_cast<std::uint32_t>(next.events.size());
            next.events.push_back(ev);
            setreg(next, ins.rd, {vals[i], 1ULL << e.read_ord});
            step(std::move(next));
            if (!status_->ok()) return;
          }
          return;
        }

        case Op::kStr: case Op::kStrIdx: case Op::kStlr: {
          // The source register lives in the rd field (see Asm::str).
          const RV base = rv(st, ins.rn);
          const RV off = ins.op == Op::kStrIdx
                             ? rv(st, ins.rm)
                             : RV{static_cast<std::uint64_t>(ins.imm), 0};
          const RV data = rv(st, ins.rd);
          Event e;
          e.kind = Event::kWrite;
          e.op = ins.op;
          e.addr = base.v + off.v;
          e.value = data.v;
          e.rel = ins.op == Op::kStlr;
          e.addr_dep = base.dep | off.dep;
          e.data_dep = data.dep;
          e.ctrl_dep = st.ctrl;
          e.po = static_cast<std::uint32_t>(st.events.size());
          st.events.push_back(e);
          ++st.pc;
          break;
        }

        case Op::kDmbFull: case Op::kDmbSt: case Op::kDmbLd:
        case Op::kDsbFull: case Op::kDsbSt: case Op::kDsbLd:
        case Op::kIsb: {
          Event e;
          e.kind = Event::kFence;
          e.op = ins.op;
          e.ctrl_dep = st.ctrl;  // feeds the (ctrl);[ISB];po;[R] clause
          e.po = static_cast<std::uint32_t>(st.events.size());
          st.events.push_back(e);
          ++st.pc;
          break;
        }

        case Op::kWfe: case Op::kLdxr: case Op::kStxr: case Op::kSwp:
          status_->error =
              "unsupported op in reference model: " + sim::to_string(ins.op);
          return;
      }
    }
  }

  const sim::Program& prog_;
  const std::map<Addr, std::set<std::uint64_t>>& dom_;
  const std::map<Addr, std::uint64_t>& init_;
  const ModelOptions& opts_;
  OutcomeSet* status_;
  std::vector<ThreadExec> execs_;
  std::set<std::string> seen_;
};

// ---------------------------------------------------------------------------
// Phase C: combine thread executions, enumerate rf/co, check the axioms
// ---------------------------------------------------------------------------

/// The flattened event universe of one per-thread execution combination,
/// shared by both Phase C engines. Events keep their Phase-B thread/po
/// identity; the initial write of every touched address is prepended as a
/// virtual event on thread -1 (external to every real thread, co-first at
/// its address).
struct ComboEvents {
  std::vector<Event> ev;
  std::map<Addr, int> init_id;
  std::map<Addr, std::vector<int>> writes_by_addr;
  std::map<int, std::vector<int>> thread_events;
  std::vector<std::vector<int>> rdmap;
  std::vector<int> reads;

  ComboEvents(const std::vector<const ThreadExec*>& combo,
              const std::set<Addr>& addrs,
              const std::map<Addr, std::uint64_t>& init) {
    for (Addr a : addrs) {
      Event e;
      e.kind = Event::kWrite;
      e.thread = -1;
      e.addr = a;
      if (auto it = init.find(a); it != init.end()) e.value = it->second;
      init_id[a] = static_cast<int>(ev.size());
      ev.push_back(e);
    }
    rdmap.resize(combo.size());
    for (std::size_t t = 0; t < combo.size(); ++t) {
      for (const Event& src : combo[t]->events) {
        Event e = src;
        e.thread = static_cast<int>(t);
        const int id = static_cast<int>(ev.size());
        if (e.kind == Event::kRead) {
          if (rdmap[t].size() <= static_cast<std::size_t>(e.read_ord))
            rdmap[t].resize(e.read_ord + 1, -1);
          rdmap[t][e.read_ord] = id;
          reads.push_back(id);
        } else if (e.kind == Event::kWrite) {
          writes_by_addr[e.addr].push_back(id);
        }
        thread_events[t].push_back(id);
        ev.push_back(e);
      }
    }
  }

  template <typename Fn>
  void for_deps(int thread, std::uint64_t mask, Fn&& fn) const {
    while (mask != 0) {
      const int ord = __builtin_ctzll(mask);
      mask &= mask - 1;
      if (static_cast<std::size_t>(ord) < rdmap[thread].size() &&
          rdmap[thread][ord] >= 0)
        fn(rdmap[thread][ord]);
    }
  }

  /// Real writes at `a` (never includes the virtual init write). Null when
  /// there are none.
  const std::vector<int>* writes_at(Addr a) const {
    auto it = writes_by_addr.find(a);
    return it == writes_by_addr.end() ? nullptr : &it->second;
  }
};

/// dob/bob edges that do not depend on the rf/co choice. Shared verbatim by
/// both engines so the naive oracle and the POR engine see the same static
/// relation.
std::vector<std::pair<int, int>> build_static_edges(const ComboEvents& ce) {
  std::vector<std::pair<int, int>> out;
  auto add_edge = [&out](int from, int to) {
    if (from != to) out.emplace_back(from, to);
  };
  for (const auto& [t, tev] : ce.thread_events) {
    const int ti = t;

    // Direct dependency clauses: addr, data, ctrl;[W].
    for (int id : tev) {
      const Event& e = ce.ev[id];
      if (e.kind == Event::kFence) continue;
      ce.for_deps(ti, e.addr_dep, [&](int r) { add_edge(r, id); });
      if (e.kind == Event::kWrite) {
        ce.for_deps(ti, e.data_dep, [&](int r) { add_edge(r, id); });
        ce.for_deps(ti, e.ctrl_dep, [&](int r) { add_edge(r, id); });
      }
    }

    // Prefix-accumulating po scan for the remaining clauses.
    std::uint64_t addr_prefix = 0;  // addr;po;[W] and (addr;po);[ISB]
    std::uint64_t isb_srcs = 0;     // (ctrl|(addr;po));[ISB];po;[R]
    std::vector<int> all_before, rel_before;
    std::vector<int> any_srcs;  // ordered before every later access
    std::vector<int> st_srcs;   // ordered before every later write
    for (int id : tev) {
      const Event& e = ce.ev[id];
      if (e.kind == Event::kFence) {
        if (is_full_fence(e.op)) {
          any_srcs.insert(any_srcs.end(), all_before.begin(),
                          all_before.end());
        } else if (is_ld_fence(e.op)) {
          for (int b : all_before)
            if (ce.ev[b].kind == Event::kRead) any_srcs.push_back(b);
        } else if (is_st_fence(e.op)) {
          for (int b : all_before)
            if (ce.ev[b].kind == Event::kWrite) st_srcs.push_back(b);
        } else {  // ISB
          isb_srcs |= e.ctrl_dep | addr_prefix;
        }
        continue;
      }
      // Incoming barrier-ordered edges.
      for (int s : any_srcs) add_edge(s, id);
      if (e.kind == Event::kWrite)
        for (int s : st_srcs) add_edge(s, id);
      if (e.kind == Event::kRead)
        ce.for_deps(ti, isb_srcs, [&](int r) { add_edge(r, id); });
      // addr;po;[W]: reads feeding any earlier access's address order
      // before every later write.
      if (e.kind == Event::kWrite)
        ce.for_deps(ti, addr_prefix, [&](int r) { add_edge(r, id); });
      // po;[L] and [L];po;[A].
      if (e.kind == Event::kWrite && e.rel) {
        for (int b : all_before) add_edge(b, id);
        rel_before.push_back(id);
      }
      if (e.kind == Event::kRead && e.acq)
        for (int l : rel_before) add_edge(l, id);
      // [A|Q];po.
      if (e.kind == Event::kRead && (e.acq || e.acq_pc))
        any_srcs.push_back(id);
      addr_prefix |= e.addr_dep;
      all_before.push_back(id);
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Naive engine (ModelOptions::naive): full rf product x co permutations,
// per-candidate graph rebuild + DFS acyclicity. Kept as the oracle.
// ---------------------------------------------------------------------------

bool acyclic(std::size_t n, const std::vector<std::vector<int>>& adj) {
  // Iterative three-colour DFS.
  enum : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<std::uint8_t> color(n, kWhite);
  std::vector<std::pair<int, std::size_t>> stack;
  for (std::size_t root = 0; root < n; ++root) {
    if (color[root] != kWhite) continue;
    stack.emplace_back(static_cast<int>(root), 0);
    color[root] = kGrey;
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      if (next < adj[u].size()) {
        const int v = adj[u][next++];
        if (color[v] == kGrey) return false;
        if (color[v] == kWhite) {
          color[v] = kGrey;
          stack.emplace_back(v, 0);
        }
      } else {
        color[u] = kBlack;
        stack.pop_back();
      }
    }
  }
  return true;
}

class ComboChecker {
 public:
  ComboChecker(const ConcurrentProgram& p, const ModelOptions& opts,
               const std::vector<const ThreadExec*>& combo,
               const ComboEvents& ce, OutcomeSet* out)
      : p_(p), opts_(opts), combo_(combo), ce_(ce), out_(out) {}

  /// Enumerate every (rf, co) choice for this combo and record the outcomes
  /// of consistent candidates. Returns false when the candidate budget is
  /// exhausted.
  bool check() {
    static_ = build_static_edges(ce_);
    // rf candidates per read: writes at the same address carrying the same
    // value (the init write qualifying when the value matches). A read with
    // no candidate makes the whole combo infeasible.
    rf_cand_.resize(ce_.reads.size());
    for (std::size_t i = 0; i < ce_.reads.size(); ++i) {
      const Event& r = ce_.ev[ce_.reads[i]];
      auto& cand = rf_cand_[i];
      if (ce_.ev[ce_.init_id.at(r.addr)].value == r.value)
        cand.push_back(ce_.init_id.at(r.addr));
      if (const auto* ws = ce_.writes_at(r.addr))
        for (int w : *ws)
          if (ce_.ev[w].value == r.value) cand.push_back(w);
      if (cand.empty()) return true;  // infeasible, not over budget
    }
    rf_.assign(ce_.reads.size(), -1);
    return assign_rf(0);
  }

 private:
  bool assign_rf(std::size_t i) {
    if (i == ce_.reads.size()) return enumerate_co();
    for (int w : rf_cand_[i]) {
      rf_[i] = w;
      if (!assign_rf(i + 1)) return false;
    }
    return true;
  }

  bool enumerate_co() {
    // One permutation vector per address that has competing real writes;
    // the init write is always co-first.
    co_addrs_.clear();
    co_perm_.clear();
    for (const auto& [a, ws] : ce_.writes_by_addr) {
      co_addrs_.push_back(a);
      co_perm_.push_back(ws);  // start from Phase-B order, sorted below
      std::sort(co_perm_.back().begin(), co_perm_.back().end());
    }
    return perm_addr(0);
  }

  bool perm_addr(std::size_t k) {
    if (k == co_addrs_.size()) return check_candidate();
    auto& perm = co_perm_[k];
    std::sort(perm.begin(), perm.end());
    do {
      if (!perm_addr(k + 1)) return false;
    } while (std::next_permutation(perm.begin(), perm.end()));
    return true;
  }

  /// Axiom check for the now fully chosen (rf, co). Returns false when the
  /// global candidate budget is exhausted.
  bool check_candidate() {
    if (++out_->candidates > opts_.max_candidates) {
      out_->complete = false;
      return false;
    }
    const std::size_t n = ce_.ev.size();

    // co position of every write: (addr, index); init is position 0.
    std::vector<int> co_pos(n, -1);
    for (int id = 0; id < static_cast<int>(n); ++id)
      if (ce_.ev[id].thread == -1) co_pos[id] = 0;
    for (std::size_t k = 0; k < co_addrs_.size(); ++k)
      for (std::size_t i = 0; i < co_perm_[k].size(); ++i)
        co_pos[co_perm_[k][i]] = static_cast<int>(i) + 1;

    auto co_before = [&](int w1, int w2) {
      return ce_.ev[w1].addr == ce_.ev[w2].addr && co_pos[w1] < co_pos[w2];
    };

    // ---- internal: acyclic(po-loc ∪ rf ∪ co ∪ fr) --------------------
    std::vector<std::vector<int>> internal(n), external(n);
    for (const auto& [from, to] : static_) external[from].push_back(to);

    // po-loc chains per thread.
    for (const auto& [t, tev] : ce_.thread_events) {
      (void)t;
      std::map<Addr, int> last;
      for (int id : tev) {
        const Event& e = ce_.ev[id];
        if (e.kind == Event::kFence) continue;
        if (auto it = last.find(e.addr); it != last.end())
          internal[it->second].push_back(id);
        last[e.addr] = id;
      }
    }
    // co (full pairs, both graphs where external).
    std::vector<std::pair<int, int>> co_pairs;
    for (std::size_t k = 0; k < co_addrs_.size(); ++k) {
      const int init_w = ce_.init_id.at(co_addrs_[k]);
      const auto& perm = co_perm_[k];
      for (std::size_t i = 0; i < perm.size(); ++i) {
        co_pairs.emplace_back(init_w, perm[i]);
        for (std::size_t j = i + 1; j < perm.size(); ++j)
          co_pairs.emplace_back(perm[i], perm[j]);
      }
    }
    for (const auto& [w1, w2] : co_pairs) {
      internal[w1].push_back(w2);
      if (ce_.ev[w1].thread != ce_.ev[w2].thread) external[w1].push_back(w2);
    }
    // rf, fr; plus the rf/co-dependent dob and bob clauses.
    for (std::size_t i = 0; i < ce_.reads.size(); ++i) {
      const int r = ce_.reads[i];
      const int src = rf_[i];
      internal[src].push_back(r);
      if (ce_.ev[src].thread != ce_.ev[r].thread) {
        external[src].push_back(r);  // rfe ∈ obs
      } else {
        // (addr|data);rfi: reads feeding the source write's address or data
        // are ordered before the read that observes it.
        ce_.for_deps(ce_.ev[src].thread,
                     ce_.ev[src].addr_dep | ce_.ev[src].data_dep, [&](int d) {
                       if (d != r) external[d].push_back(r);
                     });
      }
      // fr = rf⁻¹;co.
      if (const auto* ws = ce_.writes_at(ce_.ev[r].addr))
        for (int w : *ws)
          if (w != src && co_before(src, w)) {
            internal[r].push_back(w);
            if (ce_.ev[r].thread != ce_.ev[w].thread)
              external[r].push_back(w);  // fre ∈ obs
          }
    }
    // (ctrl|data);coi and po;[L];coi.
    for (const auto& [w1, w2] : co_pairs) {
      if (ce_.ev[w1].thread < 0 || ce_.ev[w1].thread != ce_.ev[w2].thread)
        continue;
      ce_.for_deps(ce_.ev[w1].thread,
                   ce_.ev[w1].ctrl_dep | ce_.ev[w1].data_dep,
                   [&](int r) { external[r].push_back(w2); });
      if (ce_.ev[w1].rel)
        for (int b : ce_.thread_events.at(ce_.ev[w1].thread)) {
          if (b == w1) break;
          if (ce_.ev[b].kind != Event::kFence) external[b].push_back(w2);
        }
    }

    if (!acyclic(n, internal)) return true;   // sc-per-location violated
    if (!acyclic(n, external)) return true;   // ob cycle: forbidden
    ++out_->consistent;

    // ---- consistent: record the outcome ------------------------------
    Outcome o;
    o.reserve(p_.observe_regs.size() + p_.observe_mem.size());
    for (const auto& [t, reg] : p_.observe_regs)
      o.push_back(reg == sim::XZR ? 0 : combo_[t]->regs[reg]);
    for (Addr a : p_.observe_mem) {
      std::uint64_t final_v = ce_.ev[ce_.init_id.at(a)].value;
      int best = 0;
      if (const auto* ws = ce_.writes_at(a))
        for (int w : *ws)
          if (co_pos[w] >= best) {
            best = co_pos[w];
            final_v = ce_.ev[w].value;
          }
      o.push_back(final_v);
    }
    out_->allowed.insert(std::move(o));
    return true;
  }

  const ConcurrentProgram& p_;
  const ModelOptions& opts_;
  const std::vector<const ThreadExec*>& combo_;
  const ComboEvents& ce_;
  OutcomeSet* out_;

  std::vector<std::pair<int, int>> static_;
  std::vector<std::vector<int>> rf_cand_;
  std::vector<int> rf_;
  std::vector<Addr> co_addrs_;
  std::vector<std::vector<int>> co_perm_;
};

// ---------------------------------------------------------------------------
// POR engine (default): incremental DFS over rf choices and per-address
// coherence placements, with a memoized transitive closure of both
// ordered-before relations.
// ---------------------------------------------------------------------------

/// Dense incremental transitive closure over event ids: one bitset row per
/// event holding its reachable set. This is the memoized relation frontier —
/// instead of rebuilding a graph and running a DFS per candidate, each DFS
/// level copies its parent's closure and extends it edge-by-edge.
class Reach {
 public:
  void init(std::size_t n) {
    n_ = n;
    words_ = (n + 63) / 64;
    bits_.assign(n_ * words_, 0);
  }

  bool reach(int u, int v) const {
    return (bits_[static_cast<std::size_t>(u) * words_ + (v >> 6)] >>
            (v & 63)) &
           1;
  }

  /// Add edge u->v and re-close. Returns false iff the edge closes a cycle
  /// (including u == v); the closure must then be discarded. Acyclicity is
  /// monotone-decreasing under edge addition, so a false here condemns every
  /// extension of the current choice prefix — that is the pruning theorem
  /// the whole engine rests on (DESIGN.md §12).
  bool add(int u, int v) {
    if (u == v || reach(v, u)) return false;
    if (reach(u, v)) return true;  // already implied, closure unchanged
    const std::uint64_t* src = &bits_[static_cast<std::size_t>(v) * words_];
    for (std::size_t w = 0; w < n_; ++w) {
      if (static_cast<int>(w) != u && !reach(static_cast<int>(w), u))
        continue;
      std::uint64_t* dst = &bits_[w * words_];
      for (std::size_t k = 0; k < words_; ++k) dst[k] |= src[k];
      dst[v >> 6] |= 1ULL << (v & 63);
    }
    return true;
  }

 private:
  std::size_t n_ = 0, words_ = 0;
  std::vector<std::uint64_t> bits_;
};

class PorChecker {
 public:
  PorChecker(const ConcurrentProgram& p, const ModelOptions& opts,
             const std::vector<const ThreadExec*>& combo,
             const ComboEvents& ce, OutcomeSet* out)
      : p_(p), opts_(opts), combo_(combo), ce_(ce), out_(out) {}

  /// Search every (rf, co) choice for this combo, recording the outcome of
  /// each consistent leaf. Returns false when the candidate budget is
  /// exhausted.
  bool check() {
    const std::size_t n = ce_.ev.size();
    State base;
    base.ic.init(n);
    base.ec.init(n);

    // Choice-independent relation: static dob/bob edges seed the external
    // closure; po-loc chains and the init write's co edges (init is
    // co-first at its address, external to every thread) are static too.
    // None of these can cycle — po is a total per-thread order and init
    // writes have no incoming edges — but prune defensively if they do.
    for (const auto& [from, to] : build_static_edges(ce_))
      if (!base.ec.add(from, to)) return true;
    for (const auto& [t, tev] : ce_.thread_events) {
      (void)t;
      std::map<Addr, int> last;
      for (int id : tev) {
        const Event& e = ce_.ev[id];
        if (e.kind == Event::kFence) continue;
        if (auto it = last.find(e.addr); it != last.end())
          if (!base.ic.add(it->second, id)) return true;
        last[e.addr] = id;
      }
    }
    for (const auto& [a, ws] : ce_.writes_by_addr) {
      const int iw = ce_.init_id.at(a);
      for (int w : ws)
        if (!base.ic.add(iw, w) || !base.ec.add(iw, w)) return true;
    }

    // rf candidates, with the early-infeasibility cut: beyond the value
    // match the naive engine uses, a write the read already reaches in the
    // relation its rf edge would land in can never be the source without
    // closing a cycle — drop it before the search starts.
    rf_cand_.resize(ce_.reads.size());
    for (std::size_t i = 0; i < ce_.reads.size(); ++i) {
      const int r = ce_.reads[i];
      const Event& re = ce_.ev[r];
      auto& cand = rf_cand_[i];
      cand.clear();
      auto feasible = [&](int w) {
        if (ce_.ev[w].value != re.value) return false;
        if (base.ic.reach(r, w)) return false;
        if (ce_.ev[w].thread != re.thread && base.ec.reach(r, w))
          return false;
        return true;
      };
      const int iw = ce_.init_id.at(re.addr);
      if (feasible(iw)) cand.push_back(iw);
      if (const auto* ws = ce_.writes_at(re.addr))
        for (int w : *ws)
          if (feasible(w)) cand.push_back(w);
      if (cand.empty()) return true;  // combo infeasible, not over budget
    }

    // Coherence groups: per-address write sets whose total order the co
    // phase decides. The per-group placement mask is 32 bits wide; more
    // competing writes than that is far beyond any budget anyway.
    groups_.clear();
    std::size_t co_slots = 0;
    for (const auto& [a, ws] : ce_.writes_by_addr) {
      if (ws.size() > 32) {
        out_->complete = false;
        return true;
      }
      Group g;
      g.addr = a;
      g.ws = ws;
      std::sort(g.ws.begin(), g.ws.end());
      co_slots += g.ws.size();
      groups_.push_back(std::move(g));
    }
    group_last_.assign(groups_.size(), -1);

    stack_.resize(ce_.reads.size() + co_slots + 2);
    stack_[0] = std::move(base);
    rf_.assign(ce_.reads.size(), -1);
    return assign_rf(0, 0);
  }

 private:
  struct State {
    Reach ic;  ///< internal: po-loc ∪ rf ∪ co ∪ fr
    Reach ec;  ///< external: obs ∪ dob ∪ bob
  };
  struct Group {
    Addr addr = 0;
    std::vector<int> ws;
  };

  bool charge() {
    if (++out_->candidates > opts_.max_candidates) {
      out_->complete = false;
      return false;
    }
    return true;
  }

  bool assign_rf(std::size_t i, std::size_t depth) {
    if (i == ce_.reads.size()) return place_groups(0, depth);
    const int r = ce_.reads[i];
    for (int w : rf_cand_[i]) {
      State& cur = stack_[depth];
      // Sleep-set-style skip: if the reverse direction is already forced by
      // earlier choices, the rf edge closes a cycle — prune the entire
      // subtree without even copying the closure.
      if (cur.ic.reach(r, w)) continue;
      if (ce_.ev[w].thread != ce_.ev[r].thread && cur.ec.reach(r, w))
        continue;
      if (!charge()) return false;
      State& nxt = stack_[depth + 1];
      nxt = cur;
      if (!add_rf(r, w, nxt)) continue;
      rf_[i] = w;
      if (!assign_rf(i + 1, depth + 1)) return false;
    }
    return true;
  }

  /// Edges forced by choosing rf source `w` for read `r` — exactly the
  /// per-candidate edges the naive engine derives from rf: the rf edge
  /// itself (rfe in external when cross-thread, (addr|data);rfi otherwise)
  /// plus, for an init-write source, the fr edges to every real write at
  /// the address (init is co-first, so they are known before co is chosen).
  bool add_rf(int r, int w, State& st) {
    if (!st.ic.add(w, r)) return false;
    const Event& we = ce_.ev[w];
    const Event& re = ce_.ev[r];
    if (we.thread != re.thread) {
      if (!st.ec.add(w, r)) return false;  // rfe ∈ obs
    } else {
      bool ok = true;
      ce_.for_deps(we.thread, we.addr_dep | we.data_dep, [&](int d) {
        if (ok && d != r) ok = st.ec.add(d, r);
      });
      if (!ok) return false;
    }
    if (we.thread == -1) {
      if (const auto* ws = ce_.writes_at(re.addr))
        for (int w2 : *ws) {
          if (!st.ic.add(r, w2)) return false;
          if (ce_.ev[w2].thread != re.thread && !st.ec.add(r, w2))
            return false;
        }
    }
    return true;
  }

  bool place_groups(std::size_t g, std::size_t depth) {
    if (g == groups_.size()) return record_outcome();
    const std::size_t sz = groups_[g].ws.size();
    const std::uint32_t full =
        sz >= 32 ? 0xffffffffu : ((1u << sz) - 1u);
    return place_co(g, full, depth);
  }

  /// Choose the co-next write of group `g` among the writes still in
  /// `mask`. Placing `w` decides the pairs (w, u) for every other remaining
  /// u — each ordered pair at the address is decided exactly once across
  /// the placement sequence, mirroring the naive engine's full pair list.
  bool place_co(std::size_t g, std::uint32_t mask, std::size_t depth) {
    const auto& ws = groups_[g].ws;
    if ((mask & (mask - 1)) == 0) {  // at most one left: it is co-last
      group_last_[g] = mask ? ws[__builtin_ctz(mask)] : -1;
      return place_groups(g + 1, depth);
    }
    for (std::uint32_t bits = mask; bits != 0; bits &= bits - 1) {
      const int idx = __builtin_ctz(bits);
      const int w1 = ws[idx];
      if (!charge()) return false;
      State& cur = stack_[depth];
      State& nxt = stack_[depth + 1];
      nxt = cur;
      bool ok = true;
      for (std::uint32_t rest = mask & ~(1u << idx); ok && rest != 0;
           rest &= rest - 1)
        ok = add_co_pair(w1, ws[__builtin_ctz(rest)], nxt);
      if (ok && !place_co(g, mask & ~(1u << idx), depth + 1)) return false;
    }
    return true;
  }

  /// Edges forced by deciding co(w1, w2) — exactly the naive engine's
  /// per-pair edges: the co edge (coe in external when cross-thread, the
  /// (ctrl|data);coi and po;[L];coi clauses otherwise) plus fr edges from
  /// every read that takes its value from w1.
  bool add_co_pair(int w1, int w2, State& st) {
    if (!st.ic.add(w1, w2)) return false;
    const Event& e1 = ce_.ev[w1];
    const Event& e2 = ce_.ev[w2];
    if (e1.thread != e2.thread) {
      if (!st.ec.add(w1, w2)) return false;  // coe ∈ obs
    } else {
      bool ok = true;
      ce_.for_deps(e1.thread, e1.ctrl_dep | e1.data_dep,
                   [&](int r) { ok = ok && st.ec.add(r, w2); });
      if (!ok) return false;
      if (e1.rel)
        for (int b : ce_.thread_events.at(e1.thread)) {
          if (b == w1) break;
          if (ce_.ev[b].kind != Event::kFence && !st.ec.add(b, w2))
            return false;
        }
    }
    // fr = rf⁻¹;co. All rf choices precede the co phase, so rf_ is final.
    for (std::size_t i = 0; i < ce_.reads.size(); ++i) {
      if (rf_[i] != w1) continue;
      const int r = ce_.reads[i];
      if (!st.ic.add(r, w2)) return false;
      if (ce_.ev[r].thread != e2.thread && !st.ec.add(r, w2)) return false;
    }
    return true;
  }

  /// A leaf: every rf chosen, every group totally ordered, no cycle ever
  /// formed — this (rf, co) candidate is consistent by construction, no
  /// final check needed.
  bool record_outcome() {
    ++out_->consistent;
    Outcome o;
    o.reserve(p_.observe_regs.size() + p_.observe_mem.size());
    for (const auto& [t, reg] : p_.observe_regs)
      o.push_back(reg == sim::XZR ? 0 : combo_[t]->regs[reg]);
    for (Addr a : p_.observe_mem) {
      std::uint64_t v = ce_.ev[ce_.init_id.at(a)].value;
      for (std::size_t g = 0; g < groups_.size(); ++g)
        if (groups_[g].addr == a && group_last_[g] >= 0)
          v = ce_.ev[group_last_[g]].value;
      o.push_back(v);
    }
    out_->allowed.insert(std::move(o));
    return true;
  }

  const ConcurrentProgram& p_;
  const ModelOptions& opts_;
  const std::vector<const ThreadExec*>& combo_;
  const ComboEvents& ce_;
  OutcomeSet* out_;

  std::vector<std::vector<int>> rf_cand_;
  std::vector<int> rf_;
  std::vector<Group> groups_;
  std::vector<int> group_last_;
  /// One closure pair per DFS depth, reused across siblings so steady-state
  /// search does no allocation — copies land in already-sized buffers.
  std::vector<State> stack_;
};

}  // namespace

OutcomeSet enumerate_outcomes(const ConcurrentProgram& p,
                              const ModelOptions& opts) {
  ARMBAR_PROF_SCOPE(kModelEnumerate);
  OutcomeSet out;
  // Candidate count lands in the profiler on every exit path (like the
  // enum_ns stamp, which also stays host-only and out of all digests).
  struct CandidateCount {
    const OutcomeSet& o;
    ~CandidateCount() { ARMBAR_PROF_COUNT(kModelExecutions, o.candidates); }
  } candidate_count{out};
  if (p.threads.empty() || p.threads.size() > 8) {
    out.error = "reference model supports 1..8 threads";
    return out;
  }
  for (const auto& [t, reg] : p.observe_regs) {
    (void)reg;
    if (t >= p.threads.size()) {
      out.error = "observe_regs names thread " + std::to_string(t) +
                  " but the program has " + std::to_string(p.threads.size());
      return out;
    }
  }
  std::map<Addr, std::uint64_t> init;
  for (const auto& [a, v] : p.init) init[a] = v;

  // Phase A: per-address value-domain fixpoint. The domain only ever grows,
  // so this terminates; the round cap guards pathological feedback loops.
  std::map<Addr, std::set<std::uint64_t>> dom;
  std::vector<std::vector<ThreadExec>> execs;
  for (int round = 0;; ++round) {
    execs.clear();
    for (const sim::Program& prog : p.threads) {
      ThreadInterp interp(prog, dom, init, opts, &out);
      execs.push_back(interp.run());
      if (!out.ok()) return out;
    }
    bool grew = false;
    for (const auto& texecs : execs)
      for (const ThreadExec& ex : texecs)
        for (const Event& e : ex.events)
          if (e.kind == Event::kWrite && dom[e.addr].insert(e.value).second)
            grew = true;
    for (const auto& [a, vs] : dom) {
      (void)a;
      if (vs.size() > opts.max_value_domain) {
        out.complete = false;
        return out;
      }
    }
    if (!grew) break;
    if (round >= 16) {
      out.complete = false;
      return out;
    }
  }

  // Every address any event touches gets a virtual initial write.
  std::set<Addr> addrs;
  for (const auto& [a, v] : p.init) {
    (void)v;
    addrs.insert(a);
  }
  for (Addr a : p.observe_mem) addrs.insert(a);
  for (const auto& texecs : execs)
    for (const ThreadExec& ex : texecs)
      for (const Event& e : ex.events)
        if (e.kind != Event::kFence) addrs.insert(e.addr);

  // Phase C: odometer over one candidate execution per thread; each combo
  // goes to the selected engine. enum_ns covers the whole phase on every
  // exit path.
  const auto enum_start = std::chrono::steady_clock::now();
  const auto stamp = [&] {
    out.enum_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - enum_start)
            .count());
  };
  const std::size_t T = execs.size();
  for (const auto& texecs : execs)
    if (texecs.empty()) return out;  // no completed path (complete=false set)
  std::vector<std::size_t> pick(T, 0);
  std::vector<const ThreadExec*> combo(T);
  for (;;) {
    for (std::size_t t = 0; t < T; ++t) combo[t] = &execs[t][pick[t]];
    ++out.combos;
    ComboEvents ce(combo, addrs, init);
    bool in_budget;
    if (opts.naive) {
      ComboChecker checker(p, opts, combo, ce, &out);
      in_budget = checker.check();
    } else {
      PorChecker checker(p, opts, combo, ce, &out);
      in_budget = checker.check();
    }
    if (!in_budget) {
      stamp();
      return out;  // budget exhausted
    }
    std::size_t t = 0;
    for (; t < T; ++t) {
      if (++pick[t] < execs[t].size()) break;
      pick[t] = 0;
    }
    if (t == T) break;
  }
  stamp();
  return out;
}

EquivalenceVerdict compare_outcome_sets(const OutcomeSet& a,
                                        const OutcomeSet& b) {
  EquivalenceVerdict v;
  if (!a.ok() || !b.ok()) {
    v.detail = "enumeration error: " + (a.ok() ? b.error : a.error);
    return v;
  }
  if (!a.complete || !b.complete) {
    v.detail = "enumeration incomplete (budget cap hit): allowed sets are "
               "lower bounds and cannot witness equivalence";
    return v;
  }
  v.comparable = true;
  for (const Outcome& o : a.allowed)
    if (b.allowed.count(o) == 0) {
      v.detail = "only in A: " + to_string(o);
      return v;
    }
  for (const Outcome& o : b.allowed)
    if (a.allowed.count(o) == 0) {
      v.detail = "only in B: " + to_string(o);
      return v;
    }
  v.equal = true;
  return v;
}

std::string to_string(const Outcome& o) {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < o.size(); ++i)
    os << (i ? "," : "") << o[i];
  os << ')';
  return os.str();
}

std::string to_string(const OutcomeSet& s) {
  std::ostringstream os;
  if (!s.ok()) return "error: " + s.error;
  os << '{';
  bool first = true;
  for (const Outcome& o : s.allowed) {
    os << (first ? "" : " ") << to_string(o);
    first = false;
  }
  os << '}';
  if (!s.complete) os << " (incomplete)";
  return os.str();
}

}  // namespace armbar::model
