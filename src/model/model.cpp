#include "model/model.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <sstream>

#include "sim/isa.hpp"

namespace armbar::model {
namespace {

using sim::Instr;
using sim::Op;
using sim::Reg;

// ---------------------------------------------------------------------------
// Events and candidate thread executions
// ---------------------------------------------------------------------------

struct Event {
  enum Kind : std::uint8_t { kRead, kWrite, kFence };
  Kind kind = kRead;
  int thread = -1;       ///< -1 = initial-state write (external to all)
  std::uint32_t po = 0;  ///< index within the owning thread's event list
  Op op = Op::kNop;
  Addr addr = 0;
  std::uint64_t value = 0;
  bool acq = false;     ///< LDAR  (RCsc acquire, A)
  bool acq_pc = false;  ///< LDAPR (RCpc acquire, Q)
  bool rel = false;     ///< STLR  (release, L)
  // Dependency sources, as bitmasks over the owning thread's read ordinals.
  std::uint64_t addr_dep = 0;
  std::uint64_t data_dep = 0;
  std::uint64_t ctrl_dep = 0;
  int read_ord = -1;  ///< reads: ordinal among this thread's reads
};

constexpr bool is_full_fence(Op op) {
  return op == Op::kDmbFull || op == Op::kDsbFull;
}
constexpr bool is_st_fence(Op op) {
  return op == Op::kDmbSt || op == Op::kDsbSt;
}
constexpr bool is_ld_fence(Op op) {
  return op == Op::kDmbLd || op == Op::kDsbLd;
}

struct ThreadExec {
  std::vector<Event> events;
  std::array<std::uint64_t, sim::kNumRegs> regs{};
};

// ---------------------------------------------------------------------------
// Phase B: per-thread symbolic execution with a load-value oracle
// ---------------------------------------------------------------------------

/// A register value plus the set of thread-local reads it (syntactically)
/// depends on — the taint that becomes addr/data/ctrl dependencies.
struct RV {
  std::uint64_t v = 0;
  std::uint64_t dep = 0;
};

std::uint64_t alu(Op op, std::uint64_t a, std::uint64_t b) {
  switch (op) {
    case Op::kAdd: case Op::kAddImm: return a + b;
    case Op::kSub: case Op::kSubImm: return a - b;
    case Op::kAnd: case Op::kAndImm: return a & b;
    case Op::kOrr: case Op::kOrrImm: return a | b;
    case Op::kEor: case Op::kEorImm: return a ^ b;
    case Op::kLsl: case Op::kLslImm: return a << (b & 63);
    case Op::kLsr: case Op::kLsrImm: return a >> (b & 63);
    case Op::kMul: return a * b;
    default: return 0;
  }
}

struct PathState {
  std::uint32_t pc = 0;
  std::array<RV, sim::kNumRegs> regs{};
  int flags = 0;  ///< unsigned three-way compare, matching the simulator
  std::uint64_t flags_dep = 0;
  std::uint64_t ctrl = 0;  ///< reads any executed conditional branch saw
  std::vector<Event> events;
  std::uint32_t executed = 0;
  int nreads = 0;
};

class ThreadInterp {
 public:
  ThreadInterp(const sim::Program& prog,
               const std::map<Addr, std::set<std::uint64_t>>& dom,
               const std::map<Addr, std::uint64_t>& init,
               const ModelOptions& opts, OutcomeSet* status)
      : prog_(prog), dom_(dom), init_(init), opts_(opts), status_(status) {}

  std::vector<ThreadExec> run() {
    step(PathState{});
    return std::move(execs_);
  }

 private:
  std::uint64_t init_of(Addr a) const {
    auto it = init_.find(a);
    return it == init_.end() ? 0 : it->second;
  }

  /// Values a load of `a` may observe: the initial value plus everything any
  /// thread path can store there (Phase A fixpoint).
  std::vector<std::uint64_t> load_candidates(Addr a) const {
    std::vector<std::uint64_t> vals{init_of(a)};
    if (auto it = dom_.find(a); it != dom_.end())
      for (std::uint64_t v : it->second)
        if (v != vals.front()) vals.push_back(v);
    return vals;
  }

  RV rv(const PathState& st, Reg r) const {
    return r == sim::XZR ? RV{} : st.regs[r];
  }
  static void setreg(PathState& st, Reg r, RV v) {
    if (r != sim::XZR) st.regs[r] = v;
  }

  void finish(PathState&& st) {
    ThreadExec e;
    e.events = std::move(st.events);
    for (std::size_t i = 0; i < sim::kNumRegs; ++i) e.regs[i] = st.regs[i].v;
    // Distinct load-value choices can converge on identical behaviour
    // (e.g. both branch arms rejoining); dedupe to shrink the Phase C
    // product.
    std::ostringstream key;
    for (const Event& ev : e.events)
      key << static_cast<int>(ev.kind) << ',' << static_cast<int>(ev.op) << ','
          << ev.addr << ',' << ev.value << ',' << ev.addr_dep << ','
          << ev.data_dep << ',' << ev.ctrl_dep << ',' << ev.read_ord << ';';
    key << '|';
    for (std::uint64_t r : e.regs) key << r << ',';
    if (seen_.insert(key.str()).second) execs_.push_back(std::move(e));
  }

  void step(PathState st) {
    while (true) {
      if (!status_->ok()) return;
      if (execs_.size() >= opts_.max_execs_per_thread) {
        status_->complete = false;
        return;
      }
      if (++st.executed > opts_.max_path_instructions) {
        status_->complete = false;  // unbounded loop under this load valuation
        return;
      }
      if (st.pc >= prog_.size()) {  // fell off the end: implicit halt
        finish(std::move(st));
        return;
      }
      const Instr& ins = prog_.at(st.pc);
      switch (ins.op) {
        case Op::kHalt:
          finish(std::move(st));
          return;
        case Op::kNop:
          ++st.pc;
          break;

        case Op::kMovImm:
          setreg(st, ins.rd, {static_cast<std::uint64_t>(ins.imm), 0});
          ++st.pc;
          break;
        case Op::kMov:
          setreg(st, ins.rd, rv(st, ins.rn));
          ++st.pc;
          break;
        case Op::kAdd: case Op::kSub: case Op::kAnd: case Op::kOrr:
        case Op::kEor: case Op::kLsl: case Op::kLsr: case Op::kMul: {
          const RV a = rv(st, ins.rn), b = rv(st, ins.rm);
          setreg(st, ins.rd, {alu(ins.op, a.v, b.v), a.dep | b.dep});
          ++st.pc;
          break;
        }
        case Op::kAddImm: case Op::kSubImm: case Op::kAndImm:
        case Op::kOrrImm: case Op::kEorImm: case Op::kLslImm:
        case Op::kLsrImm: {
          const RV a = rv(st, ins.rn);
          setreg(st, ins.rd,
                 {alu(ins.op, a.v, static_cast<std::uint64_t>(ins.imm)),
                  a.dep});
          ++st.pc;
          break;
        }

        case Op::kCmp: {
          const RV a = rv(st, ins.rn), b = rv(st, ins.rm);
          st.flags = a.v < b.v ? -1 : (a.v == b.v ? 0 : 1);
          st.flags_dep = a.dep | b.dep;
          ++st.pc;
          break;
        }
        case Op::kCmpImm: {
          const RV a = rv(st, ins.rn);
          const auto rhs = static_cast<std::uint64_t>(ins.imm);
          st.flags = a.v < rhs ? -1 : (a.v == rhs ? 0 : 1);
          st.flags_dep = a.dep;
          ++st.pc;
          break;
        }

        case Op::kB:
          st.pc = ins.target;
          break;
        case Op::kBeq: case Op::kBne: case Op::kBlt:
        case Op::kBle: case Op::kBgt: case Op::kBge: {
          bool taken = false;
          switch (ins.op) {
            case Op::kBeq: taken = st.flags == 0; break;
            case Op::kBne: taken = st.flags != 0; break;
            case Op::kBlt: taken = st.flags < 0; break;
            case Op::kBle: taken = st.flags <= 0; break;
            case Op::kBgt: taken = st.flags > 0; break;
            default: taken = st.flags >= 0; break;  // kBge
          }
          // A ctrl dependency exists from every read feeding the condition
          // to every po-later access, on both arms of the branch.
          st.ctrl |= st.flags_dep;
          st.pc = taken ? ins.target : st.pc + 1;
          break;
        }
        case Op::kCbz: case Op::kCbnz: {
          const RV a = rv(st, ins.rn);
          const bool taken = (ins.op == Op::kCbz) == (a.v == 0);
          st.ctrl |= a.dep;
          st.pc = taken ? ins.target : st.pc + 1;
          break;
        }

        case Op::kLdr: case Op::kLdrIdx: case Op::kLdar: case Op::kLdapr: {
          const RV base = rv(st, ins.rn);
          const RV off = ins.op == Op::kLdrIdx
                             ? rv(st, ins.rm)
                             : RV{static_cast<std::uint64_t>(ins.imm), 0};
          if (st.nreads >=
              static_cast<int>(std::min<std::uint32_t>(
                  opts_.max_reads_per_thread, 64))) {
            status_->complete = false;
            return;
          }
          Event e;
          e.kind = Event::kRead;
          e.op = ins.op;
          e.addr = base.v + off.v;
          e.acq = ins.op == Op::kLdar;
          e.acq_pc = ins.op == Op::kLdapr;
          e.addr_dep = base.dep | off.dep;
          e.ctrl_dep = st.ctrl;
          e.read_ord = st.nreads;
          ++st.pc;
          ++st.nreads;
          const auto vals = load_candidates(e.addr);
          for (std::size_t i = 0; i < vals.size(); ++i) {
            PathState next = (i + 1 == vals.size()) ? std::move(st) : st;
            Event ev = e;
            ev.value = vals[i];
            ev.po = static_cast<std::uint32_t>(next.events.size());
            next.events.push_back(ev);
            setreg(next, ins.rd, {vals[i], 1ULL << e.read_ord});
            step(std::move(next));
            if (!status_->ok()) return;
          }
          return;
        }

        case Op::kStr: case Op::kStrIdx: case Op::kStlr: {
          // The source register lives in the rd field (see Asm::str).
          const RV base = rv(st, ins.rn);
          const RV off = ins.op == Op::kStrIdx
                             ? rv(st, ins.rm)
                             : RV{static_cast<std::uint64_t>(ins.imm), 0};
          const RV data = rv(st, ins.rd);
          Event e;
          e.kind = Event::kWrite;
          e.op = ins.op;
          e.addr = base.v + off.v;
          e.value = data.v;
          e.rel = ins.op == Op::kStlr;
          e.addr_dep = base.dep | off.dep;
          e.data_dep = data.dep;
          e.ctrl_dep = st.ctrl;
          e.po = static_cast<std::uint32_t>(st.events.size());
          st.events.push_back(e);
          ++st.pc;
          break;
        }

        case Op::kDmbFull: case Op::kDmbSt: case Op::kDmbLd:
        case Op::kDsbFull: case Op::kDsbSt: case Op::kDsbLd:
        case Op::kIsb: {
          Event e;
          e.kind = Event::kFence;
          e.op = ins.op;
          e.ctrl_dep = st.ctrl;  // feeds the (ctrl);[ISB];po;[R] clause
          e.po = static_cast<std::uint32_t>(st.events.size());
          st.events.push_back(e);
          ++st.pc;
          break;
        }

        case Op::kWfe: case Op::kLdxr: case Op::kStxr: case Op::kSwp:
          status_->error =
              "unsupported op in reference model: " + sim::to_string(ins.op);
          return;
      }
    }
  }

  const sim::Program& prog_;
  const std::map<Addr, std::set<std::uint64_t>>& dom_;
  const std::map<Addr, std::uint64_t>& init_;
  const ModelOptions& opts_;
  OutcomeSet* status_;
  std::vector<ThreadExec> execs_;
  std::set<std::string> seen_;
};

// ---------------------------------------------------------------------------
// Phase C: combine thread executions, enumerate rf/co, check the axioms
// ---------------------------------------------------------------------------

bool acyclic(std::size_t n, const std::vector<std::vector<int>>& adj) {
  // Iterative three-colour DFS.
  enum : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<std::uint8_t> color(n, kWhite);
  std::vector<std::pair<int, std::size_t>> stack;
  for (std::size_t root = 0; root < n; ++root) {
    if (color[root] != kWhite) continue;
    stack.emplace_back(static_cast<int>(root), 0);
    color[root] = kGrey;
    while (!stack.empty()) {
      auto& [u, next] = stack.back();
      if (next < adj[u].size()) {
        const int v = adj[u][next++];
        if (color[v] == kGrey) return false;
        if (color[v] == kWhite) {
          color[v] = kGrey;
          stack.emplace_back(v, 0);
        }
      } else {
        color[u] = kBlack;
        stack.pop_back();
      }
    }
  }
  return true;
}

/// One candidate execution being checked: the flattened event list plus the
/// relation machinery. Events keep their Phase-B thread/po identity; the
/// initial write of every touched address is prepended as a virtual event on
/// thread -1 (external to every real thread, co-first at its address).
class ComboChecker {
 public:
  ComboChecker(const ConcurrentProgram& p, const ModelOptions& opts,
               const std::vector<const ThreadExec*>& combo,
               const std::set<Addr>& addrs,
               const std::map<Addr, std::uint64_t>& init, OutcomeSet* out)
      : p_(p), opts_(opts), combo_(combo), out_(out) {
    for (Addr a : addrs) {
      Event e;
      e.kind = Event::kWrite;
      e.thread = -1;
      e.addr = a;
      if (auto it = init.find(a); it != init.end()) e.value = it->second;
      init_id_[a] = static_cast<int>(ev_.size());
      ev_.push_back(e);
    }
    rdmap_.resize(combo.size());
    for (std::size_t t = 0; t < combo.size(); ++t) {
      for (const Event& src : combo[t]->events) {
        Event e = src;
        e.thread = static_cast<int>(t);
        const int id = static_cast<int>(ev_.size());
        if (e.kind == Event::kRead) {
          if (rdmap_[t].size() <= static_cast<std::size_t>(e.read_ord))
            rdmap_[t].resize(e.read_ord + 1, -1);
          rdmap_[t][e.read_ord] = id;
          reads_.push_back(id);
        } else if (e.kind == Event::kWrite) {
          writes_by_addr_[e.addr].push_back(id);
        }
        thread_events_[t].push_back(id);
        ev_.push_back(e);
      }
    }
  }

  /// Enumerate every (rf, co) choice for this combo and record the outcomes
  /// of consistent candidates. Returns false when the candidate budget is
  /// exhausted.
  bool check() {
    build_static_edges();
    // rf candidates per read: writes at the same address carrying the same
    // value (the init write qualifying when the value matches). A read with
    // no candidate makes the whole combo infeasible.
    rf_cand_.resize(reads_.size());
    for (std::size_t i = 0; i < reads_.size(); ++i) {
      const Event& r = ev_[reads_[i]];
      auto& cand = rf_cand_[i];
      if (ev_[init_id_[r.addr]].value == r.value)
        cand.push_back(init_id_[r.addr]);
      if (auto it = writes_by_addr_.find(r.addr);
          it != writes_by_addr_.end())
        for (int w : it->second)
          if (ev_[w].value == r.value) cand.push_back(w);
      if (cand.empty()) return true;  // infeasible, not over budget
    }
    rf_.assign(reads_.size(), -1);
    return assign_rf(0);
  }

 private:
  void add_edge(std::vector<std::pair<int, int>>& edges, int from, int to) {
    if (from != to) edges.emplace_back(from, to);
  }

  template <typename Fn>
  void for_deps(int thread, std::uint64_t mask, Fn&& fn) {
    while (mask != 0) {
      const int ord = __builtin_ctzll(mask);
      mask &= mask - 1;
      if (static_cast<std::size_t>(ord) < rdmap_[thread].size() &&
          rdmap_[thread][ord] >= 0)
        fn(rdmap_[thread][ord]);
    }
  }

  /// dob/bob edges that do not depend on the rf/co choice.
  void build_static_edges() {
    for (std::size_t t = 0; t < combo_.size(); ++t) {
      const auto& tev = thread_events_[t];
      const int ti = static_cast<int>(t);

      // Direct dependency clauses: addr, data, ctrl;[W].
      for (int id : tev) {
        const Event& e = ev_[id];
        if (e.kind == Event::kFence) continue;
        for_deps(ti, e.addr_dep,
                 [&](int r) { add_edge(static_, r, id); });
        if (e.kind == Event::kWrite) {
          for_deps(ti, e.data_dep,
                   [&](int r) { add_edge(static_, r, id); });
          for_deps(ti, e.ctrl_dep,
                   [&](int r) { add_edge(static_, r, id); });
        }
      }

      // Prefix-accumulating po scan for the remaining clauses.
      std::uint64_t addr_prefix = 0;  // addr;po;[W] and (addr;po);[ISB]
      std::uint64_t isb_srcs = 0;     // (ctrl|(addr;po));[ISB];po;[R]
      std::vector<int> all_before, rel_before;
      std::vector<int> any_srcs;  // ordered before every later access
      std::vector<int> st_srcs;   // ordered before every later write
      for (int id : tev) {
        const Event& e = ev_[id];
        if (e.kind == Event::kFence) {
          if (is_full_fence(e.op)) {
            any_srcs.insert(any_srcs.end(), all_before.begin(),
                            all_before.end());
          } else if (is_ld_fence(e.op)) {
            for (int b : all_before)
              if (ev_[b].kind == Event::kRead) any_srcs.push_back(b);
          } else if (is_st_fence(e.op)) {
            for (int b : all_before)
              if (ev_[b].kind == Event::kWrite) st_srcs.push_back(b);
          } else {  // ISB
            isb_srcs |= e.ctrl_dep | addr_prefix;
          }
          continue;
        }
        // Incoming barrier-ordered edges.
        for (int s : any_srcs) add_edge(static_, s, id);
        if (e.kind == Event::kWrite)
          for (int s : st_srcs) add_edge(static_, s, id);
        if (e.kind == Event::kRead)
          for_deps(ti, isb_srcs, [&](int r) { add_edge(static_, r, id); });
        // addr;po;[W]: reads feeding any earlier access's address order
        // before every later write.
        if (e.kind == Event::kWrite)
          for_deps(ti, addr_prefix,
                   [&](int r) { add_edge(static_, r, id); });
        // po;[L] and [L];po;[A].
        if (e.kind == Event::kWrite && e.rel) {
          for (int b : all_before) add_edge(static_, b, id);
          rel_before.push_back(id);
        }
        if (e.kind == Event::kRead && e.acq)
          for (int l : rel_before) add_edge(static_, l, id);
        // [A|Q];po.
        if (e.kind == Event::kRead && (e.acq || e.acq_pc))
          any_srcs.push_back(id);
        addr_prefix |= e.addr_dep;
        all_before.push_back(id);
      }
    }
  }

  bool assign_rf(std::size_t i) {
    if (i == reads_.size()) return enumerate_co();
    for (int w : rf_cand_[i]) {
      rf_[i] = w;
      if (!assign_rf(i + 1)) return false;
    }
    return true;
  }

  bool enumerate_co() {
    // One permutation vector per address that has competing real writes;
    // the init write is always co-first.
    co_addrs_.clear();
    co_perm_.clear();
    for (auto& [a, ws] : writes_by_addr_) {
      co_addrs_.push_back(a);
      co_perm_.push_back(ws);  // start from Phase-B order, sorted below
      std::sort(co_perm_.back().begin(), co_perm_.back().end());
    }
    return perm_addr(0);
  }

  bool perm_addr(std::size_t k) {
    if (k == co_addrs_.size()) return check_candidate();
    auto& perm = co_perm_[k];
    std::sort(perm.begin(), perm.end());
    do {
      if (!perm_addr(k + 1)) return false;
    } while (std::next_permutation(perm.begin(), perm.end()));
    return true;
  }

  /// Axiom check for the now fully chosen (rf, co). Returns false when the
  /// global candidate budget is exhausted.
  bool check_candidate() {
    if (++out_->candidates > opts_.max_candidates) {
      out_->complete = false;
      return false;
    }
    const std::size_t n = ev_.size();

    // co position of every write: (addr, index); init is position 0.
    std::vector<int> co_pos(n, -1);
    for (int id = 0; id < static_cast<int>(n); ++id)
      if (ev_[id].thread == -1) co_pos[id] = 0;
    for (std::size_t k = 0; k < co_addrs_.size(); ++k)
      for (std::size_t i = 0; i < co_perm_[k].size(); ++i)
        co_pos[co_perm_[k][i]] = static_cast<int>(i) + 1;

    auto co_before = [&](int w1, int w2) {
      return ev_[w1].addr == ev_[w2].addr && co_pos[w1] < co_pos[w2];
    };

    // ---- internal: acyclic(po-loc ∪ rf ∪ co ∪ fr) --------------------
    std::vector<std::vector<int>> internal(n), external(n);
    for (const auto& [from, to] : static_) external[from].push_back(to);

    // po-loc chains per thread.
    for (const auto& [t, tev] : thread_events_) {
      (void)t;
      std::map<Addr, int> last;
      for (int id : tev) {
        const Event& e = ev_[id];
        if (e.kind == Event::kFence) continue;
        if (auto it = last.find(e.addr); it != last.end())
          internal[it->second].push_back(id);
        last[e.addr] = id;
      }
    }
    // co (full pairs, both graphs where external).
    std::vector<std::pair<int, int>> co_pairs;
    for (std::size_t k = 0; k < co_addrs_.size(); ++k) {
      const int init_w = init_id_[co_addrs_[k]];
      const auto& perm = co_perm_[k];
      for (std::size_t i = 0; i < perm.size(); ++i) {
        co_pairs.emplace_back(init_w, perm[i]);
        for (std::size_t j = i + 1; j < perm.size(); ++j)
          co_pairs.emplace_back(perm[i], perm[j]);
      }
    }
    for (const auto& [w1, w2] : co_pairs) {
      internal[w1].push_back(w2);
      if (ev_[w1].thread != ev_[w2].thread) external[w1].push_back(w2);
    }
    // rf, fr; plus the rf/co-dependent dob and bob clauses.
    for (std::size_t i = 0; i < reads_.size(); ++i) {
      const int r = reads_[i];
      const int src = rf_[i];
      internal[src].push_back(r);
      if (ev_[src].thread != ev_[r].thread) {
        external[src].push_back(r);  // rfe ∈ obs
      } else {
        // (addr|data);rfi: reads feeding the source write's address or data
        // are ordered before the read that observes it.
        for_deps(ev_[src].thread, ev_[src].addr_dep | ev_[src].data_dep,
                 [&](int d) {
                   if (d != r) external[d].push_back(r);
                 });
      }
      // fr = rf⁻¹;co.
      for (int w : writes_of(ev_[r].addr))
        if (w != src && co_before(src, w)) {
          internal[r].push_back(w);
          if (ev_[r].thread != ev_[w].thread)
            external[r].push_back(w);  // fre ∈ obs
        }
    }
    // (ctrl|data);coi and po;[L];coi.
    for (const auto& [w1, w2] : co_pairs) {
      if (ev_[w1].thread < 0 || ev_[w1].thread != ev_[w2].thread) continue;
      for_deps(ev_[w1].thread, ev_[w1].ctrl_dep | ev_[w1].data_dep,
               [&](int r) { external[r].push_back(w2); });
      if (ev_[w1].rel)
        for (int b : thread_events_[ev_[w1].thread]) {
          if (b == w1) break;
          if (ev_[b].kind != Event::kFence) external[b].push_back(w2);
        }
    }

    if (!acyclic(n, internal)) return true;   // sc-per-location violated
    if (!acyclic(n, external)) return true;   // ob cycle: forbidden
    ++out_->consistent;

    // ---- consistent: record the outcome ------------------------------
    Outcome o;
    o.reserve(p_.observe_regs.size() + p_.observe_mem.size());
    for (const auto& [t, reg] : p_.observe_regs)
      o.push_back(reg == sim::XZR ? 0 : combo_[t]->regs[reg]);
    for (Addr a : p_.observe_mem) {
      std::uint64_t final_v = ev_[init_id_[a]].value;
      int best = 0;
      for (int w : writes_of(a))
        if (co_pos[w] >= best) {
          best = co_pos[w];
          final_v = ev_[w].value;
        }
      o.push_back(final_v);
    }
    out_->allowed.insert(std::move(o));
    return true;
  }

  std::vector<int> writes_of(Addr a) const {
    auto it = writes_by_addr_.find(a);
    return it == writes_by_addr_.end() ? std::vector<int>{} : it->second;
  }

  const ConcurrentProgram& p_;
  const ModelOptions& opts_;
  const std::vector<const ThreadExec*>& combo_;
  OutcomeSet* out_;

  std::vector<Event> ev_;
  std::map<Addr, int> init_id_;
  std::map<Addr, std::vector<int>> writes_by_addr_;
  std::map<int, std::vector<int>> thread_events_;
  std::vector<std::vector<int>> rdmap_;
  std::vector<int> reads_;
  std::vector<std::pair<int, int>> static_;
  std::vector<std::vector<int>> rf_cand_;
  std::vector<int> rf_;
  std::vector<Addr> co_addrs_;
  std::vector<std::vector<int>> co_perm_;
};

}  // namespace

OutcomeSet enumerate_outcomes(const ConcurrentProgram& p,
                              const ModelOptions& opts) {
  OutcomeSet out;
  if (p.threads.empty() || p.threads.size() > 8) {
    out.error = "reference model supports 1..8 threads";
    return out;
  }
  for (const auto& [t, reg] : p.observe_regs) {
    (void)reg;
    if (t >= p.threads.size()) {
      out.error = "observe_regs names thread " + std::to_string(t) +
                  " but the program has " + std::to_string(p.threads.size());
      return out;
    }
  }
  std::map<Addr, std::uint64_t> init;
  for (const auto& [a, v] : p.init) init[a] = v;

  // Phase A: per-address value-domain fixpoint. The domain only ever grows,
  // so this terminates; the round cap guards pathological feedback loops.
  std::map<Addr, std::set<std::uint64_t>> dom;
  std::vector<std::vector<ThreadExec>> execs;
  for (int round = 0;; ++round) {
    execs.clear();
    for (const sim::Program& prog : p.threads) {
      ThreadInterp interp(prog, dom, init, opts, &out);
      execs.push_back(interp.run());
      if (!out.ok()) return out;
    }
    bool grew = false;
    for (const auto& texecs : execs)
      for (const ThreadExec& ex : texecs)
        for (const Event& e : ex.events)
          if (e.kind == Event::kWrite && dom[e.addr].insert(e.value).second)
            grew = true;
    for (const auto& [a, vs] : dom) {
      (void)a;
      if (vs.size() > opts.max_value_domain) {
        out.complete = false;
        return out;
      }
    }
    if (!grew) break;
    if (round >= 16) {
      out.complete = false;
      return out;
    }
  }

  // Every address any event touches gets a virtual initial write.
  std::set<Addr> addrs;
  for (const auto& [a, v] : p.init) {
    (void)v;
    addrs.insert(a);
  }
  for (Addr a : p.observe_mem) addrs.insert(a);
  for (const auto& texecs : execs)
    for (const ThreadExec& ex : texecs)
      for (const Event& e : ex.events)
        if (e.kind != Event::kFence) addrs.insert(e.addr);

  // Phase C: odometer over one candidate execution per thread.
  const std::size_t T = execs.size();
  for (const auto& texecs : execs)
    if (texecs.empty()) return out;  // no completed path (complete=false set)
  std::vector<std::size_t> pick(T, 0);
  std::vector<const ThreadExec*> combo(T);
  for (;;) {
    for (std::size_t t = 0; t < T; ++t) combo[t] = &execs[t][pick[t]];
    ComboChecker checker(p, opts, combo, addrs, init, &out);
    if (!checker.check()) return out;  // budget exhausted
    std::size_t t = 0;
    for (; t < T; ++t) {
      if (++pick[t] < execs[t].size()) break;
      pick[t] = 0;
    }
    if (t == T) break;
  }
  return out;
}

std::string to_string(const Outcome& o) {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < o.size(); ++i)
    os << (i ? "," : "") << o[i];
  os << ')';
  return os.str();
}

std::string to_string(const OutcomeSet& s) {
  std::ostringstream os;
  if (!s.ok()) return "error: " + s.error;
  os << '{';
  bool first = true;
  for (const Outcome& o : s.allowed) {
    os << (first ? "" : " ") << to_string(o);
    first = false;
  }
  os << '}';
  if (!s.complete) os << " (incomplete)";
  return os.str();
}

}  // namespace armbar::model
