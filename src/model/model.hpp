// Axiomatic ARMv8 reference model (ISSUE 4 tentpole).
//
// Given a small multi-threaded micro-ISA program, exhaustively enumerate the
// set of final states the ARMv8 memory model allows, independently of the
// timing simulator. The construction follows the herd7 aarch64.cat model
// (Alglave et al., "Herding Cats", TOPLAS 2014; Pulte et al., POPL 2018
// for the simplified multi-copy-atomic formulation):
//
//   * Each candidate execution is a set of events — reads R, writes W (with
//     acquire A / acquire-PC Q / release L flags) and fences — related by
//     program order (po), reads-from (rf), coherence (co) and from-reads
//     (fr = rf⁻¹;co).
//   * sc-per-location ("internal"):  acyclic(po-loc ∪ rf ∪ co ∪ fr).
//   * external visibility:           acyclic(obs ∪ dob ∪ bob), where
//       obs = rfe ∪ coe ∪ fre                       (observed-by)
//       dob = addr | data | ctrl;[W] | addr;po;[W]
//           | (ctrl|(addr;po));[ISB];po;[R]
//           | (ctrl|data);coi | (addr|data);rfi     (dependency-ordered)
//       bob = [R];po;[dmb.ld];po | [W];po;[dmb.st];po;[W]
//           | po;[dmb.full];po | [L];po;[A] | [A|Q];po
//           | po;[L] | po;[L];coi                    (barrier-ordered)
//   * DSB variants impose at least the ordering of the matching DMB, so the
//     model treats dsb.{ish,ishst,ishld} as dmb.{ish,ishst,ishld}.
//
// The simulator was measured to be multi-copy-atomic (see
// tests/litmus/litmus_shapes_test.cpp, WRC probe), so the MCA formulation is
// a sound oracle: every outcome the simulator can produce must fall inside
// the set this model enumerates. The converse need not hold — the simulator
// is documented to be *stronger* than the architecture on some shapes (LB /
// S / 2+2W relaxed outcomes are unobservable because loads sample at issue).
//
// Enumeration is exact, not sampled:
//   Phase A  computes a per-address value domain as a fixpoint (initial
//            values plus every value any thread path can store);
//   Phase B  symbolically executes each thread, forking on every load over
//            the domain, while tracking register taint for address / data /
//            control dependencies;
//   Phase C  combines one candidate execution per thread and searches the
//            (rf, co) choice space for candidates that satisfy the axioms.
//
// Phase C has two interchangeable engines (ISSUE 5 tentpole):
//   * The default partial-order-reduction (POR) engine walks rf choices and
//     per-address coherence placements as an incremental DFS over a memoized
//     transitive-closure of the ordered-before relations. Because acyclicity
//     is monotone (adding an edge never repairs a cycle), any prefix whose
//     edges already close a cycle prunes the whole subtree — a sleep-set
//     style cut over the existing dob/bob/obs machinery — and rf candidates
//     that are already reachable *from* their read can be rejected before
//     the search starts (early infeasibility). The engine enumerates exactly
//     the consistent candidates the naive engine accepts; see DESIGN.md §12
//     for the equivalence argument.
//   * ModelOptions::naive re-enables the original enumerator (full rf
//     product x co permutations, per-candidate graph rebuild + DFS
//     acyclicity). It is kept compiled-in as the oracle for the golden
//     corpus and the POR equivalence sweep (`armbar-fuzz --model-naive`).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"
#include "sim/program.hpp"

namespace armbar::model {

/// A final state: the observed registers (in observe_regs order) followed by
/// the final memory words (in observe_mem order).
using Outcome = std::vector<std::uint64_t>;

/// A small concurrent program in model form: one straight-line (or
/// forward-branching) micro-ISA program per thread, shared initial memory,
/// and the observation list that defines the outcome tuple.
///
/// The same sim::Program objects run unchanged on the timing simulator —
/// that is the whole point of the differential harness.
struct ConcurrentProgram {
  std::string name;
  std::vector<sim::Program> threads;
  std::vector<std::pair<Addr, std::uint64_t>> init;
  /// Observed (thread index, register) slots, in outcome order.
  std::vector<std::pair<std::uint32_t, sim::Reg>> observe_regs;
  /// Observed final memory words, appended after the registers.
  std::vector<Addr> observe_mem;
};

/// Enumeration budgets. The defaults comfortably cover every litmus shape
/// and everything the fuzz generator emits; hitting any cap clears
/// OutcomeSet::complete instead of silently truncating.
struct ModelOptions {
  std::uint32_t max_path_instructions = 512;  ///< executed instrs per path
  std::uint32_t max_execs_per_thread = 4096;  ///< candidate paths per thread
  std::uint32_t max_reads_per_thread = 48;    ///< taint masks are 64-bit
  std::uint32_t max_value_domain = 32;        ///< load-value forks per addr
  std::uint64_t max_candidates = 4'000'000;   ///< (exec, rf, co) checks
  /// Use the original exhaustive enumerator instead of the POR engine.
  /// Same outcome sets, same `consistent` count, no pruning — the oracle
  /// the POR engine is differentially tested against.
  bool naive = false;
};

/// Result of enumerate_outcomes().
struct OutcomeSet {
  std::set<Outcome> allowed;
  /// False when any ModelOptions cap was hit: `allowed` is then a lower
  /// bound and must not be used to flag simulator outcomes as illegal.
  bool complete = true;
  /// Non-empty when the program uses an op the model does not cover
  /// (WFE/LDXR/STXR/SWP) or is otherwise malformed; `allowed` is invalid.
  std::string error;
  /// Executions examined. Naive engine: complete (rf, co) candidates
  /// checked. POR engine: search nodes visited (each a distinct partial
  /// execution); both are bounded by ModelOptions::max_candidates.
  std::uint64_t candidates = 0;
  /// Candidates that satisfied the axioms. Engine-independent: the POR
  /// engine reaches a leaf exactly once per consistent (rf, co) choice, so
  /// this matches the naive engine bit-for-bit (asserted by tests).
  std::uint64_t consistent = 0;
  std::uint64_t combos = 0;    ///< per-thread execution combinations tried
  std::uint64_t enum_ns = 0;   ///< wall-clock ns spent in Phase C

  bool ok() const { return error.empty(); }
  bool allows(const Outcome& o) const { return allowed.count(o) != 0; }
};

OutcomeSet enumerate_outcomes(const ConcurrentProgram& p,
                              const ModelOptions& opts = {});

/// Verdict of compare_outcome_sets() — the equivalence oracle contract the
/// barrier-optimization driver (ISSUE 10) is built on. Two enumerations are
/// only *comparable* when both are error-free AND complete: an incomplete
/// set is a lower bound, and "lower bound == lower bound" proves nothing.
/// A rewrite is admissible iff `equal` — the allowed-outcome sets are
/// identical (the admissibility criterion from "On Architecture to
/// Architecture Mapping for Concurrency": no outcome appears or disappears).
struct EquivalenceVerdict {
  bool comparable = false;  ///< both sets ok() && complete
  bool equal = false;       ///< comparable && allowed sets identical
  /// Why not equal: the first outcome present in exactly one set (prefixed
  /// with "only in A:" / "only in B:"), or why not comparable.
  std::string detail;
};

EquivalenceVerdict compare_outcome_sets(const OutcomeSet& a,
                                        const OutcomeSet& b);

std::string to_string(const Outcome& o);
std::string to_string(const OutcomeSet& s);

}  // namespace armbar::model
