// Socket/cluster topology for the host-side locks (ISSUE 9 satellite).
//
// The lock headers used to hard-code their capacity and placement
// constants (FFWD max_clients = 16, CC-Synch max_threads = 64, no socket
// notion at all). CNA needs a real socket map, and the benches already
// have one: the simulator's PlatformSpec. This header is the single
// topology source both sides share — `Topology::from_platform` projects a
// sim preset (kunpeng916 = 2 x 32, ...) and `Topology::host()` describes
// the machine the process is actually running on.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

#include "sim/platform.hpp"

namespace armbar::locks {

/// A two-level core map: `sockets` NUMA/cluster domains of
/// `cores_per_socket` cores each, numbered socket-major exactly like
/// sim::PlatformSpec::node_of.
struct Topology {
  std::uint32_t sockets = 1;
  std::uint32_t cores_per_socket = 1;

  std::uint32_t total_cores() const { return sockets * cores_per_socket; }

  /// Socket of a cpu/thread index (indices beyond the map wrap, so any
  /// scheduler-reported cpu id maps to a valid socket).
  std::uint32_t socket_of(std::uint32_t cpu) const {
    const std::uint32_t n = total_cores();
    return n == 0 ? 0 : (cpu % n) / cores_per_socket;
  }

  /// Project a simulator platform preset: sim NUMA nodes become sockets.
  static Topology from_platform(const sim::PlatformSpec& spec) {
    Topology t;
    t.sockets = spec.nodes == 0 ? 1 : spec.nodes;
    t.cores_per_socket = spec.cores_per_node == 0 ? 1 : spec.cores_per_node;
    return t;
  }

  /// The running machine. Portable builds cannot probe NUMA without
  /// platform libraries, so the host is described as one socket holding
  /// every hardware thread — CNA degenerates to plain MCS there, which is
  /// exactly the correct single-socket behaviour.
  static Topology host() {
    Topology t;
    t.sockets = 1;
    const unsigned hw = std::thread::hardware_concurrency();
    t.cores_per_socket = hw == 0 ? 1 : hw;
    return t;
  }
};

/// Socket of the calling thread under `t`: the scheduler's cpu id where
/// the OS exposes one, else a stable hash of the thread id (any fixed
/// assignment is correct — the socket only steers the handoff policy).
inline std::uint32_t current_socket(const Topology& t) {
#if defined(__linux__)
  const int cpu = sched_getcpu();
  if (cpu >= 0) return t.socket_of(static_cast<std::uint32_t>(cpu));
#endif
  const std::size_t h = std::hash<std::thread::id>{}(std::this_thread::get_id());
  return t.socket_of(static_cast<std::uint32_t>(h));
}

}  // namespace armbar::locks
