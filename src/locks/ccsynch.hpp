// CC-Synch combining lock, implemented from scratch after Fatourou &
// Kallimanis [14] — the migratory-server delegation family the paper
// evaluates as "DSMSynch" (CC-Synch and DSM-Synch are the two variants of
// the same combining technique in [14]; we build the cache-coherent one).
//
// Protocol: a SWAP-based queue of announcement nodes. The thread whose
// node reaches the head becomes the *combiner* and serves up to
// `combine_budget` queued requests before handing the role to the next
// waiter. The response path per request is
//
//     store ret; store completed; BARRIER; store wait=false
//
// i.e. a barrier strictly after the RMRs of the critical section and the
// response write — the Fig 7(b)/(c) hotspot. The Pilot variant piggybacks
// {completed, ret} on a single 64-bit word per node: the waiter learns it
// was served and gets its return value from one single-copy-atomic store,
// no barrier (paper §5.3 / Algorithm 6 adapted to a migratory server).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "arch/barrier.hpp"
#include "common/check.hpp"
#include "common/types.hpp"
#include "locks/delegation.hpp"
#include "locks/topology.hpp"
#include "pilot/pilot.hpp"

namespace armbar::locks {

class CcSynchLock final : public Executor {
 public:
  struct Config {
    std::size_t max_threads = 64;
    std::uint32_t combine_budget = 64;
    bool use_pilot = false;
    /// Barrier publishing {ret, completed} before wait=false; ignored
    /// when use_pilot is true.
    arch::Barrier response_barrier = arch::Barrier::kDmbSt;

    /// Size the node table from the shared topology source (one node per
    /// core) instead of the historical hard-coded 64.
    static Config for_topology(const Topology& t) {
      Config c;
      c.max_threads = t.total_cores();
      return c;
    }
  };

  CcSynchLock() : CcSynchLock(Config{}) {}

  explicit CcSynchLock(Config cfg)
      : cfg_(cfg), pool_(0xCC5ULL, 64), nodes_(cfg.max_threads + 1) {
    // The queue starts with one unowned dummy node: its future owner
    // becomes the first combiner.
    Node* dummy = &nodes_[0];
    dummy->wait.store(0, std::memory_order_relaxed);
    dummy->completed.store(0, std::memory_order_relaxed);
    // Pilot mode polls the token word instead of `wait`; arm it so the
    // dummy's first owner becomes the first combiner there too.
    dummy->combiner_token.store(1, std::memory_order_relaxed);
    tail_.store(dummy, std::memory_order_relaxed);
    next_node_.store(1, std::memory_order_relaxed);
  }

  CcSynchLock(const CcSynchLock&) = delete;
  CcSynchLock& operator=(const CcSynchLock&) = delete;

 private:
  struct Node;

 public:
  /// Per-thread handle carrying the thread's recyclable node.
  class Handle {
   public:
    explicit Handle(CcSynchLock& lock) : lock_(&lock) {
      const std::size_t idx =
          lock.next_node_.fetch_add(1, std::memory_order_relaxed);
      ARMBAR_CHECK_MSG(idx < lock.nodes_.size(), "too many CC-Synch threads");
      node_ = &lock.nodes_[idx];
    }

    std::uint64_t execute(CriticalFn fn, void* ctx, std::uint64_t arg) {
      return lock_->apply(node_, fn, ctx, arg);
    }

   private:
    friend class CcSynchLock;
    CcSynchLock* lock_;
    Node* node_;
  };

  std::uint64_t execute(CriticalFn fn, void* ctx, std::uint64_t arg) override {
    // Handles are cached per (thread, lock-generation). Keying on the
    // globally unique uid — not the address — prevents a stale handle from
    // being revived when a new lock is constructed at a reused address.
    thread_local std::unordered_map<std::uint64_t, std::unique_ptr<Handle>> handles;
    auto& h = handles[uid_];
    if (!h) h = std::make_unique<Handle>(*this);
    return h->execute(fn, ctx, arg);
  }

 private:
  struct alignas(kCacheLineBytes) Node {
    // Announcement (written by the requester before linking).
    CriticalFn fn = nullptr;
    void* ctx = nullptr;
    std::uint64_t arg = 0;
    std::atomic<Node*> next{nullptr};
    // Response (written by the combiner).
    std::atomic<std::uint64_t> ret{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> wait{0};
    // Pilot response channel: data word carries the shuffled return value;
    // a separate code word signals "you are the next combiner".
    alignas(kCacheLineBytes) pilot::PilotSlot pilot_slot;
    std::atomic<std::uint64_t> combiner_token{0};
    // Receiver-side pilot state lives with the node since node ownership
    // migrates: the new owner inherits the channel state.
    std::uint64_t rx_old_data = 0;
    std::uint64_t rx_old_flag = 0;
    std::uint64_t rx_cnt = 0;
    std::uint64_t rx_token_seen = 0;
    // Sender-side (combiner) pilot state, same-node migration argument.
    std::uint64_t tx_old_data = 0;
    std::uint64_t tx_flag = 0;
    std::uint64_t tx_cnt = 0;
  };

  std::uint64_t apply(Node*& my_node, CriticalFn fn, void* ctx,
                      std::uint64_t arg) {
    Node* fresh = my_node;
    fresh->next.store(nullptr, std::memory_order_relaxed);
    fresh->wait.store(1, std::memory_order_relaxed);
    fresh->completed.store(0, std::memory_order_relaxed);

    Node* cur = tail_.exchange(fresh, std::memory_order_acq_rel);
    // Announce on the node we received; recycle it as ours next time.
    cur->fn = fn;
    cur->ctx = ctx;
    cur->arg = arg;
    cur->next.store(fresh, std::memory_order_release);
    my_node = cur;

    if (cfg_.use_pilot) return wait_pilot(cur);
    return wait_plain(cur);
  }

  std::uint64_t wait_plain(Node* cur) {
    unsigned spins = 0;
    while (cur->wait.load(std::memory_order_acquire)) {
      if ((++spins & 0x3f) == 0) std::this_thread::yield();
    }
    arch::barrier(arch::Barrier::kDmbLd);
    if (cur->completed.load(std::memory_order_relaxed))
      return cur->ret.load(std::memory_order_relaxed);
    return combine(cur);
  }

  std::uint64_t wait_pilot(Node* cur) {
    // Poll the pilot data/flag words (served case) and the combiner token
    // (handoff case).
    for (unsigned spins = 0;; ++spins) {
      const std::uint64_t d = cur->pilot_slot.data.load(std::memory_order_relaxed);
      if (d != cur->rx_old_data) {
        cur->rx_old_data = d;
        return d ^ pool_.at(cur->rx_cnt++);
      }
      const std::uint64_t f = cur->pilot_slot.flag.load(std::memory_order_relaxed);
      if (f != cur->rx_old_flag) {
        cur->rx_old_flag = f;
        return cur->rx_old_data ^ pool_.at(cur->rx_cnt++);
      }
      const std::uint64_t tok = cur->combiner_token.load(std::memory_order_relaxed);
      if (tok != cur->rx_token_seen) {
        cur->rx_token_seen = tok;
        arch::barrier(arch::Barrier::kDmbLd);
        return combine(cur);
      }
      if ((spins & 0x3f) == 0x3f) std::this_thread::yield();
    }
  }

  void respond(Node* n, std::uint64_t ret) {
    if (cfg_.use_pilot) {
      // One single-copy-atomic store publishes served+value (Algorithm 6).
      const std::uint64_t shuffled = ret ^ pool_.at(n->tx_cnt++);
      if (shuffled == n->tx_old_data) {
        n->tx_flag ^= 1;
        n->pilot_slot.flag.store(n->tx_flag, std::memory_order_relaxed);
      } else {
        n->pilot_slot.data.store(shuffled, std::memory_order_relaxed);
        n->tx_old_data = shuffled;
      }
    } else {
      n->ret.store(ret, std::memory_order_relaxed);
      n->completed.store(1, std::memory_order_relaxed);
      arch::barrier(cfg_.response_barrier);  // the Fig 7 hotspot barrier
#if !defined(__aarch64__)
      std::atomic_thread_fence(std::memory_order_release);
#endif
      n->wait.store(0, std::memory_order_relaxed);
    }
  }

  void handoff(Node* n) {
    if (cfg_.use_pilot) {
      arch::barrier(arch::Barrier::kDmbSt);
#if !defined(__aarch64__)
      std::atomic_thread_fence(std::memory_order_release);
#endif
      n->combiner_token.store(n->rx_token_seen + 1, std::memory_order_relaxed);
    } else {
      // completed stays 0: the woken waiter becomes the combiner.
      arch::barrier(arch::Barrier::kDmbSt);
#if !defined(__aarch64__)
      std::atomic_thread_fence(std::memory_order_release);
#endif
      n->wait.store(0, std::memory_order_relaxed);
    }
  }

  std::uint64_t combine(Node* my) {
    Node* tmp = my;
    std::uint64_t my_ret = 0;
    std::uint32_t served = 0;
    for (;;) {
      Node* next = tmp->next.load(std::memory_order_acquire);
      if (next == nullptr || served >= cfg_.combine_budget) {
        // tmp is either the unannounced tail node or a handoff target;
        // in both cases its owner (current or future) combines next.
        handoff(tmp);
        break;
      }
      arch::barrier(arch::Barrier::kDmbLd);  // request read before execution
      const std::uint64_t ret = tmp->fn(tmp->ctx, tmp->arg);
      ++served;
      if (tmp == my) {
        my_ret = ret;  // our own request: no response message needed
        if (cfg_.use_pilot) {
          // Keep the channel state in sync: consume our own slot locally.
          (void)pool_.at(tmp->tx_cnt++);
          ++tmp->rx_cnt;
        }
      } else {
        respond(tmp, ret);
      }
      tmp = next;
    }
    return my_ret;
  }

  static std::uint64_t next_uid() {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  Config cfg_;
  const std::uint64_t uid_ = next_uid();
  pilot::HashPool pool_;
  std::vector<Node> nodes_;
  std::atomic<std::size_t> next_node_{0};
  alignas(kCacheLineBytes) std::atomic<Node*> tail_{nullptr};
};

}  // namespace armbar::locks
