// Ticket lock (paper §5.1-5.2), modelled on the classic Linux-kernel
// implementation: FIFO via a ticket counter, spin on now-serving.
//
// The acquire/release barrier choices are configurable because that is the
// paper's Fig 7(a) experiment. The defaults are architecturally correct on
// ARM (acquire: DMB ld after the spin read; release: DMB full before the
// now-serving store, since critical-section *loads and stores* must both
// complete before the release store becomes visible). Weaker settings are
// for experiments; on the x86 host every setting is safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "arch/barrier.hpp"
#include "common/types.hpp"
#include "locks/delegation.hpp"

namespace armbar::locks {

class TicketLock final : public Executor {
 public:
  struct Config {
    arch::Barrier acquire_barrier = arch::Barrier::kDmbLd;
    arch::Barrier release_barrier = arch::Barrier::kDmbFull;
  };

  TicketLock() : TicketLock(Config{}) {}
  explicit TicketLock(Config cfg) : cfg_(cfg) {}

  void lock() {
    const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
    unsigned spins = 0;
    while (serving_.load(std::memory_order_relaxed) != ticket) {
      if ((++spins & 0x3f) == 0) std::this_thread::yield();
    }
    // Order the spin read before the critical section (Table 3: load ->
    // any needs DMB ld / LDAR / a dependency).
    arch::barrier(cfg_.acquire_barrier);
#if !defined(__aarch64__)
    // Host fallback: guarantee acquire semantics regardless of the
    // experiment's configured barrier.
    std::atomic_thread_fence(std::memory_order_acquire);
#endif
  }

  void unlock() {
    // Critical-section accesses must complete before now-serving is
    // published (Table 3: any -> store needs DMB full).
    arch::barrier(cfg_.release_barrier);
#if !defined(__aarch64__)
    std::atomic_thread_fence(std::memory_order_release);
#endif
    serving_.store(serving_.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  }

  std::uint64_t execute(CriticalFn fn, void* ctx, std::uint64_t arg) override {
    lock();
    const std::uint64_t ret = fn(ctx, arg);
    unlock();
    return ret;
  }

 private:
  Config cfg_;
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> next_{0};
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> serving_{0};
};

/// MCS queue lock: each waiter spins on its own node — the classic
/// scalable in-place lock the paper cites alongside ticket locks [30].
class McsLock final : public Executor {
 public:
  struct Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<bool> locked{false};
  };

  void lock(Node& me) {
    me.next.store(nullptr, std::memory_order_relaxed);
    me.locked.store(true, std::memory_order_relaxed);
    Node* pred = tail_.exchange(&me, std::memory_order_acq_rel);
    if (pred != nullptr) {
      pred->next.store(&me, std::memory_order_release);
      unsigned spins = 0;
      while (me.locked.load(std::memory_order_acquire)) {
        if ((++spins & 0x3f) == 0) std::this_thread::yield();
      }
    }
    arch::barrier(arch::Barrier::kDmbLd);
  }

  void unlock(Node& me) {
    Node* succ = me.next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      Node* expected = &me;
      if (tail_.compare_exchange_strong(expected, nullptr,
                                        std::memory_order_acq_rel))
        return;
      unsigned spins = 0;
      while ((succ = me.next.load(std::memory_order_acquire)) == nullptr) {
        if ((++spins & 0x3f) == 0) std::this_thread::yield();
      }
    }
    arch::barrier(arch::Barrier::kDmbFull);
    succ->locked.store(false, std::memory_order_release);
  }

  std::uint64_t execute(CriticalFn fn, void* ctx, std::uint64_t arg) override {
    Node me;
    lock(me);
    const std::uint64_t ret = fn(ctx, arg);
    unlock(me);
    return ret;
  }

 private:
  alignas(kCacheLineBytes) std::atomic<Node*> tail_{nullptr};
};

}  // namespace armbar::locks
