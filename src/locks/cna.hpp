// Compact NUMA-Aware lock (CNA; Dice & Kogan, EuroSys'19), in the C11
// atomics form studied by "Verifying and Optimizing Compact NUMA-Aware
// Locks on Weak Memory Models" (PAPERS.md; ISSUE 9 tentpole).
//
// Shape: an MCS queue lock whose unlocker scans the main queue for a
// waiter on its own socket. Remote-socket waiters in front of that local
// successor are detached onto a *secondary* queue carried in the holder's
// node, so the lock keeps migrating within one socket (cheap c2c) instead
// of bouncing across the interconnect. To bound unfairness the holder
// splices the secondary queue back to the front after a fixed streak of
// local handoffs (the deterministic variant of the paper's probabilistic
// keep_local coin).
//
// Socket ids come from locks::Topology (shared with the sim platform
// presets — ISSUE 9 satellite); with one socket the scan always succeeds
// immediately and the lock degenerates to plain MCS.
//
// The acquire/release barrier choices are configurable exactly like
// TicketLock, because the lock-verification harness (src/lockver) studies
// both the strong (DMB full) and the weakened (LDAR/STLR) orderings of
// the handoff. Host fallbacks keep every configuration safe off-ARM.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

#include "arch/barrier.hpp"
#include "common/types.hpp"
#include "locks/delegation.hpp"
#include "locks/topology.hpp"

namespace armbar::locks {

class CnaLock final : public Executor {
 public:
  struct Config {
    Topology topo = Topology::host();
    /// Orders the grant-word spin read before the critical section.
    arch::Barrier acquire_barrier = arch::Barrier::kDmbLd;
    /// Orders critical-section accesses (and the transferred secondary-
    /// queue fields) before the grant-word store.
    arch::Barrier release_barrier = arch::Barrier::kDmbFull;
    /// Use LDAR/STLR on the grant word instead of standalone barriers
    /// (the paper's Table 3 weakening of the handoff).
    bool rcsc = false;
    /// Local handoffs in a row before the secondary queue is spliced back
    /// in front of the main queue (starvation bound).
    std::uint32_t local_handoff_cap = 64;

    static Config strong(Topology t) {
      Config c;
      c.topo = t;
      return c;
    }
    static Config weakened(Topology t) {
      Config c;
      c.topo = t;
      c.acquire_barrier = arch::Barrier::kNone;
      c.release_barrier = arch::Barrier::kNone;
      c.rcsc = true;
      return c;
    }
  };

  struct Node {
    std::atomic<Node*> next{nullptr};
    std::atomic<std::uint64_t> grant{0};  ///< 0 = wait; 1 = lock is yours
    std::uint32_t socket = 0;
    // Holder-owned state, handed to the successor *before* the grant store
    // (the release ordering on grant is what publishes these).
    Node* sec_head = nullptr;
    Node* sec_tail = nullptr;
    std::uint32_t local_streak = 0;
  };

  CnaLock() : CnaLock(Config{}) {}
  explicit CnaLock(Config cfg) : cfg_(cfg) {}

  void lock(Node& me) {
    me.next.store(nullptr, std::memory_order_relaxed);
    me.grant.store(0, std::memory_order_relaxed);
    me.socket = current_socket(cfg_.topo);
    Node* pred = tail_.exchange(&me, std::memory_order_acq_rel);
    if (pred == nullptr) {
      // Uncontended: holder state starts empty.
      me.sec_head = me.sec_tail = nullptr;
      me.local_streak = 0;
      return;
    }
    pred->next.store(&me, std::memory_order_release);
    unsigned spins = 0;
    if (cfg_.rcsc) {
      while (arch::load_acquire(me.grant) == 0) {
        if ((++spins & 0x3f) == 0) std::this_thread::yield();
      }
    } else {
      while (me.grant.load(std::memory_order_relaxed) == 0) {
        if ((++spins & 0x3f) == 0) std::this_thread::yield();
      }
      arch::barrier(cfg_.acquire_barrier);
    }
#if !defined(__aarch64__)
    // Host fallback: acquire semantics regardless of the configured
    // barrier (the experiments weaken ARM orderings, not host safety).
    std::atomic_thread_fence(std::memory_order_acquire);
#endif
  }

  void unlock(Node& me) {
    Node* succ = me.next.load(std::memory_order_acquire);
    if (succ == nullptr) {
      if (me.sec_head != nullptr) {
        // Main queue looks empty but remote waiters are parked: install
        // the secondary queue as the new main queue (its tail becomes the
        // lock tail) and pass to its head.
        Node* expected = &me;
        if (tail_.compare_exchange_strong(expected, me.sec_tail,
                                          std::memory_order_acq_rel)) {
          pass(*me.sec_head, nullptr, nullptr, 0);
          return;
        }
      } else {
        Node* expected = &me;
        if (tail_.compare_exchange_strong(expected, nullptr,
                                          std::memory_order_acq_rel))
          return;  // no waiters: lock released
      }
      // Lost the race: an enqueuer holds the tail but has not linked yet.
      unsigned spins = 0;
      while ((succ = me.next.load(std::memory_order_acquire)) == nullptr) {
        if ((++spins & 0x3f) == 0) std::this_thread::yield();
      }
    }

    Node* sh = me.sec_head;
    Node* st = me.sec_tail;
    const std::uint32_t streak = me.local_streak;

    if (sh != nullptr && streak >= cfg_.local_handoff_cap) {
      // Fairness splice: the parked remote waiters jump ahead of the main
      // queue and the oldest of them gets the lock.
      st->next.store(succ, std::memory_order_relaxed);
      pass(*sh, nullptr, nullptr, 0);
      return;
    }

    // Scan the linked prefix of the main queue for a same-socket waiter.
    // A node whose next is still null may be the published tail, so the
    // scan never detaches past it.
    Node* cur = succ;
    Node* prev = nullptr;
    while (cur->socket != me.socket) {
      Node* nxt = cur->next.load(std::memory_order_acquire);
      if (nxt == nullptr) {
        cur = nullptr;
        break;
      }
      prev = cur;
      cur = nxt;
    }

    if (cur == nullptr) {
      // Every linked waiter is remote: hand off across sockets, restoring
      // any parked waiters to the front first (they are older).
      if (sh != nullptr) {
        st->next.store(succ, std::memory_order_relaxed);
        pass(*sh, nullptr, nullptr, 0);
      } else {
        pass(*succ, nullptr, nullptr, 0);
      }
      return;
    }

    if (cur != succ) {
      // Detach the remote prefix [succ .. prev] onto the secondary queue.
      prev->next.store(nullptr, std::memory_order_relaxed);
      if (sh == nullptr) {
        sh = succ;
      } else {
        st->next.store(succ, std::memory_order_relaxed);
      }
      st = prev;
    }
    pass(*cur, sh, st, streak + 1);
  }

  std::uint64_t execute(CriticalFn fn, void* ctx, std::uint64_t arg) override {
    Node me;
    lock(me);
    const std::uint64_t ret = fn(ctx, arg);
    unlock(me);
    return ret;
  }

  const Config& config() const { return cfg_; }

 private:
  void pass(Node& to, Node* sh, Node* st, std::uint32_t streak) {
    to.sec_head = sh;
    to.sec_tail = st;
    to.local_streak = streak;
#if !defined(__aarch64__)
    std::atomic_thread_fence(std::memory_order_release);
#endif
    if (cfg_.rcsc) {
      arch::store_release(to.grant, 1);
    } else {
      arch::barrier(cfg_.release_barrier);
      to.grant.store(1, std::memory_order_relaxed);
    }
  }

  Config cfg_;
  alignas(kCacheLineBytes) std::atomic<Node*> tail_{nullptr};
};

}  // namespace armbar::locks
