// FFWD-style dedicated-server delegation lock (paper §5, Algorithm 5),
// implemented from scratch after Roghanchi et al. [42]: one server thread
// owns every critical section; clients publish requests into per-client
// cache-line slots and spin on per-client response slots.
//
// Barrier structure (Algorithm 5):
//   * server: detect request flag -> BARRIER (line 4) -> run the critical
//     section -> BARRIER (line 7) -> publish the response flag.
//   * The line-7 barrier strictly follows the RMR of writing the response,
//     which is the overhead Pilot removes (Algorithm 6): the response value
//     is piggybacked on the flag word through a Pilot channel.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "arch/barrier.hpp"
#include "common/check.hpp"
#include "common/types.hpp"
#include "locks/delegation.hpp"
#include "locks/topology.hpp"
#include "pilot/pilot.hpp"

namespace armbar::locks {

class FfwdLock final : public Executor {
 public:
  struct Config {
    std::size_t max_clients = 16;
    bool use_pilot = false;  ///< Algorithm 6: piggyback the response
    /// Algorithm 5 line 4: order the request read before the critical
    /// section.
    arch::Barrier request_barrier = arch::Barrier::kDmbLd;
    /// Algorithm 5 line 7: order the response data before the flag.
    /// Ignored when use_pilot is true (that is the point of Pilot).
    arch::Barrier response_barrier = arch::Barrier::kDmbSt;

    /// Size the client table from the shared topology source (one slot per
    /// core) instead of the historical hard-coded 16.
    static Config for_topology(const Topology& t) {
      Config c;
      c.max_clients = t.total_cores();
      return c;
    }
  };

  FfwdLock() : FfwdLock(Config{}) {}

  explicit FfwdLock(Config cfg)
      : cfg_(cfg), pool_(0x5eedULL, 64), slots_(cfg.max_clients) {
    server_ = std::thread([this] { serve(); });
  }

  ~FfwdLock() override {
    stop_.store(true, std::memory_order_release);
    server_.join();
  }

  FfwdLock(const FfwdLock&) = delete;
  FfwdLock& operator=(const FfwdLock&) = delete;

  /// Register the calling thread; returns its client id. Each thread must
  /// use its own id for all execute_as() calls.
  std::size_t register_client() {
    const std::size_t id = next_client_.fetch_add(1, std::memory_order_relaxed);
    ARMBAR_CHECK_MSG(id < cfg_.max_clients, "too many FFWD clients");
    return id;
  }

  std::uint64_t execute_as(std::size_t client, CriticalFn fn, void* ctx,
                           std::uint64_t arg) {
    Slot& s = slots_[client];
    // Publish the request: payload first, then the toggled sequence flag.
    s.fn = fn;
    s.ctx = ctx;
    s.arg = arg;
    arch::dmb_st();
    const std::uint64_t seq = s.req_seq.load(std::memory_order_relaxed) + 1;
    s.req_seq.store(seq, std::memory_order_release);

    if (cfg_.use_pilot) return pilot_receive(client);
    unsigned spins = 0;
    while (s.resp_seq.load(std::memory_order_acquire) != seq) {
      if ((++spins & 0x3f) == 0) std::this_thread::yield();
    }
    arch::barrier(arch::Barrier::kDmbLd);
    return s.ret;
  }

  /// Executor interface: auto-registers one id per (thread, lock) pair on
  /// first use. Keyed by the lock's globally unique uid, not its address,
  /// so ids never leak across lock generations.
  std::uint64_t execute(CriticalFn fn, void* ctx, std::uint64_t arg) override {
    thread_local std::unordered_map<std::uint64_t, std::size_t> ids;
    auto it = ids.find(uid_);
    if (it == ids.end()) it = ids.emplace(uid_, register_client()).first;
    return execute_as(it->second, fn, ctx, arg);
  }

 private:
  struct alignas(kCacheLineBytes) Slot {
    // --- request line (written by the client, read by the server) ---
    std::atomic<std::uint64_t> req_seq{0};
    CriticalFn fn = nullptr;
    void* ctx = nullptr;
    std::uint64_t arg = 0;
    // --- response line (written by the server, read by the client) ---
    alignas(kCacheLineBytes) std::atomic<std::uint64_t> resp_seq{0};
    std::uint64_t ret = 0;
    // --- pilot response channel (Algorithm 6) ---
    alignas(kCacheLineBytes) pilot::PilotSlot pilot_slot;
    std::uint64_t rx_old_data = 0;  // receiver-side pilot state
    std::uint64_t rx_old_flag = 0;
    std::uint64_t rx_cnt = 0;
    // --- server-side bookkeeping (server thread only) ---
    alignas(kCacheLineBytes) std::uint64_t served = 0;
    std::uint64_t tx_old_data = 0;  // sender-side pilot state
    std::uint64_t tx_flag = 0;
    std::uint64_t tx_cnt = 0;
  };

  void serve() {
    const std::size_t n = cfg_.max_clients;
    while (!stop_.load(std::memory_order_acquire)) {
      bool any = false;
      for (std::size_t i = 0; i < n; ++i) {
        Slot& s = slots_[i];
        const std::uint64_t seq = s.req_seq.load(std::memory_order_acquire);
        if (seq == s.served) continue;
        any = true;
        s.served = seq;
        arch::barrier(cfg_.request_barrier);  // Algorithm 5 line 4
        const std::uint64_t ret = s.fn(s.ctx, s.arg);
        if (cfg_.use_pilot) {
          // Algorithm 6: shuffle + piggyback; flag fallback on collision.
          const std::uint64_t shuffled = ret ^ pool_.at(s.tx_cnt++);
          if (shuffled == s.tx_old_data) {
            s.tx_flag ^= 1;
            s.pilot_slot.flag.store(s.tx_flag, std::memory_order_relaxed);
          } else {
            s.pilot_slot.data.store(shuffled, std::memory_order_relaxed);
            s.tx_old_data = shuffled;
          }
        } else {
          s.ret = ret;
          arch::barrier(cfg_.response_barrier);  // Algorithm 5 line 7
          s.resp_seq.store(seq, std::memory_order_release);
        }
      }
      if (!any) std::this_thread::yield();
    }
  }

  static std::uint64_t next_uid() {
    static std::atomic<std::uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  Config cfg_;
  const std::uint64_t uid_ = next_uid();
  pilot::HashPool pool_;
  std::vector<Slot> slots_;
  std::atomic<std::size_t> next_client_{0};
  std::atomic<bool> stop_{false};
  std::thread server_;

 public:
  /// Client-side pilot receive for slot `client` (exposed for tests).
  std::uint64_t pilot_receive(std::size_t client) {
    Slot& s = slots_[client];
    for (unsigned spins = 0;; ++spins) {
      const std::uint64_t d = s.pilot_slot.data.load(std::memory_order_relaxed);
      if (d != s.rx_old_data) {
        s.rx_old_data = d;
        break;
      }
      const std::uint64_t f = s.pilot_slot.flag.load(std::memory_order_relaxed);
      if (f != s.rx_old_flag) {
        s.rx_old_flag = f;
        break;
      }
      if ((spins & 0x3f) == 0x3f) std::this_thread::yield();
    }
    return s.rx_old_data ^ pool_.at(s.rx_cnt++);
  }
};

}  // namespace armbar::locks
