// Common interface for critical-section execution (paper §5).
//
// In-place locks (ticket, MCS) expose lock()/unlock() and run the critical
// section in the calling thread. Delegation locks (FFWD, CC-Synch) ship a
// function pointer + context to a server/combiner. `Executor` unifies both
// so the data structures in src/ds can run under any of them.
#pragma once

#include <cstdint>

namespace armbar::locks {

/// A critical section: reads/writes the protected state reachable from
/// `ctx`, takes a 64-bit argument, returns a 64-bit result. Plain function
/// pointer (not std::function) so requests fit in a delegation slot.
using CriticalFn = std::uint64_t (*)(void* ctx, std::uint64_t arg);

/// Anything that can run a critical section with mutual exclusion.
class Executor {
 public:
  virtual ~Executor() = default;
  virtual std::uint64_t execute(CriticalFn fn, void* ctx, std::uint64_t arg) = 0;
};

}  // namespace armbar::locks
