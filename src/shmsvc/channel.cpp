#include "shmsvc/channel.hpp"

#include <signal.h>
#include <unistd.h>

#include "arch/barrier.hpp"
#include "common/check.hpp"

namespace armbar::shmsvc {
namespace {

/// Record packing: payload in the high word, the low 32 bits of (round + 1)
/// as the tag in the low word. All three variants pack identically so
/// recovery can validate records without knowing which side wrote them.
std::uint64_t pack_rec(std::uint64_t round, std::uint32_t payload) {
  return (static_cast<std::uint64_t>(payload) << 32) |
         static_cast<std::uint32_t>(round + 1);
}
std::uint32_t rec_tag(std::uint64_t rec) { return static_cast<std::uint32_t>(rec); }
std::uint32_t rec_payload(std::uint64_t rec) {
  return static_cast<std::uint32_t>(rec >> 32);
}

/// Synthetic per-record producer work: k splitmix rounds through an opaque
/// sink, so chaos runs spend enough wall-clock per record for kills to land
/// inside interesting windows.
void spin_work(std::uint32_t k) {
  std::uint64_t s = 0x517cc1b727220a95ull;
  std::uint64_t acc = 0;
  for (std::uint32_t i = 0; i < k; ++i) acc ^= splitmix64(s);
  asm volatile("" ::"r"(acc));
}

/// A registered peer is "gone" when its slot is free (clean deregistration)
/// or its pid is dead.
bool peer_gone(Segment& seg, std::uint32_t idx) {
  if (idx == kNoPeer) return true;
  const std::uint32_t pid = seg.peer(idx).pid.load(std::memory_order_acquire);
  return pid == 0 || !pid_alive(static_cast<int>(pid));
}

}  // namespace

const char* to_string(CrashPlan::Point p) {
  switch (p) {
    case CrashPlan::Point::kNone: return "none";
    case CrashPlan::Point::kMidProduce: return "mid-produce";
    case CrashPlan::Point::kAfterPublish: return "after-publish";
    case CrashPlan::Point::kAfterClaim: return "after-claim";
    case CrashPlan::Point::kAfterMark: return "after-mark";
  }
  return "?";
}

bool parse_crash_point(const std::string& s, CrashPlan::Point* out) {
  if (s == "none") *out = CrashPlan::Point::kNone;
  else if (s == "mid-produce") *out = CrashPlan::Point::kMidProduce;
  else if (s == "after-publish") *out = CrashPlan::Point::kAfterPublish;
  else if (s == "after-claim") *out = CrashPlan::Point::kAfterClaim;
  else if (s == "after-mark") *out = CrashPlan::Point::kAfterMark;
  else return false;
  return true;
}

// ---------------------------------------------------------------------------
// Peer registry

Peer::Peer(Segment& seg, Role role) : seg_(seg) {
  const auto pid = static_cast<std::uint32_t>(::getpid());
  // Under heavy churn (chaos restarts) dead pids can fill the registry
  // faster than organic lease-expiry recovery frees them, so a full scan is
  // not a hard error: drive the recovery passes ourselves — the lock word
  // carries the holder's pid, so even an unregistered attacher may run
  // them — and retry. Every channel's pass must see each death once
  // (step 2(b) evidence) before step 4 frees the slot, hence per-channel
  // passes rather than a direct pid sweep here. Bounded patience: a live
  // recoverer excludes us, so give it a few milliseconds to finish.
  for (int attempt = 0; attempt < 100; ++attempt) {
    if (attempt > 0) {
      for (std::uint32_t ch = 0; ch < seg_.header().channels; ++ch)
        run_recovery(seg_, ch, kNoPeer);
      if (attempt > 1) ::usleep(2000);
    }
    for (std::uint32_t i = 0; i < kMaxPeers; ++i) {
      std::uint32_t expect = 0;
      if (seg_.peer(i).pid.compare_exchange_strong(expect, pid,
                                                   std::memory_order_acq_rel)) {
        seg_.peer(i).role.store(static_cast<std::uint32_t>(role),
                                std::memory_order_relaxed);
        seg_.peer(i).reclaim_mask.store(0, std::memory_order_relaxed);
        seg_.peer(i).heartbeat_ns.store(now_ns(), std::memory_order_relaxed);
        seg_.peer(i).births.fetch_add(1, std::memory_order_relaxed);
        idx_ = i;
        return;
      }
    }
  }
  ARMBAR_CHECK_MSG(false, "peer registry full of live peers");
}

Peer::~Peer() {
  if (idx_ == kNoPeer || abandoned_) return;
  seg_.peer(idx_).role.store(0, std::memory_order_relaxed);
  seg_.peer(idx_).pid.store(0, std::memory_order_release);
}

void Peer::heartbeat() {
  seg_.peer(idx_).heartbeat_ns.store(now_ns(), std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Recovery state machine

RecoveryOutcome run_recovery(Segment& seg, std::uint32_t channel,
                             std::uint32_t self_peer, bool force) {
  ChannelCtrl& c = seg.ctrl(channel);
  RecoveryOutcome out;
  // Lock word: (holder pid << 32) | low 32 bits of (peer index + 1). The
  // pid rides in the word itself so stealability never needs a registry
  // slot — which is what lets a registry-full bootstrap attacher
  // (self_peer == kNoPeer, low bits 0) run recovery at all.
  const std::uint64_t want =
      (static_cast<std::uint64_t>(::getpid()) << 32) |
      (static_cast<std::uint64_t>(self_peer + 1) & 0xffffffffull);

  // Single entry under a *stealable* lock: a live recoverer excludes us (it
  // will finish the job), a dead one is replaced.
  for (;;) {
    std::uint64_t cur = c.recovery_lock.load(std::memory_order_acquire);
    if (cur == 0) {
      if (c.recovery_lock.compare_exchange_weak(cur, want,
                                                std::memory_order_acq_rel))
        break;
      continue;
    }
    if (!pid_alive(static_cast<int>(cur >> 32))) {
      if (c.recovery_lock.compare_exchange_weak(cur, want,
                                                std::memory_order_acq_rel)) {
        c.lock_steals.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      continue;
    }
    return out;  // a live peer is already recovering this channel
  }

  const SegmentHeader& h = seg.header();
  const auto kind = static_cast<ChannelKind>(h.kind);
  const std::uint64_t cap = h.capacity;
  const std::uint64_t mask = cap - 1;
  Slot* slots = seg.slots(channel);
  std::atomic<std::uint8_t>* marks = seg.marks(channel);

  // Dead-peer census. A pass with nothing dead and no force request is a
  // spurious lease expiry: no generation bump, no state touched.
  bool dead[kMaxPeers] = {};
  for (std::uint32_t i = 0; i < kMaxPeers; ++i) {
    const std::uint32_t pid = seg.peer(i).pid.load(std::memory_order_acquire);
    if (pid != 0 && !pid_alive(static_cast<int>(pid))) {
      dead[i] = true;
      ++out.dead_peers;
    }
  }
  if (out.dead_peers == 0 && !force) {
    c.recovery_lock.store(0, std::memory_order_release);
    return out;
  }

  out.ran = true;
  c.generation.fetch_add(1, std::memory_order_acq_rel);
  c.recoveries.fetch_add(1, std::memory_order_relaxed);
  pilot::HashPool pool(h.seed, cap);

  // Step 1 — producer intent reconcile. intent == prod + 1 means record
  // `prod` was mid-write when the producer vanished. Rescue it if the
  // publication is complete (tag/seq already visible), else tombstone-publish
  // it so the ticket flows to a consumer as a counted gap instead of
  // wedging every waiter behind an eternally-torn slot.
  const std::uint32_t pp = c.producer_peer.load(std::memory_order_acquire);
  const bool producer_gone = pp == kNoPeer || peer_gone(seg, pp);
  std::uint64_t p = c.prod.load(std::memory_order_relaxed);
  const std::uint64_t in = c.intent.load(std::memory_order_relaxed);
  if ((producer_gone || force) && in == p + 1) {
    Slot& s = slots[p & mask];
    bool published;
    if (kind == ChannelKind::kPilotRing) {
      published = rec_tag(s.rec.load(std::memory_order_relaxed) ^
                          pool.at(p & mask)) == static_cast<std::uint32_t>(p + 1);
    } else {
      published = s.seq.load(std::memory_order_relaxed) == p + 1;
    }
    if (published) {
      c.intents_rescued.fetch_add(1, std::memory_order_relaxed);
      ++out.intents_rescued;
    } else {
      s.stamp.store(now_ns(), std::memory_order_relaxed);
      const std::uint64_t rec = pack_rec(p, kGapPayload);
      if (kind == ChannelKind::kPilotRing) {
        s.rec.store(rec ^ pool.at(p & mask), std::memory_order_relaxed);
      } else {
        s.rec.store(rec, std::memory_order_relaxed);
        arch::barrier(arch::Barrier::kDmbSt);
        s.seq.store(p + 1, std::memory_order_relaxed);
      }
      c.gaps_tombstoned.fetch_add(1, std::memory_order_relaxed);
      ++out.gaps_tombstoned;
    }
    p += 1;
    c.prod.store(p, std::memory_order_relaxed);
    c.intent.store(p, std::memory_order_relaxed);
  }

  // Step 2 — slot sweep. Two repairs:
  //   (a) bad sequence parity — for slot i only seq ≡ i (+1 for the
  //       publish state of the non-Pilot kinds) mod capacity is reachable;
  //       anything else is torn state, reset to the next legitimate free
  //       round (claimants of skipped rounds self-gap via the moved-past
  //       path in pop()).
  //   (b) claimed-but-unreleased tickets (published, ticket < cons, never
  //       released): the claimant crashed between claim and release. The
  //       mark fetch_add arbitrates against a merely-slow claimant: old == 0
  //       ⇒ the ticket becomes a counted gap; old != 0 ⇒ it was marked and
  //       only the release is missing.
  // (b) is gated on actual dead peers so a force-only pass (producer attach)
  // never gap-steals records from live, merely slow claimants.
  const std::uint64_t cons_snap = c.cons.load(std::memory_order_relaxed);
  for (std::uint64_t i = 0; i < cap; ++i) {
    Slot& s = slots[i];
    const std::uint64_t sq = s.seq.load(std::memory_order_relaxed);
    const std::uint64_t rel = (sq - i) & mask;  // (sq − i) mod cap
    const bool parity_ok =
        kind == ChannelKind::kPilotRing ? rel == 0 : (rel == 0 || rel == 1);
    if (!parity_ok) {
      // Repair to p + off: the free state for the producer's next round on
      // this slot, which is simultaneously the released state of the last
      // claimable round — a claimant of that round sees moved-past and
      // self-gaps, and the producer's flow-control wait exits.
      const std::uint64_t off = (i - (p & mask)) & mask;
      s.seq.store(p + off, std::memory_order_relaxed);
      c.seq_repairs.fetch_add(1, std::memory_order_relaxed);
      ++out.seq_repairs;
      continue;
    }
    if (out.dead_peers == 0) continue;
    const std::uint64_t r = sq - rel;  // the round this slot state belongs to
    bool published;
    if (kind == ChannelKind::kPilotRing) {
      published = rec_tag(s.rec.load(std::memory_order_relaxed) ^ pool.at(i)) ==
                  static_cast<std::uint32_t>(r + 1);
    } else {
      published = rel == 1;
    }
    if (!published || r >= cons_snap || r >= h.records) continue;
    const std::uint8_t old = marks[r].fetch_add(kMarkGap, std::memory_order_acq_rel);
    if (old == 0) {
      c.gaps_reclaimed.fetch_add(1, std::memory_order_relaxed);
      ++out.gaps_reclaimed;
    } else {
      marks[r].fetch_sub(kMarkGap, std::memory_order_acq_rel);
      c.slot_reclaims.fetch_add(1, std::memory_order_relaxed);
      ++out.slot_reclaims;
    }
    s.seq.store(r + cap, std::memory_order_relaxed);  // release
  }

  // Step 3 — locks held by gone peers. The partial critical section behind
  // a stolen qlock is exactly the state steps 1–2 repaired.
  const std::uint64_t ql = c.qlock.load(std::memory_order_acquire);
  if (ql != 0 && peer_gone(seg, static_cast<std::uint32_t>(ql - 1))) {
    c.qlock.store(0, std::memory_order_release);
    c.lock_steals.fetch_add(1, std::memory_order_relaxed);
  }

  // Step 4 — registry cleanup, gated per channel: a dead peer's slot is
  // freed only after *every* channel's recovery has swept with its death
  // visible, so no channel loses the evidence it needs for step 2(b).
  const std::uint64_t all_channels = h.channels >= 64
                                         ? ~0ull
                                         : (1ull << h.channels) - 1;
  for (std::uint32_t i = 0; i < kMaxPeers; ++i) {
    if (!dead[i]) continue;
    const std::uint64_t seen =
        seg.peer(i).reclaim_mask.fetch_or(1ull << channel,
                                          std::memory_order_acq_rel) |
        (1ull << channel);
    if ((seen & all_channels) == all_channels) {
      seg.peer(i).role.store(0, std::memory_order_relaxed);
      seg.peer(i).reclaim_mask.store(0, std::memory_order_relaxed);
      seg.peer(i).pid.store(0, std::memory_order_release);
      c.peer_reclaims.fetch_add(1, std::memory_order_relaxed);
    }
  }

  c.recovery_lock.store(0, std::memory_order_release);
  // Wake every class of waiter: whatever was wedged can now re-evaluate.
  c.cons_doorbell.post();
  c.prod_doorbell.post();
  c.lock_bell.post();
  return out;
}

// ---------------------------------------------------------------------------
// Q-variant lock (peer-owned, stealable via recovery)

namespace {

/// Acquire ctrl.qlock as peer `self`. Counts as one full-barrier-class
/// order-preserving op (the CAS acquire) in `full`; lease expiry runs
/// recovery, which releases locks held by dead peers.
void qlock_acquire(Segment& seg, std::uint32_t channel, std::uint32_t self,
                   const ChannelTuning& tuning, std::uint64_t* barriers,
                   std::uint64_t* full) {
  ChannelCtrl& c = seg.ctrl(channel);
  Backoff bo(tuning.backoff);
  const std::uint64_t start = now_ns();
  for (;;) {
    std::uint64_t cur = c.qlock.load(std::memory_order_relaxed);
    if (cur == 0) {
      if (c.qlock.compare_exchange_weak(cur, self + 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
        ++*barriers;
        ++*full;
        return;
      }
      continue;
    }
    if (bo.pause(c.lock_bell, &c.futex_waits)) {
      run_recovery(seg, channel, self);
      bo.reset_lease();
    }
    if (now_ns() - start > tuning.op_deadline_ns)
      throw StallError("qlock acquire stalled past the op deadline");
  }
}

void qlock_release(ChannelCtrl& c, std::uint64_t* barriers, std::uint64_t* full) {
  c.qlock.store(0, std::memory_order_release);
  ++*barriers;
  ++*full;
  c.lock_bell.post();
}

}  // namespace

// ---------------------------------------------------------------------------
// Producer

Producer::Producer(Segment& seg, std::uint32_t channel, Peer& peer,
                   const ChannelTuning& tuning, CrashPlan crash)
    : seg_(seg),
      c_(seg.ctrl(channel)),
      slots_(seg.slots(channel)),
      peer_(peer),
      tuning_(tuning),
      crash_(crash),
      pool_(seg.header().seed, seg.header().capacity),
      kind_(static_cast<ChannelKind>(seg.header().kind)),
      mask_(seg.header().capacity - 1),
      channel_(channel) {
  // Single-producer contract: a *live* incumbent is a caller bug.
  const std::uint32_t pp = c_.producer_peer.load(std::memory_order_acquire);
  ARMBAR_CHECK_MSG(pp == kNoPeer || peer_gone(seg_, pp) || pp == peer.index(),
                   "second live producer attached to channel");
  // Reconcile a dead predecessor's in-flight record before taking over, so
  // we never double-publish round `prod`.
  run_recovery(seg_, channel_, peer_.index(), /*force=*/true);
  c_.producer_peer.store(peer_.index(), std::memory_order_release);
  pos_ = c_.prod.load(std::memory_order_relaxed);
}

void Producer::crash_point(CrashPlan::Point p) {
  if (crash_.point == p && ops_ == crash_.at_op) ::kill(::getpid(), SIGKILL);
}

bool Producer::produce(std::uint32_t payload) {
  payload &= kPayloadMask;
  if (c_.stop.load(std::memory_order_relaxed) != 0 ||
      pos_ >= seg_.header().records) {
    finish();
    return false;
  }
  const std::uint64_t p = pos_;
  Slot& s = slots_[p & mask_];

  // Flow control: wait for the slot's previous round to be released
  // (seq == p). Monotone, so checking outside the Q lock is safe.
  Backoff bo(tuning_.backoff);
  const std::uint64_t start = now_ns();
  while (s.seq.load(std::memory_order_relaxed) != p) {
    if (c_.stop.load(std::memory_order_relaxed) != 0) {
      finish();
      return false;
    }
    if (bo.pause(c_.prod_doorbell, &c_.futex_waits)) {
      run_recovery(seg_, channel_, peer_.index());
      bo.reset_lease();
    }
    if (now_ns() - start > tuning_.op_deadline_ns)
      throw StallError("producer stalled waiting for a free slot");
  }

  if (kind_ == ChannelKind::kLockQueue) {
    qlock_acquire(seg_, channel_, peer_.index(), tuning_, &barriers_l_, &full_l_);
  } else if (kind_ == ChannelKind::kRing) {
    // Availability barrier (paper Algorithm 2): order the seq check before
    // the record write.
    arch::barrier(arch::Barrier::kDmbLd);
    ++barriers_l_;
  }
  // RB-P needs no barrier here: the loop-exit branch is a control
  // dependency ordering the stores below after the seq load.

  // Intent journal: from here to the prod advance, this record is
  // in-flight; a successor reconciles it if we die.
  c_.intent.store(p + 1, std::memory_order_relaxed);
  s.stamp.store(now_ns(), std::memory_order_relaxed);
  const std::uint64_t rec = pack_rec(p, payload);
  if (kind_ == ChannelKind::kPilotRing) {
    // Pilot publication: the shuffled tag IS the flag — one relaxed store,
    // no publish barrier, and seq is never producer-written (it is the
    // consumer-release word only, so no ordering between the two is needed).
    crash_point(CrashPlan::Point::kMidProduce);
    s.rec.store(rec ^ pool_.at(p & mask_), std::memory_order_relaxed);
  } else {
    s.rec.store(rec, std::memory_order_relaxed);
    crash_point(CrashPlan::Point::kMidProduce);
    if (kind_ == ChannelKind::kRing) {
      arch::barrier(arch::Barrier::kDmbSt);  // publish barrier
      ++barriers_l_;
    }
    // Q: the lock release below orders the publication instead.
    s.seq.store(p + 1, std::memory_order_relaxed);
  }
  crash_point(CrashPlan::Point::kAfterPublish);
  pos_ = p + 1;
  c_.prod.store(pos_, std::memory_order_relaxed);
  if (kind_ == ChannelKind::kLockQueue) qlock_release(c_, &barriers_l_, &full_l_);

  c_.cons_doorbell.post();
  ++ops_;
  if ((ops_ & 0xf) == 0) peer_.heartbeat();
  if ((ops_ & 0xff) == 0) flush_metrics();
  if (tuning_.produce_work != 0) spin_work(tuning_.produce_work);
  return true;
}

void Producer::finish() {
  if (done_) return;
  done_ = true;
  flush_metrics();
  c_.produce_done.store(1, std::memory_order_release);
  c_.cons_doorbell.post();
}

void Producer::flush_metrics() {
  if (barriers_l_ != 0) c_.barriers.fetch_add(barriers_l_, std::memory_order_relaxed);
  if (full_l_ != 0) c_.full_barriers.fetch_add(full_l_, std::memory_order_relaxed);
  barriers_l_ = full_l_ = 0;
}

// ---------------------------------------------------------------------------
// Consumer

Consumer::Consumer(Segment& seg, std::uint32_t channel, Peer& peer,
                   const ChannelTuning& tuning, CrashPlan crash)
    : seg_(seg),
      c_(seg.ctrl(channel)),
      slots_(seg.slots(channel)),
      marks_(seg.marks(channel)),
      peer_(peer),
      tuning_(tuning),
      crash_(crash),
      pool_(seg.header().seed, seg.header().capacity),
      kind_(static_cast<ChannelKind>(seg.header().kind)),
      mask_(seg.header().capacity - 1),
      channel_(channel) {}

Consumer::~Consumer() { flush_metrics(); }

void Consumer::crash_point(CrashPlan::Point p) {
  if (crash_.point == p && ops_ == crash_.at_op) ::kill(::getpid(), SIGKILL);
}

void Consumer::flush_metrics() {
  if (barriers_l_ != 0) c_.barriers.fetch_add(barriers_l_, std::memory_order_relaxed);
  if (full_l_ != 0) c_.full_barriers.fetch_add(full_l_, std::memory_order_relaxed);
  barriers_l_ = full_l_ = 0;
  if (lat_count_l_ != 0) {
    c_.latency_sum_ns.fetch_add(lat_sum_l_, std::memory_order_relaxed);
    c_.latency_count.fetch_add(lat_count_l_, std::memory_order_relaxed);
    for (std::size_t b = 0; b < kLatencyBuckets; ++b) {
      if (hist_l_[b] != 0) {
        c_.latency_hist[b].fetch_add(hist_l_[b], std::memory_order_relaxed);
        hist_l_[b] = 0;
      }
    }
    lat_sum_l_ = lat_count_l_ = 0;
  }
  if (delivered_l_ != 0) c_.delivered.fetch_add(delivered_l_, std::memory_order_relaxed);
  if (gaps_l_ != 0) c_.gap_records.fetch_add(gaps_l_, std::memory_order_relaxed);
  delivered_l_ = gaps_l_ = 0;
}

void Consumer::note_latency(std::uint64_t stamp_ns) {
  const std::uint64_t t = now_ns();
  const std::uint64_t d = t > stamp_ns ? t - stamp_ns : 0;
  lat_sum_l_ += d;
  ++lat_count_l_;
  ++hist_l_[latency_bucket(d)];
}

Consumer::Pop Consumer::pop(std::uint32_t* payload, std::uint64_t* ticket) {
  if (kind_ == ChannelKind::kLockQueue) return pop_locked(payload, ticket);
  const std::uint64_t cap = mask_ + 1;
  const std::uint64_t start = now_ns();
  for (;;) {
    // ---- claim a ticket by CAS on the shared cons counter --------------
    std::uint64_t t;
    {
      Backoff bo(tuning_.backoff);
      for (;;) {
        std::uint64_t cn = c_.cons.load(std::memory_order_relaxed);
        const std::uint64_t pr = c_.prod.load(std::memory_order_relaxed);
        if (cn < pr) {
          if (c_.cons.compare_exchange_weak(cn, cn + 1,
                                            std::memory_order_relaxed))
          {
            t = cn;
            break;
          }
          continue;
        }
        if (c_.produce_done.load(std::memory_order_acquire) != 0) {
          // The acquire pairs with finish()'s release: re-read with the
          // final prod value before declaring the channel drained.
          if (c_.cons.load(std::memory_order_relaxed) >=
              c_.prod.load(std::memory_order_relaxed)) {
            flush_metrics();
            return Pop::kDone;
          }
          continue;
        }
        if (bo.pause(c_.cons_doorbell, &c_.futex_waits)) {
          run_recovery(seg_, channel_, peer_.index());
          bo.reset_lease();
        }
        if (now_ns() - start > tuning_.op_deadline_ns)
          throw StallError("consumer stalled waiting for records");
      }
    }
    crash_point(CrashPlan::Point::kAfterClaim);

    // ---- wait for the record to be valid (publication visible) ---------
    Slot& s = slots_[t & mask_];
    std::uint64_t rec = 0;
    bool moved_past = false;
    {
      Backoff bo(tuning_.backoff);
      for (;;) {
        if (kind_ == ChannelKind::kPilotRing) {
          const std::uint64_t raw =
              s.rec.load(std::memory_order_relaxed) ^ pool_.at(t & mask_);
          if (rec_tag(raw) == static_cast<std::uint32_t>(t + 1)) {
            // Pilot: tag and payload travel in one single-copy-atomic
            // word — no consume barrier needed.
            rec = raw;
            break;
          }
        } else {
          if (s.seq.load(std::memory_order_relaxed) == t + 1) {
            arch::barrier(arch::Barrier::kDmbLd);  // consume barrier
            ++barriers_l_;
            rec = s.rec.load(std::memory_order_relaxed);
            break;
          }
        }
        if (s.seq.load(std::memory_order_relaxed) >= t + cap) {
          // The slot cycled past our round: recovery repaired/reclaimed it.
          moved_past = true;
          break;
        }
        if (bo.pause(c_.cons_doorbell, &c_.futex_waits)) {
          run_recovery(seg_, channel_, peer_.index());
          bo.reset_lease();
        }
        if (now_ns() - start > tuning_.op_deadline_ns)
          throw StallError("consumer stalled waiting for record validity");
      }
    }

    if (moved_past) {
      // Our ticket was skipped; account it as a gap unless recovery already
      // did. Either way the slot is not ours to release.
      const std::uint8_t old =
          marks_[t].fetch_add(kMarkGap, std::memory_order_acq_rel);
      if (old != 0) {
        marks_[t].fetch_sub(kMarkGap, std::memory_order_acq_rel);
        continue;  // accounted elsewhere; claim the next ticket
      }
      ++gaps_l_;
      ++ops_;
      *payload = kGapPayload;
      *ticket = t;
      return Pop::kGap;
    }

    const bool gap = rec_payload(rec) == kGapPayload;
    const std::uint8_t add = gap ? kMarkGap : kMarkDelivered;
    const std::uint8_t old = marks_[t].fetch_add(add, std::memory_order_acq_rel);
    if (old != 0) {
      // Recovery won the ticket (it marked and released); discard our read.
      marks_[t].fetch_sub(add, std::memory_order_acq_rel);
      continue;
    }
    crash_point(CrashPlan::Point::kAfterMark);
    note_latency(s.stamp.load(std::memory_order_relaxed));

    // Release: order our reads of rec/stamp before handing the slot back.
    arch::barrier(arch::Barrier::kDmbLd);
    ++barriers_l_;
    s.seq.store(t + cap, std::memory_order_relaxed);
    c_.prod_doorbell.post();
    ++ops_;
    if ((ops_ & 0xf) == 0) peer_.heartbeat();
    if ((ops_ & 0xff) == 0) flush_metrics();
    if (gap) {
      ++gaps_l_;
      *payload = kGapPayload;
      *ticket = t;
      return Pop::kGap;
    }
    ++delivered_l_;
    *payload = rec_payload(rec);
    *ticket = t;
    return Pop::kOk;
  }
}

Consumer::Pop Consumer::pop_locked(std::uint32_t* payload, std::uint64_t* ticket) {
  const std::uint64_t cap = mask_ + 1;
  const std::uint64_t start = now_ns();
  Backoff bo(tuning_.backoff);
  for (;;) {
    qlock_acquire(seg_, channel_, peer_.index(), tuning_, &barriers_l_, &full_l_);
    const std::uint64_t cn = c_.cons.load(std::memory_order_relaxed);
    const std::uint64_t pr = c_.prod.load(std::memory_order_relaxed);
    if (cn >= pr) {
      const bool done = c_.produce_done.load(std::memory_order_acquire) != 0 &&
                        c_.cons.load(std::memory_order_relaxed) >=
                            c_.prod.load(std::memory_order_relaxed);
      qlock_release(c_, &barriers_l_, &full_l_);
      if (done) {
        flush_metrics();
        return Pop::kDone;
      }
      if (bo.pause(c_.cons_doorbell, &c_.futex_waits)) {
        run_recovery(seg_, channel_, peer_.index());
        bo.reset_lease();
      }
      if (now_ns() - start > tuning_.op_deadline_ns)
        throw StallError("consumer stalled waiting for records (Q)");
      continue;
    }
    // Claim under the lock (no CAS needed; the lock serializes consumers).
    const std::uint64_t t = cn;
    c_.cons.store(cn + 1, std::memory_order_relaxed);
    crash_point(CrashPlan::Point::kAfterClaim);
    Slot& s = slots_[t & mask_];
    const std::uint64_t rec = s.rec.load(std::memory_order_relaxed);
    // Lock handoff from the producer ordered the publication; the seq word
    // can still disagree after a recovery raced us, which the mark resolves.
    const bool valid = s.seq.load(std::memory_order_relaxed) == t + 1 &&
                       rec_tag(rec) == static_cast<std::uint32_t>(t + 1);
    const bool gap = !valid || rec_payload(rec) == kGapPayload;
    const std::uint8_t add = gap ? kMarkGap : kMarkDelivered;
    const std::uint8_t old = marks_[t].fetch_add(add, std::memory_order_acq_rel);
    if (old != 0) {
      marks_[t].fetch_sub(add, std::memory_order_acq_rel);
      qlock_release(c_, &barriers_l_, &full_l_);
      continue;
    }
    crash_point(CrashPlan::Point::kAfterMark);
    if (valid) note_latency(s.stamp.load(std::memory_order_relaxed));
    if (valid) s.seq.store(t + cap, std::memory_order_relaxed);
    qlock_release(c_, &barriers_l_, &full_l_);
    c_.prod_doorbell.post();
    ++ops_;
    if ((ops_ & 0xf) == 0) peer_.heartbeat();
    if ((ops_ & 0xff) == 0) flush_metrics();
    if (gap) {
      ++gaps_l_;
      *payload = kGapPayload;
      *ticket = t;
      return Pop::kGap;
    }
    ++delivered_l_;
    *payload = rec_payload(rec);
    *ticket = t;
    return Pop::kOk;
  }
}

}  // namespace armbar::shmsvc
