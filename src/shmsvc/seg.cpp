#include "shmsvc/seg.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <new>

#include "common/check.hpp"

namespace armbar::shmsvc {
namespace {

bool is_pow2(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

}  // namespace

bool pid_alive(int pid) {
  if (pid <= 0) return false;
  return ::kill(pid, 0) == 0 || errno != ESRCH;
}

std::string current_user() {
  if (const char* u = std::getenv("USER"); u != nullptr && u[0] != '\0') {
    // Dots would break the name grammar; replace defensively.
    std::string s(u);
    for (char& c : s)
      if (c == '.' || c == '/') c = '_';
    return s;
  }
  return "uid" + std::to_string(::getuid());
}

std::string full_segment_name(const std::string& name) {
  return "/armbar." + current_user() + "." + std::to_string(::getpid()) + "." +
         name;
}

bool parse_segment_name(const std::string& entry, std::string* user, int* pid,
                        std::string* name) {
  const std::string prefix = "armbar.";
  if (entry.rfind(prefix, 0) != 0) return false;
  const std::size_t u0 = prefix.size();
  const std::size_t u1 = entry.find('.', u0);
  if (u1 == std::string::npos) return false;
  const std::size_t p1 = entry.find('.', u1 + 1);
  if (p1 == std::string::npos || p1 == u1 + 1) return false;
  long p = 0;
  for (std::size_t i = u1 + 1; i < p1; ++i) {
    if (!std::isdigit(static_cast<unsigned char>(entry[i]))) return false;
    p = p * 10 + (entry[i] - '0');
    if (p > 0x7fffffff) return false;
  }
  if (user != nullptr) *user = entry.substr(u0, u1 - u0);
  if (pid != nullptr) *pid = static_cast<int>(p);
  if (name != nullptr) *name = entry.substr(p1 + 1);
  return true;
}

Segment& Segment::operator=(Segment&& o) noexcept {
  if (this != &o) {
    if (base_ != nullptr) ::munmap(base_, bytes_);
    base_ = o.base_;
    bytes_ = o.bytes_;
    geo_ = o.geo_;
    shm_name_ = std::move(o.shm_name_);
    o.base_ = nullptr;
    o.bytes_ = 0;
  }
  return *this;
}

Segment::~Segment() {
  if (base_ != nullptr) ::munmap(base_, bytes_);
}

char* Segment::channel_block(std::uint32_t ch) {
  ARMBAR_CHECK(ch < header().channels);
  return base_ + geo_.channel_base + geo_.channel_stride * ch;
}

PeerSlot& Segment::peer(std::uint32_t i) {
  ARMBAR_CHECK(i < kMaxPeers);
  return *reinterpret_cast<PeerSlot*>(base_ + geo_.peers_off +
                                      sizeof(PeerSlot) * i);
}

ChannelCtrl& Segment::ctrl(std::uint32_t ch) {
  return *reinterpret_cast<ChannelCtrl*>(channel_block(ch));
}

Slot* Segment::slots(std::uint32_t ch) {
  return reinterpret_cast<Slot*>(channel_block(ch) + geo_.slots_off);
}

std::atomic<std::uint8_t>* Segment::marks(std::uint32_t ch) {
  return reinterpret_cast<std::atomic<std::uint8_t>*>(channel_block(ch) +
                                                      geo_.marks_off);
}

Segment Segment::create(const SegmentConfig& cfg) {
  ARMBAR_CHECK_MSG(is_pow2(cfg.capacity), "capacity must be a power of two");
  ARMBAR_CHECK(cfg.channels >= 1 && cfg.channels <= 64);
  ARMBAR_CHECK(cfg.records >= 1);
  ARMBAR_CHECK(!cfg.name.empty());

  Segment s;
  s.shm_name_ = full_segment_name(cfg.name);
  s.geo_ = Geometry::compute(cfg.channels, cfg.capacity, cfg.records);
  s.bytes_ = s.geo_.total;

  int fd = ::shm_open(s.shm_name_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0 && errno == EEXIST) {
    // Same user, same pid, same name: only possible after pid reuse over a
    // crashed predecessor — safe to reclaim.
    ::shm_unlink(s.shm_name_.c_str());
    fd = ::shm_open(s.shm_name_.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  }
  ARMBAR_CHECK_MSG(fd >= 0, "shm_open(O_CREAT) failed");
  ARMBAR_CHECK_MSG(::ftruncate(fd, static_cast<off_t>(s.bytes_)) == 0,
                   "ftruncate on shm segment failed");
  void* p = ::mmap(nullptr, s.bytes_, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  ARMBAR_CHECK_MSG(p != MAP_FAILED, "mmap of shm segment failed");
  s.base_ = static_cast<char*>(p);

  // ftruncate zero-fills; placement-construct the typed views anyway so the
  // atomics are formally initialized.
  auto* hdr = new (s.base_) SegmentHeader{};
  for (std::uint32_t i = 0; i < kMaxPeers; ++i)
    new (s.base_ + s.geo_.peers_off + sizeof(PeerSlot) * i) PeerSlot{};
  for (std::uint32_t ch = 0; ch < cfg.channels; ++ch) {
    char* blk = s.base_ + s.geo_.channel_base + s.geo_.channel_stride * ch;
    new (blk) ChannelCtrl{};
    auto* slots = reinterpret_cast<Slot*>(blk + s.geo_.slots_off);
    for (std::uint32_t i = 0; i < cfg.capacity; ++i) {
      new (&slots[i]) Slot{};
      slots[i].seq.store(i, std::memory_order_relaxed);  // round 0: free
    }
    auto* marks =
        reinterpret_cast<std::atomic<std::uint8_t>*>(blk + s.geo_.marks_off);
    for (std::uint64_t t = 0; t < cfg.records; ++t)
      new (&marks[t]) std::atomic<std::uint8_t>{0};
  }

  hdr->magic = kSegMagic;
  hdr->layout_version = kLayoutVersion;
  hdr->kind = static_cast<std::uint32_t>(cfg.kind);
  hdr->channels = cfg.channels;
  hdr->capacity = cfg.capacity;
  hdr->creator_pid = static_cast<std::uint32_t>(::getpid());
  hdr->records = cfg.records;
  hdr->seed = cfg.seed;
  hdr->total_bytes = s.bytes_;
  hdr->layout_hash = layout_hash(cfg.kind, cfg.channels, cfg.capacity, cfg.records);
  // Publication: attachers acquire-load ready before trusting anything else.
  hdr->ready.store(1, std::memory_order_release);
  return s;
}

bool Segment::attach(const std::string& shm_name, Segment* out,
                     std::string* err) {
  auto fail = [err](const char* why) {
    if (err != nullptr) *err = why;
    return false;
  };
  const int fd = ::shm_open(shm_name.c_str(), O_RDWR, 0600);
  if (fd < 0) return fail("shm segment does not exist or is not accessible");
  struct stat st{};
  if (::fstat(fd, &st) != 0 || static_cast<std::size_t>(st.st_size) <
                                   sizeof(SegmentHeader)) {
    ::close(fd);
    return fail("segment smaller than its header");
  }
  const std::size_t bytes = static_cast<std::size_t>(st.st_size);
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (p == MAP_FAILED) return fail("mmap of shm segment failed");

  Segment s;
  s.base_ = static_cast<char*>(p);
  s.bytes_ = bytes;
  s.shm_name_ = shm_name;
  const SegmentHeader& h = s.header();
  if (h.ready.load(std::memory_order_acquire) == 0)
    return fail("segment not ready (creator still initializing or died mid-init)");
  if (h.magic != kSegMagic) return fail("bad segment magic");
  if (h.layout_version != kLayoutVersion) return fail("layout version mismatch");
  const auto kind = static_cast<ChannelKind>(h.kind);
  if (h.kind > 2 || h.channels == 0 || h.channels > 64 || !is_pow2(h.capacity) ||
      h.records == 0)
    return fail("header geometry out of range");
  if (h.layout_hash != layout_hash(kind, h.channels, h.capacity, h.records))
    return fail("layout hash mismatch (segment written by an incompatible build)");
  const Geometry geo = Geometry::compute(h.channels, h.capacity, h.records);
  if (h.total_bytes != geo.total || bytes < geo.total)
    return fail("segment size does not match its declared geometry");
  s.geo_ = geo;
  *out = std::move(s);
  if (err != nullptr) err->clear();
  return true;
}

void Segment::unlink() {
  if (!shm_name_.empty()) ::shm_unlink(shm_name_.c_str());
}

GcStats gc_stale_segments(std::vector<std::string>* removed) {
  GcStats gc;
  DIR* d = ::opendir("/dev/shm");
  if (d == nullptr) return gc;
  const std::string me = current_user();
  std::vector<std::string> stale;
  while (dirent* e = ::readdir(d)) {
    std::string user, name;
    int pid = 0;
    if (!parse_segment_name(e->d_name, &user, &pid, &name)) continue;
    ++gc.scanned;
    if (user != me) {
      ++gc.foreign;
      continue;
    }
    if (pid_alive(pid)) {
      ++gc.alive;
      continue;
    }
    stale.push_back(std::string("/") + e->d_name);
  }
  ::closedir(d);
  for (const std::string& n : stale) {
    if (::shm_unlink(n.c_str()) == 0) {
      ++gc.removed;
      if (removed != nullptr) removed->push_back(n);
    }
  }
  return gc;
}

}  // namespace armbar::shmsvc
