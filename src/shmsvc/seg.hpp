// Segment lifecycle: POSIX shm create/attach/validate/unlink plus the
// stale-segment garbage collector (ISSUE 8 satellite).
//
// Naming: every segment is "/armbar.<user>.<pid>.<name>" where <pid> is
// the creator. The name alone is enough for the sweeper to decide
// staleness — same user + dead creator pid ⇒ unlink — without mapping the
// segment (whose header may be arbitrarily torn).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "shmsvc/layout.hpp"

namespace armbar::shmsvc {

struct SegmentConfig {
  std::string name = "bus";  ///< short name; the full shm name is derived
  ChannelKind kind = ChannelKind::kRing;
  std::uint32_t channels = 1;
  std::uint32_t capacity = 256;       ///< slots per channel, power of two
  std::uint64_t records = 1u << 20;   ///< per-channel produce target
  std::uint64_t seed = 0x5eedull;     ///< Pilot pool + payload-stream seed
};

/// kill(pid, 0) liveness probe: false only when the pid is gone (ESRCH).
/// EPERM ("exists but not ours") counts as alive.
bool pid_alive(int pid);

/// The user component of segment names (getuid-stable, no passwd lookup
/// dependency: $USER if set, else "uid<N>").
std::string current_user();

/// "/armbar.<user>.<pid>.<name>" for this process.
std::string full_segment_name(const std::string& name);

/// Parses a /dev/shm entry ("armbar.user.pid.name", no leading slash).
bool parse_segment_name(const std::string& entry, std::string* user, int* pid,
                        std::string* name);

/// A mapped segment. Move-only; unmaps on destruction. Destruction never
/// unlinks — the owner calls unlink() explicitly (and the GC covers owners
/// that died before they could).
class Segment {
 public:
  Segment() = default;
  Segment(Segment&& o) noexcept { *this = std::move(o); }
  Segment& operator=(Segment&& o) noexcept;
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;
  ~Segment();

  /// Creates and fully initializes a fresh segment; ARMBAR_CHECKs on any
  /// OS failure (a tool that cannot create its bus has nowhere to go).
  static Segment create(const SegmentConfig& cfg);

  /// Attaches to an existing segment by full shm name. Returns false with
  /// a reason in *err on any validation failure (missing, truncated, bad
  /// magic, wrong version, not ready, layout-hash mismatch, size mismatch).
  static bool attach(const std::string& shm_name, Segment* out, std::string* err);

  bool valid() const { return base_ != nullptr; }
  const std::string& shm_name() const { return shm_name_; }
  const Geometry& geometry() const { return geo_; }

  SegmentHeader& header() { return *reinterpret_cast<SegmentHeader*>(base_); }
  const SegmentHeader& header() const {
    return *reinterpret_cast<const SegmentHeader*>(base_);
  }
  PeerSlot& peer(std::uint32_t i);
  ChannelCtrl& ctrl(std::uint32_t ch);
  Slot* slots(std::uint32_t ch);
  /// Mark array for a channel: one byte per ticket in [0, records).
  std::atomic<std::uint8_t>* marks(std::uint32_t ch);

  /// Removes the name from the filesystem (mappings persist). Idempotent.
  void unlink();

 private:
  char* channel_block(std::uint32_t ch);
  char* base_ = nullptr;
  std::size_t bytes_ = 0;
  Geometry geo_{};
  std::string shm_name_;
};

struct GcStats {
  int scanned = 0;  ///< armbar-named entries examined
  int removed = 0;  ///< stale (our user, dead owner) segments unlinked
  int alive = 0;    ///< our user, owner still running
  int foreign = 0;  ///< other users' segments (never touched)
};

/// Sweeps /dev/shm for stale armbar segments and unlinks them. Optionally
/// reports the removed shm names.
GcStats gc_stale_segments(std::vector<std::string>* removed = nullptr);

}  // namespace armbar::shmsvc
