// Crash-tolerant SPMC channel protocol over a mapped Segment
// (DESIGN.md §15). Three variants share one seq-slot ring and differ only
// in how publication is ordered — exactly the paper's Fig 6(d) trio, made
// cross-process:
//
//   Q    — one futex-backed lock around both produce and consume critical
//          sections; lock handoff provides ordering (full-barrier class).
//   RB   — lock-free: DMB ld before reading the slot, DMB st between the
//          record write and the seq publication (paper Algorithm 2).
//   RB-P — Pilot: the record word is XOR-shuffled with a per-slot seed and
//          carries the low 32 bits of (round + 1) as a tag; the tag IS the
//          publication flag, so the producer needs no publish barrier
//          (paper §4.3). The pool size equals the ring capacity, so a
//          slot's stale tag from the previous round differs from the fresh
//          tag deterministically — not probabilistically.
//
// Crash tolerance is structural, not bolted on:
//   * produce keeps an intent journal (intent > prod ⇔ record mid-write);
//     whoever finds a dead producer reconciles it — rescue the record if
//     fully published, else tombstone-publish it as a counted gap.
//   * every consumed ticket is marked in a per-ticket byte array with a
//     fetch_add that doubles as the linearization point against recovery:
//     old == 0 wins the ticket, the loser undoes its add. Final mark
//     values outside {0, delivered, gap} are duplicate-delivery proof.
//   * all blocking waits run Backoff leases; on expiry the waiter verifies
//     peer liveness and runs the recovery state machine (generation bump,
//     intent reconcile, unreleased-slot reclaim, seq-parity repair, dead
//     lock-holder steal, registry cleanup) under a stealable recovery lock.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "pilot/pilot.hpp"
#include "shmsvc/seg.hpp"

namespace armbar::shmsvc {

/// Deterministic in-op SIGKILL points for the chaos harness: the worker
/// raises SIGKILL on itself when its op counter hits `at_op` at `point`,
/// placing the death *inside* produce/consume critical windows.
struct CrashPlan {
  enum class Point : std::uint8_t {
    kNone = 0,
    kMidProduce,    ///< record written, seq/tag not yet published
    kAfterPublish,  ///< published, prod counter not yet advanced
    kAfterClaim,    ///< cons counter advanced, record not yet marked
    kAfterMark,     ///< marked delivered, slot not yet released
  };
  Point point = Point::kNone;
  std::uint64_t at_op = 0;
};

const char* to_string(CrashPlan::Point p);
bool parse_crash_point(const std::string& s, CrashPlan::Point* out);

/// Per-handle tuning. The op deadline bounds any single produce/consume:
/// exceeding it throws StallError, which a worker surfaces as a distinct
/// exit code — that is the harness's hang detector.
struct ChannelTuning {
  BackoffTuning backoff{};
  std::uint64_t op_deadline_ns = 60ull * 1000 * 1000 * 1000;
  std::uint32_t produce_work = 0;  ///< synthetic splitmix rounds per record
};

class StallError : public std::runtime_error {
 public:
  explicit StallError(const std::string& what) : std::runtime_error(what) {}
};

/// Registry membership: claims a PeerSlot on construction, heartbeats while
/// working, deregisters on clean destruction. A SIGKILLed peer leaves its
/// pid behind; recovery reclaims the slot once the pid is dead.
class Peer {
 public:
  Peer(Segment& seg, Role role);
  ~Peer();
  Peer(const Peer&) = delete;
  Peer& operator=(const Peer&) = delete;

  std::uint32_t index() const { return idx_; }
  void heartbeat();

  /// Keep the registration behind after destruction. Used when exiting
  /// abnormally mid-op (StallError): the claimed-but-unfinished state must
  /// stay attributed to our (soon dead) pid so recovery can see it.
  void abandon() { abandoned_ = true; }

 private:
  Segment& seg_;
  std::uint32_t idx_ = kNoPeer;
  bool abandoned_ = false;
};

/// What one recovery pass did (all tallies also land in ChannelCtrl).
struct RecoveryOutcome {
  bool ran = false;  ///< lock acquired and a generation bump happened
  std::uint32_t dead_peers = 0;
  std::uint64_t gaps_tombstoned = 0;
  std::uint64_t intents_rescued = 0;
  std::uint64_t gaps_reclaimed = 0;
  std::uint64_t slot_reclaims = 0;
  std::uint64_t seq_repairs = 0;
};

/// Runs the recovery state machine for one channel. Safe to call from any
/// peer at any time: single entry is enforced by the channel's stealable
/// recovery lock, and a pass with no dead peers and no torn state is a
/// no-op (no generation bump). `force` runs the scan even when every
/// registered peer is alive (used by the producer-attach reconcile, where
/// the dead predecessor may already be deregistered).
RecoveryOutcome run_recovery(Segment& seg, std::uint32_t channel,
                             std::uint32_t self_peer, bool force = false);

/// Producer handle. Single producer per channel by contract: the
/// constructor reconciles any predecessor's in-flight intent (under the
/// recovery lock), then takes over producer_peer. Two live producers on
/// one channel is a caller bug and trips a check.
class Producer {
 public:
  Producer(Segment& seg, std::uint32_t channel, Peer& peer,
           const ChannelTuning& tuning, CrashPlan crash = {});

  /// Publish one payload (masked to kPayloadMask). Returns false when the
  /// channel's stop flag is set or the record target is reached — in both
  /// cases produce_done has been published.
  bool produce(std::uint32_t payload);

  /// Publish produce_done and wake consumers. Idempotent.
  void finish();

  std::uint64_t position() const { return pos_; }

 private:
  void crash_point(CrashPlan::Point p);
  void flush_metrics();
  Segment& seg_;
  ChannelCtrl& c_;
  Slot* slots_;
  Peer& peer_;
  const ChannelTuning& tuning_;
  CrashPlan crash_;
  pilot::HashPool pool_;
  ChannelKind kind_;
  std::uint64_t mask_;
  std::uint32_t channel_;
  std::uint64_t pos_ = 0;
  std::uint64_t ops_ = 0;
  std::uint64_t barriers_l_ = 0;  ///< locally accumulated, flushed periodically
  std::uint64_t full_l_ = 0;
  bool done_ = false;
};

/// Consumer handle. Any number per channel; tickets are claimed by CAS on
/// the shared cons counter.
class Consumer {
 public:
  enum class Pop : std::uint8_t {
    kOk,    ///< *payload/*ticket hold a delivered record
    kGap,   ///< a counted gap (tombstone or reclaimed ticket) was consumed
    kDone,  ///< produce_done and the ring is fully drained
  };

  Consumer(Segment& seg, std::uint32_t channel, Peer& peer,
           const ChannelTuning& tuning, CrashPlan crash = {});
  ~Consumer();

  Pop pop(std::uint32_t* payload, std::uint64_t* ticket);

 private:
  Pop pop_locked(std::uint32_t* payload, std::uint64_t* ticket);
  void crash_point(CrashPlan::Point p);
  void flush_metrics();
  void note_latency(std::uint64_t stamp_ns);
  Segment& seg_;
  ChannelCtrl& c_;
  Slot* slots_;
  std::atomic<std::uint8_t>* marks_;
  Peer& peer_;
  const ChannelTuning& tuning_;
  CrashPlan crash_;
  pilot::HashPool pool_;
  ChannelKind kind_;
  std::uint64_t mask_;
  std::uint32_t channel_;
  std::uint64_t ops_ = 0;
  std::uint64_t barriers_l_ = 0;
  std::uint64_t full_l_ = 0;
  std::uint64_t delivered_l_ = 0;
  std::uint64_t gaps_l_ = 0;
  std::uint64_t lat_sum_l_ = 0;
  std::uint64_t lat_count_l_ = 0;
  std::uint32_t hist_l_[kLatencyBuckets] = {};
};

/// The deterministic expected-payload stream: producer i writes
/// payload_at(seed, ticket) and consumers verify on receipt, so a single
/// misordered publication becomes a hard failure, not silent data loss.
inline std::uint32_t payload_at(std::uint64_t seed, std::uint64_t ticket) {
  std::uint64_t s = seed ^ (ticket * 0x9e3779b97f4a7c15ull);
  return static_cast<std::uint32_t>(splitmix64(s)) & kPayloadMask;
}

/// log2-ns histogram bucket for a latency sample.
inline std::size_t latency_bucket(std::uint64_t ns) {
  std::size_t b = 0;
  while (ns > 1 && b < kLatencyBuckets - 1) {
    ns >>= 1;
    ++b;
  }
  return b;
}

}  // namespace armbar::shmsvc
