#include "shmsvc/service.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace armbar::shmsvc {
namespace {

std::uint64_t ms_to_ns(std::uint64_t ms) { return ms * 1000000ull; }

std::string self_exe() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return std::string(buf);
}

std::string dirname_of(const std::string& path) {
  const std::size_t p = path.rfind('/');
  return p == std::string::npos ? std::string(".") : path.substr(0, p);
}

}  // namespace

std::string find_tool(const std::string& name) {
  std::vector<std::string> candidates;
  if (const char* d = std::getenv("ARMBAR_TOOL_DIR"); d != nullptr && d[0] != '\0')
    candidates.push_back(std::string(d) + "/" + name);
  const std::string exe = self_exe();
  if (!exe.empty()) {
    std::string dir = dirname_of(exe);
    candidates.push_back(dir + "/" + name);
    for (int up = 0; up < 3; ++up) {
      candidates.push_back(dir + "/tools/" + name);
      dir += "/..";
    }
  }
  for (const std::string& c : candidates)
    if (::access(c.c_str(), X_OK) == 0) return c;
  return {};
}

// ---------------------------------------------------------------------------
// Worker entry

int maybe_run_worker(int argc, char** argv) {
  WorkerOpts o;
  bool is_worker = false;
  auto val = [&](int& i) -> const char* {
    ARMBAR_CHECK_MSG(i + 1 < argc, "worker flag missing its value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--role") {
      const std::string r = val(i);
      ARMBAR_CHECK_MSG(r == "producer" || r == "consumer", "bad --role");
      o.role = r == "producer" ? Role::kProducer : Role::kConsumer;
      is_worker = true;
    } else if (a == "--attach-worker") {
      o.attach = val(i);
    } else if (a == "--channel") {
      o.channel = static_cast<std::uint32_t>(std::strtoul(val(i), nullptr, 10));
    } else if (a == "--payload-seed") {
      o.payload_seed = std::strtoull(val(i), nullptr, 10);
    } else if (a == "--produce-work") {
      o.tuning.produce_work =
          static_cast<std::uint32_t>(std::strtoul(val(i), nullptr, 10));
    } else if (a == "--lease-ms") {
      o.tuning.backoff.lease_ns = ms_to_ns(std::strtoull(val(i), nullptr, 10));
    } else if (a == "--op-deadline-ms") {
      o.tuning.op_deadline_ns = ms_to_ns(std::strtoull(val(i), nullptr, 10));
    } else if (a == "--crash-point") {
      ARMBAR_CHECK_MSG(parse_crash_point(val(i), &o.crash.point),
                       "bad --crash-point");
    } else if (a == "--crash-op") {
      o.crash.at_op = std::strtoull(val(i), nullptr, 10);
    }
  }
  if (!is_worker) return -1;

  Segment seg;
  std::string err;
  if (!Segment::attach(o.attach, &seg, &err)) {
    std::fprintf(stderr, "worker: attach %s failed: %s\n", o.attach.c_str(),
                 err.c_str());
    return kWorkerAttachFailed;
  }
  Peer peer(seg, o.role);
  try {
    if (o.role == Role::kProducer) {
      Producer prod(seg, o.channel, peer, o.tuning, o.crash);
      while (prod.produce(payload_at(o.payload_seed, prod.position()))) {
      }
      return kWorkerOk;
    }
    Consumer cons(seg, o.channel, peer, o.tuning, o.crash);
    for (;;) {
      std::uint32_t payload = 0;
      std::uint64_t ticket = 0;
      const Consumer::Pop r = cons.pop(&payload, &ticket);
      if (r == Consumer::Pop::kDone) return kWorkerOk;
      if (r == Consumer::Pop::kGap) continue;
      if (payload != payload_at(o.payload_seed, ticket)) {
        std::fprintf(stderr,
                     "worker: MISDELIVERY ch=%u ticket=%llu got=%08x want=%08x\n",
                     o.channel, static_cast<unsigned long long>(ticket), payload,
                     payload_at(o.payload_seed, ticket));
        return kWorkerMisdelivery;
      }
    }
  } catch (const StallError& e) {
    // Leave the registration behind: our claimed-but-unfinished state must
    // stay attributed to this pid so recovery can account it after exit.
    peer.abandon();
    std::fprintf(stderr, "worker: stalled: %s\n", e.what());
    return kWorkerStalled;
  }
}

// ---------------------------------------------------------------------------
// Emergency cleanup registry

namespace {
std::mutex g_cleanup_mu;
std::vector<pid_t> g_children;
std::vector<std::string> g_segments;
volatile std::sig_atomic_t g_tool_signal = 0;
void tool_signal_handler(int sig) { g_tool_signal = sig; }
}  // namespace

void register_live_child(pid_t pid) {
  std::lock_guard<std::mutex> lk(g_cleanup_mu);
  g_children.push_back(pid);
}

void forget_child(pid_t pid) {
  std::lock_guard<std::mutex> lk(g_cleanup_mu);
  g_children.erase(std::remove(g_children.begin(), g_children.end(), pid),
                   g_children.end());
}

void register_segment(const std::string& shm_name) {
  std::lock_guard<std::mutex> lk(g_cleanup_mu);
  g_segments.push_back(shm_name);
}

void forget_segment(const std::string& shm_name) {
  std::lock_guard<std::mutex> lk(g_cleanup_mu);
  g_segments.erase(std::remove(g_segments.begin(), g_segments.end(), shm_name),
                   g_segments.end());
}

void emergency_cleanup() {
  std::vector<pid_t> kids;
  std::vector<std::string> segs;
  {
    std::lock_guard<std::mutex> lk(g_cleanup_mu);
    kids.swap(g_children);
    segs.swap(g_segments);
  }
  for (pid_t p : kids) ::kill(p, SIGKILL);
  for (pid_t p : kids) {
    int st = 0;
    while (::waitpid(p, &st, 0) < 0 && errno == EINTR) {
    }
  }
  for (const std::string& s : segs) ::shm_unlink(s.c_str());
}

volatile std::sig_atomic_t* install_tool_signals() {
  g_tool_signal = 0;
  std::signal(SIGINT, &tool_signal_handler);
  std::signal(SIGTERM, &tool_signal_handler);
  return &g_tool_signal;
}

// ---------------------------------------------------------------------------
// Fleet

namespace {

struct Child {
  pid_t pid = -1;
  Role role = Role::kConsumer;
  std::uint32_t channel = 0;
};

pid_t spawn_worker(const std::string& bin, const std::string& attach, Role role,
                   std::uint32_t channel, std::uint64_t payload_seed,
                   const ChannelTuning& tuning, const CrashPlan& crash) {
  std::vector<std::string> args = {
      bin,
      "--role", role == Role::kProducer ? "producer" : "consumer",
      "--attach-worker", attach,
      "--channel", std::to_string(channel),
      "--payload-seed", std::to_string(payload_seed),
      "--produce-work", std::to_string(tuning.produce_work),
      "--lease-ms", std::to_string(tuning.backoff.lease_ns / 1000000ull),
      "--op-deadline-ms", std::to_string(tuning.op_deadline_ns / 1000000ull),
  };
  if (crash.point != CrashPlan::Point::kNone) {
    args.emplace_back("--crash-point");
    args.emplace_back(to_string(crash.point));
    args.emplace_back("--crash-op");
    args.emplace_back(std::to_string(crash.at_op));
  }
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  ARMBAR_CHECK_MSG(pid >= 0, "fork failed");
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  return pid;
}

const char* role_name(Role r) {
  return r == Role::kProducer ? "producer" : "consumer";
}

double percentile_us(const std::uint64_t* hist, double q) {
  std::uint64_t total = 0;
  for (std::size_t b = 0; b < kLatencyBuckets; ++b) total += hist[b];
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  double seen = 0;
  for (std::size_t b = 0; b < kLatencyBuckets; ++b) {
    seen += static_cast<double>(hist[b]);
    if (seen >= target) {
      // Geometric midpoint of the log2 bucket, in microseconds.
      return static_cast<double>(1ull << b) * 1.5 / 1000.0;
    }
  }
  return static_cast<double>(1ull << (kLatencyBuckets - 1)) / 1000.0;
}

}  // namespace

Fleet::Fleet(FleetConfig cfg) : cfg_(std::move(cfg)) {}

FleetResult Fleet::run(const std::function<bool()>& interrupted) {
  FleetResult res;
  if (cfg_.kill_max_ms < cfg_.kill_min_ms) cfg_.kill_max_ms = cfg_.kill_min_ms;
  const bool owner = cfg_.attach.empty();

  Segment seg;
  if (owner) {
    seg = Segment::create(cfg_.seg);
    register_segment(seg.shm_name());
  } else {
    std::string err;
    if (!Segment::attach(cfg_.attach, &seg, &err)) {
      res.error = "attach failed: " + err;
      return res;
    }
  }
  const SegmentHeader& h = seg.header();
  const std::uint32_t channels = h.channels;
  const std::uint64_t payload_seed = h.seed;

  std::string bin = cfg_.worker_bin.empty() ? self_exe() : cfg_.worker_bin;
  if (bin.empty() || ::access(bin.c_str(), X_OK) != 0) {
    res.error = "worker binary not found: " + bin;
    if (owner) {
      seg.unlink();
      forget_segment(seg.shm_name());
    }
    return res;
  }

  Rng rng(cfg_.chaos_seed);
  auto make_plan = [&](Role role) {
    CrashPlan plan;
    if (!cfg_.chaos || rng.below(100) >= cfg_.crash_plan_pct) return plan;
    static const CrashPlan::Point kProducerPoints[] = {
        CrashPlan::Point::kMidProduce, CrashPlan::Point::kAfterPublish};
    static const CrashPlan::Point kConsumerPoints[] = {
        CrashPlan::Point::kAfterClaim, CrashPlan::Point::kAfterMark};
    plan.point = role == Role::kProducer ? kProducerPoints[rng.below(2)]
                                         : kConsumerPoints[rng.below(2)];
    plan.at_op = 20 + rng.below(5000);
    return plan;
  };

  std::vector<Child> kids;
  auto spawn = [&](Role role, std::uint32_t ch, bool with_plan) {
    const CrashPlan plan = with_plan ? make_plan(role) : CrashPlan{};
    const pid_t pid = spawn_worker(bin, seg.shm_name(), role, ch, payload_seed,
                                   cfg_.tuning, plan);
    register_live_child(pid);
    kids.push_back({pid, role, ch});
    if (cfg_.verbose)
      std::fprintf(stderr, "fleet: spawned %s pid=%d ch=%u plan=%s@%llu\n",
                   role_name(role), static_cast<int>(pid), ch,
                   to_string(plan.point),
                   static_cast<unsigned long long>(plan.at_op));
  };

  for (std::uint32_t ch = 0; ch < channels; ++ch) {
    if (cfg_.spawn_producers) spawn(Role::kProducer, ch, true);
    if (cfg_.spawn_consumers)
      for (std::uint32_t i = 0; i < cfg_.consumers_per_channel; ++i)
        spawn(Role::kConsumer, ch, true);
  }

  const std::uint64_t t0 = now_ns();
  const std::uint64_t watchdog_at = t0 + ms_to_ns(cfg_.deadline_ms);
  const std::uint64_t chaos_until =
      cfg_.chaos && cfg_.chaos_ms != 0 ? t0 + ms_to_ns(cfg_.chaos_ms) : 0;
  std::uint64_t next_kill =
      cfg_.chaos ? t0 + ms_to_ns(cfg_.kill_min_ms +
                                 rng.below(cfg_.kill_max_ms - cfg_.kill_min_ms + 1))
                 : ~0ull;
  bool chaos_active = cfg_.chaos;
  bool failed = false;

  auto stop_all_channels = [&]() {
    for (std::uint32_t ch = 0; ch < channels; ++ch) {
      seg.ctrl(ch).stop.store(1, std::memory_order_relaxed);
      seg.ctrl(ch).prod_doorbell.post();
      seg.ctrl(ch).cons_doorbell.post();
    }
  };

  auto kill_everything = [&]() {
    for (const Child& k : kids) ::kill(k.pid, SIGKILL);
    for (const Child& k : kids) {
      int st = 0;
      while (::waitpid(k.pid, &st, 0) < 0 && errno == EINTR) {
      }
      forget_child(k.pid);
    }
    kids.clear();
  };

  for (;;) {
    const std::uint64_t now = now_ns();

    if (interrupted && interrupted()) {
      kill_everything();
      res.interrupted = true;
      res.error = "interrupted";
      break;
    }
    if (now > watchdog_at) {
      kill_everything();
      res.error = "fleet watchdog expired: service hang";
      failed = true;
      break;
    }

    // Reap and restart.
    for (;;) {
      int st = 0;
      const pid_t pid = ::waitpid(-1, &st, WNOHANG);
      if (pid <= 0) break;
      forget_child(pid);
      auto it = std::find_if(kids.begin(), kids.end(),
                             [pid](const Child& k) { return k.pid == pid; });
      if (it == kids.end()) continue;
      const Child dead = *it;
      kids.erase(it);
      if (WIFEXITED(st) && WEXITSTATUS(st) == kWorkerOk) continue;
      if (WIFSIGNALED(st) && WTERMSIG(st) == SIGKILL) {
        // A chaos kill (ours or a self-inflicted crash plan): restart the
        // worker so the fleet always makes progress. New crash plans only
        // while the kill window is open.
        ++res.restarts;
        spawn(dead.role, dead.channel, chaos_active);
        continue;
      }
      res.error = std::string(role_name(dead.role)) + " ch=" +
                  std::to_string(dead.channel) + " failed: " +
                  (WIFEXITED(st)
                       ? "exit " + std::to_string(WEXITSTATUS(st))
                       : "signal " + std::to_string(WTERMSIG(st)));
      failed = true;
      break;
    }
    if (failed) {
      kill_everything();
      break;
    }

    // Chaos kills.
    if (chaos_active) {
      const bool window_over =
          (chaos_until != 0 && now >= chaos_until) ||
          (cfg_.chaos_max_kills != 0 && res.kills >= cfg_.chaos_max_kills);
      if (window_over) {
        chaos_active = false;
        stop_all_channels();
      } else if (now >= next_kill && !kids.empty()) {
        std::vector<const Child*> pool;
        for (const Child& k : kids)
          if (cfg_.victims == ChaosVictims::kAll || k.role == Role::kProducer)
            pool.push_back(&k);
        if (!pool.empty()) {
          const Child* victim = pool[rng.below(pool.size())];
          if (::kill(victim->pid, SIGKILL) == 0) ++res.kills;
        }
        next_kill = now + ms_to_ns(cfg_.kill_min_ms +
                                   rng.below(cfg_.kill_max_ms - cfg_.kill_min_ms + 1));
      }
    }

    // Completion: all workers exited cleanly and every channel is drained.
    if (kids.empty()) {
      bool done = true;
      for (std::uint32_t ch = 0; ch < channels && done; ++ch) {
        ChannelCtrl& c = seg.ctrl(ch);
        done = c.produce_done.load(std::memory_order_acquire) != 0 &&
               c.cons.load(std::memory_order_relaxed) >=
                   c.prod.load(std::memory_order_relaxed);
      }
      if (done) break;
      // Workers gone but work remains (e.g. consumers-only fleet waiting on
      // an external producer): for a spawning fleet this is unreachable
      // because kDone implies drained; keep waiting for external progress.
      if (cfg_.spawn_producers && cfg_.spawn_consumers) break;
    }

    timespec ts{0, 2000000};  // 2 ms supervision tick
    nanosleep(&ts, nullptr);
  }

  const std::uint64_t t1 = now_ns();
  res.seconds = static_cast<double>(t1 - t0) * 1e-9;

  if (!res.interrupted && !failed) {
    // Final recovery pass (force): mops up tickets whose claimant was
    // killed on the very last records, where no later waiter would have
    // triggered recovery organically.
    {
      Peer auditor(seg, Role::kNone);
      for (std::uint32_t ch = 0; ch < channels; ++ch)
        run_recovery(seg, ch, auditor.index(), /*force=*/true);
    }

    // Exact audit from the mark arrays.
    std::uint64_t hist[kLatencyBuckets] = {};
    std::uint64_t lat_count = 0;
    for (std::uint32_t ch = 0; ch < channels; ++ch) {
      ChannelCtrl& c = seg.ctrl(ch);
      ChannelAudit a;
      a.produced = c.prod.load(std::memory_order_relaxed);
      a.consumed = c.cons.load(std::memory_order_relaxed);
      const std::atomic<std::uint8_t>* marks = seg.marks(ch);
      for (std::uint64_t t = 0; t < h.records; ++t) {
        const std::uint8_t m = marks[t].load(std::memory_order_relaxed);
        const std::uint32_t del = m & 3u;
        const std::uint32_t gap = m >> 2;
        if (t < a.produced) {
          if (del >= 1) {
            ++a.delivered;
            if (del >= 2) ++a.duplicates;
          } else if (gap > 0) {
            ++a.gaps;
          } else {
            ++a.unmarked;
          }
        } else if (m != 0) {
          ++a.overmarks;
        }
      }
      a.generation = c.generation.load(std::memory_order_relaxed);
      a.recoveries = c.recoveries.load(std::memory_order_relaxed);
      a.gaps_tombstoned = c.gaps_tombstoned.load(std::memory_order_relaxed);
      a.gaps_reclaimed = c.gaps_reclaimed.load(std::memory_order_relaxed);
      a.intents_rescued = c.intents_rescued.load(std::memory_order_relaxed);
      a.slot_reclaims = c.slot_reclaims.load(std::memory_order_relaxed);
      a.seq_repairs = c.seq_repairs.load(std::memory_order_relaxed);
      a.lock_steals = c.lock_steals.load(std::memory_order_relaxed);
      a.peer_reclaims = c.peer_reclaims.load(std::memory_order_relaxed);
      a.barriers = c.barriers.load(std::memory_order_relaxed);
      a.full_barriers = c.full_barriers.load(std::memory_order_relaxed);
      a.futex_waits = c.futex_waits.load(std::memory_order_relaxed);
      a.identity_ok = a.delivered + a.gaps == a.produced &&
                      a.consumed == a.produced && a.duplicates == 0 &&
                      a.unmarked == 0 && a.overmarks == 0;
      res.produced += a.produced;
      res.delivered += a.delivered;
      res.gaps += a.gaps;
      res.duplicates += a.duplicates;
      res.barriers += a.barriers;
      res.full_barriers += a.full_barriers;
      res.futex_waits += a.futex_waits;
      for (std::size_t b = 0; b < kLatencyBuckets; ++b)
        hist[b] += c.latency_hist[b].load(std::memory_order_relaxed);
      lat_count += c.latency_count.load(std::memory_order_relaxed);
      res.channels.push_back(a);
    }
    (void)lat_count;
    res.p50_us = percentile_us(hist, 0.50);
    res.p99_us = percentile_us(hist, 0.99);
    res.p999_us = percentile_us(hist, 0.999);
    res.mps = res.seconds > 0 ? static_cast<double>(res.delivered) / res.seconds / 1e6
                              : 0.0;
    res.ok = !failed;
    for (const ChannelAudit& a : res.channels)
      if (!a.identity_ok) {
        res.ok = false;
        if (res.error.empty()) res.error = "delivery accounting identity violated";
      }
  }

  // Teardown: the owner unlinks; everyone optionally sweeps stale segments
  // (the chaos-teardown GC of the satellite task).
  if (owner) {
    seg.unlink();
    forget_segment(seg.shm_name());
  }
  if (cfg_.run_gc) {
    const GcStats gc = gc_stale_segments();
    res.gc_removed = gc.removed;
  }
  // Verify nothing of ours is left in /dev/shm (owner runs only).
  if (owner) {
    res.segments_clean = true;
    const std::string mine_prefix =
        "armbar." + current_user() + "." + std::to_string(::getpid()) + ".";
    if (DIR* d = ::opendir("/dev/shm")) {
      while (dirent* e = ::readdir(d))
        if (std::strncmp(e->d_name, mine_prefix.c_str(), mine_prefix.size()) == 0)
          res.segments_clean = false;
      ::closedir(d);
    }
  } else {
    res.segments_clean = true;
  }
  return res;
}

}  // namespace armbar::shmsvc
