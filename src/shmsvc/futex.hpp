// Futex-backed doorbells and bounded exponential backoff for the shared
// memory service (DESIGN.md §15).
//
// A FutexCell is a (word, sleepers) pair living *inside the shared
// segment*. Waiters snapshot the word, spin/yield briefly, then sleep in
// the kernel with an exponentially growing bounded timeout; posters bump
// the word and issue FUTEX_WAKE only when someone advertised themselves in
// `sleepers`, so the uncontended fast path is one relaxed fetch_add.
//
// Signal hardening (ISSUE 8 satellite): EINTR and EAGAIN from
// futex(FUTEX_WAIT) are *retryable* outcomes handled inside the wait loop —
// a SIGCHLD landing on the chaos supervisor or a doorbell racing the sleep
// must never surface as a fatal ARMBAR_CHECK.
//
// Every blocking wait in the service is built on Backoff::pause(), which
// additionally accumulates waited time toward a *lease*: when a waiter has
// been blocked for longer than the lease it returns true, telling the
// caller to run a liveness check / recovery pass instead of sleeping
// forever on a dead peer. That is the "bounded exponential backoff on all
// waits" guarantee: no wait path can sleep unboundedly without revalidating
// the world.
#pragma once

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <ctime>
#include <thread>

#include "common/check.hpp"

#if defined(__linux__)
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace armbar::shmsvc {

/// Monotonic host clock in nanoseconds. CLOCK_MONOTONIC is consistent
/// across processes on one machine, which is what cross-process latency
/// stamps and leases need.
inline std::uint64_t now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

/// Architecture pause hint for spin loops.
inline void cpu_relax() {
#if defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#elif defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

enum class WaitResult : std::uint8_t {
  kWoken,    ///< a poster issued FUTEX_WAKE
  kChanged,  ///< the word no longer matches the snapshot (no sleep needed)
  kTimeout,  ///< the bounded timeout expired
};

/// One shared-memory doorbell. Trivially layout-stable: two lock-free
/// 32-bit atomics, no constructors that matter across processes (segments
/// are zero-initialized at creation).
struct FutexCell {
  std::atomic<std::uint32_t> word{0};
  std::atomic<std::uint32_t> sleepers{0};

  std::uint32_t value() const { return word.load(std::memory_order_acquire); }

  /// Ring the doorbell: bump the word so concurrent snapshots go stale, and
  /// wake kernel sleepers only if any are advertised.
  void post() {
    word.fetch_add(1, std::memory_order_acq_rel);
    if (sleepers.load(std::memory_order_acquire) != 0) wake_all();
  }

  void wake_all() {
#if defined(__linux__)
    syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word), FUTEX_WAKE,
            INT32_MAX, nullptr, nullptr, 0);
#endif
  }

  /// Sleep until the word moves off `expected`, a wake arrives, or
  /// `timeout_ns` elapses. EINTR retries with the remaining budget; EAGAIN
  /// (word already changed in the kernel's atomic re-check) reports
  /// kChanged. `syscalls` (optional) counts actual kernel waits.
  WaitResult wait(std::uint32_t expected, std::uint64_t timeout_ns,
                  std::atomic<std::uint64_t>* syscalls = nullptr) {
    static_assert(sizeof(std::atomic<std::uint32_t>) == sizeof(std::uint32_t));
    if (word.load(std::memory_order_acquire) != expected) return WaitResult::kChanged;
    sleepers.fetch_add(1, std::memory_order_acq_rel);
    WaitResult r = WaitResult::kTimeout;
#if defined(__linux__)
    const std::uint64_t deadline = now_ns() + timeout_ns;
    for (;;) {
      const std::uint64_t t = now_ns();
      if (t >= deadline) break;  // r stays kTimeout
      const std::uint64_t left = deadline - t;
      timespec ts{static_cast<time_t>(left / 1000000000ull),
                  static_cast<long>(left % 1000000000ull)};
      if (syscalls != nullptr) syscalls->fetch_add(1, std::memory_order_relaxed);
      const long rc = syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(&word),
                              FUTEX_WAIT, expected, &ts, nullptr, 0);
      if (rc == 0) {
        r = WaitResult::kWoken;
        break;
      }
      const int e = errno;
      if (e == EAGAIN) {
        r = WaitResult::kChanged;
        break;
      }
      if (e == ETIMEDOUT) break;
      if (e == EINTR) {
        // A signal (SIGCHLD from a reaped worker, a profiler tick…)
        // interrupted the sleep. Retryable: loop with the remaining budget,
        // bailing early if the word already moved.
        if (word.load(std::memory_order_acquire) != expected) {
          r = WaitResult::kChanged;
          break;
        }
        continue;
      }
      ARMBAR_CHECK_MSG(false, "futex(FUTEX_WAIT) failed with unexpected errno");
    }
#else
    // Portable fallback: sliced sleeps polling the word.
    const std::uint64_t deadline = now_ns() + timeout_ns;
    while (now_ns() < deadline) {
      if (word.load(std::memory_order_acquire) != expected) {
        r = WaitResult::kChanged;
        break;
      }
      timespec ts{0, 200000};  // 0.2 ms slice
      nanosleep(&ts, nullptr);
    }
    (void)syscalls;
#endif
    sleepers.fetch_sub(1, std::memory_order_acq_rel);
    return r;
  }
};

/// Knobs for one Backoff progression. Defaults target sub-millisecond
/// reaction to normal traffic and ~100 ms leases for liveness checks.
struct BackoffTuning {
  std::uint32_t spins = 256;                  ///< busy spins before yielding
  std::uint32_t yields = 64;                  ///< sched_yields before sleeping
  std::uint64_t min_sleep_ns = 50 * 1000;     ///< first futex timeout
  std::uint64_t max_sleep_ns = 10 * 1000 * 1000;  ///< exponential cap
  std::uint64_t lease_ns = 100 * 1000 * 1000;     ///< liveness-check cadence
};

/// One wait progression: spin → yield → bounded exponential futex sleeps.
/// pause() returns true when accumulated blocked time since the last
/// reset_lease() crosses tuning.lease_ns — the caller must then verify peer
/// liveness (and possibly run recovery) before waiting further.
class Backoff {
 public:
  explicit Backoff(const BackoffTuning& tuning)
      : t_(tuning), sleep_ns_(tuning.min_sleep_ns) {}

  bool pause(FutexCell& cell, std::atomic<std::uint64_t>* syscalls = nullptr) {
    if (step_ < t_.spins) {
      ++step_;
      cpu_relax();
    } else if (step_ < t_.spins + t_.yields) {
      ++step_;
      std::this_thread::yield();
    } else {
      const std::uint32_t snap = cell.value();
      const std::uint64_t before = now_ns();
      cell.wait(snap, sleep_ns_, syscalls);
      waited_ns_ += now_ns() - before;
      sleep_ns_ = sleep_ns_ * 2 < t_.max_sleep_ns ? sleep_ns_ * 2 : t_.max_sleep_ns;
    }
    return waited_ns_ >= t_.lease_ns;
  }

  /// Progress observed (or recovery ran): restart the lease clock and the
  /// exponential progression.
  void reset_lease() {
    waited_ns_ = 0;
    sleep_ns_ = t_.min_sleep_ns;
    step_ = 0;
  }

  std::uint64_t waited_ns() const { return waited_ns_; }

 private:
  const BackoffTuning& t_;
  std::uint32_t step_ = 0;
  std::uint64_t sleep_ns_;
  std::uint64_t waited_ns_ = 0;
};

}  // namespace armbar::shmsvc
