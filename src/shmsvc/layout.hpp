// Shared-memory segment layout for the channel service (DESIGN.md §15).
//
// One segment = [SegmentHeader][PeerSlot x kMaxPeers][Channel x N] where a
// channel block is [ChannelCtrl][Slot x capacity][mark byte x records].
// Everything that is touched concurrently is a lock-free std::atomic of
// fixed width (address-free on every platform we build for), every hot
// structure is cacheline-aligned, and nothing in the segment is a pointer —
// processes may map it at different addresses.
//
// Attach-time validation (ISSUE 8 tentpole): the header carries a magic, a
// layout version, and a layout *hash* mixing the structural sizes with the
// run geometry (kind/channels/capacity/records). An attacher recomputes the
// hash from the header's own geometry fields and rejects on mismatch, so a
// stale segment from an older binary — or a half-written header from a
// creator killed mid-init (ready == 0) — can never be consumed.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "shmsvc/futex.hpp"

namespace armbar::shmsvc {

inline constexpr std::uint64_t kSegMagic = 0x41524d5342415231ull;  // "ARMSBAR1"
inline constexpr std::uint32_t kLayoutVersion = 2;

/// Peer registry capacity. 64 is far above any fleet we spawn; PeerSlot is
/// one cache line so the whole registry is 4 KiB.
inline constexpr std::uint32_t kMaxPeers = 64;
inline constexpr std::uint32_t kNoPeer = 0xffffffffu;

/// Payloads are 31-bit: the all-ones 32-bit pattern is the recovery
/// tombstone ("this ticket is a counted gap"), so real payloads are masked
/// to kPayloadMask and can never collide with it.
inline constexpr std::uint32_t kPayloadMask = 0x7fffffffu;
inline constexpr std::uint32_t kGapPayload = 0xffffffffu;

/// Delivery-mark encoding, one byte per ticket. fetch_add of the mark value
/// is the linearization point between a slow claimant and a recovery pass:
/// whoever sees old == 0 owns the ticket's accounting; the loser undoes its
/// add with fetch_sub. The values are chosen so a mark decodes as two
/// independent counters — delivered adds in bits [0,2), gap adds in bits
/// [2,8) — because an async SIGKILL can land between a loser's fetch_add
/// and its undoing fetch_sub, leaving both components standing. Decode:
///   a = m & 3 (standing delivered marks), b = m >> 2 (standing gap marks)
///   consumed  ⇔ a + b > 0      delivered ⇔ a >= 1      gap ⇔ a == 0, b > 0
///   duplicate ⇔ a >= 2  (two claimants both kept a delivered mark — the
///   one state no crash interleaving can produce; see DESIGN.md §15)
inline constexpr std::uint8_t kMarkDelivered = 1;
inline constexpr std::uint8_t kMarkGap = 4;

enum class ChannelKind : std::uint32_t {
  kLockQueue = 0,  ///< Q: one futex-backed lock around produce and consume
  kRing = 1,       ///< RB: lock-free seq-slot ring, DMB ld/st publication
  kPilotRing = 2,  ///< RB-P: Pilot piggybacked tag, no publish barrier
};

inline const char* to_string(ChannelKind k) {
  switch (k) {
    case ChannelKind::kLockQueue: return "q";
    case ChannelKind::kRing: return "rb";
    case ChannelKind::kPilotRing: return "rbp";
  }
  return "?";
}

/// Parses "q" / "rb" / "rbp"; returns false on anything else.
inline bool parse_kind(const std::string& s, ChannelKind* out) {
  if (s == "q") *out = ChannelKind::kLockQueue;
  else if (s == "rb") *out = ChannelKind::kRing;
  else if (s == "rbp") *out = ChannelKind::kPilotRing;
  else return false;
  return true;
}

enum class Role : std::uint32_t { kNone = 0, kProducer = 1, kConsumer = 2 };

/// One registered process. pid == 0 means free. `births` counts how many
/// registrations ever landed in the slot, so tests can observe reclamation.
/// `reclaim_mask` is a bitmap of channels whose recovery pass has processed
/// this peer's death: the registry slot is freed (pid → 0) only once every
/// channel's bit is set, so dead-peer evidence stays visible to each
/// channel's slot sweep exactly once.
struct alignas(kCacheLineBytes) PeerSlot {
  std::atomic<std::uint32_t> pid{0};
  std::atomic<std::uint32_t> role{0};
  std::atomic<std::uint64_t> heartbeat_ns{0};
  std::atomic<std::uint64_t> births{0};
  std::atomic<std::uint64_t> reclaim_mask{0};
};
static_assert(sizeof(PeerSlot) == kCacheLineBytes);

/// Latency histogram: log2(ns) buckets, enough for 1 ns .. 580 years.
inline constexpr std::size_t kLatencyBuckets = 64;

/// Per-channel control block. Hot producer state, hot consumer state, and
/// coordination/recovery state live on separate cache lines.
struct alignas(kCacheLineBytes) ChannelCtrl {
  // -- producer-hot line --------------------------------------------------
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> prod{0};
  /// Produce-intent journal: intent > prod means "record prod is mid-write".
  /// A successor producer (or a consumer recovering a dead producer)
  /// reconciles it: rescue if fully published, else tombstone as a gap.
  std::atomic<std::uint64_t> intent{0};
  std::atomic<std::uint32_t> producer_peer{kNoPeer};
  std::atomic<std::uint32_t> produce_done{0};

  // -- consumer-hot line --------------------------------------------------
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> cons{0};

  // -- coordination -------------------------------------------------------
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> generation{0};
  /// 0 = free, else (holder pid << 32) | low 32 bits of (peer index + 1).
  /// Stealable when the embedded pid is dead; carrying the pid in the word
  /// lets an attacher whose registry claim failed (registry full of dead
  /// churn) still run recovery to free slots. Encoding changes bump
  /// kLayoutVersion so mixed-build attaches are rejected.
  std::atomic<std::uint64_t> recovery_lock{0};
  /// Q-variant critical-section lock, same encoding and steal rule.
  std::atomic<std::uint64_t> qlock{0};
  /// Supervisor wind-down flag: producers finish() at the next op.
  std::atomic<std::uint32_t> stop{0};

  // -- recovery tallies (exact: bumped only under the recovery lock or at
  //    the mark linearization point) ---------------------------------------
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> recoveries{0};
  std::atomic<std::uint64_t> gaps_tombstoned{0};  ///< torn in-flight records
  std::atomic<std::uint64_t> gaps_reclaimed{0};   ///< dead-claimant tickets
  std::atomic<std::uint64_t> intents_rescued{0};  ///< published-but-unacked
  std::atomic<std::uint64_t> slot_reclaims{0};    ///< marked-but-unreleased
  std::atomic<std::uint64_t> seq_repairs{0};      ///< bad-parity seq words
  std::atomic<std::uint64_t> lock_steals{0};      ///< qlock/recovery steals
  std::atomic<std::uint64_t> peer_reclaims{0};    ///< dead registry slots

  // -- throughput/latency metrics (approximate across crashes; the exact
  //    accounting identity uses the mark array, not these) -----------------
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> delivered{0};
  std::atomic<std::uint64_t> gap_records{0};
  std::atomic<std::uint64_t> barriers{0};       ///< order-preserving ops retired
  std::atomic<std::uint64_t> full_barriers{0};  ///< the DMB-full subset
  std::atomic<std::uint64_t> futex_waits{0};    ///< kernel sleeps entered
  std::atomic<std::uint64_t> latency_sum_ns{0};
  std::atomic<std::uint64_t> latency_count{0};

  // -- doorbells ----------------------------------------------------------
  alignas(kCacheLineBytes) FutexCell cons_doorbell;  ///< producer → consumers
  alignas(kCacheLineBytes) FutexCell prod_doorbell;  ///< consumers → producer
  alignas(kCacheLineBytes) FutexCell lock_bell;      ///< qlock release wake

  alignas(kCacheLineBytes) std::atomic<std::uint64_t> latency_hist[kLatencyBuckets];
};

/// One ring slot. `seq` is the round protocol word: for slot i with round
/// r (r ≡ i mod capacity), seq == r means free for the producer, r + 1
/// means published, and the consumer releases it as r + capacity. Any seq
/// with (seq − i) mod capacity ∉ {0, 1} is torn state that recovery
/// repairs. `rec` packs (payload << 32 | low 32 bits of round + 1); RB-P
/// additionally XORs it with the slot's Pilot seed so the tag doubles as
/// the publication flag. `stamp` is the producer's publish time.
struct alignas(kCacheLineBytes) Slot {
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> rec{0};
  std::atomic<std::uint64_t> stamp{0};
};
static_assert(sizeof(Slot) == kCacheLineBytes);

/// Segment header. Plain (non-atomic) fields are written only by the
/// creator before the `ready` release-store; attachers read them only
/// after acquiring `ready != 0`.
struct alignas(kCacheLineBytes) SegmentHeader {
  std::uint64_t magic;
  std::uint32_t layout_version;
  std::uint32_t layout_hash;
  std::uint32_t kind;
  std::uint32_t channels;
  std::uint32_t capacity;  ///< slots per channel, power of two
  std::uint32_t creator_pid;
  std::uint64_t records;   ///< per-channel produce target = mark-array length
  std::uint64_t seed;      ///< Pilot hash-pool seed (each side derives locally)
  std::uint64_t total_bytes;
  std::atomic<std::uint32_t> ready;
};

inline constexpr std::uint64_t round_up(std::uint64_t x, std::uint64_t a) {
  return (x + a - 1) / a * a;
}

/// Derived offsets, all relative to the segment base.
struct Geometry {
  std::size_t peers_off = 0;
  std::size_t channel_base = 0;    ///< offset of channel block 0
  std::size_t channel_stride = 0;  ///< bytes per channel block
  std::size_t slots_off = 0;       ///< within a channel block
  std::size_t marks_off = 0;       ///< within a channel block
  std::size_t total = 0;

  static Geometry compute(std::uint32_t channels, std::uint32_t capacity,
                          std::uint64_t records) {
    Geometry g;
    g.peers_off = round_up(sizeof(SegmentHeader), kCacheLineBytes);
    g.channel_base = g.peers_off + sizeof(PeerSlot) * kMaxPeers;
    g.slots_off = round_up(sizeof(ChannelCtrl), kCacheLineBytes);
    g.marks_off = g.slots_off + sizeof(Slot) * capacity;
    g.channel_stride = round_up(g.marks_off + records, kCacheLineBytes);
    g.total = g.channel_base + g.channel_stride * channels;
    return g;
  }
};

/// FNV-1a over the structural sizes and the run geometry. Two binaries (or
/// two invocations) agree on this iff they would interpret every byte of
/// the segment identically.
inline std::uint32_t layout_hash(ChannelKind kind, std::uint32_t channels,
                                 std::uint32_t capacity, std::uint64_t records) {
  std::uint32_t h = 2166136261u;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<std::uint32_t>(v >> (i * 8)) & 0xffu;
      h *= 16777619u;
    }
  };
  mix(kLayoutVersion);
  mix(sizeof(SegmentHeader));
  mix(sizeof(PeerSlot));
  mix(sizeof(ChannelCtrl));
  mix(sizeof(Slot));
  mix(kMaxPeers);
  mix(kLatencyBuckets);
  mix(static_cast<std::uint64_t>(kind));
  mix(channels);
  mix(capacity);
  mix(records);
  return h;
}

static_assert(std::atomic<std::uint32_t>::is_always_lock_free);
static_assert(std::atomic<std::uint64_t>::is_always_lock_free);
static_assert(std::atomic<std::uint8_t>::is_always_lock_free);

}  // namespace armbar::shmsvc
