// Process-level service harness over the shm channels (DESIGN.md §15):
// worker entry points (re-exec'd producer/consumer processes), the Fleet
// supervisor that spawns/kills/restarts them, the post-run audit that turns
// the mark arrays into exact delivery accounting, and the emergency-cleanup
// registry that guarantees no orphaned children or segments on SIGINT/
// SIGTERM (ISSUE 8 satellite).
#pragma once

#include <sys/types.h>

#include <csignal>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "shmsvc/channel.hpp"
#include "shmsvc/seg.hpp"

namespace armbar::shmsvc {

// ---------------------------------------------------------------------------
// Worker processes

/// Everything a re-exec'd worker needs, carried on its argv.
struct WorkerOpts {
  std::string attach;  ///< full shm name
  Role role = Role::kConsumer;
  std::uint32_t channel = 0;
  std::uint64_t payload_seed = 0;
  ChannelTuning tuning{};
  CrashPlan crash{};
};

/// Worker exit codes the supervisor classifies on.
inline constexpr int kWorkerOk = 0;
inline constexpr int kWorkerStalled = 3;      ///< StallError: the hang detector
inline constexpr int kWorkerMisdelivery = 4;  ///< payload != payload_at(ticket)
inline constexpr int kWorkerAttachFailed = 5;

/// If argv contains "--role", runs the worker loop and returns its exit
/// code; returns -1 otherwise. Every tool calls this first so one binary
/// serves as both CLI and re-exec target.
int maybe_run_worker(int argc, char** argv);

/// Locates a sibling tool binary (same dir as /proc/self/exe, then ../tools
/// and deeper ancestors, then $ARMBAR_TOOL_DIR). Empty string if not found.
std::string find_tool(const std::string& name);

// ---------------------------------------------------------------------------
// Emergency cleanup (SIGINT/SIGTERM and runner-interrupt hardening)

/// Fleet registers every live child and segment here; emergency_cleanup()
/// SIGKILLs + reaps the children and unlinks the segments. Idempotent and
/// callable from the runner's interrupt-cleanup hook or a tool's signal
/// epilogue.
void register_live_child(pid_t pid);
void forget_child(pid_t pid);
void register_segment(const std::string& shm_name);
void forget_segment(const std::string& shm_name);
void emergency_cleanup();

/// Installs SIGINT/SIGTERM latching handlers and returns the flag they set
/// (the signal number). Tools poll it via Fleet's interrupt callback.
volatile std::sig_atomic_t* install_tool_signals();

// ---------------------------------------------------------------------------
// Fleet supervision

enum class ChaosVictims : std::uint8_t { kAll, kProducersOnly };

struct FleetConfig {
  SegmentConfig seg{};       ///< geometry (ignored when attaching)
  std::string attach;        ///< non-empty: attach instead of create
  bool spawn_producers = true;
  bool spawn_consumers = true;
  std::uint32_t consumers_per_channel = 2;
  ChannelTuning tuning{};
  std::string worker_bin;    ///< re-exec target; empty = /proc/self/exe
  std::uint64_t deadline_ms = 180000;  ///< global no-hang watchdog

  // Chaos (all zero/off for plain load runs):
  bool chaos = false;
  std::uint64_t chaos_seed = 1;
  std::uint64_t chaos_ms = 0;        ///< kill window; then stop+drain
  std::uint64_t chaos_max_kills = 0; ///< end the kill window early (0 = by time)
  std::uint32_t kill_min_ms = 120;
  std::uint32_t kill_max_ms = 280;
  /// Probability (percent) that a spawned worker carries an in-op crash
  /// plan (SIGKILL inside produce/consume) on top of supervisor kills.
  std::uint32_t crash_plan_pct = 50;
  ChaosVictims victims = ChaosVictims::kAll;
  bool run_gc = true;  ///< sweep stale segments during teardown
  bool verbose = false;
};

/// Exact per-channel accounting decoded from the mark array, plus the
/// recovery tallies. The identity that must hold after a drained run:
///   produced == delivered + gaps, cons == prod, duplicates == 0,
///   unmarked == 0, overmarks == 0.
struct ChannelAudit {
  std::uint64_t produced = 0;    ///< final prod counter
  std::uint64_t consumed = 0;    ///< final cons counter
  std::uint64_t delivered = 0;   ///< marks with a standing delivered component
  std::uint64_t gaps = 0;        ///< marks that are pure gap
  std::uint64_t duplicates = 0;  ///< marks with >= 2 delivered components
  std::uint64_t unmarked = 0;    ///< tickets < prod with mark 0
  std::uint64_t overmarks = 0;   ///< tickets >= prod with mark != 0
  std::uint64_t generation = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t gaps_tombstoned = 0;
  std::uint64_t gaps_reclaimed = 0;
  std::uint64_t intents_rescued = 0;
  std::uint64_t slot_reclaims = 0;
  std::uint64_t seq_repairs = 0;
  std::uint64_t lock_steals = 0;
  std::uint64_t peer_reclaims = 0;
  std::uint64_t barriers = 0;
  std::uint64_t full_barriers = 0;
  std::uint64_t futex_waits = 0;
  bool identity_ok = false;
};

struct FleetResult {
  bool ok = false;
  bool interrupted = false;
  std::string error;
  double seconds = 0.0;       ///< spawn → drained
  std::uint64_t produced = 0;
  std::uint64_t delivered = 0;
  std::uint64_t gaps = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t kills = 0;      ///< supervisor-sent SIGKILLs
  std::uint64_t restarts = 0;   ///< respawns after a signal death (cycles)
  std::uint64_t barriers = 0;
  std::uint64_t full_barriers = 0;
  std::uint64_t futex_waits = 0;
  double mps = 0.0;           ///< delivered records per second, millions
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
  std::vector<ChannelAudit> channels;
  int gc_removed = 0;
  bool segments_clean = false;  ///< no segment of ours left after teardown
};

/// Spawns, supervises, chaos-kills, restarts, drains, audits, and reclaims
/// one fleet. `interrupted` (optional) is polled every supervision tick;
/// returning true aborts the run with result.interrupted set (children are
/// killed and reaped, the segment is unlinked if owned).
class Fleet {
 public:
  explicit Fleet(FleetConfig cfg);
  FleetResult run(const std::function<bool()>& interrupted = {});

 private:
  FleetConfig cfg_;
};

}  // namespace armbar::shmsvc
