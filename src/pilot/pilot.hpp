// Pilot (paper §4.3): barrier-free single-word message passing.
//
// The expensive pattern in memory-based communication is
//
//     store data; DMB st; store flag
//
// where the barrier strictly follows a remote memory reference and exposes
// the whole drain latency (Observation 2). Pilot removes the barrier by
// *piggybacking the flag on the data*: the receiver detects a new message
// because the (shuffled) data word changed. 64-bit single-copy atomicity
// guarantees the receiver sees the whole word or nothing.
//
// Shuffling: the sender XORs each message with a pseudo-random seed from a
// pool both sides share, so consecutive equal messages still (almost
// always) produce different words. The corner case where the shuffled word
// collides with the previous one falls back to toggling a separate flag
// word (Algorithm 3 line 2-3 / Algorithm 4 line 2-4).
//
// Flow control is the caller's job: this is a 1-slot channel, so a second
// send before the matching receive overwrites the first message. The ring
// buffer (src/spsc/pilot_ring.hpp) and the delegation locks (src/locks)
// provide the bounded-buffer counters the paper keeps for that purpose.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace armbar::pilot {

/// Shared seed pool. Sender and receiver must construct it with the same
/// seed and size. The pool is derived purely from (seed, size) — no shared
/// state — so it also works cross-process: the shmsvc channels stamp the
/// seed into the segment header and every attaching process rebuilds an
/// identical pool locally (the pool itself never lives in shared memory).
class HashPool {
 public:
  explicit HashPool(std::uint64_t seed = 0x9e3779b97f4a7c15ULL,
                    std::size_t size = 64)
      : seeds_(size) {
    ARMBAR_CHECK(size > 0);
    Rng rng(seed);
    for (auto& s : seeds_) {
      // Zero seeds would disable shuffling for that slot; skip them.
      do {
        s = rng.next();
      } while (s == 0);
    }
  }

  std::uint64_t at(std::uint64_t i) const { return seeds_[i % seeds_.size()]; }
  std::size_t size() const { return seeds_.size(); }

 private:
  std::vector<std::uint64_t> seeds_;
};

/// The shared memory of one Pilot channel: one cache line holding the
/// piggybacked data word and the fallback flag word.
struct alignas(kCacheLineBytes) PilotSlot {
  std::atomic<std::uint64_t> data{0};
  std::atomic<std::uint64_t> flag{0};
};
static_assert(sizeof(PilotSlot) == kCacheLineBytes);

/// Sender half (Algorithm 3). Single producer.
class PilotSender {
 public:
  PilotSender(PilotSlot& slot, const HashPool& pool) : slot_(slot), pool_(pool) {}

  /// Publish a 64-bit message. No barrier: one single-copy-atomic store.
  void send(std::uint64_t value) {
    const std::uint64_t shuffled = value ^ pool_.at(cnt_++);
    if (shuffled == old_data_) {
      // Fallback: the shuffled word collides with the previous one, so a
      // data store would be invisible; toggle the flag word instead.
      flag_ ^= 1;
      slot_.flag.store(flag_, std::memory_order_relaxed);
    } else {
      slot_.data.store(shuffled, std::memory_order_relaxed);
      old_data_ = shuffled;
    }
  }

 private:
  PilotSlot& slot_;
  const HashPool& pool_;
  std::uint64_t old_data_ = 0;
  std::uint64_t flag_ = 0;
  std::uint64_t cnt_ = 0;
};

/// Receiver half (Algorithm 4). Single consumer.
class PilotReceiver {
 public:
  PilotReceiver(const PilotSlot& slot, const HashPool& pool)
      : slot_(slot), pool_(pool) {}

  /// True if a new message is available (non-blocking probe).
  bool poll() const {
    return slot_.data.load(std::memory_order_relaxed) != old_data_ ||
           slot_.flag.load(std::memory_order_relaxed) != old_flag_;
  }

  /// Spin until the next message arrives and return it. Yields periodically
  /// so oversubscribed hosts (fewer cores than threads) make progress.
  std::uint64_t receive() {
    for (unsigned spins = 0;; ++spins) {
      const std::uint64_t d = slot_.data.load(std::memory_order_relaxed);
      if (d != old_data_) {
        old_data_ = d;
        break;
      }
      const std::uint64_t f = slot_.flag.load(std::memory_order_relaxed);
      if (f != old_flag_) {
        // Fallback path: the new message shuffles to exactly the previous
        // word, which old_data_ already holds.
        old_flag_ = f;
        break;
      }
      if ((spins & 0x3f) == 0x3f) std::this_thread::yield();
    }
    return old_data_ ^ pool_.at(cnt_++);
  }

 private:
  const PilotSlot& slot_;
  const HashPool& pool_;
  std::uint64_t old_data_ = 0;
  std::uint64_t old_flag_ = 0;
  std::uint64_t cnt_ = 0;
};

/// A multi-word Pilot channel (paper Fig 6c): Pilot applied to every
/// 64-bit slice of a batched message. Each slice gets its own slot and
/// its own position in the seed stream.
class PilotBatchChannel {
 public:
  explicit PilotBatchChannel(std::size_t words, std::uint64_t seed = 1)
      : pool_(seed), slots_(words) {
    senders_.reserve(words);
    receivers_.reserve(words);
    for (std::size_t i = 0; i < words; ++i) {
      senders_.emplace_back(slots_[i], pool_);
      receivers_.emplace_back(slots_[i], pool_);
    }
  }

  std::size_t words() const { return slots_.size(); }

  /// Publish a batch; msg.size() must equal words().
  void send(std::span<const std::uint64_t> msg) {
    ARMBAR_CHECK(msg.size() == slots_.size());
    for (std::size_t i = 0; i < msg.size(); ++i) senders_[i].send(msg[i]);
  }

  /// Blocking receive of a full batch.
  void receive(std::span<std::uint64_t> out) {
    ARMBAR_CHECK(out.size() == slots_.size());
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = receivers_[i].receive();
  }

 private:
  HashPool pool_;
  std::vector<PilotSlot> slots_;
  std::vector<PilotSender> senders_;
  std::vector<PilotReceiver> receivers_;
};

}  // namespace armbar::pilot
