// Branch-and-bound floorplanner in the shape of BOTS `floorplan` (paper
// Fig 8d): compute the minimum-area placement of N cells, each with
// several alternative shapes, onto a plane where every cell must abut the
// already-placed structure.
//
// The shared best-solution record is the only cross-thread state; it is
// guarded by a pluggable Executor, which is exactly where the paper swaps
// Ticket / DSMSynch / DSMSynch-Pilot. The lock is *off* the hot path (the
// hot path is the recursive search with an atomic snapshot for pruning), so
// the expected improvement from Pilot is small — that is Fig 8(d)'s point.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "locks/delegation.hpp"

namespace armbar::floorplan {

/// One cell: a set of alternative (width, height) shapes.
struct Cell {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> shapes;
};

/// A placed rectangle (for solution reporting).
struct Placement {
  std::uint32_t x = 0, y = 0, w = 0, h = 0;
};

/// Deterministic problem generator: `n` cells with 2-3 shape alternatives
/// each. `n` plays the role of the BOTS input size (input.5/15/20).
std::vector<Cell> make_cells(std::size_t n, std::uint64_t seed);

struct Result {
  std::uint64_t best_area = ~0ULL;
  std::vector<Placement> placements;   ///< one per cell, in input order
  std::uint64_t nodes_explored = 0;    ///< search-tree accounting
  std::uint64_t best_updates = 0;      ///< critical sections executed
  double seconds = 0;
};

/// Solve with `threads` workers sharing the best-solution record through
/// `best_lock`. Deterministic result area (the search is exhaustive).
Result solve(const std::vector<Cell>& cells, locks::Executor& best_lock,
             unsigned threads);

/// Single-threaded reference solver (no locking) for verification.
Result solve_sequential(const std::vector<Cell>& cells);

}  // namespace armbar::floorplan
