#include "floorplan/floorplan.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "locks/ticket_lock.hpp"

namespace armbar::floorplan {

std::vector<Cell> make_cells(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Cell> cells(n);
  for (auto& c : cells) {
    const std::size_t alts = 2 + rng.below(2);
    for (std::size_t a = 0; a < alts; ++a) {
      const auto w = static_cast<std::uint32_t>(1 + rng.below(4));
      const auto h = static_cast<std::uint32_t>(1 + rng.below(4));
      c.shapes.emplace_back(w, h);
    }
  }
  return cells;
}

namespace {

/// Shared best-solution record; updated only inside the critical section.
struct Best {
  std::atomic<std::uint64_t> area{~0ULL};  ///< snapshot for lock-free pruning
  std::vector<Placement> placements;
  std::uint64_t updates = 0;
};

/// Critical-section payload: candidate solution proposed by a worker.
struct Proposal {
  Best* best;
  std::uint64_t area;
  const std::vector<Placement>* placements;
};

std::uint64_t commit_best_cs(void* ctx, std::uint64_t) {
  auto* p = static_cast<Proposal*>(ctx);
  Best& b = *p->best;
  // Re-check under the lock: another worker may have done better.
  if (p->area < b.area.load(std::memory_order_relaxed)) {
    b.placements = *p->placements;
    ++b.updates;
    b.area.store(p->area, std::memory_order_relaxed);
    return 1;
  }
  return 0;
}

struct SearchState {
  const std::vector<Cell>* cells;
  Best* best;
  locks::Executor* lock;
  std::uint64_t nodes = 0;

  std::vector<Placement> placed;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> anchors;

  bool overlaps(std::uint32_t x, std::uint32_t y, std::uint32_t w,
                std::uint32_t h) const {
    for (const auto& p : placed) {
      if (x < p.x + p.w && p.x < x + w && y < p.y + p.h && p.y < y + h)
        return true;
    }
    return false;
  }

  std::uint64_t bounding_area(std::uint32_t extra_x, std::uint32_t extra_y) const {
    std::uint32_t mx = extra_x, my = extra_y;
    for (const auto& p : placed) {
      mx = std::max(mx, p.x + p.w);
      my = std::max(my, p.y + p.h);
    }
    return static_cast<std::uint64_t>(mx) * my;
  }

  void recurse(std::size_t cell_idx) {
    ++nodes;
    const auto& cells_ref = *cells;
    if (cell_idx == cells_ref.size()) {
      const std::uint64_t area = bounding_area(0, 0);
      if (area < best->area.load(std::memory_order_relaxed)) {
        Proposal prop{best, area, &placed};
        lock->execute(&commit_best_cs, &prop, 0);
      }
      return;
    }
    const Cell& cell = cells_ref[cell_idx];
    // Try every anchor x every shape alternative.
    const std::size_t num_anchors = anchors.size();
    for (std::size_t ai = 0; ai < num_anchors; ++ai) {
      const auto [ax, ay] = anchors[ai];
      for (const auto& [w, h] : cell.shapes) {
        if (overlaps(ax, ay, w, h)) continue;
        // Prune: even before placing the rest, the bounding area must beat
        // the best known solution.
        if (bounding_area(ax + w, ay + h) >=
            best->area.load(std::memory_order_relaxed))
          continue;
        placed.push_back({ax, ay, w, h});
        // New anchors at the fresh corners (skyline-style packing).
        anchors.push_back({ax + w, ay});
        anchors.push_back({ax, ay + h});
        std::swap(anchors[ai], anchors[num_anchors + 1]);  // consume anchor
        recurse(cell_idx + 1);
        std::swap(anchors[ai], anchors[num_anchors + 1]);
        anchors.pop_back();
        anchors.pop_back();
        placed.pop_back();
      }
    }
  }
};

}  // namespace

Result solve(const std::vector<Cell>& cells, locks::Executor& best_lock,
             unsigned threads) {
  ARMBAR_CHECK(!cells.empty() && threads >= 1);
  Best best;

  // Top-level work units: the shape choice of cell 0 (placed at the
  // origin) x the shape choice of cell 1. Workers claim units from an
  // atomic counter.
  struct Unit {
    std::size_t shape0, shape1;
  };
  std::vector<Unit> units;
  for (std::size_t s0 = 0; s0 < cells[0].shapes.size(); ++s0) {
    if (cells.size() == 1) {
      units.push_back({s0, 0});
      continue;
    }
    for (std::size_t s1 = 0; s1 < cells[1].shapes.size(); ++s1)
      units.push_back({s0, s1});
  }

  std::atomic<std::size_t> next_unit{0};
  std::atomic<std::uint64_t> total_nodes{0};

  const auto t0 = std::chrono::steady_clock::now();
  auto worker = [&] {
    for (;;) {
      const std::size_t u = next_unit.fetch_add(1, std::memory_order_relaxed);
      if (u >= units.size()) break;
      SearchState st;
      st.cells = &cells;
      st.best = &best;
      st.lock = &best_lock;

      const auto [w0, h0] = cells[0].shapes[units[u].shape0];
      st.placed.push_back({0, 0, w0, h0});
      st.anchors.push_back({w0, 0});
      st.anchors.push_back({0, h0});
      if (cells.size() == 1) {
        st.recurse(1);
      } else {
        const auto [w1, h1] = cells[1].shapes[units[u].shape1];
        bool advanced = false;
        const std::size_t n_anchors = st.anchors.size();
        for (std::size_t ai = 0; ai < n_anchors; ++ai) {
          const auto [ax, ay] = st.anchors[ai];
          if (st.overlaps(ax, ay, w1, h1)) continue;
          st.placed.push_back({ax, ay, w1, h1});
          st.anchors.push_back({ax + w1, ay});
          st.anchors.push_back({ax, ay + h1});
          std::swap(st.anchors[ai], st.anchors[n_anchors + 1]);
          st.recurse(2);
          std::swap(st.anchors[ai], st.anchors[n_anchors + 1]);
          st.anchors.pop_back();
          st.anchors.pop_back();
          st.placed.pop_back();
          advanced = true;
        }
        (void)advanced;
      }
      total_nodes.fetch_add(st.nodes, std::memory_order_relaxed);
    }
  };

  std::vector<std::thread> pool;
  for (unsigned t = 1; t < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& th : pool) th.join();
  const auto t1 = std::chrono::steady_clock::now();

  Result res;
  res.best_area = best.area.load(std::memory_order_relaxed);
  res.placements = best.placements;
  res.nodes_explored = total_nodes.load(std::memory_order_relaxed);
  res.best_updates = best.updates;
  res.seconds = std::chrono::duration<double>(t1 - t0).count();
  return res;
}

Result solve_sequential(const std::vector<Cell>& cells) {
  locks::TicketLock lock;
  return solve(cells, lock, 1);
}

}  // namespace armbar::floorplan
