#include "lockver/templates.hpp"

#include "common/check.hpp"
#include "sim/program.hpp"

namespace armbar::lockver {

using sim::Asm;
using namespace sim;

const char* to_string(LockFamily f) {
  switch (f) {
    case LockFamily::kTicket: return "ticket";
    case LockFamily::kCna: return "cna";
    case LockFamily::kFfwd: return "ffwd";
  }
  return "?";
}

const char* to_string(Strength s) {
  return s == Strength::kStrong ? "strong" : "weakened";
}

const char* to_string(PlantedBug b) {
  switch (b) {
    case PlantedBug::kNone: return "none";
    case PlantedBug::kDropAcquire: return "drop-acquire";
    case PlantedBug::kDropRelease: return "drop-release";
    case PlantedBug::kDowngradeDmb: return "downgrade-dmb";
  }
  return "?";
}

bool family_from_string(const std::string& s, LockFamily* out) {
  for (LockFamily f :
       {LockFamily::kTicket, LockFamily::kCna, LockFamily::kFfwd}) {
    if (s == to_string(f)) {
      *out = f;
      return true;
    }
  }
  return false;
}

bool strength_from_string(const std::string& s, Strength* out) {
  for (Strength v : {Strength::kStrong, Strength::kWeakened}) {
    if (s == to_string(v)) {
      *out = v;
      return true;
    }
  }
  return false;
}

bool planted_from_string(const std::string& s, PlantedBug* out) {
  for (PlantedBug v : {PlantedBug::kNone, PlantedBug::kDropAcquire,
                       PlantedBug::kDropRelease, PlantedBug::kDowngradeDmb}) {
    if (s == to_string(v)) {
      *out = v;
      return true;
    }
  }
  return false;
}

namespace {

// Emission helpers. Each returns the number of standalone dmb/dsb
// instructions it contributed, so LockScenario::handoff_dmbs stays an
// exact static count of the variant's barrier cost.

/// Grant/flag read with the acquire edge: rd <- [rn]. kStrong uses a plain
/// load followed by `dmb ish`; kWeakened uses LDAR. `dropped` removes the
/// edge entirely (plain load).
std::uint32_t emit_acquire_read(Asm& a, Reg rd, Reg rn, Strength s,
                                bool dropped) {
  if (dropped) {
    a.ldr(rd, rn);
    return 0;
  }
  if (s == Strength::kWeakened) {
    a.ldar(rd, rn);
    return 0;
  }
  a.ldr(rd, rn);
  a.dmb_full();
  return 1;
}

/// Grant store with the release edge: [rn] <- rs. kStrong: `dmb ish` then
/// a plain store; kWeakened: STLR. Planted bugs: kDropRelease removes the
/// edge (plain store); kDowngradeDmb substitutes `dmb st`, which orders
/// the critical section's *stores* but not its *loads* before the grant —
/// the classic insufficient release the ticket-unlock full barrier exists
/// to prevent.
std::uint32_t emit_release_store(Asm& a, Reg rs, Reg rn, Strength s,
                                 PlantedBug b) {
  if (b == PlantedBug::kDropRelease) {
    a.str(rs, rn);
    return 0;
  }
  if (b == PlantedBug::kDowngradeDmb) {
    a.dmb_st();
    a.str(rs, rn);
    return 1;
  }
  if (s == Strength::kWeakened) {
    a.stlr(rs, rn);
    return 0;
  }
  a.dmb_full();
  a.str(rs, rn);
  return 1;
}

// ---------------- ticket ----------------
//
// Pre-assigned tickets: T0 holds (ticket 0), T1 waits on grant 1, T2 on
// grant 2. T0's critical section writes D1 and *reads* D2 — the read is
// what makes a store-only release barrier insufficient. T1's critical
// section writes D2 (so a CS overlap is visible as T0 reading 7) and
// re-publishes now-serving. T2 samples now-serving and reads both data
// words, checking handoff visibility and FIFO transitivity through the
// T0 -> T1 -> T2 grant chain.
//
// Outcome tuple: [rA = T0:[D2], rS = T1:[S], rT = T2:[S],
//                 rD1 = T2:[D1], rD2 = T2:[D2]].
constexpr Addr kTS = 0x100;   // now-serving
constexpr Addr kTD1 = 0x140;  // CS data written by T0
constexpr Addr kTD2 = 0x180;  // CS data written by T1, read by T0's CS

LockScenario make_ticket(Strength s, PlantedBug b) {
  LockScenario sc;
  std::uint32_t dmbs = 0;

  {  // T0: holder. CS = {str D1=1; ldr rA <- D2}; release; S=1.
    Asm a;
    a.movi(X1, kTD1).movi(X2, 1).str(X2, X1);
    a.movi(X3, kTD2).ldr(X4, X3);
    a.movi(X5, kTS).movi(X6, 1);
    dmbs += emit_release_store(a, X6, X5, s, b);
    a.halt();
    sc.prog.threads.push_back(a.take("ticket-t0"));
  }
  {  // T1: waiter with ticket 1. Grant sample, guarded CS, release S=2.
    Asm a;
    a.movi(X1, kTS);
    emit_acquire_read(a, X2, X1, s, b == PlantedBug::kDropAcquire);
    a.cmpi(X2, 1).bne("skip");
    a.movi(X3, kTD2).movi(X4, 7).str(X4, X3);
    a.movi(X5, 2);
    emit_release_store(a, X5, X1, s, b);
    a.label("skip").halt();
    sc.prog.threads.push_back(a.take("ticket-t1"));
  }
  {  // T2: waiter with ticket 2 (observer of the whole grant chain).
    Asm a;
    a.movi(X1, kTS);
    dmbs += emit_acquire_read(a, X2, X1, s, b == PlantedBug::kDropAcquire);
    a.movi(X3, kTD1).ldr(X4, X3);
    a.movi(X5, kTD2).ldr(X6, X5);
    a.halt();
    sc.prog.threads.push_back(a.take("ticket-t2"));
  }

  sc.prog.init = {{kTS, 0}, {kTD1, 0}, {kTD2, 0}};
  sc.prog.observe_regs = {{0, X4}, {1, X2}, {2, X2}, {2, X4}, {2, X6}};
  sc.handoff_dmbs = dmbs;

  sc.invariants.push_back(
      {"mutual-exclusion",
       "T0's in-CS read of D2 saw T1's CS write (rA == 7): the release "
       "edge let now-serving become visible before the CS finished, so "
       "two critical sections overlapped",
       [](const model::Outcome& o) { return o[0] == 7; }});
  sc.invariants.push_back(
      {"handoff-visibility",
       "a granted waiter (rT >= 1) missed the previous holder's CS write "
       "(rD1 != 1): acquire/release edges on the grant word are broken",
       [](const model::Outcome& o) { return o[2] >= 1 && o[3] != 1; }});
  sc.invariants.push_back(
      {"fifo-fairness",
       "the ticket-2 waiter (rT == 2) missed part of the CS history "
       "(rD1 != 1 or rD2 != 7): grant transitivity through the FIFO "
       "chain T0 -> T1 -> T2 failed",
       [](const model::Outcome& o) {
         return o[2] == 2 && (o[3] != 1 || o[4] != 7);
       }});
  return sc;
}

// ---------------- CNA ----------------
//
// T0 is the holder unlocking to T1's node: it writes its CS data, writes
// the successor's secondary-queue field (the holder-owned state CNA
// transfers through the handoff), reads the published `next` link and
// dereferences it with an address dependency (the unlocker's queue scan),
// then stores the grant. T1 is the granted waiter: it must see both the
// CS data and the transferred queue state; its own CS write of D2 feeds
// T0's overlap probe. T2 is a concurrent enqueuer publishing its node
// with the mandatory `dmb st` before linking.
//
// Outcome tuple: [rA = T0:[D2], rL = T0:[LINK], rN = T0:[NODE],
//                 rSp = T1:[SPIN], rSec = T1:[SEC], rD = T1:[D1]].
constexpr Addr kCSpin = 0x100;  // grant word in T1's node
constexpr Addr kCSec = 0x140;   // secondary-queue field in T1's node
constexpr Addr kCD1 = 0x180;    // CS data written by T0
constexpr Addr kCD2 = 0x1c0;    // CS data written by T1, read by T0's CS
constexpr Addr kCNode = 0x200;  // T2's node body
constexpr Addr kCLink = 0x240;  // T2's published next pointer

LockScenario make_cna(Strength s, PlantedBug b) {
  LockScenario sc;
  std::uint32_t dmbs = 0;

  {  // T0: holder. CS, queue-state transfer, queue scan, grant.
    Asm a;
    a.movi(X1, kCD1).movi(X2, 1).str(X2, X1);
    a.movi(X3, kCD2).ldr(X4, X3);
    a.movi(X5, kCSec).movi(X6, 42).str(X6, X5);
    // Queue scan: read the link, dereference the node through an address
    // dependency (both strengths — dependencies are free).
    a.movi(X7, kCLink).ldr(X8, X7);
    a.eor(X9, X8, X8);
    a.movi(X10, kCNode).add(X10, X10, X9).ldr(X11, X10);
    a.movi(X12, kCSpin).movi(X13, 1);
    dmbs += emit_release_store(a, X13, X12, s, b);
    a.halt();
    sc.prog.threads.push_back(a.take("cna-t0"));
  }
  {  // T1: granted waiter; reads queue state + CS data, writes its CS.
    Asm a;
    a.movi(X1, kCSpin);
    dmbs += emit_acquire_read(a, X2, X1, s, b == PlantedBug::kDropAcquire);
    a.cmpi(X2, 1).bne("skip");
    a.movi(X3, kCSec).ldr(X4, X3);
    a.movi(X5, kCD1).ldr(X6, X5);
    a.movi(X7, kCD2).movi(X8, 7).str(X8, X7);
    a.label("skip").halt();
    sc.prog.threads.push_back(a.take("cna-t1"));
  }
  {  // T2: enqueuer. Node init, dmb st, link publication (fixed edges).
    Asm a;
    a.movi(X1, kCNode).movi(X2, 1).str(X2, X1);
    a.dmb_st();
    a.movi(X3, kCLink).movi(X4, 1).str(X4, X3);
    a.halt();
    sc.prog.threads.push_back(a.take("cna-t2"));
  }

  sc.prog.init = {{kCSpin, 0}, {kCSec, 0},  {kCD1, 0},
                  {kCD2, 0},   {kCNode, 0}, {kCLink, 0}};
  sc.prog.observe_regs = {{0, X4}, {0, X8}, {0, X11},
                          {1, X2}, {1, X4}, {1, X6}};
  sc.handoff_dmbs = dmbs;

  sc.invariants.push_back(
      {"mutual-exclusion",
       "the holder's in-CS read of D2 saw the successor's CS write "
       "(rA == 7): the grant became visible before the CS completed",
       [](const model::Outcome& o) { return o[0] == 7; }});
  sc.invariants.push_back(
      {"queue-state-transfer",
       "a granted waiter (rSp == 1) missed the holder's CS write or the "
       "transferred secondary-queue state (rD != 1 or rSec != 42): the "
       "handoff's release/acquire edges are broken",
       [](const model::Outcome& o) {
         return o[3] == 1 && (o[4] != 42 || o[5] != 1);
       }});
  sc.invariants.push_back(
      {"enqueue-publication",
       "the unlocker followed a published next link (rL == 1) to an "
       "uninitialized node (rN != 1): the enqueue-side dmb st or the "
       "scan's address dependency is broken",
       [](const model::Outcome& o) { return o[1] == 1 && o[2] != 1; }});
  return sc;
}

// ---------------- FFWD ----------------
//
// One client round trip against the dedicated server (Algorithm 5): the
// client publishes {arg, request-flag} with the fixed client-side
// `dmb st`, then polls the response flag and reads the return value. The
// server samples the request flag (line-4 acquire edge: dmb full strong,
// LDAR weakened), reads the argument, runs the CS, and publishes
// {return, response-flag} across the line-7 release edge (dmb full
// strong, `dmb st` weakened — a store->store path, which is exactly why
// the paper's Table 3 can weaken it).
//
// Outcome tuple: [rF = T0:[RESP], rV = T0:[RET],
//                 rR = T1:[REQ],  rArg = T1:[ARG]].
constexpr Addr kFReq = 0x100;
constexpr Addr kFArg = 0x140;
constexpr Addr kFRet = 0x180;
constexpr Addr kFResp = 0x1c0;

LockScenario make_ffwd(Strength s, PlantedBug b) {
  LockScenario sc;
  std::uint32_t dmbs = 0;

  {  // T0: client. Request publication (fixed), response poll (clean
     // acquire edge in both strengths; server-side bugs only).
    Asm a;
    a.movi(X1, kFArg).movi(X2, 9).str(X2, X1);
    a.dmb_st();
    a.movi(X3, kFReq).movi(X4, 1).str(X4, X3);
    a.movi(X5, kFResp);
    dmbs += emit_acquire_read(a, X6, X5, s, /*dropped=*/false);
    a.movi(X7, kFRet).ldr(X8, X7);
    a.halt();
    sc.prog.threads.push_back(a.take("ffwd-client"));
  }
  {  // T1: server. Line-4 acquire edge, CS, line-7 release edge.
    Asm a;
    a.movi(X1, kFReq);
    dmbs += emit_acquire_read(a, X2, X1, s, b == PlantedBug::kDropAcquire);
    a.movi(X3, kFArg).ldr(X4, X3);
    a.cmpi(X2, 1).bne("skip");
    a.movi(X5, kFRet).movi(X6, 7).str(X6, X5);
    switch (b) {
      case PlantedBug::kDropRelease:
        break;  // no edge at all
      case PlantedBug::kDowngradeDmb:
        a.dmb_ld();  // wrong-direction barrier: orders loads, not stores
        ++dmbs;
        break;
      default:
        if (s == Strength::kWeakened) {
          a.dmb_st();  // Table 3: the response path is store -> store
        } else {
          a.dmb_full();
        }
        ++dmbs;
        break;
    }
    a.movi(X7, kFResp).movi(X8, 1).str(X8, X7);
    a.label("skip").halt();
    sc.prog.threads.push_back(a.take("ffwd-server"));
  }

  sc.prog.init = {{kFReq, 0}, {kFArg, 0}, {kFRet, 0}, {kFResp, 0}};
  sc.prog.observe_regs = {{0, X6}, {0, X8}, {1, X2}, {1, X4}};
  sc.handoff_dmbs = dmbs;

  sc.invariants.push_back(
      {"request-payload",
       "the server saw the request flag (rR == 1) but not the argument "
       "(rArg != 9): the line-4 acquire edge is broken, so the critical "
       "section can run on stale inputs",
       [](const model::Outcome& o) { return o[2] == 1 && o[3] != 9; }});
  sc.invariants.push_back(
      {"response-payload",
       "the client saw the response flag (rF == 1) but not the return "
       "value (rV != 7): the line-7 release edge is broken",
       [](const model::Outcome& o) { return o[0] == 1 && o[1] != 7; }});
  return sc;
}

}  // namespace

LockScenario make_scenario(LockFamily f, Strength s, PlantedBug b) {
  LockScenario sc;
  switch (f) {
    case LockFamily::kTicket: sc = make_ticket(s, b); break;
    case LockFamily::kCna: sc = make_cna(s, b); break;
    case LockFamily::kFfwd: sc = make_ffwd(s, b); break;
  }
  sc.family = f;
  sc.strength = s;
  sc.planted = b;
  sc.name = std::string(to_string(f)) + "/" + to_string(s);
  if (b != PlantedBug::kNone) sc.name += std::string("+") + to_string(b);
  sc.prog.name = "lockver/" + sc.name;
  return sc;
}

std::vector<LockScenario> all_clean_scenarios() {
  std::vector<LockScenario> out;
  for (LockFamily f :
       {LockFamily::kTicket, LockFamily::kCna, LockFamily::kFfwd})
    for (Strength s : {Strength::kStrong, Strength::kWeakened})
      out.push_back(make_scenario(f, s));
  return out;
}

bool scenario_by_name(const std::string& name, LockScenario* out) {
  const std::size_t slash = name.find('/');
  if (slash == std::string::npos) return false;
  const std::size_t plus = name.find('+', slash);
  LockFamily f;
  Strength s;
  PlantedBug b = PlantedBug::kNone;
  if (!family_from_string(name.substr(0, slash), &f)) return false;
  const std::string strength =
      plus == std::string::npos ? name.substr(slash + 1)
                                : name.substr(slash + 1, plus - slash - 1);
  if (!strength_from_string(strength, &s)) return false;
  if (plus != std::string::npos &&
      !planted_from_string(name.substr(plus + 1), &b))
    return false;
  *out = make_scenario(f, s, b);
  return true;
}

}  // namespace armbar::lockver
