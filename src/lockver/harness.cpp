#include "lockver/harness.hpp"

#include <sstream>

#include "sim/platform.hpp"

namespace armbar::lockver {

namespace {

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Shared by verify() and replay_lock_bundle(): the verdict is a pure
/// function of (program, invariants, diff grid, crosscheck flag), so a
/// bundle replays bit-exactly from its own payload.
VerifyResult verify_impl(const model::ConcurrentProgram& prog,
                         const std::vector<Invariant>& invariants,
                         const std::string& scenario_name,
                         const fuzz::DiffOptions& dopts, bool crosscheck) {
  VerifyResult res;
  res.scenario = scenario_name;
  res.model = model::enumerate_outcomes(prog, dopts.model);

  if (res.model.ok() && res.model.complete) {
    for (const Invariant& inv : invariants) {
      Violation v;
      v.invariant = inv.name;
      v.description = inv.description;
      // std::set iterates in lexicographic order, so the first violating
      // outcome *is* the minimized witness.
      for (const model::Outcome& o : res.model.allowed) {
        if (!inv.violated(o)) continue;
        if (v.model_hits == 0) v.witness = o;
        ++v.model_hits;
      }
      if (v.model_hits > 0) res.violations.push_back(std::move(v));
    }
  }

  if (crosscheck) {
    res.crosschecked = true;
    res.diff = fuzz::run_diff(prog, dopts);
    // The sim is allowed to be *stronger* than the model, so a violating
    // outcome may be model-allowed yet never simulated; but if the sim
    // actually produced one, record it (it upgrades the evidence from
    // "architecturally possible" to "observed on a timing machine").
    for (Violation& v : res.violations) {
      const Invariant* inv = nullptr;
      for (const Invariant& i : invariants)
        if (i.name == v.invariant) inv = &i;
      if (inv == nullptr) continue;
      for (const model::Outcome& o : res.diff.observed)
        if (inv->violated(o)) ++v.sim_hits;
    }
  }
  return res;
}

}  // namespace

fuzz::DiffOptions VerifyOptions::diff_options() const {
  fuzz::DiffOptions d;
  if (platforms.empty()) {
    for (const auto& spec : sim::all_platforms())
      d.platforms.push_back(spec.name);
  } else {
    d.platforms = platforms;
  }
  d.plans.push_back({});  // clean run first
  for (std::uint32_t s = 1; s <= chaos_seeds; ++s)
    d.plans.push_back(sim::fault::FaultPlan::chaos(s));
  d.skews = skews;
  d.max_cycles = max_cycles;
  d.model = model;
  return d;
}

std::uint64_t VerifyResult::digest() const {
  std::ostringstream os;
  os << "lockver1|" << scenario << '|' << model.ok() << '|' << model.complete
     << "|A";
  for (const auto& o : model.allowed) os << model::to_string(o);
  os << "|V";
  for (const Violation& v : violations)
    os << v.invariant << ':' << model::to_string(v.witness) << ':'
       << v.model_hits << ':' << v.sim_hits << ';';
  os << "|C" << crosschecked;
  if (crosschecked) os << ':' << diff.digest();
  return fnv1a(os.str());
}

std::string VerifyResult::summary() const {
  std::ostringstream os;
  os << scenario << ": ";
  if (!model.ok()) {
    os << "model error (" << model.error << ")";
    return os.str();
  }
  if (!model.complete) {
    os << "model enumeration incomplete (budget hit)";
    return os.str();
  }
  os << model.allowed.size() << " allowed outcome(s)";
  if (violations.empty()) {
    os << ", all invariants hold";
  } else {
    os << ", " << violations.size() << " invariant violation(s):";
    for (const Violation& v : violations)
      os << " [" << v.invariant << " witness " << model::to_string(v.witness)
         << " model-hits " << v.model_hits << " sim-hits " << v.sim_hits
         << "]";
  }
  if (crosschecked) {
    os << "; sim cross-check: " << diff.runs << " runs, "
       << (diff.ok() ? "clean" : "FAILED (" + diff.summary() + ")");
  }
  return os.str();
}

VerifyResult verify(const LockScenario& sc, const VerifyOptions& opts) {
  return verify_impl(sc.prog, sc.invariants, sc.name, opts.diff_options(),
                     opts.sim_crosscheck);
}

fuzz::ReproBundle make_lock_bundle(const LockScenario& sc,
                                   const VerifyOptions& opts,
                                   const VerifyResult& result) {
  fuzz::ReproBundle b;
  b.prog = sc.prog;
  b.opts = opts.diff_options();
  b.gen_seed = 0;
  b.failure_kind = kLockInvariantKind;
  b.expect_digest = result.digest();
  b.expected_allowed = result.model.allowed;
  if (result.crosschecked) b.observed = result.diff.observed;
  b.scenario = sc.name;
  b.lock_crosschecked = result.crosschecked;
  if (!result.violations.empty()) {
    const Violation& v = result.violations.front();
    b.invariant = v.invariant;
    b.witness = v.witness;
    b.detail = sc.name + ": invariant '" + v.invariant +
               "' violated, witness " + model::to_string(v.witness) + " (" +
               std::to_string(v.model_hits) + " model outcome(s))";
  } else {
    b.detail = result.summary();
  }
  return b;
}

ReplayVerdict replay_lock_bundle(const fuzz::ReproBundle& b) {
  ReplayVerdict verdict;
  LockScenario sc;
  if (b.failure_kind != kLockInvariantKind) {
    verdict.detail = "bundle kind is '" + b.failure_kind + "', not '" +
                     kLockInvariantKind + "'";
    return verdict;
  }
  if (!scenario_by_name(b.scenario, &sc)) {
    verdict.detail = "unknown lockver scenario '" + b.scenario + "'";
    return verdict;
  }
  verdict.loaded = true;

  // Re-verify the *bundled* program with the current invariant predicates:
  // the program text is the replay identity; the scenario name only
  // resolves the invariant encodings.
  const VerifyResult fresh = verify_impl(b.prog, sc.invariants, b.scenario,
                                         b.opts, b.lock_crosschecked);
  const std::uint64_t digest = fresh.digest();
  const bool same_digest = digest == b.expect_digest;
  bool violation_recurred = false;
  bool witness_recurred = false;
  for (const Violation& v : fresh.violations) {
    if (v.invariant != b.invariant) continue;
    violation_recurred = true;
    witness_recurred = v.witness == b.witness;
  }
  std::ostringstream os;
  os << fresh.summary();
  if (!same_digest)
    os << "; digest diverged (expected " << b.expect_digest << ", got "
       << digest << ")";
  if (!violation_recurred)
    os << "; invariant '" << b.invariant << "' no longer fires";
  else if (!witness_recurred)
    os << "; witness changed";
  verdict.detail = os.str();
  verdict.reproduced = same_digest && violation_recurred && witness_recurred;
  return verdict;
}

}  // namespace armbar::lockver
