// Lock-verification harness (ISSUE 9 tentpole): turn the axiomatic
// checker + differential fuzzer into a correctness oracle for the repo's
// own lock code.
//
// verify() runs one LockScenario through two layers:
//   (a) model layer — enumerate the full allowed-outcome set with the
//       axiomatic checker and evaluate every invariant over it. Any
//       allowed outcome an invariant forbids is a *violation*: the lock's
//       ordering admits an execution a correct lock must never produce.
//       The recorded witness is minimized deterministically — the
//       lexicographically smallest violating outcome in the set.
//   (b) sim cross-check — drive the identical programs through the timing
//       simulator across platform presets x fault plans x start skews via
//       fuzz::run_diff (sim ⊆ model), and additionally evaluate the
//       invariants over every outcome the simulator actually produced.
//
// A failing verification serializes into a standard armbar.repro/v1
// bundle with failure_kind "lock_invariant" plus the scenario name,
// invariant name and witness outcome; replay_lock_bundle() re-derives
// the whole verdict from the bundle alone (tools/armbar-repro).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/bundle.hpp"
#include "fuzz/diff.hpp"
#include "lockver/templates.hpp"
#include "model/model.hpp"

namespace armbar::lockver {

inline constexpr const char* kLockInvariantKind = "lock_invariant";

struct VerifyOptions {
  /// Platform presets for the sim cross-check; empty = all four.
  std::vector<std::string> platforms;
  /// Chaos fault plans per platform (plus one clean plan, always).
  std::uint32_t chaos_seeds = 2;
  std::vector<std::uint32_t> skews = {0, 11};
  bool sim_crosscheck = true;
  Cycle max_cycles = 2'000'000;
  model::ModelOptions model;

  /// The DiffOptions grid this VerifyOptions expands to (also what gets
  /// serialized into bundles — plans are explicit there).
  fuzz::DiffOptions diff_options() const;
};

struct Violation {
  std::string invariant;
  std::string description;
  model::Outcome witness;        ///< lexicographically smallest violator
  std::uint64_t model_hits = 0;  ///< violating outcomes in the model set
  std::uint64_t sim_hits = 0;    ///< violating outcomes the sim produced
};

struct VerifyResult {
  std::string scenario;
  model::OutcomeSet model;            ///< the full allowed set
  std::vector<Violation> violations;  ///< one entry per violated invariant
  bool crosschecked = false;
  fuzz::DiffResult diff;              ///< valid when crosschecked

  /// Clean: the model enumerated completely, no invariant is violated,
  /// and (when cross-checked) the simulator stayed inside the model set.
  bool ok() const {
    return model.ok() && model.complete && violations.empty() &&
           (!crosschecked || diff.ok());
  }
  /// Behavioural identity for bundle replay: scenario name, allowed set
  /// and every violation record (plus the diff digest when cross-checked).
  std::uint64_t digest() const;
  std::string summary() const;
};

VerifyResult verify(const LockScenario& sc, const VerifyOptions& opts);

/// Capture a failing verification as a repro bundle: failure_kind
/// "lock_invariant", first violation's name + witness, scenario name.
fuzz::ReproBundle make_lock_bundle(const LockScenario& sc,
                                   const VerifyOptions& opts,
                                   const VerifyResult& result);

struct ReplayVerdict {
  bool loaded = false;      ///< scenario + invariants resolved
  bool reproduced = false;  ///< digest matched and the violation recurred
  std::string detail;
};

/// Replay a "lock_invariant" bundle: rebuild the invariants from the
/// bundled scenario name, re-verify the *bundled* program (so the replay
/// is bit-exact even if the templates later change), and check that the
/// recorded invariant still fires with the recorded witness and that the
/// fresh digest equals expect_digest.
ReplayVerdict replay_lock_bundle(const fuzz::ReproBundle& b);

}  // namespace armbar::lockver
