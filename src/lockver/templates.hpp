// Micro-ISA lock templates for the lock-verification harness (ISSUE 9).
//
// Each template is a *pre-linearized* encoding of one lock family's
// acquire/release handoff as a litmus-style model::ConcurrentProgram: the
// queue/ticket order is fixed up front (T0 holds the lock, T1 is the next
// waiter, ...) and the spin loops are collapsed to a single sampled read
// with a forward branch guarding the critical section. This is deliberate:
// the axiomatic checker covers straight-line/forward-branch programs
// without LDXR/STXR/SWP/WFE, and what the paper's barrier weakenings
// endanger is exactly the *ordering* of the handoff path — the RMW
// atomicity of ticket-taking is orthogonal (guaranteed by the exclusives)
// and is exercised by the simulator-side runs instead.
//
// Every family comes in two strengths:
//   * kStrong    — standalone `dmb ish` on the acquire and release edges;
//   * kWeakened  — the paper's Table 3 suggestion: LDAR on the grant/flag
//                  read, STLR on the grant store (ticket/CNA) or `dmb st`
//                  on the store->store response path (FFWD).
// Both must satisfy every invariant; the PlantedBug modes each remove or
// downgrade one required edge and must make at least one invariant fail —
// that asymmetry is the harness's proof that it can catch ordering bugs.
//
// Invariants are named predicates over the model outcome tuple, so a
// violation serializes as (scenario name, invariant name, witness outcome)
// into an armbar.repro/v1 bundle and replays by name.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "model/model.hpp"

namespace armbar::lockver {

enum class LockFamily : std::uint8_t { kTicket, kCna, kFfwd };
enum class Strength : std::uint8_t { kStrong, kWeakened };
enum class PlantedBug : std::uint8_t {
  kNone,
  kDropAcquire,    ///< the acquire edge after the grant/flag read is removed
  kDropRelease,    ///< the release edge before the grant/flag store is removed
  kDowngradeDmb,   ///< the release dmb is downgraded to an insufficient kind
};

const char* to_string(LockFamily f);
const char* to_string(Strength s);
const char* to_string(PlantedBug b);
bool family_from_string(const std::string& s, LockFamily* out);
bool strength_from_string(const std::string& s, Strength* out);
bool planted_from_string(const std::string& s, PlantedBug* out);

/// A lock-correctness invariant: `violated(outcome)` is true when the
/// outcome is one a correct lock must never produce. The model allowing
/// such an outcome — or the simulator observing one — is a verification
/// failure with that outcome as the witness.
struct Invariant {
  std::string name;         ///< e.g. "mutual-exclusion"
  std::string description;  ///< what the forbidden outcome means
  std::function<bool(const model::Outcome&)> violated;
};

/// One verifiable lock scenario: the model program plus its invariants and
/// the static per-acquire barrier cost of the variant (dmb/dsb count on
/// the acquire+release path — the number the cna_scaling experiment
/// confirms dynamically).
struct LockScenario {
  LockFamily family = LockFamily::kTicket;
  Strength strength = Strength::kStrong;
  PlantedBug planted = PlantedBug::kNone;
  std::string name;  ///< "family/strength" or "family/strength+bug"
  model::ConcurrentProgram prog;
  std::vector<Invariant> invariants;
  std::uint32_t handoff_dmbs = 0;  ///< standalone dmb/dsb per handoff
};

/// Build one scenario. Planted bugs are applied relative to the chosen
/// strength (e.g. kDropRelease removes the dmb in kStrong and turns the
/// STLR into a plain STR in kWeakened).
LockScenario make_scenario(LockFamily f, Strength s,
                           PlantedBug b = PlantedBug::kNone);

/// The six clean scenarios (3 families x 2 strengths), in a fixed order.
std::vector<LockScenario> all_clean_scenarios();

/// Parse "family/strength" or "family/strength+bug" (the LockScenario
/// name format) and rebuild the scenario. Returns false on unknown names.
bool scenario_by_name(const std::string& name, LockScenario* out);

}  // namespace armbar::lockver
