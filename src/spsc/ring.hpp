// Single-producer single-consumer ring buffers.
//
// BarrierRing is the paper's Algorithm 2 producer/consumer with both
// barrier sites configurable:
//   * site 1 (line 3): after the availability check — orders the counter
//     load before touching the buffer;
//   * site 2 (line 5): between filling the buffer slot and publishing the
//     counter — the barrier that strictly follows the RMR and causes the
//     dominant overhead (Observation 2).
//
// PilotRing applies Pilot (§4.4): each slot is a Pilot channel, so the
// site-2 barrier and the consumer's matching load barrier disappear; the
// counters remain solely for flow control.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "arch/barrier.hpp"
#include "common/check.hpp"
#include "common/types.hpp"
#include "pilot/pilot.hpp"

namespace armbar::spsc {

/// A 64-bit-payload SPSC ring with configurable order-preserving choices.
/// Capacity must be a power of two.
class BarrierRing {
 public:
  struct Config {
    arch::Barrier avail_barrier = arch::Barrier::kDmbLd;   // site 1
    arch::Barrier publish_barrier = arch::Barrier::kDmbSt; // site 2
    arch::Barrier consume_barrier = arch::Barrier::kDmbLd; // consumer's site 1
  };

  explicit BarrierRing(std::size_t capacity) : BarrierRing(capacity, Config{}) {}

  BarrierRing(std::size_t capacity, Config cfg)
      : cfg_(cfg), mask_(capacity - 1), slots_(capacity) {
    ARMBAR_CHECK(capacity >= 2 && (capacity & (capacity - 1)) == 0);
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side. Returns false when full.
  bool try_push(std::uint64_t v) {
    const std::uint64_t prod = prod_cnt_.load(std::memory_order_relaxed);
    const std::uint64_t cons = cons_cnt_.load(std::memory_order_relaxed);
    if (prod - cons == capacity()) return false;
    arch::barrier(cfg_.avail_barrier);  // Algorithm 2 line 3
    slots_[prod & mask_].value = v;     // line 4: fill the (likely RMR) slot
    arch::barrier(cfg_.publish_barrier);  // line 5
    prod_cnt_.store(prod + 1, std::memory_order_relaxed);  // line 6
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool try_pop(std::uint64_t& out) {
    const std::uint64_t cons = cons_cnt_.load(std::memory_order_relaxed);
    const std::uint64_t prod = prod_cnt_.load(std::memory_order_relaxed);
    if (prod == cons) return false;
    arch::barrier(cfg_.consume_barrier);  // order counter load before data read
    out = slots_[cons & mask_].value;
    arch::barrier(arch::Barrier::kDmbLd);  // data read before releasing the slot
    cons_cnt_.store(cons + 1, std::memory_order_relaxed);
    return true;
  }

  /// Blocking push; yields when full so oversubscribed hosts make progress.
  void push(std::uint64_t v) {
    while (!try_push(v)) std::this_thread::yield();
  }
  /// Blocking pop; yields when empty.
  std::uint64_t pop() {
    std::uint64_t v;
    while (!try_pop(v)) std::this_thread::yield();
    return v;
  }

 private:
  struct alignas(kCacheLineBytes) Slot {
    std::uint64_t value = 0;
  };
  Config cfg_;
  const std::size_t mask_;
  std::vector<Slot> slots_;
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> prod_cnt_{0};
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> cons_cnt_{0};
};

/// Algorithm 2 with Pilot applied (§4.4): the publish barrier is gone —
/// each slot broadcasts data+flag in one single-copy-atomic store.
class PilotRing {
 public:
  explicit PilotRing(std::size_t capacity, std::uint64_t seed = 7,
                     arch::Barrier avail_barrier = arch::Barrier::kDmbLd)
      : avail_barrier_(avail_barrier), mask_(capacity - 1), pool_(seed),
        slots_(capacity) {
    ARMBAR_CHECK(capacity >= 2 && (capacity & (capacity - 1)) == 0);
    senders_.reserve(capacity);
    receivers_.reserve(capacity);
    for (std::size_t i = 0; i < capacity; ++i) {
      senders_.emplace_back(slots_[i], pool_);
      receivers_.emplace_back(slots_[i], pool_);
    }
  }

  std::size_t capacity() const { return mask_ + 1; }

  bool try_push(std::uint64_t v) {
    const std::uint64_t prod = prod_cnt_.load(std::memory_order_relaxed);
    const std::uint64_t cons = cons_cnt_.load(std::memory_order_relaxed);
    if (prod - cons == capacity()) return false;
    arch::barrier(avail_barrier_);        // flow-control barrier stays (§4.4)
    senders_[prod & mask_].send(v);       // barrier-free publish
    prod_cnt_.store(prod + 1, std::memory_order_relaxed);
    return true;
  }

  bool try_pop(std::uint64_t& out) {
    const std::uint64_t cons = cons_cnt_.load(std::memory_order_relaxed);
    auto& rx = receivers_[cons & mask_];
    if (!rx.poll()) return false;
    out = rx.receive();                    // no load barrier needed
    cons_cnt_.store(cons + 1, std::memory_order_relaxed);
    return true;
  }

  /// Blocking push; yields when full so oversubscribed hosts make progress.
  void push(std::uint64_t v) {
    while (!try_push(v)) std::this_thread::yield();
  }
  /// Blocking pop; yields when empty.
  std::uint64_t pop() {
    std::uint64_t v;
    while (!try_pop(v)) std::this_thread::yield();
    return v;
  }

 private:
  arch::Barrier avail_barrier_;
  const std::size_t mask_;
  pilot::HashPool pool_;
  std::vector<pilot::PilotSlot> slots_;
  std::vector<pilot::PilotSender> senders_;
  std::vector<pilot::PilotReceiver> receivers_;
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> prod_cnt_{0};
  alignas(kCacheLineBytes) std::atomic<std::uint64_t> cons_cnt_{0};
};

}  // namespace armbar::spsc
