#include "arch/barrier.hpp"

namespace armbar::arch {

std::string to_string(Barrier b) {
  switch (b) {
    case Barrier::kNone: return "None";
    case Barrier::kDmbFull: return "DMB full";
    case Barrier::kDmbSt: return "DMB st";
    case Barrier::kDmbLd: return "DMB ld";
    case Barrier::kDsbFull: return "DSB full";
    case Barrier::kDsbSt: return "DSB st";
    case Barrier::kDsbLd: return "DSB ld";
    case Barrier::kIsb: return "ISB";
    case Barrier::kCtrlIsb: return "CTRL+ISB";
    case Barrier::kDataDep: return "DATA dep";
    case Barrier::kAddrDep: return "ADDR dep";
  }
  return "?";
}

}  // namespace armbar::arch
