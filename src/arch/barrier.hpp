// Portable order-preserving primitives (paper §2.2).
//
// On AArch64 these compile to the real instructions (DMB/DSB/ISB/LDAR/STLR
// and dependency idioms). On other architectures they map to the strongest
// cheap equivalent so that code written against this header is *correct*
// everywhere and *fast* on ARM:
//
//   kind        aarch64          x86-64 fallback (TSO)
//   ---------   --------------   --------------------------------------
//   DMB full    dmb ish          mfence-equivalent (seq_cst fence)
//   DMB st      dmb ishst        compiler fence (stores already ordered)
//   DMB ld      dmb ishld        compiler fence (loads already ordered)
//   DSB *       dsb ish          seq_cst fence (no x86 analogue of DSB)
//   ISB         isb              compiler fence
//
// The simulator (src/sim) is the vehicle for *performance* statements; this
// layer is the vehicle for running the same algorithms on real hardware.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace armbar::arch {

/// Every order-preserving option the paper studies (§2.2), including
/// "none" and the dependency idioms, so data structures can be
/// parameterized by choice of approach.
enum class Barrier : std::uint8_t {
  kNone,
  kDmbFull,
  kDmbSt,
  kDmbLd,
  kDsbFull,
  kDsbSt,
  kDsbLd,
  kIsb,
  kCtrlIsb,   ///< bogus control dependency + ISB (load->load/store)
  kDataDep,   ///< bogus data dependency (load->store)
  kAddrDep,   ///< bogus address dependency (load->load/store)
};

std::string to_string(Barrier b);

#if defined(__aarch64__)
inline void dmb_full() { asm volatile("dmb ish" ::: "memory"); }
inline void dmb_st() { asm volatile("dmb ishst" ::: "memory"); }
inline void dmb_ld() { asm volatile("dmb ishld" ::: "memory"); }
inline void dsb_full() { asm volatile("dsb ish" ::: "memory"); }
inline void dsb_st() { asm volatile("dsb ishst" ::: "memory"); }
inline void dsb_ld() { asm volatile("dsb ishld" ::: "memory"); }
inline void isb() { asm volatile("isb" ::: "memory"); }
#else
inline void dmb_full() { std::atomic_thread_fence(std::memory_order_seq_cst); }
inline void dmb_st() { std::atomic_thread_fence(std::memory_order_release); }
inline void dmb_ld() { std::atomic_thread_fence(std::memory_order_acquire); }
inline void dsb_full() { std::atomic_thread_fence(std::memory_order_seq_cst); }
inline void dsb_st() { std::atomic_thread_fence(std::memory_order_seq_cst); }
inline void dsb_ld() { std::atomic_thread_fence(std::memory_order_seq_cst); }
inline void isb() { std::atomic_signal_fence(std::memory_order_seq_cst); }
#endif

/// Dynamic dispatch on the barrier choice; kNone and the dependency kinds
/// are no-ops here (dependencies are constructed at the use site with the
/// helpers below).
inline void barrier(Barrier b) {
  switch (b) {
    case Barrier::kDmbFull: dmb_full(); break;
    case Barrier::kDmbSt: dmb_st(); break;
    case Barrier::kDmbLd: dmb_ld(); break;
    case Barrier::kDsbFull: dsb_full(); break;
    case Barrier::kDsbSt: dsb_st(); break;
    case Barrier::kDsbLd: dsb_ld(); break;
    case Barrier::kIsb:
    case Barrier::kCtrlIsb: isb(); break;
    case Barrier::kNone:
    case Barrier::kDataDep:
    case Barrier::kAddrDep: break;
  }
}

/// Load-acquire of a 64-bit word.
inline std::uint64_t load_acquire(const std::atomic<std::uint64_t>& v) {
#if defined(__aarch64__)
  std::uint64_t out;
  asm volatile("ldar %0, %1" : "=r"(out) : "Q"(v) : "memory");
  return out;
#else
  return v.load(std::memory_order_acquire);
#endif
}

/// Store-release of a 64-bit word.
inline void store_release(std::atomic<std::uint64_t>& v, std::uint64_t x) {
#if defined(__aarch64__)
  asm volatile("stlr %1, %0" : "=Q"(v) : "r"(x) : "memory");
#else
  v.store(x, std::memory_order_release);
#endif
}

/// Bogus data dependency (paper §2.2): returns 0, but the compiler and the
/// CPU must treat it as depending on `loaded`. Add it to a value about to
/// be stored to order that store after the load of `loaded`.
inline std::uint64_t data_dep_zero(std::uint64_t loaded) {
  std::uint64_t z = loaded ^ loaded;
  asm volatile("" : "+r"(z));  // opaque to the optimizer
  return z;
}

/// Bogus address dependency: fold `data_dep_zero(loaded)` into a pointer.
template <typename T>
inline T* addr_dep(T* p, std::uint64_t loaded) {
  return reinterpret_cast<T*>(reinterpret_cast<std::uintptr_t>(p) +
                              data_dep_zero(loaded));
}

/// Bogus control dependency + ISB (load->load ordering, paper §2.2).
inline void ctrl_isb(std::uint64_t loaded) {
  if (data_dep_zero(loaded) != 0) {
    // Never taken; exists only to form the control dependency.
    std::atomic_signal_fence(std::memory_order_seq_cst);
  }
  isb();
}

/// True when the build targets AArch64 (i.e. the inline-asm paths above
/// are active rather than the portable fallbacks).
constexpr bool native_arm() {
#if defined(__aarch64__)
  return true;
#else
  return false;
#endif
}

}  // namespace armbar::arch
