// Fundamental scalar types shared by every armbar module.
#pragma once

#include <cstdint>
#include <cstddef>

namespace armbar {

/// Simulated clock cycle count. 64 bits: benchmarks run for billions of
/// cycles and must never wrap.
using Cycle = std::uint64_t;

/// Byte address in the simulated physical address space.
using Addr = std::uint64_t;

/// Simulated core identifier (dense, 0-based).
using CoreId = std::uint32_t;

/// NUMA node identifier (dense, 0-based).
using NodeId = std::uint32_t;

inline constexpr std::size_t kCacheLineBytes = 64;
inline constexpr std::size_t kWordBytes = 8;

/// Round an address down to its cache-line base.
constexpr Addr line_of(Addr a) { return a & ~static_cast<Addr>(kCacheLineBytes - 1); }

/// Round an address down to its 8-byte word base.
constexpr Addr word_of(Addr a) { return a & ~static_cast<Addr>(kWordBytes - 1); }

/// A cycle value that is later than any reachable simulation time.
inline constexpr Cycle kNeverCycle = ~static_cast<Cycle>(0);

}  // namespace armbar
