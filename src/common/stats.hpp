// Streaming statistics accumulator used by benches and the simulator's
// per-core counters.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace armbar {

/// Accumulates samples; computes mean/stddev/min/max/percentiles.
/// Percentiles retain all samples, so reserve() for large runs.
class Stats {
 public:
  void add(double x) {
    samples_.push_back(x);
    sum_ += x;
    sum_sq_ += x * x;
    sorted_ = false;
  }

  std::size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }

  double mean() const { return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size()); }

  double stddev() const {
    const auto n = static_cast<double>(samples_.size());
    if (n < 2) return 0.0;
    const double m = mean();
    const double var = std::max(0.0, (sum_sq_ - n * m * m) / (n - 1));
    return std::sqrt(var);
  }

  double min() const {
    ensure_sorted();
    return samples_.empty() ? 0.0 : samples_.front();
  }
  double max() const {
    ensure_sorted();
    return samples_.empty() ? 0.0 : samples_.back();
  }

  /// Nearest-rank percentile, p in [0,100].
  double percentile(double p) const {
    ensure_sorted();
    if (samples_.empty()) return 0.0;
    const double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  void clear() {
    samples_.clear();
    sum_ = sum_sq_ = 0.0;
    sorted_ = false;
  }

  void reserve(std::size_t n) { samples_.reserve(n); }

 private:
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }
  mutable std::vector<double> samples_;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  mutable bool sorted_ = false;
};

}  // namespace armbar
