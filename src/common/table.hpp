// Plain-text table printer. Every bench prints its figure/table with this so
// output formatting is uniform and diffable (EXPERIMENTS.md embeds it).
#pragma once

#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace armbar {

/// Column-aligned text table with a title and optional footnotes.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  void header(std::vector<std::string> cols) { header_ = std::move(cols); }

  TextTable& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void note(std::string text) { notes_.push_back(std::move(text)); }

  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }

  std::string str() const {
    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& cells) {
      if (cells.size() > width.size()) width.resize(cells.size(), 0);
      for (std::size_t i = 0; i < cells.size(); ++i)
        width[i] = std::max(width[i], cells[i].size());
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    std::ostringstream os;
    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < width.size(); ++i) {
        const std::string& c = i < cells.size() ? cells[i] : std::string{};
        os << (i == 0 ? "" : "  ") << std::left << std::setw(static_cast<int>(width[i])) << c;
      }
      os << "\n";
    };
    emit(header_);
    std::size_t total = 0;
    for (auto w : width) total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto& r : rows_) emit(r);
    for (const auto& n : notes_) os << "  * " << n << "\n";
    return os.str();
  }

  void print(std::ostream& os = std::cout) const { os << str() << std::endl; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

}  // namespace armbar
