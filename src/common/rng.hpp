// Small deterministic PRNGs. The simulator and workload generators must be
// bit-reproducible across runs and platforms, so we avoid std::mt19937's
// distribution portability pitfalls and use explicit integer algorithms.
#pragma once

#include <cstdint>

namespace armbar {

/// SplitMix64: used to seed and for cheap one-off hashing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic generator.
class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed = 0x8a5cd789635d2dffULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  constexpr std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  constexpr std::uint64_t below(std::uint64_t bound) {
    // Debiased multiply-shift (Lemire). Good enough for workloads.
    __uint128_t m = static_cast<__uint128_t>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double unit() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// True with probability num/den.
  constexpr bool chance(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace armbar
