// Internal invariant checking. ARMBAR_CHECK stays on in release builds:
// the simulator's correctness is the product, so we never silently continue
// past a broken invariant.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace armbar::detail {
[[noreturn]] inline void check_fail(const char* cond, const char* file, int line,
                                    const char* msg) {
  std::fprintf(stderr, "ARMBAR_CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}
}  // namespace armbar::detail

#define ARMBAR_CHECK(cond)                                                     \
  do {                                                                         \
    if (!(cond)) ::armbar::detail::check_fail(#cond, __FILE__, __LINE__, "");  \
  } while (0)

#define ARMBAR_CHECK_MSG(cond, msg)                                               \
  do {                                                                            \
    if (!(cond)) ::armbar::detail::check_fail(#cond, __FILE__, __LINE__, (msg));  \
  } while (0)
