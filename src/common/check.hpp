// Internal invariant checking. ARMBAR_CHECK stays on in release builds:
// the simulator's correctness is the product, so we never silently continue
// past a broken invariant.
//
// Failure routing is pluggable: by default a failed check prints and
// aborts (a broken invariant in a standalone tool has nowhere to go), but a
// harness that wants to survive one bad experiment — the runner engine —
// can install a handler that converts the failure into a C++ exception
// (CheckFailure) captured per experiment. The handler is process-global and
// a plain function pointer, so installation is async-signal-trivial and the
// header-only armbar_common library stays header-only (C++17 inline
// variable). If a handler returns instead of throwing, abort() still runs:
// a failed check can never fall through into the code it guards.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace armbar {

/// Thrown by throw_check_failure() (the handler the runner installs).
/// what() carries the full "cond at file:line — msg" rendering.
class CheckFailure : public std::runtime_error {
 public:
  explicit CheckFailure(const std::string& what) : std::runtime_error(what) {}
};

/// A check-failure handler: called after the diagnostic is printed, before
/// the abort() backstop. May throw to take over unwinding; returning means
/// "decline" and the process aborts as if no handler were installed.
using CheckFailHandler = void (*)(const char* cond, const char* file, int line,
                                  const char* msg);

namespace detail {
inline std::atomic<CheckFailHandler> g_check_fail_handler{nullptr};

inline std::string check_fail_message(const char* cond, const char* file,
                                      int line, const char* msg) {
  std::string s = "ARMBAR_CHECK failed: ";
  s += cond;
  s += " at ";
  s += file;
  s += ":";
  s += std::to_string(line);
  if (msg[0] != '\0') {
    s += " — ";
    s += msg;
  }
  return s;
}

[[noreturn]] inline void check_fail(const char* cond, const char* file, int line,
                                    const char* msg) {
  std::fprintf(stderr, "ARMBAR_CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg[0] ? " — " : "", msg);
  if (CheckFailHandler h = g_check_fail_handler.load(std::memory_order_acquire);
      h != nullptr)
    h(cond, file, line, msg);  // may throw; returning falls through to abort
  std::abort();
}
}  // namespace detail

/// Install `h` as the process-wide check-failure handler (nullptr restores
/// the default abort). Returns the previously installed handler so scoped
/// users can restore it.
inline CheckFailHandler set_check_fail_handler(CheckFailHandler h) {
  return detail::g_check_fail_handler.exchange(h, std::memory_order_acq_rel);
}

/// Ready-made handler: converts the failure into a CheckFailure exception.
/// The runner installs this for the duration of an experiment sweep so one
/// tripped invariant fails that experiment instead of the whole process.
[[noreturn]] inline void throw_check_failure(const char* cond, const char* file,
                                             int line, const char* msg) {
  throw CheckFailure(detail::check_fail_message(cond, file, line, msg));
}

}  // namespace armbar

#define ARMBAR_CHECK(cond)                                                     \
  do {                                                                         \
    if (!(cond)) ::armbar::detail::check_fail(#cond, __FILE__, __LINE__, "");  \
  } while (0)

#define ARMBAR_CHECK_MSG(cond, msg)                                               \
  do {                                                                            \
    if (!(cond)) ::armbar::detail::check_fail(#cond, __FILE__, __LINE__, (msg));  \
  } while (0)
