// armbar-fuzz: differential fuzzing campaign driver (ISSUE 4).
//
// Generates seeded random litmus programs, enumerates each one's allowed
// final-state set on the axiomatic reference model, runs the same programs
// on the timing simulator across a platform × fault-plan × skew grid, and
// flags any simulator outcome outside the model's set (plus invariant
// violations, hangs and timeouts). Every failing seed is delta-debugged to
// a minimal case (--minimize, on by default) and written as a
// self-contained armbar.repro/v1 bundle that `armbar-repro <path>` replays
// bit-exactly.
//
//   armbar-fuzz --seed-start 1 --seed-count 1000            # campaign
//   armbar-fuzz --seed-count 50 --mutation drop-rel-acq     # planted bug
//   armbar-fuzz --seed-count 200 --json FUZZ.json           # perf trajectory
//
// The summary reports campaign throughput (runs/sec) and the total time
// spent in the reference model, and --json emits the same numbers as an
// armbar.bench.report/v2 document so BENCH_*.json trajectories cover the
// checker (ISSUE 5). --model-naive switches the model to the pre-POR
// enumerator — the oracle baseline the speedup is measured against.
//
// Exit status: 0 zero failures, 1 failures found (bundles written), 2 bad
// usage or unwritable --out-dir/--json.
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/bundle.hpp"
#include "fuzz/diff.hpp"
#include "fuzz/gen.hpp"
#include "fuzz/minimize.hpp"
#include "prof/export.hpp"
#include "prof/prof.hpp"
#include "runner/arg_parser.hpp"
#include "runner/thread_pool.hpp"
#include "sim/platform.hpp"
#include "trace/json_report.hpp"

namespace {

using armbar::fuzz::DiffOptions;
using armbar::fuzz::DiffResult;

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

/// One fuzzed seed's outcome, filled by a pool worker.
struct SeedResult {
  std::uint64_t seed = 0;
  bool failed = false;
  std::string kind;          ///< first failure kind
  std::string summary;
  std::string bundle_path;   ///< written only for failures
  std::uint64_t runs = 0;
  std::uint64_t model_ns = 0;          ///< reference-model wall time
  std::uint64_t model_candidates = 0;  ///< executions the checker examined
  std::uint32_t instructions_before = 0;
  std::uint32_t instructions_after = 0;
};

}  // namespace

int main(int argc, char** argv) {
  armbar::runner::ArgParser args(
      "armbar-fuzz",
      "Differential fuzzing of the timing simulator against the axiomatic "
      "ARMv8 reference model. Failing seeds are minimized and written as "
      "armbar.repro/v1 bundles (replay: armbar-repro <path>).");
  args.add_int("seed-start", "N", "first generator seed", 1, 1,
               std::numeric_limits<std::int64_t>::max() / 2);
  args.add_int("seed-count", "N", "number of consecutive seeds to fuzz", 100,
               1, 10'000'000);
  args.add_int("jobs", "N", "parallel seeds (0 = hardware threads)", 0, 0,
               4096);
  args.add_int("chaos-seeds", "N",
               "chaos fault plans per program (plus one clean plan)", 8, 0,
               64);
  args.add_value("platforms", "A,B",
                 "comma-separated platform presets (default: all)");
  args.add_value("skews", "N,M", "comma-separated start skews", "0,7");
  args.add_value("mutation", "M",
                 "plant a simulator-side bug: none|drop-dmb-st|drop-dmb-ld|"
                 "drop-dmb-full|drop-rel-acq",
                 "none");
  args.add_flag("no-minimize", "skip delta-debugging of failing cases");
  args.add_flag("model-naive",
                "use the pre-POR exhaustive model enumerator (the oracle "
                "baseline; slower, identical outcome sets)");
  args.add_value("out-dir", "DIR", "where repro bundles are written", ".");
  args.add_value("json", "PATH",
                 "write the campaign summary as armbar.bench.report/v2", "");
  args.add_int("max-threads", "N", "generator: threads per program",
               armbar::fuzz::GenOptions{}.max_threads, 2, 8);
  args.add_int("max-ops", "N", "generator: memory/barrier ops per thread",
               armbar::fuzz::GenOptions{}.max_ops_per_thread, 1, 32);
  args.add_int("lock-shape-pct", "N",
               "generator: percent of cases drawn as lock-handoff skeletons "
               "(0 keeps pinned seeds bit-identical)",
               armbar::fuzz::GenOptions{}.lock_shape_pct, 0, 100);
  args.add_flag("profile",
                "enable the host-side self-profiler for the campaign; adds "
                "a host_prof section to --json (report-only)");
  args.add_flag("no-profile",
                "force host profiling off (default; rejects --profile)");

  std::string err;
  if (!args.parse(argc, argv, &err)) {
    std::fprintf(stderr, "armbar-fuzz: %s\n", err.c_str());
    return 2;
  }
  if (args.help_requested()) {
    std::fputs(args.help().c_str(), stdout);
    return 0;
  }
  if (!args.positionals().empty()) {
    std::fprintf(stderr, "armbar-fuzz: unexpected argument '%s'\n",
                 args.positionals().front().c_str());
    return 2;
  }
  if (args.given("profile") && args.given("no-profile")) {
    std::fprintf(stderr,
                 "armbar-fuzz: --profile and --no-profile are mutually "
                 "exclusive\n");
    return 2;
  }
  const bool profile = args.given("profile");
  if (profile && !armbar::prof::compiled_in())
    std::fprintf(stderr,
                 "armbar-fuzz: --profile requested but profiling is compiled "
                 "out via ARMBAR_PROF_DISABLED; host_prof will be absent\n");

  DiffOptions base = DiffOptions::defaults(
      static_cast<std::uint32_t>(args.integer("chaos-seeds")));
  if (args.given("platforms")) {
    base.platforms = split_csv(args.str("platforms"));
    if (base.platforms.empty()) {
      std::fprintf(stderr, "armbar-fuzz: --platforms list is empty\n");
      return 2;
    }
    for (const std::string& p : base.platforms) {
      bool known = false;
      for (const auto& spec : armbar::sim::all_platforms())
        known |= spec.name == p;
      if (!known) {
        std::fprintf(stderr, "armbar-fuzz: unknown platform '%s' (have:",
                     p.c_str());
        for (const auto& spec : armbar::sim::all_platforms())
          std::fprintf(stderr, " %s", spec.name.c_str());
        std::fprintf(stderr, ")\n");
        return 2;
      }
    }
  }
  if (args.given("skews")) {
    base.skews.clear();
    for (const std::string& s : split_csv(args.str("skews")))
      base.skews.push_back(
          static_cast<std::uint32_t>(std::strtoul(s.c_str(), nullptr, 10)));
    if (base.skews.empty()) {
      std::fprintf(stderr, "armbar-fuzz: --skews list is empty\n");
      return 2;
    }
  }
  if (!armbar::fuzz::mutation_from_string(args.str("mutation"),
                                          &base.mutation)) {
    std::fprintf(stderr, "armbar-fuzz: unknown mutation '%s'\n",
                 args.str("mutation").c_str());
    return 2;
  }
  base.model.naive = args.given("model-naive");

  armbar::fuzz::GenOptions gen;
  gen.max_threads = static_cast<std::uint32_t>(args.integer("max-threads"));
  gen.max_ops_per_thread = static_cast<std::uint32_t>(args.integer("max-ops"));
  gen.lock_shape_pct =
      static_cast<std::uint32_t>(args.integer("lock-shape-pct"));

  const std::uint64_t seed_start =
      static_cast<std::uint64_t>(args.integer("seed-start"));
  const std::uint64_t seed_count =
      static_cast<std::uint64_t>(args.integer("seed-count"));
  const bool do_minimize = !args.given("no-minimize");
  const std::string out_dir = args.str("out-dir");

  std::size_t jobs = static_cast<std::size_t>(args.integer("jobs"));
  if (jobs == 0) jobs = armbar::runner::ThreadPool::hardware_jobs();

  std::printf("armbar-fuzz: seeds [%" PRIu64 ", %" PRIu64 ") across %zu "
              "platforms x %zu plans x %zu skews, mutation %s, model %s, "
              "%zu jobs\n",
              seed_start, seed_start + seed_count, base.platforms.size(),
              base.plans.size(), base.skews.size(),
              armbar::fuzz::to_string(base.mutation),
              base.model.naive ? "naive" : "por", jobs);

  std::vector<SeedResult> results(seed_count);
  std::mutex io_mu;
  std::string io_err;  // first bundle-write failure, reported at the end

  const auto fuzz_one = [&](std::size_t i) {
    SeedResult& r = results[i];
    r.seed = seed_start + i;
    armbar::model::ConcurrentProgram prog =
        armbar::fuzz::generate(r.seed, gen);
    DiffOptions opts = base;
    DiffResult diff = armbar::fuzz::run_diff(prog, opts);
    r.runs = diff.runs;
    r.model_ns = diff.model_ns;
    r.model_candidates = diff.model_candidates;
    if (diff.ok()) return;

    r.failed = true;
    r.kind = diff.failures.front().kind;
    r.instructions_before = armbar::fuzz::total_instructions(prog);
    if (do_minimize) {
      const auto stats = armbar::fuzz::minimize(
          &prog, &opts, armbar::fuzz::same_kind_predicate(r.kind));
      r.instructions_after = stats.instructions_after;
      diff = armbar::fuzz::run_diff(prog, opts);  // bundle the minimal case
    } else {
      r.instructions_after = r.instructions_before;
    }
    const armbar::fuzz::ReproBundle bundle =
        armbar::fuzz::make_bundle(prog, opts, r.seed, diff);
    r.summary = diff.summary();
    r.bundle_path =
        out_dir + "/fuzz-" + std::to_string(r.seed) + ".repro.json";
    std::string werr;
    if (!armbar::fuzz::write_bundle(r.bundle_path, bundle, &werr)) {
      std::lock_guard<std::mutex> lock(io_mu);
      if (io_err.empty()) io_err = r.bundle_path + ": " + werr;
    }
  };

  if (profile) {
    armbar::prof::reset();
    armbar::prof::set_enabled(true);
  }
  const auto campaign_start = std::chrono::steady_clock::now();
  if (jobs <= 1) {
    for (std::size_t i = 0; i < results.size(); ++i) fuzz_one(i);
  } else {
    armbar::runner::ThreadPool pool(jobs);
    pool.parallel_for(results.size(), fuzz_one);
  }
  const double campaign_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    campaign_start)
          .count();
  armbar::prof::Snapshot prof_snap;
  if (profile) {
    armbar::prof::set_enabled(false);
    prof_snap = armbar::prof::snapshot();  // pool joined: threads quiescent
  }

  std::uint64_t total_runs = 0;
  std::uint64_t failures = 0;
  std::uint64_t model_ns = 0;
  std::uint64_t model_candidates = 0;
  for (const SeedResult& r : results) {
    total_runs += r.runs;
    model_ns += r.model_ns;
    model_candidates += r.model_candidates;
    if (!r.failed) continue;
    ++failures;
    std::printf("seed %" PRIu64 ": %s (%u -> %u instructions)\n", r.seed,
                r.kind.c_str(), r.instructions_before, r.instructions_after);
    std::printf("  %s\n", r.summary.c_str());
    std::printf("  bundle: %s  (replay: armbar-repro %s)\n",
                r.bundle_path.c_str(), r.bundle_path.c_str());
  }
  const double model_s = static_cast<double>(model_ns) * 1e-9;
  const double runs_per_sec =
      campaign_s > 0 ? static_cast<double>(total_runs) / campaign_s : 0;
  const double execs_per_sec =
      model_s > 0 ? static_cast<double>(model_candidates) / model_s : 0;
  std::printf("armbar-fuzz: %" PRIu64 " seeds, %" PRIu64 " simulator runs, "
              "%" PRIu64 " failing seed%s\n",
              seed_count, total_runs, failures, failures == 1 ? "" : "s");
  std::printf("armbar-fuzz: %.1f s wall (%.0f runs/sec), model-check "
              "%.3f s total (%" PRIu64 " executions, %.0f/sec, engine %s)\n",
              campaign_s, runs_per_sec, model_s, model_candidates,
              execs_per_sec, base.model.naive ? "naive" : "por");
  if (prof_snap.has_data()) {
    const armbar::prof::PhaseStats& ph_gen =
        prof_snap.phase(armbar::prof::Phase::kFuzzGenerate);
    const armbar::prof::PhaseStats& ph_diff =
        prof_snap.phase(armbar::prof::Phase::kFuzzDiff);
    const armbar::prof::PhaseStats& ph_model =
        prof_snap.phase(armbar::prof::Phase::kModelEnumerate);
    std::printf("armbar-fuzz: host profile (report-only): generate %.1f ms, "
                "diff %.1f ms (model %.1f ms), %u thread%s\n",
                static_cast<double>(ph_gen.total_ns) / 1e6,
                static_cast<double>(ph_diff.total_ns) / 1e6,
                static_cast<double>(ph_model.total_ns) / 1e6,
                prof_snap.threads, prof_snap.threads == 1 ? "" : "s");
  }

  if (args.given("json") && !args.str("json").empty()) {
    armbar::trace::ReportBuilder report(
        "armbar_fuzz", "Differential fuzz campaign: simulator vs model");
    report.add_param("seed_start", std::to_string(seed_start));
    report.add_param("seed_count", std::to_string(seed_count));
    report.add_param("mutation", armbar::fuzz::to_string(base.mutation));
    report.add_param("model_engine", base.model.naive ? "naive" : "por");
    report.add_param("jobs", std::to_string(jobs));
    report.add_metric("fuzz_seeds", static_cast<double>(seed_count));
    report.add_metric("sim_runs", static_cast<double>(total_runs));
    report.add_metric("failing_seeds", static_cast<double>(failures));
    report.add_metric("campaign_runs_per_sec", runs_per_sec);
    report.add_metric("model_check_ms", model_s * 1e3);
    report.add_metric("model_candidates",
                      static_cast<double>(model_candidates));
    report.add_metric("model_execs_per_sec", execs_per_sec);
    report.add_check("campaign found no differential failures",
                     failures == 0);
    if (prof_snap.has_data())
      report.set_host_prof(armbar::prof::host_prof_json(prof_snap));
    for (const SeedResult& r : results) {
      if (!r.failed) continue;
      report.add_quarantine("fuzz-" + std::to_string(r.seed), "failed",
                            r.kind, r.summary, armbar::trace::Json(),
                            r.bundle_path);
    }
    if (!report.write(args.str("json"))) {
      std::fprintf(stderr, "armbar-fuzz: cannot write --json %s\n",
                   args.str("json").c_str());
      return 2;
    }
  }

  if (!io_err.empty()) {
    std::fprintf(stderr, "armbar-fuzz: failed to write bundle: %s\n",
                 io_err.c_str());
    return 2;
  }
  return failures == 0 ? 0 : 1;
}
