// armbar-perf — simulator-throughput trend gate over two bench reports.
//
//   $ armbar-perf bench/baselines/BENCH_sim_perf.json BENCH_sim_perf.json
//
// Compares the committed baseline report (first argument) against a fresh
// run (second argument) on the machine-independent `ips_vs_null` ratio —
// simulated-instructions/sec over a null-interpreter loop measured in the
// same process — and reports per-phase self-time share drifts from the two
// host_prof sections. Host CPU speed cancels out of both, so a baseline
// from one machine gates CI runs on another.
//
// Exit 0 when the gate passes, 1 on a regression (or incomparable
// reports), 2 on bad usage / unreadable input.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "prof/perfdiff.hpp"
#include "runner/arg_parser.hpp"
#include "trace/json.hpp"

namespace {

bool read_report(const std::string& path, armbar::trace::Json* doc) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    std::fprintf(stderr, "armbar-perf: cannot open '%s'\n", path.c_str());
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  std::string err;
  *doc = armbar::trace::Json::parse(buf.str(), &err);
  if (!err.empty()) {
    std::fprintf(stderr, "armbar-perf: %s: JSON parse error: %s\n",
                 path.c_str(), err.c_str());
    return false;
  }
  return true;
}

/// ArgParser has no double-typed option; these come in as strings.
bool parse_double(const std::string& text, const char* flag, double* out) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0' || text.empty()) {
    std::fprintf(stderr, "armbar-perf: --%s expects a number, got '%s'\n",
                 flag, text.c_str());
    return false;
  }
  *out = v;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  armbar::runner::ArgParser args(
      "armbar-perf",
      "Compare two armbar.bench.report documents (baseline, current) on the "
      "machine-independent ips_vs_null throughput ratio and host_prof phase "
      "shares. Gate for CI perf trends.");
  armbar::prof::PerfDiffOptions defaults;
  args.add_value("min-ratio", "R",
                 "gate: current ips_vs_null must be >= R x baseline's",
                 std::to_string(defaults.min_rel_ratio));
  args.add_value("phase-drift", "PP",
                 "flag a phase whose self-time share moved by more than PP "
                 "percentage points",
                 std::to_string(defaults.phase_drift_pp));
  args.add_value("min-phase-share", "PCT",
                 "ignore phase drifts whose current self-time share is below "
                 "PCT percent (share inflation from a faster hot path is not "
                 "a regression)",
                 std::to_string(defaults.min_phase_share_pct));
  args.add_value("min-preset-ratio", "R",
                 "also gate every per-preset *_ips metric, normalized by the "
                 "null loop, at >= R x baseline (0 = off)",
                 std::to_string(defaults.min_preset_ratio));
  args.add_flag("gate-phases",
                "fail the gate on phase-share drifts too (advisory by "
                "default)");

  std::string err;
  if (!args.parse(argc, argv, &err)) {
    std::fprintf(stderr, "armbar-perf: %s\n", err.c_str());
    return 2;
  }
  if (args.help_requested()) {
    std::fputs(args.help().c_str(), stdout);
    return 0;
  }
  if (args.positionals().size() != 2) {
    std::fprintf(stderr,
                 "usage: armbar-perf [options] <baseline.json> "
                 "<current.json> (see --help)\n");
    return 2;
  }

  armbar::prof::PerfDiffOptions opts;
  if (!parse_double(args.str("min-ratio"), "min-ratio", &opts.min_rel_ratio) ||
      !parse_double(args.str("phase-drift"), "phase-drift",
                    &opts.phase_drift_pp) ||
      !parse_double(args.str("min-phase-share"), "min-phase-share",
                    &opts.min_phase_share_pct) ||
      !parse_double(args.str("min-preset-ratio"), "min-preset-ratio",
                    &opts.min_preset_ratio))
    return 2;
  opts.gate_phases = args.given("gate-phases");

  armbar::trace::Json base, cur;
  if (!read_report(args.positionals()[0], &base) ||
      !read_report(args.positionals()[1], &cur))
    return 2;

  const armbar::prof::PerfDiff diff =
      armbar::prof::diff_reports(base, cur, opts);
  std::fputs(armbar::prof::render(diff, opts).c_str(), stdout);
  return diff.ok ? 0 : 1;
}
