// armbar-shm-gc — sweep /dev/shm for stale armbar segments.
//
// A segment is stale when it belongs to the current user and its creator
// pid (baked into the name: /armbar.<user>.<pid>.<name>) is dead. Other
// users' segments and live owners are never touched. The chaos harness and
// every Fleet teardown run the same sweep; this tool is the standalone
// entry point for cron/CI hygiene.
//
//   $ armbar-shm-gc            # sweep and report
//   $ armbar-shm-gc --dry-run  # report only
#include <dirent.h>

#include <cstdio>
#include <string>
#include <vector>

#include "runner/arg_parser.hpp"
#include "shmsvc/service.hpp"

using namespace armbar;

int main(int argc, char** argv) {
  const int worker = shmsvc::maybe_run_worker(argc, argv);
  if (worker >= 0) return worker;

  runner::ArgParser args("armbar-shm-gc",
                         "Unlink /dev/shm/armbar.* segments whose creator "
                         "process is dead (current user only).");
  args.add_flag("dry-run", "scan and report without unlinking");
  args.add_flag("quiet", "print nothing; exit status only");
  std::string err;
  if (!args.parse(argc, argv, &err)) {
    std::fprintf(stderr, "armbar-shm-gc: %s\n%s", err.c_str(),
                 args.help().c_str());
    return 2;
  }
  if (args.help_requested()) {
    std::printf("%s", args.help().c_str());
    return 0;
  }

  if (args.given("dry-run")) {
    // Same scan, no unlink: reuse the parser + liveness probe directly.
    shmsvc::GcStats st;
    std::vector<std::string> stale;
    if (DIR* d = ::opendir("/dev/shm")) {
      const std::string me = shmsvc::current_user();
      while (dirent* e = ::readdir(d)) {
        std::string user, name;
        int pid = 0;
        if (!shmsvc::parse_segment_name(e->d_name, &user, &pid, &name))
          continue;
        ++st.scanned;
        if (user != me) {
          ++st.foreign;
        } else if (shmsvc::pid_alive(pid)) {
          ++st.alive;
        } else {
          ++st.removed;  // would remove
          stale.push_back(std::string("/") + e->d_name);
        }
      }
      ::closedir(d);
    }
    if (!args.given("quiet")) {
      std::printf(
          "armbar-shm-gc (dry run): %d armbar segment(s), %d alive, %d "
          "foreign, %d stale\n",
          st.scanned, st.alive, st.foreign, st.removed);
      for (const std::string& s : stale) std::printf("  stale: %s\n", s.c_str());
    }
    return 0;
  }

  std::vector<std::string> removed;
  const shmsvc::GcStats st = shmsvc::gc_stale_segments(&removed);
  if (!args.given("quiet")) {
    std::printf(
        "armbar-shm-gc: %d armbar segment(s) scanned, %d alive, %d foreign, "
        "%d removed\n",
        st.scanned, st.alive, st.foreign, st.removed);
    for (const std::string& s : removed)
      std::printf("  removed: %s\n", s.c_str());
  }
  return 0;
}
