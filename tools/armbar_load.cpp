// armbar-load — the load generator / consumer half of the shm service.
//
// Two modes:
//   * self-contained: create a segment and run producers AND consumers
//     (one binary demo / bench driver):
//       $ armbar-load --kind rbp --records 1000000 --json LOAD.json
//   * attach: consume from an armbar-serve segment (polls until the
//     creator publishes the ready flag):
//       $ armbar-load --attach-file /tmp/bus.name --consumers 2
//
// Emits an armbar.bench.report/v2 document under --json with throughput,
// tail latency and barrier counts, validated by tools/report_check in CI.
// Doubles as its own re-exec'd worker (maybe_run_worker); SIGINT/SIGTERM
// kill + reap the fleet and exit 128+sig.
#include <cstdio>
#include <ctime>
#include <fstream>
#include <string>

#include "runner/arg_parser.hpp"
#include "shmsvc/service.hpp"
#include "trace/json_report.hpp"

using namespace armbar;

namespace {

/// Polls Segment::attach until it succeeds (creator may still be
/// initializing) or the budget expires.
bool wait_attachable(const std::string& shm_name, std::uint64_t budget_ms,
                     std::string* err) {
  const std::uint64_t deadline = shmsvc::now_ns() + budget_ms * 1000000ull;
  for (;;) {
    {
      shmsvc::Segment probe;
      if (shmsvc::Segment::attach(shm_name, &probe, err)) return true;
    }
    if (shmsvc::now_ns() >= deadline) return false;
    timespec ts{0, 20000000};  // 20 ms
    nanosleep(&ts, nullptr);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int worker = shmsvc::maybe_run_worker(argc, argv);
  if (worker >= 0) return worker;

  runner::ArgParser args(
      "armbar-load",
      "Drive the shm channel service: self-contained producer+consumer "
      "fleet, or the consumer side of an armbar-serve segment (--attach / "
      "--attach-file).");
  args.add_value("kind", "K", "channel kind: q | rb | rbp (create mode)", "rb");
  args.add_int("channels", "N", "channels (create mode)", 1, 1, 16);
  args.add_int("capacity", "N", "ring slots per channel (create mode)", 256, 2,
               1 << 20);
  args.add_int("records", "N", "records per channel (create mode)", 1 << 20, 1,
               1ll << 32);
  args.add_int("consumers", "N", "consumer processes per channel", 2, 1, 64);
  args.add_int("produce-work", "K", "synthetic splitmix rounds per record", 0,
               0, 1 << 20);
  args.add_int("seed", "S", "payload/pilot seed (create mode)", 0x5eed, 0,
               INT64_MAX);
  args.add_int("deadline-s", "N", "no-progress watchdog", 180, 1, 86400);
  args.add_value("attach", "SHMNAME", "attach to this segment (consume only)",
                 "");
  args.add_value("attach-file", "PATH",
                 "read the shm name from this file (armbar-serve --name-file)",
                 "");
  args.add_int("attach-wait-ms", "MS", "how long to poll for the segment",
               10000, 0, 600000);
  args.add_value("json", "PATH", "write an armbar.bench.report/v2 here", "");
  args.add_flag("verbose", "log per-worker lifecycle to stderr");
  std::string err;
  if (!args.parse(argc, argv, &err)) {
    std::fprintf(stderr, "armbar-load: %s\n%s", err.c_str(),
                 args.help().c_str());
    return 2;
  }
  if (args.help_requested()) {
    std::printf("%s", args.help().c_str());
    return 0;
  }

  shmsvc::FleetConfig cfg;
  std::string attach = args.str("attach");
  if (!args.str("attach-file").empty()) {
    // Poll for the file too: serve writes it before creating the segment,
    // but the supervisor may have started us first.
    const std::uint64_t deadline =
        shmsvc::now_ns() +
        static_cast<std::uint64_t>(args.integer("attach-wait-ms")) * 1000000ull;
    for (;;) {
      std::ifstream in(args.str("attach-file"));
      if (in.good() && std::getline(in, attach) && !attach.empty()) break;
      if (shmsvc::now_ns() >= deadline) {
        std::fprintf(stderr, "armbar-load: no shm name in %s\n",
                     args.str("attach-file").c_str());
        return 2;
      }
      timespec ts{0, 20000000};
      nanosleep(&ts, nullptr);
    }
  }
  if (!attach.empty()) {
    if (!wait_attachable(attach,
                         static_cast<std::uint64_t>(args.integer("attach-wait-ms")),
                         &err)) {
      std::fprintf(stderr, "armbar-load: cannot attach %s: %s\n",
                   attach.c_str(), err.c_str());
      return 1;
    }
    cfg.attach = attach;
    cfg.spawn_producers = false;
  } else {
    if (!shmsvc::parse_kind(args.str("kind"), &cfg.seg.kind)) {
      std::fprintf(stderr, "armbar-load: bad --kind '%s' (q | rb | rbp)\n",
                   args.str("kind").c_str());
      return 2;
    }
    cfg.seg.name = "load";
    cfg.seg.channels = static_cast<std::uint32_t>(args.integer("channels"));
    cfg.seg.capacity = static_cast<std::uint32_t>(args.integer("capacity"));
    cfg.seg.records = static_cast<std::uint64_t>(args.integer("records"));
    cfg.seg.seed = static_cast<std::uint64_t>(args.integer("seed"));
  }
  cfg.consumers_per_channel =
      static_cast<std::uint32_t>(args.integer("consumers"));
  cfg.tuning.produce_work =
      static_cast<std::uint32_t>(args.integer("produce-work"));
  cfg.deadline_ms = static_cast<std::uint64_t>(args.integer("deadline-s")) * 1000;
  cfg.verbose = args.given("verbose");

  volatile std::sig_atomic_t* sig = shmsvc::install_tool_signals();
  shmsvc::Fleet fleet(cfg);
  const shmsvc::FleetResult res = fleet.run([sig] { return *sig != 0; });
  if (res.interrupted) {
    shmsvc::emergency_cleanup();
    return 128 + static_cast<int>(*sig);
  }

  const double per_op =
      res.delivered == 0 ? 0.0 : 1.0 / static_cast<double>(res.delivered + res.gaps);
  std::printf(
      "armbar-load: %s — %llu delivered (%.2f M/s), gaps %llu, dups %llu, "
      "p50 %.1fus p99 %.1fus, %.2f barriers/op (%.2f full)\n",
      res.ok ? "ok" : ("FAILED: " + res.error).c_str(),
      static_cast<unsigned long long>(res.delivered), res.mps,
      static_cast<unsigned long long>(res.gaps),
      static_cast<unsigned long long>(res.duplicates), res.p50_us, res.p99_us,
      static_cast<double>(res.barriers) * per_op,
      static_cast<double>(res.full_barriers) * per_op);

  if (!args.str("json").empty()) {
    trace::ReportBuilder rb("armbar_load",
                            "shm channel service load (" +
                                std::string(cfg.attach.empty()
                                                ? shmsvc::to_string(cfg.seg.kind)
                                                : "attached") +
                                ")");
    rb.add_check("fleet drained cleanly", res.ok);
    rb.add_check("zero duplicate deliveries", res.duplicates == 0);
    rb.add_check("delivery accounting identity holds",
                 res.delivered + res.gaps == res.produced);
    rb.add_check("no shm segment left after teardown", res.segments_clean);
    rb.add_param("mode", cfg.attach.empty() ? "create" : "attach");
    rb.add_param("kind", cfg.attach.empty() ? shmsvc::to_string(cfg.seg.kind)
                                            : "external");
    rb.add_param("consumers_per_channel",
                 std::to_string(cfg.consumers_per_channel));
    rb.add_metric("produced", static_cast<double>(res.produced));
    rb.add_metric("delivered", static_cast<double>(res.delivered));
    rb.add_metric("gaps", static_cast<double>(res.gaps));
    rb.add_metric("duplicates", static_cast<double>(res.duplicates));
    rb.add_metric("mps", res.mps);
    rb.add_metric("p50_us", res.p50_us);
    rb.add_metric("p99_us", res.p99_us);
    rb.add_metric("p999_us", res.p999_us);
    rb.add_metric("barriers_per_op",
                  static_cast<double>(res.barriers) * per_op);
    rb.add_metric("full_barriers_per_op",
                  static_cast<double>(res.full_barriers) * per_op);
    rb.add_metric("futex_waits", static_cast<double>(res.futex_waits));
    rb.set_ok(res.ok && res.duplicates == 0 && res.segments_clean);
    if (!rb.write(args.str("json"))) {
      std::fprintf(stderr, "armbar-load: cannot write %s\n",
                   args.str("json").c_str());
      return 1;
    }
    std::printf("armbar-load: report written to %s\n",
                args.str("json").c_str());
  }
  return res.ok && res.duplicates == 0 && res.segments_clean ? 0 : 1;
}
