// armbar-opt: run the barrier-optimization pass pipeline (src/opt) over a
// program corpus from the command line, with the axiomatic checker as the
// per-rewrite equivalence oracle.
//
//   armbar-opt                         # all Table-1 litmus shapes
//   armbar-opt MP+dmb.full SB+dmb.full # shapes by name
//   armbar-opt --locks                 # strong lock handoff templates
//   armbar-opt --fuzz 8                # fuzz seeds 1..8
//   armbar-opt --seed 1234 --naive     # one seed, naive-enumerator oracle
//   armbar-opt --json report.json      # armbar.bench.report/v2 document
//                                      # with the armbar.opt.report/v1
//                                      # section (validate: report_check)
//   armbar-opt --plant-unsound         # self-test: force an illegal delete
//                                      # bypassing the oracle; the final
//                                      # verification must catch it
//
// Exit status: 0 every program optimized (or left alone) with a verified-
// equal outcome set, 1 any program failed verification — including the
// --plant-unsound run, where exit 1 *is* the expected verdict (the planted
// rewrite was caught and restored; ci.sh asserts exactly this). Exit 3
// means --plant-unsound was NOT caught: the oracle is not load-bearing.
// Exit 2: usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fuzz/gen.hpp"
#include "litmus/shapes.hpp"
#include "lockver/templates.hpp"
#include "opt/driver.hpp"
#include "trace/json_report.hpp"

namespace {

using namespace armbar;

void usage(std::FILE* to) {
  std::fputs(
      "usage: armbar-opt [options] [SHAPE ...]\n"
      "\n"
      "Optimize barrier placement with the axiomatic checker as the\n"
      "equivalence oracle (default corpus: every Table-1 litmus shape).\n"
      "\n"
      "  --locks           add the strong lock handoff templates\n"
      "                    (ticket/cna/ffwd) to the corpus\n"
      "  --fuzz N          add fuzz-generated programs for seeds 1..N\n"
      "  --seed S          add one fuzz seed (repeatable)\n"
      "  --pass NAME       run only pass NAME (repeatable; default: all\n"
      "                    registered passes: redundancy, downgrade)\n"
      "  --naive           use the exhaustive enumerator as the oracle\n"
      "  --json PATH       write an armbar.bench.report/v2 document with\n"
      "                    the armbar.opt.report/v1 section\n"
      "  --plant-unsound   planted-unsoundness self-test (see header)\n"
      "  --quiet           only print per-program summary lines\n",
      to);
}

}  // namespace

int main(int argc, char** argv) {
  opt::OptOptions opts;
  std::vector<std::string> shape_names;
  std::string json_path;
  std::uint32_t fuzz_n = 0;
  std::vector<std::uint32_t> seeds;
  bool locks = false, quiet = false, plant = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "armbar-opt: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (arg == "--locks") {
      locks = true;
    } else if (arg == "--fuzz") {
      fuzz_n = static_cast<std::uint32_t>(std::atoi(value("--fuzz")));
    } else if (arg == "--seed") {
      seeds.push_back(static_cast<std::uint32_t>(std::atoi(value("--seed"))));
    } else if (arg == "--pass") {
      opts.passes.push_back(value("--pass"));
    } else if (arg == "--naive") {
      opts.model.naive = true;
    } else if (arg == "--json") {
      json_path = value("--json");
    } else if (arg == "--plant-unsound") {
      plant = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "armbar-opt: unknown option '%s'\n", arg.c_str());
      usage(stderr);
      return 2;
    } else {
      shape_names.push_back(arg);
    }
  }
  if (plant) opts.plant = opt::OptOptions::Plant::kDeleteBypassingOracle;

  // Assemble the corpus. Named shapes beat the default all-shapes sweep;
  // --locks / --fuzz / --seed extend whichever shape set is active.
  std::vector<model::ConcurrentProgram> corpus;
  if (!shape_names.empty()) {
    for (const std::string& n : shape_names) {
      bool found = false;
      for (const litmus::Table1Shape& s : litmus::table1_shapes())
        if (s.name == n) {
          corpus.push_back(s.model_prog);
          corpus.back().name = s.name;  // disambiguate barrier variants
          found = true;
          break;
        }
      if (!found) {
        std::fprintf(stderr, "armbar-opt: unknown shape '%s'\n", n.c_str());
        return 2;
      }
    }
  } else if (!locks && fuzz_n == 0 && seeds.empty()) {
    for (const litmus::Table1Shape& s : litmus::table1_shapes()) {
      corpus.push_back(s.model_prog);
      corpus.back().name = s.name;
    }
  }
  if (locks)
    for (lockver::LockFamily f :
         {lockver::LockFamily::kTicket, lockver::LockFamily::kCna,
          lockver::LockFamily::kFfwd}) {
      lockver::LockScenario sc =
          lockver::make_scenario(f, lockver::Strength::kStrong);
      sc.prog.name = sc.name;
      corpus.push_back(sc.prog);
    }
  for (std::uint32_t s = 1; s <= fuzz_n; ++s)
    corpus.push_back(fuzz::generate(s, {}));
  for (std::uint32_t s : seeds) corpus.push_back(fuzz::generate(s, {}));
  if (corpus.empty()) {
    std::fprintf(stderr, "armbar-opt: empty corpus\n");
    return 2;
  }

  std::vector<opt::OptResult> results;
  int failed = 0;
  bool planted_caught = true, planted_any = false;
  for (const model::ConcurrentProgram& p : corpus) {
    opt::OptResult r = opt::optimize(p, opts);
    if (!quiet) std::fputs(opt::describe_decisions(r).c_str(), stdout);
    std::printf("%s: %s — %u barriers -> %u (%u accepted, %u restored, "
                "%u attempted, %llu oracle calls)\n",
                p.name.c_str(),
                !r.model_valid           ? "SKIPPED (model-invalid)"
                : r.verified_equal       ? "verified"
                                         : "FAILED VERIFICATION",
                r.barriers_before, r.barriers_after, r.accepted, r.restored,
                r.attempted,
                static_cast<unsigned long long>(r.oracle_calls));
    if (r.model_valid && !r.verified_equal) ++failed;
    if (plant) {
      planted_any = planted_any || r.planted_injected;
      if (r.planted_injected && !r.planted_caught) planted_caught = false;
      if (r.planted_injected && r.planted_caught)
        std::printf("%s: planted illegal delete CAUGHT and restored\n",
                    p.name.c_str());
    }
    results.push_back(std::move(r));
  }

  if (!json_path.empty()) {
    trace::ReportBuilder rb("armbar_opt", "barrier-optimization decisions");
    rb.add_param("oracle", opts.model.naive ? "naive" : "por");
    rb.add_param("planted", plant ? "true" : "false");
    std::uint32_t accepted = 0, eliminated = 0;
    for (const opt::OptResult& r : results) {
      accepted += r.accepted;
      if (r.barriers_after < r.barriers_before)
        eliminated += r.barriers_before - r.barriers_after;
    }
    rb.add_metric("programs", static_cast<double>(results.size()));
    rb.add_metric("rewrites_accepted", accepted);
    rb.add_metric("barriers_eliminated", eliminated);
    for (const opt::OptResult& r : results)
      if (r.model_valid && !r.verified_equal)
        rb.add_check("'" + r.original.name + "' verified equal", false);
    rb.set_opt_report(opt::opt_report_json(results));
    if (!rb.write(json_path)) {
      std::fprintf(stderr, "armbar-opt: cannot write %s\n", json_path.c_str());
      return 2;
    }
    if (!quiet) std::printf("report written to %s\n", json_path.c_str());
  }

  if (plant) {
    if (!planted_caught || !planted_any) {
      std::fprintf(stderr,
                   !planted_any
                       ? "armbar-opt: no barrier survived to plant on — the "
                         "self-test proved nothing\n"
                       : "armbar-opt: PLANTED REWRITE NOT CAUGHT — the "
                         "oracle is not load-bearing\n");
      return 3;
    }
    // Caught-and-restored is the expected verdict; exit nonzero so CI can
    // assert the self-test actually tripped (mirrors armbar-lockver).
    return 1;
  }
  return failed == 0 ? 0 : 1;
}
