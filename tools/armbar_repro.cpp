// armbar-repro: one-command replay of a differential-fuzzing failure.
//
//   armbar-repro bundle.repro.json [more.repro.json ...]
//
// Each argument is an armbar.repro/v1 bundle (written by armbar-fuzz, the
// fuzz_differential experiment, or armbar-lockver). The tool re-runs the
// exact grid the bundle captured — same program text, platform presets,
// fault plans, skews, mutation and model budgets — and compares the fresh
// digest against the bundle's `expect_digest`. Equality means the failure
// reproduced bit-exactly: same allowed set, same observed set, same
// failure records.
//
// Bundles with failure_kind "lock_invariant" (lock-verification harness,
// ISSUE 9) replay through lockver::replay_lock_bundle instead: the
// invariants are rebuilt from the bundled scenario name and re-evaluated
// over the bundled program's allowed set, and the recorded witness must
// still violate the recorded invariant.
//
// Exit status: 0 every bundle reproduced, 1 at least one did not (or was a
// false capture that no longer fails), 2 usage / unreadable bundle.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "fuzz/bundle.hpp"
#include "fuzz/diff.hpp"
#include "lockver/harness.hpp"

namespace {

void usage(std::FILE* to) {
  std::fputs(
      "usage: armbar-repro [--quiet] BUNDLE.repro.json [...]\n"
      "\n"
      "Replay armbar.repro/v1 differential-failure bundles bit-exactly.\n"
      "  --quiet   only print the per-bundle verdict lines\n",
      to);
}

/// 0 reproduced, 1 diverged, 2 unreadable.
int replay(const char* path, bool quiet) {
  armbar::fuzz::ReproBundle b;
  std::string err;
  if (!armbar::fuzz::load_bundle(path, &b, &err)) {
    std::fprintf(stderr, "%s: cannot load bundle: %s\n", path, err.c_str());
    return 2;
  }
  if (!quiet) {
    std::printf("%s: program '%s' (%zu threads), kind '%s'\n", path,
                b.prog.name.c_str(), b.prog.threads.size(),
                b.failure_kind.c_str());
    if (!b.detail.empty()) std::printf("%s:   %s\n", path, b.detail.c_str());
  }
  if (b.failure_kind == armbar::lockver::kLockInvariantKind) {
    if (!quiet && !b.scenario.empty())
      std::printf("%s:   lockver scenario '%s', invariant '%s'\n", path,
                  b.scenario.c_str(), b.invariant.c_str());
    const armbar::lockver::ReplayVerdict v =
        armbar::lockver::replay_lock_bundle(b);
    if (!v.loaded) {
      std::fprintf(stderr, "%s: cannot replay: %s\n", path, v.detail.c_str());
      return 2;
    }
    if (!quiet) std::printf("%s:   %s\n", path, v.detail.c_str());
    if (v.reproduced) {
      std::printf("%s: REPRODUCED (digest %016" PRIx64 ")\n", path,
                  b.expect_digest);
      return 0;
    }
    std::printf("%s: NOT REPRODUCED — %s\n", path, v.detail.c_str());
    return 1;
  }
  const armbar::fuzz::DiffResult fresh =
      armbar::fuzz::run_diff(b.prog, b.opts);
  const std::uint64_t digest = fresh.digest();
  const bool same_digest = digest == b.expect_digest;
  bool same_kind = false;
  for (const auto& f : fresh.failures) same_kind |= f.kind == b.failure_kind;
  if (!quiet) std::printf("%s:   %s\n", path, fresh.summary().c_str());
  if (same_digest && same_kind) {
    std::printf("%s: REPRODUCED (digest %016" PRIx64 ", %" PRIu64 " runs)\n",
                path, digest, fresh.runs);
    return 0;
  }
  std::printf("%s: NOT REPRODUCED — %s (expected digest %016" PRIx64
              ", got %016" PRIx64 ")\n",
              path,
              same_kind ? "digest diverged"
                        : "expected failure kind did not occur",
              b.expect_digest, digest);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool quiet = false;
  int first = 1;
  for (; first < argc && argv[first][0] == '-'; ++first) {
    if (std::strcmp(argv[first], "--quiet") == 0) {
      quiet = true;
    } else if (std::strcmp(argv[first], "--help") == 0 ||
               std::strcmp(argv[first], "-h") == 0) {
      usage(stdout);
      return 0;
    } else {
      std::fprintf(stderr, "armbar-repro: unknown option '%s'\n", argv[first]);
      usage(stderr);
      return 2;
    }
  }
  if (first >= argc) {
    usage(stderr);
    return 2;
  }
  int worst = 0;
  for (int i = first; i < argc; ++i) {
    const int rc = replay(argv[i], quiet);
    if (rc > worst) worst = rc;
  }
  return worst;
}
