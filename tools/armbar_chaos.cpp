// armbar-chaos — process-level chaos harness for the shm channel service
// (ISSUE 8 tentpole proof).
//
//   $ armbar-chaos --seconds 20 --seed 7 --kind all
//
// For each requested channel kind, forks a producer/consumer fleet over a
// fresh segment and SIGKILLs workers at seeded random points — both
// supervisor kills and self-inflicted crash plans that die *inside*
// produce/consume critical windows — restarting every victim, until the
// kill window closes; then stops, drains, and audits. Pass criteria, per
// fleet:
//   * no hang (every blocked peer recovers via lease + recovery),
//   * zero duplicate deliveries (mark-array proof, not sampling),
//   * every gap accounted: delivered + gaps == produced exactly,
//   * teardown leaves zero /dev/shm segments (incl. the GC sweep of any
//     stale segment from previous crashed runs).
//
// Doubles as its own re-exec'd worker (maybe_run_worker). SIGINT/SIGTERM
// kill + reap everything and exit 128+sig.
#include <cstdio>
#include <string>
#include <vector>

#include "runner/arg_parser.hpp"
#include "shmsvc/service.hpp"
#include "trace/json_report.hpp"

using namespace armbar;

int main(int argc, char** argv) {
  const int worker = shmsvc::maybe_run_worker(argc, argv);
  if (worker >= 0) return worker;

  runner::ArgParser args(
      "armbar-chaos",
      "Kill/restart chaos soak over the shm channel service: supervisor "
      "SIGKILLs plus in-op crash plans, exact delivery audit after drain.");
  args.add_value("kind", "K", "q | rb | rbp | all", "all");
  args.add_int("seconds", "N", "total kill-window budget across kinds", 20, 1,
               3600);
  args.add_int("seed", "S", "chaos schedule seed", 1, 0, INT64_MAX);
  args.add_int("channels", "N", "channels per segment", 2, 1, 16);
  args.add_int("capacity", "N", "ring slots per channel", 256, 2, 1 << 20);
  args.add_int("records", "N", "produce target per channel", 1 << 20, 1,
               1ll << 32);
  args.add_int("consumers", "N", "consumer processes per channel", 2, 1, 64);
  args.add_int("kill-min-ms", "MS", "min gap between supervisor kills", 40, 1,
               60000);
  args.add_int("kill-max-ms", "MS", "max gap between supervisor kills", 160, 1,
               60000);
  args.add_int("crash-pct", "PCT", "workers spawned with an in-op crash plan",
               60, 0, 100);
  args.add_int("min-cycles", "N",
               "fail unless at least N kill/restart cycles happened in total",
               1, 0, INT64_MAX);
  args.add_value("victims", "WHO", "all | producers", "all");
  args.add_value("json", "PATH", "write an armbar.bench.report/v2 here", "");
  args.add_flag("verbose", "log kills/spawns to stderr");
  std::string err;
  if (!args.parse(argc, argv, &err)) {
    std::fprintf(stderr, "armbar-chaos: %s\n%s", err.c_str(),
                 args.help().c_str());
    return 2;
  }
  if (args.help_requested()) {
    std::printf("%s", args.help().c_str());
    return 0;
  }

  std::vector<shmsvc::ChannelKind> kinds;
  if (args.str("kind") == "all") {
    kinds = {shmsvc::ChannelKind::kLockQueue, shmsvc::ChannelKind::kRing,
             shmsvc::ChannelKind::kPilotRing};
  } else {
    shmsvc::ChannelKind k;
    if (!shmsvc::parse_kind(args.str("kind"), &k)) {
      std::fprintf(stderr, "armbar-chaos: bad --kind '%s'\n",
                   args.str("kind").c_str());
      return 2;
    }
    kinds = {k};
  }
  const bool producers_only = args.str("victims") == "producers";
  if (!producers_only && args.str("victims") != "all") {
    std::fprintf(stderr, "armbar-chaos: bad --victims '%s'\n",
                 args.str("victims").c_str());
    return 2;
  }
  const std::uint64_t window_ms =
      static_cast<std::uint64_t>(args.integer("seconds")) * 1000 /
      kinds.size();

  volatile std::sig_atomic_t* sig = shmsvc::install_tool_signals();
  trace::ReportBuilder rb("armbar_chaos",
                          "shm service chaos soak (seed " +
                              std::to_string(args.integer("seed")) + ")");
  rb.add_param("seed", std::to_string(args.integer("seed")));
  rb.add_param("victims", producers_only ? "producers" : "all");
  rb.add_param("window_ms_per_kind", std::to_string(window_ms));

  bool all_ok = true;
  std::uint64_t total_kills = 0, total_cycles = 0;
  for (shmsvc::ChannelKind kind : kinds) {
    const std::string name = shmsvc::to_string(kind);
    shmsvc::FleetConfig cfg;
    cfg.seg.name = "chaos-" + name;
    cfg.seg.kind = kind;
    cfg.seg.channels = static_cast<std::uint32_t>(args.integer("channels"));
    cfg.seg.capacity = static_cast<std::uint32_t>(args.integer("capacity"));
    cfg.seg.records = static_cast<std::uint64_t>(args.integer("records"));
    cfg.seg.seed = 0xc405ull + static_cast<std::uint64_t>(args.integer("seed"));
    cfg.consumers_per_channel =
        static_cast<std::uint32_t>(args.integer("consumers"));
    cfg.chaos = true;
    cfg.chaos_seed = static_cast<std::uint64_t>(args.integer("seed")) * 3 +
                     static_cast<std::uint64_t>(kind);
    cfg.chaos_ms = window_ms;
    cfg.kill_min_ms = static_cast<std::uint32_t>(args.integer("kill-min-ms"));
    cfg.kill_max_ms = static_cast<std::uint32_t>(args.integer("kill-max-ms"));
    cfg.crash_plan_pct = static_cast<std::uint32_t>(args.integer("crash-pct"));
    cfg.victims = producers_only ? shmsvc::ChaosVictims::kProducersOnly
                                 : shmsvc::ChaosVictims::kAll;
    // The workers spend most of their life being killed; leave generous
    // slack over the window before calling it a hang.
    cfg.deadline_ms = window_ms + 120000;
    cfg.verbose = args.given("verbose");

    std::printf("armbar-chaos: %s — %ums kill window...\n", name.c_str(),
                static_cast<unsigned>(window_ms));
    std::fflush(stdout);
    shmsvc::Fleet fleet(cfg);
    const shmsvc::FleetResult res = fleet.run([sig] { return *sig != 0; });
    if (res.interrupted) {
      shmsvc::emergency_cleanup();
      return 128 + static_cast<int>(*sig);
    }

    std::uint64_t recoveries = 0, tombstoned = 0, reclaimed = 0, rescued = 0;
    for (const shmsvc::ChannelAudit& a : res.channels) {
      recoveries += a.recoveries;
      tombstoned += a.gaps_tombstoned;
      reclaimed += a.gaps_reclaimed;
      rescued += a.intents_rescued;
    }
    std::printf(
        "armbar-chaos: %s — %s: %llu kills, %llu cycles, produced %llu, "
        "delivered %llu, gaps %llu (tombstoned %llu, reclaimed %llu, "
        "rescued %llu), dups %llu, %llu recoveries, %.2fs\n",
        name.c_str(), res.ok ? "ok" : ("FAILED: " + res.error).c_str(),
        static_cast<unsigned long long>(res.kills),
        static_cast<unsigned long long>(res.restarts),
        static_cast<unsigned long long>(res.produced),
        static_cast<unsigned long long>(res.delivered),
        static_cast<unsigned long long>(res.gaps),
        static_cast<unsigned long long>(tombstoned),
        static_cast<unsigned long long>(reclaimed),
        static_cast<unsigned long long>(rescued),
        static_cast<unsigned long long>(res.duplicates),
        static_cast<unsigned long long>(recoveries), res.seconds);

    rb.add_check(name + ": fleet drained with no hang", res.ok);
    rb.add_check(name + ": zero duplicate deliveries", res.duplicates == 0);
    rb.add_check(name + ": every gap accounted (delivered + gaps == produced)",
                 res.delivered + res.gaps == res.produced);
    rb.add_check(name + ": zero shm segments left", res.segments_clean);
    rb.add_metric(name + "_kills", static_cast<double>(res.kills));
    rb.add_metric(name + "_cycles", static_cast<double>(res.restarts));
    rb.add_metric(name + "_produced", static_cast<double>(res.produced));
    rb.add_metric(name + "_delivered", static_cast<double>(res.delivered));
    rb.add_metric(name + "_gaps", static_cast<double>(res.gaps));
    rb.add_metric(name + "_recoveries", static_cast<double>(recoveries));
    rb.add_metric(name + "_gc_removed", static_cast<double>(res.gc_removed));

    all_ok = all_ok && res.ok && res.duplicates == 0 && res.segments_clean &&
             res.delivered + res.gaps == res.produced;
    total_kills += res.kills;
    total_cycles += res.restarts;
  }

  const std::uint64_t min_cycles =
      static_cast<std::uint64_t>(args.integer("min-cycles"));
  const bool enough = total_cycles >= min_cycles;
  if (!enough)
    std::fprintf(stderr, "armbar-chaos: only %llu cycles (< %llu required)\n",
                 static_cast<unsigned long long>(total_cycles),
                 static_cast<unsigned long long>(min_cycles));
  rb.add_check("kill/restart cycle floor reached", enough);
  rb.add_metric("total_kills", static_cast<double>(total_kills));
  rb.add_metric("total_cycles", static_cast<double>(total_cycles));
  rb.set_ok(all_ok && enough);
  if (!args.str("json").empty() && !rb.write(args.str("json"))) {
    std::fprintf(stderr, "armbar-chaos: cannot write %s\n",
                 args.str("json").c_str());
    return 1;
  }

  std::printf("armbar-chaos: %s — %llu supervisor kills, %llu cycles total\n",
              all_ok && enough ? "PASS" : "FAIL",
              static_cast<unsigned long long>(total_kills),
              static_cast<unsigned long long>(total_cycles));
  return all_ok && enough ? 0 : 1;
}
