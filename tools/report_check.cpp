// report_check — validate bench JSON reports against armbar.bench.report/v2
// (v1 documents still validate).
//
//   $ report_check report.json [more.json ...]
//
// Exit 0 when every file parses and conforms (and its checks passed),
// nonzero otherwise. Used by scripts/ci.sh to gate the --json pipeline.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "trace/json.hpp"
#include "trace/json_report.hpp"

namespace {

bool check_file(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    std::fprintf(stderr, "%s: cannot open\n", path);
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  std::string err;
  const armbar::trace::Json doc = armbar::trace::Json::parse(buf.str(), &err);
  if (!err.empty()) {
    std::fprintf(stderr, "%s: JSON parse error: %s\n", path, err.c_str());
    return false;
  }
  if (!armbar::trace::validate_bench_report(doc, &err)) {
    std::fprintf(stderr, "%s: schema violation: %s\n", path, err.c_str());
    return false;
  }
  const bool ok = doc.find("ok")->boolean();
  const std::size_t quarantined = doc.find("quarantine")->size();
  std::printf("%s: valid %s report — bench '%s', %zu checks, %zu metrics, "
              "%zu histograms, %zu quarantined%s\n",
              path, doc.find("schema")->str().c_str(),
              doc.find("bench")->str().c_str(), doc.find("checks")->size(),
              doc.find("metrics")->size(), doc.find("histograms")->size(),
              quarantined, ok ? "" : " [bench checks FAILED]");
  if (const armbar::trace::Json* hp = doc.find("host_prof")) {
    // Validation already ran inside validate_bench_report; this is the
    // human summary of the (report-only) host profile.
    const armbar::trace::Json* ips = hp->find("sim_instructions_per_sec");
    std::printf("%s:   host_prof: %zu phases, wall %.1f ms, %u threads%s\n",
                path, hp->find("phases")->size(),
                hp->find("wall_ns")->number() / 1e6,
                static_cast<unsigned>(hp->find("threads")->number()),
                ips != nullptr ? "" : " (no sim throughput)");
    if (ips != nullptr)
      std::printf("%s:   host_prof: %.2f M sim instr/s\n", path,
                  ips->number() / 1e6);
  }
  if (const armbar::trace::Json* rep = doc.find("opt_report")) {
    // Arithmetic consistency (attempted >= accepted + restored, totals ==
    // per-program sums) already validated; print the human summary.
    const armbar::trace::Json* t = rep->find("totals");
    std::printf("%s:   opt_report: %zu programs, %.0f attempted = %.0f "
                "accepted + %.0f restored (+%.0f undecided), %.0f barriers "
                "eliminated\n",
                path, rep->find("programs")->size(),
                t->find("rewrites_attempted")->number(),
                t->find("rewrites_accepted")->number(),
                t->find("rewrites_restored")->number(),
                t->find("rewrites_attempted")->number() -
                    t->find("rewrites_accepted")->number() -
                    t->find("rewrites_restored")->number(),
                t->find("barriers_eliminated")->number());
  }
  for (const armbar::trace::Json& q : doc.find("quarantine")->items()) {
    std::fprintf(stderr, "%s: quarantined '%s': %s (%s)\n", path,
                 q.find("name")->str().c_str(),
                 q.find("kind") ? q.find("kind")->str().c_str() : "?",
                 q.find("reason") ? q.find("reason")->str().c_str() : "");
    if (const armbar::trace::Json* inv = q.find("invariant"))
      std::fprintf(stderr, "%s:   invariant: %s, witness: %s\n", path,
                   inv->str().c_str(),
                   q.find("witness") ? q.find("witness")->str().c_str() : "?");
    if (const armbar::trace::Json* bundle = q.find("repro_bundle"))
      std::fprintf(stderr, "%s:   replay: armbar-repro %s\n", path,
                   bundle->str().c_str());
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <report.json> [more.json ...]\n", argv[0]);
    return 2;
  }
  bool ok = true;
  for (int i = 1; i < argc; ++i) ok = check_file(argv[i]) && ok;
  return ok ? 0 : 1;
}
