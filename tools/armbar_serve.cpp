// armbar-serve — the producer half of the shm channel service.
//
//   $ armbar-serve --kind rbp --channels 2 --records 1000000 \
//                  --name-file /tmp/bus.name
//
// Creates the segment, runs one producer process per channel, and waits
// until *external* consumers (armbar-load --attach) drain every channel,
// then audits, unlinks and exits. The full shm name is written to
// --name-file up front — attachers poll Segment::attach until the creator
// publishes the ready flag, so the file may briefly name a segment that
// does not exist yet.
//
// The binary doubles as its own re-exec'd worker (maybe_run_worker), like
// every shmsvc tool. SIGINT/SIGTERM kill + reap the fleet, unlink the
// segment, and exit 128+sig.
#include <cstdio>
#include <fstream>
#include <string>

#include "runner/arg_parser.hpp"
#include "shmsvc/service.hpp"

using namespace armbar;

int main(int argc, char** argv) {
  const int worker = shmsvc::maybe_run_worker(argc, argv);
  if (worker >= 0) return worker;

  runner::ArgParser args(
      "armbar-serve",
      "Create a shm channel segment and serve its producer side until "
      "external consumers drain it.");
  args.add_value("kind", "K", "channel kind: q | rb | rbp", "rb");
  args.add_int("channels", "N", "channels in the segment", 1, 1, 16);
  args.add_int("capacity", "N", "ring slots per channel (power of two)", 256,
               2, 1 << 20);
  args.add_int("records", "N", "records to produce per channel", 1 << 20, 1,
               1ll << 32);
  args.add_int("produce-work", "K", "synthetic splitmix rounds per record", 0,
               0, 1 << 20);
  args.add_int("seed", "S", "payload/pilot seed", 0x5eed, 0, INT64_MAX);
  args.add_int("deadline-s", "N", "no-progress watchdog (whole service)", 180,
               1, 86400);
  args.add_value("name", "NAME", "segment base name", "svc");
  args.add_value("name-file", "PATH", "write the full shm name here", "");
  args.add_flag("verbose", "log per-worker lifecycle to stderr");
  std::string err;
  if (!args.parse(argc, argv, &err)) {
    std::fprintf(stderr, "armbar-serve: %s\n%s", err.c_str(),
                 args.help().c_str());
    return 2;
  }
  if (args.help_requested()) {
    std::printf("%s", args.help().c_str());
    return 0;
  }

  shmsvc::FleetConfig cfg;
  if (!shmsvc::parse_kind(args.str("kind"), &cfg.seg.kind)) {
    std::fprintf(stderr, "armbar-serve: bad --kind '%s' (q | rb | rbp)\n",
                 args.str("kind").c_str());
    return 2;
  }
  cfg.seg.name = args.str("name");
  cfg.seg.channels = static_cast<std::uint32_t>(args.integer("channels"));
  cfg.seg.capacity = static_cast<std::uint32_t>(args.integer("capacity"));
  cfg.seg.records = static_cast<std::uint64_t>(args.integer("records"));
  cfg.seg.seed = static_cast<std::uint64_t>(args.integer("seed"));
  cfg.spawn_consumers = false;
  cfg.consumers_per_channel = 0;
  cfg.tuning.produce_work =
      static_cast<std::uint32_t>(args.integer("produce-work"));
  cfg.deadline_ms = static_cast<std::uint64_t>(args.integer("deadline-s")) * 1000;
  cfg.verbose = args.given("verbose");

  // The name is derived from our pid, so it is known before the segment
  // exists; publish it first so the consumer side can start polling.
  const std::string full = shmsvc::full_segment_name(cfg.seg.name);
  if (!args.str("name-file").empty()) {
    std::ofstream out(args.str("name-file"), std::ios::trunc);
    out << full << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "armbar-serve: cannot write %s\n",
                   args.str("name-file").c_str());
      return 2;
    }
  }
  std::printf("armbar-serve: %s (%s, %u channel%s, %llu records/ch)\n",
              full.c_str(), shmsvc::to_string(cfg.seg.kind), cfg.seg.channels,
              cfg.seg.channels == 1 ? "" : "s",
              static_cast<unsigned long long>(cfg.seg.records));
  std::fflush(stdout);

  volatile std::sig_atomic_t* sig = shmsvc::install_tool_signals();
  shmsvc::Fleet fleet(cfg);
  const shmsvc::FleetResult res = fleet.run([sig] { return *sig != 0; });
  if (res.interrupted) {
    shmsvc::emergency_cleanup();
    return 128 + static_cast<int>(*sig);
  }

  std::printf(
      "armbar-serve: %s — produced %llu, delivered %llu, gaps %llu, "
      "dups %llu in %.2fs\n",
      res.ok ? "drained" : ("FAILED: " + res.error).c_str(),
      static_cast<unsigned long long>(res.produced),
      static_cast<unsigned long long>(res.delivered),
      static_cast<unsigned long long>(res.gaps),
      static_cast<unsigned long long>(res.duplicates), res.seconds);
  if (!res.segments_clean)
    std::fprintf(stderr, "armbar-serve: segment left behind after teardown\n");
  return res.ok && res.segments_clean ? 0 : 1;
}
