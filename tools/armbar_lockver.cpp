// armbar-lockver: verify lock handoff templates against the axiomatic
// checker (and optionally the simulator grid), from the command line.
//
//   armbar-lockver                      # all six clean scenarios
//   armbar-lockver ticket/weakened      # one scenario by name
//   armbar-lockver --plant drop-release cna/weakened
//   armbar-lockver --platform kunpeng916 --chaos-seeds 1 --out /tmp ffwd/strong
//
// Every failing scenario (invariant violation or sim/model divergence)
// writes an armbar.repro/v1 bundle with failure_kind "lock_invariant"
// into --out; replay it with `armbar-repro BUNDLE`.
//
// Exit status: 0 everything verified clean, 1 at least one scenario
// failed (bundles written), 2 usage error / unknown scenario.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fuzz/bundle.hpp"
#include "lockver/harness.hpp"

namespace {

using namespace armbar;

void usage(std::FILE* to) {
  std::fputs(
      "usage: armbar-lockver [options] [SCENARIO ...]\n"
      "\n"
      "Verify lock handoff scenarios (default: all six clean family/strength\n"
      "variants) through the axiomatic checker + simulator cross-check.\n"
      "Scenario names: {ticket,cna,ffwd}/{strong,weakened}[+BUG].\n"
      "\n"
      "  --plant BUG       plant a bug into every selected scenario:\n"
      "                    drop-acquire | drop-release | downgrade-dmb\n"
      "  --platform NAME   sim platform preset (repeatable; default: all)\n"
      "  --chaos-seeds N   chaos fault plans per platform (default 2)\n"
      "  --no-sim          model-only: skip the simulator cross-check\n"
      "  --out DIR         directory for failure bundles (default '.')\n"
      "  --quiet           only print per-scenario verdict lines\n",
      to);
}

}  // namespace

int main(int argc, char** argv) {
  lockver::VerifyOptions opts;
  lockver::PlantedBug plant = lockver::PlantedBug::kNone;
  std::string out_dir = ".";
  bool quiet = false;
  std::vector<std::string> names;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "armbar-lockver: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (arg == "--plant") {
      if (!lockver::planted_from_string(value("--plant"), &plant) ||
          plant == lockver::PlantedBug::kNone) {
        std::fprintf(stderr, "armbar-lockver: unknown bug '%s'\n", argv[i]);
        return 2;
      }
    } else if (arg == "--platform") {
      opts.platforms.push_back(value("--platform"));
    } else if (arg == "--chaos-seeds") {
      opts.chaos_seeds =
          static_cast<std::uint32_t>(std::atoi(value("--chaos-seeds")));
    } else if (arg == "--no-sim") {
      opts.sim_crosscheck = false;
    } else if (arg == "--out") {
      out_dir = value("--out");
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "armbar-lockver: unknown option '%s'\n",
                   arg.c_str());
      usage(stderr);
      return 2;
    } else {
      names.push_back(arg);
    }
  }

  std::vector<lockver::LockScenario> scenarios;
  if (names.empty()) {
    scenarios = lockver::all_clean_scenarios();
  } else {
    for (const std::string& n : names) {
      lockver::LockScenario sc;
      if (!lockver::scenario_by_name(n, &sc)) {
        std::fprintf(stderr, "armbar-lockver: unknown scenario '%s'\n",
                     n.c_str());
        return 2;
      }
      scenarios.push_back(std::move(sc));
    }
  }
  if (plant != lockver::PlantedBug::kNone) {
    for (lockver::LockScenario& sc : scenarios) {
      if (sc.planted != lockver::PlantedBug::kNone) {
        std::fprintf(stderr,
                     "armbar-lockver: '%s' already has a planted bug; "
                     "--plant only applies to clean scenarios\n",
                     sc.name.c_str());
        return 2;
      }
      sc = lockver::make_scenario(sc.family, sc.strength, plant);
    }
  }

  int failed = 0;
  for (const lockver::LockScenario& sc : scenarios) {
    const lockver::VerifyResult r = lockver::verify(sc, opts);
    if (!quiet) std::printf("%s\n", r.summary().c_str());
    if (r.ok()) {
      std::printf("%s: OK (%u dmb/handoff)\n", sc.name.c_str(),
                  sc.handoff_dmbs);
      continue;
    }
    ++failed;
    std::string path = out_dir + "/lockver_";
    for (char c : sc.name) path += (c == '/' || c == '+') ? '_' : c;
    path += ".repro.json";
    const fuzz::ReproBundle b = lockver::make_lock_bundle(sc, opts, r);
    std::string err;
    if (!fuzz::write_bundle(path, b, &err)) {
      std::fprintf(stderr, "%s: FAILED, and bundle write failed: %s\n",
                   sc.name.c_str(), err.c_str());
      continue;
    }
    std::printf("%s: FAILED — bundle written to %s\n", sc.name.c_str(),
                path.c_str());
  }
  return failed == 0 ? 0 : 1;
}
