// Overhead bound (SLOW tier): a profiled simulator run must cost no more
// than a small multiple of an unprofiled one. The bound is deliberately
// loose — CI machines are noisy — but a per-event syscall or a lock on the
// hot path would blow through it immediately.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "prof/prof.hpp"
#include "sim/machine.hpp"
#include "sim/platform.hpp"

namespace armbar::prof {
namespace {

using namespace armbar::sim;

Program producer(std::uint32_t k) {
  Asm a;
  a.movi(X0, 0x1000).movi(X2, 0x2000).movi(X5, k).movi(X3, 0);
  a.label("loop");
  a.addi(X3, X3, 1);
  a.str(X3, X0, 0);
  a.dmb_st();
  a.str(X3, X2, 0);
  a.cmp(X3, X5);
  a.bne("loop");
  a.halt();
  return a.take("overhead-producer");
}

Program consumer(std::uint32_t k) {
  Asm a;
  a.movi(X0, 0x1000).movi(X2, 0x2000).movi(X5, k);
  a.label("wait");
  a.ldr(X3, X2, 0);
  a.cmp(X3, X5);
  a.bne("wait");
  a.dmb_ld();
  a.ldr(X10, X0, 0);
  a.halt();
  return a.take("overhead-consumer");
}

/// One timed MP run on the kirin960 preset; returns host ns.
std::uint64_t timed_run(const Program& prod, const Program& cons) {
  Machine m(kirin960(), 8u << 20);
  m.load_program(0, prod);
  m.load_program(m.num_cores() - 1, cons);
  const auto t0 = std::chrono::steady_clock::now();
  const RunResult res = m.run(RunConfig{});
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  EXPECT_TRUE(res.completed);
  return static_cast<std::uint64_t>(ns);
}

std::uint64_t median_of(std::vector<std::uint64_t> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

TEST(ProfOverhead, ProfiledRunWithinBudget) {
  if (!compiled_in()) GTEST_SKIP() << "profiler compiled out";
  constexpr std::uint32_t kRounds = 2000;
  constexpr int kReps = 5;
  const Program prod = producer(kRounds);
  const Program cons = consumer(kRounds);

  set_enabled(false);
  reset();
  // Warm-up (page faults, branch predictors) before either series.
  timed_run(prod, cons);

  std::vector<std::uint64_t> off, on;
  for (int i = 0; i < kReps; ++i) off.push_back(timed_run(prod, cons));
  {
    Session s;
    for (int i = 0; i < kReps; ++i) on.push_back(timed_run(prod, cons));
  }
  const Snapshot snap = snapshot();
  reset();

  EXPECT_GE(snap.counter(Counter::kSimRuns), static_cast<std::uint64_t>(kReps));
  EXPECT_GT(snap.counter(Counter::kSimInstructions), 0u);

  const double base = static_cast<double>(median_of(off));
  const double prof = static_cast<double>(median_of(on));
  // <= 6x plus 2ms absolute slack: generous against host noise, fatal for
  // a syscall-per-scope or contended-lock implementation.
  EXPECT_LE(prof, base * 6.0 + 2e6)
      << "profiled median " << prof / 1e6 << " ms vs unprofiled "
      << base / 1e6 << " ms";
}

}  // namespace
}  // namespace armbar::prof
