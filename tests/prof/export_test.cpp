// Exporters and the report surface: host_prof JSON shape + validation
// through ReportBuilder, collapsed-stack and chrome-trace formats, the
// perfdiff gate, and the validator's rejection paths.
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "prof/export.hpp"
#include "prof/perfdiff.hpp"
#include "prof/prof.hpp"
#include "trace/json.hpp"
#include "trace/json_report.hpp"

namespace armbar::prof {
namespace {

using trace::Json;

void busy_us(std::int64_t us) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < until) {
  }
}

/// Record a small but real profile: sim.run{sim.issue} + instruction count.
Snapshot recorded_snapshot() {
  set_enabled(false);
  reset();
  {
    Session s;
    ARMBAR_PROF_SCOPE(kSimRun);
    busy_us(200);
    {
      ARMBAR_PROF_SCOPE(kSimIssue);
      busy_us(100);
    }
    ARMBAR_PROF_COUNT(kSimInstructions, 12345);
  }
  Snapshot snap = snapshot();
  set_enabled(false);
  reset();
  return snap;
}

/// Minimal hand-built host_prof section (used where the real API cannot
/// produce the malformed shape under test).
Json hand_host_prof(double total_ns, double self_ns, double ips) {
  Json hp = Json::object();
  hp.set("schema", kHostProfSchema);
  hp.set("excluded_from_digests", true);
  hp.set("wall_ns", 1e6);
  hp.set("threads", 1);
  Json phases = Json::object();
  Json p = Json::object();
  p.set("count", 10);
  p.set("total_ns", total_ns);
  p.set("self_ns", self_ns);
  phases.set("sim.run", p);
  hp.set("phases", phases);
  if (ips != 0) hp.set("sim_instructions_per_sec", ips);
  return hp;
}

/// A minimal valid report document carrying `hp` and an ips_vs_null metric.
Json report_with(const Json& hp, double ips_vs_null) {
  trace::ReportBuilder rb("sim_perf", "test report");
  rb.add_check("measured", true);
  if (ips_vs_null != 0) rb.add_metric("ips_vs_null", ips_vs_null);
  if (!hp.is_null()) rb.set_host_prof(hp);
  return rb.build();
}

TEST(HostProfJson, ShapeAndValidation) {
  if (!compiled_in()) GTEST_SKIP() << "profiler compiled out";
  const Snapshot snap = recorded_snapshot();
  ASSERT_TRUE(snap.has_data());
  const Json hp = host_prof_json(snap);

  ASSERT_TRUE(hp.is_object());
  EXPECT_EQ(hp.find("schema")->str(), kHostProfSchema);
  EXPECT_TRUE(hp.find("excluded_from_digests")->boolean());
  const Json* phases = hp.find("phases");
  ASSERT_NE(phases, nullptr);
  ASSERT_NE(phases->find("sim.run"), nullptr);
  ASSERT_NE(phases->find("sim.issue"), nullptr);
  EXPECT_GT(phases->find("sim.run")->find("total_ns")->number(), 0.0);
  // 12345 instructions over a real sim.run scope: derived ips present, > 0.
  ASSERT_NE(hp.find("sim_instructions_per_sec"), nullptr);
  EXPECT_GT(hp.find("sim_instructions_per_sec")->number(), 0.0);

  // The full report with this section attached validates.
  const Json doc = report_with(hp, 0.001);
  std::string err;
  EXPECT_TRUE(trace::validate_bench_report(doc, &err)) << err;
  ASSERT_NE(doc.find("host_prof"), nullptr);
}

TEST(HostProfJson, CollapsedStacksFormat) {
  if (!compiled_in()) GTEST_SKIP() << "profiler compiled out";
  const Snapshot snap = recorded_snapshot();
  const std::string folded = collapsed_stacks(snap);
  // flamegraph.pl lines: "path;path <self_ns>\n" — the nested phase shows
  // up under its parent's path.
  EXPECT_NE(folded.find("sim.run "), std::string::npos);
  EXPECT_NE(folded.find("sim.run;sim.issue "), std::string::npos);
}

TEST(HostProfJson, ChromeTraceParses) {
  if (!compiled_in()) GTEST_SKIP() << "profiler compiled out";
  const Snapshot snap = recorded_snapshot();
  std::string err;
  const Json doc = Json::parse(chrome_trace_json(snap), &err);
  ASSERT_TRUE(err.empty()) << err;
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_GE(events->size(), 2u);  // both phases + metadata
}

TEST(PerfDiff, GatePassesAndFails) {
  const Json hp = hand_host_prof(/*total_ns=*/5e5, /*self_ns=*/4e5,
                                 /*ips=*/2e6);
  const Json base = report_with(hp, 0.004);

  // Same self-relative throughput: gate passes.
  PerfDiff ok = diff_reports(base, report_with(hp, 0.0039), {});
  EXPECT_TRUE(ok.comparable);
  EXPECT_TRUE(ok.ok);
  EXPECT_NEAR(ok.rel_ratio, 0.975, 1e-9);

  // Current at a quarter of the baseline ratio: below the 0.5 floor.
  PerfDiff bad = diff_reports(base, report_with(hp, 0.001), {});
  EXPECT_TRUE(bad.comparable);
  EXPECT_FALSE(bad.ok);

  // Missing host_prof on either side: not comparable, gate fails closed.
  PerfDiff missing = diff_reports(base, report_with(Json(), 0.004), {});
  EXPECT_FALSE(missing.comparable);
  EXPECT_FALSE(missing.ok);
}

TEST(PerfDiff, PhaseDriftVerdicts) {
  // Base: one phase at 100% share. Current: a second phase takes 40%.
  Json base_hp = hand_host_prof(5e5, 4e5, 2e6);
  Json cur_hp = hand_host_prof(5e5, 3e5, 2e6);
  Json extra = Json::object();
  extra.set("count", 5);
  extra.set("total_ns", 2e5);
  extra.set("self_ns", 2e5);
  // find() returns const; rebuild phases with the extra entry.
  Json phases = *cur_hp.find("phases");
  phases.set("sim.coherence", extra);
  cur_hp.set("phases", phases);

  PerfDiffOptions opts;
  opts.phase_drift_pp = 15.0;
  const PerfDiff d =
      diff_reports(report_with(base_hp, 0.004), report_with(cur_hp, 0.004), opts);
  ASSERT_TRUE(d.comparable);
  EXPECT_TRUE(d.ok);  // drifts are advisory by default
  bool saw_new = false;
  for (const PhaseVerdict& v : d.phases)
    if (v.phase == "sim.coherence") {
      saw_new = true;
      EXPECT_EQ(v.verdict, "new");
    }
  EXPECT_TRUE(saw_new);

  // gate_phases promotes a big drift to a failure.
  PerfDiffOptions strict = opts;
  strict.gate_phases = true;
  strict.phase_drift_pp = 5.0;
  const PerfDiff s = diff_reports(report_with(base_hp, 0.004),
                                  report_with(cur_hp, 0.004), strict);
  // sim.run went 100% -> 60%: negative drift, fine. But if we flip the
  // direction (cur as base) sim.run grows by 40pp and must fail.
  const PerfDiff flipped = diff_reports(report_with(cur_hp, 0.004),
                                        report_with(base_hp, 0.004), strict);
  EXPECT_TRUE(s.ok);
  EXPECT_FALSE(flipped.ok);
}

TEST(PerfDiff, PhaseDriftFloorSuppressesTinyPhases) {
  // Base: "sim.run" 99.9% + "sim.verify" 0.1%. Current: the hot path got
  // ~20x faster so "sim.verify" inflates to 1.9% — a +1.8pp drift that
  // would exceed a 1pp threshold, but its current share is still under the
  // 2% floor: not a regression.
  auto two_phase = [](double run_self, double verify_self) {
    Json hp = hand_host_prof(run_self, run_self, 2e6);
    Json verify = Json::object();
    verify.set("count", 3);
    verify.set("total_ns", verify_self);
    verify.set("self_ns", verify_self);
    Json phases = *hp.find("phases");
    phases.set("sim.verify", verify);
    hp.set("phases", phases);
    return hp;
  };
  const Json base_hp = two_phase(9.99e8, 1e6);   // verify share 0.1%
  const Json cur_hp = two_phase(5.2e7, 1e6);     // verify share ~1.9%

  PerfDiffOptions opts;
  opts.phase_drift_pp = 1.0;
  opts.gate_phases = true;
  opts.min_phase_share_pct = 2.0;
  const PerfDiff d = diff_reports(report_with(base_hp, 0.004),
                                  report_with(cur_hp, 0.012), opts);
  ASSERT_TRUE(d.comparable);
  for (const PhaseVerdict& v : d.phases)
    if (v.phase == "sim.verify") {
      EXPECT_GT(v.drift_pp, opts.phase_drift_pp);
      EXPECT_EQ(v.verdict, "ok") << "sub-floor share must not regress";
    }
  EXPECT_TRUE(d.ok);

  // Drop the floor to zero and the same drift regresses again.
  opts.min_phase_share_pct = 0.0;
  const PerfDiff strict = diff_reports(report_with(base_hp, 0.004),
                                       report_with(cur_hp, 0.012), opts);
  EXPECT_FALSE(strict.ok);
}

TEST(PerfDiff, PresetRatioGate) {
  const Json hp = hand_host_prof(5e5, 4e5, 2e6);
  auto report = [&](double null_mops, double rpi4_ips, double kp_ips) {
    trace::ReportBuilder rb("sim_perf", "test report");
    rb.add_check("measured", true);
    rb.add_metric("ips_vs_null", 0.004);
    rb.add_metric("null_loop_mops", null_mops);
    rb.add_metric("rpi4_mp_ips", rpi4_ips);
    rb.add_metric("kunpeng916_deep_ips", kp_ips);
    rb.set_host_prof(hp);
    return rb.build();
  };
  // Current host is 2x faster (null loop 600 -> 1200 Mops); raw preset ips
  // doubled too, so the normalized per-preset ratio is exactly 1.0.
  const Json base = report(600.0, 3e6, 8e6);
  const Json same = report(1200.0, 6e6, 16e6);
  PerfDiffOptions opts;
  opts.min_preset_ratio = 0.9;
  PerfDiff d = diff_reports(base, same, opts);
  ASSERT_TRUE(d.comparable);
  ASSERT_EQ(d.presets.size(), 2u);
  for (const PresetRatio& p : d.presets) {
    EXPECT_NEAR(p.ratio, 1.0, 1e-9) << p.metric;
    EXPECT_TRUE(p.ok);
  }
  EXPECT_TRUE(d.ok);

  // One preset regresses (same host speed, kunpeng916 at half): the
  // aggregate ips_vs_null is untouched but the preset gate still fails.
  const Json one_bad = report(600.0, 3e6, 4e6);
  d = diff_reports(base, one_bad, opts);
  ASSERT_TRUE(d.comparable);
  EXPECT_FALSE(d.ok);
  bool saw_bad = false;
  for (const PresetRatio& p : d.presets)
    if (p.metric == "kunpeng916_deep_ips") {
      saw_bad = true;
      EXPECT_NEAR(p.ratio, 0.5, 1e-9);
      EXPECT_FALSE(p.ok);
    }
  EXPECT_TRUE(saw_bad);

  // min_preset_ratio = 0 (default) ignores preset metrics entirely.
  d = diff_reports(base, one_bad, {});
  EXPECT_TRUE(d.ok);

  // A baseline without preset metrics fails closed when gating is on.
  trace::ReportBuilder rb("sim_perf", "no presets");
  rb.add_check("measured", true);
  rb.add_metric("ips_vs_null", 0.004);
  rb.add_metric("null_loop_mops", 600.0);
  rb.set_host_prof(hp);
  d = diff_reports(rb.build(), same, opts);
  EXPECT_FALSE(d.comparable);
  EXPECT_FALSE(d.ok);
}

TEST(Validator, RejectsMalformedHostProf) {
  std::string err;

  // self_ns > total_ns: monotone-summable violation.
  EXPECT_FALSE(trace::validate_bench_report(
      report_with(hand_host_prof(1e5, 2e5, 2e6), 0.004), &err));
  EXPECT_NE(err.find("self_ns > total_ns"), std::string::npos) << err;

  // Non-positive throughput.
  Json hp = hand_host_prof(5e5, 4e5, 0);
  hp.set("sim_instructions_per_sec", -1.0);
  EXPECT_FALSE(trace::validate_bench_report(report_with(hp, 0.004), &err));

  // Missing the excluded_from_digests marker.
  Json unmarked = hand_host_prof(5e5, 4e5, 2e6);
  unmarked.set("excluded_from_digests", false);
  EXPECT_FALSE(
      trace::validate_bench_report(report_with(unmarked, 0.004), &err));
  EXPECT_NE(err.find("excluded_from_digests"), std::string::npos) << err;

  // Empty phase name (impossible via the API, possible in a doctored file).
  Json doctored = hand_host_prof(5e5, 4e5, 2e6);
  Json phases = *doctored.find("phases");
  Json p = Json::object();
  p.set("count", 1);
  p.set("total_ns", 1.0);
  p.set("self_ns", 1.0);
  phases.set("", p);
  doctored.set("phases", phases);
  EXPECT_FALSE(
      trace::validate_bench_report(report_with(doctored, 0.004), &err));

  // Phase self sum exceeding the wall * threads envelope.
  Json over = hand_host_prof(5e5, 4e5, 2e6);
  over.set("wall_ns", 1e3);  // 400us of self time in a 1us wall
  EXPECT_FALSE(trace::validate_bench_report(report_with(over, 0.004), &err));
  EXPECT_NE(err.find("exceeds wall_ns"), std::string::npos) << err;
}

TEST(Validator, RejectsProfDigestLeakParam) {
  trace::ReportBuilder rb("leaky", "leak test");
  rb.add_check("ran", true);
  rb.add_param("prof_digest_leak", "true");
  std::string err;
  EXPECT_FALSE(trace::validate_bench_report(rb.build(), &err));
  EXPECT_NE(err.find("leaked into point digests"), std::string::npos) << err;

  // Consolidated (prefixed) spelling is rejected too.
  trace::ReportBuilder rb2("armbar-bench", "leak test");
  rb2.add_check("ran", true);
  rb2.add_param("sim_perf/prof_digest_leak", "true");
  EXPECT_FALSE(trace::validate_bench_report(rb2.build(), &err));

  // "false" does not trip it.
  trace::ReportBuilder rb3("clean", "leak test");
  rb3.add_check("ran", true);
  rb3.add_param("prof_digest_leak", "false");
  EXPECT_TRUE(trace::validate_bench_report(rb3.build(), &err)) << err;
}

}  // namespace
}  // namespace armbar::prof
