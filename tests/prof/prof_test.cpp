// Profiler core: disabled-by-default no-record, scope nesting and
// reentrancy accounting, per-thread merge determinism, reset semantics.
//
// Tests that inspect recorded data GTEST_SKIP when the build compiled the
// profiler out (ARMBAR_PROF_DISABLED) — CI runs this binary in that
// configuration too, to prove the macro surface still compiles.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "prof/prof.hpp"

namespace armbar::prof {
namespace {

/// Spin until the steady clock has advanced by `us` — guarantees a scope
/// accumulates measurably nonzero ticks on any clocksource.
void busy_us(std::int64_t us) {
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < until) {
  }
}

class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(false);
    reset();
  }
  void TearDown() override {
    set_enabled(false);
    reset();
  }
};

TEST_F(ProfTest, DisabledByDefaultRecordsNothing) {
  ASSERT_FALSE(enabled());
  {
    ARMBAR_PROF_SCOPE(kSimRun);
    ARMBAR_PROF_COUNT(kSimInstructions, 42);
    busy_us(50);
  }
  const Snapshot snap = snapshot();
  EXPECT_FALSE(snap.has_data());
  EXPECT_EQ(snap.counter(Counter::kSimInstructions), 0u);
  EXPECT_EQ(snap.phase(Phase::kSimRun).count, 0u);
}

TEST_F(ProfTest, NestedScopesSelfWithinTotal) {
  if (!compiled_in()) GTEST_SKIP() << "profiler compiled out";
  {
    Session s;
    ASSERT_TRUE(s.owned());
    ARMBAR_PROF_SCOPE(kSimRun);
    busy_us(200);
    {
      ARMBAR_PROF_SCOPE(kSimIssue);
      busy_us(200);
    }
    busy_us(100);
  }
  const Snapshot snap = snapshot();
  ASSERT_TRUE(snap.has_data());
  const PhaseStats& run = snap.phase(Phase::kSimRun);
  const PhaseStats& issue = snap.phase(Phase::kSimIssue);
  EXPECT_EQ(run.count, 1u);
  EXPECT_EQ(issue.count, 1u);
  EXPECT_GT(run.total_ns, 0u);
  EXPECT_GE(run.total_ns, issue.total_ns);  // child nested inside parent
  EXPECT_LE(run.self_ns, run.total_ns);
  // The child accounts for its slice: parent self < parent total.
  EXPECT_LT(run.self_ns, run.total_ns);

  // Calltree shape: sim.issue's node hangs off sim.run's node.
  ASSERT_EQ(snap.nodes.size(), 2u);
  EXPECT_EQ(snap.nodes[0].phase, Phase::kSimRun);
  EXPECT_EQ(snap.nodes[0].parent, -1);
  EXPECT_EQ(snap.nodes[1].phase, Phase::kSimIssue);
  EXPECT_EQ(snap.nodes[1].parent, 0);
}

TEST_F(ProfTest, ReentrantScopesBillTopmostOnce) {
  if (!compiled_in()) GTEST_SKIP() << "profiler compiled out";
  {
    Session s;
    ARMBAR_PROF_SCOPE(kSimRun);
    busy_us(100);
    {
      // Re-entering the same phase must not double-bill the flat total.
      ARMBAR_PROF_SCOPE(kSimRun);
      busy_us(100);
    }
  }
  const Snapshot snap = snapshot();
  const PhaseStats& run = snap.phase(Phase::kSimRun);
  EXPECT_EQ(run.count, 2u);  // both entries counted...
  // ...but total_ns is the topmost occurrence only: strictly less than the
  // naive sum (outer + inner > outer since inner is inside outer).
  ASSERT_EQ(snap.nodes.size(), 2u);
  EXPECT_EQ(run.total_ns, snap.nodes[0].total_ns);
  EXPECT_LT(run.total_ns, snap.nodes[0].total_ns + snap.nodes[1].total_ns);
}

TEST_F(ProfTest, PerThreadMergeIsDeterministic) {
  if (!compiled_in()) GTEST_SKIP() << "profiler compiled out";
  {
    Session s;
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t)
      workers.emplace_back([] {
        ARMBAR_PROF_SCOPE(kSimRun);
        for (int i = 0; i < 1000; ++i) ARMBAR_PROF_COUNT(kSimInstructions, 1);
        busy_us(50);
      });
    for (auto& w : workers) w.join();
  }
  const Snapshot a = snapshot();
  EXPECT_EQ(a.counter(Counter::kSimInstructions), 4000u);
  EXPECT_EQ(a.phase(Phase::kSimRun).count, 4u);
  EXPECT_EQ(a.threads, 4u);  // main thread recorded nothing

  // Merging retired per-thread trees is deterministic: a second snapshot is
  // identical except for the wall clock.
  const Snapshot b = snapshot();
  EXPECT_EQ(a.threads, b.threads);
  EXPECT_EQ(a.counters, b.counters);
  ASSERT_EQ(a.nodes.size(), b.nodes.size());
  for (std::size_t i = 0; i < a.nodes.size(); ++i) {
    EXPECT_EQ(a.nodes[i].phase, b.nodes[i].phase);
    EXPECT_EQ(a.nodes[i].parent, b.nodes[i].parent);
    EXPECT_EQ(a.nodes[i].count, b.nodes[i].count);
    EXPECT_EQ(a.nodes[i].total_ns, b.nodes[i].total_ns);
  }
}

TEST_F(ProfTest, ResetClearsEverything) {
  if (!compiled_in()) GTEST_SKIP() << "profiler compiled out";
  {
    Session s;
    ARMBAR_PROF_SCOPE(kSimRun);
    ARMBAR_PROF_COUNT(kSimCycles, 7);
    busy_us(50);
  }
  ASSERT_TRUE(snapshot().has_data());
  reset();
  const Snapshot snap = snapshot();
  EXPECT_FALSE(snap.has_data());
  EXPECT_EQ(snap.counter(Counter::kSimCycles), 0u);
  EXPECT_TRUE(snap.nodes.empty());
}

TEST_F(ProfTest, SessionDoesNotStealOuterOwnership) {
  if (!compiled_in()) GTEST_SKIP() << "profiler compiled out";
  set_enabled(true);
  {
    Session inner;  // someone else already enabled: not owned
    EXPECT_FALSE(inner.owned());
  }
  EXPECT_TRUE(enabled());  // inner's dtor must not disable
  set_enabled(false);
}

}  // namespace
}  // namespace armbar::prof
