// Structural tests for the lockver scenario templates: inventory, name
// round-trips and the static per-handoff barrier accounting that the
// cna_scaling experiment's dynamic counts are checked against.
#include "lockver/templates.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/program.hpp"

namespace armbar::lockver {
namespace {

TEST(LockverTemplates, CleanInventory) {
  const auto all = all_clean_scenarios();
  ASSERT_EQ(all.size(), 6u);
  std::set<std::string> names;
  for (const LockScenario& sc : all) {
    EXPECT_TRUE(names.insert(sc.name).second) << sc.name;
    EXPECT_EQ(sc.planted, PlantedBug::kNone);
    EXPECT_FALSE(sc.prog.threads.empty()) << sc.name;
    EXPECT_FALSE(sc.invariants.empty()) << sc.name;
    EXPECT_FALSE(sc.prog.observe_regs.empty()) << sc.name;
    EXPECT_EQ(sc.prog.name, "lockver/" + sc.name);
    for (const Invariant& inv : sc.invariants) {
      EXPECT_FALSE(inv.name.empty()) << sc.name;
      EXPECT_TRUE(static_cast<bool>(inv.violated)) << sc.name;
    }
  }
  EXPECT_TRUE(names.count("ticket/strong"));
  EXPECT_TRUE(names.count("ticket/weakened"));
  EXPECT_TRUE(names.count("cna/strong"));
  EXPECT_TRUE(names.count("cna/weakened"));
  EXPECT_TRUE(names.count("ffwd/strong"));
  EXPECT_TRUE(names.count("ffwd/weakened"));
}

// The whole point of the paper's Table 3 weakenings: the weakened variant
// of every family spends strictly fewer standalone dmb instructions per
// handoff, and the exact counts are statically known.
TEST(LockverTemplates, WeakeningRemovesBarriers) {
  const auto count = [](LockFamily f, Strength s) {
    return make_scenario(f, s).handoff_dmbs;
  };
  EXPECT_EQ(count(LockFamily::kTicket, Strength::kStrong), 2u);
  EXPECT_EQ(count(LockFamily::kTicket, Strength::kWeakened), 0u);
  EXPECT_EQ(count(LockFamily::kCna, Strength::kStrong), 2u);
  EXPECT_EQ(count(LockFamily::kCna, Strength::kWeakened), 0u);
  EXPECT_EQ(count(LockFamily::kFfwd, Strength::kStrong), 3u);
  EXPECT_EQ(count(LockFamily::kFfwd, Strength::kWeakened), 1u);
}

TEST(LockverTemplates, NameRoundTrip) {
  for (LockFamily f :
       {LockFamily::kTicket, LockFamily::kCna, LockFamily::kFfwd}) {
    for (Strength s : {Strength::kStrong, Strength::kWeakened}) {
      for (PlantedBug b : {PlantedBug::kNone, PlantedBug::kDropAcquire,
                           PlantedBug::kDropRelease,
                           PlantedBug::kDowngradeDmb}) {
        const LockScenario sc = make_scenario(f, s, b);
        LockScenario back;
        ASSERT_TRUE(scenario_by_name(sc.name, &back)) << sc.name;
        EXPECT_EQ(back.family, f);
        EXPECT_EQ(back.strength, s);
        EXPECT_EQ(back.planted, b);
        EXPECT_EQ(back.name, sc.name);
        // The rebuilt program must be text-identical: scenario names are
        // the replay identity for repro bundles.
        ASSERT_EQ(back.prog.threads.size(), sc.prog.threads.size());
        for (std::size_t t = 0; t < sc.prog.threads.size(); ++t)
          EXPECT_EQ(back.prog.threads[t].serialize(),
                    sc.prog.threads[t].serialize())
              << sc.name << " thread " << t;
      }
    }
  }
}

TEST(LockverTemplates, ParseRejectsGarbage) {
  LockScenario sc;
  EXPECT_FALSE(scenario_by_name("", &sc));
  EXPECT_FALSE(scenario_by_name("ticket", &sc));
  EXPECT_FALSE(scenario_by_name("ticket/", &sc));
  EXPECT_FALSE(scenario_by_name("bogus/strong", &sc));
  EXPECT_FALSE(scenario_by_name("ticket/bogus", &sc));
  EXPECT_FALSE(scenario_by_name("ticket/strong+bogus", &sc));
  EXPECT_FALSE(scenario_by_name("ticket/strong+none+extra", &sc));
}

// Planted bugs must actually change the program text relative to the
// clean variant — otherwise the catch tests prove nothing.
TEST(LockverTemplates, PlantedBugsChangeTheProgram) {
  for (LockFamily f :
       {LockFamily::kTicket, LockFamily::kCna, LockFamily::kFfwd}) {
    for (Strength s : {Strength::kStrong, Strength::kWeakened}) {
      const LockScenario clean = make_scenario(f, s);
      for (PlantedBug b : {PlantedBug::kDropAcquire, PlantedBug::kDropRelease,
                           PlantedBug::kDowngradeDmb}) {
        const LockScenario buggy = make_scenario(f, s, b);
        bool differs = false;
        for (std::size_t t = 0; t < clean.prog.threads.size(); ++t)
          differs |= clean.prog.threads[t].serialize() !=
                     buggy.prog.threads[t].serialize();
        EXPECT_TRUE(differs) << buggy.name;
      }
    }
  }
}

}  // namespace
}  // namespace armbar::lockver
