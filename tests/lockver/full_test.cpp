// Slow-tier exhaustive sweep: every clean scenario, full acceptance grid —
// all four platform presets x (clean + chaos plans) x start skews, with
// the sim cross-check on. This is the ISSUE 9 acceptance run in test form.
#include "lockver/harness.hpp"

#include <gtest/gtest.h>

namespace armbar::lockver {
namespace {

TEST(LockverFull, AllCleanScenariosAllPlatforms) {
  VerifyOptions opts;  // defaults: all platforms, 2 chaos seeds, 2 skews
  for (const LockScenario& sc : all_clean_scenarios()) {
    const VerifyResult r = verify(sc, opts);
    EXPECT_TRUE(r.crosschecked);
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_TRUE(r.diff.ok()) << sc.name << ": " << r.diff.summary();
    // 4 platforms x 3 plans x 2 skews = 24 sim runs per scenario.
    EXPECT_EQ(r.diff.runs, 24u) << sc.name;
  }
}

// Every planted bug on every family/strength is caught, and the sim
// cross-check still holds (the simulator runs the buggy program too — the
// bug shows up as a forbidden-by-invariant outcome, not as a sim/model
// divergence).
TEST(LockverFull, AllPlantedBugsCaughtWithCrosscheck) {
  VerifyOptions opts;
  opts.platforms = {"kunpeng916", "rpi4"};
  opts.chaos_seeds = 1;
  for (LockFamily f :
       {LockFamily::kTicket, LockFamily::kCna, LockFamily::kFfwd}) {
    for (Strength s : {Strength::kStrong, Strength::kWeakened}) {
      for (PlantedBug b : {PlantedBug::kDropAcquire, PlantedBug::kDropRelease,
                           PlantedBug::kDowngradeDmb}) {
        const LockScenario sc = make_scenario(f, s, b);
        const VerifyResult r = verify(sc, opts);
        EXPECT_FALSE(r.ok()) << sc.name << " should have been caught";
        EXPECT_FALSE(r.violations.empty()) << sc.name;
        EXPECT_TRUE(r.diff.ok())
            << sc.name << ": sim diverged from model: " << r.diff.summary();
      }
    }
  }
}

}  // namespace
}  // namespace armbar::lockver
