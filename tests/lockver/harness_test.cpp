// Tier-1 harness tests (ISSUE 9): every clean variant passes all
// invariants under the axiomatic checker; every planted edge class is
// caught with a minimized witness; failing verdicts round-trip through
// armbar.repro/v1 bundles and replay bit-exactly. One test per planted
// edge class (drop-acquire, drop-release, downgrade-dmb), per acceptance.
#include "lockver/harness.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "fuzz/bundle.hpp"

namespace armbar::lockver {
namespace {

// Model-only options: planted-bug catching is a property of the allowed
// set, not of any particular simulator run.
VerifyOptions model_only() {
  VerifyOptions o;
  o.sim_crosscheck = false;
  return o;
}

// Small cross-check grid for tier-1: one platform, one chaos seed.
VerifyOptions small_crosscheck() {
  VerifyOptions o;
  o.platforms = {"kunpeng916"};
  o.chaos_seeds = 1;
  return o;
}

const Violation* find_violation(const VerifyResult& r,
                                const std::string& name) {
  for (const Violation& v : r.violations)
    if (v.invariant == name) return &v;
  return nullptr;
}

// Every violation's witness must be a model-allowed outcome that the named
// invariant actually rejects, and must be the lexicographically smallest
// such outcome (the "minimized witness" contract the repro bundles rely on).
void expect_minimized(const VerifyResult& r) {
  LockScenario sc;
  ASSERT_TRUE(scenario_by_name(r.scenario, &sc));
  for (const Violation& v : r.violations) {
    const Invariant* inv = nullptr;
    for (const Invariant& i : sc.invariants)
      if (i.name == v.invariant) inv = &i;
    ASSERT_NE(inv, nullptr) << v.invariant;
    ASSERT_TRUE(r.model.allowed.count(v.witness)) << v.invariant;
    EXPECT_TRUE(inv->violated(v.witness)) << v.invariant;
    std::uint64_t hits = 0;
    for (const model::Outcome& o : r.model.allowed) {
      if (!inv->violated(o)) continue;
      ++hits;
      EXPECT_LE(v.witness, o) << v.invariant;  // witness is the minimum
    }
    EXPECT_EQ(v.model_hits, hits) << v.invariant;
  }
}

TEST(LockverHarness, CleanScenariosHoldAllInvariants) {
  for (const LockScenario& sc : all_clean_scenarios()) {
    const VerifyResult r = verify(sc, model_only());
    EXPECT_TRUE(r.model.ok()) << sc.name << ": " << r.model.error;
    EXPECT_TRUE(r.model.complete) << sc.name;
    EXPECT_TRUE(r.violations.empty()) << r.summary();
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_FALSE(r.crosschecked);
  }
}

TEST(LockverHarness, WeakenedVariantsCrosscheckOnSim) {
  for (const char* name : {"ticket/weakened", "cna/weakened"}) {
    LockScenario sc;
    ASSERT_TRUE(scenario_by_name(name, &sc));
    const VerifyResult r = verify(sc, small_crosscheck());
    EXPECT_TRUE(r.crosschecked);
    EXPECT_TRUE(r.ok()) << r.summary();
    EXPECT_GT(r.diff.runs, 0u) << name;
  }
}

// --- one test per planted edge class (acceptance criterion) ---

TEST(LockverHarness, PlantedDropAcquireCaught) {
  const struct {
    LockFamily family;
    const char* invariant;
  } kCases[] = {
      {LockFamily::kTicket, "handoff-visibility"},
      {LockFamily::kCna, "queue-state-transfer"},
      {LockFamily::kFfwd, "request-payload"},
  };
  for (const auto& c : kCases) {
    for (Strength s : {Strength::kStrong, Strength::kWeakened}) {
      const LockScenario sc =
          make_scenario(c.family, s, PlantedBug::kDropAcquire);
      const VerifyResult r = verify(sc, model_only());
      EXPECT_FALSE(r.ok()) << sc.name;
      EXPECT_NE(find_violation(r, c.invariant), nullptr) << r.summary();
      expect_minimized(r);
    }
  }
}

TEST(LockverHarness, PlantedDropReleaseCaught) {
  const struct {
    LockFamily family;
    const char* invariant;
  } kCases[] = {
      {LockFamily::kTicket, "mutual-exclusion"},
      {LockFamily::kCna, "mutual-exclusion"},
      {LockFamily::kFfwd, "response-payload"},
  };
  for (const auto& c : kCases) {
    for (Strength s : {Strength::kStrong, Strength::kWeakened}) {
      const LockScenario sc =
          make_scenario(c.family, s, PlantedBug::kDropRelease);
      const VerifyResult r = verify(sc, model_only());
      EXPECT_FALSE(r.ok()) << sc.name;
      EXPECT_NE(find_violation(r, c.invariant), nullptr) << r.summary();
      expect_minimized(r);
    }
  }
}

// The subtle one: `dmb st` still orders the CS *stores* before the grant,
// so handoff visibility of written data survives — but the in-CS *load*
// is left unordered and mutual exclusion falls (ticket/CNA). For FFWD the
// downgrade is a wrong-direction `dmb ld` on a store->store path.
TEST(LockverHarness, PlantedDowngradeDmbCaught) {
  const struct {
    LockFamily family;
    const char* invariant;
  } kCases[] = {
      {LockFamily::kTicket, "mutual-exclusion"},
      {LockFamily::kCna, "mutual-exclusion"},
      {LockFamily::kFfwd, "response-payload"},
  };
  for (const auto& c : kCases) {
    for (Strength s : {Strength::kStrong, Strength::kWeakened}) {
      const LockScenario sc =
          make_scenario(c.family, s, PlantedBug::kDowngradeDmb);
      const VerifyResult r = verify(sc, model_only());
      EXPECT_FALSE(r.ok()) << sc.name;
      EXPECT_NE(find_violation(r, c.invariant), nullptr) << r.summary();
      expect_minimized(r);
    }
  }
}

// --- bundle round trip + replay ---

TEST(LockverHarness, BundleRoundTripsAndReplays) {
  LockScenario sc;
  ASSERT_TRUE(scenario_by_name("ticket/weakened+drop-release", &sc));
  const VerifyOptions opts = small_crosscheck();
  const VerifyResult r = verify(sc, opts);
  ASSERT_FALSE(r.ok());
  ASSERT_FALSE(r.violations.empty());

  const fuzz::ReproBundle b = make_lock_bundle(sc, opts, r);
  EXPECT_EQ(b.failure_kind, kLockInvariantKind);
  EXPECT_EQ(b.scenario, sc.name);
  EXPECT_EQ(b.invariant, r.violations.front().invariant);
  EXPECT_EQ(b.witness, r.violations.front().witness);
  EXPECT_TRUE(b.lock_crosschecked);
  EXPECT_EQ(b.expect_digest, r.digest());

  // JSON round trip preserves the lockver extension.
  fuzz::ReproBundle back;
  std::string err;
  ASSERT_TRUE(fuzz::bundle_from_json(fuzz::bundle_to_json(b), &back, &err))
      << err;
  EXPECT_EQ(back.scenario, b.scenario);
  EXPECT_EQ(back.invariant, b.invariant);
  EXPECT_EQ(back.witness, b.witness);
  EXPECT_EQ(back.lock_crosschecked, b.lock_crosschecked);
  EXPECT_EQ(back.expect_digest, b.expect_digest);

  // File round trip + replay: the verdict must reproduce bit-exactly.
  const std::string path =
      testing::TempDir() + "/lockver_bundle_test.repro.json";
  ASSERT_TRUE(fuzz::write_bundle(path, b, &err)) << err;
  fuzz::ReproBundle loaded;
  ASSERT_TRUE(fuzz::load_bundle(path, &loaded, &err)) << err;
  const ReplayVerdict v = replay_lock_bundle(loaded);
  EXPECT_TRUE(v.loaded) << v.detail;
  EXPECT_TRUE(v.reproduced) << v.detail;
  std::remove(path.c_str());
}

TEST(LockverHarness, ReplayRejectsTamperedBundles) {
  LockScenario sc;
  ASSERT_TRUE(scenario_by_name("ffwd/strong+drop-acquire", &sc));
  const VerifyOptions opts = model_only();
  const VerifyResult r = verify(sc, opts);
  ASSERT_FALSE(r.ok());
  fuzz::ReproBundle b = make_lock_bundle(sc, opts, r);

  fuzz::ReproBundle tampered = b;
  tampered.expect_digest ^= 1;
  EXPECT_FALSE(replay_lock_bundle(tampered).reproduced);

  tampered = b;
  tampered.scenario = "ticket/strong";  // wrong invariants for the program
  EXPECT_FALSE(replay_lock_bundle(tampered).reproduced);

  tampered = b;
  tampered.failure_kind = "mismatch";
  EXPECT_FALSE(replay_lock_bundle(tampered).loaded);

  tampered = b;
  tampered.scenario = "no/such+thing";
  EXPECT_FALSE(replay_lock_bundle(tampered).loaded);
}

TEST(LockverHarness, DigestCoversViolationsAndScenario) {
  LockScenario clean, buggy;
  ASSERT_TRUE(scenario_by_name("cna/weakened", &clean));
  ASSERT_TRUE(scenario_by_name("cna/weakened+drop-release", &buggy));
  const VerifyOptions opts = model_only();
  const VerifyResult rc = verify(clean, opts);
  const VerifyResult rb = verify(buggy, opts);
  EXPECT_NE(rc.digest(), rb.digest());
  // Deterministic: the same verification twice yields the same digest.
  EXPECT_EQ(rb.digest(), verify(buggy, opts).digest());
}

}  // namespace
}  // namespace armbar::lockver
