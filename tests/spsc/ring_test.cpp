// SPSC ring tests: capacity/emptiness edges, FIFO order, every barrier
// configuration, and threaded end-to-end streams for both the barrier ring
// and the Pilot ring.
#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

#include "spsc/ring.hpp"

namespace armbar::spsc {
namespace {

TEST(BarrierRing, PushPopSingle) {
  BarrierRing r(8);
  EXPECT_TRUE(r.try_push(5));
  std::uint64_t v = 0;
  EXPECT_TRUE(r.try_pop(v));
  EXPECT_EQ(v, 5u);
}

TEST(BarrierRing, EmptyPopFails) {
  BarrierRing r(8);
  std::uint64_t v;
  EXPECT_FALSE(r.try_pop(v));
}

TEST(BarrierRing, FullPushFails) {
  BarrierRing r(4);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_TRUE(r.try_push(i));
  EXPECT_FALSE(r.try_push(99));
  std::uint64_t v;
  EXPECT_TRUE(r.try_pop(v));
  EXPECT_TRUE(r.try_push(99));  // space reclaimed
}

TEST(BarrierRing, FifoOrderAcrossWraparound) {
  BarrierRing r(4);
  std::uint64_t next_out = 0, next_in = 0;
  for (int round = 0; round < 20; ++round) {
    while (r.try_push(next_in)) ++next_in;
    std::uint64_t v;
    while (r.try_pop(v)) {
      EXPECT_EQ(v, next_out);
      ++next_out;
    }
  }
  EXPECT_EQ(next_out, next_in);
  EXPECT_GT(next_out, 16u);
}

TEST(BarrierRing, NonPowerOfTwoCapacityAborts) {
  EXPECT_DEATH(BarrierRing r(6), "");
}

class BarrierRingConfigs
    : public ::testing::TestWithParam<std::pair<arch::Barrier, arch::Barrier>> {};

TEST_P(BarrierRingConfigs, ThreadedStreamIsLossless) {
  const auto [b1, b2] = GetParam();
  BarrierRing::Config cfg;
  cfg.avail_barrier = b1;
  cfg.publish_barrier = b2;
  BarrierRing r(16, cfg);
  constexpr std::uint64_t kN = 5000;

  std::thread consumer([&] {
    for (std::uint64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(r.pop(), i * 3 + 1);
    }
  });
  for (std::uint64_t i = 0; i < kN; ++i) r.push(i * 3 + 1);
  consumer.join();
}

INSTANTIATE_TEST_SUITE_P(
    PaperCombos, BarrierRingConfigs,
    ::testing::Values(
        // The combinations of paper Fig 6(a), site1 - site2.
        std::pair{arch::Barrier::kDmbFull, arch::Barrier::kDmbFull},
        std::pair{arch::Barrier::kDmbFull, arch::Barrier::kDmbSt},
        std::pair{arch::Barrier::kDmbLd, arch::Barrier::kDmbSt},
        std::pair{arch::Barrier::kDmbLd, arch::Barrier::kDsbSt},
        std::pair{arch::Barrier::kCtrlIsb, arch::Barrier::kDmbSt},
        std::pair{arch::Barrier::kDmbFull, arch::Barrier::kDsbFull}),
    [](const auto& param_info) {
      std::string n = arch::to_string(param_info.param.first) + "_" +
                      arch::to_string(param_info.param.second);
      for (auto& c : n)
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      return n;
    });

TEST(PilotRing, PushPopSingle) {
  PilotRing r(8);
  EXPECT_TRUE(r.try_push(5));
  std::uint64_t v = 0;
  EXPECT_TRUE(r.try_pop(v));
  EXPECT_EQ(v, 5u);
}

TEST(PilotRing, EmptyPopFails) {
  PilotRing r(8);
  std::uint64_t v;
  EXPECT_FALSE(r.try_pop(v));
}

TEST(PilotRing, FullPushFailsAndRecovers) {
  PilotRing r(4);
  for (std::uint64_t i = 1; i <= 4; ++i) EXPECT_TRUE(r.try_push(i));
  EXPECT_FALSE(r.try_push(5));
  std::uint64_t v;
  EXPECT_TRUE(r.try_pop(v));
  EXPECT_EQ(v, 1u);
  EXPECT_TRUE(r.try_push(5));
}

TEST(PilotRing, RepeatedEqualValuesSurviveWraparound) {
  // The Pilot slots must keep distinguishing messages even when the same
  // value lands in the same slot repeatedly (shuffle/fallback machinery).
  PilotRing r(4);
  for (int round = 0; round < 200; ++round) {
    ASSERT_TRUE(r.try_push(7));
    std::uint64_t v;
    ASSERT_TRUE(r.try_pop(v));
    ASSERT_EQ(v, 7u);
  }
}

TEST(PilotRing, FifoOrderAcrossWraparound) {
  PilotRing r(8);
  std::uint64_t in = 0, out = 0;
  for (int round = 0; round < 50; ++round) {
    while (r.try_push(in * 11)) ++in;
    std::uint64_t v;
    while (r.try_pop(v)) {
      ASSERT_EQ(v, out * 11);
      ++out;
    }
  }
  EXPECT_EQ(in, out);
}

TEST(PilotRing, ThreadedStreamIsLossless) {
  PilotRing r(16);
  constexpr std::uint64_t kN = 5000;
  std::thread consumer([&] {
    for (std::uint64_t i = 0; i < kN; ++i) {
      ASSERT_EQ(r.pop(), i ^ 0x5555);
    }
  });
  for (std::uint64_t i = 0; i < kN; ++i) r.push(i ^ 0x5555);
  consumer.join();
}

TEST(PilotRing, ThreadedStreamWithIdenticalPayloads) {
  PilotRing r(8);
  constexpr std::uint64_t kN = 4000;
  std::thread consumer([&] {
    for (std::uint64_t i = 0; i < kN; ++i) ASSERT_EQ(r.pop(), 99u);
  });
  for (std::uint64_t i = 0; i < kN; ++i) r.push(99);
  consumer.join();
}

}  // namespace
}  // namespace armbar::spsc
