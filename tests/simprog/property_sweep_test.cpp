// Property sweeps (parameterized): invariants that must hold on every
// platform preset and across workload scales — correctness of the
// generated experiment programs is independent of timing parameters.
#include <gtest/gtest.h>

#include "simprog/abstract_model.hpp"
#include "simprog/locks_sim.hpp"
#include "simprog/prodcons.hpp"

namespace armbar::simprog {
namespace {

class EveryPlatform : public ::testing::TestWithParam<std::string> {
 protected:
  sim::PlatformSpec spec_ = sim::platform_by_name(GetParam());
};

TEST_P(EveryPlatform, ProdConsChecksumHolds) {
  for (auto combo : {
           ProdConsCombo{OrderChoice::kDmbFull, OrderChoice::kDmbSt, true},
           ProdConsCombo{OrderChoice::kDmbLd, OrderChoice::kDmbSt, true},
           ProdConsCombo{OrderChoice::kLdar, OrderChoice::kStlr, true},
       }) {
    auto r = run_prodcons(spec_, combo, 200, 20, 0, 1);
    EXPECT_TRUE(r.checksum_ok) << GetParam() << " / " << combo.name();
  }
}

TEST_P(EveryPlatform, PilotProdConsChecksumHolds) {
  auto r = run_prodcons_pilot(spec_, 300, 20, 0, 1);
  EXPECT_TRUE(r.checksum_ok) << GetParam();
}

TEST_P(EveryPlatform, PilotBeatsOrMatchesBestBarrierCombo) {
  auto base = run_prodcons(spec_, {OrderChoice::kDmbLd, OrderChoice::kDmbSt, true},
                           400, 30, 0, 1);
  auto pilot = run_prodcons_pilot(spec_, 400, 30, 0, 1);
  EXPECT_GE(pilot.msgs_per_sec, base.msgs_per_sec * 0.98) << GetParam();
}

TEST_P(EveryPlatform, TicketLockCorrectUpToPlatformWidth) {
  LockWorkload w;
  w.threads = std::min(8u, spec_.total_cores());
  w.iters = 30;
  w.cs_lines = 1;
  auto r = run_ticket(spec_, w, OrderChoice::kDmbFull);
  EXPECT_TRUE(r.correct) << GetParam();
}

TEST_P(EveryPlatform, BatchPilotChecksumAcrossSizes) {
  for (std::uint32_t words : {1u, 4u, 16u}) {
    // run_batch aborts internally on checksum mismatch; surviving the call
    // is the assertion.
    auto r = run_batch(spec_, words, 120, 0, 1);
    EXPECT_GT(r.baseline, 0.0);
    EXPECT_GT(r.pilot, 0.0);
  }
}

TEST_P(EveryPlatform, DeterministicAcrossRepeats) {
  auto a = run_prodcons(spec_, {OrderChoice::kDmbLd, OrderChoice::kDmbSt, true},
                        150, 10, 0, 1);
  auto b = run_prodcons(spec_, {OrderChoice::kDmbLd, OrderChoice::kDmbSt, true},
                        150, 10, 0, 1);
  EXPECT_DOUBLE_EQ(a.msgs_per_sec, b.msgs_per_sec) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Platforms, EveryPlatform,
                         ::testing::Values("kunpeng916", "kirin960",
                                           "kirin970", "rpi4"),
                         [](const auto& pinfo) { return pinfo.param; });

// ---- scale sweeps on the server preset ----

class ThreadScale : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ThreadScale, AllLockFamiliesCorrect) {
  const auto spec = sim::kunpeng916();
  LockWorkload w;
  w.threads = GetParam();
  w.iters = 24;
  w.cs_lines = 1;
  EXPECT_TRUE(run_ticket(spec, w, OrderChoice::kDmbFull).correct);
  EXPECT_TRUE(run_ffwd(spec, w, {OrderChoice::kLdar, OrderChoice::kDmbSt, false}).correct);
  EXPECT_TRUE(run_ffwd(spec, w, {OrderChoice::kLdar, OrderChoice::kDmbSt, true}).correct);
  EXPECT_TRUE(run_ccsynch(spec, w, {OrderChoice::kDmbSt, false, 64}).correct);
  EXPECT_TRUE(run_ccsynch(spec, w, {OrderChoice::kDmbSt, true, 64}).correct);
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadScale,
                         ::testing::Values(2u, 3u, 5u, 12u, 31u),
                         [](const auto& pinfo) {
                           return "t" + std::to_string(pinfo.param);
                         });

class CombineBudget : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(CombineBudget, CcSynchCorrectAtEveryBudget) {
  const auto spec = sim::kunpeng916();
  LockWorkload w;
  w.threads = 8;
  w.iters = 25;
  EXPECT_TRUE(run_ccsynch(spec, w, {OrderChoice::kDmbSt, false, GetParam()}).correct);
  EXPECT_TRUE(run_ccsynch(spec, w, {OrderChoice::kDmbSt, true, GetParam()}).correct);
}

INSTANTIATE_TEST_SUITE_P(Budgets, CombineBudget,
                         ::testing::Values(1u, 2u, 7u, 64u, 1024u),
                         [](const auto& pinfo) {
                           return "h" + std::to_string(pinfo.param);
                         });

}  // namespace
}  // namespace armbar::simprog
