// Experiment-generator tests: every simulated workload must run to
// completion, produce the correct architectural result (checksums /
// counters), and show the paper's qualitative orderings on a small scale.
#include <gtest/gtest.h>

#include "simprog/abstract_model.hpp"
#include "simprog/locks_sim.hpp"
#include "simprog/prodcons.hpp"

namespace armbar::simprog {
namespace {

const sim::PlatformSpec kServer = sim::kunpeng916();
const sim::PlatformSpec kMobile = sim::kirin960();

// ---- abstracted models ----

TEST(AbstractModel, IntrinsicRunsForAllBarriers) {
  for (auto c : {OrderChoice::kNone, OrderChoice::kDmbFull, OrderChoice::kDmbSt,
                 OrderChoice::kDmbLd, OrderChoice::kDsbFull, OrderChoice::kDsbSt,
                 OrderChoice::kDsbLd, OrderChoice::kIsb}) {
    Program p = make_intrinsic_model(c, 10, 100);
    EXPECT_GT(run_single(kServer, p, 100), 0.0) << to_string(c);
  }
}

TEST(AbstractModel, IntrinsicOrdering) {
  // Observation 1: No barrier >= DMB >> ISB >> DSB.
  auto thr = [&](OrderChoice c) {
    Program p = make_intrinsic_model(c, 10, 300);
    return run_single(kServer, p, 300);
  };
  const double none = thr(OrderChoice::kNone);
  const double dmb = thr(OrderChoice::kDmbFull);
  const double isb = thr(OrderChoice::kIsb);
  const double dsb = thr(OrderChoice::kDsbFull);
  EXPECT_GE(none, dmb * 0.99);
  EXPECT_GT(dmb, isb);
  EXPECT_GT(isb, dsb);
}

TEST(AbstractModel, StoreStoreLocationMatters) {
  // Observation 2 at the Fig 3 scale.
  const std::uint32_t nops = 150;
  Program p1 = make_store_store_model(OrderChoice::kDmbFull, BarrierLoc::kLoc1,
                                      nops, 300, kBufA, kBufB);
  Program p2 = make_store_store_model(OrderChoice::kDmbFull, BarrierLoc::kLoc2,
                                      nops, 300, kBufA, kBufB);
  const double t1 = run_pair(kServer, p1, 300, 0, 1);
  const double t2 = run_pair(kServer, p2, 300, 0, 1);
  EXPECT_GT(t2, 1.5 * t1);
}

TEST(AbstractModel, StlrBetweenDsbAndDmbSt) {
  // Observation 3: DSB full <= STLR <= DMB st in the store-store model.
  const std::uint32_t nops = 150;
  auto thr = [&](OrderChoice c, BarrierLoc l) {
    Program p = make_store_store_model(c, l, nops, 300, kBufA, kBufB);
    return run_pair(kServer, p, 300, 0, 1);
  };
  const double stlr = thr(OrderChoice::kStlr, BarrierLoc::kNone);
  const double dmbst = thr(OrderChoice::kDmbSt, BarrierLoc::kLoc1);
  const double dsb = thr(OrderChoice::kDsbFull, BarrierLoc::kLoc1);
  EXPECT_LE(stlr, dmbst * 1.05);
  EXPECT_GE(stlr, dsb * 0.95);
}

TEST(AbstractModel, LoadStoreDependenciesNearlyFree) {
  // Observation 6 at the Fig 5 scale.
  const std::uint32_t nops = 300;
  auto thr = [&](OrderChoice c, BarrierLoc l) {
    Program p = make_load_store_model(c, l, nops, 300, kBufA, kBufB);
    return run_pair(kServer, p, 300, 0, 32);
  };
  const double none = thr(OrderChoice::kNone, BarrierLoc::kNone);
  const double data = thr(OrderChoice::kDataDep, BarrierLoc::kNone);
  const double addr = thr(OrderChoice::kAddrDep, BarrierLoc::kNone);
  const double ctrl = thr(OrderChoice::kCtrl, BarrierLoc::kNone);
  const double dmbfull = thr(OrderChoice::kDmbFull, BarrierLoc::kLoc1);
  const double dsb = thr(OrderChoice::kDsbFull, BarrierLoc::kLoc1);
  EXPECT_GT(data, none * 0.9);
  EXPECT_GT(addr, none * 0.9);
  EXPECT_GT(ctrl, none * 0.9);
  EXPECT_GT(data, dmbfull);
  EXPECT_GT(dmbfull, dsb);
}

TEST(AbstractModel, CtrlIsbCostsMoreThanCtrl) {
  const std::uint32_t nops = 300;
  auto thr = [&](OrderChoice c) {
    Program p = make_load_store_model(c, BarrierLoc::kNone, nops, 300, kBufA, kBufB);
    return run_pair(kServer, p, 300, 0, 32);
  };
  EXPECT_GT(thr(OrderChoice::kCtrl), thr(OrderChoice::kCtrlIsb));
}

// ---- producer-consumer ----

TEST(ProdCons, ChecksumAllCombos) {
  for (auto combo : {
           ProdConsCombo{OrderChoice::kDmbFull, OrderChoice::kDmbFull, true},
           ProdConsCombo{OrderChoice::kDmbFull, OrderChoice::kDmbSt, true},
           ProdConsCombo{OrderChoice::kDmbLd, OrderChoice::kDmbSt, true},
           ProdConsCombo{OrderChoice::kLdar, OrderChoice::kDmbSt, true},
           ProdConsCombo{OrderChoice::kDmbFull, OrderChoice::kStlr, true},
           ProdConsCombo{OrderChoice::kDmbLd, OrderChoice::kNone, true},
       }) {
    auto r = run_prodcons(kServer, combo, 300, 40, 0, 1);
    EXPECT_TRUE(r.checksum_ok) << combo.name();
    EXPECT_GT(r.msgs_per_sec, 0.0);
  }
}

TEST(ProdCons, PilotChecksumSameAndCrossNode) {
  auto same = run_prodcons_pilot(kServer, 400, 40, 0, 1);
  EXPECT_TRUE(same.checksum_ok);
  auto cross = run_prodcons_pilot(kServer, 400, 40, 0, 32);
  EXPECT_TRUE(cross.checksum_ok);
  EXPECT_GT(same.msgs_per_sec, cross.msgs_per_sec);
}

TEST(ProdCons, BestComboIsLdSt) {
  // Fig 6a: DMB ld - DMB st beats DMB full - DMB full.
  auto ldst = run_prodcons(
      kServer, {OrderChoice::kDmbLd, OrderChoice::kDmbSt, true}, 400, 40, 0, 1);
  auto fullfull = run_prodcons(
      kServer, {OrderChoice::kDmbFull, OrderChoice::kDmbFull, true}, 400, 40, 0, 1);
  EXPECT_GT(ldst.msgs_per_sec, fullfull.msgs_per_sec);
}

TEST(ProdCons, PilotBeatsBestBarrierCombo) {
  // Fig 6b: Pilot improves on DMB ld - DMB st, dramatically across nodes.
  auto base = run_prodcons(
      kServer, {OrderChoice::kDmbLd, OrderChoice::kDmbSt, true}, 400, 40, 0, 32);
  auto pilot = run_prodcons_pilot(kServer, 400, 40, 0, 32);
  ASSERT_TRUE(base.checksum_ok);
  ASSERT_TRUE(pilot.checksum_ok);
  EXPECT_GT(pilot.msgs_per_sec, 1.3 * base.msgs_per_sec);
}

TEST(ProdCons, BatchChecksumsAndDecliningGain) {
  // Fig 6c: the speedup declines as the batch grows.
  auto b1 = run_batch(kServer, 1, 300, 0, 32);
  auto b16 = run_batch(kServer, 16, 300, 0, 32);
  const double s1 = b1.pilot / b1.baseline;
  const double s16 = b16.pilot / b16.baseline;
  EXPECT_GT(s1, 1.0);
  EXPECT_GT(s1, s16);
}

// ---- locks ----

TEST(TicketSim, CorrectAtVariousThreadCounts) {
  for (std::uint32_t threads : {1u, 2u, 8u, 16u}) {
    LockWorkload w;
    w.threads = threads;
    w.iters = 50;
    auto r = run_ticket(kServer, w, OrderChoice::kDmbFull);
    EXPECT_TRUE(r.correct) << threads << " threads";
    EXPECT_GT(r.acq_per_sec, 0.0);
  }
}

TEST(TicketSim, RemovingReleaseBarrierHelpsWithGlobalLines) {
  // Fig 7a: with 2 visited global lines, removing the unlock barrier wins.
  LockWorkload w;
  w.threads = 16;
  w.iters = 60;
  w.cs_lines = 2;
  auto normal = run_ticket(kServer, w, OrderChoice::kDmbFull);
  auto removed = run_ticket(kServer, w, OrderChoice::kNone);
  ASSERT_TRUE(normal.correct);
  ASSERT_TRUE(removed.correct);
  EXPECT_GT(removed.acq_per_sec, normal.acq_per_sec);
}

TEST(TicketSim, MobileWorksToo) {
  LockWorkload w;
  w.threads = 4;
  w.iters = 50;
  auto r = run_ticket(kMobile, w, OrderChoice::kDmbFull);
  EXPECT_TRUE(r.correct);
}

TEST(FfwdSim, CorrectPlainAndPilot) {
  LockWorkload w;
  w.threads = 8;
  w.iters = 40;
  auto plain = run_ffwd(kServer, w, {OrderChoice::kLdar, OrderChoice::kDmbSt, false});
  EXPECT_TRUE(plain.correct);
  auto pilot = run_ffwd(kServer, w, {OrderChoice::kLdar, OrderChoice::kDmbSt, true});
  EXPECT_TRUE(pilot.correct);
}

TEST(FfwdSim, AllRequestBarrierChoicesCorrect) {
  LockWorkload w;
  w.threads = 4;
  w.iters = 30;
  for (auto req : {OrderChoice::kDmbFull, OrderChoice::kDmbLd, OrderChoice::kLdar,
                   OrderChoice::kCtrlIsb, OrderChoice::kAddrDep}) {
    auto r = run_ffwd(kServer, w, {req, OrderChoice::kDmbSt, false});
    EXPECT_TRUE(r.correct) << to_string(req);
  }
}

TEST(FfwdSim, PilotFasterAtHighContention) {
  // Fig 7c flavour: no interval -> high contention; Pilot should win.
  LockWorkload w;
  w.threads = 16;
  w.iters = 40;
  auto plain = run_ffwd(kServer, w, {OrderChoice::kLdar, OrderChoice::kDmbSt, false});
  auto pilot = run_ffwd(kServer, w, {OrderChoice::kLdar, OrderChoice::kDmbSt, true});
  ASSERT_TRUE(plain.correct);
  ASSERT_TRUE(pilot.correct);
  EXPECT_GT(pilot.acq_per_sec, plain.acq_per_sec);
}

TEST(CcSynchSim, CorrectPlainAndPilot) {
  LockWorkload w;
  w.threads = 8;
  w.iters = 40;
  auto plain = run_ccsynch(kServer, w, {OrderChoice::kDmbSt, false, 64});
  EXPECT_TRUE(plain.correct);
  auto pilot = run_ccsynch(kServer, w, {OrderChoice::kDmbSt, true, 64});
  EXPECT_TRUE(pilot.correct);
}

TEST(CcSynchSim, SmallBudgetStillCorrect) {
  LockWorkload w;
  w.threads = 6;
  w.iters = 30;
  auto r = run_ccsynch(kServer, w, {OrderChoice::kDmbSt, false, 1});
  EXPECT_TRUE(r.correct);
  auto rp = run_ccsynch(kServer, w, {OrderChoice::kDmbSt, true, 1});
  EXPECT_TRUE(rp.correct);
}

TEST(CcSynchSim, PilotFasterAtHighContention) {
  LockWorkload w;
  w.threads = 16;
  w.iters = 40;
  auto plain = run_ccsynch(kServer, w, {OrderChoice::kDmbSt, false, 64});
  auto pilot = run_ccsynch(kServer, w, {OrderChoice::kDmbSt, true, 64});
  ASSERT_TRUE(plain.correct);
  ASSERT_TRUE(pilot.correct);
  EXPECT_GT(pilot.acq_per_sec, plain.acq_per_sec);
}

TEST(CnaSim, CorrectAtVariousThreadCounts) {
  for (std::uint32_t threads : {1u, 2u, 8u, 16u}) {
    LockWorkload w;
    w.threads = threads;
    w.iters = 40;
    auto r = run_cna(kServer, w, CnaChoice::strong());
    EXPECT_TRUE(r.correct) << threads << " threads";
    EXPECT_GT(r.acq_per_sec, 0.0);
  }
}

TEST(CnaSim, CrossSocketWithSmallCapStillCorrect) {
  // 36 cores on kunpeng916 spans both sockets, so the unlock path actually
  // scans, detaches remote waiters and splices them back at the cap.
  LockWorkload w;
  w.threads = 36;
  w.iters = 15;
  CnaChoice c = CnaChoice::strong();
  c.local_handoff_cap = 4;
  auto r = run_cna(kServer, w, c);
  EXPECT_TRUE(r.correct);
  CnaChoice weak = CnaChoice::weakened();
  weak.local_handoff_cap = 4;
  auto rw = run_cna(kServer, w, weak);
  EXPECT_TRUE(rw.correct);
}

TEST(CnaSim, WeakenedVariantUsesFewerBarriers) {
  // Table 3: LDAR/STLR on the handoff replaces the standalone dmb ld /
  // dmb ish pair, so the exact retired-barrier count must drop.
  LockWorkload w;
  w.threads = 8;
  w.iters = 40;
  auto strong = run_cna(kServer, w, CnaChoice::strong());
  auto weak = run_cna(kServer, w, CnaChoice::weakened());
  ASSERT_TRUE(strong.correct);
  ASSERT_TRUE(weak.correct);
  EXPECT_GT(strong.barriers, weak.barriers);
}

TEST(CnaSim, McsBaselineCorrectAndMobileWorks) {
  LockWorkload w;
  w.threads = 36;
  w.iters = 15;
  EXPECT_TRUE(run_cna(kServer, w, CnaChoice::mcs()).correct);
  LockWorkload mob;
  mob.threads = 4;
  mob.iters = 40;
  EXPECT_TRUE(run_cna(kMobile, mob, CnaChoice::strong()).correct);
}

TEST(LockSim, SingleThreadEdgeCases) {
  LockWorkload w;
  w.threads = 1;
  w.iters = 20;
  EXPECT_TRUE(run_ticket(kServer, w, OrderChoice::kDmbFull).correct);
  EXPECT_TRUE(run_cna(kServer, w, CnaChoice::strong()).correct);
  EXPECT_TRUE(run_ffwd(kServer, w, {OrderChoice::kLdar, OrderChoice::kDmbSt, false}).correct);
  EXPECT_TRUE(run_ccsynch(kServer, w, {OrderChoice::kDmbSt, false, 64}).correct);
  EXPECT_TRUE(run_ccsynch(kServer, w, {OrderChoice::kDmbSt, true, 64}).correct);
}

TEST(LockSim, ReadOnlyLinesLengthenCriticalSections) {
  LockWorkload base;
  base.threads = 8;
  base.iters = 30;
  LockWorkload heavy = base;
  heavy.cs_ro_lines = 24;
  auto fast = run_ccsynch(kServer, base, {OrderChoice::kDmbSt, false, 64});
  auto slow = run_ccsynch(kServer, heavy, {OrderChoice::kDmbSt, false, 64});
  ASSERT_TRUE(fast.correct);
  ASSERT_TRUE(slow.correct);
  EXPECT_GT(fast.acq_per_sec, slow.acq_per_sec);
}

}  // namespace
}  // namespace armbar::simprog
