// Pilot channel unit tests: framing correctness, the shuffle-collision
// fallback path, batched transfer, and a threaded end-to-end check.
#include <gtest/gtest.h>

#include <array>
#include <thread>
#include <vector>

#include "pilot/pilot.hpp"

namespace armbar::pilot {
namespace {

TEST(HashPool, DeterministicAndNonZero) {
  HashPool a(42, 16), b(42, 16);
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(a.at(i), b.at(i));
    EXPECT_NE(a.at(i), 0u);
  }
  EXPECT_EQ(a.at(3), a.at(19));  // wraps modulo size
}

class PilotChannelTest : public ::testing::Test {
 protected:
  HashPool pool_{7, 32};
  PilotSlot slot_;
  PilotSender tx_{slot_, pool_};
  PilotReceiver rx_{slot_, pool_};
};

TEST_F(PilotChannelTest, SingleMessage) {
  tx_.send(1234);
  EXPECT_TRUE(rx_.poll());
  EXPECT_EQ(rx_.receive(), 1234u);
  EXPECT_FALSE(rx_.poll());
}

TEST_F(PilotChannelTest, AlternatingSendReceiveSequence) {
  for (std::uint64_t i = 0; i < 1000; ++i) {
    tx_.send(i * 3);
    EXPECT_EQ(rx_.receive(), i * 3);
  }
}

TEST_F(PilotChannelTest, RepeatedIdenticalValues) {
  // Identical payloads must still be detected as distinct messages — the
  // shuffle (and in the collision corner case, the flag fallback) ensures
  // each send changes an observable word.
  for (int i = 0; i < 500; ++i) {
    tx_.send(42);
    EXPECT_TRUE(rx_.poll()) << "message " << i << " invisible";
    EXPECT_EQ(rx_.receive(), 42u);
  }
}

TEST_F(PilotChannelTest, ZeroValuesWork) {
  for (int i = 0; i < 100; ++i) {
    tx_.send(0);
    EXPECT_EQ(rx_.receive(), 0u);
  }
}

TEST(PilotFallback, CollisionTogglesFlagNotData) {
  // Force the corner case: craft messages so that consecutive shuffled
  // words are identical. With pool seeds s0, s1: send m0, then
  // m1 = m0 ^ s0 ^ s1, whose shuffle equals m0 ^ s0 — a collision.
  HashPool pool(11, 4);
  PilotSlot slot;
  PilotSender tx(slot, pool);
  PilotReceiver rx(slot, pool);

  const std::uint64_t m0 = 0xabcdef;
  tx.send(m0);
  EXPECT_EQ(rx.receive(), m0);

  const std::uint64_t data_word = slot.data.load();
  const std::uint64_t flag_word = slot.flag.load();
  const std::uint64_t m1 = m0 ^ pool.at(0) ^ pool.at(1);
  tx.send(m1);
  EXPECT_EQ(slot.data.load(), data_word) << "collision should not touch data";
  EXPECT_NE(slot.flag.load(), flag_word) << "collision must toggle the flag";
  EXPECT_EQ(rx.receive(), m1);

  // And the channel keeps working afterwards.
  tx.send(999);
  EXPECT_EQ(rx.receive(), 999u);
}

TEST(PilotFallback, ManyConsecutiveCollisions) {
  HashPool pool(13, 2);
  PilotSlot slot;
  PilotSender tx(slot, pool);
  PilotReceiver rx(slot, pool);
  // With a pool of size 2, sending v, v^s0^s1, v, v^s0^s1, ... collides on
  // every second message.
  const std::uint64_t v = 5;
  const std::uint64_t w = v ^ pool.at(0) ^ pool.at(1);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t msg = (i % 2 == 0) ? v : w;
    tx.send(msg);
    EXPECT_EQ(rx.receive(), msg) << "iteration " << i;
  }
}

TEST(PilotBatch, RoundTripVariousSizes) {
  for (std::size_t words : {1u, 2u, 4u, 8u, 16u, 32u}) {
    PilotBatchChannel tx_side(words, 3);
    // Use distinct sender/receiver objects over the same logical channel
    // state by exercising the channel's own send/receive pair.
    std::vector<std::uint64_t> msg(words), out(words);
    for (int round = 0; round < 20; ++round) {
      for (std::size_t i = 0; i < words; ++i)
        msg[i] = round * 1000 + i;
      tx_side.send(msg);
      tx_side.receive(out);
      EXPECT_EQ(out, msg);
    }
  }
}

TEST(PilotThreaded, SpscStreamIsLossless) {
  // End-to-end with real threads: strictly alternating ping-pong is the
  // contract (flow control comes from the enclosing ring in real usage);
  // here the receiver acks via a second pilot channel.
  HashPool pool(21, 64);
  PilotSlot fwd_slot, ack_slot;
  constexpr int kMessages = 4000;

  std::thread consumer([&] {
    PilotReceiver rx(fwd_slot, pool);
    PilotSender ack(ack_slot, pool);
    for (int i = 0; i < kMessages; ++i) {
      const std::uint64_t v = rx.receive();
      ASSERT_EQ(v, static_cast<std::uint64_t>(i) * 7);
      ack.send(v);
    }
  });

  PilotSender tx(fwd_slot, pool);
  PilotReceiver ack_rx(ack_slot, pool);
  for (int i = 0; i < kMessages; ++i) {
    tx.send(static_cast<std::uint64_t>(i) * 7);
    ASSERT_EQ(ack_rx.receive(), static_cast<std::uint64_t>(i) * 7);
  }
  consumer.join();
}

TEST(PilotSlot, IsExactlyOneCacheLine) {
  EXPECT_EQ(sizeof(PilotSlot), kCacheLineBytes);
  EXPECT_EQ(alignof(PilotSlot), kCacheLineBytes);
}

}  // namespace
}  // namespace armbar::pilot
