// Channel protocol tests: in-process SPMC correctness and exact barrier
// accounting for all three variants, plus the recovery state machine —
// generation bumps (incl. concurrent racers on the stealable lock), torn
// seq-parity repair, and the dead-producer lease takeover exercised with a
// real SIGKILLed child process.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <thread>
#include <vector>

#include "shmsvc/channel.hpp"

namespace armbar::shmsvc {
namespace {

Segment make_seg(ChannelKind kind, std::uint32_t capacity,
                 std::uint64_t records, const std::string& name) {
  SegmentConfig cfg;
  cfg.name = name;
  cfg.kind = kind;
  cfg.channels = 1;
  cfg.capacity = capacity;
  cfg.records = records;
  cfg.seed = 0xfeedu;
  return Segment::create(cfg);
}

struct SpmcTotals {
  std::uint64_t delivered = 0;
  std::uint64_t gaps = 0;
  std::uint64_t misdeliveries = 0;
};

/// One producer thread, `consumers` consumer threads, all in-process over a
/// fresh segment. Returns exact totals after a full drain.
SpmcTotals run_spmc(Segment& seg, std::uint32_t consumers,
                    const ChannelTuning& tuning) {
  const std::uint64_t seed = seg.header().seed;
  std::atomic<std::uint64_t> delivered{0}, gaps{0}, misses{0};

  std::thread prod_thread([&] {
    Peer me(seg, Role::kProducer);
    Producer prod(seg, 0, me, tuning);
    while (prod.produce(
        static_cast<std::uint32_t>(payload_at(seed, prod.position())))) {
    }
  });
  std::vector<std::thread> cons_threads;
  for (std::uint32_t i = 0; i < consumers; ++i) {
    cons_threads.emplace_back([&] {
      Peer me(seg, Role::kConsumer);
      Consumer cons(seg, 0, me, tuning);
      for (;;) {
        std::uint32_t payload = 0;
        std::uint64_t ticket = 0;
        const Consumer::Pop r = cons.pop(&payload, &ticket);
        if (r == Consumer::Pop::kDone) return;
        if (r == Consumer::Pop::kGap) {
          gaps.fetch_add(1);
          continue;
        }
        if (payload != payload_at(seed, ticket)) misses.fetch_add(1);
        delivered.fetch_add(1);
      }
    });
  }
  prod_thread.join();
  for (auto& t : cons_threads) t.join();
  return {delivered.load(), gaps.load(), misses.load()};
}

void expect_clean_spmc(ChannelKind kind, const char* name) {
  constexpr std::uint64_t kRecords = 20000;
  Segment seg = make_seg(kind, 64, kRecords, name);
  ChannelTuning tuning;
  const SpmcTotals t = run_spmc(seg, 2, tuning);
  EXPECT_EQ(t.delivered, kRecords);
  EXPECT_EQ(t.gaps, 0u);
  EXPECT_EQ(t.misdeliveries, 0u);
  EXPECT_EQ(seg.ctrl(0).cons.load(), kRecords);
  seg.unlink();
}

TEST(Channel, SpmcLockQueueDeliversEverythingInProcess) {
  expect_clean_spmc(ChannelKind::kLockQueue, "spmc-q");
}
TEST(Channel, SpmcRingDeliversEverythingInProcess) {
  expect_clean_spmc(ChannelKind::kRing, "spmc-rb");
}
TEST(Channel, SpmcPilotRingDeliversEverythingInProcess) {
  expect_clean_spmc(ChannelKind::kPilotRing, "spmc-rbp");
}

TEST(Channel, BarrierAccountingMatchesTheProtocol) {
  // Clean runs retire a deterministic number of order-preserving ops:
  //   RB   — 4 per record (producer avail ld + publish st; consumer
  //          consume ld + release ld),
  //   RB-P — exactly 1 per record (the consumer release; publication rides
  //          the pilot tag, no producer barrier at all),
  //   Q    — every barrier is full-class (lock ops), ≥ 4 per record.
  constexpr std::uint64_t kRecords = 5000;
  ChannelTuning tuning;
  {
    Segment seg = make_seg(ChannelKind::kRing, 64, kRecords, "bar-rb");
    run_spmc(seg, 2, tuning);
    EXPECT_EQ(seg.ctrl(0).barriers.load(), 4 * kRecords);
    EXPECT_EQ(seg.ctrl(0).full_barriers.load(), 0u);
    seg.unlink();
  }
  {
    Segment seg = make_seg(ChannelKind::kPilotRing, 64, kRecords, "bar-rbp");
    run_spmc(seg, 2, tuning);
    EXPECT_EQ(seg.ctrl(0).barriers.load(), kRecords);
    EXPECT_EQ(seg.ctrl(0).full_barriers.load(), 0u);
    seg.unlink();
  }
  {
    Segment seg = make_seg(ChannelKind::kLockQueue, 64, kRecords, "bar-q");
    run_spmc(seg, 2, tuning);
    EXPECT_GE(seg.ctrl(0).full_barriers.load(), 4 * kRecords);
    EXPECT_EQ(seg.ctrl(0).barriers.load(), seg.ctrl(0).full_barriers.load());
    seg.unlink();
  }
}

TEST(Recovery, ForcePassBumpsGenerationEvenWithoutDeaths) {
  Segment seg = make_seg(ChannelKind::kRing, 64, 1024, "gen");
  Peer me(seg, Role::kNone);
  const std::uint64_t g0 = seg.ctrl(0).generation.load();
  RecoveryOutcome out = run_recovery(seg, 0, me.index(), /*force=*/true);
  EXPECT_TRUE(out.ran);
  EXPECT_EQ(seg.ctrl(0).generation.load(), g0 + 1);
  // Without force and without dead peers, a pass is a no-op.
  out = run_recovery(seg, 0, me.index(), /*force=*/false);
  EXPECT_FALSE(out.ran);
  EXPECT_EQ(seg.ctrl(0).generation.load(), g0 + 1);
  seg.unlink();
}

TEST(Recovery, ConcurrentForcersRaceOnTheStealableLock) {
  Segment seg = make_seg(ChannelKind::kRing, 64, 1024, "gen-race");
  constexpr int kThreads = 8;
  std::atomic<int> ran{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      Peer me(seg, Role::kNone);
      for (int r = 0; r < 10; ++r)
        if (run_recovery(seg, 0, me.index(), /*force=*/true).ran)
          ran.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  // Every completed pass bumped the generation exactly once; racers that
  // found a live recoverer were excluded, not deadlocked.
  EXPECT_GE(ran.load(), 1);
  EXPECT_EQ(seg.ctrl(0).generation.load(),
            static_cast<std::uint64_t>(ran.load()));
  EXPECT_EQ(seg.ctrl(0).recovery_lock.load(), 0u);
  seg.unlink();
}

TEST(Recovery, TornSeqParityIsRepaired) {
  Segment seg = make_seg(ChannelKind::kRing, 64, 1024, "torn");
  // Simulate corrupted slot state: for slot 5 only seq ≡ 5 or 6 (mod 64)
  // is reachable; 999999 ≡ 15 is torn.
  seg.slots(0)[5].seq.store(999999, std::memory_order_relaxed);
  Peer me(seg, Role::kNone);
  const RecoveryOutcome out = run_recovery(seg, 0, me.index(), /*force=*/true);
  EXPECT_TRUE(out.ran);
  EXPECT_EQ(out.seq_repairs, 1u);
  // Repaired to the free state of the producer's next round for this slot
  // (prod == 0 ⇒ round 5), so the channel is live again:
  EXPECT_EQ(seg.slots(0)[5].seq.load(), 5u);
  ChannelTuning tuning;
  const SpmcTotals t = run_spmc(seg, 1, tuning);
  EXPECT_EQ(t.delivered, 1024u);
  EXPECT_EQ(t.misdeliveries, 0u);
  seg.unlink();
}

TEST(Recovery, DeadProducerLeaseTakeoverAccountsTheTornRecord) {
  // A real child process SIGKILLs itself mid-produce (record written, seq
  // not yet published). The parent's consumer must unwedge itself through
  // the lease → recovery path — no explicit recovery call here — observe
  // exactly one gap, and a successor producer must take over cleanly.
  Segment seg = make_seg(ChannelKind::kRing, 64, 4096, "takeover");
  const std::uint64_t seed = seg.header().seed;

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: produce until the crash plan kills us inside produce #51.
    Peer me(seg, Role::kProducer);
    CrashPlan crash{CrashPlan::Point::kMidProduce, 50};
    ChannelTuning tuning;
    Producer prod(seg, 0, me, tuning, crash);
    while (prod.produce(
        static_cast<std::uint32_t>(payload_at(seed, prod.position())))) {
    }
    _exit(0);  // unreachable if the crash plan fired
  }
  int st = 0;
  ASSERT_EQ(::waitpid(child, &st, 0), child);
  ASSERT_TRUE(WIFSIGNALED(st) && WTERMSIG(st) == SIGKILL)
      << "child did not die at its crash point";

  // 50 completed records, intent taken on #51 but unpublished.
  EXPECT_EQ(seg.ctrl(0).prod.load(), 50u);
  EXPECT_EQ(seg.ctrl(0).intent.load(), 51u);

  // Consumer with a short lease: tickets 0..49 flow normally; ticket 50
  // materializes only after its lease-triggered recovery tombstones the
  // torn record.
  ChannelTuning tuning;
  tuning.backoff.lease_ns = 5'000'000;  // 5 ms
  Peer me(seg, Role::kConsumer);
  Consumer cons(seg, 0, me, tuning);
  std::uint64_t delivered = 0, gaps = 0;
  for (std::uint64_t i = 0; i < 51; ++i) {
    std::uint32_t payload = 0;
    std::uint64_t ticket = 0;
    const Consumer::Pop r = cons.pop(&payload, &ticket);
    ASSERT_NE(r, Consumer::Pop::kDone);
    if (r == Consumer::Pop::kGap) {
      EXPECT_EQ(ticket, 50u);
      ++gaps;
    } else {
      EXPECT_EQ(payload, payload_at(seed, ticket));
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, 50u);
  EXPECT_EQ(gaps, 1u);
  EXPECT_EQ(seg.ctrl(0).gaps_tombstoned.load(), 1u);
  EXPECT_GE(seg.ctrl(0).recoveries.load(), 1u);

  // Successor producer takes over at the reconciled position and the
  // channel keeps flowing.
  Peer me2(seg, Role::kProducer);
  Producer prod2(seg, 0, me2, tuning);
  EXPECT_EQ(prod2.position(), 51u);
  for (int i = 0; i < 10; ++i)
    ASSERT_TRUE(prod2.produce(
        static_cast<std::uint32_t>(payload_at(seed, prod2.position()))));
  for (int i = 0; i < 10; ++i) {
    std::uint32_t payload = 0;
    std::uint64_t ticket = 0;
    ASSERT_EQ(cons.pop(&payload, &ticket), Consumer::Pop::kOk);
    EXPECT_EQ(payload, payload_at(seed, ticket));
  }
  seg.unlink();
}

TEST(Recovery, RegistryFullOfDeadPidsIsReclaimedOnAttach) {
  // Chaos churn can kill-and-restart workers faster than organic recovery
  // frees their registry slots; a fresh attacher that finds all 64 slots
  // holding dead pids must drive the per-channel recovery passes itself
  // (bootstrap identity, no index yet) and then register — not abort.
  Segment seg = make_seg(ChannelKind::kRing, 64, 1024, "regfull");
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) _exit(0);
  int st = 0;
  ASSERT_EQ(::waitpid(child, &st, 0), child);
  for (std::uint32_t i = 0; i < kMaxPeers; ++i)
    seg.peer(i).pid.store(static_cast<std::uint32_t>(child),
                          std::memory_order_release);

  Peer me(seg, Role::kConsumer);
  EXPECT_NE(me.index(), kNoPeer);
  std::uint32_t free_slots = 0;
  for (std::uint32_t i = 0; i < kMaxPeers; ++i)
    if (seg.peer(i).pid.load() == 0) ++free_slots;
  EXPECT_EQ(free_slots, kMaxPeers - 1);
  EXPECT_EQ(seg.ctrl(0).recovery_lock.load(), 0u);
  seg.unlink();
}

TEST(Recovery, AfterPublishDeathRescuesTheRecord) {
  // Death after publication but before the prod advance: recovery must
  // rescue the record (it is intact), not tombstone it.
  Segment seg = make_seg(ChannelKind::kPilotRing, 64, 4096, "rescue");
  const std::uint64_t seed = seg.header().seed;
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    Peer me(seg, Role::kProducer);
    CrashPlan crash{CrashPlan::Point::kAfterPublish, 30};
    ChannelTuning tuning;
    Producer prod(seg, 0, me, tuning, crash);
    while (prod.produce(
        static_cast<std::uint32_t>(payload_at(seed, prod.position())))) {
    }
    _exit(0);
  }
  int st = 0;
  ASSERT_EQ(::waitpid(child, &st, 0), child);
  ASSERT_TRUE(WIFSIGNALED(st) && WTERMSIG(st) == SIGKILL);
  EXPECT_EQ(seg.ctrl(0).prod.load(), 30u);
  EXPECT_EQ(seg.ctrl(0).intent.load(), 31u);

  Peer me(seg, Role::kNone);
  const RecoveryOutcome out = run_recovery(seg, 0, me.index());
  EXPECT_TRUE(out.ran);
  EXPECT_EQ(out.intents_rescued, 1u);
  EXPECT_EQ(out.gaps_tombstoned, 0u);
  EXPECT_EQ(seg.ctrl(0).prod.load(), 31u);

  // All 31 records (including the rescued one) deliver with intact
  // payloads.
  ChannelTuning tuning;
  Peer cme(seg, Role::kConsumer);
  Consumer cons(seg, 0, cme, tuning);
  for (std::uint64_t i = 0; i < 31; ++i) {
    std::uint32_t payload = 0;
    std::uint64_t ticket = 0;
    ASSERT_EQ(cons.pop(&payload, &ticket), Consumer::Pop::kOk);
    EXPECT_EQ(payload, payload_at(seed, ticket));
  }
  seg.unlink();
}

}  // namespace
}  // namespace armbar::shmsvc
