// Tier-1 mini-chaos: a real Fleet — forked worker processes, supervisor
// SIGKILLs at seeded random points, restarts — must drain with exact gap
// accounting, zero duplicate deliveries, and zero leftover segments. This
// is the ISSUE 8 acceptance property at test scale (10 kills, ~1 s).
#include <gtest/gtest.h>

#include "shmsvc/service.hpp"

namespace armbar::shmsvc {
namespace {

TEST(ChaosMini, TenSeededProducerKillsDrainExactly) {
  const std::string worker = find_tool("armbar-load");
  ASSERT_FALSE(worker.empty())
      << "armbar-load not built or not findable from the test binary";

  FleetConfig cfg;
  cfg.seg.name = "mini";
  cfg.seg.kind = ChannelKind::kRing;
  cfg.seg.channels = 2;
  cfg.seg.capacity = 128;
  cfg.seg.records = 1u << 20;  // far more than the window can drain: the
                               // run ends by kill budget, then stop+drain
  cfg.seg.seed = 99;
  cfg.consumers_per_channel = 2;
  cfg.worker_bin = worker;
  cfg.deadline_ms = 120000;
  cfg.chaos = true;
  cfg.chaos_seed = 42;
  cfg.chaos_ms = 0;  // window closes when the kill budget is spent
  cfg.chaos_max_kills = 10;
  cfg.kill_min_ms = 15;
  cfg.kill_max_ms = 45;
  cfg.crash_plan_pct = 50;
  cfg.victims = ChaosVictims::kProducersOnly;

  Fleet fleet(cfg);
  const FleetResult res = fleet.run();

  ASSERT_TRUE(res.ok) << res.error;
  EXPECT_FALSE(res.interrupted);
  EXPECT_GE(res.kills, 10u);
  EXPECT_GE(res.restarts, 10u);
  EXPECT_EQ(res.duplicates, 0u);
  // The accounting identity: every produced ticket is either delivered
  // exactly once or a counted gap — nothing lost, nothing doubled.
  EXPECT_EQ(res.delivered + res.gaps, res.produced);
  ASSERT_EQ(res.channels.size(), 2u);
  for (const ChannelAudit& ch : res.channels) {
    EXPECT_TRUE(ch.identity_ok);
    EXPECT_EQ(ch.duplicates, 0u);
    EXPECT_EQ(ch.unmarked, 0u);
    EXPECT_EQ(ch.overmarks, 0u);
    EXPECT_EQ(ch.consumed, ch.produced);
  }
  EXPECT_TRUE(res.segments_clean);
}

}  // namespace
}  // namespace armbar::shmsvc
