// FutexCell and Backoff tests: wake/changed/timeout outcomes, EINTR
// retry-with-remaining-budget (a real interval timer hammers the sleep),
// and the lease that bounds every blocking wait in the service.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/time.h>

#include <atomic>
#include <thread>

#include "shmsvc/futex.hpp"

namespace armbar::shmsvc {
namespace {

TEST(Futex, PostBumpsWord) {
  FutexCell c;
  EXPECT_EQ(c.value(), 0u);
  c.post();
  EXPECT_EQ(c.value(), 1u);
}

TEST(Futex, StaleSnapshotReturnsChangedWithoutSleeping) {
  FutexCell c;
  c.post();
  const std::uint64_t t0 = now_ns();
  EXPECT_EQ(c.wait(0, 1'000'000'000ull), WaitResult::kChanged);
  EXPECT_LT(now_ns() - t0, 100'000'000ull);  // no 1s sleep happened
}

TEST(Futex, WaitTimesOutAfterBudget) {
  FutexCell c;
  const std::uint64_t t0 = now_ns();
  EXPECT_EQ(c.wait(0, 20'000'000ull), WaitResult::kTimeout);
  EXPECT_GE(now_ns() - t0, 15'000'000ull);  // slack for coarse timers
}

TEST(Futex, PostWakesKernelSleeper) {
  FutexCell c;
  std::atomic<bool> timed_out{false};
  std::thread waiter([&] {
    timed_out.store(c.wait(0, 10'000'000'000ull) == WaitResult::kTimeout);
  });
  while (c.sleepers.load(std::memory_order_acquire) == 0) cpu_relax();
  c.post();
  waiter.join();
  EXPECT_FALSE(timed_out.load());
  EXPECT_EQ(c.sleepers.load(), 0u);
}

TEST(Futex, SyscallCounterCountsKernelWaits) {
  FutexCell c;
  std::atomic<std::uint64_t> n{0};
  c.wait(0, 2'000'000ull, &n);
  EXPECT_GE(n.load(), 1u);
}

namespace {
void noop_handler(int) {}
}  // namespace

TEST(Futex, EintrRetriesWithRemainingBudget) {
  // Interrupt the futex sleep every 2 ms with a real signal (handler
  // installed WITHOUT SA_RESTART so futex returns EINTR). The wait must
  // still run its full budget and report timeout, not die or return early.
  struct sigaction sa {};
  struct sigaction old {};
  sa.sa_handler = &noop_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: we *want* EINTR
  ASSERT_EQ(sigaction(SIGALRM, &sa, &old), 0);
  itimerval it{};
  it.it_interval.tv_usec = 2000;
  it.it_value.tv_usec = 2000;
  ASSERT_EQ(setitimer(ITIMER_REAL, &it, nullptr), 0);

  FutexCell c;
  const std::uint64_t t0 = now_ns();
  const WaitResult r = c.wait(0, 40'000'000ull);
  const std::uint64_t elapsed = now_ns() - t0;

  itimerval off{};
  setitimer(ITIMER_REAL, &off, nullptr);
  sigaction(SIGALRM, &old, nullptr);

  EXPECT_EQ(r, WaitResult::kTimeout);
  EXPECT_GE(elapsed, 30'000'000ull);  // ~full budget despite ~15 EINTRs
}

TEST(Backoff, LeaseExpiresAfterBlockedTime) {
  BackoffTuning t;
  t.spins = 4;
  t.yields = 2;
  t.min_sleep_ns = 200'000;
  t.max_sleep_ns = 1'000'000;
  t.lease_ns = 5'000'000;
  FutexCell cell;
  Backoff bo(t);
  int pauses = 0;
  while (!bo.pause(cell)) {
    ++pauses;
    ASSERT_LT(pauses, 100000) << "lease never expired";
  }
  EXPECT_GE(bo.waited_ns(), t.lease_ns);
  bo.reset_lease();
  EXPECT_EQ(bo.waited_ns(), 0u);
}

TEST(Backoff, SpinAndYieldPhasesAccumulateNoBlockedTime) {
  // The lease clock only runs while actually sleeping in the kernel: the
  // spin and yield phases must not count toward it.
  BackoffTuning t;
  t.spins = 16;
  t.yields = 8;
  FutexCell cell;
  Backoff bo(t);
  for (std::uint32_t i = 0; i < t.spins + t.yields; ++i)
    EXPECT_FALSE(bo.pause(cell));
  EXPECT_EQ(bo.waited_ns(), 0u);
}

}  // namespace
}  // namespace armbar::shmsvc
