// Segment lifecycle tests: naming, create/attach validation (magic,
// layout hash, ready flag, truncation), and the stale-segment GC.
#include <gtest/gtest.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <string>
#include <vector>

#include "shmsvc/seg.hpp"

namespace armbar::shmsvc {
namespace {

TEST(SegName, FormatAndParseRoundtrip) {
  const std::string full = full_segment_name("abc");
  ASSERT_EQ(full.rfind("/armbar.", 0), 0u);
  std::string user, name;
  int pid = 0;
  ASSERT_TRUE(parse_segment_name(full.substr(1), &user, &pid, &name));
  EXPECT_EQ(user, current_user());
  EXPECT_EQ(pid, ::getpid());
  EXPECT_EQ(name, "abc");
}

TEST(SegName, RejectsForeignAndMalformedEntries) {
  std::string user, name;
  int pid = 0;
  EXPECT_FALSE(parse_segment_name("notarmbar.u.12.x", &user, &pid, &name));
  EXPECT_FALSE(parse_segment_name("armbar.u.notapid.x", &user, &pid, &name));
  EXPECT_FALSE(parse_segment_name("armbar.u.12", &user, &pid, &name));
  EXPECT_FALSE(parse_segment_name("armbar", &user, &pid, &name));
}

TEST(Segment, CreateAttachRoundtrip) {
  SegmentConfig cfg;
  cfg.name = "segtest";
  cfg.kind = ChannelKind::kPilotRing;
  cfg.channels = 2;
  cfg.capacity = 64;
  cfg.records = 1024;
  cfg.seed = 77;
  Segment owner = Segment::create(cfg);
  ASSERT_TRUE(owner.valid());

  Segment att;
  std::string err;
  ASSERT_TRUE(Segment::attach(owner.shm_name(), &att, &err)) << err;
  EXPECT_EQ(att.header().seed, 77u);
  EXPECT_EQ(att.header().capacity, 64u);
  EXPECT_EQ(att.header().channels, 2u);
  EXPECT_EQ(att.header().records, 1024u);
  EXPECT_EQ(static_cast<ChannelKind>(att.header().kind),
            ChannelKind::kPilotRing);
  // Slots initialized to their free state on every channel.
  EXPECT_EQ(att.slots(0)[5].seq.load(), 5u);
  EXPECT_EQ(att.slots(1)[63].seq.load(), 63u);
  // The two mappings alias the same memory.
  att.ctrl(1).prod.store(41, std::memory_order_relaxed);
  EXPECT_EQ(owner.ctrl(1).prod.load(std::memory_order_relaxed), 41u);
  owner.unlink();
}

TEST(Segment, AttachRejectsMissingSegment) {
  Segment s;
  std::string err;
  EXPECT_FALSE(Segment::attach("/armbar.nobody.1.missing", &s, &err));
  EXPECT_FALSE(err.empty());
}

TEST(Segment, AttachRejectsCorruptHeader) {
  SegmentConfig cfg;
  cfg.name = "segtest-corrupt";
  cfg.capacity = 32;
  cfg.records = 256;
  Segment owner = Segment::create(cfg);
  Segment s;
  std::string err;

  // Not ready (creator mid-initialization).
  owner.header().ready.store(0, std::memory_order_release);
  EXPECT_FALSE(Segment::attach(owner.shm_name(), &s, &err));
  owner.header().ready.store(1, std::memory_order_release);

  // Bad magic.
  const std::uint64_t magic = owner.header().magic;
  owner.header().magic = 0xdeadbeef;
  EXPECT_FALSE(Segment::attach(owner.shm_name(), &s, &err));
  owner.header().magic = magic;

  // Layout-hash mismatch: a header whose geometry fields disagree with the
  // hash stamped at creation (simulates an ABI/geometry skew).
  const std::uint32_t cap = owner.header().capacity;
  owner.header().capacity = cap * 2;
  EXPECT_FALSE(Segment::attach(owner.shm_name(), &s, &err));
  EXPECT_NE(err.find("layout"), std::string::npos) << err;
  owner.header().capacity = cap;

  // Restored: attaches again.
  EXPECT_TRUE(Segment::attach(owner.shm_name(), &s, &err)) << err;
  owner.unlink();
}

TEST(SegmentGc, SweepsDeadOwnersKeepsLiveOnes) {
  // A live segment of ours must survive the sweep.
  SegmentConfig cfg;
  cfg.name = "gclive";
  cfg.capacity = 32;
  cfg.records = 256;
  Segment live = Segment::create(cfg);

  // Craft a stale entry: a segment named after a pid that is really dead
  // (a forked child that already exited and was reaped).
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) _exit(0);
  int st = 0;
  ASSERT_EQ(::waitpid(child, &st, 0), child);
  const std::string stale = "/armbar." + current_user() + "." +
                            std::to_string(child) + ".gcstale";
  const int fd = ::shm_open(stale.c_str(), O_CREAT | O_RDWR, 0600);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(::ftruncate(fd, 4096), 0);
  ::close(fd);

  std::vector<std::string> removed;
  const GcStats gc = gc_stale_segments(&removed);
  EXPECT_GE(gc.scanned, 2);
  EXPECT_GE(gc.alive, 1);
  EXPECT_GE(gc.removed, 1);
  EXPECT_NE(std::find(removed.begin(), removed.end(), stale), removed.end());

  // The stale name is gone; the live one still attaches.
  Segment probe;
  std::string err;
  EXPECT_FALSE(Segment::attach(stale, &probe, &err));
  EXPECT_TRUE(Segment::attach(live.shm_name(), &probe, &err)) << err;
  live.unlink();
}

}  // namespace
}  // namespace armbar::shmsvc
