// Validates the axiomatic reference model (src/model) against the canonical
// ARMv8 litmus truths: the textbook allowed/forbidden outcomes of MP, SB,
// LB, S, 2+2W, CoRR, WRC and IRIW under every barrier/dependency variant
// the paper's Table 1 exercises. These expectations are the published herd7
// results for the aarch64.cat model, not simulator-derived — the whole
// point is an oracle independent of src/sim.
#include "model/model.hpp"

#include <gtest/gtest.h>

#include "sim/program.hpp"

namespace m = armbar::model;
using armbar::Addr;
using armbar::sim::Asm;
using armbar::sim::Program;
using armbar::sim::Reg;

namespace {

constexpr Addr kX = 0x1000;
constexpr Addr kY = 0x2000;

// Every thread gets the address map in registers: X0 = kX, X1 = kY.
Asm prologue() {
  Asm a;
  a.movi(armbar::sim::X0, kX);
  a.movi(armbar::sim::X1, kY);
  return a;
}

m::ConcurrentProgram make(std::vector<Program> threads,
                          std::vector<std::pair<std::uint32_t, Reg>> obs,
                          std::vector<Addr> obs_mem = {}) {
  m::ConcurrentProgram p;
  p.name = "test";
  p.threads = std::move(threads);
  p.observe_regs = std::move(obs);
  p.observe_mem = std::move(obs_mem);
  return p;
}

enum class Producer { kNone, kDmbSt, kDmbFull, kStlr, kDsbSt };
enum class Consumer { kNone, kDmbLd, kDmbFull, kLdar, kAddrDep, kCtrlDep,
                      kCtrlIsb };

m::ConcurrentProgram mp(Producer prod, Consumer cons) {
  Asm p = prologue();
  p.movi(armbar::sim::X5, 23);
  p.str(armbar::sim::X5, armbar::sim::X0);  // data = 23
  switch (prod) {
    case Producer::kNone: break;
    case Producer::kDmbSt: p.dmb_st(); break;
    case Producer::kDmbFull: p.dmb_full(); break;
    case Producer::kDsbSt: p.dsb_st(); break;
    case Producer::kStlr: break;  // handled below
  }
  p.movi(armbar::sim::X6, 1);
  if (prod == Producer::kStlr)
    p.stlr(armbar::sim::X6, armbar::sim::X1);  // flag = 1 (release)
  else
    p.str(armbar::sim::X6, armbar::sim::X1);  // flag = 1
  p.halt();

  Asm c = prologue();
  if (cons == Consumer::kLdar)
    c.ldar(armbar::sim::X3, armbar::sim::X1);  // r3 = flag (acquire)
  else
    c.ldr(armbar::sim::X3, armbar::sim::X1);  // r3 = flag
  switch (cons) {
    case Consumer::kNone:
    case Consumer::kLdar:
      c.ldr(armbar::sim::X10, armbar::sim::X0);
      break;
    case Consumer::kDmbLd:
      c.dmb_ld();
      c.ldr(armbar::sim::X10, armbar::sim::X0);
      break;
    case Consumer::kDmbFull:
      c.dmb_full();
      c.ldr(armbar::sim::X10, armbar::sim::X0);
      break;
    case Consumer::kAddrDep:
      // r4 = r3 ^ r3 (always 0, but syntactically carries the load);
      // data address = X0 + r4.
      c.eor(armbar::sim::X4, armbar::sim::X3, armbar::sim::X3);
      c.ldr_idx(armbar::sim::X10, armbar::sim::X0, armbar::sim::X4);
      break;
    case Consumer::kCtrlDep:
    case Consumer::kCtrlIsb:
      // Forward branch on the flag value; both arms fall through to the
      // data load, so the only ordering is the control dependency (plus
      // ISB in the kCtrlIsb variant).
      c.cbnz(armbar::sim::X3, "join");
      c.label("join");
      if (cons == Consumer::kCtrlIsb) c.isb();
      c.ldr(armbar::sim::X10, armbar::sim::X0);
      break;
  }
  c.halt();
  return make({p.take("mp-producer"), c.take("mp-consumer")},
              {{1, armbar::sim::X3}, {1, armbar::sim::X10}});
}

const m::Outcome kMpWeak{1, 0};  // saw the flag, missed the data

}  // namespace

TEST(Model, MpNoBarriersAllowsEverything) {
  auto set = m::enumerate_outcomes(mp(Producer::kNone, Consumer::kNone));
  ASSERT_TRUE(set.ok()) << set.error;
  EXPECT_TRUE(set.complete);
  EXPECT_TRUE(set.allows({0, 0}));
  EXPECT_TRUE(set.allows({0, 23}));
  EXPECT_TRUE(set.allows({1, 23}));
  EXPECT_TRUE(set.allows(kMpWeak));
  EXPECT_EQ(set.allowed.size(), 4u);
}

TEST(Model, MpProducerDmbStAloneDoesNotForbidWeak) {
  // The classic one-sided-barrier trap: dmb ishst orders the writes, but
  // nothing orders the consumer's reads.
  auto set = m::enumerate_outcomes(mp(Producer::kDmbSt, Consumer::kNone));
  ASSERT_TRUE(set.ok()) << set.error;
  EXPECT_TRUE(set.allows(kMpWeak));
}

TEST(Model, MpDmbStPlusDmbLdForbidsWeak) {
  auto set = m::enumerate_outcomes(mp(Producer::kDmbSt, Consumer::kDmbLd));
  ASSERT_TRUE(set.ok()) << set.error;
  EXPECT_FALSE(set.allows(kMpWeak));
  EXPECT_TRUE(set.allows({1, 23}));
  EXPECT_TRUE(set.allows({0, 0}));
}

TEST(Model, MpFullBarriersForbidWeak) {
  auto set =
      m::enumerate_outcomes(mp(Producer::kDmbFull, Consumer::kDmbFull));
  ASSERT_TRUE(set.ok()) << set.error;
  EXPECT_FALSE(set.allows(kMpWeak));
}

TEST(Model, MpDsbOrdersLikeDmb) {
  auto set = m::enumerate_outcomes(mp(Producer::kDsbSt, Consumer::kDmbLd));
  ASSERT_TRUE(set.ok()) << set.error;
  EXPECT_FALSE(set.allows(kMpWeak));
}

TEST(Model, MpReleaseAcquireForbidsWeak) {
  auto set = m::enumerate_outcomes(mp(Producer::kStlr, Consumer::kLdar));
  ASSERT_TRUE(set.ok()) << set.error;
  EXPECT_FALSE(set.allows(kMpWeak));
}

TEST(Model, MpAddressDependencyForbidsWeak) {
  auto set = m::enumerate_outcomes(mp(Producer::kDmbSt, Consumer::kAddrDep));
  ASSERT_TRUE(set.ok()) << set.error;
  EXPECT_FALSE(set.allows(kMpWeak));
}

TEST(Model, MpControlDependencyDoesNotOrderReads) {
  // ctrl alone never orders read->read on ARMv8 (dob has ctrl;[W] only).
  auto set = m::enumerate_outcomes(mp(Producer::kDmbSt, Consumer::kCtrlDep));
  ASSERT_TRUE(set.ok()) << set.error;
  EXPECT_TRUE(set.allows(kMpWeak));
}

TEST(Model, MpControlPlusIsbOrdersReads) {
  auto set = m::enumerate_outcomes(mp(Producer::kDmbSt, Consumer::kCtrlIsb));
  ASSERT_TRUE(set.ok()) << set.error;
  EXPECT_FALSE(set.allows(kMpWeak));
}

namespace {

m::ConcurrentProgram sb(bool fences) {
  auto side = [&](Reg waddr, Reg raddr, const char* nm) {
    Asm a = prologue();
    a.movi(armbar::sim::X5, 1);
    a.str(armbar::sim::X5, waddr);
    if (fences) a.dmb_full();
    a.ldr(armbar::sim::X3, raddr);
    a.halt();
    return a.take(nm);
  };
  return make({side(armbar::sim::X0, armbar::sim::X1, "sb0"),
               side(armbar::sim::X1, armbar::sim::X0, "sb1")},
              {{0, armbar::sim::X3}, {1, armbar::sim::X3}});
}

}  // namespace

TEST(Model, SbAllowsBothZeroWithoutFences) {
  auto set = m::enumerate_outcomes(sb(false));
  ASSERT_TRUE(set.ok()) << set.error;
  EXPECT_TRUE(set.allows({0, 0}));
  EXPECT_TRUE(set.allows({1, 1}));
  EXPECT_EQ(set.allowed.size(), 4u);
}

TEST(Model, SbFullFencesForbidBothZero) {
  auto set = m::enumerate_outcomes(sb(true));
  ASSERT_TRUE(set.ok()) << set.error;
  EXPECT_FALSE(set.allows({0, 0}));
  EXPECT_EQ(set.allowed.size(), 3u);
}

namespace {

m::ConcurrentProgram lb(bool data_deps) {
  auto side = [&](Reg raddr, Reg waddr, const char* nm) {
    Asm a = prologue();
    a.ldr(armbar::sim::X3, raddr);
    if (data_deps) {
      // Write value = 1 + (r3 ^ r3): data-dependent on the load, value 1.
      a.eor(armbar::sim::X4, armbar::sim::X3, armbar::sim::X3);
      a.addi(armbar::sim::X5, armbar::sim::X4, 1);
    } else {
      a.movi(armbar::sim::X5, 1);
    }
    a.str(armbar::sim::X5, waddr);
    a.halt();
    return a.take(nm);
  };
  return make({side(armbar::sim::X0, armbar::sim::X1, "lb0"),
               side(armbar::sim::X1, armbar::sim::X0, "lb1")},
              {{0, armbar::sim::X3}, {1, armbar::sim::X3}});
}

}  // namespace

TEST(Model, LbAllowsBothOneWithoutDeps) {
  auto set = m::enumerate_outcomes(lb(false));
  ASSERT_TRUE(set.ok()) << set.error;
  EXPECT_TRUE(set.allows({1, 1}));
  EXPECT_TRUE(set.allows({0, 0}));
}

TEST(Model, LbDataDepsForbidBothOne) {
  auto set = m::enumerate_outcomes(lb(true));
  ASSERT_TRUE(set.ok()) << set.error;
  EXPECT_FALSE(set.allows({1, 1}));
  EXPECT_TRUE(set.allows({0, 0}));
}

TEST(Model, CoherenceCoRR) {
  // T0: x=1; x=2.  T1: r1=x; r2=x.  Reads of the same location must agree
  // with some coherence order: r1=2,r2=1 and r1=2,r2=0 and r1=1,r2=0 are
  // all forbidden; the monotone outcomes are allowed.
  Asm w = prologue();
  w.movi(armbar::sim::X5, 1).str(armbar::sim::X5, armbar::sim::X0);
  w.movi(armbar::sim::X6, 2).str(armbar::sim::X6, armbar::sim::X0);
  w.halt();
  Asm r = prologue();
  r.ldr(armbar::sim::X3, armbar::sim::X0);
  r.ldr(armbar::sim::X4, armbar::sim::X0);
  r.halt();
  auto set = m::enumerate_outcomes(
      make({w.take("corr-w"), r.take("corr-r")},
           {{1, armbar::sim::X3}, {1, armbar::sim::X4}}));
  ASSERT_TRUE(set.ok()) << set.error;
  EXPECT_TRUE(set.allows({0, 0}));
  EXPECT_TRUE(set.allows({0, 1}));
  EXPECT_TRUE(set.allows({0, 2}));
  EXPECT_TRUE(set.allows({1, 1}));
  EXPECT_TRUE(set.allows({1, 2}));
  EXPECT_TRUE(set.allows({2, 2}));
  EXPECT_FALSE(set.allows({2, 1}));
  EXPECT_FALSE(set.allows({2, 0}));
  EXPECT_FALSE(set.allows({1, 0}));
}

TEST(Model, TwoPlusTwoW) {
  // 2+2W: T0: x=1; y=2.  T1: y=1; x=2.  Final (x,y)=(1,1) needs both
  // coherence orders to contradict po; allowed relaxed, forbidden with
  // dmb ishst on both sides.
  auto prog = [&](bool fence) {
    auto side = [&](Reg a1, Reg a2, const char* nm) {
      Asm a = prologue();
      a.movi(armbar::sim::X5, 1).str(armbar::sim::X5, a1);
      if (fence) a.dmb_st();
      a.movi(armbar::sim::X6, 2).str(armbar::sim::X6, a2);
      a.halt();
      return a.take(nm);
    };
    return make({side(armbar::sim::X0, armbar::sim::X1, "w0"),
                 side(armbar::sim::X1, armbar::sim::X0, "w1")},
                {}, {kX, kY});
  };
  auto relaxed = m::enumerate_outcomes(prog(false));
  ASSERT_TRUE(relaxed.ok()) << relaxed.error;
  EXPECT_TRUE(relaxed.allows({1, 1}));
  auto fenced = m::enumerate_outcomes(prog(true));
  ASSERT_TRUE(fenced.ok()) << fenced.error;
  EXPECT_FALSE(fenced.allows({1, 1}));
}

TEST(Model, WrcDataPlusAddrDepForbidden) {
  // WRC: T0: x=1.  T1: r1=x; y=r1 (data dep).  T2: r2=y; addr-dep r3=x.
  // Multi-copy atomicity + dependencies forbid (r1,r2,r3)=(1,1,0).
  Asm t0 = prologue();
  t0.movi(armbar::sim::X5, 1).str(armbar::sim::X5, armbar::sim::X0).halt();
  Asm t1 = prologue();
  t1.ldr(armbar::sim::X3, armbar::sim::X0);
  t1.str(armbar::sim::X3, armbar::sim::X1);  // y = r1: data dependency
  t1.halt();
  Asm t2 = prologue();
  t2.ldr(armbar::sim::X4, armbar::sim::X1);
  t2.eor(armbar::sim::X6, armbar::sim::X4, armbar::sim::X4);
  t2.ldr_idx(armbar::sim::X7, armbar::sim::X0, armbar::sim::X6);
  t2.halt();
  auto set = m::enumerate_outcomes(
      make({t0.take("wrc0"), t1.take("wrc1"), t2.take("wrc2")},
           {{1, armbar::sim::X3}, {2, armbar::sim::X4}, {2, armbar::sim::X7}}));
  ASSERT_TRUE(set.ok()) << set.error;
  EXPECT_FALSE(set.allows({1, 1, 0}));
  EXPECT_TRUE(set.allows({1, 1, 1}));
  EXPECT_TRUE(set.allows({1, 0, 0}));
}

TEST(Model, IriwRequiresFullFences) {
  // IRIW: writers to x and y; two readers observing in opposite orders.
  auto prog = [&](bool fences) {
    Asm w0 = prologue();
    w0.movi(armbar::sim::X5, 1).str(armbar::sim::X5, armbar::sim::X0).halt();
    Asm w1 = prologue();
    w1.movi(armbar::sim::X5, 1).str(armbar::sim::X5, armbar::sim::X1).halt();
    auto reader = [&](Reg first, Reg second, const char* nm) {
      Asm a = prologue();
      a.ldr(armbar::sim::X3, first);
      if (fences) a.dmb_full();
      a.ldr(armbar::sim::X4, second);
      a.halt();
      return a.take(nm);
    };
    return make({w0.take("iriw-w0"), w1.take("iriw-w1"),
                 reader(armbar::sim::X0, armbar::sim::X1, "iriw-r0"),
                 reader(armbar::sim::X1, armbar::sim::X0, "iriw-r1")},
                {{2, armbar::sim::X3}, {2, armbar::sim::X4},
                 {3, armbar::sim::X3}, {3, armbar::sim::X4}});
  };
  auto relaxed = m::enumerate_outcomes(prog(false));
  ASSERT_TRUE(relaxed.ok()) << relaxed.error;
  EXPECT_TRUE(relaxed.allows({1, 0, 1, 0}));
  auto fenced = m::enumerate_outcomes(prog(true));
  ASSERT_TRUE(fenced.ok()) << fenced.error;
  // Multi-copy atomicity + full fences forbid the readers disagreeing on
  // the order of the two independent writes.
  EXPECT_FALSE(fenced.allows({1, 0, 1, 0}));
  EXPECT_TRUE(fenced.allows({1, 1, 1, 1}));
}

TEST(Model, UnsupportedOpsReportError) {
  Asm a = prologue();
  a.ldxr(armbar::sim::X3, armbar::sim::X0);
  a.halt();
  auto set = m::enumerate_outcomes(make({a.take("rmw")}, {}));
  EXPECT_FALSE(set.ok());
  EXPECT_NE(set.error.find("ldxr"), std::string::npos);
}

TEST(Model, FinalMemoryRespectsCoherenceLast) {
  // Single thread: x=1 then x=2 — final memory must be 2, never 1.
  Asm a = prologue();
  a.movi(armbar::sim::X5, 1).str(armbar::sim::X5, armbar::sim::X0);
  a.movi(armbar::sim::X6, 2).str(armbar::sim::X6, armbar::sim::X0);
  a.halt();
  auto set = m::enumerate_outcomes(make({a.take("wx")}, {}, {kX}));
  ASSERT_TRUE(set.ok()) << set.error;
  EXPECT_EQ(set.allowed.size(), 1u);
  EXPECT_TRUE(set.allows({2}));
}

TEST(Model, DeterministicAcrossCalls) {
  auto a = m::enumerate_outcomes(mp(Producer::kDmbSt, Consumer::kDmbLd));
  auto b = m::enumerate_outcomes(mp(Producer::kDmbSt, Consumer::kDmbLd));
  EXPECT_EQ(a.allowed, b.allowed);
  EXPECT_EQ(a.candidates, b.candidates);
  EXPECT_EQ(a.consistent, b.consistent);
}
