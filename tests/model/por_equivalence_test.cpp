// POR/naive equivalence sweep (ISSUE 5 satellite).
//
// The POR engine claims to enumerate exactly the consistent candidates the
// naive oracle accepts (DESIGN.md §12). This sweep drives both engines over
// 200 seeded generator programs — the same generator the differential
// fuzzer uses, at its (raised) default limits — and demands:
//
//   * identical `allowed` outcome sets whenever both engines complete;
//   * identical `consistent` counts (the engines agree candidate-by-
//     candidate, not just set-wise) and identical `combos` (Phases A/B are
//     engine-independent);
//   * when one engine runs out of budget, its partial set is still a
//     subset of the other's complete set (`allowed` is documented as a
//     lower bound when !complete).
//
// The candidate budget is deliberately small: seeds the naive enumerator
// cannot finish in ~100k candidates degrade to the subset check instead of
// stalling the suite. Most seeds must still complete on both engines for
// the sweep to mean anything — asserted at the bottom.
#include <gtest/gtest.h>

#include <cstdint>

#include "fuzz/gen.hpp"
#include "model/model.hpp"

namespace armbar {
namespace {

TEST(PorEquivalence, TwoHundredGeneratorPrograms) {
  const fuzz::GenOptions gopts;  // generator defaults, as the fuzzer runs
  model::ModelOptions por_opts, naive_opts;
  naive_opts.naive = true;
  por_opts.max_candidates = naive_opts.max_candidates = 100'000;

  int both_complete = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const model::ConcurrentProgram prog = fuzz::generate(seed, gopts);
    const model::OutcomeSet por = model::enumerate_outcomes(prog, por_opts);
    const model::OutcomeSet naive =
        model::enumerate_outcomes(prog, naive_opts);

    ASSERT_EQ(por.error, naive.error) << "seed " << seed;
    if (!por.ok()) continue;

    if (por.complete && naive.complete) {
      EXPECT_EQ(por.allowed, naive.allowed)
          << "seed " << seed << "\n  por:   " << model::to_string(por)
          << "\n  naive: " << model::to_string(naive);
      EXPECT_EQ(por.consistent, naive.consistent) << "seed " << seed;
      EXPECT_EQ(por.combos, naive.combos) << "seed " << seed;
      ++both_complete;
    } else if (por.complete) {
      for (const model::Outcome& o : naive.allowed)
        EXPECT_TRUE(por.allows(o))
            << "seed " << seed << ": naive found " << model::to_string(o)
            << " but the complete POR set lacks it";
    } else if (naive.complete) {
      for (const model::Outcome& o : por.allowed)
        EXPECT_TRUE(naive.allows(o))
            << "seed " << seed << ": POR found " << model::to_string(o)
            << " but the complete naive set lacks it";
    }
  }
  // The sweep is vacuous if budget caps eat most seeds.
  EXPECT_GE(both_complete, 150) << "budget too small for this generator";
}

}  // namespace
}  // namespace armbar
