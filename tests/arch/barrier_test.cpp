// Host barrier layer: these run on whatever architecture the test host is;
// they verify functional correctness and the dependency helpers' opacity.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "arch/barrier.hpp"

namespace armbar::arch {
namespace {

TEST(Barrier, AllKindsExecute) {
  // Smoke: none of the barrier flavours may fault or deadlock.
  for (auto b : {Barrier::kNone, Barrier::kDmbFull, Barrier::kDmbSt,
                 Barrier::kDmbLd, Barrier::kDsbFull, Barrier::kDsbSt,
                 Barrier::kDsbLd, Barrier::kIsb, Barrier::kCtrlIsb,
                 Barrier::kDataDep, Barrier::kAddrDep}) {
    barrier(b);
  }
  SUCCEED();
}

TEST(Barrier, ToStringRoundTrip) {
  EXPECT_EQ(to_string(Barrier::kDmbFull), "DMB full");
  EXPECT_EQ(to_string(Barrier::kDmbSt), "DMB st");
  EXPECT_EQ(to_string(Barrier::kCtrlIsb), "CTRL+ISB");
  EXPECT_EQ(to_string(Barrier::kAddrDep), "ADDR dep");
  EXPECT_EQ(to_string(Barrier::kNone), "None");
}

TEST(Barrier, DataDepZeroIsZeroButOpaque) {
  for (std::uint64_t v : {0ULL, 1ULL, 0xdeadbeefULL, ~0ULL}) {
    EXPECT_EQ(data_dep_zero(v), 0u);
  }
}

TEST(Barrier, AddrDepPreservesPointer) {
  int x = 42;
  int* p = addr_dep(&x, 0x123456789abcdefULL);
  EXPECT_EQ(p, &x);
  EXPECT_EQ(*p, 42);
}

TEST(Barrier, CtrlIsbExecutes) {
  ctrl_isb(0);
  ctrl_isb(~0ULL);
  SUCCEED();
}

TEST(Barrier, AcquireReleaseRoundTrip) {
  std::atomic<std::uint64_t> v{0};
  store_release(v, 77);
  EXPECT_EQ(load_acquire(v), 77u);
}

TEST(Barrier, MessagePassingWithStoreRelease) {
  // The MP idiom must hold on the host with release/acquire.
  std::atomic<std::uint64_t> data{0};
  std::atomic<std::uint64_t> flag{0};
  std::thread producer([&] {
    data.store(23, std::memory_order_relaxed);
    store_release(flag, 1);
  });
  while (load_acquire(flag) == 0) {}
  EXPECT_EQ(data.load(std::memory_order_relaxed), 23u);
  producer.join();
}

TEST(Barrier, MessagePassingWithDmbSt) {
  std::atomic<std::uint64_t> data{0};
  std::atomic<std::uint64_t> flag{0};
  std::thread producer([&] {
    data.store(23, std::memory_order_relaxed);
    dmb_st();
    flag.store(1, std::memory_order_relaxed);
  });
  while (flag.load(std::memory_order_relaxed) == 0) {}
  dmb_ld();
  EXPECT_EQ(data.load(std::memory_order_relaxed), 23u);
  producer.join();
}

TEST(Barrier, NativeArmFlagConsistent) {
#if defined(__aarch64__)
  EXPECT_TRUE(native_arm());
#else
  EXPECT_FALSE(native_arm());
#endif
}

}  // namespace
}  // namespace armbar::arch
